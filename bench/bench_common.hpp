// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every binary accepts:
//   --scale=<0..1>   shrink the suite for quick runs (default 1 = paper scale)
//   --seed=<u64>     suite generation seed
//   --csv=<path>     also write the table as CSV
//   --json=<path>    also write the table as a JSON array of row objects
//   --verify         decode results from simulated memory and check them
//
// summary_speedup additionally accepts --mtxdir=<dir>: run on every .mtx
// file found there (e.g. the original D-SAB matrices) instead of the
// synthetic suite.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "formats/csr.hpp"
#include "hism/hism.hpp"
#include "stm/unit.hpp"
#include "suite/dsab.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "vsim/config.hpp"

namespace smtu::bench {

struct BenchOptions {
  suite::SuiteOptions suite;
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  bool verify = false;
};

// Parses the standard flags; calls cli.finish() so unknown flags fail fast.
BenchOptions parse_options(CommandLine& cli);

// One matrix through both transposition paths on the simulated machine.
struct TransposeComparison {
  u64 hism_cycles = 0;
  u64 crs_cycles = 0;
  double hism_cycles_per_nnz = 0.0;
  double crs_cycles_per_nnz = 0.0;
  double speedup = 0.0;
};

TransposeComparison compare_transposes(const suite::SuiteMatrix& entry,
                                       const vsim::MachineConfig& config, bool verify);

// Buffer-bandwidth utilization of the STM over every block-array of a HiSM
// matrix, mimicking the kernel's pass structure (one pass per level-0 block,
// two passes — lengths + elements — per higher-level block).
//
// §IV-C defines BU = (Z/C)/B. Elements traverse the unit twice (fill +
// drain), so we count transfers (in + out) against C*B, the reading under
// which B = 1 approaches 1.0 with only the 6-cycle block penalty missing —
// exactly the behaviour Fig. 10 reports (see DESIGN.md).
double buffer_utilization(const HismMatrix& hism, const StmConfig& config);

// Prints one of the Fig. 11/12/13 per-matrix tables and the set summary.
struct FigureSeries {
  std::string set;                 // suite set name
  std::string metric_header;      // e.g. "locality"
  double (*metric)(const suite::MatrixMetrics&);
  // Paper-reported speedup statistics for the closing comparison line.
  double paper_min, paper_max, paper_avg;
};

int run_figure_bench(int argc, const char* const* argv, const FigureSeries& series);

// Loads every MatrixMarket file in `dir` as a suite (set = "external",
// sorted by filename); computes the paper's metrics for each.
std::vector<suite::SuiteMatrix> load_external_suite(const std::string& dir);

// Emits a table to stdout and, if requested, as CSV and/or JSON files.
void emit(const TextTable& table, const BenchOptions& options);

// Back-compatible overload used by older call sites (CSV only).
void emit(const TextTable& table, const std::optional<std::string>& csv_path);

}  // namespace smtu::bench
