// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every binary accepts:
//   --scale=<0..1>     shrink the suite for quick runs (default 1 = paper scale)
//   --seed=<u64>       suite generation seed
//   --jobs=<N> / -j N  worker threads for per-matrix simulation (default 0 =
//                      all hardware threads). Results are deterministic: any
//                      -jN produces cycle counts identical to -j1; only the
//                      wall_ms keys vary
//   --csv=<path>       also write the table as CSV
//   --json=<path>      machine-readable results: the comparison benches write
//                      an "smtu-bench-v1" report (per-matrix cycles, speedups,
//                      per-unit busy counters — see docs/TRACE.md); the
//                      table-shaped benches write the table as a JSON array
//   --trace-json=<path> Chrome trace-event dump (chrome://tracing / Perfetto)
//                      of the HiSM transpose of the first suite matrix
//   --verify           decode results from simulated memory and check them
//   --profile          attach the cycle-attribution profiler; JSON reports
//                      gain a per-matrix "profile" section (docs/PROFILING.md)
//   --sim-cache=<dir>  content-addressed on-disk result cache: simulations
//                      whose (program, config, image) triple was seen before
//                      are skipped and their RunStats/profile replayed from
//                      <dir> (see HACKING.md "Host performance"). Reports
//                      stay bit-identical modulo wall_ms/host keys
//   --telemetry        collect host telemetry (ThreadPool, caches, per-item
//                      latency — docs/TELEMETRY.md); JSON reports gain a
//                      "telemetry" section and a summary prints to stderr
//   --telemetry-json=<path>  also write the standalone smtu-telemetry-v1
//                      document there (implies --telemetry)
//
// summary_speedup additionally accepts --mtxdir=<dir>: run on every .mtx
// file found there (e.g. the original D-SAB matrices) instead of the
// synthetic suite.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "formats/csr.hpp"
#include "hism/hism.hpp"
#include "kernels/staging.hpp"
#include "stm/unit.hpp"
#include "suite/dsab.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "vsim/config.hpp"
#include "vsim/machine.hpp"
#include "vsim/profiler.hpp"
#include "vsim/program_cache.hpp"
#include "vsim/sim_cache.hpp"

namespace smtu::bench {

struct BenchOptions {
  suite::SuiteOptions suite;
  u32 jobs = 0;  // --jobs/-j: 0 = all hardware threads, 1 = serial
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  std::optional<std::string> trace_json_path;
  bool verify = false;
  // --profile: attach a cycle-attribution profiler to both kernels of every
  // comparison; the JSON reports gain a per-matrix "profile" section
  // (docs/PROFILING.md). Deterministic across -j values like the cycles.
  bool profile = false;
  // --sim-cache: directory of the content-addressed result cache; nullopt
  // disables it (every simulation runs).
  std::optional<std::string> sim_cache_dir;
  // --telemetry / --telemetry-json: host-side metrics (docs/TELEMETRY.md).
  // parse_options flips the process-wide telemetry switch, so `telemetry`
  // mirrors smtu::telemetry::enabled() for the rest of the run.
  bool telemetry = false;
  std::optional<std::string> telemetry_json_path;
};

// The process-wide SimCache for `dir` (one instance per directory, so its
// hit/miss counters aggregate across benches in one process). nullptr when
// `dir` is empty.
vsim::SimCache* sim_cache_for(const std::optional<std::string>& dir);

// Parses the standard flags; calls cli.finish() so unknown flags fail fast.
// Side effect: enables process-wide telemetry when --telemetry /
// --telemetry-json was given (and host trace events when --trace-json rides
// along, so host spans land in the Chrome dump under their own pid).
BenchOptions parse_options(CommandLine& cli);

// End-of-main telemetry flush: writes the standalone smtu-telemetry-v1
// document to options.telemetry_json_path (if set) and prints the metric
// summary to stderr. No-op when telemetry is off.
void finish_telemetry(const BenchOptions& options);

// One matrix through both transposition paths on the simulated machine.
// The full per-run counters (unit busy cycles, instruction mix, STM phase
// cycles) ride along for the JSON reports.
struct TransposeComparison {
  u64 hism_cycles = 0;
  u64 crs_cycles = 0;
  double hism_cycles_per_nnz = 0.0;
  double crs_cycles_per_nnz = 0.0;
  double speedup = 0.0;
  double wall_ms = 0.0;  // host wall time of this comparison (nondeterministic)
  vsim::RunStats hism_stats;
  vsim::RunStats crs_stats;
  // Populated only when profiling was requested (see BenchOptions::profile):
  // the per-kernel profile sections pre-rendered as JSON text, so cached
  // replays are byte-identical to live runs by construction.
  bool profiled = false;
  std::string hism_profile_json;
  std::string crs_profile_json;
};

// Renders vsim::write_profile_json to a string (the TransposeComparison /
// SimCache profile payload format).
std::string render_profile_json(const vsim::PerfCounters& profile);

// A non-null `sim_cache` is consulted before each simulation and updated
// after: hits replay the stored RunStats/profile without running the machine.
TransposeComparison compare_transposes(const suite::SuiteMatrix& entry,
                                       const vsim::MachineConfig& config, bool verify,
                                       bool profile = false,
                                       vsim::SimCache* sim_cache = nullptr);

// Buffer-bandwidth utilization of the STM over every block-array of a HiSM
// matrix, mimicking the kernel's pass structure (one pass per level-0 block,
// two passes — lengths + elements — per higher-level block).
//
// §IV-C defines BU = (Z/C)/B. Elements traverse the unit twice (fill +
// drain), so we count transfers (in + out) against C*B, the reading under
// which B = 1 approaches 1.0 with only the 6-cycle block penalty missing —
// exactly the behaviour Fig. 10 reports (see DESIGN.md).
double buffer_utilization(const HismMatrix& hism, const StmConfig& config);

// Prints one of the Fig. 11/12/13 per-matrix tables and the set summary.
struct FigureSeries {
  std::string set;                 // suite set name
  std::string metric_header;      // e.g. "locality"
  double (*metric)(const suite::MatrixMetrics&);
  // Paper-reported speedup statistics for the closing comparison line.
  double paper_min, paper_max, paper_avg;
};

int run_figure_bench(int argc, const char* const* argv, const FigureSeries& series);

// Loads every MatrixMarket file in `dir` as a suite (set = "external",
// sorted by filename); computes the paper's metrics for each.
std::vector<suite::SuiteMatrix> load_external_suite(const std::string& dir);

// Emits a table to stdout and, if requested, as CSV and/or JSON files.
void emit(const TextTable& table, const BenchOptions& options);

// Back-compatible overload used by older call sites (CSV only).
void emit(const TextTable& table, const std::optional<std::string>& csv_path);

// ---- config sweeps (ablation benches) --------------------------------------
//
// Every ablation sweeps one knob over a value list, each value yielding a
// labeled variant of a default config; the construction loop used to be
// copy-pasted per bench. sweep_configs collapses it (prep for ROADMAP item
// 5's sweepable config plumbing) and sweep_average_table the standard
// per-matrix + AVERAGE table scaffolding around the measured values.

template <typename Config>
struct ConfigVariant {
  std::string label;  // table column header, e.g. "s=64"
  Config config;
};

// One variant per value: label = label_prefix + value; config = a copy of
// `base` with `apply(config, value)` run on it.
template <typename Config, typename Apply>
std::vector<ConfigVariant<Config>> sweep_configs(const char* label_prefix,
                                                 std::initializer_list<u32> values,
                                                 Apply&& apply, const Config& base = {}) {
  std::vector<ConfigVariant<Config>> variants;
  variants.reserve(values.size());
  for (const u32 value : values) {
    Config config = base;
    apply(config, value);
    variants.push_back({format("%s%u", label_prefix, value), std::move(config)});
  }
  return variants;
}

template <typename Config>
std::vector<std::string> variant_labels(const std::vector<ConfigVariant<Config>>& variants) {
  std::vector<std::string> labels;
  labels.reserve(variants.size());
  for (const auto& variant : variants) labels.push_back(variant.label);
  return labels;
}

// The standard ablation table: "matrix" + one column per variant label, one
// row per suite matrix (values[i][v] rendered with value_format), closed by
// an `average_label` row of per-column means.
TextTable sweep_average_table(const std::vector<suite::SuiteMatrix>& set,
                              const std::vector<std::string>& labels,
                              const std::vector<std::vector<double>>& values,
                              const char* value_format, const char* average_label);

// ---- structured benchmark reports (the "smtu-bench-v1" schema) -------------

// One suite matrix with its comparison result, ready for serialization.
struct MatrixRecord {
  std::string name;
  std::string set;
  std::string metric_name;  // empty: no figure metric for this bench
  double metric = 0.0;
  usize nnz = 0;
  TransposeComparison comparison;
};

// Runs compare_transposes for every matrix of `set` across a thread pool
// sized by options.jobs, preserving set order in the returned records. Each
// task runs its own Machine against immutable shared stages, so cycle counts
// are identical for every jobs value; only wall_ms differs. When
// options.sim_cache_dir is set, results are replayed from / stored to the
// on-disk cache.
std::vector<MatrixRecord> run_comparisons(const std::vector<suite::SuiteMatrix>& set,
                                          const vsim::MachineConfig& config,
                                          const BenchOptions& options,
                                          const std::string& metric_name = "",
                                          double (*metric)(const suite::MatrixMetrics&) = nullptr);

// Host-side harness facts for the JSON reports: resolved worker count and
// total wall time. Both are excluded from bench_diff gating.
struct HarnessInfo {
  u32 jobs = 1;
  double wall_ms = 0.0;
};

// Speedup statistics over a record span (the per-figure summary line).
struct SpeedupSummary {
  usize count = 0;
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;
};
SpeedupSummary summarize_speedups(const std::vector<MatrixRecord>& records);

// Mid-document helpers: the per-matrix array (each element carries cycles,
// cycles/nnz, speedup, and both kernels' full RunStats) and the summary
// object. The caller owns the surrounding JSON structure.
void write_matrix_records_json(JsonWriter& json, const std::vector<MatrixRecord>& records);
void write_speedup_summary_json(JsonWriter& json, const SpeedupSummary& summary);

// Complete "smtu-bench-v1" document: schema/bench tags, machine config,
// suite options, harness info, matrices, summary. This is what `--json=PATH`
// writes for the comparison benches and what tools/bench_diff.py consumes.
// Host-side cache counters for the "host" sub-object: how much work the
// program / matrix-stage / simulation caches absorbed. Like wall_ms, the
// values depend on process history, so bench_diff.py skips the whole key.
struct HostCounters {
  vsim::ProgramCache::Stats program_cache;
  kernels::MatrixStageCache::Stats stage_cache;
  std::optional<vsim::SimCache::Stats> sim_cache;  // set only under --sim-cache
};
HostCounters collect_host_counters(const std::optional<std::string>& sim_cache_dir);
void write_host_json(JsonWriter& json, const HostCounters& host);

void write_bench_report_json(std::ostream& out, const std::string& bench_name,
                             const vsim::MachineConfig& config,
                             const suite::SuiteOptions& suite_options,
                             const std::vector<MatrixRecord>& records,
                             const HarnessInfo& harness = {}, const HostCounters& host = {});

// The "harness" sub-object shared by smtu-bench-v1 and smtu-repro-v1.
void write_harness_json(JsonWriter& json, const HarnessInfo& harness);

// Runs the HiSM transpose of `entry` with an ExecutionTrace attached and
// writes the Chrome trace-event JSON to `path` (the --trace-json flag).
void write_transpose_trace_json(const std::string& path, const suite::SuiteMatrix& entry,
                                const vsim::MachineConfig& config);

}  // namespace smtu::bench
