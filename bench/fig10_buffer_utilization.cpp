// Figure 10: STM buffer-bandwidth utilization BU = (Z/C)/B, averaged over
// the 30 benchmark matrices, as a function of buffer bandwidth B for
// different numbers of accessible lines L.
//
// Paper result: utilization is highest at B = 1 (and below 100% only
// because of the 6-cycle per-block pipeline penalty); it grows with L but
// saturates above L = 4, which is why the paper fixes L = 4 for the
// performance experiments.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  constexpr u32 kBandwidths[] = {1, 2, 4, 8};
  constexpr u32 kLines[] = {1, 2, 4, 8};
  constexpr u32 kSection = 64;

  std::printf("== Fig. 10: buffer bandwidth utilization, s=%u, 30-matrix D-SAB suite ==\n",
              kSection);
  const auto suite_matrices = suite::build_dsab_suite(options.suite);

  // Build the HiSM images once; sweep the unit parameters over them.
  std::vector<HismMatrix> hisms;
  hisms.reserve(suite_matrices.size());
  for (const auto& entry : suite_matrices) {
    hisms.push_back(HismMatrix::from_coo(entry.matrix, kSection));
  }

  TextTable table({"B", "L=1", "L=2", "L=4", "L=8"});
  for (const u32 bandwidth : kBandwidths) {
    std::vector<std::string> row = {format("%u", bandwidth)};
    for (const u32 lines : kLines) {
      StmConfig config;
      config.section = kSection;
      config.bandwidth = bandwidth;
      config.lines = lines;
      double sum = 0.0;
      for (const HismMatrix& hism : hisms) {
        sum += bench::buffer_utilization(hism, config);
      }
      row.push_back(format("%.3f", sum / static_cast<double>(hisms.size())));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, options);

  std::printf(
      "\npaper shape: BU max at B=1 (<1.0 only due to the 6-cycle block penalty),\n"
      "rises with L, saturates for L>4 -> L=4 chosen for Figs. 11-13.\n");
  return 0;
}
