// Figure 10: STM buffer-bandwidth utilization BU = (Z/C)/B, averaged over
// the 30 benchmark matrices, as a function of buffer bandwidth B for
// different numbers of accessible lines L.
//
// Paper result: utilization is highest at B = 1 (and below 100% only
// because of the 6-cycle per-block pipeline penalty); it grows with L but
// saturates above L = 4, which is why the paper fixes L = 4 for the
// performance experiments.
#include <cstdio>

#include "bench_common.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  constexpr u32 kBandwidths[] = {1, 2, 4, 8};
  constexpr u32 kLines[] = {1, 2, 4, 8};
  constexpr u32 kSection = 64;

  std::printf("== Fig. 10: buffer bandwidth utilization, s=%u, 30-matrix D-SAB suite ==\n",
              kSection);
  const auto suite_matrices = suite::build_dsab_suite(options.suite);

  // Build the HiSM images once; sweep the unit parameters over them.
  ThreadPool pool(options.jobs);
  const auto hisms = parallel_map(pool, suite_matrices, [&](const suite::SuiteMatrix& entry) {
    return HismMatrix::from_coo(entry.matrix, kSection);
  });

  // Each task sweeps the full (B, L) grid for one matrix; the averages are
  // accumulated serially afterwards so the sums stay order-stable.
  const auto grids = parallel_map(pool, hisms, [&](const HismMatrix& hism) {
    std::vector<double> grid;
    grid.reserve(std::size(kBandwidths) * std::size(kLines));
    for (const u32 bandwidth : kBandwidths) {
      for (const u32 lines : kLines) {
        StmConfig config;
        config.section = kSection;
        config.bandwidth = bandwidth;
        config.lines = lines;
        grid.push_back(bench::buffer_utilization(hism, config));
      }
    }
    return grid;
  });

  TextTable table({"B", "L=1", "L=2", "L=4", "L=8"});
  for (usize b = 0; b < std::size(kBandwidths); ++b) {
    std::vector<std::string> row = {format("%u", kBandwidths[b])};
    for (usize l = 0; l < std::size(kLines); ++l) {
      double sum = 0.0;
      for (const auto& grid : grids) {
        sum += grid[b * std::size(kLines) + l];
      }
      row.push_back(format("%.3f", sum / static_cast<double>(grids.size())));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, options);

  std::printf(
      "\npaper shape: BU max at B=1 (<1.0 only due to the 6-cycle block penalty),\n"
      "rises with L, saturates for L>4 -> L=4 chosen for Figs. 11-13.\n");
  bench::finish_telemetry(options);
  return 0;
}
