// Ablation A4: sensitivity of the HiSM transposition to the section size s
// (the paper fixes s = 64; §II notes s < 256 keeps positions in 8 bits).
// Larger sections mean fewer, denser blocks (less per-block penalty) but a
// bigger s x s memory; smaller sections shrink the hardware but multiply
// hierarchy levels and block overheads.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/hism_transpose.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  constexpr u32 kSections[] = {16, 32, 64, 128, 256};

  std::printf("== Ablation A4: HiSM transpose vs section size (locality set) ==\n");
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.3);
  const auto set = suite::build_dsab_set(suite::kSetLocality, suite_options);

  TextTable table({"matrix", "s=16", "s=32", "s=64", "s=128", "s=256"});
  ThreadPool pool(options.jobs);
  const auto per_nnz_rows = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    std::vector<double> per_nnz_row;
    per_nnz_row.reserve(std::size(kSections));
    for (const u32 section : kSections) {
      vsim::MachineConfig config;
      config.section = section;
      const HismMatrix hism = HismMatrix::from_coo(entry.matrix, section);
      const u64 cycles = kernels::time_hism_transpose(hism, config).cycles;
      per_nnz_row.push_back(static_cast<double>(cycles) /
                            static_cast<double>(std::max<usize>(1, entry.matrix.nnz())));
    }
    return per_nnz_row;
  });
  std::vector<double> totals(std::size(kSections), 0.0);
  for (usize i = 0; i < set.size(); ++i) {
    std::vector<std::string> row = {set[i].name};
    for (usize column = 0; column < per_nnz_rows[i].size(); ++column) {
      totals[column] += per_nnz_rows[i][column];
      row.push_back(format("%.2f", per_nnz_rows[i][column]));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg_row = {"AVERAGE cyc/nnz"};
  for (const double total : totals) {
    avg_row.push_back(format("%.2f", total / static_cast<double>(set.size())));
  }
  table.add_row(std::move(avg_row));
  bench::emit(table, options.csv_path);
  return 0;
}
