// Ablation A4: sensitivity of the HiSM transposition to the section size s
// (the paper fixes s = 64; §II notes s < 256 keeps positions in 8 bits).
// Larger sections mean fewer, denser blocks (less per-block penalty) but a
// bigger s x s memory; smaller sections shrink the hardware but multiply
// hierarchy levels and block overheads.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/hism_transpose.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  const auto variants = bench::sweep_configs<vsim::MachineConfig>(
      "s=", {16, 32, 64, 128, 256},
      [](vsim::MachineConfig& config, u32 section) { config.section = section; });

  std::printf("== Ablation A4: HiSM transpose vs section size (locality set) ==\n");
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.3);
  const auto set = suite::build_dsab_set(suite::kSetLocality, suite_options);

  ThreadPool pool(options.jobs);
  const auto per_nnz_rows = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    std::vector<double> per_nnz_row;
    per_nnz_row.reserve(variants.size());
    for (const auto& variant : variants) {
      const HismMatrix hism = HismMatrix::from_coo(entry.matrix, variant.config.section);
      const u64 cycles = kernels::time_hism_transpose(hism, variant.config).cycles;
      per_nnz_row.push_back(static_cast<double>(cycles) /
                            static_cast<double>(std::max<usize>(1, entry.matrix.nnz())));
    }
    return per_nnz_row;
  });
  bench::emit(bench::sweep_average_table(set, bench::variant_labels(variants), per_nnz_rows,
                                         "%.2f", "AVERAGE cyc/nnz"),
              options.csv_path);
  bench::finish_telemetry(options);
  return 0;
}
