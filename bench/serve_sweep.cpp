// Serving-load sweep: closed-loop versus open-loop behavior of the
// transpose-as-a-service scheduler (src/serve, docs/SERVING.md).
//
// One Zipf-skewed request mix is generated per run; its distinct keys are
// simulated once on the host (the expensive part), then the deterministic
// virtual-time scheduler replays the same requests under
//
//   * open loop at a ladder of offered arrival rates (the recorded Poisson
//     arrivals rescaled in virtual time), showing queueing, tail latency,
//     and — past saturation — load shedding; and
//   * closed loop at a ladder of client counts, showing the saturation
//     throughput the admission queue protects.
//
// --json writes an "smtu-serve-sweep-v1" report whose metrics are all
// virtual-time (deterministic, gated by tools/bench_diff.py against
// bench/baselines/BENCH_serve_sweep_scale005.json); host wall time appears
// only under the skipped "host" section.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "support/assert.hpp"

namespace {

using namespace smtu;

constexpr double kOpenLoopRates[] = {10000.0, 20000.0, 40000.0, 80000.0, 160000.0, 320000.0};
constexpr u32 kClosedLoopClients[] = {1, 2, 4, 8, 16};

// The recorded arrivals rescaled to a different offered rate: a Poisson
// process thinned/accelerated in virtual time (gap * base_rate / target).
// Integer math keeps the rescaled trace bit-identical everywhere.
std::vector<serve::Request> rescale_arrivals(const std::vector<serve::Request>& requests,
                                             double base_rate, double target_rate) {
  std::vector<serve::Request> scaled = requests;
  // Rational factor with a fixed denominator so the scaling is exact in u64.
  const u64 num = static_cast<u64>(base_rate * 1024.0);
  const u64 den = static_cast<u64>(target_rate * 1024.0);
  for (serve::Request& request : scaled) {
    request.arrival_us = request.arrival_us * num / den;
  }
  return scaled;
}

struct SweepPoint {
  double rate_rps = 0.0;  // open loop
  u32 clients = 0;        // closed loop
  serve::VirtualReport virt;
};

void write_point(JsonWriter& json, const SweepPoint& point, bool open_loop) {
  json.begin_object();
  if (open_loop) {
    json.key("rate_rps");
    json.value(point.rate_rps);
  } else {
    json.key("clients");
    json.value(static_cast<u64>(point.clients));
  }
  json.key("admitted_requests");
  json.value(point.virt.admitted_requests);
  json.key("shed_requests");
  json.value(point.virt.shed_requests);
  json.key("coalesced_requests");
  json.value(point.virt.coalesced_requests);
  json.key("warm_requests");
  json.value(point.virt.warm_requests);
  json.key("simulated_requests");
  json.value(point.virt.simulated_requests);
  json.key("max_queue_depth");
  json.value(point.virt.max_queue_depth);
  json.key("makespan_vus");
  json.value(point.virt.makespan_vus);
  // Virtual throughput: admitted requests per virtual second — deterministic,
  // unlike the host's req_per_sec.
  json.key("virtual_krps");
  json.value(point.virt.makespan_vus == 0
                 ? 0.0
                 : static_cast<double>(point.virt.admitted_requests) * 1000.0 /
                       static_cast<double>(point.virt.makespan_vus));
  json.key("queue_p50_vus");
  json.value(point.virt.queue.p50);
  json.key("queue_p99_vus");
  json.value(point.virt.queue.p99);
  json.key("total_p50_vus");
  json.value(point.virt.total.p50);
  json.key("total_p99_vus");
  json.value(point.virt.total.p99);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  serve::GeneratorOptions gen;
  gen.suite = options.suite;
  gen.requests = 600;
  gen.arrival.zipf_skew = 1.0;
  gen.arrival.rate_rps = 20000.0;
  const serve::Trace trace = serve::generate_trace(gen);

  std::printf("== serve_sweep: open-loop rate ladder vs closed-loop clients "
              "(%zu requests, zipf %.1f, scale %g) ==\n",
              trace.requests.size(), trace.arrival.zipf_skew, trace.suite.scale);

  serve::ServeOptions serve_options;
  serve_options.jobs = options.jobs;
  serve_options.sim_cache_dir = options.sim_cache_dir;
  const auto started = std::chrono::steady_clock::now();
  const auto key_cycles = serve::simulate_keys(trace, serve_options);
  const double sim_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count();

  std::vector<SweepPoint> open_points;
  std::printf("\n-- open loop (queue depth %u, %u virtual workers) --\n",
              serve_options.queue_depth, serve_options.virtual_workers);
  std::printf("%12s %10s %8s %12s %12s %12s\n", "rate_rps", "shed", "qmax", "q_p99_vus",
              "tot_p99_vus", "virt_krps");
  for (const double rate : kOpenLoopRates) {
    SweepPoint point;
    point.rate_rps = rate;
    const auto scaled = rescale_arrivals(trace.requests, trace.arrival.rate_rps, rate);
    point.virt = serve::run_virtual(scaled, key_cycles, serve_options);
    const double krps = point.virt.makespan_vus == 0
                            ? 0.0
                            : static_cast<double>(point.virt.admitted_requests) * 1000.0 /
                                  static_cast<double>(point.virt.makespan_vus);
    std::printf("%12.0f %10llu %8llu %12llu %12llu %12.1f\n", rate,
                static_cast<unsigned long long>(point.virt.shed_requests),
                static_cast<unsigned long long>(point.virt.max_queue_depth),
                static_cast<unsigned long long>(point.virt.queue.p99),
                static_cast<unsigned long long>(point.virt.total.p99), krps);
    open_points.push_back(std::move(point));
  }

  std::vector<SweepPoint> closed_points;
  std::printf("\n-- closed loop --\n");
  std::printf("%12s %12s %12s %12s\n", "clients", "tot_p99_vus", "makespan", "virt_krps");
  for (const u32 clients : kClosedLoopClients) {
    SweepPoint point;
    point.clients = clients;
    serve::ServeOptions closed = serve_options;
    closed.closed_loop = clients;
    point.virt = serve::run_virtual(trace.requests, key_cycles, closed);
    const double krps = point.virt.makespan_vus == 0
                            ? 0.0
                            : static_cast<double>(point.virt.admitted_requests) * 1000.0 /
                                  static_cast<double>(point.virt.makespan_vus);
    std::printf("%12u %12llu %12llu %12.1f\n", clients,
                static_cast<unsigned long long>(point.virt.total.p99),
                static_cast<unsigned long long>(point.virt.makespan_vus), krps);
    closed_points.push_back(std::move(point));
  }
  std::printf("\nhost: %zu distinct simulations in %.0f ms\n", key_cycles.size(), sim_wall_ms);

  if (options.json_path) {
    std::ofstream out(*options.json_path);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open " + *options.json_path);
    JsonWriter json(out);
    json.begin_object();
    json.key("schema");
    json.value("smtu-serve-sweep-v1");
    json.key("seed");
    json.value(trace.seed);
    json.key("scale");
    json.value(trace.suite.scale);
    json.key("requests");
    json.value(static_cast<u64>(trace.requests.size()));
    json.key("distinct_sims");
    json.value(static_cast<u64>(key_cycles.size()));
    json.key("open_loop");
    json.begin_array();
    for (const SweepPoint& point : open_points) write_point(json, point, true);
    json.end_array();
    json.key("closed_loop");
    json.begin_array();
    for (const SweepPoint& point : closed_points) write_point(json, point, false);
    json.end_array();
    json.key("host");
    json.begin_object();
    json.key("sim_wall_ms");
    json.value(sim_wall_ms);
    json.end_object();
    json.end_object();
    out << '\n';
    std::fprintf(stderr, "wrote %s\n", options.json_path->c_str());
  }
  bench::finish_telemetry(options);
  return 0;
}
