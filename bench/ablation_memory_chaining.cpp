// Ablation A2: the two machine features §II/§IV-A lean on — the contiguous
// vs indexed memory cost gap, and vector chaining.
//
// Part 1 measures raw access costs (the paper's own example: a contiguous
// 64-word load takes 20 + 64/4 = 36 cycles, an indexed one 20 + 64 = 84).
// Part 2 re-times both transpose kernels with chaining disabled.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "support/parallel.hpp"
#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace {

smtu::Cycle run_cycles(const std::string& source, const smtu::vsim::MachineConfig& config) {
  smtu::vsim::Machine machine(config);
  machine.memory().ensure(0, 1 << 20);
  return machine.run(smtu::vsim::assemble(source)).cycles;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  vsim::MachineConfig config;

  std::printf("== Ablation A2a: vector memory access costs (s=%u) ==\n", config.section);
  TextTable access({"access pattern", "cycles", "paper formula"});
  access.add_row({"contiguous 64-word load",
                  format("%llu", static_cast<unsigned long long>(run_cycles(
                                     "li r1, 64\nssvl r1\nli r2, 0x1000\n"
                                     "v_ld vr1, (r2)\nhalt\n",
                                     config))),
                  "20 + 64/4 = 36"});
  access.add_row({"indexed 64-element load",
                  format("%llu", static_cast<unsigned long long>(run_cycles(
                                     "li r1, 64\nssvl r1\nli r2, 0x1000\n"
                                     "v_bcasti vr0, 0\nv_ldx vr1, (r2), vr0\nhalt\n",
                                     config))),
                  "20 + 64 = 84 (+ index setup)"});
  access.add_row({"contiguous 64-word store",
                  format("%llu", static_cast<unsigned long long>(run_cycles(
                                     "li r1, 64\nssvl r1\nli r2, 0x1000\n"
                                     "v_bcasti vr1, 7\nv_st vr1, (r2)\nhalt\n",
                                     config))),
                  "20 + 64/4 = 36 (+ setup)"});
  access.print(std::cout);

  std::printf("\n== Ablation A2b: kernels with chaining on/off ==\n");
  // Medium workload: the ANZ set scaled down keeps the sweep quick.
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.25);
  const auto set = suite::build_dsab_set(suite::kSetAnz, suite_options);

  TextTable table({"matrix", "HiSM chained", "HiSM unchained", "CRS chained",
                   "CRS unchained"});
  struct ChainTimings {
    u64 hism_on;
    u64 hism_off;
    u64 crs_on;
    u64 crs_off;
  };
  ThreadPool pool(options.jobs);
  const auto timings = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    // Each task mutates its own copy of the machine config.
    vsim::MachineConfig local = config;
    const HismMatrix hism = HismMatrix::from_coo(entry.matrix, local.section);
    const Csr csr = Csr::from_coo(entry.matrix);
    ChainTimings t;
    local.chaining = true;
    t.hism_on = kernels::time_hism_transpose(hism, local).cycles;
    t.crs_on = kernels::time_crs_transpose(csr, local).cycles;
    local.chaining = false;
    t.hism_off = kernels::time_hism_transpose(hism, local).cycles;
    t.crs_off = kernels::time_crs_transpose(csr, local).cycles;
    return t;
  });
  for (usize i = 0; i < set.size(); ++i) {
    const auto& entry = set[i];
    const ChainTimings& t = timings[i];
    table.add_row({entry.name, format("%llu", static_cast<unsigned long long>(t.hism_on)),
                   format("%llu (+%.0f%%)", static_cast<unsigned long long>(t.hism_off),
                          100.0 * (static_cast<double>(t.hism_off) / static_cast<double>(t.hism_on) - 1.0)),
                   format("%llu", static_cast<unsigned long long>(t.crs_on)),
                   format("%llu (+%.0f%%)", static_cast<unsigned long long>(t.crs_off),
                          100.0 * (static_cast<double>(t.crs_off) / static_cast<double>(t.crs_on) - 1.0))});
  }
  bench::emit(table, options.csv_path);
  bench::finish_telemetry(options);
  return 0;
}
