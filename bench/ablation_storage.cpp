// Ablation A3: the storage claim of §II — HiSM stores an 8+8-bit position
// per non-zero (plus the small higher-level hierarchy), while CRS stores a
// 32-bit column index per non-zero plus a row-pointer array.
#include <cstdio>

#include "bench_common.hpp"
#include "hism/stats.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  constexpr u32 kSection = 64;

  std::printf("== Ablation A3: storage footprint, HiSM (s=%u) vs CRS ==\n", kSection);
  const auto suite_matrices = suite::build_dsab_suite(options.suite);

  TextTable table({"matrix", "nnz", "CRS bytes", "HiSM bytes", "HiSM/CRS", "hier overhead"});
  struct StorageRow {
    u64 crs_bytes;
    HismStats stats;
  };
  ThreadPool pool(options.jobs);
  const auto rows = parallel_map(pool, suite_matrices, [&](const suite::SuiteMatrix& entry) {
    const Csr csr = Csr::from_coo(entry.matrix);
    return StorageRow{csr.storage_bytes(),
                      compute_stats(HismMatrix::from_coo(entry.matrix, kSection))};
  });
  double ratio_sum = 0.0;
  double overhead_sum = 0.0;
  for (usize i = 0; i < suite_matrices.size(); ++i) {
    const auto& entry = suite_matrices[i];
    const StorageRow& r = rows[i];
    const double ratio =
        static_cast<double>(r.stats.storage_bytes) / static_cast<double>(r.crs_bytes);
    ratio_sum += ratio;
    overhead_sum += r.stats.overhead_fraction;
    table.add_row({entry.name, format("%zu", entry.matrix.nnz()),
                   format("%llu", static_cast<unsigned long long>(r.crs_bytes)),
                   format("%llu", static_cast<unsigned long long>(r.stats.storage_bytes)),
                   format("%.2f", ratio), format("%.1f%%", 100.0 * r.stats.overhead_fraction)});
  }
  bench::emit(table, options.csv_path);

  const double n = static_cast<double>(suite_matrices.size());
  std::printf("\naverage HiSM/CRS size ratio: %.2f  (paper: HiSM positions are 2 bytes vs\n"
              "CRS's 4-byte indices; hierarchy overhead ~2-5%% at s=64 -> avg here %.1f%%)\n",
              ratio_sum / n, 100.0 * overhead_sum / n);
  bench::finish_telemetry(options);
  return 0;
}
