// Headline result (abstract / §IV-D): HiSM-based transposition speedup over
// CRS across the full 30-matrix suite.
//
// Paper: range 1.8 .. 32.0, average 17.6.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const std::string mtxdir = cli.get_string("mtxdir", "");
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  const auto suite_matrices =
      mtxdir.empty() ? suite::build_dsab_suite(options.suite)
                     : bench::load_external_suite(mtxdir);
  std::printf("== Headline: HiSM vs CRS transposition over %zu matrices (%s) ==\n",
              suite_matrices.size(),
              mtxdir.empty() ? "synthetic D-SAB stand-in" : mtxdir.c_str());

  TextTable table({"matrix", "set", "nnz", "HiSM cyc/nnz", "CRS cyc/nnz", "speedup"});
  std::vector<double> speedups;
  for (const auto& entry : suite_matrices) {
    const auto comparison = bench::compare_transposes(entry, config, options.verify);
    speedups.push_back(comparison.speedup);
    table.add_row({entry.name, entry.set, format("%zu", entry.matrix.nnz()),
                   format("%.2f", comparison.hism_cycles_per_nnz),
                   format("%.2f", comparison.crs_cycles_per_nnz),
                   format("%.1f", comparison.speedup)});
  }
  bench::emit(table, options);

  const auto [min_it, max_it] = std::minmax_element(speedups.begin(), speedups.end());
  double sum = 0.0;
  for (const double s : speedups) sum += s;
  std::printf("\nmeasured: speedup %.1f .. %.1f, average %.1f (%zu matrices)\n", *min_it,
              *max_it, sum / static_cast<double>(speedups.size()), speedups.size());
  std::printf("paper:    speedup 1.8 .. 32.0, average 17.6 (30 matrices)\n");
  return 0;
}
