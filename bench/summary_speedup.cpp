// Headline result (abstract / §IV-D): HiSM-based transposition speedup over
// CRS across the full 30-matrix suite.
//
// Paper: range 1.8 .. 32.0, average 17.6.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const std::string mtxdir = cli.get_string("mtxdir", "");
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  const auto started = std::chrono::steady_clock::now();
  const auto suite_matrices =
      mtxdir.empty() ? suite::build_dsab_suite(options.suite)
                     : bench::load_external_suite(mtxdir);
  std::printf("== Headline: HiSM vs CRS transposition over %zu matrices (%s) ==\n",
              suite_matrices.size(),
              mtxdir.empty() ? "synthetic D-SAB stand-in" : mtxdir.c_str());

  const std::vector<bench::MatrixRecord> records =
      bench::run_comparisons(suite_matrices, config, options);
  const bench::HarnessInfo harness{
      resolve_jobs(options.jobs),
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count()};

  TextTable table({"matrix", "set", "nnz", "HiSM cyc/nnz", "CRS cyc/nnz", "speedup"});
  for (const auto& record : records) {
    table.add_row({record.name, record.set, format("%zu", record.nnz),
                   format("%.2f", record.comparison.hism_cycles_per_nnz),
                   format("%.2f", record.comparison.crs_cycles_per_nnz),
                   format("%.1f", record.comparison.speedup)});
  }
  bench::emit(table, options.csv_path);
  if (options.json_path) {
    std::ofstream out(*options.json_path);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open JSON output " + *options.json_path);
    bench::write_bench_report_json(out, "summary_speedup", config, options.suite, records,
                                   harness, bench::collect_host_counters(options.sim_cache_dir));
    std::fprintf(stderr, "wrote JSON report to %s\n", options.json_path->c_str());
  }
  if (options.trace_json_path) {
    bench::write_transpose_trace_json(*options.trace_json_path, suite_matrices.front(),
                                      config);
  }

  const bench::SpeedupSummary summary = bench::summarize_speedups(records);
  std::printf("\nmeasured: speedup %.1f .. %.1f, average %.1f (%zu matrices)\n", summary.min,
              summary.max, summary.avg, summary.count);
  std::printf("paper:    speedup 1.8 .. 32.0, average 17.6 (30 matrices)\n");
  bench::finish_telemetry(options);
  return 0;
}
