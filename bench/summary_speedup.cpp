// Headline result (abstract / §IV-D): HiSM-based transposition speedup over
// CRS across the full 30-matrix suite.
//
// Paper: range 1.8 .. 32.0, average 17.6.
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "support/assert.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const std::string mtxdir = cli.get_string("mtxdir", "");
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  const auto suite_matrices =
      mtxdir.empty() ? suite::build_dsab_suite(options.suite)
                     : bench::load_external_suite(mtxdir);
  std::printf("== Headline: HiSM vs CRS transposition over %zu matrices (%s) ==\n",
              suite_matrices.size(),
              mtxdir.empty() ? "synthetic D-SAB stand-in" : mtxdir.c_str());

  TextTable table({"matrix", "set", "nnz", "HiSM cyc/nnz", "CRS cyc/nnz", "speedup"});
  std::vector<bench::MatrixRecord> records;
  for (const auto& entry : suite_matrices) {
    const auto comparison = bench::compare_transposes(entry, config, options.verify);
    table.add_row({entry.name, entry.set, format("%zu", entry.matrix.nnz()),
                   format("%.2f", comparison.hism_cycles_per_nnz),
                   format("%.2f", comparison.crs_cycles_per_nnz),
                   format("%.1f", comparison.speedup)});
    records.push_back({entry.name, entry.set, /*metric_name=*/"", /*metric=*/0.0,
                       entry.matrix.nnz(), comparison});
  }
  bench::emit(table, options.csv_path);
  if (options.json_path) {
    std::ofstream out(*options.json_path);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open JSON output " + *options.json_path);
    bench::write_bench_report_json(out, "summary_speedup", config, options.suite, records);
    std::fprintf(stderr, "wrote JSON report to %s\n", options.json_path->c_str());
  }
  if (options.trace_json_path) {
    bench::write_transpose_trace_json(*options.trace_json_path, suite_matrices.front(),
                                      config);
  }

  const bench::SpeedupSummary summary = bench::summarize_speedups(records);
  std::printf("\nmeasured: speedup %.1f .. %.1f, average %.1f (%zu matrices)\n", summary.min,
              summary.max, summary.avg, summary.count);
  std::printf("paper:    speedup 1.8 .. 32.0, average 17.6 (30 matrices)\n");
  return 0;
}
