// Ablation A1: the paper's extended mechanism inserts multiple lines per
// cycle only when their indices are *consecutive* (cheap row decoders). How
// much does that restriction cost against a hypothetical unit with L fully
// independent line buffers?
#include <cstdio>

#include "bench_common.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  constexpr u32 kSection = 64;
  constexpr u32 kBandwidth = 4;  // the paper's B = p = 4
  StmConfig base;
  base.section = kSection;
  base.bandwidth = kBandwidth;
  base.strict_consecutive_lines = true;
  const auto variants = bench::sweep_configs<StmConfig>(
      "L=", {1, 2, 4, 8, 16}, [](StmConfig& config, u32 lines) { config.lines = lines; },
      base);

  std::printf(
      "== Ablation A1: strict consecutive-lines rule vs relaxed (any %u-line) buffers ==\n"
      "(avg BU over the 30-matrix suite, s=%u, B=%u)\n",
      kBandwidth, kSection, kBandwidth);
  const auto suite_matrices = suite::build_dsab_suite(options.suite);
  ThreadPool pool(options.jobs);
  const auto hisms = parallel_map(pool, suite_matrices, [&](const suite::SuiteMatrix& entry) {
    return HismMatrix::from_coo(entry.matrix, kSection);
  });

  TextTable table({"L", "BU strict", "BU relaxed", "relaxed gain"});
  struct UtilizationPair {
    double strict_bu;
    double relaxed_bu;
  };
  for (const auto& variant : variants) {
    const auto pairs = parallel_map(pool, hisms, [&](const HismMatrix& hism) {
      const double strict_bu = bench::buffer_utilization(hism, variant.config);
      StmConfig relaxed = variant.config;
      relaxed.strict_consecutive_lines = false;
      return UtilizationPair{strict_bu, bench::buffer_utilization(hism, relaxed)};
    });
    double strict_sum = 0.0;
    double relaxed_sum = 0.0;
    for (const UtilizationPair& pair : pairs) {
      strict_sum += pair.strict_bu;
      relaxed_sum += pair.relaxed_bu;
    }
    const double n = static_cast<double>(hisms.size());
    table.add_row({variant.label, format("%.3f", strict_sum / n),
                   format("%.3f", relaxed_sum / n),
                   format("%+.1f%%", (relaxed_sum / strict_sum - 1.0) * 100.0)});
  }
  bench::emit(table, options.csv_path);
  std::printf(
      "\nreading: if the relaxed gain is small at L=4, the paper's cheap consecutive-\n"
      "line hardware is justified; the gap closes further as L grows.\n");
  bench::finish_telemetry(options);
  return 0;
}
