// Extension E3: the full machine ladder for sparse transposition —
//   (1) Pissanetsky on the scalar core alone (a traditional processor),
//   (2) the vectorized CRS kernel on the vector machine (§IV-A baseline),
//   (3) HiSM on the vector machine extended with the STM (the paper).
// This decomposes the headline speedup into "what vectors buy" and "what
// the STM buys on top".
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  std::printf("== Extension E3: scalar CRS -> vector CRS -> HiSM+STM (locality set) ==\n");
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.5);
  const auto set = suite::build_dsab_set(suite::kSetLocality, suite_options);

  TextTable table({"matrix", "scalar c/nnz", "vector c/nnz", "HiSM c/nnz",
                   "vector gain", "STM gain", "total"});
  struct LadderTimings {
    u64 scalar_cycles;
    u64 vector_cycles;
    u64 hism_cycles;
  };
  ThreadPool pool(options.jobs);
  const auto timings = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    const Csr csr = Csr::from_coo(entry.matrix);
    const HismMatrix hism = HismMatrix::from_coo(entry.matrix, config.section);
    return LadderTimings{kernels::time_scalar_crs_transpose(csr, config).cycles,
                         kernels::time_crs_transpose(csr, config).cycles,
                         kernels::time_hism_transpose(hism, config).cycles};
  });
  double total_vector = 0.0;
  double total_stm = 0.0;
  for (usize i = 0; i < set.size(); ++i) {
    const auto& entry = set[i];
    const double nnz = static_cast<double>(std::max<usize>(1, entry.matrix.nnz()));
    const u64 scalar_cycles = timings[i].scalar_cycles;
    const u64 vector_cycles = timings[i].vector_cycles;
    const u64 hism_cycles = timings[i].hism_cycles;

    const double vector_gain =
        static_cast<double>(scalar_cycles) / static_cast<double>(vector_cycles);
    const double stm_gain =
        static_cast<double>(vector_cycles) / static_cast<double>(hism_cycles);
    total_vector += vector_gain;
    total_stm += stm_gain;
    table.add_row({entry.name, format("%.1f", static_cast<double>(scalar_cycles) / nnz),
                   format("%.1f", static_cast<double>(vector_cycles) / nnz),
                   format("%.2f", static_cast<double>(hism_cycles) / nnz),
                   format("%.1fx", vector_gain), format("%.1fx", stm_gain),
                   format("%.1fx", static_cast<double>(scalar_cycles) /
                                       static_cast<double>(hism_cycles))});
  }
  bench::emit(table, options.csv_path);
  const double n = static_cast<double>(set.size());
  std::printf("\naverage: the vector machine buys %.1fx over scalar CRS; the STM buys a\n"
              "further %.1fx on top — transposition is irregular enough that plain\n"
              "vectorization leaves most of the win to the dedicated unit.\n",
              total_vector / n, total_stm / n);
  bench::finish_telemetry(options);
  return 0;
}
