// Extension E6: the SpMV/SpGEMM kernel suite on the multi-core machine.
//
// Two kernels ride on the PR-5 banked-memory MultiCoreSystem:
//   * SELL-C-σ SpMV (formats/sell + kernels/sell_spmv): chunked, sorted,
//     lane-major storage that removes the CRS kernel's per-row strip-mining
//     overhead. Run at C = 16 and C = 64 (σ = 0, global sort) against the
//     CRS and HiSM SpMV kernels at one core, and scaled to N = 1, 2, 4, 8.
//   * Gustavson-on-HiSM SpGEMM (kernels/spgemm): C = A^T * B with the STM
//     supplying the (i, k)-sorted access pattern; benched here as A^T * A.
//
// The matrix list is the D-SAB locality set plus four row-shuffled power-law
// matrices ("irregular" set) whose row-length variance is the case SELL-C-σ
// exists for. --verify checks the kernels bit-for-bit against the host
// references at every core count.
//
// --json writes an "smtu-kernelsuite-v1" report gated by tools/bench_diff.py
// against bench/baselines/BENCH_kernel_suite_scale005.json.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "formats/sell.hpp"
#include "kernels/sell_spmv.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmv.hpp"
#include "suite/generators.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "vsim/json_export.hpp"
#include "vsim/system.hpp"

namespace {

using namespace smtu;

constexpr u32 kCores[] = {1, 2, 4, 8};
constexpr u32 kSellChunks[] = {16, 64};

struct ScalePoint {
  u32 cores = 0;
  Cycle cycles = 0;
};

struct MatrixKernels {
  double row_cv = 0.0;  // row-length coefficient of variation
  Cycle csr_cycles = 0;
  Cycle hism_cycles = 0;
  std::vector<ScalePoint> sell[std::size(kSellChunks)];
  std::vector<ScalePoint> spgemm;
};

double speedup_vs_one_core(const std::vector<ScalePoint>& points, usize index) {
  return static_cast<double>(points[0].cycles) /
         static_cast<double>(std::max<Cycle>(1, points[index].cycles));
}

double row_length_cv(const Coo& coo) {
  if (coo.rows() == 0 || coo.nnz() == 0) return 0.0;
  std::vector<u32> len(coo.rows(), 0);
  for (const auto& e : coo.entries()) ++len[e.row];
  const double mean = static_cast<double>(coo.nnz()) / static_cast<double>(coo.rows());
  double var = 0.0;
  for (const u32 l : len) {
    const double d = static_cast<double>(l) - mean;
    var += d * d;
  }
  var /= static_cast<double>(coo.rows());
  return std::sqrt(var) / mean;
}

// gen_powerlaw_rows assigns lengths monotonically by row index; shuffling the
// row ids makes the matrices order-oblivious, so SELL's sort has real work.
Coo shuffle_rows(const Coo& coo, Rng& rng) {
  std::vector<Index> perm(coo.rows());
  for (Index r = 0; r < coo.rows(); ++r) perm[r] = r;
  rng.shuffle(perm);
  Coo out(coo.rows(), coo.cols());
  for (const auto& e : coo.entries()) out.add(perm[e.row], e.col, e.value);
  out.canonicalize();
  return out;
}

std::vector<suite::SuiteMatrix> build_irregular_set(const suite::SuiteOptions& options) {
  struct Spec {
    const char* name;
    double alpha;
  };
  // Steeper alpha = more skewed row lengths (higher CV).
  static constexpr Spec kSpecs[] = {{"powerlaw-a08-syn", 0.8},
                                    {"powerlaw-a11-syn", 1.1},
                                    {"powerlaw-a14-syn", 1.4},
                                    {"powerlaw-a17-syn", 1.7}};
  const Index n = std::max<Index>(
      192, static_cast<Index>(std::lround(2048.0 * std::sqrt(options.scale))));
  std::vector<suite::SuiteMatrix> set;
  for (u32 i = 0; i < std::size(kSpecs); ++i) {
    Rng rng(options.seed ^ (0x5e11c000ull + i));
    Coo coo = suite::gen_powerlaw_rows(n, static_cast<usize>(n) * 8, kSpecs[i].alpha, rng);
    coo = shuffle_rows(coo, rng);
    suite::SuiteMatrix entry;
    entry.name = kSpecs[i].name;
    entry.set = "irregular";
    entry.index = i;
    entry.metrics = suite::compute_metrics(coo);
    entry.matrix = std::move(coo);
    set.push_back(std::move(entry));
  }
  return set;
}

void check_bits(const std::vector<float>& got, const std::vector<float>& want,
                const std::string& what) {
  SMTU_CHECK_MSG(got.size() == want.size(), what + ": size mismatch");
  for (usize i = 0; i < got.size(); ++i) {
    SMTU_CHECK_MSG(std::bit_cast<u32>(got[i]) == std::bit_cast<u32>(want[i]),
                   what + ": bit mismatch at element " + std::to_string(i));
  }
}

MatrixKernels bench_matrix(const suite::SuiteMatrix& entry, const vsim::SystemConfig& base,
                           u64 suite_seed, bool verify) {
  u64 seed = suite_seed;
  for (const char c : entry.name) seed = seed * 131 + static_cast<u64>(c);
  Rng rng(seed);
  std::vector<float> x(entry.matrix.cols());
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  MatrixKernels result;
  result.row_cv = row_length_cv(entry.matrix);

  const Csr csr = Csr::from_coo(entry.matrix);
  result.csr_cycles = kernels::run_crs_spmv(csr, x, base.core).stats.cycles;
  result.hism_cycles =
      kernels::run_hism_spmv(HismMatrix::from_coo(entry.matrix, base.core.section), x,
                             base.core)
          .stats.cycles;

  const std::vector<float> want = verify ? csr.spmv(x) : std::vector<float>{};
  for (usize v = 0; v < std::size(kSellChunks); ++v) {
    const SellCSigma sell = SellCSigma::from_coo(entry.matrix, kSellChunks[v], 0);
    for (const u32 cores : kCores) {
      vsim::SystemConfig config = base;
      config.cores = cores;
      ScalePoint point;
      point.cores = cores;
      if (verify) {
        const kernels::SellSpmvResult run = kernels::run_sell_spmv(sell, x, config);
        check_bits(run.y, want,
                   entry.name + " SELL-" + std::to_string(kSellChunks[v]) + " SpMV at N=" +
                       std::to_string(cores));
        point.cycles = run.stats.cycles;
      } else {
        point.cycles = kernels::time_sell_spmv(sell, x, config).cycles;
      }
      result.sell[v].push_back(point);
    }
  }

  // SpGEMM benches C = A^T * A: square output, same sparsity class as A.
  const std::vector<float> want_dense =
      verify ? kernels::spgemm_at_b_reference_dense(entry.matrix, csr) : std::vector<float>{};
  for (const u32 cores : kCores) {
    vsim::SystemConfig config = base;
    config.cores = cores;
    ScalePoint point;
    point.cores = cores;
    if (verify) {
      const kernels::SpgemmResult run = kernels::run_hism_spgemm(entry.matrix, csr, config);
      check_bits(run.dense, want_dense, entry.name + " SpGEMM at N=" + std::to_string(cores));
      point.cycles = run.stats.cycles;
    } else {
      point.cycles = kernels::time_hism_spgemm(entry.matrix, csr, config).cycles;
    }
    result.spgemm.push_back(point);
  }
  return result;
}

double sell16_vs_csr(const MatrixKernels& result) {
  return static_cast<double>(result.csr_cycles) /
         static_cast<double>(std::max<Cycle>(1, result.sell[0][0].cycles));
}

double sell64_vs_csr(const MatrixKernels& result) {
  return static_cast<double>(result.csr_cycles) /
         static_cast<double>(std::max<Cycle>(1, result.sell[1][0].cycles));
}

void write_points_json(JsonWriter& json, const std::vector<ScalePoint>& points) {
  json.begin_array();
  for (usize i = 0; i < points.size(); ++i) {
    json.begin_object();
    json.key("cores");
    json.value(static_cast<u64>(points[i].cores));
    json.key("cycles");
    json.value(static_cast<u64>(points[i].cycles));
    json.key("speedup");
    json.value(speedup_vs_one_core(points, i));
    json.end_object();
  }
  json.end_array();
}

void write_set_summary_json(JsonWriter& json, const std::vector<suite::SuiteMatrix>& set,
                            const std::vector<MatrixKernels>& results, const char* which) {
  usize count = 0;
  double min = 0.0, max = 0.0, total = 0.0;
  for (usize i = 0; i < set.size(); ++i) {
    if (set[i].set != which) continue;
    const double s = sell16_vs_csr(results[i]);
    if (count == 0) min = max = s;
    min = std::min(min, s);
    max = std::max(max, s);
    total += s;
    ++count;
  }
  json.begin_object();
  json.key("count");
  json.value(static_cast<u64>(count));
  json.key("min");
  json.value(min);
  json.key("max");
  json.value(max);
  json.key("avg_speedup");
  json.value(count ? total / static_cast<double>(count) : 0.0);
  json.end_object();
}

void write_suite_report_json(std::ostream& out, const vsim::SystemConfig& config,
                             const suite::SuiteOptions& suite_options,
                             const std::vector<suite::SuiteMatrix>& set,
                             const std::vector<MatrixKernels>& results,
                             const bench::HarnessInfo& harness) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema");
  json.value("smtu-kernelsuite-v1");
  json.key("bench");
  json.value("ext_kernel_suite");
  json.key("config");
  vsim::write_machine_config_json(json, config.core);
  json.key("suite");
  json.begin_object();
  json.key("scale");
  json.value(suite_options.scale);
  json.key("seed");
  json.value(suite_options.seed);
  json.end_object();
  json.key("harness");
  bench::write_harness_json(json, harness);
  json.key("matrices");
  json.begin_array();
  for (usize i = 0; i < set.size(); ++i) {
    json.begin_object();
    json.key("name");
    json.value(set[i].name);
    json.key("set");
    json.value(set[i].set);
    json.key("nnz");
    json.value(static_cast<u64>(set[i].matrix.nnz()));
    json.key("row_cv");
    json.value(results[i].row_cv);
    json.key("sell16_vs_csr_speedup");
    json.value(sell16_vs_csr(results[i]));
    json.key("sell64_vs_csr_speedup");
    json.value(sell64_vs_csr(results[i]));
    json.key("kernels");
    json.begin_object();
    json.key("csr_spmv");
    json.begin_object();
    json.key("cycles");
    json.value(static_cast<u64>(results[i].csr_cycles));
    json.end_object();
    json.key("hism_spmv");
    json.begin_object();
    json.key("cycles");
    json.value(static_cast<u64>(results[i].hism_cycles));
    json.end_object();
    json.key("sell16_spmv");
    write_points_json(json, results[i].sell[0]);
    json.key("sell64_spmv");
    write_points_json(json, results[i].sell[1]);
    json.key("spgemm");
    write_points_json(json, results[i].spgemm);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.key("summary");
  json.begin_object();
  json.key("sell_vs_csr");
  json.begin_object();
  json.key(suite::kSetLocality);
  write_set_summary_json(json, set, results, suite::kSetLocality);
  json.key("irregular");
  write_set_summary_json(json, set, results, "irregular");
  json.end_object();
  for (const auto& [key, points] :
       {std::pair<const char*, std::vector<ScalePoint> MatrixKernels::*>{
            "sell16_scaling", nullptr},
        {"spgemm_scaling", &MatrixKernels::spgemm}}) {
    json.key(key);
    json.begin_array();
    for (usize n = 0; n < std::size(kCores); ++n) {
      double total = 0.0;
      for (const MatrixKernels& result : results) {
        total += speedup_vs_one_core(points ? result.*points : result.sell[0], n);
      }
      json.begin_object();
      json.key("cores");
      json.value(static_cast<u64>(kCores[n]));
      json.key("avg_speedup");
      json.value(total / static_cast<double>(std::max<usize>(1, results.size())));
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::SystemConfig base{};

  std::printf("== Extension E6: SpMV/SpGEMM kernel suite "
              "(SELL-C-\xcf\x83 + Gustavson-on-HiSM, N = 1..8 cores) ==\n");
  suite::SuiteOptions suite_options = options.suite;
  // The SpGEMM accumulator is a dense n x n buffer; the clamp keeps it in
  // tens of megabytes of simulated memory at full --scale.
  suite_options.scale = std::min(suite_options.scale, 0.15);
  std::vector<suite::SuiteMatrix> set =
      suite::build_dsab_set(suite::kSetLocality, suite_options);
  for (suite::SuiteMatrix& entry : build_irregular_set(suite_options)) {
    set.push_back(std::move(entry));
  }

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options.jobs);
  const std::vector<MatrixKernels> results =
      parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
        return bench_matrix(entry, base, suite_options.seed, options.verify);
      });
  if (options.verify) {
    std::printf("verify: all kernels bit-identical to the host references at "
                "N = 1, 2, 4, 8 cores\n");
  }

  {
    std::printf("\n-- SpMV cycles at 1 core --\n");
    std::vector<std::vector<double>> rows;
    for (const MatrixKernels& result : results) {
      rows.push_back({static_cast<double>(result.csr_cycles),
                      static_cast<double>(result.hism_cycles),
                      static_cast<double>(result.sell[0][0].cycles),
                      static_cast<double>(result.sell[1][0].cycles)});
    }
    bench::emit(bench::sweep_average_table(set, {"CRS", "HiSM", "SELL-16", "SELL-64"}, rows,
                                           "%.0f", "AVERAGE cycles"),
                options.csv_path);
  }
  {
    std::printf("\n-- speedups: SELL-16 vs CRS @1 core; SELL-16 and SpGEMM at N=8 vs N=1 --\n");
    std::vector<std::vector<double>> rows;
    for (const MatrixKernels& result : results) {
      rows.push_back({sell16_vs_csr(result),
                      speedup_vs_one_core(result.sell[0], std::size(kCores) - 1),
                      speedup_vs_one_core(result.spgemm, std::size(kCores) - 1)});
    }
    bench::emit(bench::sweep_average_table(set, {"SELL16/CRS", "SELL16 N=8", "SpGEMM N=8"},
                                           rows, "%.2f", "AVERAGE speedup"),
                std::nullopt);
  }

  if (options.json_path) {
    bench::HarnessInfo harness;
    harness.jobs = pool.jobs();
    harness.wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::ofstream out(*options.json_path);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open " + *options.json_path);
    write_suite_report_json(out, base, suite_options, set, results, harness);
    std::fprintf(stderr, "wrote smtu-kernelsuite-v1 report to %s\n",
                 options.json_path->c_str());
  }

  std::printf(
      "\nreading: SELL-C-\xcf\x83 wins where row lengths are skewed (the irregular set's\n"
      "high row_cv) because the CRS kernel pays per-row strip-mining startup; at\n"
      "C = 64 chunk padding can give the advantage back. The SpGEMM curve scales\n"
      "with the output-row stripes; docs/KERNELS.md maps every column here to its\n"
      "kernel and profile regions.\n");
  bench::finish_telemetry(options);
  return 0;
}
