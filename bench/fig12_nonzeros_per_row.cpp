// Figure 12: transposition performance across the ten matrices selected by
// average non-zeros per row (ANZ).
//
// Paper result: speedup 11.9 .. 28.9, average 20.0; CRS performance improves
// as ANZ grows (longer rows amortize the per-row vector startup costs).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const smtu::bench::FigureSeries series{
      .set = smtu::suite::kSetAnz,
      .metric_header = "nnz/row",
      .metric = [](const smtu::suite::MatrixMetrics& m) { return m.avg_nnz_per_row; },
      .paper_min = 11.9,
      .paper_max = 28.9,
      .paper_avg = 20.0,
  };
  return smtu::bench::run_figure_bench(argc, argv, series);
}
