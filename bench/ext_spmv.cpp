// Extension E1: sparse matrix-vector multiplication, HiSM vs CRS vs Jagged
// Diagonals on the simulated vector processor.
//
// This is the context experiment behind the paper's introduction: the
// companion work ([5], IPDPS 2003) reports HiSM SpMV speedups of up to 5x
// over JD and CRS, depending on the sparsity pattern. We rerun that
// comparison on our machine model over the locality-sorted suite — the
// pattern axis the HiSM advantage tracks.
#include <cstdio>

#include "bench_common.hpp"
#include "formats/jagged.hpp"
#include "kernels/spmv.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  std::printf("== Extension E1: SpMV cycles/nnz, HiSM vs CRS vs JD (locality set) ==\n");
  const auto set = suite::build_dsab_set(suite::kSetLocality, options.suite);

  TextTable table({"matrix", "locality", "HiSM", "CRS", "JD", "vs CRS", "vs JD"});
  struct SpmvCycles {
    u64 hism;
    u64 crs;
    u64 jd;
  };
  ThreadPool pool(options.jobs);
  const auto cycles = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    // Each task seeds its own Rng from the matrix index, so the input
    // vectors are identical regardless of execution order.
    Rng rng(options.suite.seed ^ entry.index);
    std::vector<float> x(entry.matrix.cols());
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

    const auto hism =
        kernels::run_hism_spmv(HismMatrix::from_coo(entry.matrix, config.section), x, config);
    const auto crs = kernels::run_crs_spmv(Csr::from_coo(entry.matrix), x, config);
    const auto jd = kernels::run_jd_spmv(Jagged::from_coo(entry.matrix), x, config);
    return SpmvCycles{hism.stats.cycles, crs.stats.cycles, jd.stats.cycles};
  });
  double sum_vs_crs = 0.0;
  double sum_vs_jd = 0.0;
  for (usize i = 0; i < set.size(); ++i) {
    const auto& entry = set[i];
    const SpmvCycles& c = cycles[i];
    const double nnz = static_cast<double>(std::max<usize>(1, entry.matrix.nnz()));
    const double vs_crs = static_cast<double>(c.crs) / static_cast<double>(c.hism);
    const double vs_jd = static_cast<double>(c.jd) / static_cast<double>(c.hism);
    sum_vs_crs += vs_crs;
    sum_vs_jd += vs_jd;
    table.add_row({entry.name, format("%.2f", entry.metrics.locality),
                   format("%.2f", static_cast<double>(c.hism) / nnz),
                   format("%.2f", static_cast<double>(c.crs) / nnz),
                   format("%.2f", static_cast<double>(c.jd) / nnz),
                   format("%.1f", vs_crs), format("%.1f", vs_jd)});
  }
  bench::emit(table, options.csv_path);
  std::printf("\naverage speedup: %.1fx vs CRS, %.1fx vs JD "
              "(companion paper [5]: up to ~5x, pattern-dependent)\n",
              sum_vs_crs / static_cast<double>(set.size()),
              sum_vs_jd / static_cast<double>(set.size()));
  bench::finish_telemetry(options);
  return 0;
}
