#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "formats/matrix_market.hpp"
#include "hism/transpose.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/utilization.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"
#include "vsim/json_export.hpp"
#include "vsim/trace.hpp"

namespace smtu::bench {
namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  const auto delta = std::chrono::steady_clock::now() - since;
  return std::chrono::duration<double, std::milli>(delta).count();
}

}  // namespace

TextTable sweep_average_table(const std::vector<suite::SuiteMatrix>& set,
                              const std::vector<std::string>& labels,
                              const std::vector<std::vector<double>>& values,
                              const char* value_format, const char* average_label) {
  std::vector<std::string> header = {"matrix"};
  header.insert(header.end(), labels.begin(), labels.end());
  TextTable table(std::move(header));

  std::vector<double> totals(labels.size(), 0.0);
  for (usize i = 0; i < set.size(); ++i) {
    SMTU_CHECK(values[i].size() == labels.size());
    std::vector<std::string> row = {set[i].name};
    for (usize column = 0; column < values[i].size(); ++column) {
      totals[column] += values[i][column];
      row.push_back(format(value_format, values[i][column]));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg_row = {average_label};
  for (const double total : totals) {
    avg_row.push_back(format(value_format, total / static_cast<double>(std::max<usize>(1, set.size()))));
  }
  table.add_row(std::move(avg_row));
  return table;
}

vsim::SimCache* sim_cache_for(const std::optional<std::string>& dir) {
  if (!dir) return nullptr;
  static std::mutex mutex;
  static std::unordered_map<std::string, std::unique_ptr<vsim::SimCache>>* caches =
      new std::unordered_map<std::string, std::unique_ptr<vsim::SimCache>>();
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = (*caches)[*dir];
  if (!slot) slot = std::make_unique<vsim::SimCache>(*dir);
  return slot.get();
}

std::string render_profile_json(const vsim::PerfCounters& profile) {
  std::ostringstream out;
  JsonWriter json(out);
  vsim::write_profile_json(json, profile);
  return out.str();
}

BenchOptions parse_options(CommandLine& cli) {
  BenchOptions options;
  options.suite.scale = cli.get_double("scale", 1.0);
  options.suite.seed = static_cast<u64>(cli.get_int("seed", 0xD5ABD5ABll));
  const i64 jobs = cli.get_int("jobs", 0);
  SMTU_CHECK_MSG(jobs >= 0, "--jobs must be >= 0 (0 = all hardware threads)");
  options.jobs = static_cast<u32>(jobs);
  const std::string csv = cli.get_string("csv", "");
  if (!csv.empty()) options.csv_path = csv;
  const std::string json = cli.get_string("json", "");
  if (!json.empty()) options.json_path = json;
  const std::string trace_json = cli.get_string("trace-json", "");
  if (!trace_json.empty()) options.trace_json_path = trace_json;
  options.verify = cli.get_flag("verify");
  options.profile = cli.get_flag("profile");
  const std::string sim_cache = cli.get_string("sim-cache", "");
  if (!sim_cache.empty()) options.sim_cache_dir = sim_cache;
  options.telemetry = cli.get_flag("telemetry");
  const std::string telemetry_json = cli.get_string("telemetry-json", "");
  if (!telemetry_json.empty()) {
    options.telemetry_json_path = telemetry_json;
    options.telemetry = true;
  }
  cli.finish();
  if (options.telemetry) {
    telemetry::set_enabled(true);
    // Host spans join the Chrome dump (own pid) only when both were asked
    // for; a bare --trace-json dump stays byte-identical to telemetry-off.
    if (options.trace_json_path) telemetry::set_host_trace_enabled(true);
  }
  return options;
}

void finish_telemetry(const BenchOptions& options) {
  if (!telemetry::enabled()) return;
  if (options.telemetry_json_path) {
    std::ofstream out(*options.telemetry_json_path);
    SMTU_CHECK_MSG(static_cast<bool>(out),
                   "cannot open telemetry output " + *options.telemetry_json_path);
    JsonWriter json(out);
    telemetry::write_telemetry_json(json);
    out << '\n';
    std::fprintf(stderr, "wrote telemetry to %s\n", options.telemetry_json_path->c_str());
  }
  std::fprintf(stderr, "-- telemetry --\n%s",
               telemetry::MetricsRegistry::instance().summary().c_str());
}

TransposeComparison compare_transposes(const suite::SuiteMatrix& entry,
                                       const vsim::MachineConfig& config, bool verify,
                                       bool profile, vsim::SimCache* sim_cache) {
  const auto started = std::chrono::steady_clock::now();
  const auto hism_stage = kernels::MatrixStageCache::instance().hism(entry.matrix, config.section);
  const auto crs_stage = kernels::MatrixStageCache::instance().crs(entry.matrix);

  TransposeComparison comparison;
  comparison.profiled = profile;

  // The entry registers are a pure function of the staged image, so the
  // (source, config, snapshot) triple fully keys each simulation.
  std::string hism_key;
  std::string crs_key;
  std::optional<vsim::SimCache::Entry> hism_hit;
  std::optional<vsim::SimCache::Entry> crs_hit;
  if (sim_cache) {
    hism_key = vsim::sim_cache_key(kernels::hism_transpose_source(false), config,
                                   *hism_stage->snapshot, {});
    crs_key = vsim::sim_cache_key(kernels::crs_transpose_source(config.section, {}), config,
                                  *crs_stage->snapshot, {});
    hism_hit = sim_cache->lookup(hism_key, verify, profile);
    crs_hit = sim_cache->lookup(crs_key, verify, profile);
  }

  // Built only if a verifying run actually simulates (both kernels check
  // against the same reference transpose).
  std::optional<Coo> expected;
  const auto expected_coo = [&]() -> const Coo& {
    if (!expected) expected = entry.matrix.transposed();
    return *expected;
  };

  if (hism_hit) {
    comparison.hism_stats = hism_hit->stats;
    comparison.hism_profile_json = hism_hit->profile_json;
  } else {
    vsim::PerfCounters counters;
    vsim::PerfCounters* profiler = profile ? &counters : nullptr;
    if (verify) {
      const auto result = kernels::run_hism_transpose(
          *hism_stage, config, /*split_drain_registers=*/false, nullptr, profiler);
      SMTU_CHECK_MSG(structurally_equal(result.transposed.to_coo(), expected_coo()),
                     "HiSM kernel produced a wrong transpose for " + entry.name);
      comparison.hism_stats = result.stats;
    } else {
      comparison.hism_stats = kernels::time_hism_transpose(
          *hism_stage, config, /*split_drain_registers=*/false, nullptr, profiler);
    }
    if (profile) comparison.hism_profile_json = render_profile_json(counters);
    if (sim_cache) {
      sim_cache->store(hism_key, {comparison.hism_stats, verify, comparison.hism_profile_json});
    }
  }

  if (crs_hit) {
    comparison.crs_stats = crs_hit->stats;
    comparison.crs_profile_json = crs_hit->profile_json;
  } else {
    vsim::PerfCounters counters;
    vsim::PerfCounters* profiler = profile ? &counters : nullptr;
    if (verify) {
      const auto result = kernels::run_crs_transpose(*crs_stage, config, {}, profiler);
      SMTU_CHECK_MSG(structurally_equal(result.transposed, expected_coo()),
                     "CRS kernel produced a wrong transpose for " + entry.name);
      comparison.crs_stats = result.stats;
    } else {
      comparison.crs_stats = kernels::time_crs_transpose(*crs_stage, config, {}, profiler);
    }
    if (profile) comparison.crs_profile_json = render_profile_json(counters);
    if (sim_cache) {
      sim_cache->store(crs_key, {comparison.crs_stats, verify, comparison.crs_profile_json});
    }
  }
  comparison.hism_cycles = comparison.hism_stats.cycles;
  comparison.crs_cycles = comparison.crs_stats.cycles;

  const double nnz = static_cast<double>(std::max<usize>(entry.matrix.nnz(), 1));
  comparison.hism_cycles_per_nnz = static_cast<double>(comparison.hism_cycles) / nnz;
  comparison.crs_cycles_per_nnz = static_cast<double>(comparison.crs_cycles) / nnz;
  comparison.speedup = comparison.hism_cycles == 0
                           ? 0.0
                           : static_cast<double>(comparison.crs_cycles) /
                                 static_cast<double>(comparison.hism_cycles);
  comparison.wall_ms = elapsed_ms(started);
  if (telemetry::enabled()) {
    telemetry::histogram("bench.item_wall_us")
        .record(static_cast<u64>(comparison.wall_ms * 1000.0));
  }
  return comparison;
}

std::vector<MatrixRecord> run_comparisons(const std::vector<suite::SuiteMatrix>& set,
                                          const vsim::MachineConfig& config,
                                          const BenchOptions& options,
                                          const std::string& metric_name,
                                          double (*metric)(const suite::MatrixMetrics&)) {
  vsim::SimCache* sim_cache = sim_cache_for(options.sim_cache_dir);
  ThreadPool pool(options.jobs);
  return parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    return MatrixRecord{
        entry.name,
        entry.set,
        metric_name,
        metric ? metric(entry.metrics) : 0.0,
        entry.matrix.nnz(),
        compare_transposes(entry, config, options.verify, options.profile, sim_cache)};
  });
}

double buffer_utilization(const HismMatrix& hism, const StmConfig& config) {
  return kernels::stm_utilization(hism, config).utilization;
}

std::vector<suite::SuiteMatrix> load_external_suite(const std::string& dir) {
  std::error_code ec;
  SMTU_CHECK_MSG(std::filesystem::is_directory(dir, ec),
                 "--mtxdir: '" + dir + "' is not a readable directory");
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".mtx") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  SMTU_CHECK_MSG(!paths.empty(), "no .mtx files in " + dir);

  std::vector<suite::SuiteMatrix> external;
  u32 index = 0;
  for (const auto& path : paths) {
    suite::SuiteMatrix entry;
    entry.name = path.stem().string();
    entry.set = "external";
    entry.index = index++;
    entry.matrix = read_matrix_market_file(path.string());
    entry.metrics = suite::compute_metrics(entry.matrix);
    external.push_back(std::move(entry));
  }
  return external;
}

void emit(const TextTable& table, const std::optional<std::string>& csv_path) {
  table.print(std::cout);
  if (!csv_path) return;
  std::ofstream out(*csv_path);
  SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open CSV output " + *csv_path);
  CsvWriter csv(out);
  csv.write_row(table.header());
  for (usize r = 0; r < table.rows(); ++r) csv.write_row(table.row(r));
  std::fprintf(stderr, "wrote CSV to %s\n", csv_path->c_str());
}

void emit(const TextTable& table, const BenchOptions& options) {
  emit(table, options.csv_path);
  if (!options.json_path) return;
  std::ofstream out(*options.json_path);
  SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open JSON output " + *options.json_path);
  write_table_as_json(out, table);
  std::fprintf(stderr, "wrote JSON to %s\n", options.json_path->c_str());
}

int run_figure_bench(int argc, const char* const* argv, const FigureSeries& series) {
  CommandLine cli(argc, argv);
  const BenchOptions options = parse_options(cli);
  const vsim::MachineConfig config;  // the paper's §IV-A machine

  std::printf("== %s set: HiSM (STM, B=%u, L=%u) vs CRS transposition, s=%u ==\n",
              series.set.c_str(), config.stm.bandwidth, config.stm.lines, config.section);
  if (options.suite.scale != 1.0) {
    std::printf("(suite scaled by %.3f; paper scale is --scale=1)\n", options.suite.scale);
  }

  const auto started = std::chrono::steady_clock::now();
  const auto set = suite::build_dsab_set(series.set, options.suite);
  const std::vector<MatrixRecord> records =
      run_comparisons(set, config, options, series.metric_header, series.metric);
  const HarnessInfo harness{resolve_jobs(options.jobs), elapsed_ms(started)};

  TextTable table({"matrix", series.metric_header, "nnz", "HiSM cyc/nnz", "CRS cyc/nnz",
                   "speedup"});
  for (const MatrixRecord& record : records) {
    table.add_row({record.name, format("%.2f", record.metric), format("%zu", record.nnz),
                   format("%.2f", record.comparison.hism_cycles_per_nnz),
                   format("%.2f", record.comparison.crs_cycles_per_nnz),
                   format("%.1f", record.comparison.speedup)});
  }
  emit(table, options.csv_path);
  if (options.json_path) {
    std::ofstream out(*options.json_path);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open JSON output " + *options.json_path);
    write_bench_report_json(out, series.set, config, options.suite, records, harness,
                            collect_host_counters(options.sim_cache_dir));
    std::fprintf(stderr, "wrote JSON report to %s\n", options.json_path->c_str());
  }
  if (options.trace_json_path) {
    write_transpose_trace_json(*options.trace_json_path, set.front(), config);
  }

  const SpeedupSummary summary = summarize_speedups(records);
  std::printf("\nmeasured speedup: min %.1f  max %.1f  avg %.1f\n", summary.min, summary.max,
              summary.avg);
  std::printf("paper (IPPS'04):  min %.1f  max %.1f  avg %.1f\n", series.paper_min,
              series.paper_max, series.paper_avg);
  finish_telemetry(options);
  return 0;
}

SpeedupSummary summarize_speedups(const std::vector<MatrixRecord>& records) {
  SpeedupSummary summary;
  if (records.empty()) return summary;
  summary.count = records.size();
  summary.min = 1e300;
  for (const MatrixRecord& record : records) {
    summary.min = std::min(summary.min, record.comparison.speedup);
    summary.max = std::max(summary.max, record.comparison.speedup);
    summary.avg += record.comparison.speedup;
  }
  summary.avg /= static_cast<double>(records.size());
  return summary;
}

void write_matrix_records_json(JsonWriter& json, const std::vector<MatrixRecord>& records) {
  json.begin_array();
  for (const MatrixRecord& record : records) {
    json.begin_object();
    json.key("name");
    json.value(record.name);
    json.key("set");
    json.value(record.set);
    if (!record.metric_name.empty()) {
      json.key("metric_name");
      json.value(record.metric_name);
      json.key("metric");
      json.value(record.metric);
    }
    json.key("nnz");
    json.value(static_cast<u64>(record.nnz));
    json.key("hism_cycles");
    json.value(record.comparison.hism_cycles);
    json.key("crs_cycles");
    json.value(record.comparison.crs_cycles);
    json.key("hism_cycles_per_nnz");
    json.value(record.comparison.hism_cycles_per_nnz);
    json.key("crs_cycles_per_nnz");
    json.value(record.comparison.crs_cycles_per_nnz);
    json.key("speedup");
    json.value(record.comparison.speedup);
    json.key("wall_ms");
    json.value(record.comparison.wall_ms);
    json.key("hism");
    vsim::write_run_stats_json(json, record.comparison.hism_stats);
    json.key("crs");
    vsim::write_run_stats_json(json, record.comparison.crs_stats);
    if (record.comparison.profiled) {
      // Pre-rendered by render_profile_json (or replayed verbatim from the
      // sim cache), so cached and live reports are byte-identical.
      json.key("profile");
      json.begin_object();
      json.key("hism");
      json.raw(record.comparison.hism_profile_json);
      json.key("crs");
      json.raw(record.comparison.crs_profile_json);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
}

void write_speedup_summary_json(JsonWriter& json, const SpeedupSummary& summary) {
  json.begin_object();
  json.key("count");
  json.value(static_cast<u64>(summary.count));
  json.key("min_speedup");
  json.value(summary.min);
  json.key("max_speedup");
  json.value(summary.max);
  json.key("avg_speedup");
  json.value(summary.avg);
  json.end_object();
}

void write_harness_json(JsonWriter& json, const HarnessInfo& harness) {
  json.begin_object();
  json.key("jobs");
  json.value(static_cast<u64>(harness.jobs));
  json.key("wall_ms");
  json.value(harness.wall_ms);
  json.end_object();
}

HostCounters collect_host_counters(const std::optional<std::string>& sim_cache_dir) {
  HostCounters host;
  host.program_cache = vsim::ProgramCache::instance().stats();
  host.stage_cache = kernels::MatrixStageCache::instance().stats();
  if (vsim::SimCache* cache = sim_cache_for(sim_cache_dir)) host.sim_cache = cache->stats();
  return host;
}

void write_host_json(JsonWriter& json, const HostCounters& host) {
  json.begin_object();
  json.key("program_cache");
  json.begin_object();
  json.key("hits");
  json.value(host.program_cache.hits);
  json.key("misses");
  json.value(host.program_cache.misses);
  json.end_object();
  json.key("stage_cache");
  json.begin_object();
  json.key("hits");
  json.value(host.stage_cache.hits);
  json.key("misses");
  json.value(host.stage_cache.misses);
  json.end_object();
  json.key("sim_cache");
  if (host.sim_cache) {
    json.begin_object();
    json.key("hits");
    json.value(host.sim_cache->hits);
    json.key("misses");
    json.value(host.sim_cache->misses);
    json.key("stores");
    json.value(host.sim_cache->stores);
    json.end_object();
  } else {
    json.null();
  }
  json.end_object();
}

void write_bench_report_json(std::ostream& out, const std::string& bench_name,
                             const vsim::MachineConfig& config,
                             const suite::SuiteOptions& suite_options,
                             const std::vector<MatrixRecord>& records,
                             const HarnessInfo& harness, const HostCounters& host) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema");
  json.value("smtu-bench-v1");
  json.key("bench");
  json.value(bench_name);
  json.key("config");
  vsim::write_machine_config_json(json, config);
  json.key("suite");
  json.begin_object();
  json.key("scale");
  json.value(suite_options.scale);
  json.key("seed");
  json.value(suite_options.seed);
  json.end_object();
  json.key("harness");
  write_harness_json(json, harness);
  json.key("host");
  write_host_json(json, host);
  if (telemetry::enabled()) {
    // Only present on telemetry runs, and skipped wholesale by
    // tools/bench_diff.py, so telemetry-on and telemetry-off reports diff
    // clean at threshold 0.
    json.key("telemetry");
    telemetry::write_telemetry_json(json);
  }
  json.key("matrices");
  write_matrix_records_json(json, records);
  json.key("summary");
  write_speedup_summary_json(json, summarize_speedups(records));
  json.end_object();
  out << '\n';
}

void write_transpose_trace_json(const std::string& path, const suite::SuiteMatrix& entry,
                                const vsim::MachineConfig& config) {
  const auto stage = kernels::MatrixStageCache::instance().hism(entry.matrix, config.section);
  vsim::ExecutionTrace trace(1u << 20);
  kernels::time_hism_transpose(*stage, config, /*split_drain_registers=*/false, &trace);
  std::ofstream out(path);
  SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open trace output " + path);
  vsim::write_chrome_trace(out, trace, "hism_transpose:" + entry.name);
  std::fprintf(stderr, "wrote Chrome trace (%zu events) to %s\n", trace.events().size(),
               path.c_str());
}

}  // namespace smtu::bench
