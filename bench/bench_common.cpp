#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "formats/matrix_market.hpp"
#include "hism/transpose.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/utilization.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace smtu::bench {

BenchOptions parse_options(CommandLine& cli) {
  BenchOptions options;
  options.suite.scale = cli.get_double("scale", 1.0);
  options.suite.seed = static_cast<u64>(cli.get_int("seed", 0xD5ABD5ABll));
  const std::string csv = cli.get_string("csv", "");
  if (!csv.empty()) options.csv_path = csv;
  const std::string json = cli.get_string("json", "");
  if (!json.empty()) options.json_path = json;
  options.verify = cli.get_flag("verify");
  cli.finish();
  return options;
}

TransposeComparison compare_transposes(const suite::SuiteMatrix& entry,
                                       const vsim::MachineConfig& config, bool verify) {
  const HismMatrix hism = HismMatrix::from_coo(entry.matrix, config.section);
  const Csr csr = Csr::from_coo(entry.matrix);

  TransposeComparison comparison;
  if (verify) {
    const Coo expected = entry.matrix.transposed();
    const auto hism_result = kernels::run_hism_transpose(hism, config);
    SMTU_CHECK_MSG(structurally_equal(hism_result.transposed.to_coo(), expected),
                   "HiSM kernel produced a wrong transpose for " + entry.name);
    comparison.hism_cycles = hism_result.stats.cycles;
    const auto crs_result = kernels::run_crs_transpose(csr, config);
    SMTU_CHECK_MSG(structurally_equal(crs_result.transposed, expected),
                   "CRS kernel produced a wrong transpose for " + entry.name);
    comparison.crs_cycles = crs_result.stats.cycles;
  } else {
    comparison.hism_cycles = kernels::time_hism_transpose(hism, config).cycles;
    comparison.crs_cycles = kernels::time_crs_transpose(csr, config).cycles;
  }

  const double nnz = static_cast<double>(std::max<usize>(entry.matrix.nnz(), 1));
  comparison.hism_cycles_per_nnz = static_cast<double>(comparison.hism_cycles) / nnz;
  comparison.crs_cycles_per_nnz = static_cast<double>(comparison.crs_cycles) / nnz;
  comparison.speedup = comparison.hism_cycles == 0
                           ? 0.0
                           : static_cast<double>(comparison.crs_cycles) /
                                 static_cast<double>(comparison.hism_cycles);
  return comparison;
}

double buffer_utilization(const HismMatrix& hism, const StmConfig& config) {
  return kernels::stm_utilization(hism, config).utilization;
}

std::vector<suite::SuiteMatrix> load_external_suite(const std::string& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".mtx") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  SMTU_CHECK_MSG(!paths.empty(), "no .mtx files in " + dir);

  std::vector<suite::SuiteMatrix> external;
  u32 index = 0;
  for (const auto& path : paths) {
    suite::SuiteMatrix entry;
    entry.name = path.stem().string();
    entry.set = "external";
    entry.index = index++;
    entry.matrix = read_matrix_market_file(path.string());
    entry.metrics = suite::compute_metrics(entry.matrix);
    external.push_back(std::move(entry));
  }
  return external;
}

void emit(const TextTable& table, const std::optional<std::string>& csv_path) {
  table.print(std::cout);
  if (!csv_path) return;
  std::ofstream out(*csv_path);
  SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open CSV output " + *csv_path);
  CsvWriter csv(out);
  csv.write_row(table.header());
  for (usize r = 0; r < table.rows(); ++r) csv.write_row(table.row(r));
  std::fprintf(stderr, "wrote CSV to %s\n", csv_path->c_str());
}

void emit(const TextTable& table, const BenchOptions& options) {
  emit(table, options.csv_path);
  if (!options.json_path) return;
  std::ofstream out(*options.json_path);
  SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open JSON output " + *options.json_path);
  write_table_as_json(out, table);
  std::fprintf(stderr, "wrote JSON to %s\n", options.json_path->c_str());
}

int run_figure_bench(int argc, const char* const* argv, const FigureSeries& series) {
  CommandLine cli(argc, argv);
  const BenchOptions options = parse_options(cli);
  const vsim::MachineConfig config;  // the paper's §IV-A machine

  std::printf("== %s set: HiSM (STM, B=%u, L=%u) vs CRS transposition, s=%u ==\n",
              series.set.c_str(), config.stm.bandwidth, config.stm.lines, config.section);
  if (options.suite.scale != 1.0) {
    std::printf("(suite scaled by %.3f; paper scale is --scale=1)\n", options.suite.scale);
  }

  const auto set = suite::build_dsab_set(series.set, options.suite);
  TextTable table({"matrix", series.metric_header, "nnz", "HiSM cyc/nnz", "CRS cyc/nnz",
                   "speedup"});
  double min_speedup = 1e30;
  double max_speedup = 0.0;
  double sum_speedup = 0.0;
  for (const auto& entry : set) {
    const TransposeComparison comparison = compare_transposes(entry, config, options.verify);
    table.add_row({entry.name, format("%.2f", series.metric(entry.metrics)),
                   format("%zu", entry.matrix.nnz()),
                   format("%.2f", comparison.hism_cycles_per_nnz),
                   format("%.2f", comparison.crs_cycles_per_nnz),
                   format("%.1f", comparison.speedup)});
    min_speedup = std::min(min_speedup, comparison.speedup);
    max_speedup = std::max(max_speedup, comparison.speedup);
    sum_speedup += comparison.speedup;
  }
  emit(table, options);

  const double avg_speedup = sum_speedup / static_cast<double>(set.size());
  std::printf("\nmeasured speedup: min %.1f  max %.1f  avg %.1f\n", min_speedup, max_speedup,
              avg_speedup);
  std::printf("paper (IPPS'04):  min %.1f  max %.1f  avg %.1f\n", series.paper_min,
              series.paper_max, series.paper_avg);
  return 0;
}

}  // namespace smtu::bench
