// Ablation A7: sensitivity to the scalar-core model. The authors ran the
// CRS baseline's phase 1 on "the baseline 4-way issue superscalar processor
// simulated by SimpleScalar" with an unpublished configuration; our model
// is a scoreboarded in-order core with a configurable load latency. This
// sweep shows how much of the headline speedup rides on that assumption —
// the honest error bar for the reproduction.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  const auto variants = bench::sweep_configs<vsim::MachineConfig>(
      "lat=", {2, 4, 8, 16, 32},
      [](vsim::MachineConfig& config, u32 latency) { config.scalar_load_latency = latency; });

  std::printf("== Ablation A7: scalar load latency vs HiSM/CRS speedup (locality set) ==\n");
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.5);
  const auto set = suite::build_dsab_set(suite::kSetLocality, suite_options);

  ThreadPool pool(options.jobs);
  const auto speedup_rows = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    std::vector<double> speedups;
    speedups.reserve(variants.size());
    for (const auto& variant : variants) {
      const HismMatrix hism = HismMatrix::from_coo(entry.matrix, variant.config.section);
      const u64 hism_cycles = kernels::time_hism_transpose(hism, variant.config).cycles;
      const u64 crs_cycles =
          kernels::time_crs_transpose(Csr::from_coo(entry.matrix), variant.config).cycles;
      speedups.push_back(static_cast<double>(crs_cycles) / static_cast<double>(hism_cycles));
    }
    return speedups;
  });
  bench::emit(bench::sweep_average_table(set, bench::variant_labels(variants), speedup_rows,
                                         "%.1f", "AVERAGE"),
              options.csv_path);
  std::printf(
      "\nreading: the CRS baseline's scalar histogram phase scales with the load\n"
      "latency, so the speedup does too. The qualitative conclusions (HiSM wins,\n"
      "monotone locality trend) hold across the whole 2..32-cycle range; the\n"
      "default of 8 sits in the middle. This is the reproduction's error bar for\n"
      "the authors' unpublished SimpleScalar configuration.\n");
  bench::finish_telemetry(options);
  return 0;
}
