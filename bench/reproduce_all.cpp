// One-shot paper reproduction: runs every figure of §IV plus the headline
// and the storage claim, and writes a single Markdown report with measured
// numbers next to the paper's. The per-figure binaries remain the tools for
// focused runs and sweeps; this produces the shareable artifact.
//
//   ./reproduce_all [--out=REPORT.md] [--scale=1.0] [--seed=...]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "hism/stats.hpp"
#include "kernels/utilization.hpp"
#include "support/strings.hpp"

namespace {

using namespace smtu;

void markdown_table(std::ostream& out, const TextTable& table) {
  table.print_markdown(out);
  out << '\n';
}

struct SetSummary {
  double min_speedup = 1e300;
  double max_speedup = 0.0;
  double sum_speedup = 0.0;
  usize count = 0;
};

SetSummary run_set(std::ostream& out, const std::string& set_name,
                   const std::string& metric_header,
                   double (*metric)(const suite::MatrixMetrics&),
                   const suite::SuiteOptions& suite_options,
                   const vsim::MachineConfig& config) {
  const auto set = suite::build_dsab_set(set_name, suite_options);
  TextTable table({"matrix", metric_header, "nnz", "HiSM cyc/nnz", "CRS cyc/nnz", "speedup"});
  SetSummary summary;
  for (const auto& entry : set) {
    const auto comparison = bench::compare_transposes(entry, config, /*verify=*/false);
    table.add_row({entry.name, format("%.2f", metric(entry.metrics)),
                   format("%zu", entry.matrix.nnz()),
                   format("%.2f", comparison.hism_cycles_per_nnz),
                   format("%.2f", comparison.crs_cycles_per_nnz),
                   format("%.1f", comparison.speedup)});
    summary.min_speedup = std::min(summary.min_speedup, comparison.speedup);
    summary.max_speedup = std::max(summary.max_speedup, comparison.speedup);
    summary.sum_speedup += comparison.speedup;
    summary.count++;
    std::fprintf(stderr, "  %s done\n", entry.name.c_str());
  }
  markdown_table(out, table);
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const std::string out_path = cli.get_string("out", "REPORT.md");
  bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }

  out << "# Reproduction report — Sparse Matrix Transpose Unit (IPPS 2004)\n\n";
  out << format(
      "Machine: s = %u, p = %u, memory startup %u cycles (%u B/cycle contiguous, "
      "%u elem/cycle indexed), chaining %s; STM B = %u, L = %u. Suite scale %.2f.\n\n",
      config.section, config.lanes, config.mem_startup, config.mem_bytes_per_cycle,
      config.mem_indexed_elems_per_cycle, config.chaining ? "on" : "off",
      config.stm.bandwidth, config.stm.lines, options.suite.scale);

  // ---- Fig. 10 -----------------------------------------------------------
  std::fprintf(stderr, "Fig. 10 ...\n");
  out << "## Fig. 10 — buffer bandwidth utilization\n\n";
  {
    const auto suite_matrices = suite::build_dsab_suite(options.suite);
    std::vector<HismMatrix> hisms;
    for (const auto& entry : suite_matrices) {
      hisms.push_back(HismMatrix::from_coo(entry.matrix, config.section));
    }
    TextTable table({"B", "L=1", "L=2", "L=4", "L=8"});
    for (const u32 bandwidth : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> row = {format("%u", bandwidth)};
      for (const u32 lines : {1u, 2u, 4u, 8u}) {
        StmConfig stm;
        stm.bandwidth = bandwidth;
        stm.lines = lines;
        double sum = 0.0;
        for (const HismMatrix& hism : hisms) {
          sum += kernels::stm_utilization(hism, stm).utilization;
        }
        row.push_back(format("%.3f", sum / static_cast<double>(hisms.size())));
      }
      table.add_row(std::move(row));
    }
    markdown_table(out, table);
    out << "Paper: BU max at B=1 (short of 1.0 only by the 6-cycle block penalty); "
           "grows with L, saturates past L=4 — the basis for fixing L=4.\n\n";
  }

  // ---- Figs. 11-13 ---------------------------------------------------------
  struct Figure {
    const char* title;
    const char* set;
    const char* metric_header;
    double (*metric)(const suite::MatrixMetrics&);
    double paper_min, paper_max, paper_avg;
  };
  const Figure figures[] = {
      {"Fig. 11 — performance vs. locality", suite::kSetLocality, "locality",
       [](const suite::MatrixMetrics& m) { return m.locality; }, 1.8, 32.0, 16.5},
      {"Fig. 12 — performance vs. avg non-zeros/row", suite::kSetAnz, "nnz/row",
       [](const suite::MatrixMetrics& m) { return m.avg_nnz_per_row; }, 11.9, 28.9, 20.0},
      {"Fig. 13 — performance vs. size", suite::kSetSize, "nnz",
       [](const suite::MatrixMetrics& m) { return static_cast<double>(m.nnz); }, 3.4, 28.2,
       15.5},
  };
  SetSummary overall;
  for (const Figure& figure : figures) {
    std::fprintf(stderr, "%s ...\n", figure.title);
    out << "## " << figure.title << "\n\n";
    const SetSummary summary = run_set(out, figure.set, figure.metric_header, figure.metric,
                                       options.suite, config);
    out << format("measured speedup: min %.1f, max %.1f, avg %.1f — paper: %.1f / %.1f / %.1f\n\n",
                  summary.min_speedup, summary.max_speedup,
                  summary.sum_speedup / static_cast<double>(summary.count), figure.paper_min,
                  figure.paper_max, figure.paper_avg);
    overall.min_speedup = std::min(overall.min_speedup, summary.min_speedup);
    overall.max_speedup = std::max(overall.max_speedup, summary.max_speedup);
    overall.sum_speedup += summary.sum_speedup;
    overall.count += summary.count;
  }

  // ---- Headline + storage --------------------------------------------------
  out << "## Headline\n\n";
  out << format("All 30 matrices: speedup %.1f .. %.1f, average %.1f "
                "(paper: 1.8 .. 32.0, average 17.6).\n\n",
                overall.min_speedup, overall.max_speedup,
                overall.sum_speedup / static_cast<double>(overall.count));

  std::fprintf(stderr, "storage ...\n");
  out << "## Storage (§II claim)\n\n";
  {
    double ratio_sum = 0.0;
    double overhead_sum = 0.0;
    usize count = 0;
    for (const auto& entry : suite::build_dsab_suite(options.suite)) {
      const Csr csr = Csr::from_coo(entry.matrix);
      const HismStats stats = compute_stats(HismMatrix::from_coo(entry.matrix, config.section));
      ratio_sum += static_cast<double>(stats.storage_bytes) /
                   static_cast<double>(csr.storage_bytes());
      overhead_sum += stats.overhead_fraction;
      ++count;
    }
    out << format("HiSM/CRS byte ratio averages %.2f over the suite; hierarchy overhead "
                  "averages %.1f%% (paper: ~2-5%% at s = 64).\n",
                  ratio_sum / static_cast<double>(count),
                  100.0 * overhead_sum / static_cast<double>(count));
  }

  std::fprintf(stderr, "report written to %s\n", out_path.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
