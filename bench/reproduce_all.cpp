// One-shot paper reproduction: runs every figure of §IV plus the headline
// and the storage claim, writes a single Markdown report with measured
// numbers next to the paper's, and a canonical machine-readable
// BENCH_repro.json (the "smtu-repro-v1" schema) for per-PR perf tracking
// via tools/bench_diff.py. The per-figure binaries remain the tools for
// focused runs and sweeps; this produces the shareable artifacts.
//
//   ./reproduce_all [--out=REPORT.md] [--json=BENCH_repro.json]
//                   [--scale=1.0] [--seed=...] [--profile] [--jobs=N]
//                   [--sim-cache=DIR]
//
// --sim-cache replays previously seen simulations from the on-disk result
// cache (bit-identical reports modulo the wall_ms/host keys; see HACKING.md
// "Host performance").
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "hism/stats.hpp"
#include "kernels/utilization.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"
#include "vsim/json_export.hpp"

namespace {

using namespace smtu;

void markdown_table(std::ostream& out, const TextTable& table) {
  table.print_markdown(out);
  out << '\n';
}

struct FigureResult {
  const char* figure;  // "fig11" ...
  const char* set;
  double paper_min, paper_max, paper_avg;
  std::vector<bench::MatrixRecord> records;
};

std::vector<bench::MatrixRecord> run_set(std::ostream& out,
                                         const std::vector<suite::SuiteMatrix>& set,
                                         const std::string& metric_header,
                                         double (*metric)(const suite::MatrixMetrics&),
                                         const bench::BenchOptions& options,
                                         const vsim::MachineConfig& config) {
  // Fanned across the pool; record order (and thus every table/JSON row)
  // matches the serial -j1 run.
  const std::vector<bench::MatrixRecord> records =
      bench::run_comparisons(set, config, options, metric_header, metric);
  TextTable table({"matrix", metric_header, "nnz", "HiSM cyc/nnz", "CRS cyc/nnz", "speedup"});
  for (const auto& record : records) {
    table.add_row({record.name, format("%.2f", record.metric), format("%zu", record.nnz),
                   format("%.2f", record.comparison.hism_cycles_per_nnz),
                   format("%.2f", record.comparison.crs_cycles_per_nnz),
                   format("%.1f", record.comparison.speedup)});
  }
  std::fprintf(stderr, "  %s done (%zu matrices)\n",
               set.empty() ? "?" : set.front().set.c_str(), records.size());
  markdown_table(out, table);
  return records;
}

struct Fig10Grid {
  std::vector<u32> bandwidths{1, 2, 4, 8};
  std::vector<u32> lines{1, 2, 4, 8};
  std::vector<std::vector<double>> utilization;  // [bandwidth][lines]
};

struct StorageSummary {
  double hism_crs_byte_ratio_avg = 0.0;
  double overhead_fraction_avg = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const std::string out_path = cli.get_string("out", "REPORT.md");
  bench::BenchOptions options = bench::parse_options(cli);
  // The JSON artifact is always produced; it lands next to REPORT.md under
  // its canonical name unless --json overrides the path.
  if (!options.json_path) options.json_path = "BENCH_repro.json";
  const vsim::MachineConfig config;
  const auto started = std::chrono::steady_clock::now();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }

  out << "# Reproduction report — Sparse Matrix Transpose Unit (IPPS 2004)\n\n";
  out << format(
      "Machine: s = %u, p = %u, memory startup %u cycles (%u B/cycle contiguous, "
      "%u elem/cycle indexed), chaining %s; STM B = %u, L = %u. Suite scale %.2f.\n\n",
      config.section, config.lanes, config.mem_startup, config.mem_bytes_per_cycle,
      config.mem_indexed_elems_per_cycle, config.chaining ? "on" : "off",
      config.stm.bandwidth, config.stm.lines, options.suite.scale);

  // The full suite is generated once; every section below (the Fig. 10
  // grid, the per-figure sets, the storage claim) slices or reuses it —
  // build_dsab_suite is just the three sets concatenated, so the slices are
  // bit-identical to building each set on its own.
  std::fprintf(stderr, "suite ...\n");
  const auto suite_matrices = suite::build_dsab_suite(options.suite);
  const auto set_slice = [&](const char* set_name) {
    std::vector<suite::SuiteMatrix> slice;
    for (const auto& entry : suite_matrices) {
      if (entry.set == set_name) slice.push_back(entry);
    }
    return slice;
  };

  // ---- Fig. 10 -----------------------------------------------------------
  std::fprintf(stderr, "Fig. 10 ...\n");
  out << "## Fig. 10 — buffer bandwidth utilization\n\n";
  Fig10Grid fig10;
  {
    ThreadPool pool(options.jobs);
    // Conversions land in the process-wide stage cache, so the Fig. 11-13
    // comparisons below reuse them instead of re-running from_coo. The STM
    // line traces are config-independent: extracted once per matrix here,
    // they serve all 16 (B, L) grid points below.
    const auto traces =
        parallel_map(pool, suite_matrices, [&](const suite::SuiteMatrix& entry) {
          return kernels::stm_block_traces(
              kernels::MatrixStageCache::instance().hism(entry.matrix, config.section)->hism);
        });
    TextTable table({"B", "L=1", "L=2", "L=4", "L=8"});
    for (const u32 bandwidth : fig10.bandwidths) {
      std::vector<std::string> row = {format("%u", bandwidth)};
      std::vector<double> util_row;
      for (const u32 lines : fig10.lines) {
        StmConfig stm;
        stm.bandwidth = bandwidth;
        stm.lines = lines;
        double sum = 0.0;
        for (const auto& trace : traces) {
          sum += kernels::stm_utilization(trace, stm).utilization;
        }
        util_row.push_back(sum / static_cast<double>(traces.size()));
        row.push_back(format("%.3f", util_row.back()));
      }
      fig10.utilization.push_back(std::move(util_row));
      table.add_row(std::move(row));
    }
    markdown_table(out, table);
    out << "Paper: BU max at B=1 (short of 1.0 only by the 6-cycle block penalty); "
           "grows with L, saturates past L=4 — the basis for fixing L=4.\n\n";
  }

  // ---- Figs. 11-13 ---------------------------------------------------------
  struct Figure {
    const char* title;
    const char* figure;
    const char* set;
    const char* metric_header;
    double (*metric)(const suite::MatrixMetrics&);
    double paper_min, paper_max, paper_avg;
  };
  const Figure figures[] = {
      {"Fig. 11 — performance vs. locality", "fig11", suite::kSetLocality, "locality",
       [](const suite::MatrixMetrics& m) { return m.locality; }, 1.8, 32.0, 16.5},
      {"Fig. 12 — performance vs. avg non-zeros/row", "fig12", suite::kSetAnz, "nnz/row",
       [](const suite::MatrixMetrics& m) { return m.avg_nnz_per_row; }, 11.9, 28.9, 20.0},
      {"Fig. 13 — performance vs. size", "fig13", suite::kSetSize, "nnz",
       [](const suite::MatrixMetrics& m) { return static_cast<double>(m.nnz); }, 3.4, 28.2,
       15.5},
  };
  std::vector<FigureResult> figure_results;
  std::vector<bench::MatrixRecord> all_records;
  for (const Figure& figure : figures) {
    std::fprintf(stderr, "%s ...\n", figure.title);
    out << "## " << figure.title << "\n\n";
    FigureResult result{figure.figure, figure.set, figure.paper_min, figure.paper_max,
                        figure.paper_avg, {}};
    result.records = run_set(out, set_slice(figure.set), figure.metric_header, figure.metric,
                             options, config);
    const bench::SpeedupSummary summary = bench::summarize_speedups(result.records);
    out << format("measured speedup: min %.1f, max %.1f, avg %.1f — paper: %.1f / %.1f / %.1f\n\n",
                  summary.min, summary.max, summary.avg, figure.paper_min, figure.paper_max,
                  figure.paper_avg);
    all_records.insert(all_records.end(), result.records.begin(), result.records.end());
    figure_results.push_back(std::move(result));
  }

  // ---- Headline + storage --------------------------------------------------
  const bench::SpeedupSummary headline = bench::summarize_speedups(all_records);
  out << "## Headline\n\n";
  out << format("All %zu matrices: speedup %.1f .. %.1f, average %.1f "
                "(paper: 1.8 .. 32.0, average 17.6).\n\n",
                headline.count, headline.min, headline.max, headline.avg);

  std::fprintf(stderr, "storage ...\n");
  out << "## Storage (§II claim)\n\n";
  StorageSummary storage;
  {
    struct StorageRow {
      double ratio;
      double overhead;
    };
    ThreadPool pool(options.jobs);
    const std::vector<StorageRow> rows =
        parallel_map(pool, suite_matrices, [&](const suite::SuiteMatrix& entry) {
          const auto crs = kernels::MatrixStageCache::instance().crs(entry.matrix);
          const auto hism =
              kernels::MatrixStageCache::instance().hism(entry.matrix, config.section);
          const HismStats stats = compute_stats(hism->hism);
          return StorageRow{static_cast<double>(stats.storage_bytes) /
                                static_cast<double>(crs->csr.storage_bytes()),
                            stats.overhead_fraction};
        });
    // Summed in suite order, off the pool: identical for every -j value.
    double ratio_sum = 0.0;
    double overhead_sum = 0.0;
    for (const StorageRow& row : rows) {
      ratio_sum += row.ratio;
      overhead_sum += row.overhead;
    }
    storage.hism_crs_byte_ratio_avg = ratio_sum / static_cast<double>(rows.size());
    storage.overhead_fraction_avg = overhead_sum / static_cast<double>(rows.size());
    out << format("HiSM/CRS byte ratio averages %.2f over the suite; hierarchy overhead "
                  "averages %.1f%% (paper: ~2-5%% at s = 64).\n",
                  storage.hism_crs_byte_ratio_avg, 100.0 * storage.overhead_fraction_avg);
  }

  // ---- pointers beyond the paper ------------------------------------------
  out << "\n## Beyond the paper\n\n";
  out << "Results not part of the original evaluation live in their own benches "
         "(EXPERIMENTS.md records the measured numbers): `ext_multicore_scaling` "
         "runs the sharded HiSM and parallel CRS transposes at N = 1, 2, 4, 8 "
         "cores on the banked shared-memory system (docs/MULTICORE.md), and "
         "`ext_kernel_suite` runs the SELL-C-\xcf\x83 SpMV and the "
         "Gustavson-on-HiSM SpGEMM kernels across the locality and irregular "
         "sets (docs/KERNELS.md, docs/FORMATS.md). Both emit bench_diff-gated "
         "JSON reports next to this one.\n";

  // ---- harness -------------------------------------------------------------
  const bench::HarnessInfo harness{
      resolve_jobs(options.jobs),
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count()};
  out << "\n## Harness\n\n";
  out << format("Simulations fanned over %u worker thread(s) (--jobs) on a host with %u "
                "hardware thread(s); total wall time %.0f ms. Cycle counts are "
                "deterministic: identical for every -j value. Wall-clock speedup tracks "
                "the host's core count — on a single-core host the fan-out buys no time, "
                "only the determinism guarantee is exercised.\n",
                harness.jobs, std::thread::hardware_concurrency(), harness.wall_ms);

  // ---- machine-readable artifact -------------------------------------------
  {
    std::ofstream json_out(*options.json_path);
    SMTU_CHECK_MSG(static_cast<bool>(json_out),
                   "cannot open JSON output " + *options.json_path);
    JsonWriter json(json_out);
    json.begin_object();
    json.key("schema");
    json.value("smtu-repro-v1");
    json.key("bench");
    json.value("reproduce_all");
    json.key("config");
    vsim::write_machine_config_json(json, config);
    json.key("suite");
    json.begin_object();
    json.key("scale");
    json.value(options.suite.scale);
    json.key("seed");
    json.value(options.suite.seed);
    json.end_object();
    json.key("harness");
    bench::write_harness_json(json, harness);
    json.key("host");
    bench::write_host_json(json, bench::collect_host_counters(options.sim_cache_dir));
    if (telemetry::enabled()) {
      // Telemetry-only key, skipped wholesale by tools/bench_diff.py, so
      // telemetry-on and -off reports stay bit-identical at threshold 0.
      json.key("telemetry");
      telemetry::write_telemetry_json(json);
    }
    json.key("fig10");
    json.begin_object();
    json.key("bandwidths");
    json.begin_array();
    for (const u32 bandwidth : fig10.bandwidths) json.value(static_cast<u64>(bandwidth));
    json.end_array();
    json.key("lines");
    json.begin_array();
    for (const u32 lines : fig10.lines) json.value(static_cast<u64>(lines));
    json.end_array();
    json.key("utilization");
    json.begin_array();
    for (const auto& row : fig10.utilization) {
      json.begin_array();
      for (const double utilization : row) json.value(utilization);
      json.end_array();
    }
    json.end_array();
    json.end_object();
    json.key("figures");
    json.begin_array();
    for (const FigureResult& result : figure_results) {
      json.begin_object();
      json.key("figure");
      json.value(result.figure);
      json.key("set");
      json.value(result.set);
      json.key("matrices");
      bench::write_matrix_records_json(json, result.records);
      json.key("summary");
      bench::write_speedup_summary_json(json, bench::summarize_speedups(result.records));
      json.key("paper");
      json.begin_object();
      json.key("min_speedup");
      json.value(result.paper_min);
      json.key("max_speedup");
      json.value(result.paper_max);
      json.key("avg_speedup");
      json.value(result.paper_avg);
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.key("headline");
    bench::write_speedup_summary_json(json, headline);
    json.key("storage");
    json.begin_object();
    json.key("hism_crs_byte_ratio_avg");
    json.value(storage.hism_crs_byte_ratio_avg);
    json.key("overhead_fraction_avg");
    json.value(storage.overhead_fraction_avg);
    json.end_object();
    json.end_object();
    json_out << '\n';
    SMTU_CHECK_MSG(json.complete(), "BENCH_repro.json document left unbalanced");
  }

  std::fprintf(stderr, "report written to %s\n", out_path.c_str());
  std::printf("wrote %s and %s\n", out_path.c_str(), options.json_path->c_str());
  bench::finish_telemetry(options);
  return 0;
}
