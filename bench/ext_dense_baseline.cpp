// Extension E2: the §II motivation, quantified. A dense matrix transposes
// trivially with strided addressing; applying that method to a *sparse*
// matrix costs O(rows*cols) regardless of how few non-zeros it has. This
// bench sweeps density on a fixed 512x512 matrix and finds the crossover
// where the dense strided method overtakes HiSM+STM — far beyond any
// realistic sparse-matrix density.
#include <cstdio>

#include "bench_common.hpp"
#include "formats/dense.hpp"
#include "kernels/dense_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "suite/generators.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;
  constexpr Index kDim = 512;

  std::printf("== Extension E2: dense strided transpose vs HiSM+STM, %llux%llu ==\n",
              static_cast<unsigned long long>(kDim), static_cast<unsigned long long>(kDim));

  // The dense method's cost is density-independent; measure it once.
  Rng rng(options.suite.seed);
  const Coo probe = suite::gen_random_uniform(kDim, kDim, 1000, rng);
  const u64 dense_cycles =
      kernels::time_dense_transpose(Dense::from_coo(probe), config).cycles;

  TextTable table({"density", "nnz", "HiSM cycles", "dense cycles", "HiSM wins by"});
  for (const double density : {0.001, 0.005, 0.02, 0.08, 0.3, 0.6}) {
    const usize nnz = static_cast<usize>(density * static_cast<double>(kDim) * kDim);
    const Coo coo = suite::gen_random_uniform(kDim, kDim, nnz, rng);
    const u64 hism_cycles =
        kernels::time_hism_transpose(HismMatrix::from_coo(coo, config.section), config)
            .cycles;
    table.add_row({format("%.3f", density), format("%zu", nnz),
                   format("%llu", static_cast<unsigned long long>(hism_cycles)),
                   format("%llu", static_cast<unsigned long long>(dense_cycles)),
                   format("%.1fx", static_cast<double>(dense_cycles) /
                                       static_cast<double>(hism_cycles))});
  }
  bench::emit(table, options.csv_path);
  std::printf(
      "\nreading: the strided dense method costs O(n^2) cycles at 1 element/cycle\n"
      "(bank-conflicted stride) no matter the sparsity; HiSM touches only stored\n"
      "elements. Real sparse matrices (density <<1%%) sit far left of the crossover.\n");
  bench::finish_telemetry(options);
  return 0;
}
