// Ablation A5: phase 1 of the CRS transposition — scalar histogram vs the
// mask-vector scheme of §IV-A.
//
// The paper describes how the per-column counts *could* be vectorized (a
// compare-generated mask per column, then a reduction) but rejects it:
// "because the matrix is sparse, the dominant part of M_i's elements will
// be zero and vector operations will be, therefore, inefficient. For this
// reason we have not vectorized this code." This benchmark reproduces that
// design decision quantitatively — the masked variant does O(cols * nnz/s)
// vector work versus the histogram's O(nnz) scalar work.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/crs_transpose.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  // The masked variant is quadratic-ish; run on a small slice of the suite.
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.1);
  const auto set = suite::build_dsab_set(suite::kSetAnz, suite_options);

  std::printf("== Ablation A5: CRS phase 1 — scalar histogram vs mask vectors ==\n");
  struct Timings {
    u64 scalar_cycles;
    u64 masked_cycles;
  };
  ThreadPool pool(options.jobs);
  const auto timings = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    const Csr csr = Csr::from_coo(entry.matrix);
    kernels::CrsKernelOptions scalar_options;
    kernels::CrsKernelOptions masked_options;
    masked_options.masked_phase1 = true;
    return Timings{kernels::time_crs_transpose(csr, config, scalar_options).cycles,
                   kernels::time_crs_transpose(csr, config, masked_options).cycles};
  });

  TextTable table({"matrix", "nnz", "cols", "scalar total", "masked total", "slowdown"});
  for (usize i = 0; i < set.size(); ++i) {
    const auto& entry = set[i];
    const Timings& t = timings[i];
    table.add_row({entry.name, format("%zu", entry.matrix.nnz()),
                   format("%llu", static_cast<unsigned long long>(entry.matrix.cols())),
                   format("%llu", static_cast<unsigned long long>(t.scalar_cycles)),
                   format("%llu", static_cast<unsigned long long>(t.masked_cycles)),
                   format("%.1fx", static_cast<double>(t.masked_cycles) /
                                       static_cast<double>(t.scalar_cycles))});
  }
  bench::emit(table, options.csv_path);
  std::printf("\nreading: the masked variant loses by growing factors as matrices grow —\n"
              "the paper's choice of scalar code for phase 1 is the right one.\n");
  bench::finish_telemetry(options);
  return 0;
}
