// Figure 13: transposition performance across the ten matrices selected by
// size (total non-zeros, 48 .. 3.75M).
//
// Paper result: speedup 3.4 .. 28.2, average 15.5; neither method's
// per-element cost shows a particular dependence on matrix size.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const smtu::bench::FigureSeries series{
      .set = smtu::suite::kSetSize,
      .metric_header = "nnz",
      .metric = [](const smtu::suite::MatrixMetrics& m) { return static_cast<double>(m.nnz); },
      .paper_min = 3.4,
      .paper_max = 28.2,
      .paper_avg = 15.5,
  };
  return smtu::bench::run_figure_bench(argc, argv, series);
}
