// Extension E5: multi-core scaling of sparse transposition.
//
// Runs the sharded HiSM transpose (block-row panels + merge, kernels/shard)
// and the classic parallel CRS baseline (atomic histogram -> prefix sum ->
// scatter, kernels/crs_parallel) on the banked-memory MultiCoreSystem at
// N = 1, 2, 4, 8 cores, and reports the scaling curve with the per-core
// stall taxonomy (docs/MULTICORE.md). N = 1 is the degenerate case that
// reproduces the single-core machine bit for bit.
//
// --json writes an "smtu-scaling-v1" report gated by tools/bench_diff.py
// against bench/baselines/BENCH_scaling_scale005.json; explore it with
// tools/prof_report.py show --per-core.
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "kernels/crs_parallel.hpp"
#include "support/assert.hpp"
#include "kernels/shard.hpp"
#include "support/parallel.hpp"
#include "vsim/json_export.hpp"
#include "vsim/system.hpp"

namespace {

using namespace smtu;

constexpr u32 kCores[] = {1, 2, 4, 8};

// One (kernel, core count) run: system-level stats plus each core's full
// busy/stall bucket vector — the scaling curve's taxonomy payload.
struct CoreProfile {
  Cycle cycles = 0;
  std::array<u64, vsim::kBusyKindCount> busy{};
  std::array<u64, vsim::kStallReasonCount> stalls{};
};

struct ScalePoint {
  u32 cores = 0;
  vsim::SystemRunStats stats;
  std::vector<CoreProfile> per_core;
};

struct MatrixScaling {
  std::vector<ScalePoint> hism;
  std::vector<ScalePoint> crs;
};

std::vector<CoreProfile> collect_core_profiles(
    const std::vector<vsim::PerfCounters>& profilers) {
  std::vector<CoreProfile> per_core;
  per_core.reserve(profilers.size());
  for (const vsim::PerfCounters& profiler : profilers) {
    CoreProfile core;
    core.cycles = profiler.total_cycles();
    core.busy = profiler.busy_cycles();
    core.stalls = profiler.stall_cycles();
    per_core.push_back(core);
  }
  return per_core;
}

MatrixScaling scale_matrix(const suite::SuiteMatrix& entry, const vsim::SystemConfig& base) {
  const Csr csr = Csr::from_coo(entry.matrix);
  MatrixScaling scaling;
  for (const u32 cores : kCores) {
    vsim::SystemConfig config = base;
    config.cores = cores;
    std::vector<vsim::PerfCounters> profilers;

    ScalePoint hism;
    hism.cores = cores;
    hism.stats = kernels::time_sharded_hism_transpose(entry.matrix, config, &profilers);
    hism.per_core = collect_core_profiles(profilers);
    scaling.hism.push_back(std::move(hism));

    ScalePoint crs;
    crs.cores = cores;
    crs.stats = kernels::time_parallel_crs_transpose(csr, config, &profilers);
    crs.per_core = collect_core_profiles(profilers);
    scaling.crs.push_back(std::move(crs));
  }
  return scaling;
}

double speedup_vs_one_core(const std::vector<ScalePoint>& points, usize index) {
  return static_cast<double>(points[0].stats.cycles) /
         static_cast<double>(std::max<Cycle>(1, points[index].stats.cycles));
}

void write_scale_points_json(JsonWriter& json, const std::vector<ScalePoint>& points) {
  json.begin_array();
  for (usize i = 0; i < points.size(); ++i) {
    const ScalePoint& point = points[i];
    json.begin_object();
    json.key("cores");
    json.value(static_cast<u64>(point.cores));
    json.key("cycles");
    json.value(static_cast<u64>(point.stats.cycles));
    json.key("speedup");
    json.value(speedup_vs_one_core(points, i));
    json.key("barriers");
    json.value(point.stats.barriers);
    json.key("memory");
    json.begin_object();
    json.key("requests");
    json.value(point.stats.memory.requests);
    json.key("contended_requests");
    json.value(point.stats.memory.contended_requests);
    json.key("contention_cycles");
    json.value(point.stats.memory.contention_cycles);
    json.end_object();
    json.key("per_core");
    json.begin_array();
    for (usize c = 0; c < point.per_core.size(); ++c) {
      const CoreProfile& core = point.per_core[c];
      json.begin_object();
      json.key("core");
      json.value(static_cast<u64>(c));
      json.key("cycles");
      json.value(static_cast<u64>(core.cycles));
      // Every bucket, zeros included, in enum order: Σ busy + stalls ==
      // cycles (profiler conservation), and the key set is stable for
      // bench_diff.
      json.key("busy");
      json.begin_object();
      for (usize kind = 0; kind < vsim::kBusyKindCount; ++kind) {
        json.key(vsim::busy_kind_name(static_cast<vsim::BusyKind>(kind)));
        json.value(core.busy[kind]);
      }
      json.end_object();
      json.key("stalls");
      json.begin_object();
      for (usize reason = 0; reason < vsim::kStallReasonCount; ++reason) {
        json.key(vsim::stall_reason_name(static_cast<vsim::StallReason>(reason)));
        json.value(core.stalls[reason]);
      }
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
}

void write_scaling_report_json(std::ostream& out, const vsim::SystemConfig& config,
                               const suite::SuiteOptions& suite_options,
                               const std::vector<suite::SuiteMatrix>& set,
                               const std::vector<MatrixScaling>& results,
                               const bench::HarnessInfo& harness) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema");
  json.value("smtu-scaling-v1");
  json.key("bench");
  json.value("ext_multicore_scaling");
  json.key("config");
  vsim::write_machine_config_json(json, config.core);
  json.key("memory");
  json.begin_object();
  json.key("banks");
  json.value(static_cast<u64>(config.memory.banks));
  json.key("bank_bytes_per_cycle");
  json.value(static_cast<u64>(config.memory.bank_bytes_per_cycle));
  json.key("interleave_bytes");
  json.value(static_cast<u64>(config.memory.interleave_bytes));
  json.end_object();
  json.key("suite");
  json.begin_object();
  json.key("scale");
  json.value(suite_options.scale);
  json.key("seed");
  json.value(suite_options.seed);
  json.end_object();
  json.key("harness");
  bench::write_harness_json(json, harness);
  json.key("matrices");
  json.begin_array();
  for (usize i = 0; i < set.size(); ++i) {
    json.begin_object();
    json.key("name");
    json.value(set[i].name);
    json.key("set");
    json.value(set[i].set);
    json.key("nnz");
    json.value(static_cast<u64>(set[i].matrix.nnz()));
    json.key("kernels");
    json.begin_object();
    json.key("hism_sharded");
    write_scale_points_json(json, results[i].hism);
    json.key("crs_parallel");
    write_scale_points_json(json, results[i].crs);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.key("summary");
  json.begin_object();
  for (const auto& [key, side] : {std::pair<const char*, std::vector<ScalePoint> MatrixScaling::*>{
                                      "hism_sharded", &MatrixScaling::hism},
                                  {"crs_parallel", &MatrixScaling::crs}}) {
    json.key(key);
    json.begin_array();
    for (usize n = 0; n < std::size(kCores); ++n) {
      double total = 0.0;
      for (const MatrixScaling& result : results) {
        total += speedup_vs_one_core(result.*side, n);
      }
      json.begin_object();
      json.key("cores");
      json.value(static_cast<u64>(kCores[n]));
      json.key("avg_speedup");
      json.value(total / static_cast<double>(std::max<usize>(1, results.size())));
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::SystemConfig base{};

  std::printf("== Extension E5: multi-core scaling, sharded HiSM vs parallel CRS "
              "(locality set, %u banks) ==\n",
              base.memory.banks);
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.3);
  const auto set = suite::build_dsab_set(suite::kSetLocality, suite_options);

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options.jobs);
  // Each task builds its own MultiCoreSystems (one host thread per system),
  // so the reported cycles are identical for every --jobs value.
  const std::vector<MatrixScaling> results =
      parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
        return scale_matrix(entry, base);
      });

  const std::vector<std::string> labels = {"N=1", "N=2", "N=4", "N=8"};
  for (const auto& [title, side] :
       {std::pair<const char*, std::vector<ScalePoint> MatrixScaling::*>{
            "sharded HiSM transpose", &MatrixScaling::hism},
        {"parallel CRS transpose", &MatrixScaling::crs}}) {
    std::printf("\n-- %s: speedup vs 1 core --\n", title);
    std::vector<std::vector<double>> rows;
    rows.reserve(results.size());
    for (const MatrixScaling& result : results) {
      std::vector<double> row;
      for (usize n = 0; n < std::size(kCores); ++n) {
        row.push_back(speedup_vs_one_core(result.*side, n));
      }
      rows.push_back(std::move(row));
    }
    // CSV (one file) carries the HiSM table; the CRS one prints to stdout.
    bench::emit(bench::sweep_average_table(set, labels, rows, "%.2f", "AVERAGE speedup"),
                side == &MatrixScaling::hism ? options.csv_path : std::nullopt);
  }

  if (options.json_path) {
    bench::HarnessInfo harness;
    harness.jobs = pool.jobs();
    harness.wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::ofstream out(*options.json_path);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open " + *options.json_path);
    write_scaling_report_json(out, base, suite_options, set, results, harness);
    std::fprintf(stderr, "wrote smtu-scaling-v1 report to %s\n", options.json_path->c_str());
  }

  std::printf(
      "\nreading: the sharded HiSM transpose scales until panels run out (top-level\n"
      "block rows bound the useful core count) and the scalar merge serializes the\n"
      "tail; the CRS baseline's atomic histogram scales but pays bank contention\n"
      "and barrier waits. Per-core stall taxonomy: --json + prof_report --per-core.\n");
  bench::finish_telemetry(options);
  return 0;
}
