// Figure 11: transposition performance (cycles per non-zero, HiSM vs CRS)
// and HiSM-vs-CRS speedup across the ten matrices selected by locality.
//
// Paper result: speedup 1.8 .. 32.0, average 16.5, growing monotonically
// with the matrix locality.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const smtu::bench::FigureSeries series{
      .set = smtu::suite::kSetLocality,
      .metric_header = "locality",
      .metric = [](const smtu::suite::MatrixMetrics& m) { return m.locality; },
      .paper_min = 1.8,
      .paper_max = 32.0,
      .paper_avg = 16.5,
  };
  return smtu::bench::run_figure_bench(argc, argv, series);
}
