// Ablation A6: the CRS kernel's scalar short-row path. Phase 3 processes
// each row with four gather/scatter instructions; a 1-3 element row pays
// the full vector startups for almost no work, so our hand-coded kernel
// (like any vector-machine hand-coder) falls back to scalar code below a
// length threshold. This sweep shows the threshold's effect per ANZ —
// threshold 0 is the naive all-vector kernel.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/crs_transpose.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);
  const vsim::MachineConfig config;

  constexpr u32 kThresholds[] = {0, 2, 4, 8, 16, 64};

  std::printf("== Ablation A6: CRS phase-3 short-row threshold (cycles/nnz, ANZ set) ==\n");
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.5);
  const auto set = suite::build_dsab_set(suite::kSetAnz, suite_options);

  TextTable table({"matrix", "nnz/row", "t=0", "t=2", "t=4", "t=8", "t=16", "t=64"});
  ThreadPool pool(options.jobs);
  const auto cycle_rows = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    const Csr csr = Csr::from_coo(entry.matrix);
    std::vector<u64> cycles_row;
    cycles_row.reserve(std::size(kThresholds));
    for (const u32 threshold : kThresholds) {
      kernels::CrsKernelOptions kernel_options;
      kernel_options.short_row_threshold = threshold;
      cycles_row.push_back(kernels::time_crs_transpose(csr, config, kernel_options).cycles);
    }
    return cycles_row;
  });
  for (usize i = 0; i < set.size(); ++i) {
    const auto& entry = set[i];
    std::vector<std::string> row = {entry.name,
                                    format("%.1f", entry.metrics.avg_nnz_per_row)};
    for (const u64 cycles : cycle_rows[i]) {
      row.push_back(format("%.1f", static_cast<double>(cycles) /
                                       static_cast<double>(entry.matrix.nnz())));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, options.csv_path);
  std::printf(
      "\nreading: the naive all-vector kernel (t=0) is brutal on short-row matrices;\n"
      "t=4 captures nearly all of the gain, and very large thresholds de-vectorize\n"
      "long rows and lose again. Figs. 11-13 use t=4. (Disabling the scalar path\n"
      "would only *widen* the reported HiSM speedups.)\n");
  bench::finish_telemetry(options);
  return 0;
}
