// google-benchmark micro-benchmarks of the host-side library primitives:
// format construction/conversion, reference transposes, the STM functional
// model, and the non-zero locator. These gauge the simulator's own speed
// (how fast experiments run), not simulated cycle counts.
#include <benchmark/benchmark.h>

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "hism/image.hpp"
#include "hism/transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/staging.hpp"
#include "stm/locator.hpp"
#include "stm/unit.hpp"
#include "support/rng.hpp"
#include "vsim/assembler.hpp"
#include "vsim/program_cache.hpp"

namespace smtu {
namespace {

Coo make_matrix(Index dim, usize nnz, u64 seed) {
  Rng rng(seed);
  Coo coo(dim, dim);
  for (const u64 cell : rng.sample_without_replacement(dim * dim, nnz)) {
    coo.add(cell / dim, cell % dim, static_cast<float>(rng.uniform(0.5, 1.5)));
  }
  coo.canonicalize();
  return coo;
}

void BM_CsrFromCoo(benchmark::State& state) {
  const Coo coo = make_matrix(2048, static_cast<usize>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Csr::from_coo(coo));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsrFromCoo)->Arg(10000)->Arg(100000);

void BM_PissanetskyTranspose(benchmark::State& state) {
  const Csr csr = Csr::from_coo(make_matrix(2048, static_cast<usize>(state.range(0)), 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.transposed_pissanetsky());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PissanetskyTranspose)->Arg(10000)->Arg(100000);

void BM_HismFromCoo(benchmark::State& state) {
  const Coo coo = make_matrix(2048, static_cast<usize>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HismMatrix::from_coo(coo, 64));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HismFromCoo)->Arg(10000)->Arg(100000);

void BM_HismTransposeReference(benchmark::State& state) {
  const HismMatrix hism =
      HismMatrix::from_coo(make_matrix(2048, static_cast<usize>(state.range(0)), 4), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transposed(hism));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HismTransposeReference)->Arg(10000)->Arg(100000);

void BM_HismImageBuild(benchmark::State& state) {
  const HismMatrix hism =
      HismMatrix::from_coo(make_matrix(2048, static_cast<usize>(state.range(0)), 5), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_hism_image(hism, 0x10000));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HismImageBuild)->Arg(100000);

void BM_StmTransposeBlock(benchmark::State& state) {
  Rng rng(6);
  std::vector<StmEntry> entries;
  for (const u64 cell :
       rng.sample_without_replacement(64 * 64, static_cast<usize>(state.range(0)))) {
    entries.push_back(
        {static_cast<u8>(cell / 64), static_cast<u8>(cell % 64), static_cast<u32>(cell)});
  }
  StmConfig config;
  StmUnit unit(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.transpose_block(entries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StmTransposeBlock)->Arg(64)->Arg(1024)->Arg(4096);

void BM_NonzeroLocatorCircuit(benchmark::State& state) {
  Rng rng(7);
  std::vector<bool> bits(64);
  for (usize i = 0; i < 64; ++i) bits[i] = rng.chance(0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locate_first_ones_circuit(bits, 4));
  }
}
BENCHMARK(BM_NonzeroLocatorCircuit);

void BM_CooCanonicalize(benchmark::State& state) {
  const Coo coo = make_matrix(2048, 100000, 8);
  for (auto _ : state) {
    Coo copy = coo;
    copy.canonicalize();
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_CooCanonicalize);

// ---- interpreter throughput -------------------------------------------------
// How fast the simulator itself runs, as opposed to the cycle counts it
// produces. items/s below is simulated instructions per host second.

// Cold path: full parse + predecode of the HiSM transpose kernel, what every
// Machine::run used to pay before the ProgramCache.
void BM_AssembleTransposeKernel(benchmark::State& state) {
  const std::string source = kernels::hism_transpose_source();
  usize instructions = 0;
  for (auto _ : state) {
    const vsim::Program program = vsim::assemble(source);
    instructions = program.instructions.size();
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(instructions));
}
BENCHMARK(BM_AssembleTransposeKernel);

// Warm path: the ProgramCache hit that replaces the cold assemble on every
// run after the first.
void BM_ProgramCacheWarmHit(benchmark::State& state) {
  const std::string source = kernels::hism_transpose_source();
  vsim::ProgramCache::instance().get(source);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsim::ProgramCache::instance().get(source));
  }
}
BENCHMARK(BM_ProgramCacheWarmHit);

// Full kernel simulation against a shared pre-staged image (predecoded
// program, copy-on-write memory): the steady-state per-run cost of the
// comparison benches.
void BM_InterpretHismTranspose(benchmark::State& state) {
  const Coo coo = make_matrix(512, static_cast<usize>(state.range(0)), 9);
  const kernels::HismStage stage = kernels::build_hism_stage(HismMatrix::from_coo(coo, 64));
  const vsim::MachineConfig config;
  u64 instructions = 0;
  for (auto _ : state) {
    const vsim::RunStats stats = kernels::time_hism_transpose(stage, config);
    instructions += stats.instructions;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<i64>(instructions));
}
BENCHMARK(BM_InterpretHismTranspose)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace smtu
