// google-benchmark micro-benchmarks of the host-side library primitives:
// format construction/conversion, reference transposes, the STM functional
// model, and the non-zero locator. These gauge the simulator's own speed
// (how fast experiments run), not simulated cycle counts.
//
// Custom main: besides the usual google-benchmark flags, --interp-json=FILE
// writes per-dispatch-mode interpreter throughput records (simulated
// insts/sec and cycles/sec per kernel class) into a host-timing JSON
// document whose keys bench_diff.py never gates on (the "host" section and
// *_per_sec / wall_ms fragments are host-speed measurements, not simulated
// metrics).
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <functional>
#include <string_view>

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/sell.hpp"
#include "hism/image.hpp"
#include "hism/transpose.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/sell_spmv.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/staging.hpp"
#include "stm/locator.hpp"
#include "stm/unit.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"
#include "vsim/program_cache.hpp"
#include "vsim/system.hpp"

namespace smtu {
namespace {

Coo make_matrix(Index dim, usize nnz, u64 seed) {
  Rng rng(seed);
  Coo coo(dim, dim);
  for (const u64 cell : rng.sample_without_replacement(dim * dim, nnz)) {
    coo.add(cell / dim, cell % dim, static_cast<float>(rng.uniform(0.5, 1.5)));
  }
  coo.canonicalize();
  return coo;
}

void BM_CsrFromCoo(benchmark::State& state) {
  const Coo coo = make_matrix(2048, static_cast<usize>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Csr::from_coo(coo));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsrFromCoo)->Arg(10000)->Arg(100000);

void BM_PissanetskyTranspose(benchmark::State& state) {
  const Csr csr = Csr::from_coo(make_matrix(2048, static_cast<usize>(state.range(0)), 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.transposed_pissanetsky());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PissanetskyTranspose)->Arg(10000)->Arg(100000);

void BM_HismFromCoo(benchmark::State& state) {
  const Coo coo = make_matrix(2048, static_cast<usize>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HismMatrix::from_coo(coo, 64));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HismFromCoo)->Arg(10000)->Arg(100000);

void BM_HismTransposeReference(benchmark::State& state) {
  const HismMatrix hism =
      HismMatrix::from_coo(make_matrix(2048, static_cast<usize>(state.range(0)), 4), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transposed(hism));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HismTransposeReference)->Arg(10000)->Arg(100000);

void BM_HismImageBuild(benchmark::State& state) {
  const HismMatrix hism =
      HismMatrix::from_coo(make_matrix(2048, static_cast<usize>(state.range(0)), 5), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_hism_image(hism, 0x10000));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HismImageBuild)->Arg(100000);

void BM_StmTransposeBlock(benchmark::State& state) {
  Rng rng(6);
  std::vector<StmEntry> entries;
  for (const u64 cell :
       rng.sample_without_replacement(64 * 64, static_cast<usize>(state.range(0)))) {
    entries.push_back(
        {static_cast<u8>(cell / 64), static_cast<u8>(cell % 64), static_cast<u32>(cell)});
  }
  StmConfig config;
  StmUnit unit(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.transpose_block(entries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StmTransposeBlock)->Arg(64)->Arg(1024)->Arg(4096);

void BM_NonzeroLocatorCircuit(benchmark::State& state) {
  Rng rng(7);
  std::vector<bool> bits(64);
  for (usize i = 0; i < 64; ++i) bits[i] = rng.chance(0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locate_first_ones_circuit(bits, 4));
  }
}
BENCHMARK(BM_NonzeroLocatorCircuit);

void BM_CooCanonicalize(benchmark::State& state) {
  const Coo coo = make_matrix(2048, 100000, 8);
  for (auto _ : state) {
    Coo copy = coo;
    copy.canonicalize();
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_CooCanonicalize);

// ---- interpreter throughput -------------------------------------------------
// How fast the simulator itself runs, as opposed to the cycle counts it
// produces. items/s below is simulated instructions per host second.

// Cold path: full parse + predecode of the HiSM transpose kernel, what every
// Machine::run used to pay before the ProgramCache.
void BM_AssembleTransposeKernel(benchmark::State& state) {
  const std::string source = kernels::hism_transpose_source();
  usize instructions = 0;
  for (auto _ : state) {
    const vsim::Program program = vsim::assemble(source);
    instructions = program.instructions.size();
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(instructions));
}
BENCHMARK(BM_AssembleTransposeKernel);

// Warm path: the ProgramCache hit that replaces the cold assemble on every
// run after the first.
void BM_ProgramCacheWarmHit(benchmark::State& state) {
  const std::string source = kernels::hism_transpose_source();
  vsim::ProgramCache::instance().get(source);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsim::ProgramCache::instance().get(source));
  }
}
BENCHMARK(BM_ProgramCacheWarmHit);

// Full kernel simulation against a shared pre-staged image (predecoded
// program, copy-on-write memory): the steady-state per-run cost of the
// comparison benches.
void BM_InterpretHismTranspose(benchmark::State& state) {
  const Coo coo = make_matrix(512, static_cast<usize>(state.range(0)), 9);
  const kernels::HismStage stage = kernels::build_hism_stage(HismMatrix::from_coo(coo, 64));
  const vsim::MachineConfig config;
  u64 instructions = 0;
  for (auto _ : state) {
    const vsim::RunStats stats = kernels::time_hism_transpose(stage, config);
    instructions += stats.instructions;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<i64>(instructions));
}
BENCHMARK(BM_InterpretHismTranspose)->Arg(10000)->Arg(50000);

// ---- per-dispatch-mode interpreter throughput -------------------------------
// One pre-staged simulation per kernel class, timed under both the threaded
// (default) and legacy switch interpreters. items/s is simulated
// instructions per host second; the cycles_per_sec counter is simulated
// cycles per host second. The same runners feed the --interp-json records.

struct InterpRun {
  u64 instructions = 0;
  u64 cycles = 0;
};

struct InterpCase {
  const char* name;
  std::function<InterpRun()> run;  // one full simulation, pre-staged inputs
};

InterpRun from_system_stats(const vsim::SystemRunStats& stats) {
  InterpRun run;
  run.cycles = stats.cycles;
  for (const vsim::RunStats& core : stats.core_stats) run.instructions += core.instructions;
  return run;
}

const std::vector<InterpCase>& interp_cases() {
  static const std::vector<InterpCase> cases = [] {
    std::vector<InterpCase> built;

    const auto hism_stage = std::make_shared<kernels::HismStage>(
        kernels::build_hism_stage(HismMatrix::from_coo(make_matrix(512, 50000, 9), 64)));
    built.push_back({"hism_transpose", [hism_stage] {
                       const vsim::RunStats stats =
                           kernels::time_hism_transpose(*hism_stage, vsim::MachineConfig{});
                       return InterpRun{stats.instructions, stats.cycles};
                     }});

    const auto crs_stage = std::make_shared<kernels::CrsStage>(
        kernels::build_crs_stage(Csr::from_coo(make_matrix(512, 20000, 10))));
    built.push_back({"crs_transpose", [crs_stage] {
                       const vsim::RunStats stats =
                           kernels::time_crs_transpose(*crs_stage, vsim::MachineConfig{});
                       return InterpRun{stats.instructions, stats.cycles};
                     }});

    const auto sell = std::make_shared<SellCSigma>(
        SellCSigma::from_coo(make_matrix(1024, 20000, 11), 16, 0));
    const auto x = std::make_shared<std::vector<float>>(1024, 1.0f);
    built.push_back({"sell_spmv", [sell, x] {
                       return from_system_stats(
                           kernels::time_sell_spmv(*sell, *x, vsim::SystemConfig{}));
                     }});

    const auto spgemm_a = std::make_shared<Coo>(make_matrix(256, 5000, 12));
    const auto spgemm_b =
        std::make_shared<Csr>(Csr::from_coo(make_matrix(256, 5000, 13)));
    built.push_back({"spgemm", [spgemm_a, spgemm_b] {
                       return from_system_stats(kernels::time_hism_spgemm(
                           *spgemm_a, *spgemm_b, vsim::SystemConfig{}));
                     }});
    return built;
  }();
  return cases;
}

InterpRun run_with_mode(const InterpCase& interp_case, vsim::DispatchMode mode) {
  const vsim::DispatchMode saved = vsim::default_dispatch_mode();
  vsim::set_default_dispatch_mode(mode);
  const InterpRun run = interp_case.run();
  vsim::set_default_dispatch_mode(saved);
  return run;
}

constexpr vsim::DispatchMode kModes[] = {vsim::DispatchMode::kThreaded,
                                         vsim::DispatchMode::kSwitch};

}  // namespace

void register_interp_mode_benches() {
  for (const InterpCase& interp_case : interp_cases()) {
    for (const vsim::DispatchMode mode : kModes) {
      const std::string name = std::string("BM_InterpretKernel/") + interp_case.name + "/" +
                               vsim::dispatch_mode_name(mode);
      benchmark::RegisterBenchmark(name.c_str(), [&interp_case,
                                                  mode](benchmark::State& state) {
        u64 instructions = 0;
        u64 cycles = 0;
        for (auto _ : state) {
          const InterpRun run = run_with_mode(interp_case, mode);
          instructions += run.instructions;
          cycles += run.cycles;
        }
        state.SetItemsProcessed(static_cast<i64>(instructions));
        state.counters["cycles_per_sec"] =
            benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
      });
    }
  }
}

// Writes the "smtu-hostmicro-v1" document: every kernel class under every
// dispatch mode, measured over at least 200 ms of wall time each.
void write_interp_json(const std::string& path) {
  std::ofstream out(path);
  SMTU_CHECK_MSG(out.good(), "cannot open " + path);
  JsonWriter json(out);
  json.begin_object();
  json.key("schema");
  json.value("smtu-hostmicro-v1");
  json.key("host");
  json.begin_object();
  json.key("dispatch");
  json.begin_array();
  for (const InterpCase& interp_case : interp_cases()) {
    for (const vsim::DispatchMode mode : kModes) {
      u64 instructions = 0;
      u64 cycles = 0;
      u64 runs = 0;
      double wall_ms = 0;
      const auto start = std::chrono::steady_clock::now();
      do {
        const InterpRun run = run_with_mode(interp_case, mode);
        instructions += run.instructions;
        cycles += run.cycles;
        ++runs;
        wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                            start)
                      .count();
      } while (wall_ms < 200.0);
      json.begin_object();
      json.key("name");
      json.value(interp_case.name);
      json.key("mode");
      json.value(vsim::dispatch_mode_name(mode));
      json.key("runs");
      json.value(runs);
      json.key("wall_ms");
      json.value(wall_ms);
      json.key("insts_per_sec");
      json.value(static_cast<double>(instructions) * 1000.0 / wall_ms);
      json.key("cycles_per_sec");
      json.value(static_cast<double>(cycles) * 1000.0 / wall_ms);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  json.end_object();
  SMTU_CHECK(json.complete());
}

}  // namespace smtu

int main(int argc, char** argv) {
  std::string interp_json;
  std::string telemetry_json;
  bool telemetry_on = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--interp-json=", 0) == 0) {
      interp_json = std::string(arg.substr(14));
    } else if (arg.rfind("--telemetry-json=", 0) == 0) {
      telemetry_json = std::string(arg.substr(17));
      telemetry_on = true;
    } else if (arg == "--telemetry") {
      telemetry_on = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (telemetry_on) smtu::telemetry::set_enabled(true);
  smtu::register_interp_mode_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!interp_json.empty()) smtu::write_interp_json(interp_json);
  if (!telemetry_json.empty()) {
    std::ofstream out(telemetry_json);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open telemetry output " + telemetry_json);
    smtu::JsonWriter json(out);
    smtu::telemetry::write_telemetry_json(json);
    out << '\n';
    std::fprintf(stderr, "wrote telemetry to %s\n", telemetry_json.c_str());
  }
  if (telemetry_on) {
    std::fprintf(stderr, "-- telemetry --\n%s",
                 smtu::telemetry::MetricsRegistry::instance().summary().c_str());
  }
  return 0;
}
