// Extension E4: double-buffering the STM.
//
// §IV-A notes the unit "can not be fully pipelined" because the single
// s x s memory must fill before draining. A second memory in ping-pong
// (icm switches banks; StmConfig::double_buffer) removes that constraint —
// but hardware alone buys nothing: with the unmodified kernel, the machine
// issues vector memory instructions in order and every drain section ends
// in a store that the next fill's loads queue behind. The win requires
// *software pipelining* too: a kernel that interleaves child k's drain
// sections with child k+1's fill sections (hism_transpose_pipelined).
// This bench shows all three: single buffer, double buffer with the naive
// kernel (null result), and double buffer with the pipelined kernel.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/hism_transpose.hpp"
#include "support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bench::BenchOptions options = bench::parse_options(cli);

  std::printf("== Extension E4: double-buffered STM + software pipelining (locality set) ==\n");
  suite::SuiteOptions suite_options = options.suite;
  suite_options.scale = std::min(suite_options.scale, 0.5);
  const auto set = suite::build_dsab_set(suite::kSetLocality, suite_options);

  TextTable table({"matrix", "single", "dbuf naive", "dbuf pipelined", "gain"});
  struct BufferTimings {
    u64 single;
    u64 naive;
    u64 pipelined;
  };
  ThreadPool pool(options.jobs);
  const auto timings = parallel_map(pool, set, [&](const suite::SuiteMatrix& entry) {
    vsim::MachineConfig config;
    const HismMatrix hism = HismMatrix::from_coo(entry.matrix, config.section);
    BufferTimings t;
    config.stm.double_buffer = false;
    t.single = kernels::time_hism_transpose(hism, config, /*split_drain_registers=*/true).cycles;
    config.stm.double_buffer = true;
    t.naive = kernels::time_hism_transpose(hism, config, /*split_drain_registers=*/true).cycles;
    t.pipelined = kernels::time_hism_transpose_pipelined(hism, config).cycles;
    return t;
  });
  double total_gain = 0.0;
  for (usize i = 0; i < set.size(); ++i) {
    const BufferTimings& t = timings[i];
    const double gain = static_cast<double>(t.single) / static_cast<double>(t.pipelined);
    total_gain += gain;
    table.add_row({set[i].name, format("%llu", static_cast<unsigned long long>(t.single)),
                   format("%llu", static_cast<unsigned long long>(t.naive)),
                   format("%llu", static_cast<unsigned long long>(t.pipelined)),
                   format("%.2fx", gain)});
  }
  table.add_row({"AVERAGE", "", "", "",
                 format("%.2fx", total_gain / static_cast<double>(set.size()))});
  bench::emit(table, options.csv_path);
  std::printf(
      "\nreading: the second buffer alone is a null result (in-order memory\n"
      "serializes the phases regardless of banking); hardware + the software-\n"
      "pipelined kernel together overlap each child's drain with the next\n"
      "child's fill. Cost: 2x the unit's SRAM and a more intricate kernel.\n");
  bench::finish_telemetry(options);
  return 0;
}
