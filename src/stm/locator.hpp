// The Non-zero Locator of the STM (Fig. 4 of the paper).
//
// The circuit extracts from a string of non-zero indicator bits the positions
// of the first B ones. When fewer than B ones remain, the corresponding
// "0"-counters overflow, signalling the control logic to fetch the next line
// from the s x s memory. We provide a behavioral model (simple scan) and a
// structural model that mirrors the cascaded zero-counter circuit; tests
// prove them equivalent, and the STM unit uses the behavioral one.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace smtu {

struct LocatorResult {
  // Positions of the located ones, at most `bandwidth` of them, ascending.
  std::vector<u32> positions;
  // True when fewer than `bandwidth` ones were present (a "0"-counter
  // overflowed); the control logic then advances to the next line.
  bool overflow = false;
};

// Behavioral model: scan `bits` (LSB-first significance: index 0 is the
// first cell of the line) and report the first `bandwidth` set positions.
LocatorResult locate_first_ones(const std::vector<bool>& bits, u32 bandwidth);

// Structural model: a log-depth prefix population count (the adder tree the
// "0"-counters form) followed by per-output selection. Produces identical
// results to the behavioral model.
LocatorResult locate_first_ones_circuit(const std::vector<bool>& bits, u32 bandwidth);

}  // namespace smtu
