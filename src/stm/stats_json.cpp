#include "stm/stats_json.hpp"

namespace smtu {

void write_stm_stats_json(JsonWriter& json, const StmUnit::Stats& stats,
                          const StmConfig& config) {
  json.begin_object();
  json.key("blocks");
  json.value(stats.blocks);
  json.key("elements_in");
  json.value(stats.elements_in);
  json.key("elements_out");
  json.value(stats.elements_out);
  json.key("write_cycles");
  json.value(stats.write_cycles);
  json.key("read_cycles");
  json.value(stats.read_cycles);
  json.key("write_batches");
  json.value(stats.write_batches);
  json.key("read_batches");
  json.value(stats.read_batches);
  const u64 io_cycles = stats.write_cycles + stats.read_cycles;
  const double capacity = static_cast<double>(io_cycles) * config.bandwidth;
  json.key("buffer_utilization");
  json.value(capacity == 0.0
                 ? 0.0
                 : static_cast<double>(stats.elements_in + stats.elements_out) / capacity);
  json.end_object();
}

}  // namespace smtu
