// The Sparse matrix Transposition Mechanism (STM) — functional model plus
// cycle-accurate timing of the write (row-wise fill) and read (column-wise
// drain) phases.
//
// Timing rules (§III, §IV-C of the paper):
//  * The I/O buffer moves at most B elements per cycle (B = buffer
//    bandwidth). All elements moved in one cycle must belong to the same
//    line, or — in the extended mechanism — to at most L *consecutive*
//    lines (L = number of accessible lines).
//  * Filling is pipelined in 3 stages (I/O buffer -> non-zero locator ->
//    s x s row write); draining likewise. The last elements of a block
//    therefore pay a 3-cycle fill tail and a 3-cycle drain tail: the paper's
//    6-cycle per-block penalty.
//  * The s x s memory must be completely filled before it is read back, so
//    the two phases of one block never overlap.
//
// With StmConfig::double_buffer the unit holds two s x s memories in
// ping-pong: `icm` switches the fill side to the other bank (which must be
// fully drained) and clears it; reads drain the oldest bank that still
// holds undrained content. A software-pipelined kernel can then overlap
// block k's drain with block k+1's fill (extension E4).
#pragma once

#include <span>
#include <vector>

#include "stm/sxs_memory.hpp"
#include "support/types.hpp"

namespace smtu {

struct StmConfig {
  u32 section = 64;     // s
  u32 bandwidth = 4;    // B: max elements the I/O buffer moves per cycle
  u32 lines = 4;        // L: lines accessible in one cycle
  // Paper rule: the up-to-L lines touched in one cycle must have consecutive
  // indices. Relaxing this (any L lines) is the Ablation A1 variant.
  bool strict_consecutive_lines = true;
  // Pipeline depths (3 + 3 = the paper's 6-cycle block penalty).
  u32 fill_pipeline_cycles = 3;
  u32 drain_pipeline_cycles = 3;
  // Whether a line with no non-zeros can be skipped without spending a
  // cycle (per-line occupancy OR is cheap hardware); turning this off makes
  // the drain scan all s/L line groups.
  bool skip_empty_lines = true;
  // Extension E4: a second s x s memory in ping-pong. Affects which bank
  // each operation touches and, in the machine's timing model, lets a
  // software-pipelined kernel overlap a drain with the next fill.
  bool double_buffer = false;
};

// One element moving through the unit: position within the block + payload.
struct StmEntry {
  u8 row = 0;
  u8 col = 0;
  u32 value_bits = 0;

  friend bool operator==(const StmEntry&, const StmEntry&) = default;
};

class StmUnit {
 public:
  explicit StmUnit(const StmConfig& config);

  const StmConfig& config() const { return config_; }
  // The current fill-side s x s memory.
  const SxsMemory& grid() const { return banks_[fill_bank_].grid; }
  u32 fill_bank() const { return fill_bank_; }

  // `icm`: switches to the other bank (double-buffer mode) and clears it.
  // The incoming bank must hold no undrained elements.
  void clear();

  // Write phase: scatters `entries` into the fill bank and returns the
  // number of I/O-buffer cycles the batch consumes (pipeline tails are
  // charged by the caller / `transpose_block`).
  u32 write_batch(std::span<const StmEntry> entries);

  struct ReadBatch {
    // Transposed coordinates (row/col swapped). A view into the unit's
    // frozen drain buffer — no per-batch allocation; valid until the drained
    // bank is cleared (`icm`). Copy before the next clear if needed longer.
    std::span<const StmEntry> entries;
    u32 cycles = 0;
    u32 bank = 0;  // which bank drained (for per-bank timing in the machine)
  };

  // Read phase: drains the next `count` elements — in column-wise order of
  // the stored block, i.e. row-major order of the transpose — from the
  // oldest bank that still holds undrained content.
  ReadBatch read_batch(u32 count);

  // Elements still available to drain (all banks).
  u32 drain_remaining() const;

  // The bank the next read_batch will drain (used by the machine's
  // per-bank timing before functionally executing the instruction).
  u32 peek_drain_bank() const;

  struct BlockResult {
    std::vector<StmEntry> transposed;
    u64 cycles = 0;       // fill + drain + both pipeline tails
    u32 write_cycles = 0; // I/O-buffer cycles of the fill phase
    u32 read_cycles = 0;  // I/O-buffer cycles of the drain phase
  };

  // Convenience: transposes one whole s^2-block and accounts full timing.
  BlockResult transpose_block(std::span<const StmEntry> entries);

  // Lifetime statistics for utilization studies.
  struct Stats {
    u64 blocks = 0;
    u64 elements_in = 0;
    u64 elements_out = 0;
    u64 write_cycles = 0;
    u64 read_cycles = 0;
    // Batch counts expose how often the unit was driven, so occupancy can
    // be separated into per-batch startup vs. streaming time.
    u64 write_batches = 0;
    u64 read_batches = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Bank {
    explicit Bank(u32 section) : grid(section) {}

    SxsMemory grid;
    std::vector<StmEntry> filled;        // arrival order since last clear
    bool draining = false;
    std::vector<StmEntry> drain_entries; // transposed coords, drain order
    std::vector<u32> drain_cycle_of;     // cumulative cycles per entry
    usize drain_cursor = 0;

    bool fully_drained() const {
      return filled.empty() || (draining && drain_cursor == drain_entries.size());
    }
    u32 undrained() const {
      if (!draining) return static_cast<u32>(filled.size());
      return static_cast<u32>(drain_entries.size() - drain_cursor);
    }
  };

  void freeze_drain_schedule(Bank& bank);
  Bank& drain_bank_for_read();

  StmConfig config_;
  std::vector<Bank> banks_;
  u32 fill_bank_ = 0;
  Stats stats_;
  // Reused radix-sort buffer for freeze_drain_schedule, so the per-block
  // hot path performs no heap allocation after warm-up.
  std::vector<StmEntry> sort_scratch_;
};

// Shared cycle engine: number of I/O-buffer cycles needed to stream entries
// whose line ids are `lines` (row ids when filling, column ids when
// draining), under bandwidth B and the L-consecutive-lines rule.
u32 stream_cycles(std::span<const u8> lines, const StmConfig& config);

}  // namespace smtu
