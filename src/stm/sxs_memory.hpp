// The s x s in-processor memory at the heart of the STM (Fig. 3).
//
// Each cell holds a 32-bit word (an element value or a block pointer) plus a
// non-zero indicator bit. Data enters row-wise and leaves column-wise (or
// vice versa), which performs the per-block transposition.
#pragma once

#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace smtu {

class SxsMemory {
 public:
  explicit SxsMemory(u32 section);

  u32 section() const { return section_; }
  usize occupancy() const { return occupied_count_; }

  // The `icm` instruction: resets every non-zero indicator.
  void clear();

  // Inserts a value; inserting into an occupied cell aborts (a valid
  // block-array never stores a position twice). Inline: this sits on the
  // per-element fill path of every transpose kernel.
  void insert(u32 row, u32 col, u32 value_bits) {
    const usize c = cell(row, col);
    if (stamp_[c] == epoch_) [[unlikely]] duplicate_insert(row, col);
    stamp_[c] = epoch_;
    values_[c] = value_bits;
    row_count_[row]++;
    col_count_[col]++;
    occupied_count_++;
  }

  // Clears one indicator — the locator "sets located non-zeros to zero"
  // after extracting them (§III). Aborts if the cell is empty.
  void erase(u32 row, u32 col);

  bool occupied(u32 row, u32 col) const;
  u32 value_bits(u32 row, u32 col) const;

  // Indicator line images, as presented to the Non-zero Locator.
  std::vector<bool> row_indicators(u32 row) const;
  std::vector<bool> col_indicators(u32 col) const;

  // Per-line population, used by the timing engine to skip empty lines.
  u32 row_count(u32 row) const { return row_count_[row]; }
  u32 col_count(u32 col) const { return col_count_[col]; }

 private:
  usize cell(u32 row, u32 col) const {
    SMTU_DCHECK(row < section_ && col < section_);
    return static_cast<usize>(row) * section_ + col;
  }
  [[noreturn]] void duplicate_insert(u32 row, u32 col) const;

  u32 section_;
  usize occupied_count_ = 0;
  std::vector<u32> values_;
  // Non-zero indicators as generation stamps: a cell is occupied iff its
  // stamp equals the current epoch, making `icm` O(s) instead of O(s^2) —
  // the hardware's flash clear, without the simulator paying per-cell cost.
  std::vector<u32> stamp_;
  u32 epoch_ = 1;
  std::vector<u32> row_count_;
  std::vector<u32> col_count_;
};

}  // namespace smtu
