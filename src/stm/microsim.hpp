// Cycle-by-cycle micro-simulation of the STM's drain phase, driving the
// actual Non-zero Locator circuit of Fig. 4 against the s x s memory's
// indicator lines.
//
// This is an *independent* implementation of the unit's timing policy: each
// cycle the control logic presents a window of up to L consecutive columns
// (or any L non-empty columns in the relaxed variant) to the locator bank,
// extracts up to B located non-zeros, clears them, and advances on
// overflow. The schedule-based engine in stm/unit.cpp must produce exactly
// the same cycle counts and drain order; the property tests enforce that.
// The same machinery simulates the fill phase by treating the incoming
// element stream's row ids as indicator lines.
#pragma once

#include <span>
#include <vector>

#include "stm/unit.hpp"

namespace smtu {

struct MicrosimResult {
  std::vector<StmEntry> drained;  // transposed coordinates, drain order
  u32 cycles = 0;                 // I/O-buffer cycles (no pipeline tails)
};

// Fills a scratch s x s memory with `entries`, then drains it column-wise
// through the locator, one cycle at a time.
MicrosimResult microsim_drain(std::span<const StmEntry> entries, const StmConfig& config);

// Streams `entries` (already ordered as stored in the block-array) into the
// unit, counting fill cycles under the same window/bandwidth policy.
u32 microsim_fill_cycles(std::span<const StmEntry> entries, const StmConfig& config);

}  // namespace smtu
