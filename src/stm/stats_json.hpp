// JSON export of the STM unit's lifetime micro-statistics, for the
// observability layer's per-unit counters (see docs/TRACE.md).
#pragma once

#include "stm/unit.hpp"
#include "support/json.hpp"

namespace smtu {

// Writes `stats` as one JSON object keyed by the Stats member names, plus
// the derived `buffer_utilization` = (in + out) / ((write + read) * B),
// the §IV-C metric the Fig. 10 sweep reports.
void write_stm_stats_json(JsonWriter& json, const StmUnit::Stats& stats,
                          const StmConfig& config);

}  // namespace smtu
