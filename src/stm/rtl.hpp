// Cycle-stepped, register-transfer-level model of the STM datapath of
// Fig. 3. Where stm/unit.cpp computes phase durations with a schedule
// engine (fast, used by the machine) and stm/microsim.cpp re-derives them
// with per-cycle locator calls, this model steps the actual *pipeline*:
//
//   fill:   IO buffer -> Non-zero Locator scatter -> row-buffer commit
//   drain:  column fetch/locate -> gather -> IO buffer out
//
// Three explicit stage registers per direction, so the paper's §IV-A claim
// — "the write and read phases can be pipelined in three stages", giving
// the 6-cycle per-block penalty — is checked structurally: an element
// accepted at cycle t commits at t+3; the last output of a drain appears 3
// cycles after its extraction; back-to-back occupancy equals the schedule
// engine's cycle counts exactly.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "stm/unit.hpp"

namespace smtu {

class StmRtl {
 public:
  explicit StmRtl(const StmConfig& config);

  // ---- fill direction ----------------------------------------------------
  // Presents the next elements of the block stream; the unit accepts up to
  // B of them (respecting the line-window rule) into its IO buffer this
  // cycle and returns how many were taken. Call step() to advance.
  u32 offer(std::span<const StmEntry> pending);

  // ---- drain direction ---------------------------------------------------
  // Switches the unit to drain mode (fill pipeline must be empty).
  void begin_drain();

  // Advances one cycle; in drain mode, elements that completed the 3-stage
  // output path this cycle are appended to `out`.
  void step(std::vector<StmEntry>* out = nullptr);

  // True when every accepted element has been committed to the grid (fill)
  // or delivered (drain).
  bool pipeline_empty() const;
  bool drain_finished() const;

  Cycle now() const { return cycle_; }
  const SxsMemory& grid() const { return grid_; }

  // Convenience: runs a whole block through fill + drain, returning the
  // transposed elements and the total cycle count including both 3-cycle
  // pipeline tails (comparable to StmUnit::transpose_block).
  struct Result {
    std::vector<StmEntry> transposed;
    Cycle cycles = 0;
    Cycle fill_cycles = 0;   // IO-buffer accept cycles
    Cycle drain_cycles = 0;  // extraction cycles
  };
  static Result run_block(std::span<const StmEntry> entries, const StmConfig& config);

 private:
  struct Bundle {
    std::vector<StmEntry> items;  // elements moving together this cycle
  };

  u32 accept_window(std::span<const StmEntry> pending);
  std::optional<Bundle> extract_next();

  StmConfig config_;
  SxsMemory grid_;
  Cycle cycle_ = 0;
  bool draining_ = false;

  // Input latch (the IO buffer's accept slot) plus three pipeline stage
  // registers; index 0 = newest, 2 = about to retire.
  Bundle latch_;
  bool latch_valid_ = false;
  std::optional<Bundle> stage_[3];
  usize committed_ = 0;   // elements written into the grid (fill)
  usize accepted_ = 0;    // elements taken from the input stream
  usize extracted_ = 0;   // elements pulled from the grid (drain)
  usize delivered_ = 0;   // elements that left the output stage
  usize to_extract_ = 0;  // grid occupancy at begin_drain()
};

}  // namespace smtu
