#include "stm/rtl.hpp"

#include "support/assert.hpp"

namespace smtu {

StmRtl::StmRtl(const StmConfig& config) : config_(config), grid_(config.section) {
  SMTU_CHECK_MSG(config.fill_pipeline_cycles == 3 && config.drain_pipeline_cycles == 3,
                 "the RTL model implements the paper's 3-stage pipelines");
  SMTU_CHECK_MSG(config.skip_empty_lines, "the RTL model assumes per-line occupancy summaries");
}

u32 StmRtl::accept_window(std::span<const StmEntry> pending) {
  // Same greedy policy as the schedule engine: up to B elements from the
  // stream head, all within a window of L lines (consecutive under the
  // strict rule).
  u32 taken = 0;
  const u32 anchor = pending.front().row;
  u32 distinct = 0;
  i32 last_row = -1;
  while (taken < pending.size() && taken < config_.bandwidth) {
    const u32 row = pending[taken].row;
    if (config_.strict_consecutive_lines &&
        (row < anchor || row >= anchor + config_.lines)) {
      break;
    }
    if (static_cast<i32>(row) != last_row) {
      if (distinct == config_.lines) break;
      ++distinct;
      last_row = static_cast<i32>(row);
    }
    ++taken;
  }
  return taken;
}

u32 StmRtl::offer(std::span<const StmEntry> pending) {
  SMTU_CHECK_MSG(!draining_, "offer() is a fill-direction operation");
  if (pending.empty()) return 0;
  SMTU_CHECK_MSG(!latch_valid_, "one offer() per cycle; call step() first");
  const u32 taken = accept_window(pending);
  latch_.items.assign(pending.begin(), pending.begin() + taken);
  latch_valid_ = true;
  accepted_ += taken;
  return taken;
}

std::optional<StmRtl::Bundle> StmRtl::extract_next() {
  if (extracted_ >= to_extract_) return std::nullopt;
  Bundle bundle;
  const u32 s = config_.section;
  u32 budget = config_.bandwidth;

  u32 anchor = 0;
  while (anchor < s && grid_.col_count(anchor) == 0) ++anchor;
  SMTU_CHECK(anchor < s);

  u32 distinct = 0;
  for (u32 col = anchor; col < s && budget > 0; ++col) {
    if (grid_.col_count(col) == 0) continue;
    if (config_.strict_consecutive_lines) {
      if (col >= anchor + config_.lines) break;
    } else if (distinct == config_.lines) {
      break;
    }
    ++distinct;
    for (u32 row = 0; row < s && budget > 0; ++row) {
      if (!grid_.occupied(row, col)) continue;
      bundle.items.push_back(
          {static_cast<u8>(col), static_cast<u8>(row), grid_.value_bits(row, col)});
      grid_.erase(row, col);
      --budget;
    }
  }
  extracted_ += bundle.items.size();
  return bundle;
}

void StmRtl::begin_drain() {
  SMTU_CHECK_MSG(pipeline_empty(), "fill pipeline must drain before the read phase (§III)");
  draining_ = true;
  to_extract_ = grid_.occupancy();
}

void StmRtl::step(std::vector<StmEntry>* out) {
  // Retire the oldest stage.
  if (stage_[2].has_value()) {
    if (draining_) {
      SMTU_CHECK_MSG(out != nullptr, "drain output requires a sink");
      out->insert(out->end(), stage_[2]->items.begin(), stage_[2]->items.end());
      delivered_ += stage_[2]->items.size();
    } else {
      for (const StmEntry& e : stage_[2]->items) grid_.insert(e.row, e.col, e.value_bits);
      committed_ += stage_[2]->items.size();
    }
  }
  // Shift the pipeline.
  stage_[2] = std::move(stage_[1]);
  stage_[1] = std::move(stage_[0]);
  if (draining_) {
    auto next = extract_next();
    if (next.has_value() && !next->items.empty()) {
      stage_[0] = std::move(next);
    } else {
      stage_[0].reset();
    }
  } else if (latch_valid_) {
    stage_[0] = std::move(latch_);
    latch_ = {};
    latch_valid_ = false;
  } else {
    stage_[0].reset();
  }
  ++cycle_;
}

bool StmRtl::pipeline_empty() const {
  return !latch_valid_ && !stage_[0].has_value() && !stage_[1].has_value() &&
         !stage_[2].has_value();
}

bool StmRtl::drain_finished() const {
  return draining_ && extracted_ == to_extract_ && pipeline_empty();
}

StmRtl::Result StmRtl::run_block(std::span<const StmEntry> entries,
                                 const StmConfig& config) {
  StmRtl rtl(config);
  Result result;

  usize index = 0;
  while (index < entries.size() || !rtl.pipeline_empty()) {
    if (index < entries.size()) {
      const u32 taken = rtl.offer(entries.subspan(index));
      index += taken;
      if (taken > 0) ++result.fill_cycles;
    }
    rtl.step();
  }

  rtl.begin_drain();
  while (!rtl.drain_finished()) {
    const usize before = rtl.extracted_;
    rtl.step(&result.transposed);
    if (rtl.extracted_ > before) ++result.drain_cycles;
  }
  result.cycles = rtl.now();
  SMTU_CHECK(rtl.delivered_ == rtl.extracted_);
  SMTU_CHECK(rtl.committed_ == rtl.accepted_);
  return result;
}

}  // namespace smtu
