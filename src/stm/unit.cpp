#include "stm/unit.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu {
namespace {

// Walks a stream of `count` entries tagged with their line id (read through
// `line_at(i)` so callers stream straight out of entry arrays without
// building a separate line-id buffer), calling per_entry(index, cycle) as
// each one moves, and returns the total cycle count. One cycle moves at most
// B entries, all within a window of L lines (consecutive indices under the
// strict rule, any L distinct lines otherwise). Templated so the
// counting-only path allocates nothing.
template <typename LineAt, typename PerEntry>
u32 stream_pass(usize count, LineAt line_at, const StmConfig& config, PerEntry per_entry) {
  u32 cycles = 0;
  usize i = 0;
  while (i < count) {
    u32 taken = 0;
    const u32 anchor = line_at(i);
    u32 distinct = 0;
    i32 last = -1;
    ++cycles;
    while (i < count && taken < config.bandwidth) {
      const u32 line = line_at(i);
      if (config.strict_consecutive_lines &&
          (line < anchor || line >= anchor + config.lines)) {
        break;
      }
      if (static_cast<i32>(line) != last) {
        if (distinct == config.lines) break;
        ++distinct;
        last = static_cast<i32>(line);
      }
      per_entry(i, cycles);
      ++taken;
      ++i;
    }
  }
  return cycles;
}

// Sorts transposed entries into drain order — (row, col) lexicographic —
// with two stable counting passes (LSD radix over the u8 col then row
// keys). Positions within a block are unique, so this produces exactly the
// order a comparator sort would; it replaces one because the comparator
// sort dominated whole-simulation profiles of transpose kernels.
void sort_drain_order(std::vector<StmEntry>& entries, std::vector<StmEntry>& scratch,
                      u32 section) {
  scratch.resize(entries.size());
  u32 counts[256];
  std::fill(counts, counts + section, 0u);
  for (const StmEntry& e : entries) counts[e.col]++;
  u32 sum = 0;
  for (u32 i = 0; i < section; ++i) {
    const u32 c = counts[i];
    counts[i] = sum;
    sum += c;
  }
  for (const StmEntry& e : entries) scratch[counts[e.col]++] = e;
  std::fill(counts, counts + section, 0u);
  for (const StmEntry& e : scratch) counts[e.row]++;
  sum = 0;
  for (u32 i = 0; i < section; ++i) {
    const u32 c = counts[i];
    counts[i] = sum;
    sum += c;
  }
  for (const StmEntry& e : scratch) entries[counts[e.row]++] = e;
}

}  // namespace

u32 stream_cycles(std::span<const u8> lines, const StmConfig& config) {
  return stream_pass(lines.size(), [&](usize i) { return lines[i]; }, config,
                     [](usize, u32) {});
}

StmUnit::StmUnit(const StmConfig& config) : config_(config) {
  SMTU_CHECK_MSG(config.bandwidth >= 1, "buffer bandwidth must be positive");
  SMTU_CHECK_MSG(config.lines >= 1 && config.lines <= config.section,
                 "accessible lines must be in [1, section]");
  banks_.reserve(config.double_buffer ? 2 : 1);
  banks_.emplace_back(config.section);
  if (config.double_buffer) banks_.emplace_back(config.section);
}

void StmUnit::clear() {
  const u32 incoming = config_.double_buffer ? fill_bank_ ^ 1 : 0u;
  Bank& bank = banks_[incoming];
  SMTU_CHECK_MSG(bank.fully_drained(),
                 "icm would clear a bank that still holds undrained elements");
  bank.grid.clear();
  bank.filled.clear();
  bank.draining = false;
  bank.drain_entries.clear();
  bank.drain_cycle_of.clear();
  bank.drain_cursor = 0;
  fill_bank_ = incoming;
}

u32 StmUnit::write_batch(std::span<const StmEntry> entries) {
  Bank& bank = banks_[fill_bank_];
  SMTU_CHECK_MSG(!bank.draining,
                 "cannot fill the s x s memory while draining it; issue icm first");
  for (const StmEntry& e : entries) {
    bank.grid.insert(e.row, e.col, e.value_bits);
    bank.filled.push_back(e);
  }
  const u32 cycles = stream_pass(
      entries.size(), [&](usize i) { return entries[i].row; }, config_, [](usize, u32) {});
  stats_.elements_in += entries.size();
  stats_.write_cycles += cycles;
  ++stats_.write_batches;
  return cycles;
}

void StmUnit::freeze_drain_schedule(Bank& bank) {
  SMTU_CHECK(!bank.draining);
  bank.draining = true;
  bank.drain_cursor = 0;
  stats_.blocks++;

  // Column-wise scan of the stored block = row-major order of the transpose.
  // Built by sorting the filled entries rather than scanning all s^2 cells,
  // which matters when blocks are sparse.
  bank.drain_entries.clear();
  bank.drain_entries.reserve(bank.filled.size());
  for (const StmEntry& e : bank.filled) {
    bank.drain_entries.push_back({e.col, e.row, e.value_bits});
  }
  sort_drain_order(bank.drain_entries, sort_scratch_, config_.section);
  const auto drain_line_at = [&](usize i) { return bank.drain_entries[i].row; };
  const u32 s = config_.section;

  if (config_.skip_empty_lines) {
    bank.drain_cycle_of.assign(bank.drain_entries.size(), 0);
    stream_pass(bank.drain_entries.size(), drain_line_at, config_,
                [&](usize i, u32 cycle) { bank.drain_cycle_of[i] = cycle; });
  } else {
    // Without per-line occupancy summaries the drain scans aligned groups of
    // L consecutive columns, paying one cycle even for an empty group.
    bank.drain_cycle_of.assign(bank.drain_entries.size(), 0);
    u32 cumulative = 0;
    usize idx = 0;
    for (u32 group = 0; group < s; group += config_.lines) {
      usize count = 0;
      while (idx + count < bank.drain_entries.size() &&
             drain_line_at(idx + count) < group + config_.lines) {
        ++count;
      }
      const u32 group_cycles =
          std::max<u32>(1, static_cast<u32>(ceil_div(count, config_.bandwidth)));
      cumulative += group_cycles;
      for (usize k = 0; k < count; ++k) bank.drain_cycle_of[idx + k] = cumulative;
      idx += count;
    }
  }
}

u32 StmUnit::peek_drain_bank() const {
  // Oldest bank with undrained content: in double-buffer mode the non-fill
  // bank, unless it is exhausted (the final block drains from the fill
  // side); single-buffer mode only has bank 0.
  if (config_.double_buffer && banks_[fill_bank_ ^ 1].undrained() > 0) {
    return fill_bank_ ^ 1;
  }
  return fill_bank_;
}

StmUnit::Bank& StmUnit::drain_bank_for_read() { return banks_[peek_drain_bank()]; }

StmUnit::ReadBatch StmUnit::read_batch(u32 count) {
  ReadBatch batch;
  Bank& bank = drain_bank_for_read();
  batch.bank = static_cast<u32>(&bank - banks_.data());
  if (!bank.draining) freeze_drain_schedule(bank);
  if (count == 0) return batch;
  SMTU_CHECK_MSG(bank.drain_cursor + count <= bank.drain_entries.size(),
                 "draining more elements than the s x s memory holds");
  const u32 before = bank.drain_cursor == 0 ? 0 : bank.drain_cycle_of[bank.drain_cursor - 1];
  const u32 after = bank.drain_cycle_of[bank.drain_cursor + count - 1];
  batch.cycles = after - before;
  batch.entries = std::span<const StmEntry>(bank.drain_entries).subspan(bank.drain_cursor, count);
  bank.drain_cursor += count;
  stats_.elements_out += count;
  stats_.read_cycles += batch.cycles;
  ++stats_.read_batches;
  return batch;
}

u32 StmUnit::drain_remaining() const {
  u32 total = 0;
  for (const Bank& bank : banks_) total += bank.undrained();
  return total;
}

StmUnit::BlockResult StmUnit::transpose_block(std::span<const StmEntry> entries) {
  clear();
  BlockResult result;
  result.write_cycles = write_batch(entries);
  const ReadBatch drained = read_batch(static_cast<u32>(entries.size()));
  result.read_cycles = drained.cycles;
  result.transposed.assign(drained.entries.begin(), drained.entries.end());
  result.cycles = static_cast<u64>(result.write_cycles) + result.read_cycles +
                  config_.fill_pipeline_cycles + config_.drain_pipeline_cycles;
  return result;
}

}  // namespace smtu
