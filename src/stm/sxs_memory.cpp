#include "stm/sxs_memory.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu {

SxsMemory::SxsMemory(u32 section)
    : section_(section),
      values_(static_cast<usize>(section) * section, 0),
      stamp_(static_cast<usize>(section) * section, 0),
      row_count_(section, 0),
      col_count_(section, 0) {
  SMTU_CHECK_MSG(section >= 2 && section <= 256, "section size must be in [2, 256]");
}

void SxsMemory::duplicate_insert(u32 row, u32 col) const {
  SMTU_CHECK_MSG(false, format("duplicate position (%u,%u) in s^2-block", row, col));
  __builtin_unreachable();
}

void SxsMemory::clear() {
  ++epoch_;
  if (epoch_ == 0) {  // stamp wrap-around: do the full clear once per 2^32
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 1;
  }
  row_count_.assign(section_, 0);
  col_count_.assign(section_, 0);
  occupied_count_ = 0;
}

void SxsMemory::erase(u32 row, u32 col) {
  const usize c = cell(row, col);
  SMTU_CHECK_MSG(stamp_[c] == epoch_, "erasing an empty s x s memory cell");
  stamp_[c] = epoch_ - 1;
  row_count_[row]--;
  col_count_[col]--;
  occupied_count_--;
}

bool SxsMemory::occupied(u32 row, u32 col) const { return stamp_[cell(row, col)] == epoch_; }

u32 SxsMemory::value_bits(u32 row, u32 col) const {
  const usize c = cell(row, col);
  SMTU_CHECK_MSG(stamp_[c] == epoch_, "reading an empty s x s memory cell");
  return values_[c];
}

std::vector<bool> SxsMemory::row_indicators(u32 row) const {
  std::vector<bool> bits(section_);
  for (u32 col = 0; col < section_; ++col) bits[col] = occupied(row, col);
  return bits;
}

std::vector<bool> SxsMemory::col_indicators(u32 col) const {
  std::vector<bool> bits(section_);
  for (u32 row = 0; row < section_; ++row) bits[row] = occupied(row, col);
  return bits;
}

}  // namespace smtu
