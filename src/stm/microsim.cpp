#include "stm/microsim.hpp"

#include "stm/locator.hpp"
#include "stm/sxs_memory.hpp"
#include "support/assert.hpp"

namespace smtu {

MicrosimResult microsim_drain(std::span<const StmEntry> entries, const StmConfig& config) {
  SMTU_CHECK_MSG(config.skip_empty_lines,
                 "the micro-simulator models the occupancy-summary variant only");
  const u32 s = config.section;
  SxsMemory grid(s);
  for (const StmEntry& e : entries) grid.insert(e.row, e.col, e.value_bits);

  MicrosimResult result;
  result.drained.reserve(entries.size());

  usize remaining = entries.size();
  while (remaining > 0) {
    // One I/O-buffer cycle: the control logic selects a line window and the
    // locator bank extracts up to B non-zeros from it.
    ++result.cycles;
    u32 budget = config.bandwidth;

    // Anchor at the first column that still holds non-zeros.
    u32 anchor = 0;
    while (anchor < s && grid.col_count(anchor) == 0) ++anchor;
    SMTU_CHECK(anchor < s);

    u32 distinct_lines = 0;
    for (u32 col = anchor; col < s && budget > 0; ++col) {
      if (grid.col_count(col) == 0) continue;
      if (config.strict_consecutive_lines) {
        if (col >= anchor + config.lines) break;
      } else {
        if (distinct_lines == config.lines) break;
      }
      ++distinct_lines;

      // The Non-zero Locator extracts the first `budget` ones from this
      // column's indicator line; when fewer remain, its overflow output
      // tells the control logic to continue with the next window line.
      const LocatorResult located = locate_first_ones(grid.col_indicators(col), budget);
      for (const u32 row : located.positions) {
        result.drained.push_back(
            {static_cast<u8>(col), static_cast<u8>(row), grid.value_bits(row, col)});
        // "The located non-zeros are set to zero" (§III).
        grid.erase(row, col);
      }
      budget -= static_cast<u32>(located.positions.size());
      remaining -= located.positions.size();
    }
  }
  return result;
}

u32 microsim_fill_cycles(std::span<const StmEntry> entries, const StmConfig& config) {
  u32 cycles = 0;
  usize i = 0;
  while (i < entries.size()) {
    ++cycles;
    u32 budget = config.bandwidth;
    const u32 anchor = entries[i].row;
    u32 distinct_lines = 0;
    i32 last_row = -1;
    while (i < entries.size() && budget > 0) {
      const u32 row = entries[i].row;
      if (config.strict_consecutive_lines) {
        if (row < anchor || row >= anchor + config.lines) break;
      }
      if (static_cast<i32>(row) != last_row) {
        if (distinct_lines == config.lines) break;
        ++distinct_lines;
        last_row = static_cast<i32>(row);
      }
      ++i;
      --budget;
    }
  }
  return cycles;
}

}  // namespace smtu
