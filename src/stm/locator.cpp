#include "stm/locator.hpp"

namespace smtu {

LocatorResult locate_first_ones(const std::vector<bool>& bits, u32 bandwidth) {
  LocatorResult result;
  result.positions.reserve(bandwidth);
  for (u32 i = 0; i < bits.size() && result.positions.size() < bandwidth; ++i) {
    if (bits[i]) result.positions.push_back(i);
  }
  result.overflow = result.positions.size() < bandwidth;
  return result;
}

LocatorResult locate_first_ones_circuit(const std::vector<bool>& bits, u32 bandwidth) {
  const u32 width = static_cast<u32>(bits.size());

  // Stage 1: inclusive prefix popcount, computed as a Kogge-Stone style
  // log-depth tree — the function the cascaded "0"-counters of Fig. 4
  // realize (counting zeros before a cell is equivalent to counting ones).
  std::vector<u32> prefix(width);
  for (u32 i = 0; i < width; ++i) prefix[i] = bits[i] ? 1u : 0u;
  for (u32 stride = 1; stride < width; stride *= 2) {
    // Evaluate right-to-left so each pass reads pre-pass values, as the
    // hardware's parallel registers would.
    for (u32 i = width; i-- > stride;) {
      prefix[i] += prefix[i - stride];
    }
  }

  // Stage 2: output j selects the cell whose prefix count equals j+1 and
  // whose own bit is set (the one-hot match lines of the figure). Overflow
  // for output j fires when no cell matches, i.e. total ones <= j.
  LocatorResult result;
  result.positions.reserve(bandwidth);
  const u32 total = width == 0 ? 0 : prefix[width - 1];
  for (u32 j = 0; j < bandwidth; ++j) {
    if (total <= j) {
      result.overflow = true;
      break;
    }
    for (u32 i = 0; i < width; ++i) {
      if (bits[i] && prefix[i] == j + 1) {
        result.positions.push_back(i);
        break;
      }
    }
  }
  return result;
}

}  // namespace smtu
