// smtu_serve: the transpose-as-a-service driver (docs/SERVING.md).
//
// Two modes:
//
//   smtu_serve --generate --trace-out=FILE [generator options]
//     Samples a seeded open-loop request trace and writes the smtu-trace-v1
//     document. Generation is deterministic in its options.
//
//   smtu_serve --replay=FILE [--json=FILE] [scheduler options]
//     Replays a recorded trace through the batch-serving engine and writes
//     the smtu-serve-v1 report. The report's "virtual" section is
//     bit-identical across -j values, runs, and machines; "host" carries the
//     wall-clock measurements.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "support/assert.hpp"
#include "support/cli.hpp"
#include "support/telemetry.hpp"

namespace smtu::serve {
namespace {

int serve_main(int argc, const char* const* argv) {
  CommandLine cli(argc, argv);

  // Mode selection.
  const bool generate = cli.get_flag("generate");
  const std::string replay_path = cli.get_string("replay", "");

  // Generator options.
  GeneratorOptions gen;
  gen.seed = static_cast<u64>(cli.get_int("seed", static_cast<i64>(gen.seed)));
  gen.set = cli.get_string("set", gen.set);
  gen.suite.scale = cli.get_double("scale", gen.suite.scale);
  gen.requests = static_cast<u32>(cli.get_int("requests", gen.requests));
  gen.arrival.mode = cli.get_string("arrival", gen.arrival.mode);
  gen.arrival.rate_rps = cli.get_double("rate", gen.arrival.rate_rps);
  gen.arrival.zipf_skew = cli.get_double("zipf", gen.arrival.zipf_skew);
  gen.arrival.hism_fraction = cli.get_double("hism-fraction", gen.arrival.hism_fraction);
  gen.arrival.alt_config_fraction =
      cli.get_double("alt-config-fraction", gen.arrival.alt_config_fraction);
  const std::string trace_out = cli.get_string("trace-out", "");

  // Scheduler options.
  ServeOptions options;
  options.dedup = !cli.get_flag("no-dedup");
  options.batching = !cli.get_flag("no-batching");
  options.queue_depth = static_cast<u32>(cli.get_int("queue-depth", options.queue_depth));
  options.virtual_workers = static_cast<u32>(cli.get_int("workers", options.virtual_workers));
  options.cycles_per_us = static_cast<u32>(cli.get_int("cycles-per-us", options.cycles_per_us));
  options.replay_vus = static_cast<u32>(cli.get_int("replay-vus", options.replay_vus));
  options.closed_loop = static_cast<u32>(cli.get_int("closed-loop", options.closed_loop));
  const i64 jobs = cli.get_int("jobs", 0);
  SMTU_CHECK_MSG(jobs >= 0, "--jobs must be >= 0 (0 = all hardware threads)");
  options.jobs = static_cast<u32>(jobs);
  const std::string sim_cache = cli.get_string("sim-cache", "");
  if (!sim_cache.empty()) options.sim_cache_dir = sim_cache;

  const std::string json_out = cli.get_string("json", "");
  const bool telemetry_on = cli.get_flag("telemetry");
  const std::string telemetry_json = cli.get_string("telemetry-json", "");
  cli.finish();

  if (telemetry_on || !telemetry_json.empty()) telemetry::set_enabled(true);

  SMTU_CHECK_MSG(generate || !replay_path.empty(),
                 "pass one of --generate or --replay=FILE");
  SMTU_CHECK_MSG(!(generate && !replay_path.empty()),
                 "pass only one of --generate or --replay=FILE");

  if (generate) {
    SMTU_CHECK_MSG(!trace_out.empty(), "--generate requires --trace-out=FILE");
    const Trace trace = generate_trace(gen);
    write_trace_file(trace_out, trace);
    std::fprintf(stderr, "wrote %zu-request %s trace (set=%s scale=%g zipf=%g) to %s\n",
                 trace.requests.size(), trace.arrival.mode.c_str(), trace.set.c_str(),
                 trace.suite.scale, trace.arrival.zipf_skew, trace_out.c_str());
    return 0;
  }

  const Trace trace = load_trace_file(replay_path);
  const ServeReport report = serve_trace(trace, options);

  if (!json_out.empty()) {
    write_serve_report_file(json_out, trace, options, report);
    std::fprintf(stderr, "wrote serve report to %s\n", json_out.c_str());
  } else {
    JsonWriter json(std::cout);
    write_serve_report_json(json, trace, options, report);
    std::cout << '\n';
  }

  if (!telemetry_json.empty()) {
    std::ofstream out(telemetry_json);
    SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open telemetry output " + telemetry_json);
    JsonWriter json(out);
    telemetry::write_telemetry_json(json);
    out << '\n';
  }

  std::fprintf(stderr,
               "served %zu requests: %llu simulated, %llu coalesced, %llu warm, %llu shed "
               "(%.0f req/s host, p99 total %llu vus)\n",
               trace.requests.size(),
               static_cast<unsigned long long>(report.virt.simulated_requests),
               static_cast<unsigned long long>(report.virt.coalesced_requests),
               static_cast<unsigned long long>(report.virt.warm_requests),
               static_cast<unsigned long long>(report.virt.shed_requests),
               report.host.req_per_sec,
               static_cast<unsigned long long>(report.virt.total.p99));
  return 0;
}

}  // namespace
}  // namespace smtu::serve

int main(int argc, char** argv) { return smtu::serve::serve_main(argc, argv); }
