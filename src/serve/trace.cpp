#include "serve/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace smtu::serve {
namespace {

constexpr std::string_view kSchema = "smtu-trace-v1";

// Cumulative Zipf table over `count` popularity ranks: rank r gets weight
// 1/(r+1)^skew. Popularity is detached from matrix index by a seeded
// permutation (otherwise "popular" would always mean "lowest locality").
struct ZipfSampler {
  std::vector<double> cumulative;
  std::vector<u32> rank_to_matrix;

  ZipfSampler(u32 count, double skew, Rng& rng) {
    cumulative.reserve(count);
    double total = 0.0;
    for (u32 rank = 0; rank < count; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), skew);
      cumulative.push_back(total);
    }
    for (double& value : cumulative) value /= total;
    rank_to_matrix.resize(count);
    for (u32 i = 0; i < count; ++i) rank_to_matrix[i] = i;
    rng.shuffle(rank_to_matrix);
  }

  u32 sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const usize rank = std::min<usize>(static_cast<usize>(it - cumulative.begin()),
                                       cumulative.size() - 1);
    return rank_to_matrix[rank];
  }
};

// One inter-arrival gap in virtual microseconds, >= 1 so arrivals strictly
// advance within a burst only when the rate allows it (equal times are fine).
u64 next_gap_us(const ArrivalSpec& arrival, u64 now_us, Rng& rng) {
  const double mean_gap_us = 1e6 / arrival.rate_rps;
  double gap;
  if (arrival.mode == "bursty") {
    const u64 period = arrival.burst_on_us + arrival.burst_off_us;
    const bool on = period == 0 || (now_us % period) < arrival.burst_on_us;
    const double rate_scale = on ? arrival.burst_multiplier : 0.2;
    gap = -std::log(1.0 - rng.uniform()) * mean_gap_us / rate_scale;
  } else if (arrival.mode == "heavytail") {
    // Pareto with tail index alpha, scaled so the (uncapped) mean matches
    // the requested rate; the 100x cap keeps a single draw from stalling
    // the whole trace.
    const double alpha = arrival.heavytail_alpha;
    SMTU_CHECK_MSG(alpha > 1.0, "heavytail_alpha must be > 1 for a finite mean");
    const double scale = mean_gap_us * (alpha - 1.0) / alpha;
    gap = scale * std::pow(1.0 - rng.uniform(), -1.0 / alpha);
    gap = std::min(gap, 100.0 * mean_gap_us);
  } else {
    SMTU_CHECK_MSG(arrival.mode == "poisson",
                   "unknown arrival mode '" + arrival.mode + "'");
    gap = -std::log(1.0 - rng.uniform()) * mean_gap_us;
  }
  return std::max<u64>(1, static_cast<u64>(std::llround(gap)));
}

u64 get_u64(const JsonValue& object, std::string_view key, u64 fallback) {
  const JsonValue* value = object.find(key);
  return value != nullptr && value->is_number() ? value->as_u64() : fallback;
}

double get_double(const JsonValue& object, std::string_view key, double fallback) {
  const JsonValue* value = object.find(key);
  return value != nullptr && value->is_number() ? value->as_double() : fallback;
}

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

const char* kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kHism:
      return "hism";
    case Kernel::kCrs:
      return "crs";
  }
  return "?";
}

bool kernel_from_name(const std::string& name, Kernel& kernel) {
  for (u32 i = 0; i < kKernelCount; ++i) {
    if (name == kernel_name(static_cast<Kernel>(i))) {
      kernel = static_cast<Kernel>(i);
      return true;
    }
  }
  return false;
}

vsim::MachineConfig machine_config_for(const ConfigSpec& spec) {
  vsim::MachineConfig config;
  config.section = spec.section;
  config.stm.section = spec.section;
  config.stm.bandwidth = spec.stm_bandwidth;
  config.stm.lines = spec.stm_lines;
  return config;
}

Trace generate_trace(const GeneratorOptions& options) {
  SMTU_CHECK_MSG(options.requests > 0, "trace generator needs at least one request");
  const auto set = suite::build_dsab_set(options.set, options.suite);
  SMTU_CHECK_MSG(!set.empty(), "suite set '" + options.set + "' is empty");

  Trace trace;
  trace.seed = options.seed;
  trace.set = options.set;
  trace.suite = options.suite;
  trace.arrival = options.arrival;
  trace.matrix_count = static_cast<u32>(set.size());
  // Variant 0 is the paper's default machine; variant 1 a narrower STM
  // (B=2, L=2). Distinct variants change the kernel source (strip-mining)
  // and the timing, so they exercise the ProgramCache/SimCache keying.
  trace.configs.push_back(ConfigSpec{});
  trace.configs.push_back(ConfigSpec{64, 2, 2});

  Rng rng(options.seed);
  const ZipfSampler popularity(trace.matrix_count, options.arrival.zipf_skew, rng);
  u64 now_us = 0;
  trace.requests.reserve(options.requests);
  for (u32 id = 0; id < options.requests; ++id) {
    // Fixed draw order per request (gap, matrix, kernel, config) keeps the
    // trace a pure function of the options.
    now_us += next_gap_us(options.arrival, now_us, rng);
    Request request;
    request.id = id;
    request.matrix = popularity.sample(rng);
    request.kernel = rng.chance(options.arrival.hism_fraction) ? Kernel::kHism : Kernel::kCrs;
    request.config = rng.chance(options.arrival.alt_config_fraction) ? 1u : 0u;
    request.arrival_us = now_us;
    trace.requests.push_back(request);
  }
  return trace;
}

void write_trace_json(JsonWriter& json, const Trace& trace) {
  json.begin_object();
  json.key("schema");
  json.value(std::string(kSchema));
  json.key("seed");
  json.value(trace.seed);
  json.key("set");
  json.value(trace.set);
  json.key("suite");
  json.begin_object();
  json.key("seed");
  json.value(trace.suite.seed);
  json.key("scale");
  json.value(trace.suite.scale);
  json.end_object();
  json.key("arrival");
  json.begin_object();
  json.key("mode");
  json.value(trace.arrival.mode);
  json.key("rate_rps");
  json.value(trace.arrival.rate_rps);
  json.key("zipf_skew");
  json.value(trace.arrival.zipf_skew);
  json.key("hism_fraction");
  json.value(trace.arrival.hism_fraction);
  json.key("alt_config_fraction");
  json.value(trace.arrival.alt_config_fraction);
  json.key("burst_on_us");
  json.value(trace.arrival.burst_on_us);
  json.key("burst_off_us");
  json.value(trace.arrival.burst_off_us);
  json.key("burst_multiplier");
  json.value(trace.arrival.burst_multiplier);
  json.key("heavytail_alpha");
  json.value(trace.arrival.heavytail_alpha);
  json.end_object();
  json.key("configs");
  json.begin_array();
  for (const ConfigSpec& spec : trace.configs) {
    json.begin_object();
    json.key("section");
    json.value(static_cast<u64>(spec.section));
    json.key("stm_bandwidth");
    json.value(static_cast<u64>(spec.stm_bandwidth));
    json.key("stm_lines");
    json.value(static_cast<u64>(spec.stm_lines));
    json.end_object();
  }
  json.end_array();
  json.key("matrices");
  json.value(static_cast<u64>(trace.matrix_count));
  json.key("requests");
  json.begin_array();
  for (const Request& request : trace.requests) {
    json.begin_object();
    json.key("id");
    json.value(static_cast<u64>(request.id));
    json.key("matrix");
    json.value(static_cast<u64>(request.matrix));
    json.key("kernel");
    json.value(kernel_name(request.kernel));
    json.key("config");
    json.value(static_cast<u64>(request.config));
    json.key("arrival_us");
    json.value(request.arrival_us);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open trace output " + path);
  JsonWriter json(out);
  write_trace_json(json, trace);
  out << '\n';
}

std::optional<Trace> parse_trace(const JsonValue& document, std::string* error) {
  if (!document.is_object()) {
    set_error(error, "trace is not a JSON object");
    return std::nullopt;
  }
  const JsonValue* schema = document.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != kSchema) {
    set_error(error, "missing or wrong schema tag (expected \"smtu-trace-v1\")");
    return std::nullopt;
  }

  Trace trace;
  trace.seed = get_u64(document, "seed", 0);
  const JsonValue* set = document.find("set");
  if (set == nullptr || !set->is_string()) {
    set_error(error, "missing \"set\" name");
    return std::nullopt;
  }
  trace.set = set->as_string();
  if (const JsonValue* suite = document.find("suite"); suite != nullptr && suite->is_object()) {
    trace.suite.seed = get_u64(*suite, "seed", trace.suite.seed);
    trace.suite.scale = get_double(*suite, "scale", trace.suite.scale);
  }
  if (const JsonValue* arrival = document.find("arrival");
      arrival != nullptr && arrival->is_object()) {
    if (const JsonValue* mode = arrival->find("mode"); mode != nullptr && mode->is_string()) {
      trace.arrival.mode = mode->as_string();
    }
    trace.arrival.rate_rps = get_double(*arrival, "rate_rps", trace.arrival.rate_rps);
    trace.arrival.zipf_skew = get_double(*arrival, "zipf_skew", trace.arrival.zipf_skew);
    trace.arrival.hism_fraction =
        get_double(*arrival, "hism_fraction", trace.arrival.hism_fraction);
    trace.arrival.alt_config_fraction =
        get_double(*arrival, "alt_config_fraction", trace.arrival.alt_config_fraction);
    trace.arrival.burst_on_us = get_u64(*arrival, "burst_on_us", trace.arrival.burst_on_us);
    trace.arrival.burst_off_us = get_u64(*arrival, "burst_off_us", trace.arrival.burst_off_us);
    trace.arrival.burst_multiplier =
        get_double(*arrival, "burst_multiplier", trace.arrival.burst_multiplier);
    trace.arrival.heavytail_alpha =
        get_double(*arrival, "heavytail_alpha", trace.arrival.heavytail_alpha);
  }

  const JsonValue* configs = document.find("configs");
  if (configs == nullptr || !configs->is_array() || configs->size() == 0) {
    set_error(error, "missing \"configs\" variant table");
    return std::nullopt;
  }
  for (const JsonValue& item : configs->items()) {
    if (!item.is_object()) {
      set_error(error, "config variant is not an object");
      return std::nullopt;
    }
    ConfigSpec spec;
    spec.section = static_cast<u32>(get_u64(item, "section", spec.section));
    spec.stm_bandwidth = static_cast<u32>(get_u64(item, "stm_bandwidth", spec.stm_bandwidth));
    spec.stm_lines = static_cast<u32>(get_u64(item, "stm_lines", spec.stm_lines));
    trace.configs.push_back(spec);
  }
  trace.matrix_count = static_cast<u32>(get_u64(document, "matrices", 0));
  if (trace.matrix_count == 0) {
    set_error(error, "missing or zero \"matrices\" count");
    return std::nullopt;
  }

  const JsonValue* requests = document.find("requests");
  if (requests == nullptr || !requests->is_array()) {
    set_error(error, "missing \"requests\" array");
    return std::nullopt;
  }
  u64 previous_arrival = 0;
  for (const JsonValue& item : requests->items()) {
    if (!item.is_object()) {
      set_error(error, "request is not an object");
      return std::nullopt;
    }
    Request request;
    request.id = static_cast<u32>(get_u64(item, "id", trace.requests.size()));
    request.matrix = static_cast<u32>(get_u64(item, "matrix", trace.matrix_count));
    if (request.matrix >= trace.matrix_count) {
      set_error(error, format("request %u: matrix index out of range", request.id));
      return std::nullopt;
    }
    const JsonValue* kernel = item.find("kernel");
    if (kernel == nullptr || !kernel->is_string() ||
        !kernel_from_name(kernel->as_string(), request.kernel)) {
      set_error(error, format("request %u: unknown kernel", request.id));
      return std::nullopt;
    }
    request.config = static_cast<u32>(get_u64(item, "config", trace.configs.size()));
    if (request.config >= trace.configs.size()) {
      set_error(error, format("request %u: config index out of range", request.id));
      return std::nullopt;
    }
    request.arrival_us = get_u64(item, "arrival_us", 0);
    if (request.arrival_us < previous_arrival) {
      set_error(error, format("request %u: arrival_us decreases", request.id));
      return std::nullopt;
    }
    previous_arrival = request.arrival_us;
    trace.requests.push_back(request);
  }
  if (trace.requests.empty()) {
    set_error(error, "trace has no requests");
    return std::nullopt;
  }
  return trace;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  SMTU_CHECK_MSG(static_cast<bool>(in), "cannot open trace " + path);
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  const std::optional<JsonValue> document = parse_json(text.view(), &parse_error);
  SMTU_CHECK_MSG(document.has_value(), "trace " + path + ": " + parse_error);
  std::string trace_error;
  std::optional<Trace> trace = parse_trace(*document, &trace_error);
  SMTU_CHECK_MSG(trace.has_value(), "trace " + path + ": " + trace_error);
  return std::move(*trace);
}

}  // namespace smtu::serve
