// The batch-serving engine (docs/SERVING.md).
//
// Serving a trace has two decoupled layers:
//
//  * The *host execution* layer actually simulates kernels. In batched mode
//    it coalesces the trace's requests into their distinct (matrix, kernel,
//    config) keys — grouped by matrix so ProgramCache / MatrixStageCache /
//    SimCache reuse clusters — and fans the distinct simulations over the
//    ThreadPool; naive mode (--no-dedup --no-batching) runs one full
//    simulation per request, serially, in arrival order. Wall-clock
//    throughput (requests/sec) is measured here and is, like every host
//    timing, nondeterministic and never gated.
//
//  * The *virtual-time* layer replays the same arrivals through a
//    deterministic discrete-event model of the server: a bounded admission
//    queue (full queue => load shedding), `virtual_workers` executors,
//    in-flight dedup with fan-out, and a result cache that serves repeated
//    keys at replay cost. Service times derive from simulated cycles
//    (`cycles_per_us`), so every latency percentile in the report is a pure
//    function of (trace, options) — bit-identical across -j values, runs,
//    and machines — and is gated by tools/bench_diff.py.
#pragma once

#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "serve/trace.hpp"

namespace smtu::serve {

struct ServeOptions {
  // Scheduler semantics (virtual and host layers).
  bool dedup = true;     // coalesce duplicate keys + result cache
  bool batching = true;  // fan host simulations over the ThreadPool
  u32 queue_depth = 64;  // bounded admission queue; arrivals past it shed
  u32 virtual_workers = 4;
  // Virtual service-time model: simulated cycles per virtual microsecond
  // (1000 = a 1 GHz machine) and the flat replay cost of a result-cache hit.
  u32 cycles_per_us = 1000;
  u32 replay_vus = 20;
  // Closed-loop mode: ignore arrival times and keep this many requests
  // outstanding, each completion immediately issuing the next one. 0 = open
  // loop (replay the recorded arrivals).
  u32 closed_loop = 0;
  // Host harness.
  u32 jobs = 0;  // ThreadPool width in batched mode (0 = hardware threads)
  std::optional<std::string> sim_cache_dir;
};

// Per-request outcome of the virtual-time model.
enum class Outcome : u32 {
  kSimulated = 0,  // ran a fresh virtual simulation on a worker
  kCoalesced = 1,  // attached to an identical in-flight simulation
  kWarm = 2,       // served from the result cache at replay cost
  kShed = 3,       // admission queue full on arrival
};
const char* outcome_name(Outcome outcome);

struct RequestOutcome {
  u32 id = 0;
  Outcome outcome = Outcome::kSimulated;
  u64 queue_vus = 0;    // admission -> service start
  u64 service_vus = 0;  // service start -> completion
  u64 total_vus = 0;    // arrival -> completion (0 for shed requests)
};

// Exact latency summary over one virtual metric: percentiles use the same
// rank convention as telemetry::LatencyHistogram (ceil(q% * count), 1-based)
// but read the exact sorted values, so no bucketing error.
struct LatencySummary {
  u64 count = 0;
  u64 min = 0;
  u64 max = 0;
  double mean = 0.0;
  u64 p50 = 0;
  u64 p90 = 0;
  u64 p95 = 0;
  u64 p99 = 0;
};
LatencySummary summarize_latencies(std::vector<u64> values);

// The deterministic virtual-time fragment of the report.
struct VirtualReport {
  u64 admitted_requests = 0;   // everything that was not shed
  u64 shed_requests = 0;
  u64 coalesced_requests = 0;  // dedup fan-out (attached to in-flight runs)
  u64 warm_requests = 0;       // result-cache replays
  u64 simulated_requests = 0;  // fresh virtual simulations
  u64 distinct_sims = 0;       // distinct keys across all requests
  u64 max_queue_depth = 0;     // admission-queue high watermark
  u64 sim_cycles = 0;          // simulated cycles actually spent (distinct)
  u64 offered_cycles = 0;      // cycles a dedup-less server would spend
  u64 first_arrival_vus = 0;
  u64 makespan_vus = 0;        // first arrival -> last completion
  LatencySummary queue;
  LatencySummary service;
  LatencySummary total;
  std::vector<RequestOutcome> outcomes;  // trace order
};

// Host-side measurements (nondeterministic; the report's skipped "host"
// section).
struct HostReport {
  u32 jobs = 1;
  u64 simulations = 0;  // machine runs actually executed on the host
  double wall_us = 0.0;
  double req_per_sec = 0.0;   // trace requests / wall seconds
  double sim_wall_us = 0.0;   // wall time inside the simulation phase
};

struct ServeReport {
  VirtualReport virt;
  HostReport host;
};

// Runs every distinct simulation key of `trace` on the host — grouped by
// matrix for cache reuse, fanned over the ThreadPool per options.batching —
// and returns the per-key simulated cycle counts. Deterministic in the
// trace: cycle counts are identical for every jobs value.
std::unordered_map<SimKey, u64, SimKeyHash> simulate_keys(const Trace& trace,
                                                          const ServeOptions& options);

// The virtual-time discrete-event model alone: replays `requests` against
// per-key simulated cycle counts. Pure and deterministic; unit-testable
// without running any simulation.
VirtualReport run_virtual(const std::vector<Request>& requests,
                          const std::unordered_map<SimKey, u64, SimKeyHash>& key_cycles,
                          const ServeOptions& options);

// Serves `trace` end to end: host execution (per options.batching/dedup)
// followed by the virtual-time replay. The suite set is regenerated from the
// trace's recorded seed/scale; aborts if the trace's matrix count disagrees.
ServeReport serve_trace(const Trace& trace, const ServeOptions& options);

// The complete "smtu-serve-v1" document. Every deterministic field lives
// under "virtual" (gated); host measurements under "host" (skipped); when
// telemetry is enabled a "telemetry" section rides along (skipped).
void write_serve_report_json(JsonWriter& json, const Trace& trace,
                             const ServeOptions& options, const ServeReport& report);
// Writes the document plus a trailing newline to `path`; aborts on I/O error.
void write_serve_report_file(const std::string& path, const Trace& trace,
                             const ServeOptions& options, const ServeReport& report);

}  // namespace smtu::serve
