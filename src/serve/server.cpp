#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_set>

#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/staging.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "vsim/program_cache.hpp"
#include "vsim/sim_cache.hpp"

namespace smtu::serve {
namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  const auto delta = std::chrono::steady_clock::now() - since;
  return std::chrono::duration<double, std::micro>(delta).count();
}

// ---- virtual-time discrete-event model -------------------------------------

// One virtual simulation in flight: every attached request completes when it
// does. `seq` orders equal-time completions deterministically (start order).
struct Run {
  SimKey key;
  u64 completion_vus = 0;
  u64 seq = 0;
};

// In-flight slot: where (and as which run) a key is currently executing.
struct Flight {
  u64 completion_vus = 0;
  u64 seq = 0;
};

struct RunLater {
  bool operator()(const Run& a, const Run& b) const {
    return a.completion_vus != b.completion_vus ? a.completion_vus > b.completion_vus
                                                : a.seq > b.seq;
  }
};

// The scheduler state machine shared by the open- and closed-loop drivers.
class VirtualScheduler {
 public:
  VirtualScheduler(const std::vector<Request>& requests,
                   const std::unordered_map<SimKey, u64, SimKeyHash>& key_cycles,
                   const ServeOptions& options)
      : requests_(requests), key_cycles_(key_cycles), options_(options) {
    report_.outcomes.resize(requests.size());
    arrival_.resize(requests.size(), 0);
  }

  VirtualReport run() {
    std::unordered_set<SimKey, SimKeyHash> distinct;
    for (const Request& request : requests_) {
      distinct.insert(key_of(request));
      report_.offered_cycles += cycles_of(key_of(request));
    }
    report_.distinct_sims = distinct.size();

    if (options_.closed_loop > 0) {
      run_closed_loop();
    } else {
      run_open_loop();
    }
    finish();
    return std::move(report_);
  }

 private:
  u64 cycles_of(const SimKey& key) const {
    const auto it = key_cycles_.find(key);
    SMTU_CHECK_MSG(it != key_cycles_.end(), "virtual replay is missing a key's cycle count");
    return it->second;
  }

  u64 fresh_service_vus(const SimKey& key) const {
    return std::max<u64>(1, cycles_of(key) / std::max<u32>(1, options_.cycles_per_us));
  }

  void run_open_loop() {
    report_.first_arrival_vus = requests_.empty() ? 0 : requests_.front().arrival_us;
    for (usize index = 0; index < requests_.size(); ++index) {
      const u64 t = requests_[index].arrival_us;
      arrival_[index] = t;
      drain_until(t);
      arrive(index, t);
    }
    drain_until(~u64{0});
  }

  void run_closed_loop() {
    // `closed_loop` clients, each issuing its next request as soon as the
    // previous one completes. Arrival times are ignored and admission never
    // sheds: the loop itself bounds the outstanding work.
    report_.first_arrival_vus = 0;
    usize issued = 0;
    const usize initial = std::min<usize>(options_.closed_loop, requests_.size());
    for (; issued < initial; ++issued) {
      arrival_[issued] = 0;
      arrive(issued, 0);
    }
    while (!completions_.empty()) {
      const u64 completed = drain_one();
      for (u64 i = 0; i < completed && issued < requests_.size(); ++i, ++issued) {
        arrival_[issued] = last_drain_vus_;
        arrive(issued, last_drain_vus_);
      }
    }
  }

  void arrive(usize index, u64 t) {
    const SimKey key = key_of(requests_[index]);
    if (options_.dedup) {
      const auto it = in_flight_.find(key);
      if (it != in_flight_.end()) {
        attach(index, t, it->second);
        return;
      }
    }
    if (busy_workers_ < options_.virtual_workers) {
      start(index, t);
    } else if (options_.closed_loop > 0 || pending_.size() < options_.queue_depth) {
      pending_.push_back(index);
      report_.max_queue_depth = std::max<u64>(report_.max_queue_depth, pending_.size());
    } else {
      report_.outcomes[index] = RequestOutcome{requests_[index].id, Outcome::kShed, 0, 0, 0};
      ++report_.shed_requests;
    }
  }

  // Joins the in-flight run; no worker used. Fan-out is tallied per run so
  // the closed-loop driver can issue one follow-up per finished request.
  void attach(usize index, u64 t, const Flight& flight) {
    ++report_.coalesced_requests;
    ++attach_counts_[flight.seq];
    record(index, Outcome::kCoalesced, t, flight.completion_vus);
  }

  // Occupies a worker from time `t`. Warm keys (already completed once)
  // replay from the result cache at flat cost; fresh keys run the full
  // simulated service time.
  void start(usize index, u64 t) {
    const SimKey key = key_of(requests_[index]);
    Outcome outcome;
    u64 service;
    if (options_.dedup && completed_.count(key) != 0) {
      outcome = Outcome::kWarm;
      service = std::max<u64>(1, options_.replay_vus);
      ++report_.warm_requests;
    } else {
      outcome = Outcome::kSimulated;
      service = fresh_service_vus(key);
      ++report_.simulated_requests;
      report_.sim_cycles += cycles_of(key);
    }
    const u64 completion = t + service;
    const u64 seq = next_seq_++;
    ++busy_workers_;
    in_flight_[key] = Flight{completion, seq};
    completions_.push(Run{key, completion, seq});
    record(index, outcome, t, completion);
  }

  void record(usize index, Outcome outcome, u64 start_vus, u64 completion_vus) {
    RequestOutcome& out = report_.outcomes[index];
    out.id = requests_[index].id;
    out.outcome = outcome;
    out.queue_vus = start_vus - arrival_[index];
    out.service_vus = completion_vus - start_vus;
    out.total_vus = completion_vus - arrival_[index];
    last_completion_vus_ = std::max(last_completion_vus_, completion_vus);
  }

  // Processes the earliest completion event: frees its worker, publishes the
  // key to the result cache, and admits queued requests while workers are
  // free (queued duplicates attach instead of occupying a worker). Returns
  // how many requests finished at that instant (the run's fan-out is
  // accounted where requests attach, so each run completes exactly one
  // worker but possibly many requests — callers in closed-loop mode issue
  // that many follow-ups).
  u64 drain_one() {
    const Run run = completions_.top();
    completions_.pop();
    last_drain_vus_ = run.completion_vus;
    // Erase only if this run still owns the in-flight slot (a warm rerun of
    // the same key may have started after an earlier run completed).
    const auto it = in_flight_.find(run.key);
    if (it != in_flight_.end() && it->second.seq == run.seq) in_flight_.erase(it);
    completed_.insert(run.key);
    --busy_workers_;

    u64 finished = 1;
    if (const auto attached = attach_counts_.find(run.seq); attached != attach_counts_.end()) {
      finished += attached->second;
      attach_counts_.erase(attached);
    }

    while (busy_workers_ < options_.virtual_workers && !pending_.empty()) {
      const usize index = pending_.front();
      pending_.pop_front();
      const SimKey key = key_of(requests_[index]);
      if (options_.dedup) {
        const auto flight = in_flight_.find(key);
        if (flight != in_flight_.end()) {
          attach(index, run.completion_vus, flight->second);
          continue;  // no worker consumed; keep admitting
        }
      }
      start(index, run.completion_vus);
    }
    return finished;
  }

  void drain_until(u64 t) {
    while (!completions_.empty() && completions_.top().completion_vus <= t) drain_one();
  }

  void finish() {
    SMTU_CHECK(completions_.empty() && pending_.empty() && busy_workers_ == 0);
    report_.admitted_requests = requests_.size() - report_.shed_requests;
    report_.makespan_vus = last_completion_vus_ > report_.first_arrival_vus
                               ? last_completion_vus_ - report_.first_arrival_vus
                               : 0;
    std::vector<u64> queue_samples, service_samples, total_samples;
    queue_samples.reserve(report_.admitted_requests);
    service_samples.reserve(report_.admitted_requests);
    total_samples.reserve(report_.admitted_requests);
    for (const RequestOutcome& out : report_.outcomes) {
      if (out.outcome == Outcome::kShed) continue;
      queue_samples.push_back(out.queue_vus);
      service_samples.push_back(out.service_vus);
      total_samples.push_back(out.total_vus);
    }
    report_.queue = summarize_latencies(std::move(queue_samples));
    report_.service = summarize_latencies(std::move(service_samples));
    report_.total = summarize_latencies(std::move(total_samples));
  }

  const std::vector<Request>& requests_;
  const std::unordered_map<SimKey, u64, SimKeyHash>& key_cycles_;
  const ServeOptions& options_;
  VirtualReport report_;
  std::vector<u64> arrival_;  // effective arrival (issue time in closed loop)

  std::priority_queue<Run, std::vector<Run>, RunLater> completions_;
  std::unordered_map<SimKey, Flight, SimKeyHash> in_flight_;
  std::unordered_map<u64, u64> attach_counts_;  // run seq -> attached fan-out
  std::unordered_set<SimKey, SimKeyHash> completed_;
  std::deque<usize> pending_;
  u32 busy_workers_ = 0;
  u64 next_seq_ = 0;
  u64 last_completion_vus_ = 0;
  u64 last_drain_vus_ = 0;
};

// ---- host execution --------------------------------------------------------

// One full simulation of `key` on this thread; returns its cycle count.
// Stage and program lookups go through the process-wide caches, and a
// non-null sim_cache replays previously seen runs (opt-in, like the benches).
u64 simulate_key(const SimKey& key, const Trace& trace,
                 const std::vector<suite::SuiteMatrix>& set, vsim::SimCache* sim_cache) {
  static telemetry::LatencyHistogram& sim_wall = telemetry::histogram("serve.sim_wall_us");
  telemetry::HostSpan span("serve.sim_wall_us", sim_wall);
  const vsim::MachineConfig config = machine_config_for(trace.configs[key.config]);
  const suite::SuiteMatrix& entry = set[key.matrix];
  if (key.kernel == Kernel::kHism) {
    const auto stage = kernels::MatrixStageCache::instance().hism(entry.matrix, config.section);
    if (sim_cache) {
      const std::string cache_key = vsim::sim_cache_key(
          kernels::hism_transpose_source(false), config, *stage->snapshot, {});
      if (const auto hit = sim_cache->lookup(cache_key, false, false)) return hit->stats.cycles;
      const vsim::RunStats stats = kernels::time_hism_transpose(*stage, config);
      sim_cache->store(cache_key, {stats, false, ""});
      return stats.cycles;
    }
    return kernels::time_hism_transpose(*stage, config).cycles;
  }
  const auto stage = kernels::MatrixStageCache::instance().crs(entry.matrix);
  if (sim_cache) {
    const std::string cache_key = vsim::sim_cache_key(
        kernels::crs_transpose_source(config.section, {}), config, *stage->snapshot, {});
    if (const auto hit = sim_cache->lookup(cache_key, false, false)) return hit->stats.cycles;
    const vsim::RunStats stats = kernels::time_crs_transpose(*stage, config);
    sim_cache->store(cache_key, {stats, false, ""});
    return stats.cycles;
  }
  return kernels::time_crs_transpose(*stage, config).cycles;
}

std::unordered_map<SimKey, u64, SimKeyHash> simulate_distinct(
    const Trace& trace, const std::vector<suite::SuiteMatrix>& set, vsim::SimCache* sim_cache,
    const ServeOptions& options) {
  // Distinct keys only, grouped by matrix (then kernel, then config) so
  // consecutive simulations share staged images and programs; the shared
  // result fans out to every duplicate request.
  std::vector<SimKey> keys;
  std::unordered_set<SimKey, SimKeyHash> seen;
  for (const Request& request : trace.requests) {
    if (seen.insert(key_of(request)).second) keys.push_back(key_of(request));
  }
  std::stable_sort(keys.begin(), keys.end(), [](const SimKey& a, const SimKey& b) {
    if (a.matrix != b.matrix) return a.matrix < b.matrix;
    if (a.kernel != b.kernel) return a.kernel < b.kernel;
    return a.config < b.config;
  });
  ThreadPool pool(options.batching ? options.jobs : 1);
  const std::vector<u64> cycles = parallel_map(pool, keys, [&](const SimKey& key) {
    return simulate_key(key, trace, set, sim_cache);
  });
  std::unordered_map<SimKey, u64, SimKeyHash> key_cycles;
  key_cycles.reserve(keys.size());
  for (usize i = 0; i < keys.size(); ++i) key_cycles[keys[i]] = cycles[i];
  return key_cycles;
}

vsim::SimCache* sim_cache_for(const std::optional<std::string>& dir) {
  if (!dir) return nullptr;
  // One instance per process per directory is enough here: the driver serves
  // one trace per invocation.
  static std::mutex mutex;
  static std::unordered_map<std::string, std::unique_ptr<vsim::SimCache>>* caches =
      new std::unordered_map<std::string, std::unique_ptr<vsim::SimCache>>();
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = (*caches)[*dir];
  if (!slot) slot = std::make_unique<vsim::SimCache>(*dir);
  return slot.get();
}

}  // namespace

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kSimulated:
      return "simulated";
    case Outcome::kCoalesced:
      return "coalesced";
    case Outcome::kWarm:
      return "warm";
    case Outcome::kShed:
      return "shed";
  }
  return "?";
}

LatencySummary summarize_latencies(std::vector<u64> values) {
  LatencySummary summary;
  if (values.empty()) return summary;
  std::sort(values.begin(), values.end());
  summary.count = values.size();
  summary.min = values.front();
  summary.max = values.back();
  u64 sum = 0;
  for (const u64 value : values) sum += value;
  summary.mean = static_cast<double>(sum) / static_cast<double>(values.size());
  // Same rank convention as telemetry::LatencyHistogram::Snapshot::percentile
  // (ceil(q% * count), 1-based), but over the exact sorted samples.
  const auto at = [&values](double q) {
    const u64 count = values.size();
    u64 rank = static_cast<u64>((q / 100.0) * static_cast<double>(count));
    if (static_cast<double>(rank) * 100.0 < q * static_cast<double>(count)) ++rank;
    rank = std::max<u64>(1, std::min<u64>(rank, count));
    return values[rank - 1];
  };
  summary.p50 = at(50.0);
  summary.p90 = at(90.0);
  summary.p95 = at(95.0);
  summary.p99 = at(99.0);
  return summary;
}

VirtualReport run_virtual(const std::vector<Request>& requests,
                          const std::unordered_map<SimKey, u64, SimKeyHash>& key_cycles,
                          const ServeOptions& options) {
  return VirtualScheduler(requests, key_cycles, options).run();
}

std::unordered_map<SimKey, u64, SimKeyHash> simulate_keys(const Trace& trace,
                                                          const ServeOptions& options) {
  const auto set = suite::build_dsab_set(trace.set, trace.suite);
  SMTU_CHECK_MSG(set.size() == trace.matrix_count,
                 "trace matrix count does not match the regenerated suite set");
  return simulate_distinct(trace, set, sim_cache_for(options.sim_cache_dir), options);
}

ServeReport serve_trace(const Trace& trace, const ServeOptions& options) {
  const auto set = suite::build_dsab_set(trace.set, trace.suite);
  SMTU_CHECK_MSG(set.size() == trace.matrix_count,
                 "trace matrix count does not match the regenerated suite set");
  vsim::SimCache* sim_cache = sim_cache_for(options.sim_cache_dir);

  ServeReport report;
  const auto started = std::chrono::steady_clock::now();
  std::unordered_map<SimKey, u64, SimKeyHash> key_cycles;

  if (telemetry::enabled()) {
    telemetry::counter("serve.requests_total").add(trace.requests.size());
  }

  const auto sim_started = std::chrono::steady_clock::now();
  if (options.dedup) {
    key_cycles = simulate_distinct(trace, set, sim_cache, options);
    report.host.simulations = key_cycles.size();
    if (telemetry::enabled()) {
      telemetry::counter("serve.dedup_coalesced_total")
          .add(trace.requests.size() - key_cycles.size());
    }
  } else {
    // The naive loop: one full simulation per request. With batching the
    // requests still fan over the pool; without it (the HOST_serve_naive
    // baseline) they run serially in arrival order.
    ThreadPool pool(options.batching ? options.jobs : 1);
    const std::vector<u64> cycles =
        parallel_map(pool, trace.requests, [&](const Request& request) {
          return simulate_key(key_of(request), trace, set, sim_cache);
        });
    for (usize i = 0; i < trace.requests.size(); ++i) {
      key_cycles[key_of(trace.requests[i])] = cycles[i];
    }
    report.host.simulations = trace.requests.size();
  }
  report.host.sim_wall_us = elapsed_us(sim_started);

  report.virt = run_virtual(trace.requests, key_cycles, options);

  report.host.jobs = options.batching ? resolve_jobs(options.jobs) : 1;
  report.host.wall_us = elapsed_us(started);
  report.host.req_per_sec =
      report.host.wall_us > 0.0
          ? static_cast<double>(trace.requests.size()) * 1e6 / report.host.wall_us
          : 0.0;
  if (telemetry::enabled()) {
    telemetry::counter("serve.shed_total").add(report.virt.shed_requests);
    telemetry::counter("serve.warm_hits_total").add(report.virt.warm_requests);
    telemetry::gauge("serve.queue_depth_peak").update_max(report.virt.max_queue_depth);
  }
  return report;
}

namespace {

void write_latency_json(JsonWriter& json, const char* prefix, const LatencySummary& summary) {
  const std::string name(prefix);
  json.key(name + "_min_vus");
  json.value(summary.min);
  json.key(name + "_mean_vus");
  json.value(summary.mean);
  json.key(name + "_p50_vus");
  json.value(summary.p50);
  json.key(name + "_p90_vus");
  json.value(summary.p90);
  json.key(name + "_p95_vus");
  json.value(summary.p95);
  json.key(name + "_p99_vus");
  json.value(summary.p99);
  json.key(name + "_max_vus");
  json.value(summary.max);
}

}  // namespace

void write_serve_report_json(JsonWriter& json, const Trace& trace,
                             const ServeOptions& options, const ServeReport& report) {
  json.begin_object();
  json.key("schema");
  json.value("smtu-serve-v1");
  json.key("trace");
  json.begin_object();
  json.key("seed");
  json.value(trace.seed);
  json.key("set");
  json.value(trace.set);
  json.key("scale");
  json.value(trace.suite.scale);
  json.key("requests");
  json.value(static_cast<u64>(trace.requests.size()));
  json.key("arrival_mode");
  json.value(trace.arrival.mode);
  json.key("zipf_skew");
  json.value(trace.arrival.zipf_skew);
  json.key("rate_rps");
  json.value(trace.arrival.rate_rps);
  json.end_object();
  json.key("options");
  json.begin_object();
  json.key("dedup");
  json.value(options.dedup);
  json.key("batching");
  json.value(options.batching);
  json.key("queue_depth");
  json.value(static_cast<u64>(options.queue_depth));
  json.key("virtual_workers");
  json.value(static_cast<u64>(options.virtual_workers));
  json.key("cycles_per_us");
  json.value(static_cast<u64>(options.cycles_per_us));
  json.key("replay_vus");
  json.value(static_cast<u64>(options.replay_vus));
  json.key("closed_loop");
  json.value(static_cast<u64>(options.closed_loop));
  json.end_object();
  json.key("virtual");
  json.begin_object();
  json.key("admitted_requests");
  json.value(report.virt.admitted_requests);
  json.key("shed_requests");
  json.value(report.virt.shed_requests);
  json.key("coalesced_requests");
  json.value(report.virt.coalesced_requests);
  json.key("warm_requests");
  json.value(report.virt.warm_requests);
  json.key("simulated_requests");
  json.value(report.virt.simulated_requests);
  json.key("distinct_sims");
  json.value(report.virt.distinct_sims);
  json.key("max_queue_depth");
  json.value(report.virt.max_queue_depth);
  json.key("sim_cycles");
  json.value(report.virt.sim_cycles);
  json.key("offered_cycles");
  json.value(report.virt.offered_cycles);
  json.key("first_arrival_vus");
  json.value(report.virt.first_arrival_vus);
  json.key("makespan_vus");
  json.value(report.virt.makespan_vus);
  write_latency_json(json, "queue", report.virt.queue);
  write_latency_json(json, "service", report.virt.service);
  write_latency_json(json, "total", report.virt.total);
  json.key("requests");
  json.begin_array();
  for (const RequestOutcome& out : report.virt.outcomes) {
    json.begin_object();
    json.key("id");
    json.value(static_cast<u64>(out.id));
    json.key("outcome");
    json.value(outcome_name(out.outcome));
    json.key("queue_vus");
    json.value(out.queue_vus);
    json.key("service_vus");
    json.value(out.service_vus);
    json.key("total_vus");
    json.value(out.total_vus);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("host");
  json.begin_object();
  json.key("jobs");
  json.value(static_cast<u64>(report.host.jobs));
  json.key("simulations");
  json.value(report.host.simulations);
  json.key("wall_us");
  json.value(report.host.wall_us);
  json.key("req_per_sec");
  json.value(report.host.req_per_sec);
  json.key("sim_wall_us");
  json.value(report.host.sim_wall_us);
  json.key("program_cache_hits");
  json.value(vsim::ProgramCache::instance().stats().hits);
  json.key("program_cache_misses");
  json.value(vsim::ProgramCache::instance().stats().misses);
  json.key("stage_cache_hits");
  json.value(kernels::MatrixStageCache::instance().stats().hits);
  json.key("stage_cache_misses");
  json.value(kernels::MatrixStageCache::instance().stats().misses);
  json.end_object();
  if (telemetry::enabled()) {
    // Skipped wholesale by tools/bench_diff.py, like the bench reports'
    // section.
    json.key("telemetry");
    telemetry::write_telemetry_json(json);
  }
  json.end_object();
}

void write_serve_report_file(const std::string& path, const Trace& trace,
                             const ServeOptions& options, const ServeReport& report) {
  std::ofstream out(path);
  SMTU_CHECK_MSG(static_cast<bool>(out), "cannot open report output " + path);
  JsonWriter json(out);
  write_serve_report_json(json, trace, options, report);
  out << '\n';
}

}  // namespace smtu::serve
