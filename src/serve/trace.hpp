// Request traces: the seeded open-loop arrival generator and the
// `smtu-trace-v1` record/replay format (docs/SERVING.md).
//
// A trace is self-contained: it names the D-SAB suite set (with seed and
// scale, so the matrices regenerate bit-identically), the machine-config
// variant table, the arrival-process parameters it was generated from, and
// the request list itself. Replaying a trace therefore reproduces the exact
// same workload on any machine — the generator parameters ride along only as
// provenance; replay never re-samples.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "suite/dsab.hpp"
#include "support/json.hpp"

namespace smtu::serve {

// Open-loop arrival processes (all inter-arrival times in integer virtual
// microseconds, nondecreasing):
//   * poisson:   exponential gaps at `rate_rps`.
//   * bursty:    on/off modulated Poisson — `burst_multiplier` x the base
//                rate during `burst_on_us` windows, 1/5 of it during
//                `burst_off_us` windows.
//   * heavytail: bounded-Pareto gaps (tail index `heavytail_alpha`, mean
//                matched to `rate_rps`, capped at 100x the mean gap).
struct ArrivalSpec {
  std::string mode = "poisson";  // poisson | bursty | heavytail
  double rate_rps = 20000.0;     // mean arrival rate, requests per virtual second
  // Matrix popularity: rank r (0-based, over a seeded permutation of the
  // suite set) is drawn with probability proportional to 1/(r+1)^zipf_skew.
  double zipf_skew = 1.0;
  // Kernel and config mix.
  double hism_fraction = 0.75;       // remaining requests use the CRS kernel
  double alt_config_fraction = 0.1;  // probability of a non-default variant
  // bursty parameters.
  u64 burst_on_us = 2000;
  u64 burst_off_us = 8000;
  double burst_multiplier = 4.0;
  // heavytail parameter (must be > 1 so the mean exists).
  double heavytail_alpha = 1.5;
};

struct GeneratorOptions {
  u64 seed = 0x5E12E5EEDull;     // arrival-process seed (not the suite seed)
  std::string set = "locality";  // which D-SAB set the requests draw from
  suite::SuiteOptions suite;     // seed + scale of the matrix suite
  u32 requests = 300;
  ArrivalSpec arrival;
};

struct Trace {
  u64 seed = 0;
  std::string set;
  suite::SuiteOptions suite;
  ArrivalSpec arrival;
  std::vector<ConfigSpec> configs;
  u32 matrix_count = 0;  // size of the suite set the indices refer to
  std::vector<Request> requests;
};

// Deterministic in options: same options, same trace, on any host.
Trace generate_trace(const GeneratorOptions& options);

// Serializes the complete smtu-trace-v1 document.
void write_trace_json(JsonWriter& json, const Trace& trace);
// Writes the document plus a trailing newline to `path`; aborts on I/O error.
void write_trace_file(const std::string& path, const Trace& trace);

// Parses an smtu-trace-v1 document. Returns nullopt (and fills `error` when
// non-null) on schema violations: wrong schema tag, out-of-range matrix or
// config indices, unknown kernel names, or decreasing arrival times.
std::optional<Trace> parse_trace(const JsonValue& document, std::string* error = nullptr);
// Reads and parses `path`; aborts with the parse error on failure.
Trace load_trace_file(const std::string& path);

}  // namespace smtu::serve
