// The transpose-as-a-service request model (docs/SERVING.md).
//
// A request names a suite matrix, a kernel, a machine-configuration variant,
// and a virtual arrival time. Matrices are referenced by index into the
// trace's suite set (regenerated deterministically from the recorded seed and
// scale on replay) and configurations by index into the trace's variant
// table, so the dedup key of a request is three small integers — cheap to
// hash at admission rate — while the full MachineConfig stays reconstructible
// bit-identically from the trace alone.
#pragma once

#include <string>

#include "support/types.hpp"
#include "vsim/config.hpp"

namespace smtu::serve {

// Which simulated kernel serves the request.
enum class Kernel : u32 {
  kHism = 0,  // HiSM transpose through the STM (kernels/hism_transpose)
  kCrs = 1,   // vectorized CRS baseline (kernels/crs_transpose)
};
inline constexpr u32 kKernelCount = 2;

const char* kernel_name(Kernel kernel);
// Returns false (and leaves `kernel` untouched) for unknown names.
bool kernel_from_name(const std::string& name, Kernel& kernel);

// The machine-parameter knobs a trace may vary per request. Everything else
// stays at the MachineConfig defaults (the paper's §IV-A machine), so a
// variant serializes as three integers and replays exactly.
struct ConfigSpec {
  u32 section = 64;        // s: vector register length (STM follows)
  u32 stm_bandwidth = 4;   // B: STM I/O elements per cycle
  u32 stm_lines = 4;       // L: STM lines accessible per cycle

  bool operator==(const ConfigSpec&) const = default;
};

// Expands a variant into the full machine configuration.
vsim::MachineConfig machine_config_for(const ConfigSpec& spec);

// One serving request. `matrix` indexes the trace's suite set and `config`
// its variant table; `arrival_us` is virtual (open-loop) arrival time in
// microseconds from trace start, nondecreasing in trace order.
struct Request {
  u32 id = 0;
  u32 matrix = 0;
  Kernel kernel = Kernel::kHism;
  u32 config = 0;
  u64 arrival_us = 0;
};

// The dedup/batching key: requests agreeing on all three fields are the same
// simulation and coalesce into one run with fan-out of the shared result.
struct SimKey {
  u32 matrix = 0;
  Kernel kernel = Kernel::kHism;
  u32 config = 0;

  bool operator==(const SimKey&) const = default;
};

inline SimKey key_of(const Request& request) {
  return SimKey{request.matrix, request.kernel, request.config};
}

struct SimKeyHash {
  usize operator()(const SimKey& key) const {
    u64 packed = (static_cast<u64>(key.matrix) << 34) ^
                 (static_cast<u64>(key.config) << 2) ^ static_cast<u64>(key.kernel);
    packed *= 0x9e3779b97f4a7c15ull;
    return static_cast<usize>(packed ^ (packed >> 32));
  }
};

}  // namespace smtu::serve
