// The classic parallel CRS->CRS transpose, as the multi-core baseline the
// sharded HiSM transpose (kernels/shard.hpp) is measured against.
//
// Four barrier-separated SPMD phases (docs/MULTICORE.md):
//   0. zero the per-column counters (vectorized, column slices)
//   1. column histogram: each core walks a non-zero slice and `amo_add`s
//      its column's counter, capturing the returned old count as the
//      element's slot within its column (SLOT array)
//   2. exclusive prefix sum of the counters into IAT: vectorized per-slice
//      totals + a cross-core offset from the PARTIAL array, then a scalar
//      per-slice scan
//   3. scatter: each core owns an nnz-balanced contiguous row range and
//      writes every element to IAT[JA[k]] + SLOT[k] — no cursor updates,
//      hence no cross-core races
//
// Within a transposed row elements land in phase-1 arrival order, not
// sorted — a valid CRS; correctness checks canonicalize to COO.
#pragma once

#include <string>
#include <vector>

#include "formats/csr.hpp"
#include "vsim/system.hpp"

namespace smtu::kernels {

// The SPMD kernel source. Per-core phase bounds and array addresses arrive
// through a host-staged descriptor whose address is in r20.
std::string parallel_crs_transpose_source();

struct ParallelCrsTransposeResult {
  vsim::SystemRunStats stats;
  Coo transposed;  // read back from ANT/JAT/IAT, canonical
};

// Stages `csr` in a fresh system, runs the kernel on all cores, reads the
// transpose back. A non-null `profilers` is resized to the core count and
// profiler c attaches to core c.
ParallelCrsTransposeResult run_parallel_crs_transpose(
    const Csr& csr, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers = nullptr);

// Cycle counts only (skips the read-back for benchmark sweeps).
vsim::SystemRunStats time_parallel_crs_transpose(
    const Csr& csr, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers = nullptr);

}  // namespace smtu::kernels
