#include "kernels/layout.hpp"

#include <cstring>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu::kernels {
namespace {

Addr align16(Addr addr) { return round_up(addr, 16); }

}  // namespace

CrsImage build_crs_image(const Csr& csr, Addr base, std::vector<u8>& bytes) {
  SMTU_CHECK_MSG(csr.validate(), "refusing to stage an invalid CSR matrix");

  CrsImage image;
  image.rows = csr.rows();
  image.cols = csr.cols();
  image.nnz = csr.nnz();

  Addr cursor = align16(base);
  auto reserve = [&](u64 size) {
    const Addr at = cursor;
    cursor = align16(cursor + size);
    return at;
  };
  image.an = reserve(4 * image.nnz);
  image.ja = reserve(4 * image.nnz);
  image.ia = reserve(4 * (image.rows + 1));
  image.ant = reserve(4 * image.nnz);
  image.jat = reserve(4 * image.nnz);
  image.iat = reserve(4 * (image.cols + 1));
  image.end = cursor;

  // One zeroed buffer with the three input arrays copied in whole (their
  // element encodings match the machine's little-endian u32/f32 stores).
  bytes.assign(image.end - base, 0);
  std::memcpy(bytes.data() + (image.an - base), csr.values().data(), 4 * image.nnz);
  std::memcpy(bytes.data() + (image.ja - base), csr.col_idx().data(), 4 * image.nnz);
  std::memcpy(bytes.data() + (image.ia - base), csr.row_ptr().data(),
              4 * (image.rows + 1));
  return image;
}

CrsImage stage_crs(vsim::Machine& machine, const Csr& csr, Addr base) {
  std::vector<u8> bytes;
  const CrsImage image = build_crs_image(csr, base, bytes);
  machine.memory().write_block(base, bytes);
  return image;
}

Coo read_back_crs_transpose(const vsim::Machine& machine, const CrsImage& image) {
  return read_back_crs_transpose(machine.memory(), image);
}

Coo read_back_crs_transpose(const vsim::Memory& mem, const CrsImage& image) {
  Coo coo(image.cols, image.rows);
  coo.entries().reserve(image.nnz);

  u32 begin = mem.read_u32(image.iat);
  SMTU_CHECK_MSG(begin == 0, "IAT[0] must be zero after the transpose kernel");
  for (Index row = 0; row < image.cols; ++row) {
    const u32 end = mem.read_u32(image.iat + 4 * (row + 1));
    SMTU_CHECK_MSG(begin <= end && end <= image.nnz, "IAT is not monotone");
    for (u32 k = begin; k < end; ++k) {
      coo.entries().push_back({row, mem.read_u32(image.jat + 4 * k),
                               mem.read_f32(image.ant + 4 * k)});
    }
    begin = end;
  }
  SMTU_CHECK_MSG(begin == image.nnz, "IAT does not cover every non-zero");
  return coo;
}

HismImage stage_hism(vsim::Machine& machine, const HismMatrix& hism, Addr base) {
  HismImage image = build_hism_image(hism, align16(base));
  machine.memory().write_block(image.base, image.bytes);
  return image;
}

HismMatrix read_back_hism(const vsim::Machine& machine, const HismImage& image,
                          bool swap_dims) {
  const vsim::Memory& mem = machine.memory();
  const std::span<const u8> raw = mem.raw();
  SMTU_CHECK(image.base + image.bytes.size() <= raw.size());
  const std::span<const u8> window = raw.subspan(image.base, image.bytes.size());
  const Index rows = swap_dims ? image.cols : image.rows;
  const Index cols = swap_dims ? image.rows : image.cols;
  return decode_hism_image(window, image.base, image.root_addr, image.root_len,
                           image.levels, image.section, rows, cols);
}

}  // namespace smtu::kernels
