#include "kernels/layout.hpp"

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu::kernels {
namespace {

Addr align16(Addr addr) { return round_up(addr, 16); }

}  // namespace

CrsImage stage_crs(vsim::Machine& machine, const Csr& csr, Addr base) {
  SMTU_CHECK_MSG(csr.validate(), "refusing to stage an invalid CSR matrix");
  vsim::Memory& mem = machine.memory();

  CrsImage image;
  image.rows = csr.rows();
  image.cols = csr.cols();
  image.nnz = csr.nnz();

  Addr cursor = align16(base);
  auto reserve = [&](u64 bytes) {
    const Addr at = cursor;
    cursor = align16(cursor + bytes);
    return at;
  };
  image.an = reserve(4 * image.nnz);
  image.ja = reserve(4 * image.nnz);
  image.ia = reserve(4 * (image.rows + 1));
  image.ant = reserve(4 * image.nnz);
  image.jat = reserve(4 * image.nnz);
  image.iat = reserve(4 * (image.cols + 1));
  image.end = cursor;
  mem.ensure(base, cursor - base);

  for (usize k = 0; k < image.nnz; ++k) {
    mem.write_f32(image.an + 4 * k, csr.values()[k]);
    mem.write_u32(image.ja + 4 * k, csr.col_idx()[k]);
  }
  for (Index r = 0; r <= image.rows; ++r) {
    mem.write_u32(image.ia + 4 * r, csr.row_ptr()[r]);
  }
  return image;
}

Coo read_back_crs_transpose(const vsim::Machine& machine, const CrsImage& image) {
  const vsim::Memory& mem = machine.memory();
  Coo coo(image.cols, image.rows);
  coo.entries().reserve(image.nnz);

  u32 begin = mem.read_u32(image.iat);
  SMTU_CHECK_MSG(begin == 0, "IAT[0] must be zero after the transpose kernel");
  for (Index row = 0; row < image.cols; ++row) {
    const u32 end = mem.read_u32(image.iat + 4 * (row + 1));
    SMTU_CHECK_MSG(begin <= end && end <= image.nnz, "IAT is not monotone");
    for (u32 k = begin; k < end; ++k) {
      coo.entries().push_back({row, mem.read_u32(image.jat + 4 * k),
                               mem.read_f32(image.ant + 4 * k)});
    }
    begin = end;
  }
  SMTU_CHECK_MSG(begin == image.nnz, "IAT does not cover every non-zero");
  return coo;
}

HismImage stage_hism(vsim::Machine& machine, const HismMatrix& hism, Addr base) {
  HismImage image = build_hism_image(hism, align16(base));
  machine.memory().write_block(image.base, image.bytes);
  return image;
}

HismMatrix read_back_hism(const vsim::Machine& machine, const HismImage& image,
                          bool swap_dims) {
  const vsim::Memory& mem = machine.memory();
  const std::span<const u8> raw = mem.raw();
  SMTU_CHECK(image.base + image.bytes.size() <= raw.size());
  const std::span<const u8> window = raw.subspan(image.base, image.bytes.size());
  const Index rows = swap_dims ? image.cols : image.rows;
  const Index cols = swap_dims ? image.rows : image.cols;
  return decode_hism_image(window, image.base, image.root_addr, image.root_len,
                           image.levels, image.section, rows, cols);
}

}  // namespace smtu::kernels
