// Staging of matrix images in simulated memory for the transpose kernels.
#pragma once

#include "formats/csr.hpp"
#include "hism/image.hpp"
#include "vsim/machine.hpp"

namespace smtu::kernels {

// Where workload images are placed. The stack for the recursive HiSM kernel
// sits below the image region and grows downward.
inline constexpr Addr kImageBase = 0x10000;
inline constexpr Addr kStackTop = 0x10000;

// CRS image: the six arrays of the paper's Fig. 8/9, 16-byte aligned.
struct CrsImage {
  Addr an = 0;   // AN : float values, row-wise
  Addr ja = 0;   // JA : u32 column indices
  Addr ia = 0;   // IA : u32 row pointers (rows + 1)
  Addr ant = 0;  // ANT: output values
  Addr jat = 0;  // JAT: output column indices
  Addr iat = 0;  // IAT: output row pointers (cols + 1)
  Index rows = 0;
  Index cols = 0;
  usize nnz = 0;
  Addr end = 0;  // first free address past the image
};

// Serializes AN/JA/IA at their image addresses into `bytes`, which on
// return covers [base, image.end); the output arrays stay zeroed. stage_crs
// writes it into machine memory as one block, and the stage cache
// (kernels/staging.hpp) wraps it in a shared snapshot.
CrsImage build_crs_image(const Csr& csr, Addr base, std::vector<u8>& bytes);

// Writes AN/JA/IA into machine memory and reserves zeroed output arrays.
CrsImage stage_crs(vsim::Machine& machine, const Csr& csr, Addr base = kImageBase);

// Reads the transposed matrix (ANT/JAT/IAT) back as COO.
Coo read_back_crs_transpose(const vsim::Memory& memory, const CrsImage& image);
Coo read_back_crs_transpose(const vsim::Machine& machine, const CrsImage& image);

// Writes a HiSM image into machine memory (image built at `base`).
HismImage stage_hism(vsim::Machine& machine, const HismMatrix& hism, Addr base = kImageBase);

// Decodes the (possibly transposed, in-place) HiSM image from machine
// memory. Pass swap_dims = true after running the transpose kernel.
HismMatrix read_back_hism(const vsim::Machine& machine, const HismImage& image,
                          bool swap_dims);

}  // namespace smtu::kernels
