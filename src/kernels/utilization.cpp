#include "kernels/utilization.hpp"

#include <algorithm>

#include "support/bits.hpp"

namespace smtu::kernels {
namespace {

// Drain cost without per-line occupancy bits: aligned groups of L lines are
// scanned in order, one cycle minimum even when empty, exactly as
// StmUnit::freeze_drain_schedule charges it. Returns the cumulative cycle
// at which the last entry moves (= BlockResult::read_cycles).
u32 grouped_drain_cycles(std::span<const u8> lines, const StmConfig& config) {
  u32 cumulative = 0;
  usize idx = 0;
  for (u32 group = 0; group < config.section; group += config.lines) {
    usize count = 0;
    while (idx + count < lines.size() && lines[idx + count] < group + config.lines) {
      ++count;
    }
    cumulative += std::max<u32>(1, static_cast<u32>(ceil_div(count, config.bandwidth)));
    idx += count;
    if (idx == lines.size()) break;
  }
  return cumulative;
}

}  // namespace

StmTraceSet stm_block_traces(const HismMatrix& hism) {
  StmTraceSet traces;
  traces.section = hism.section();
  for (u32 level = 0; level < hism.num_levels(); ++level) {
    for (const BlockArray& block : hism.level(level)) {
      if (block.size() == 0) continue;
      StmBlockTrace trace;
      trace.passes = level > 0 ? 2 : 1;
      trace.fill_lines.reserve(block.size());
      // Drain order = the transpose read out row-major, i.e. the stored
      // positions sorted by (col, row); positions are unique within a
      // block, so the packed u16 key gives exactly that order.
      std::vector<u16> drain_order;
      drain_order.reserve(block.size());
      for (usize i = 0; i < block.size(); ++i) {
        trace.fill_lines.push_back(block.pos[i].row);
        drain_order.push_back(
            static_cast<u16>((static_cast<u16>(block.pos[i].col) << 8) | block.pos[i].row));
      }
      std::sort(drain_order.begin(), drain_order.end());
      trace.drain_lines.reserve(drain_order.size());
      for (const u16 key : drain_order) trace.drain_lines.push_back(static_cast<u8>(key >> 8));
      traces.blocks.push_back(std::move(trace));
    }
  }
  return traces;
}

UtilizationBreakdown stm_utilization(const StmTraceSet& traces, const StmConfig& config) {
  StmConfig stm_config = config;
  stm_config.section = traces.section;

  UtilizationBreakdown breakdown;
  for (const StmBlockTrace& block : traces.blocks) {
    const u32 fill = stream_cycles(block.fill_lines, stm_config);
    const u32 drain = stm_config.skip_empty_lines
                          ? stream_cycles(block.drain_lines, stm_config)
                          : grouped_drain_cycles(block.drain_lines, stm_config);
    const u64 pass_cycles = static_cast<u64>(fill) + drain +
                            stm_config.fill_pipeline_cycles +
                            stm_config.drain_pipeline_cycles;
    breakdown.transfers += static_cast<u64>(block.passes) * 2 * block.fill_lines.size();
    breakdown.cycles += block.passes * pass_cycles;
    breakdown.block_passes += block.passes;
  }
  if (breakdown.cycles > 0) {
    breakdown.utilization =
        static_cast<double>(breakdown.transfers) /
        (static_cast<double>(breakdown.cycles) * static_cast<double>(config.bandwidth));
  }
  return breakdown;
}

UtilizationBreakdown stm_utilization(const HismMatrix& hism, const StmConfig& config) {
  return stm_utilization(stm_block_traces(hism), config);
}

}  // namespace smtu::kernels
