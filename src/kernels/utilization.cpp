#include "kernels/utilization.hpp"

namespace smtu::kernels {

UtilizationBreakdown stm_utilization(const HismMatrix& hism, const StmConfig& config) {
  StmConfig stm_config = config;
  stm_config.section = hism.section();
  StmUnit unit(stm_config);

  UtilizationBreakdown breakdown;
  auto push_block = [&](const BlockArray& block, bool lengths_pass) {
    std::vector<StmEntry> entries;
    entries.reserve(block.size());
    for (usize i = 0; i < block.size(); ++i) {
      const u32 payload = lengths_pass ? block.child_len[i] : block.slot[i];
      entries.push_back({block.pos[i].row, block.pos[i].col, payload});
    }
    const StmUnit::BlockResult result = unit.transpose_block(entries);
    breakdown.transfers += 2 * block.size();
    breakdown.cycles += result.cycles;
    breakdown.block_passes += 1;
  };

  for (u32 level = 0; level < hism.num_levels(); ++level) {
    for (const BlockArray& block : hism.level(level)) {
      if (block.size() == 0) continue;
      if (level > 0) push_block(block, /*lengths_pass=*/true);
      push_block(block, /*lengths_pass=*/false);
    }
  }
  if (breakdown.cycles > 0) {
    breakdown.utilization =
        static_cast<double>(breakdown.transfers) /
        (static_cast<double>(breakdown.cycles) * static_cast<double>(config.bandwidth));
  }
  return breakdown;
}

}  // namespace smtu::kernels
