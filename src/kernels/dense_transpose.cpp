#include "kernels/dense_transpose.hpp"

#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

const std::string& dense_transpose_source() {
  // r1 = &A (rows x cols, row-major), r2 = &AT, r7 = rows, r8 = cols.
  // Column j of A streams in with stride 4*cols and lands contiguously as
  // row j of AT.
  static const std::string source = R"asm(
main:
    slli  r15, r8, 2             # stride = 4 * cols
    li    r10, 0                 # j (source column)
col_loop:
    bge   r10, r8, done
    slli  r11, r10, 2
    add   r12, r1, r11           # &A[0][j]
    mul   r13, r10, r7
    slli  r13, r13, 2
    add   r13, r2, r13           # &AT[j][0]
    mv    r14, r7                # rows remaining
seg:
    setvl r16, r14
    sub   r14, r14, r16
    v_lds vr1, (r12), r15        # strided column load
    v_st  vr1, (r13)             # contiguous row store
    mul   r17, r16, r15
    add   r12, r12, r17
    slli  r17, r16, 2
    add   r13, r13, r17
    bne   r14, r0, seg
    addi  r10, r10, 1
    beq   r0, r0, col_loop
done:
    halt
)asm";
  return source;
}

namespace {

vsim::Machine stage(const Dense& matrix, const vsim::MachineConfig& config, Addr& a_addr,
                    Addr& at_addr) {
  vsim::Machine machine(config);
  a_addr = kImageBase;
  for (Index r = 0; r < matrix.rows(); ++r) {
    for (Index c = 0; c < matrix.cols(); ++c) {
      machine.memory().write_f32(a_addr + 4 * (r * matrix.cols() + c), matrix.at(r, c));
    }
  }
  at_addr = round_up(a_addr + 4 * matrix.rows() * matrix.cols(), 16);
  machine.memory().ensure(at_addr, 4 * std::max<u64>(1, matrix.rows() * matrix.cols()));
  machine.set_sreg(1, a_addr);
  machine.set_sreg(2, at_addr);
  machine.set_sreg(7, matrix.rows());
  machine.set_sreg(8, matrix.cols());
  return machine;
}

}  // namespace

DenseTransposeResult run_dense_transpose(const Dense& matrix,
                                         const vsim::MachineConfig& config) {
  const auto program = vsim::ProgramCache::instance().get(dense_transpose_source());
  Addr a_addr = 0;
  Addr at_addr = 0;
  vsim::Machine machine = stage(matrix, config, a_addr, at_addr);

  DenseTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = Dense(matrix.cols(), matrix.rows());
  for (Index r = 0; r < matrix.cols(); ++r) {
    for (Index c = 0; c < matrix.rows(); ++c) {
      result.transposed.at(r, c) =
          machine.memory().read_f32(at_addr + 4 * (r * matrix.rows() + c));
    }
  }
  return result;
}

vsim::RunStats time_dense_transpose(const Dense& matrix, const vsim::MachineConfig& config) {
  const auto program = vsim::ProgramCache::instance().get(dense_transpose_source());
  Addr a_addr = 0;
  Addr at_addr = 0;
  vsim::Machine machine = stage(matrix, config, a_addr, at_addr);
  return machine.run(*program);
}

}  // namespace smtu::kernels
