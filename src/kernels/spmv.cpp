#include "kernels/spmv.hpp"

#include <bit>
#include <sstream>

#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

namespace {

// Shared generator for the direct (y = A x) and transposed (y = A^T x)
// products. The two differ only in which position byte keys the x gather /
// y scatter-accumulate and which block digit scales which base pointer.
std::string hism_spmv_source_impl(u32 section, bool transposed) {
  SMTU_CHECK_MSG(is_pow2(section), "HiSM SpMV span arithmetic requires a power-of-two section");
  const u32 log2s = log2_ceil(section);
  const char* gather = transposed ? "v_gthr" : "v_gthc";
  const char* scatter = transposed ? "v_scac" : "v_scar";
  // Which digit drives x (the multiplier side) and y (the result side).
  const char* x_digit = transposed ? "r11" : "r12";  // row : col
  const char* y_digit = transposed ? "r12" : "r11";  // col : row

  // Register use inside spmv_block:
  //   r1 BSA  r2 BSL  r3 LVL  r4 x base  r5 y base  r6 span (elements)
  //   r7 value/pointer array  r8 lengths array  r9 child index
  //   r10..r18 temporaries
  std::ostringstream out;
  out << R"asm(
main:
    jal   spmv_block
    halt

# ---- spmv_block(r1=BSA, r2=BSL, r3=LVL, r4=&x[x_off], r5=&y[y_off], r6=span)
spmv_block:
    beq   r2, r0, sb_done
    add   r7, r2, r2
    addi  r7, r7, 3
    andi  r7, r7, -4
    add   r7, r1, r7             # value/pointer array
    beq   r3, r0, sb_leaf
    slli  r8, r2, 2
    add   r8, r7, r8             # lengths array

    li    r9, 0
sb_loop:
    bge   r9, r2, sb_done
    addi  sp, sp, -40            # save caller frame
    sw    ra, 0(sp)
    sw    r1, 4(sp)
    sw    r2, 8(sp)
    sw    r3, 12(sp)
    sw    r4, 16(sp)
    sw    r5, 20(sp)
    sw    r6, 24(sp)
    sw    r7, 28(sp)
    sw    r8, 32(sp)
    sw    r9, 36(sp)
    add   r10, r9, r9
    add   r10, r1, r10
    lbu   r11, (r10)             # block row position
    lbu   r12, 1(r10)            # block column position
    slli  r13, r9, 2
    add   r14, r7, r13
    lw    r15, (r14)             # child pointer
    add   r14, r8, r13
    lw    r16, (r14)             # child length
    # A position digit at this block's level k contributes digit * s^k to
    # the global row/column index (the coordinate decomposition of §III), so
    # offsets scale by this block's span before descending with span / s.
    slli  r17, r6, 2             # 4 * span
)asm";
  out << "    mul   r18, " << x_digit << ", r17\n";
  out << "    add   r4, r4, r18            # x base += 4 * digit * span\n";
  out << "    mul   r18, " << y_digit << ", r17\n";
  out << "    add   r5, r5, r18            # y base += 4 * digit * span\n";
  out << R"asm(
)asm";
  out << "    srli  r6, r6, " << log2s << "         # child span = span / s\n";
  out << R"asm(
    mv    r1, r15
    mv    r2, r16
    addi  r3, r3, -1
    jal   spmv_block
    lw    ra, 0(sp)              # restore caller frame
    lw    r1, 4(sp)
    lw    r2, 8(sp)
    lw    r3, 12(sp)
    lw    r4, 16(sp)
    lw    r5, 20(sp)
    lw    r6, 24(sp)
    lw    r7, 28(sp)
    lw    r8, 32(sp)
    lw    r9, 36(sp)
    addi  sp, sp, 40
    addi  r9, r9, 1
    beq   r0, r0, sb_loop

sb_leaf:
    # Stream the block: y[row] += value * x[col], positions straight from
    # the block-array (the positional multiply-accumulate).
    mv    r10, r1                # position cursor
    mv    r11, r7                # value cursor
    mv    r12, r2
sb_stream:
    ssvl  r12
    v_ldb vr1, vr2, r10, r11
)asm";
  out << "    " << gather << " vr3, (r4), vr2        # x gathered by position\n";
  out << "    v_fmul vr4, vr1, vr3\n";
  out << "    " << scatter << " vr4, (r5), vr2        # y accumulated by position\n";
  out << R"asm(
    bne   r12, r0, sb_stream
sb_done:
    ret
)asm";
  return out.str();
}

}  // namespace

std::string hism_spmv_source(u32 section) {
  return hism_spmv_source_impl(section, /*transposed=*/false);
}

std::string hism_spmv_transposed_source(u32 section) {
  return hism_spmv_source_impl(section, /*transposed=*/true);
}

std::string crs_spmv_source() {
  // r1=&AN r2=&JA r3=&IA r4=&x r5=&y r7=rows
  return R"asm(
main:
    li    r10, 0                 # row i
row_loop:
    bge   r10, r7, done
    slli  r11, r10, 2
    add   r11, r11, r3
    lw    r12, (r11)             # iaa
    lw    r13, 4(r11)            # iab
    sub   r14, r13, r12
    li    r15, 0                 # accumulator (0.0f)
    beq   r14, r0, store
    slli  r16, r12, 2
    add   r17, r2, r16           # &JA[iaa]
    add   r18, r1, r16           # &AN[iaa]
seg:
    setvl r19, r14
    sub   r14, r14, r19
    v_ld  vr0, (r17)             # column indices
    v_ldx vr1, (r4), vr0         # gather x[JA]
    v_ld  vr2, (r18)             # values
    v_fmul vr3, vr1, vr2
    v_fredsum r20, vr3
    fadd  r15, r15, r20
    slli  r21, r19, 2
    add   r17, r17, r21
    add   r18, r18, r21
    bne   r14, r0, seg
store:
    slli  r11, r10, 2
    add   r11, r11, r5
    sw    r15, (r11)             # y[i]
    addi  r10, r10, 1
    beq   r0, r0, row_loop
done:
    halt
)asm";
}

std::string jd_spmv_source() {
  // r1=&values r2=&col_idx r3=&diag_ptr r4=&x r5=&yperm r6=&perm
  // r7=rows r8=ndiags r9=&y
  return R"asm(
main:
    # zero the permuted accumulator
    v_bcasti vr0, 0
    mv    r10, r7
    mv    r11, r5
zero_loop:
    beq   r10, r0, diagonals
    setvl r12, r10
    sub   r10, r10, r12
    v_st  vr0, (r11)
    slli  r13, r12, 2
    add   r11, r11, r13
    beq   r0, r0, zero_loop

diagonals:
    li    r10, 0                 # diagonal d
diag_loop:
    bge   r10, r8, unpermute
    slli  r11, r10, 2
    add   r11, r11, r3
    lw    r12, (r11)             # begin
    lw    r13, 4(r11)            # end
    sub   r14, r13, r12
    beq   r14, r0, diag_next
    slli  r15, r12, 2
    add   r16, r1, r15           # &values[begin]
    add   r17, r2, r15           # &cols[begin]
    mv    r18, r5                # yperm restarts at row 0 each diagonal
seg:
    setvl r19, r14
    sub   r14, r14, r19
    v_ld  vr1, (r16)
    v_ld  vr2, (r17)
    v_ldx vr3, (r4), vr2         # gather x
    v_fmul vr4, vr1, vr3
    v_ld  vr5, (r18)             # contiguous partial sums
    v_fadd vr6, vr5, vr4
    v_st  vr6, (r18)
    slli  r20, r19, 2
    add   r16, r16, r20
    add   r17, r17, r20
    add   r18, r18, r20
    bne   r14, r0, seg
diag_next:
    addi  r10, r10, 1
    beq   r0, r0, diag_loop

unpermute:
    mv    r10, r7
    mv    r11, r6                # &perm
    mv    r12, r5                # &yperm
unperm_loop:
    beq   r10, r0, done
    setvl r13, r10
    sub   r10, r10, r13
    v_ld  vr0, (r11)             # original row ids
    v_ld  vr1, (r12)             # permuted results
    v_stx vr1, (r9), vr0         # y[perm[i]] = yperm[i]
    slli  r14, r13, 2
    add   r11, r11, r14
    add   r12, r12, r14
    beq   r0, r0, unperm_loop
done:
    halt
)asm";
}

namespace {

Addr stage_floats(vsim::Machine& machine, Addr addr, const std::vector<float>& values) {
  for (usize i = 0; i < values.size(); ++i) {
    machine.memory().write_f32(addr + 4 * i, values[i]);
  }
  return round_up(addr + 4 * values.size(), 16);
}

Addr stage_u32s(vsim::Machine& machine, Addr addr, const std::vector<u32>& values) {
  for (usize i = 0; i < values.size(); ++i) {
    machine.memory().write_u32(addr + 4 * i, values[i]);
  }
  return round_up(addr + 4 * values.size(), 16);
}

std::vector<float> read_floats(const vsim::Machine& machine, Addr addr, usize count) {
  std::vector<float> values(count);
  for (usize i = 0; i < count; ++i) values[i] = machine.memory().read_f32(addr + 4 * i);
  return values;
}

}  // namespace

SpmvResult run_hism_spmv(const HismMatrix& hism, const std::vector<float>& x,
                         const vsim::MachineConfig& config) {
  SMTU_CHECK_MSG(hism.section() == config.section,
                 "HiSM section size must match the machine section size");
  SMTU_CHECK_MSG(x.size() == hism.cols(), "x dimension mismatch");
  const auto program = vsim::ProgramCache::instance().get(hism_spmv_source(config.section));

  vsim::Machine machine(config);
  const HismImage image = stage_hism(machine, hism);
  const Addr x_addr = round_up(image.base + image.bytes.size(), 16);
  const Addr y_addr = stage_floats(machine, x_addr, x);
  machine.memory().ensure(y_addr, 4 * std::max<u64>(1, hism.rows()));  // zeroed y

  machine.set_sreg(1, image.root_addr);
  machine.set_sreg(2, image.root_len);
  machine.set_sreg(3, image.levels - 1);
  machine.set_sreg(4, x_addr);
  machine.set_sreg(5, y_addr);
  machine.set_sreg(6, ipow(config.section, image.levels - 1));
  machine.set_sreg(vsim::kRegSp, kStackTop);

  SpmvResult result;
  result.stats = machine.run(*program);
  result.y = read_floats(machine, y_addr, hism.rows());
  return result;
}

SpmvResult run_hism_spmv_transposed(const HismMatrix& hism, const std::vector<float>& x,
                                    const vsim::MachineConfig& config) {
  SMTU_CHECK_MSG(hism.section() == config.section,
                 "HiSM section size must match the machine section size");
  SMTU_CHECK_MSG(x.size() == hism.rows(), "x dimension mismatch (y = A^T x)");
  const auto program = vsim::ProgramCache::instance().get(hism_spmv_transposed_source(config.section));

  vsim::Machine machine(config);
  const HismImage image = stage_hism(machine, hism);
  const Addr x_addr = round_up(image.base + image.bytes.size(), 16);
  const Addr y_addr = stage_floats(machine, x_addr, x);
  machine.memory().ensure(y_addr, 4 * std::max<u64>(1, hism.cols()));

  machine.set_sreg(1, image.root_addr);
  machine.set_sreg(2, image.root_len);
  machine.set_sreg(3, image.levels - 1);
  machine.set_sreg(4, x_addr);
  machine.set_sreg(5, y_addr);
  machine.set_sreg(6, ipow(config.section, image.levels - 1));
  machine.set_sreg(vsim::kRegSp, kStackTop);

  SpmvResult result;
  result.stats = machine.run(*program);
  result.y = read_floats(machine, y_addr, hism.cols());
  return result;
}

SpmvResult run_crs_spmv(const Csr& csr, const std::vector<float>& x,
                        const vsim::MachineConfig& config) {
  SMTU_CHECK_MSG(x.size() == csr.cols(), "x dimension mismatch");
  const auto program = vsim::ProgramCache::instance().get(crs_spmv_source());

  vsim::Machine machine(config);
  CrsImage image = stage_crs(machine, csr);
  const Addr x_addr = round_up(image.end, 16);
  const Addr y_addr = stage_floats(machine, x_addr, x);
  machine.memory().ensure(y_addr, 4 * std::max<u64>(1, csr.rows()));

  machine.set_sreg(1, image.an);
  machine.set_sreg(2, image.ja);
  machine.set_sreg(3, image.ia);
  machine.set_sreg(4, x_addr);
  machine.set_sreg(5, y_addr);
  machine.set_sreg(7, csr.rows());

  SpmvResult result;
  result.stats = machine.run(*program);
  result.y = read_floats(machine, y_addr, csr.rows());
  return result;
}

SpmvResult run_jd_spmv(const Jagged& jd, const std::vector<float>& x,
                       const vsim::MachineConfig& config) {
  SMTU_CHECK_MSG(x.size() == jd.cols(), "x dimension mismatch");
  const auto program = vsim::ProgramCache::instance().get(jd_spmv_source());

  vsim::Machine machine(config);
  Addr cursor = kImageBase;
  const Addr values_addr = cursor;
  std::vector<u32> value_bits(jd.values().size());
  for (usize i = 0; i < jd.values().size(); ++i) {
    value_bits[i] = std::bit_cast<u32>(jd.values()[i]);
  }
  cursor = stage_u32s(machine, cursor, value_bits);
  const Addr cols_addr = cursor;
  cursor = stage_u32s(machine, cursor, jd.col_idx());
  const Addr diag_ptr_addr = cursor;
  cursor = stage_u32s(machine, cursor, jd.diag_ptr());
  const Addr perm_addr = cursor;
  cursor = stage_u32s(machine, cursor, jd.perm());
  const Addr x_addr = cursor;
  cursor = stage_floats(machine, x_addr, x);
  const Addr yperm_addr = cursor;
  cursor = round_up(yperm_addr + 4 * std::max<u64>(1, jd.rows()), 16);
  const Addr y_addr = cursor;
  machine.memory().ensure(y_addr, 4 * std::max<u64>(1, jd.rows()));

  machine.set_sreg(1, values_addr);
  machine.set_sreg(2, cols_addr);
  machine.set_sreg(3, diag_ptr_addr);
  machine.set_sreg(4, x_addr);
  machine.set_sreg(5, yperm_addr);
  machine.set_sreg(6, perm_addr);
  machine.set_sreg(7, jd.rows());
  machine.set_sreg(8, jd.diagonals());
  machine.set_sreg(9, y_addr);

  SpmvResult result;
  result.stats = machine.run(*program);
  result.y = read_floats(machine, y_addr, jd.rows());
  return result;
}

}  // namespace smtu::kernels
