#include "kernels/staging.hpp"

#include <bit>
#include <cstring>

#include "support/assert.hpp"
#include "support/telemetry.hpp"
#include "vsim/sim_cache.hpp"

namespace smtu::kernels {
namespace {

// The size vsim::Memory's geometric growth (4096, doubling) would give a
// fresh memory after staging [0, end) — matching it keeps reads past the
// image (which return zero) behaving exactly like the per-machine path.
u64 grown_size(u64 end) {
  u64 size = 4096;
  while (size < end) size *= 2;
  return size;
}

std::shared_ptr<const std::vector<u8>> make_snapshot(Addr base,
                                                     std::span<const u8> image_bytes) {
  auto snapshot =
      std::make_shared<std::vector<u8>>(grown_size(base + image_bytes.size()), u8{0});
  std::memcpy(snapshot->data() + base, image_bytes.data(), image_bytes.size());
  return snapshot;
}

// Content key for a COO matrix: dimensions plus a 128-bit hash over the
// canonical entry stream.
std::string coo_key(const Coo& coo, std::string_view layout, u64 salt) {
  vsim::SimHash hash;
  hash.update(layout);
  hash.update_u64(salt);
  hash.update_u64(coo.rows());
  hash.update_u64(coo.cols());
  hash.update_u64(coo.nnz());
  for (const CooEntry& entry : coo.entries()) {
    hash.update_u64(entry.row);
    hash.update_u64(entry.col);
    hash.update_u64(std::bit_cast<u32>(entry.value));
  }
  return hash.hex();
}

}  // namespace

HismStage build_hism_stage(HismMatrix hism) {
  telemetry::HostSpan span("stage.build_us");
  HismStage stage;
  stage.hism = std::move(hism);
  stage.image = build_hism_image(stage.hism, kImageBase);
  stage.snapshot = make_snapshot(stage.image.base, stage.image.bytes);
  return stage;
}

CrsStage build_crs_stage(Csr csr) {
  telemetry::HostSpan span("stage.build_us");
  CrsStage stage;
  stage.csr = std::move(csr);
  std::vector<u8> bytes;
  stage.image = build_crs_image(stage.csr, kImageBase, bytes);
  stage.snapshot = make_snapshot(kImageBase, bytes);
  return stage;
}

MatrixStageCache& MatrixStageCache::instance() {
  static MatrixStageCache cache;
  return cache;
}

std::shared_ptr<const HismStage> MatrixStageCache::hism(const Coo& coo, u32 section) {
  telemetry::HostSpan span("cache.stage.lookup_us");
  const std::string key = coo_key(coo, "hism", section);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = hism_entries_.find(key);
    if (it != hism_entries_.end()) {
      ++stats_.hits;
      if (telemetry::enabled()) telemetry::counter("cache.stage.hits_total").add(1);
      return it->second;
    }
  }
  // Build outside the lock (conversions are the expensive part); a racing
  // duplicate builds twice and the first insert wins.
  auto stage =
      std::make_shared<const HismStage>(build_hism_stage(HismMatrix::from_coo(coo, section)));
  if (telemetry::enabled()) {
    telemetry::counter("cache.stage.misses_total").add(1);
    telemetry::counter("cache.stage.bytes_total").add(stage->snapshot->size());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  return hism_entries_.emplace(key, std::move(stage)).first->second;
}

std::shared_ptr<const CrsStage> MatrixStageCache::crs(const Coo& coo) {
  telemetry::HostSpan span("cache.stage.lookup_us");
  const std::string key = coo_key(coo, "crs", 0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = crs_entries_.find(key);
    if (it != crs_entries_.end()) {
      ++stats_.hits;
      if (telemetry::enabled()) telemetry::counter("cache.stage.hits_total").add(1);
      return it->second;
    }
  }
  auto stage = std::make_shared<const CrsStage>(build_crs_stage(Csr::from_coo(coo)));
  if (telemetry::enabled()) {
    telemetry::counter("cache.stage.misses_total").add(1);
    telemetry::counter("cache.stage.bytes_total").add(stage->snapshot->size());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  return crs_entries_.emplace(key, std::move(stage)).first->second;
}

MatrixStageCache::Stats MatrixStageCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void MatrixStageCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  const usize dropped = hism_entries_.size() + crs_entries_.size();
  if (telemetry::enabled() && dropped != 0) {
    telemetry::counter("cache.stage.evictions_total").add(dropped);
  }
  hism_entries_.clear();
  crs_entries_.clear();
  stats_ = {};
}

}  // namespace smtu::kernels
