// Shared, immutable staged matrix images.
//
// Every (matrix, layout) pair stages to the same bytes no matter which
// machine runs the kernel, so the conversion (from_coo) and the serialized
// image are built once and wrapped in a snapshot that machines attach
// copy-on-write (vsim::Memory::attach_base). Ablation ladders sweeping N
// configs over one matrix then share one image instead of rebuilding N.
//
// The snapshot covers [0, size) from address zero with the image at its
// usual kImageBase, sized exactly as vsim::Memory's geometric growth would
// have sized a freshly staged memory — reads behave bit-identically to the
// per-machine staging path.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "hism/hism.hpp"
#include "kernels/layout.hpp"

namespace smtu::kernels {

// A HiSM matrix staged once: the hierarchy, its memory image descriptor,
// and the shared byte snapshot machines attach.
struct HismStage {
  HismMatrix hism;
  HismImage image;
  std::shared_ptr<const std::vector<u8>> snapshot;
};

// A CRS matrix staged once (input arrays serialized, outputs zeroed).
struct CrsStage {
  Csr csr;
  CrsImage image;
  std::shared_ptr<const std::vector<u8>> snapshot;
};

// Stage builders (also usable without the cache).
HismStage build_hism_stage(HismMatrix hism);
CrsStage build_crs_stage(Csr csr);

// Process-wide cache from matrix content to its staged image. Thread-safe;
// keyed by dimensions plus a content hash of the COO entries (and the
// section size for HiSM, whose layout depends on it).
class MatrixStageCache {
 public:
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
  };

  static MatrixStageCache& instance();

  std::shared_ptr<const HismStage> hism(const Coo& coo, u32 section);
  std::shared_ptr<const CrsStage> crs(const Coo& coo);

  Stats stats() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const HismStage>> hism_entries_;
  std::unordered_map<std::string, std::shared_ptr<const CrsStage>> crs_entries_;
  Stats stats_;
};

}  // namespace smtu::kernels
