#include "kernels/spgemm.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "hism/hism.hpp"
#include "hism/image.hpp"
#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

std::string hism_spgemm_source(u32 section) {
  SMTU_CHECK_MSG(std::has_single_bit(section), "section must be a power of two");
  // Per-core descriptor, r20 (host-staged u32 fields):
  //   +0  A root address   +4  A root length (0 = empty A)
  //   +8  levels - 1       +12 root coverage (s^levels, rows/cols per digit)
  //   +16 B_IA   +20 B_JA   +24 B_AN
  //   +28 C base (dense n x p, zeroed)   +32 p (= cols of B)
  //   +36 i_lo   +40 i_hi   (this core's output-row stripe, s-aligned)
  //   +44 scratch positions   +48 scratch values (per core, s*s entries)
  //
  // gust_block(r1 = BSA, r2 = BSL, r3 = LVL, r4 = coverage,
  //            r5 = k_base, r6 = i_base) walks A's hierarchy. Position
  //   byte 0 is the row digit (k direction), byte 1 the column digit
  //   (i direction); a child spans coverage/s elements per digit step.
  std::ostringstream out;
  out << R"asm(
main:
;; profile: spgemm_setup
    lw    r1, 0(r20)             # A root address
    lw    r2, 4(r20)             # A root length
    lw    r3, 8(r20)             # levels - 1
    lw    r4, 12(r20)            # root coverage
    li    r5, 0                  # k_base
    li    r6, 0                  # i_base
    jal   gust_block
    halt

;; profile: spgemm_walk
gust_block:
    beq   r2, r0, gb_ret         # empty block array
    lw    r7, 36(r20)            # i_lo
    lw    r8, 40(r20)            # i_hi
    bge   r6, r8, gb_ret         # block's columns start past the stripe
    add   r9, r6, r4
    bge   r7, r9, gb_ret         # block's columns end before the stripe

    # Slot array geometry: positions at BSA, slots at BSA + align4(2n),
    # lengths (levels >= 1) 4n further.
    add   r9, r2, r2
    addi  r9, r9, 3
    andi  r9, r9, -4
    add   r9, r1, r9             # slot array (values at level 0)
    beq   r3, r0, gb_leaf

    slli  r10, r2, 2
    add   r10, r9, r10           # lengths array
    srli  r11, r4, )asm"
      << log2_floor(section) << R"asm(      # child coverage
    li    r12, 0                 # child index
gb_loop:
    bge   r12, r2, gb_ret
    addi  sp, sp, -48            # save caller frame
    sw    ra, 0(sp)
    sw    r1, 4(sp)
    sw    r2, 8(sp)
    sw    r3, 12(sp)
    sw    r4, 16(sp)
    sw    r5, 20(sp)
    sw    r6, 24(sp)
    sw    r9, 28(sp)
    sw    r10, 32(sp)
    sw    r11, 36(sp)
    sw    r12, 40(sp)
    add   r13, r12, r12
    add   r13, r1, r13
    lbu   r14, (r13)             # row digit
    lbu   r15, 1(r13)            # column digit
    mul   r14, r14, r11
    add   r5, r5, r14            # k_base += row digit * child coverage
    mul   r15, r15, r11
    add   r6, r6, r15            # i_base += column digit * child coverage
    slli  r16, r12, 2
    add   r17, r9, r16
    lw    r1, (r17)              # child address
    add   r17, r10, r16
    lw    r2, (r17)              # child length
    addi  r3, r3, -1
    mv    r4, r11
    jal   gust_block
    lw    ra, 0(sp)              # restore caller frame
    lw    r1, 4(sp)
    lw    r2, 8(sp)
    lw    r3, 12(sp)
    lw    r4, 16(sp)
    lw    r5, 20(sp)
    lw    r6, 24(sp)
    lw    r9, 28(sp)
    lw    r10, 32(sp)
    lw    r11, 36(sp)
    lw    r12, 40(sp)
    addi  sp, sp, 48
    addi  r12, r12, 1
    beq   r0, r0, gb_loop

    # ---- leaf: transpose the block through the STM, then one Gustavson
    # merge per drained (i, k, a) entry -------------------------------------
;; profile: spgemm_transpose
gb_leaf:
    icm
    mv    r10, r1                # position cursor
    mv    r11, r9                # value cursor
    mv    r12, r2                # entries remaining
gl_fill:
    ssvl  r12
    v_ldb vr1, vr2, r10, r11     # block entries (values + positions)
    v_stcr vr1, vr2              # scatter row-wise into the s x s memory
    bne   r12, r0, gl_fill
    lw    r10, 44(r20)           # scratch positions
    lw    r11, 48(r20)           # scratch values
    mv    r12, r2
gl_drain:
    ssvl  r12
    v_ldcc vr3, vr4              # drain column-wise: (i, k)-sorted, swapped
    v_stb vr3, vr4, r10, r11     # park the transposed entries in scratch
    bne   r12, r0, gl_drain
;; profile: spgemm_gustavson
    lw    r13, 44(r20)           # scratch positions
    lw    r14, 48(r20)           # scratch values
    lw    r15, 16(r20)           # B_IA
    lw    r16, 20(r20)           # B_JA
    lw    r17, 24(r20)           # B_AN
    lw    r18, 28(r20)           # C
    lw    r19, 32(r20)           # p
    li    r9, )asm"
      << section << R"asm(                 # full section, for the broadcasts
    li    r12, 0                 # entry index
gl_entry:
    bge   r12, r2, gb_ret
    add   r21, r12, r12
    add   r21, r13, r21
    lbu   r22, (r21)             # byte 0 after the swap: i offset
    lbu   r23, 1(r21)            # byte 1 after the swap: k offset
    add   r22, r22, r6           # i = i_base + offset
    add   r23, r23, r5           # k = k_base + offset
    blt   r22, r7, gl_next       # outside this core's stripe
    bge   r22, r8, gl_next
    slli  r24, r23, 2
    add   r24, r15, r24
    lw    r25, (r24)             # B_IA[k]
    lw    r24, 4(r24)            # B_IA[k + 1]
    sub   r26, r24, r25          # B row length
    beq   r26, r0, gl_next       # empty row of B
    slli  r27, r12, 2
    add   r27, r14, r27
    lw    r27, (r27)             # a = A^T[i, k] value bits
    mv    r28, r9
    ssvl  r28                    # vl = s: the broadcast must cover every
    v_bcast vr5, r27             # lane the axpy strips below may touch
    mul   r27, r22, r19
    slli  r27, r27, 2
    add   r27, r18, r27          # &C[i, 0]
    slli  r24, r25, 2
    add   r25, r16, r24          # &B_JA[row start]
    add   r24, r17, r24          # &B_AN[row start]
gl_axpy:
    setvl r28, r26
    sub   r26, r26, r28
    v_ld  vr6, (r25)             # column indices of B[k,:]
    v_ld  vr7, (r24)             # values of B[k,:]
    v_fmul vr8, vr5, vr7         # a * B[k, j]
    v_scax vr8, (r27), vr6       # C[i, j] += a * B[k, j]
    slli  r29, r28, 2
    add   r25, r25, r29
    add   r24, r24, r29
    bne   r26, r0, gl_axpy
gl_next:
    addi  r12, r12, 1
    beq   r0, r0, gl_entry
gb_ret:
    ret
)asm";
  return out.str();
}

std::vector<float> spgemm_at_b_reference_dense(const Coo& a, const Csr& b) {
  SMTU_CHECK_MSG(a.rows() == b.rows(), "A^T * B needs matching inner dimensions");
  const usize n = a.cols();
  const usize p = b.cols();

  // The kernel's term order per output row i: ascending k (row-major block
  // visitation + the (i, k)-sorted drain), then B's stored row order.
  Coo at = a;
  at.canonicalize();
  std::vector<CooEntry> entries = at.entries();
  std::stable_sort(entries.begin(), entries.end(), [](const CooEntry& x, const CooEntry& y) {
    return x.col != y.col ? x.col < y.col : x.row < y.row;
  });

  std::vector<float> dense(n * p, 0.0f);
  const std::vector<u32>& ia = b.row_ptr();
  const std::vector<u32>& ja = b.col_idx();
  const std::vector<float>& an = b.values();
  for (const CooEntry& e : entries) {
    const usize i = e.col;
    const u32 k = e.row;
    for (u32 idx = ia[k]; idx < ia[k + 1]; ++idx) {
      dense[i * p + ja[idx]] += e.value * an[idx];
    }
  }
  return dense;
}

namespace {

Coo dense_to_coo(const std::vector<float>& dense, Index rows, Index cols) {
  Coo coo(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      const float v = dense[static_cast<usize>(i) * cols + j];
      if (v != 0.0f) coo.add(i, j, v);
    }
  }
  coo.canonicalize();
  return coo;
}

struct SpgemmLayout {
  Addr c_base = 0;
  Index n = 0;  // rows of C
  Index p = 0;  // cols of C
};

SpgemmLayout stage_spgemm(vsim::MultiCoreSystem& system, const Coo& a, const Csr& b) {
  SMTU_CHECK_MSG(a.rows() == b.rows(), "A^T * B needs matching inner dimensions");
  const u32 section = system.config().core.section;
  SMTU_CHECK_MSG(std::has_single_bit(section), "section must be a power of two");
  const u32 cores = system.num_cores();
  vsim::Memory& mem = system.memory();

  // A as a HiSM image. Row-major high-level order is load-bearing: it makes
  // blocks with the same column range arrive in ascending row (k) order.
  Addr cursor = kImageBase;
  Addr root_addr = 0;
  u32 root_len = 0;
  u32 levels = 1;
  if (a.nnz() > 0) {
    const HismMatrix hism = HismMatrix::from_coo(a, section, HighLevelOrder::kRowMajor);
    const HismImage image = build_hism_image(hism, kImageBase);
    mem.write_block(image.base, image.bytes);
    cursor = image.base + image.bytes.size();
    root_addr = image.root_addr;
    root_len = image.root_len;
    levels = image.levels;
  }
  const u64 coverage = ipow(section, levels);

  // B as plain CRS arrays (no transpose scratch needed).
  const usize bnnz = b.nnz();
  const Addr b_ia = round_up(cursor, 16);
  const Addr b_ja = round_up(b_ia + 4ull * (b.rows() + 1), 16);
  const Addr b_an = round_up(b_ja + 4ull * bnnz, 16);
  const Addr c_base = round_up(b_an + 4ull * bnnz, 16);
  for (usize i = 0; i <= b.rows(); ++i) mem.write_u32(b_ia + 4 * i, b.row_ptr()[i]);
  for (usize i = 0; i < bnnz; ++i) {
    mem.write_u32(b_ja + 4 * i, b.col_idx()[i]);
    mem.write_f32(b_an + 4 * i, b.values()[i]);
  }

  // Dense accumulator C (n x p), zero-initialized by ensure().
  const usize n = a.cols();
  const usize p = b.cols();
  mem.ensure(c_base, 4ull * n * p);

  // Per-core transposed-block scratch (s*s entries: 2-byte positions +
  // 4-byte values) and descriptors.
  const u64 block_cap = static_cast<u64>(section) * section;
  const Addr scratch_base = round_up(c_base + 4ull * n * p, 16);
  const u64 scratch_span = round_up(2 * block_cap, 16) + round_up(4 * block_cap, 16);
  const Addr desc_base = round_up(scratch_base + scratch_span * cores, 16);

  // Output stripes: s-aligned cuts over the columns of A (= rows of C),
  // balanced by the non-zeros of A that land in each stripe.
  const u64 num_stripes = ceil_div(std::max<u64>(1, a.cols()), static_cast<u64>(section));
  std::vector<u64> stripe_nnz(num_stripes, 0);
  for (const CooEntry& e : a.entries()) ++stripe_nnz[e.col / section];
  std::vector<u64> cut(cores + 1, 0);
  cut[cores] = num_stripes;
  u64 acc = 0;
  u64 stripe = 0;
  for (u32 c = 0; c + 1 < cores; ++c) {
    const u64 target = a.nnz() * (c + 1) / cores;
    while (stripe < num_stripes && acc < target) {
      acc += stripe_nnz[stripe];
      ++stripe;
    }
    cut[c + 1] = stripe;
  }

  const Addr stack_span = (kStackTop / cores) & ~static_cast<Addr>(15);
  for (u32 c = 0; c < cores; ++c) {
    const Addr scratch = scratch_base + scratch_span * c;
    const Addr desc = desc_base + 64ull * c;
    mem.write_u32(desc + 0, static_cast<u32>(root_addr));
    mem.write_u32(desc + 4, root_len);
    mem.write_u32(desc + 8, levels - 1);
    mem.write_u32(desc + 12, static_cast<u32>(coverage));
    mem.write_u32(desc + 16, static_cast<u32>(b_ia));
    mem.write_u32(desc + 20, static_cast<u32>(b_ja));
    mem.write_u32(desc + 24, static_cast<u32>(b_an));
    mem.write_u32(desc + 28, static_cast<u32>(c_base));
    mem.write_u32(desc + 32, static_cast<u32>(p));
    mem.write_u32(desc + 36, static_cast<u32>(cut[c] * section));
    mem.write_u32(desc + 40, static_cast<u32>(cut[c + 1] * section));
    mem.write_u32(desc + 44, static_cast<u32>(scratch));
    mem.write_u32(desc + 48, static_cast<u32>(scratch + round_up(2 * block_cap, 16)));
    system.core(c).set_sreg(20, desc);
    system.core(c).set_sreg(vsim::kRegSp, kStackTop - stack_span * c);
  }
  return SpgemmLayout{c_base, static_cast<Index>(n), static_cast<Index>(p)};
}

void attach_profilers(vsim::MultiCoreSystem& system,
                      std::vector<vsim::PerfCounters>* profilers) {
  if (profilers == nullptr) return;
  profilers->clear();
  profilers->resize(system.num_cores());
  for (u32 c = 0; c < system.num_cores(); ++c) {
    system.attach_profiler(c, &(*profilers)[c]);
  }
}

}  // namespace

Coo spgemm_at_b_reference(const Coo& a, const Csr& b) {
  return dense_to_coo(spgemm_at_b_reference_dense(a, b), a.cols(), b.cols());
}

SpgemmResult run_hism_spgemm(const Coo& a, const Csr& b, const vsim::SystemConfig& config,
                             std::vector<vsim::PerfCounters>* profilers) {
  const auto program =
      vsim::ProgramCache::instance().get(hism_spgemm_source(config.core.section));
  vsim::MultiCoreSystem system(config);
  const SpgemmLayout layout = stage_spgemm(system, a, b);
  attach_profilers(system, profilers);

  SpgemmResult result;
  result.stats = system.run(*program);
  result.rows = layout.n;
  result.cols = layout.p;
  result.dense.resize(static_cast<usize>(layout.n) * layout.p);
  for (usize i = 0; i < result.dense.size(); ++i) {
    result.dense[i] = system.memory().read_f32(layout.c_base + 4 * i);
  }
  result.product = dense_to_coo(result.dense, layout.n, layout.p);
  return result;
}

vsim::SystemRunStats time_hism_spgemm(const Coo& a, const Csr& b,
                                      const vsim::SystemConfig& config,
                                      std::vector<vsim::PerfCounters>* profilers) {
  const auto program =
      vsim::ProgramCache::instance().get(hism_spgemm_source(config.core.section));
  vsim::MultiCoreSystem system(config);
  stage_spgemm(system, a, b);
  attach_profilers(system, profilers);
  return system.run(*program);
}

}  // namespace smtu::kernels
