// Sparse matrix-matrix multiplication C = A^T * B on the (multi-core)
// vector machine: row-wise Gustavson driven by the STM.
//
// Gustavson's algorithm forms row i of C as a sum of scaled rows of B:
// C[i,:] += A^T[i,k] * B[k,:]. The catch is that A is stored by rows (of A),
// so A^T's rows are scattered. HiSM dissolves this: the kernel walks A's
// block hierarchy, pushes every level-0 block through the s x s transpose
// memory, and the column-wise drain hands back the block's entries sorted
// by (column of A, row of A) = (i, k) — exactly the access pattern
// Gustavson needs — without ever materializing A^T.
//
// Each drained entry (i, k, a) then merges a * B[k,:] into the dense
// accumulator row C[i,:] with one gather-free vector pass: v_ld of B's
// column indices and values, v_fmul by the broadcast scalar, and the
// indexed scatter-accumulate v_scax into C[i,:].
//
// Cores partition the output rows i (s-aligned stripes, nnz-balanced); the
// shared walk is replicated and blocks outside a core's stripe are pruned
// by their column span. Because blocks are visited row-major and the drain
// is (i, k)-sorted, every C[i,j] accumulates its k-terms in ascending-k
// order on every core count — bit-identical to the host reference.
#pragma once

#include <string>
#include <vector>

#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "vsim/system.hpp"

namespace smtu::kernels {

// SPMD kernel source; `section` must be a power of two (span arithmetic
// uses shifts, as in the HiSM SpMV walk).
std::string hism_spgemm_source(u32 section);

struct SpgemmResult {
  vsim::SystemRunStats stats;
  Index rows = 0;              // n = a.cols()
  Index cols = 0;              // p = b.cols()
  std::vector<float> dense;    // row-major n x p accumulator read-back
  Coo product;                 // dense with exact zeros dropped, canonical
};

// Host-side reference with the kernel's exact accumulation order (per output
// row i, ascending k; per term, B's row order): the kernel result must be
// bit-identical to this at any core count.
std::vector<float> spgemm_at_b_reference_dense(const Coo& a, const Csr& b);
Coo spgemm_at_b_reference(const Coo& a, const Csr& b);

// Runs C = A^T * B. A is staged as a HiSM image (section taken from the
// machine config), B as CRS arrays, C as a zeroed dense n x p buffer.
SpgemmResult run_hism_spgemm(const Coo& a, const Csr& b, const vsim::SystemConfig& config,
                             std::vector<vsim::PerfCounters>* profilers = nullptr);

// Timing-only variant (no result read-back) for the bench harness.
vsim::SystemRunStats time_hism_spgemm(const Coo& a, const Csr& b,
                                      const vsim::SystemConfig& config,
                                      std::vector<vsim::PerfCounters>* profilers = nullptr);

}  // namespace smtu::kernels
