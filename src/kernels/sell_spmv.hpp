// SELL-C-σ SpMV on the (multi-core) vector machine.
//
// One chunk of C rows maps to C vector lanes: the kernel streams the chunk's
// value/column slices lane-major, gathers x by column index, accumulates one
// partial sum per lane, and scatters the results through the permutation
// vector. There is no per-row control flow, so short irregular rows cost a
// fraction of the CRS kernel's per-row strip-mining overhead.
//
// The accumulation order per row is ascending-column, one f32 add per slot —
// exactly Csr::spmv — and padding slots contribute a signed zero that never
// changes the accumulator bits, so the result is bit-identical to the host
// CSR reference at any core count.
#pragma once

#include <string>
#include <vector>

#include "formats/sell.hpp"
#include "vsim/system.hpp"

namespace smtu::kernels {

// SPMD program; requires the format's chunk height C <= machine section.
std::string sell_spmv_source();

struct SellSpmvResult {
  vsim::SystemRunStats stats;
  std::vector<float> y;
};

// Runs y = A x with chunks distributed over the system's cores, balanced by
// stored slots. N = 1 reproduces the single-core machine bit for bit.
SellSpmvResult run_sell_spmv(const SellCSigma& sell, const std::vector<float>& x,
                             const vsim::SystemConfig& config,
                             std::vector<vsim::PerfCounters>* profilers = nullptr);

// Timing-only variant (no result read-back) for the bench harness.
vsim::SystemRunStats time_sell_spmv(const SellCSigma& sell, const std::vector<float>& x,
                                    const vsim::SystemConfig& config,
                                    std::vector<vsim::PerfCounters>* profilers = nullptr);

}  // namespace smtu::kernels
