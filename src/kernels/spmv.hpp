// Sparse matrix-vector multiplication kernels for the simulated vector
// processor — the operation that motivates HiSM in the first place (the
// companion paper [5] reports up to 5x over JD and CRS on a conventional
// vector machine).
//
// Three implementations, all as real assembly programs:
//   * HiSM: recursive block walk; per level-0 block, v_ldb streams entries,
//     v_gthc gathers x by the 8-bit column positions, v_scar accumulates
//     into y by the row positions (the positional multiply-accumulate of
//     the HiSM ISA extension).
//   * CRS: per-row gather of x by JA, vector multiply, float reduction, and
//     a scalar accumulate across strips.
//   * JD : per-jagged-diagonal fully contiguous accumulation into the
//     permuted result, one gather of x per diagonal strip, plus a final
//     unpermute scatter.
#pragma once

#include <string>
#include <vector>

#include "formats/csr.hpp"
#include "formats/jagged.hpp"
#include "hism/hism.hpp"
#include "vsim/machine.hpp"

namespace smtu::kernels {

// Kernel sources (section must be a power of two for the HiSM kernel's
// span arithmetic).
std::string hism_spmv_source(u32 section);
std::string crs_spmv_source();
std::string jd_spmv_source();

struct SpmvResult {
  vsim::RunStats stats;
  std::vector<float> y;  // read back from simulated memory
};

SpmvResult run_hism_spmv(const HismMatrix& hism, const std::vector<float>& x,
                         const vsim::MachineConfig& config);

// y = A^T * x *without transposing*: the same block stream drives
// y[col] += value * x[row] via the mirror positional ops (v_gthr/v_scac).
// This is a structural consequence of HiSM's symmetric 8+8-bit positions —
// CRS has no cheap equivalent (its column indices are one-sided).
std::string hism_spmv_transposed_source(u32 section);
SpmvResult run_hism_spmv_transposed(const HismMatrix& hism, const std::vector<float>& x,
                                    const vsim::MachineConfig& config);
SpmvResult run_crs_spmv(const Csr& csr, const std::vector<float>& x,
                        const vsim::MachineConfig& config);
SpmvResult run_jd_spmv(const Jagged& jd, const std::vector<float>& x,
                       const vsim::MachineConfig& config);

}  // namespace smtu::kernels
