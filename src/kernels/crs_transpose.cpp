#include "kernels/crs_transpose.hpp"

#include <sstream>

#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

std::string crs_transpose_source(u32 section, const CrsKernelOptions& options) {
  SMTU_CHECK_MSG(is_pow2(section), "CRS kernel strip-mining requires a power-of-two section");
  const u32 short_row_threshold = options.short_row_threshold;

  std::ostringstream out;
  // Host register convention:
  //   r1 &AN  r2 &JA  r3 &IA  r4 &ANT  r5 &JAT  r6 &IAT  r7 rows  r8 cols  r9 nnz
  out << R"asm(
main:
    # ---- phase 0: initialize IAT[0..cols] to zero ----------------------
;; profile: phase0_zero
    v_bcasti vr0, 0
    addi  r10, r8, 1
    mv    r11, r6
z_loop:
    setvl r12, r10
    sub   r10, r10, r12
    v_st  vr0, (r11)
    slli  r13, r12, 2
    add   r11, r11, r13
    bne   r10, r0, z_loop
)asm";
  if (options.masked_phase1) {
    out << R"asm(
    # ---- phase 1, mask-vector variant (§IV-A, rejected by the authors):
    # for every column i, compare all of JA against i and sum the mask.
;; profile: phase1_histogram
    li    r10, 0                 # column i
m1_col:
    bge   r10, r8, h_done
    li    r13, 0                 # count
    mv    r11, r2                # &JA
    mv    r12, r9                # nnz remaining
m1_scan:
    beq   r12, r0, m1_store
    setvl r14, r12
    sub   r12, r12, r14
    v_ld  vr0, (r11)
    v_seqs vr1, vr0, r10         # M_i[j] = (JA[j] == i)
    v_redsum r15, vr1
    add   r13, r13, r15
    slli  r16, r14, 2
    add   r11, r11, r16
    beq   r0, r0, m1_scan
m1_store:
    addi  r16, r10, 1
    slli  r16, r16, 2
    add   r16, r16, r6
    sw    r13, (r16)             # IAT[i + 1] = count
    addi  r10, r10, 1
    beq   r0, r0, m1_col
h_done:
)asm";
  } else {
    out << R"asm(
    # ---- phase 1 (Fig. 9 lines 1-2): per-column counts, scalar code ----
    # IAT[col + 1]++ for every non-zero; runs on the 4-way scalar core as
    # in the paper (the mask-vector scheme is inefficient on sparse data).
;; profile: phase1_histogram
    mv    r10, r2
    mv    r11, r9
    beq   r11, r0, h_done
h_loop:
    lw    r12, (r10)
    slli  r12, r12, 2
    add   r12, r12, r6
    lw    r13, 4(r12)
    addi  r13, r13, 1
    sw    r13, 4(r12)
    addi  r10, r10, 4
    addi  r11, r11, -1
    bne   r11, r0, h_loop
h_done:
)asm";
  }
  out << R"asm(

    # ---- phase 2 (Fig. 9 line 3): vectorized inclusive scan-add --------
    # Log-step slide-and-add within each strip (Wang et al.), carry in r14.
;; profile: phase2_scan
    li    r14, 0
    addi  r10, r8, 1
    mv    r11, r6
s_loop:
    setvl r12, r10
    sub   r10, r10, r12
    v_ld  vr1, (r11)
)asm";
  for (u32 shift = 1; shift < section; shift *= 2) {
    out << "    v_slideup vr2, vr1, " << shift << "\n";
    out << "    v_add vr1, vr1, vr2\n";
  }
  out << R"asm(
    v_adds vr1, vr1, r14
    v_st  vr1, (r11)
    addi  r13, r12, -1
    v_extract r14, vr1, r13
    slli  r13, r12, 2
    add   r11, r11, r13
    bne   r10, r0, s_loop

    # ---- phase 3 (Fig. 9 lines 4-13): vectorized permutation loop ------
;; profile: phase3_permute
    li    r10, 0
p3_row:
    bge   r10, r7, p3_done
    slli  r15, r10, 2
    add   r15, r15, r3
    lw    r16, (r15)             # iaa = IA(i)        (line 5)
    lw    r17, 4(r15)            # iab = IA(i+1)      (line 5)
    sub   r18, r17, r16
    beq   r18, r0, p3_next
    slli  r19, r16, 2
    add   r20, r2, r19           # &JA[iaa]
    add   r21, r1, r19           # &AN[iaa]
)asm";
  if (short_row_threshold > 0) {
    out << "    li    r24, " << short_row_threshold << "\n";
    out << "    blt   r18, r24, p3_scalar\n";
  }
  out << R"asm(
p3_seg:
    setvl r22, r18
    sub   r18, r18, r22
    v_ld  vr0, (r20)             # j  = JA slice      (line 7)
    v_ld_idx vr1, (r6), vr0      # k  = IAT(j)        (line 8)
    v_bcast vr2, r10             # i
    v_st_idx vr2, (r5), vr1      # JAT(k) = i         (line 9)
    v_ld  vr3, (r21)             # AN slice
    v_st_idx vr3, (r4), vr1      # ANT(k) = AN(jp)    (line 10)
    v_add_imm vr1, vr1, 1
    v_st_idx vr1, (r6), vr0      # IAT(j) = k + 1     (line 11)
    slli  r23, r22, 2
    add   r20, r20, r23
    add   r21, r21, r23
    bne   r18, r0, p3_seg
    beq   r0, r0, p3_next
)asm";
  if (short_row_threshold > 0) {
    out << R"asm(
;; profile: phase3_short_rows
p3_scalar:
    # Short rows element by element on the scalar core: a 1-3 element
    # gather/scatter sequence would pay four 20-cycle vector startups.
p3s_loop:
    lw    r22, (r20)             # j = JA[jp]
    slli  r23, r22, 2
    add   r23, r23, r6           # &IAT[j]
    lw    r25, (r23)             # k
    slli  r26, r25, 2
    add   r27, r26, r5
    sw    r10, (r27)             # JAT[k] = i
    add   r27, r26, r4
    lw    r28, (r21)
    sw    r28, (r27)             # ANT[k] = AN[jp]
    addi  r25, r25, 1
    sw    r25, (r23)             # IAT[j] = k + 1
    addi  r20, r20, 4
    addi  r21, r21, 4
    addi  r18, r18, -1
    bne   r18, r0, p3s_loop
)asm";
  }
  out << R"asm(
;; profile: phase3_permute
p3_next:
    addi  r10, r10, 1
    beq   r0, r0, p3_row
p3_done:

    # ---- restore IAT from row ends to row starts ------------------------
    # The in-place cursor update leaves IAT[j] = start of row j+1; shift
    # right by one strip-by-strip from the top, then IAT[0] = 0.
;; profile: restore_iat
    mv    r10, r8
r_loop:
    beq   r10, r0, r_done
    addi  r11, r10, -1
)asm";
  out << "    andi  r12, r11, " << (section - 1) << "\n";
  out << R"asm(
    addi  r12, r12, 1            # tail chunk size
    sub   r10, r10, r12
    setvl r13, r12
    slli  r14, r10, 2
    add   r14, r14, r6
    v_ld  vr1, (r14)
    v_st  vr1, 4(r14)
    beq   r0, r0, r_loop
r_done:
    sw    r0, (r6)
    halt
)asm";
  return out.str();
}

const std::string& scalar_crs_transpose_source() {
  // Same register convention as the vector kernel:
  //   r1 &AN  r2 &JA  r3 &IA  r4 &ANT  r5 &JAT  r6 &IAT  r7 rows  r8 cols  r9 nnz
  static const std::string source = R"asm(
main:
    # ---- zero IAT[0..cols] ---------------------------------------------
;; profile: zero_iat
    mv    r10, r6
    addi  r11, r8, 1
sz_loop:
    beq   r11, r0, sz_done
    sw    r0, (r10)
    addi  r10, r10, 4
    addi  r11, r11, -1
    beq   r0, r0, sz_loop
sz_done:

    # ---- per-column counts: IAT[col + 1]++ ------------------------------
;; profile: histogram
    mv    r10, r2
    mv    r11, r9
sh_loop:
    beq   r11, r0, sh_done
    lw    r12, (r10)
    slli  r12, r12, 2
    add   r12, r12, r6
    lw    r13, 4(r12)
    addi  r13, r13, 1
    sw    r13, 4(r12)
    addi  r10, r10, 4
    addi  r11, r11, -1
    beq   r0, r0, sh_loop
sh_done:

    # ---- inclusive scan over IAT[0..cols] -------------------------------
;; profile: scan
    addi  r12, r8, 1             # index bound
    li    r10, 1
    lw    r11, (r6)              # running sum = IAT[0]
ss_body:
    bge   r10, r12, ss_done
    slli  r13, r10, 2
    add   r13, r13, r6
    lw    r14, (r13)
    add   r11, r11, r14
    sw    r11, (r13)
    addi  r10, r10, 1
    beq   r0, r0, ss_body
ss_done:

    # ---- permutation pass (Fig. 9 lines 4-13), element by element -------
;; profile: permute
    li    r10, 0                 # i
sp_row:
    bge   r10, r7, sp_done
    slli  r15, r10, 2
    add   r15, r15, r3
    lw    r16, (r15)             # iaa
    lw    r17, 4(r15)            # iab
    sub   r18, r17, r16
    beq   r18, r0, sp_next
    slli  r19, r16, 2
    add   r20, r2, r19           # &JA[iaa]
    add   r21, r1, r19           # &AN[iaa]
sp_elem:
    lw    r22, (r20)             # j
    slli  r23, r22, 2
    add   r23, r23, r6
    lw    r25, (r23)             # k = IAT[j]
    slli  r26, r25, 2
    add   r27, r26, r5
    sw    r10, (r27)             # JAT[k] = i
    add   r27, r26, r4
    lw    r28, (r21)
    sw    r28, (r27)             # ANT[k] = AN[jp]
    addi  r25, r25, 1
    sw    r25, (r23)             # IAT[j] = k + 1
    addi  r20, r20, 4
    addi  r21, r21, 4
    addi  r18, r18, -1
    bne   r18, r0, sp_elem
sp_next:
    addi  r10, r10, 1
    beq   r0, r0, sp_row
sp_done:

    # ---- restore IAT to row starts: shift right, descending -------------
;; profile: restore_iat
    mv    r10, r8                # j = cols .. 1
sr_loop:
    beq   r10, r0, sr_done
    slli  r11, r10, 2
    add   r11, r11, r6           # &IAT[j]
    lw    r12, -4(r11)           # IAT[j-1]
    sw    r12, (r11)
    addi  r10, r10, -1
    beq   r0, r0, sr_loop
sr_done:
    sw    r0, (r6)
    halt
)asm";
  return source;
}

namespace {

void set_entry_sregs(vsim::Machine& machine, const CrsImage& image) {
  machine.set_sreg(1, image.an);
  machine.set_sreg(2, image.ja);
  machine.set_sreg(3, image.ia);
  machine.set_sreg(4, image.ant);
  machine.set_sreg(5, image.jat);
  machine.set_sreg(6, image.iat);
  machine.set_sreg(7, image.rows);
  machine.set_sreg(8, image.cols);
  machine.set_sreg(9, image.nnz);
}

vsim::Machine make_machine_with_image(const Csr& csr, const vsim::MachineConfig& config,
                                      CrsImage& image) {
  vsim::Machine machine(config);
  image = stage_crs(machine, csr);
  set_entry_sregs(machine, image);
  return machine;
}

vsim::Machine make_machine_with_stage(const CrsStage& stage,
                                      const vsim::MachineConfig& config) {
  vsim::Machine machine(config);
  machine.memory().attach_base(stage.snapshot);
  set_entry_sregs(machine, stage.image);
  return machine;
}

std::shared_ptr<const vsim::Program> vector_program(u32 section,
                                                    const CrsKernelOptions& options) {
  return vsim::ProgramCache::instance().get(crs_transpose_source(section, options));
}

std::shared_ptr<const vsim::Program> scalar_program() {
  return vsim::ProgramCache::instance().get(scalar_crs_transpose_source());
}

}  // namespace

CrsTransposeResult run_crs_transpose(const Csr& csr, const vsim::MachineConfig& config,
                                     const CrsKernelOptions& options,
                                     vsim::PerfCounters* profiler) {
  const auto program = vector_program(config.section, options);
  CrsImage image;
  vsim::Machine machine = make_machine_with_image(csr, config, image);
  machine.attach_profiler(profiler);
  CrsTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = read_back_crs_transpose(machine, image);
  return result;
}

vsim::RunStats time_crs_transpose(const Csr& csr, const vsim::MachineConfig& config,
                                  const CrsKernelOptions& options,
                                  vsim::PerfCounters* profiler) {
  const auto program = vector_program(config.section, options);
  CrsImage image;
  vsim::Machine machine = make_machine_with_image(csr, config, image);
  machine.attach_profiler(profiler);
  return machine.run(*program);
}

CrsTransposeResult run_scalar_crs_transpose(const Csr& csr,
                                            const vsim::MachineConfig& config,
                                            vsim::PerfCounters* profiler) {
  const auto program = scalar_program();
  CrsImage image;
  vsim::Machine machine = make_machine_with_image(csr, config, image);
  machine.attach_profiler(profiler);
  CrsTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = read_back_crs_transpose(machine, image);
  return result;
}

vsim::RunStats time_scalar_crs_transpose(const Csr& csr, const vsim::MachineConfig& config,
                                         vsim::PerfCounters* profiler) {
  const auto program = scalar_program();
  CrsImage image;
  vsim::Machine machine = make_machine_with_image(csr, config, image);
  machine.attach_profiler(profiler);
  return machine.run(*program);
}

CrsTransposeResult run_crs_transpose(const CrsStage& stage, const vsim::MachineConfig& config,
                                     const CrsKernelOptions& options,
                                     vsim::PerfCounters* profiler) {
  const auto program = vector_program(config.section, options);
  vsim::Machine machine = make_machine_with_stage(stage, config);
  machine.attach_profiler(profiler);
  CrsTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = read_back_crs_transpose(machine, stage.image);
  return result;
}

vsim::RunStats time_crs_transpose(const CrsStage& stage, const vsim::MachineConfig& config,
                                  const CrsKernelOptions& options,
                                  vsim::PerfCounters* profiler) {
  const auto program = vector_program(config.section, options);
  vsim::Machine machine = make_machine_with_stage(stage, config);
  machine.attach_profiler(profiler);
  return machine.run(*program);
}

CrsTransposeResult run_scalar_crs_transpose(const CrsStage& stage,
                                            const vsim::MachineConfig& config,
                                            vsim::PerfCounters* profiler) {
  const auto program = scalar_program();
  vsim::Machine machine = make_machine_with_stage(stage, config);
  machine.attach_profiler(profiler);
  CrsTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = read_back_crs_transpose(machine, stage.image);
  return result;
}

vsim::RunStats time_scalar_crs_transpose(const CrsStage& stage,
                                         const vsim::MachineConfig& config,
                                         vsim::PerfCounters* profiler) {
  const auto program = scalar_program();
  vsim::Machine machine = make_machine_with_stage(stage, config);
  machine.attach_profiler(profiler);
  return machine.run(*program);
}

}  // namespace smtu::kernels
