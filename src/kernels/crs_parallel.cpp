#include "kernels/crs_parallel.hpp"

#include <algorithm>

#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

std::string parallel_crs_transpose_source() {
  // Per-core descriptor, r20 (host-staged u32 fields):
  //   +0  AN   +4  JA   +8  IA   +12 ANT   +16 JAT   +20 IAT
  //   +24 COUNT (u32 per column, scratch)
  //   +28 SLOT  (u32 per non-zero: within-column slot from phase 1)
  //   +32 row_lo    +36 row_hi     (phase 3 row range, nnz-balanced)
  //   +40 nnz_lo    +44 nnz_hi     (phase 1 non-zero slice)
  //   +48 col_lo    +52 col_hi     (phase 0/2 column slice)
  //   +56 PARTIAL (u32 per core)   +60 core id   +64 cols
  return R"asm(
main:
;; profile: p0_zero
    lw    r1, 24(r20)            # COUNT
    lw    r2, 48(r20)            # col_lo
    lw    r3, 52(r20)            # col_hi
    sub   r4, r3, r2             # columns in this slice
    slli  r5, r2, 2
    add   r5, r1, r5             # &COUNT[col_lo]
p0_loop:
    beq   r4, r0, p0_done
    setvl r6, r4
    v_bcasti vr1, 0
    v_st  vr1, (r5)
    sub   r4, r4, r6
    slli  r7, r6, 2
    add   r5, r5, r7
    beq   r0, r0, p0_loop
p0_done:
    barrier
;; profile: p1_histogram
    lw    r1, 4(r20)             # JA
    lw    r2, 24(r20)            # COUNT
    lw    r3, 28(r20)            # SLOT
    lw    r4, 40(r20)            # k = nnz_lo
    lw    r5, 44(r20)            # nnz_hi
    li    r9, 1
p1_loop:
    bge   r4, r5, p1_done
    slli  r6, r4, 2
    add   r7, r1, r6
    lw    r7, (r7)               # j = JA[k]
    slli  r7, r7, 2
    add   r7, r2, r7
    amo_add r8, r9, (r7)         # old count of column j
    add   r10, r3, r6
    sw    r8, (r10)              # SLOT[k]: this element's slot in column j
    addi  r4, r4, 1
    beq   r0, r0, p1_loop
p1_done:
    barrier
;; profile: p2_scan
    lw    r1, 24(r20)            # COUNT
    lw    r2, 48(r20)
    lw    r3, 52(r20)
    sub   r4, r3, r2
    slli  r5, r2, 2
    add   r5, r1, r5
    li    r8, 0                  # slice total
p2a_loop:
    beq   r4, r0, p2a_done
    setvl r6, r4
    v_ld  vr1, (r5)
    v_redsum r7, vr1
    add   r8, r8, r7
    sub   r4, r4, r6
    slli  r9, r6, 2
    add   r5, r5, r9
    beq   r0, r0, p2a_loop
p2a_done:
    lw    r9, 56(r20)            # PARTIAL
    lw    r10, 60(r20)           # core id
    slli  r11, r10, 2
    add   r11, r9, r11
    sw    r8, (r11)              # PARTIAL[core] = slice total
    barrier
    li    r8, 0                  # offset = total of earlier slices
    li    r11, 0
p2b_sum:
    bge   r11, r10, p2b_scan
    slli  r12, r11, 2
    add   r12, r9, r12
    lw    r12, (r12)
    add   r8, r8, r12
    addi  r11, r11, 1
    beq   r0, r0, p2b_sum
p2b_scan:
    lw    r6, 20(r20)            # IAT
    lw    r2, 48(r20)            # j = col_lo
    lw    r3, 52(r20)            # col_hi
p2b_loop:
    bge   r2, r3, p2b_tail
    slli  r12, r2, 2
    add   r13, r6, r12
    sw    r8, (r13)              # IAT[j] = running exclusive prefix
    add   r14, r1, r12
    lw    r14, (r14)             # COUNT[j]
    add   r8, r8, r14
    addi  r2, r2, 1
    beq   r0, r0, p2b_loop
p2b_tail:
    lw    r15, 64(r20)           # cols
    bne   r3, r15, p2b_done
    slli  r12, r3, 2
    add   r13, r6, r12
    sw    r8, (r13)              # the last slice closes IAT[cols] = nnz
p2b_done:
    barrier
;; profile: p3_scatter
    lw    r1, 0(r20)             # AN
    lw    r2, 4(r20)             # JA
    lw    r3, 8(r20)             # IA
    lw    r4, 12(r20)            # ANT
    lw    r5, 16(r20)            # JAT
    lw    r6, 20(r20)            # IAT
    lw    r7, 28(r20)            # SLOT
    lw    r8, 32(r20)            # i = row_lo
    lw    r9, 36(r20)            # row_hi
p3_row:
    bge   r8, r9, p3_done
    slli  r10, r8, 2
    add   r11, r3, r10
    lw    r12, (r11)             # k = IA[i]
    lw    r13, 4(r11)            # IA[i+1]
p3_elem:
    bge   r12, r13, p3_next_row
    slli  r14, r12, 2
    add   r15, r2, r14
    lw    r15, (r15)             # j = JA[k]
    slli  r15, r15, 2
    add   r15, r6, r15
    lw    r15, (r15)             # IAT[j]
    add   r16, r7, r14
    lw    r16, (r16)             # SLOT[k]
    add   r15, r15, r16          # dst = IAT[j] + SLOT[k]
    slli  r15, r15, 2
    add   r16, r1, r14
    lw    r16, (r16)             # AN[k]
    add   r17, r4, r15
    sw    r16, (r17)             # ANT[dst]
    add   r17, r5, r15
    sw    r8, (r17)              # JAT[dst] = i
    addi  r12, r12, 1
    beq   r0, r0, p3_elem
p3_next_row:
    addi  r8, r8, 1
    beq   r0, r0, p3_row
p3_done:
    barrier
    halt
)asm";
}

namespace {

CrsImage stage_parallel_crs(vsim::MultiCoreSystem& system, const Csr& csr) {
  const u32 cores = system.num_cores();
  vsim::Memory& mem = system.memory();

  std::vector<u8> bytes;
  const CrsImage image = build_crs_image(csr, kImageBase, bytes);
  mem.write_block(kImageBase, bytes);

  // Scratch arrays past the image: COUNT, SLOT, PARTIAL, descriptors.
  const u64 cols = image.cols;
  const u64 rows = image.rows;
  const u64 nnz = image.nnz;
  const Addr count = round_up(image.end, 16);
  const Addr slot = round_up(count + 4 * cols, 16);
  const Addr partial = round_up(slot + 4 * nnz, 16);
  const Addr desc_base = round_up(partial + 4ull * cores, 16);
  mem.write_block(count, std::vector<u8>(desc_base - count, 0));

  // Phase-3 row ranges cut where the running non-zero count passes each
  // core's share, so scatter work balances even with skewed rows.
  const std::vector<u32>& row_ptr = csr.row_ptr();
  std::vector<u64> row_cut(cores + 1, 0);
  row_cut[cores] = rows;
  for (u32 c = 1; c < cores; ++c) {
    const u32 target = static_cast<u32>(nnz * c / cores);
    row_cut[c] = static_cast<u64>(
        std::lower_bound(row_ptr.begin(), row_ptr.end(), target) - row_ptr.begin());
    row_cut[c] = std::min<u64>(row_cut[c], rows);
    row_cut[c] = std::max(row_cut[c], row_cut[c - 1]);
  }

  for (u32 c = 0; c < cores; ++c) {
    const Addr desc = desc_base + 96ull * c;
    mem.write_u32(desc + 0, static_cast<u32>(image.an));
    mem.write_u32(desc + 4, static_cast<u32>(image.ja));
    mem.write_u32(desc + 8, static_cast<u32>(image.ia));
    mem.write_u32(desc + 12, static_cast<u32>(image.ant));
    mem.write_u32(desc + 16, static_cast<u32>(image.jat));
    mem.write_u32(desc + 20, static_cast<u32>(image.iat));
    mem.write_u32(desc + 24, static_cast<u32>(count));
    mem.write_u32(desc + 28, static_cast<u32>(slot));
    mem.write_u32(desc + 32, static_cast<u32>(row_cut[c]));
    mem.write_u32(desc + 36, static_cast<u32>(row_cut[c + 1]));
    mem.write_u32(desc + 40, static_cast<u32>(nnz * c / cores));
    mem.write_u32(desc + 44, static_cast<u32>(nnz * (c + 1) / cores));
    mem.write_u32(desc + 48, static_cast<u32>(cols * c / cores));
    mem.write_u32(desc + 52, static_cast<u32>(cols * (c + 1) / cores));
    mem.write_u32(desc + 56, static_cast<u32>(partial));
    mem.write_u32(desc + 60, c);
    mem.write_u32(desc + 64, static_cast<u32>(cols));
    system.core(c).set_sreg(20, desc);
  }
  return image;
}

void attach_profilers(vsim::MultiCoreSystem& system,
                      std::vector<vsim::PerfCounters>* profilers) {
  if (profilers == nullptr) return;
  profilers->clear();
  profilers->resize(system.num_cores());
  for (u32 c = 0; c < system.num_cores(); ++c) {
    system.attach_profiler(c, &(*profilers)[c]);
  }
}

}  // namespace

ParallelCrsTransposeResult run_parallel_crs_transpose(
    const Csr& csr, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers) {
  const auto program = vsim::ProgramCache::instance().get(parallel_crs_transpose_source());
  vsim::MultiCoreSystem system(config);
  const CrsImage image = stage_parallel_crs(system, csr);
  attach_profilers(system, profilers);

  ParallelCrsTransposeResult result;
  result.stats = system.run(*program);
  result.transposed = read_back_crs_transpose(system.memory(), image);
  result.transposed.canonicalize();
  return result;
}

vsim::SystemRunStats time_parallel_crs_transpose(
    const Csr& csr, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers) {
  const auto program = vsim::ProgramCache::instance().get(parallel_crs_transpose_source());
  vsim::MultiCoreSystem system(config);
  stage_parallel_crs(system, csr);
  attach_profilers(system, profilers);
  return system.run(*program);
}

}  // namespace smtu::kernels
