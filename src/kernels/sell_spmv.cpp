#include "kernels/sell_spmv.hpp"

#include <algorithm>
#include <bit>

#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

std::string sell_spmv_source() {
  // Per-core descriptor, r20 (host-staged u32 fields):
  //   +0  VALS   +4  COLS   +8  WIDTHS   +12 CPTR   +16 PERM
  //   +20 X      +24 Y
  //   +28 chunk_lo   +32 chunk_hi   +36 rows   +40 C (chunk height)
  //
  // Per chunk the active lane count is min(C, rows - c*C): the format pads
  // the permutation tail with kPadRow, and clipping vl keeps those lanes
  // out of the final scatter. Padding *slots* inside the chunk need no
  // masking at all — they multiply x[0] by +0.0f, which never changes the
  // accumulator bits.
  return R"asm(
main:
;; profile: sell_setup
    lw    r1, 0(r20)             # VALS
    lw    r2, 4(r20)             # COLS
    lw    r3, 8(r20)             # WIDTHS
    lw    r4, 12(r20)            # CPTR
    lw    r5, 16(r20)            # PERM
    lw    r6, 20(r20)            # X
    lw    r7, 24(r20)            # Y
    lw    r8, 28(r20)            # c = chunk_lo
    lw    r9, 32(r20)            # chunk_hi
    lw    r10, 36(r20)           # rows
    lw    r11, 40(r20)           # C
    slli  r21, r11, 2            # slice stride: 4 * C bytes
;; profile: sell_stream
chunk_loop:
    bge   r8, r9, done
    slli  r12, r8, 2
    add   r13, r3, r12
    lw    r13, (r13)             # width of this chunk
    add   r14, r4, r12
    lw    r14, (r14)             # first slot of this chunk
    mul   r15, r8, r11           # first (sorted) row of this chunk
    sub   r16, r10, r15          # rows from here to the matrix end
    min   r16, r16, r11
    setvl r17, r16               # vl = min(C, rows left): clip pad lanes
    slli  r18, r14, 2
    add   r19, r2, r18
    add   r18, r1, r18           # &VALS[slot] / &COLS[slot]
    v_bcasti vr1, 0              # one accumulator per lane (= per row)
    li    r22, 0                 # k = slice index
width_loop:
    bge   r22, r13, scatter
    v_ld  vr2, (r19)             # column slice k
    v_ldx vr3, (r6), vr2         # gather x[col]
    v_ld  vr4, (r18)             # value slice k
    v_fmul vr5, vr4, vr3
    v_fadd vr1, vr1, vr5         # acc += value * x[col]
    add   r18, r18, r21
    add   r19, r19, r21
    addi  r22, r22, 1
    beq   r0, r0, width_loop
scatter:
    slli  r23, r15, 2
    add   r23, r5, r23           # &PERM[c * C]
    v_ld  vr6, (r23)             # original row per lane
    v_stx vr1, (r7), vr6         # y[perm[p]] = acc
    addi  r8, r8, 1
    beq   r0, r0, chunk_loop
done:
    halt
)asm";
}

namespace {

void attach_profilers(vsim::MultiCoreSystem& system,
                      std::vector<vsim::PerfCounters>* profilers) {
  if (profilers == nullptr) return;
  profilers->clear();
  profilers->resize(system.num_cores());
  for (u32 c = 0; c < system.num_cores(); ++c) {
    system.attach_profiler(c, &(*profilers)[c]);
  }
}

struct SellLayout {
  Addr y = 0;
};

SellLayout stage_sell_spmv(vsim::MultiCoreSystem& system, const SellCSigma& sell,
                           const std::vector<float>& x) {
  SMTU_CHECK_MSG(sell.chunk() <= system.config().core.section,
                 "SELL chunk height exceeds the machine section");
  SMTU_CHECK(x.size() == static_cast<usize>(sell.cols()));
  const u32 cores = system.num_cores();
  vsim::Memory& mem = system.memory();

  const u64 slots = sell.values().size();
  const u64 nchunks = sell.num_chunks();
  const u64 padded_rows = sell.perm().size();

  const Addr vals = kImageBase;
  const Addr cols = round_up(vals + 4 * slots, 16);
  const Addr widths = round_up(cols + 4 * slots, 16);
  const Addr cptr = round_up(widths + 4 * nchunks, 16);
  const Addr perm = round_up(cptr + 4 * (nchunks + 1), 16);
  const Addr xb = round_up(perm + 4 * padded_rows, 16);
  const Addr yb = round_up(xb + 4 * x.size(), 16);
  const Addr desc_base = round_up(yb + 4 * sell.rows(), 16);

  std::vector<u8> bytes(desc_base - kImageBase, 0);
  const auto put_u32 = [&](Addr addr, u32 value) {
    const u64 off = addr - kImageBase;
    bytes[off] = static_cast<u8>(value);
    bytes[off + 1] = static_cast<u8>(value >> 8);
    bytes[off + 2] = static_cast<u8>(value >> 16);
    bytes[off + 3] = static_cast<u8>(value >> 24);
  };
  for (u64 i = 0; i < slots; ++i) {
    put_u32(vals + 4 * i, std::bit_cast<u32>(sell.values()[i]));
    put_u32(cols + 4 * i, sell.col_idx()[i]);
  }
  for (u64 c = 0; c < nchunks; ++c) put_u32(widths + 4 * c, sell.chunk_width()[c]);
  for (u64 c = 0; c <= nchunks; ++c) put_u32(cptr + 4 * c, sell.chunk_ptr()[c]);
  for (u64 i = 0; i < padded_rows; ++i) put_u32(perm + 4 * i, sell.perm()[i]);
  for (u64 i = 0; i < x.size(); ++i) put_u32(xb + 4 * i, std::bit_cast<u32>(x[i]));
  mem.write_block(kImageBase, bytes);

  // Chunk ranges cut where the running slot count passes each core's share,
  // so wide (long-row) chunks don't pile onto one core.
  const std::vector<u32>& chunk_ptr = sell.chunk_ptr();
  std::vector<u64> cut(cores + 1, 0);
  cut[cores] = nchunks;
  for (u32 c = 1; c < cores; ++c) {
    const u32 target = static_cast<u32>(slots * c / cores);
    cut[c] = static_cast<u64>(
        std::lower_bound(chunk_ptr.begin(), chunk_ptr.end(), target) - chunk_ptr.begin());
    cut[c] = std::min<u64>(cut[c], nchunks);
    cut[c] = std::max(cut[c], cut[c - 1]);
  }

  for (u32 c = 0; c < cores; ++c) {
    const Addr desc = desc_base + 64ull * c;
    mem.write_u32(desc + 0, static_cast<u32>(vals));
    mem.write_u32(desc + 4, static_cast<u32>(cols));
    mem.write_u32(desc + 8, static_cast<u32>(widths));
    mem.write_u32(desc + 12, static_cast<u32>(cptr));
    mem.write_u32(desc + 16, static_cast<u32>(perm));
    mem.write_u32(desc + 20, static_cast<u32>(xb));
    mem.write_u32(desc + 24, static_cast<u32>(yb));
    mem.write_u32(desc + 28, static_cast<u32>(cut[c]));
    mem.write_u32(desc + 32, static_cast<u32>(cut[c + 1]));
    mem.write_u32(desc + 36, sell.rows());
    mem.write_u32(desc + 40, sell.chunk());
    system.core(c).set_sreg(20, desc);
  }
  return SellLayout{yb};
}

}  // namespace

SellSpmvResult run_sell_spmv(const SellCSigma& sell, const std::vector<float>& x,
                             const vsim::SystemConfig& config,
                             std::vector<vsim::PerfCounters>* profilers) {
  const auto program = vsim::ProgramCache::instance().get(sell_spmv_source());
  vsim::MultiCoreSystem system(config);
  const SellLayout layout = stage_sell_spmv(system, sell, x);
  attach_profilers(system, profilers);

  SellSpmvResult result;
  result.stats = system.run(*program);
  result.y.resize(sell.rows());
  for (Index i = 0; i < sell.rows(); ++i) {
    result.y[i] = system.memory().read_f32(layout.y + 4ull * i);
  }
  return result;
}

vsim::SystemRunStats time_sell_spmv(const SellCSigma& sell, const std::vector<float>& x,
                                    const vsim::SystemConfig& config,
                                    std::vector<vsim::PerfCounters>* profilers) {
  const auto program = vsim::ProgramCache::instance().get(sell_spmv_source());
  vsim::MultiCoreSystem system(config);
  stage_sell_spmv(system, sell, x);
  attach_profilers(system, profilers);
  return system.run(*program);
}

}  // namespace smtu::kernels
