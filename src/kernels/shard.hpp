// Block-row sharding of a HiSM matrix across the cores of a multi-core
// system, and the SPMD parallel transpose built on it (docs/MULTICORE.md).
//
// The matrix is cut along *top-level block rows*: each panel owns a
// contiguous range of the root block-array's row coordinates, so every
// top-level entry — and with it the entire subtree below it — lands in
// exactly one panel. Each panel is serialized as a standalone HiSM image
// (global coordinates, the full matrix's declared dimensions, hence the
// same level count), each core runs the paper's recursive transpose on its
// panel in place, and after a barrier a scalar merge phase scatters the
// panels' transposed root entries into one merged root block-array at
// host-precomputed global ranks. Child pointers are absolute addresses
// (hism/image.hpp), so the merged root references the transposed panel
// subtrees where they already live — the merge copies only the root.
#pragma once

#include <string>
#include <vector>

#include "formats/coo.hpp"
#include "hism/hism.hpp"
#include "vsim/system.hpp"

namespace smtu::kernels {

// One core's panel: a standalone HiSM covering a contiguous range of
// top-level block rows (empty when the matrix has fewer useful block rows
// than the system has cores).
struct HismPanel {
  HismMatrix hism;        // valid only when nnz > 0
  u32 top_row_begin = 0;  // root-level row coordinate range [begin, end)
  u32 top_row_end = 0;
  usize nnz = 0;
};

struct HismShardPlan {
  std::vector<HismPanel> panels;  // one per core, in core order
  u32 levels = 0;                 // level count shared by all panels
};

// Cuts `coo` into `cores` panels along top-level block rows, balancing
// non-zeros greedily over contiguous block-row ranges.
HismShardPlan shard_hism(const Coo& coo, u32 section, u32 cores);

// The SPMD kernel source: per-core panel transpose (the unmodified
// recursive transpose_block of kernels/hism_transpose.cpp), a barrier,
// then the scalar root-merge scatter. Every core runs the same program;
// per-core panel descriptors arrive via r20.
std::string sharded_hism_transpose_source();

struct ShardedHismTransposeResult {
  vsim::SystemRunStats stats;
  Coo transposed;  // decoded from the merged image, canonical
};

// Shards `coo`, stages the panels in a fresh system, runs the SPMD kernel
// on all cores, and decodes the merged transposed matrix back. A non-null
// `profilers` is resized to the core count and profiler c attaches to
// core c (per-core cycle attribution; see docs/PROFILING.md).
ShardedHismTransposeResult run_sharded_hism_transpose(
    const Coo& coo, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers = nullptr);

// Cycle counts only (skips the decode for benchmark sweeps).
vsim::SystemRunStats time_sharded_hism_transpose(
    const Coo& coo, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers = nullptr);

}  // namespace smtu::kernels
