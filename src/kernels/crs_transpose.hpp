// The baseline: Pissanetsky's CRS transposition (Fig. 9 of the paper),
// vectorized exactly as §IV-A describes and run on the simulated vector
// processor *without* using the STM:
//
//   * Phase 1 (per-column counts) is executed as scalar code on the 4-way
//     issue core — the paper's authors explicitly chose not to vectorize it
//     because the mask-based vectorization is inefficient for sparse data.
//   * Phase 2 (scan-add over IAT) is vectorized with the log-step
//     slide-and-add scheme of Wang et al. [11], one scalar carry per strip.
//   * Phase 3 (the permutation loop nest) is vectorized per the paper's
//     pseudo-assembly: contiguous loads of JA/AN slices, a gather of the
//     IAT cursors, scatters into JAT/ANT, and a scattered cursor update.
//
// A final strip-mined pass restores IAT from row-ends to row-starts (the
// in-place cursor update of Fig. 9 leaves IAT shifted by one row).
#pragma once

#include <string>

#include "formats/csr.hpp"
#include "kernels/staging.hpp"
#include "vsim/machine.hpp"

namespace smtu::kernels {

struct CrsKernelOptions {
  // Rows with fewer non-zeros than this run through a scalar element loop
  // instead of the vector sequence — the standard hand-coding move on
  // vector machines, where a one-element gather still pays the full memory
  // startup. 0 disables the scalar path (the naive all-vector variant,
  // kept for the ablation benchmarks).
  u32 short_row_threshold = 4;
  // Phase 1 as the mask-vector scheme §IV-A describes and *rejects*: for
  // every column, compare the whole JA array against the column index
  // (v_seqs) and reduce the mask — O(cols * nnz / s) vector work. The
  // default is the scalar histogram the authors actually used; the masked
  // variant exists to reproduce their design decision quantitatively.
  bool masked_phase1 = false;
};

// Kernel source for a machine with section size `section` (a power of two;
// the strip-mining arithmetic uses section-sized masks and the scan uses
// log2(section) slide steps).
std::string crs_transpose_source(u32 section, const CrsKernelOptions& options = {});

// Pissanetsky's algorithm entirely in scalar code — what a traditional
// scalar processor runs. No vector unit, no STM; the comparison point for
// how much the vector machine itself buys before HiSM enters the picture.
const std::string& scalar_crs_transpose_source();

struct CrsTransposeResult {
  vsim::RunStats stats;
  Coo transposed;  // read back from simulated memory
};

// A non-null `profiler` receives cycle attribution for the run (see
// vsim/profiler.hpp and docs/PROFILING.md); counters are not reset first.
CrsTransposeResult run_crs_transpose(const Csr& csr, const vsim::MachineConfig& config,
                                     const CrsKernelOptions& options = {},
                                     vsim::PerfCounters* profiler = nullptr);

vsim::RunStats time_crs_transpose(const Csr& csr, const vsim::MachineConfig& config,
                                  const CrsKernelOptions& options = {},
                                  vsim::PerfCounters* profiler = nullptr);

CrsTransposeResult run_scalar_crs_transpose(const Csr& csr, const vsim::MachineConfig& config,
                                            vsim::PerfCounters* profiler = nullptr);
vsim::RunStats time_scalar_crs_transpose(const Csr& csr, const vsim::MachineConfig& config,
                                         vsim::PerfCounters* profiler = nullptr);

// Stage-based variants: the machine attaches the stage's shared snapshot
// copy-on-write instead of re-staging the image (kernels/staging.hpp).
CrsTransposeResult run_crs_transpose(const CrsStage& stage, const vsim::MachineConfig& config,
                                     const CrsKernelOptions& options = {},
                                     vsim::PerfCounters* profiler = nullptr);
vsim::RunStats time_crs_transpose(const CrsStage& stage, const vsim::MachineConfig& config,
                                  const CrsKernelOptions& options = {},
                                  vsim::PerfCounters* profiler = nullptr);
CrsTransposeResult run_scalar_crs_transpose(const CrsStage& stage,
                                            const vsim::MachineConfig& config,
                                            vsim::PerfCounters* profiler = nullptr);
vsim::RunStats time_scalar_crs_transpose(const CrsStage& stage,
                                         const vsim::MachineConfig& config,
                                         vsim::PerfCounters* profiler = nullptr);

}  // namespace smtu::kernels
