// The HiSM transposition kernel (Fig. 6/7 of the paper), hand-written in the
// vsim assembly language and executed on the simulated vector processor with
// the STM functional unit.
//
// The kernel is the paper's recursive transpose_block procedure with a real
// call stack in simulated memory. One deviation, forced by correctness and
// noted in DESIGN.md: for levels >= 1 the lengths-vector pass runs *before*
// the element pass (Fig. 6 lists it after). Both passes drain the s x s
// memory in the same order (they scatter the same positions), but the
// element pass rewrites the stored positions in place — running it first
// would leave the lengths pass without the original positions to scatter by.
// The lengths pass therefore goes first and stores only the permuted lengths
// (v_stbv), leaving positions for the element pass to consume and rewrite.
#pragma once

#include <string>

#include "hism/hism.hpp"
#include "kernels/staging.hpp"
#include "vsim/machine.hpp"

namespace smtu::kernels {

// The kernel source; independent of machine parameters (strip mining adapts
// via ssvl, recursion via the level argument).
//
// `split_drain_registers`: use vr3/vr4 for the drain loops instead of
// reusing vr1/vr2 — removes the write-after-read serialization between a
// block's drain and the next block's fill, which matters only on a
// double-buffered STM (StmConfig::double_buffer); the default matches the
// paper's Fig. 7 register usage.
std::string hism_transpose_source(bool split_drain_registers = false);

struct HismTransposeResult {
  vsim::RunStats stats;
  HismMatrix transposed;  // decoded back from simulated memory
};

// Stages `hism` in a fresh machine, runs the kernel, decodes the result.
// A non-null `trace` collects per-instruction timing events (see
// vsim/trace.hpp and docs/TRACE.md); the trace is not cleared first. A
// non-null `profiler` receives cycle attribution (vsim/profiler.hpp,
// docs/PROFILING.md); counters are not reset first.
HismTransposeResult run_hism_transpose(const HismMatrix& hism,
                                       const vsim::MachineConfig& config,
                                       bool split_drain_registers = false,
                                       vsim::ExecutionTrace* trace = nullptr,
                                       vsim::PerfCounters* profiler = nullptr);

// Cycle count only (skips the decode for benchmark sweeps).
vsim::RunStats time_hism_transpose(const HismMatrix& hism, const vsim::MachineConfig& config,
                                   bool split_drain_registers = false,
                                   vsim::ExecutionTrace* trace = nullptr,
                                   vsim::PerfCounters* profiler = nullptr);

// Stage-based variants: the machine attaches the stage's shared snapshot
// copy-on-write instead of re-staging the image (kernels/staging.hpp), so
// config sweeps over one matrix pay the image build once.
HismTransposeResult run_hism_transpose(const HismStage& stage,
                                       const vsim::MachineConfig& config,
                                       bool split_drain_registers = false,
                                       vsim::ExecutionTrace* trace = nullptr,
                                       vsim::PerfCounters* profiler = nullptr);
vsim::RunStats time_hism_transpose(const HismStage& stage, const vsim::MachineConfig& config,
                                   bool split_drain_registers = false,
                                   vsim::ExecutionTrace* trace = nullptr,
                                   vsim::PerfCounters* profiler = nullptr);

// Software-pipelined variant for the double-buffered STM (extension E4):
// while leaf child k drains from one bank, child k+1 fills the other.
// Requires config.stm.double_buffer.
std::string hism_transpose_pipelined_source();
HismTransposeResult run_hism_transpose_pipelined(const HismMatrix& hism,
                                                 const vsim::MachineConfig& config);
vsim::RunStats time_hism_transpose_pipelined(const HismMatrix& hism,
                                             const vsim::MachineConfig& config);

}  // namespace smtu::kernels
