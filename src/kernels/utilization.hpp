// STM buffer-bandwidth utilization analysis (§IV-C of the paper).
//
// Streams every block-array of a HiSM matrix through a cycle-accurate
// StmUnit, mimicking the transpose kernel's pass structure: one pass per
// level-0 block, two passes (lengths vector + elements) per higher-level
// block. Utilization counts element transfers (fill + drain) against
// cycles * B — the reading of the paper's BU = (Z/C)/B under which B = 1
// approaches 1.0 with only the 6-cycle block penalty missing (DESIGN.md §1).
#pragma once

#include "hism/hism.hpp"
#include "stm/unit.hpp"

namespace smtu::kernels {

struct UtilizationBreakdown {
  u64 transfers = 0;     // elements in + elements out, all passes
  u64 cycles = 0;        // fill + drain + pipeline tails, all passes
  u64 block_passes = 0;
  double utilization = 0.0;  // transfers / (cycles * B)
};

// The line sequences one block streams through the unit, which are all the
// timing model needs: payloads never affect cycles, and the lengths pass of
// a higher-level block touches the same positions as its elements pass.
// Extracting them once lets a (B, L) sweep reuse one trace per block
// instead of re-running the functional unit per configuration.
struct StmBlockTrace {
  std::vector<u8> fill_lines;   // storage-order rows (the fill stream)
  std::vector<u8> drain_lines;  // rows of the transposed drain order
  u32 passes = 1;               // 1 for level-0 blocks, 2 above (lengths + elements)
};

struct StmTraceSet {
  u32 section = 64;  // the matrix's s, overriding StmConfig::section
  std::vector<StmBlockTrace> blocks;
};

StmTraceSet stm_block_traces(const HismMatrix& hism);

// Identical numbers to the HismMatrix overload (which delegates here), at
// the cost of one stream pass per block pass instead of a full StmUnit run.
UtilizationBreakdown stm_utilization(const StmTraceSet& traces, const StmConfig& config);

UtilizationBreakdown stm_utilization(const HismMatrix& hism, const StmConfig& config);

}  // namespace smtu::kernels
