// STM buffer-bandwidth utilization analysis (§IV-C of the paper).
//
// Streams every block-array of a HiSM matrix through a cycle-accurate
// StmUnit, mimicking the transpose kernel's pass structure: one pass per
// level-0 block, two passes (lengths vector + elements) per higher-level
// block. Utilization counts element transfers (fill + drain) against
// cycles * B — the reading of the paper's BU = (Z/C)/B under which B = 1
// approaches 1.0 with only the 6-cycle block penalty missing (DESIGN.md §1).
#pragma once

#include "hism/hism.hpp"
#include "stm/unit.hpp"

namespace smtu::kernels {

struct UtilizationBreakdown {
  u64 transfers = 0;     // elements in + elements out, all passes
  u64 cycles = 0;        // fill + drain + pipeline tails, all passes
  u64 block_passes = 0;
  double utilization = 0.0;  // transfers / (cycles * B)
};

UtilizationBreakdown stm_utilization(const HismMatrix& hism, const StmConfig& config);

}  // namespace smtu::kernels
