#include "kernels/shard.hpp"

#include <algorithm>
#include <map>

#include "hism/image.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {
namespace {

// Level count covering the declared dimensions (q of §II: smallest q with
// s^q >= max(M, N), at least 1) and the row span of one top-level block.
void hierarchy_geometry(Index rows, Index cols, u32 section, u32* levels, u64* block_span) {
  const u64 max_dim = std::max<u64>({1, rows, cols});
  u32 q = 1;
  u64 span = section;
  while (span < max_dim) {
    span *= section;
    ++q;
  }
  *levels = q;
  *block_span = span / section;  // s^(q-1)
}

}  // namespace

HismShardPlan shard_hism(const Coo& coo, u32 section, u32 cores) {
  SMTU_CHECK(cores >= 1);
  u32 levels = 0;
  u64 block_span = 0;
  hierarchy_geometry(coo.rows(), coo.cols(), section, &levels, &block_span);

  const u64 num_top_rows = ceil_div(std::max<u64>(1, coo.rows()), block_span);
  std::vector<u64> top_row_nnz(num_top_rows, 0);
  for (const CooEntry& entry : coo.entries()) ++top_row_nnz[entry.row / block_span];

  // Greedy contiguous split: panel p ends once the running total reaches
  // p+1 shares of the non-zeros. Trailing empty block rows fold into the
  // last panel.
  HismShardPlan plan;
  plan.levels = levels;
  plan.panels.resize(cores);
  const u64 total = coo.nnz();
  u64 acc = 0;
  u64 row = 0;
  for (u32 p = 0; p < cores; ++p) {
    const u64 target = total * (p + 1) / cores;
    plan.panels[p].top_row_begin = static_cast<u32>(row);
    while (row < num_top_rows && acc < target) {
      acc += top_row_nnz[row];
      ++row;
    }
    plan.panels[p].top_row_end = static_cast<u32>(row);
  }
  plan.panels[cores - 1].top_row_end = static_cast<u32>(num_top_rows);

  // Panel COO keeps global coordinates and the full declared dimensions, so
  // every panel builds the same level count and root-level coordinates stay
  // directly mergeable.
  std::vector<Coo> panel_coo(cores, Coo(coo.rows(), coo.cols()));
  std::vector<u32> panel_of_top_row(num_top_rows, cores - 1);
  for (u32 p = 0; p < cores; ++p) {
    for (u64 r = plan.panels[p].top_row_begin; r < plan.panels[p].top_row_end; ++r) {
      panel_of_top_row[r] = p;
    }
  }
  for (const CooEntry& entry : coo.entries()) {
    panel_coo[panel_of_top_row[entry.row / block_span]].entries().push_back(entry);
  }
  for (u32 p = 0; p < cores; ++p) {
    plan.panels[p].nnz = panel_coo[p].nnz();
    if (plan.panels[p].nnz == 0) continue;
    plan.panels[p].hism = HismMatrix::from_coo(panel_coo[p], section);
    SMTU_CHECK_MSG(plan.panels[p].hism.num_levels() == levels,
                   "panel level count diverged from the full matrix");
  }
  return plan;
}

std::string sharded_hism_transpose_source() {
  // Per-core panel descriptor, r20 (host-staged, 9 u32 fields):
  //   +0  panel root address        +4  panel root length (0 = empty panel)
  //   +8  levels - 1                +12 panel root slot array
  //   +16 panel root lengths array (0 at level 0)
  //   +20 rank table (u32 global rank per transposed root entry)
  //   +24 merged position base      +28 merged slot base
  //   +32 merged lengths base (unused at level 0)
  std::string source = R"asm(
main:
;; profile: shard_setup
    lw    r1, 0(r20)             # panel root address
    lw    r2, 4(r20)             # panel root length
    lw    r3, 8(r20)             # levels - 1
    beq   r2, r0, merge_rdv      # empty panel: straight to the rendezvous
    jal   transpose_block
merge_rdv:
;; profile: merge
    barrier                      # every panel transposed before roots are read
    lw    r1, 0(r20)             # panel positions (= root address)
    lw    r2, 4(r20)             # n
    lw    r4, 12(r20)            # panel slots
    lw    r5, 16(r20)            # panel lengths (0 at level 0)
    lw    r6, 20(r20)            # rank table
    lw    r7, 24(r20)            # merged positions
    lw    r8, 28(r20)            # merged slots
    lw    r9, 32(r20)            # merged lengths
    li    r10, 0                 # i
merge_loop:
    bge   r10, r2, merge_done
    slli  r11, r10, 2
    add   r12, r6, r11
    lw    r12, (r12)             # global rank of entry i
    add   r13, r1, r10
    add   r13, r13, r10
    lhu   r14, (r13)             # position pair (row, col bytes) as one u16
    slli  r15, r12, 1
    add   r15, r7, r15
    sh    r14, (r15)             # merged position at 2*rank
    add   r13, r4, r11
    lw    r14, (r13)             # slot: value bits / absolute child pointer
    slli  r15, r12, 2
    add   r16, r8, r15
    sw    r14, (r16)             # merged slot at 4*rank
    beq   r5, r0, merge_next     # level 0: no lengths vector
    add   r13, r5, r11
    lw    r14, (r13)             # child length
    add   r16, r9, r15
    sw    r14, (r16)             # merged length at 4*rank
merge_next:
    addi  r10, r10, 1
    beq   r0, r0, merge_loop
merge_done:
    barrier                      # merged root complete on every core
    halt
)asm";
  const std::string transpose = hism_transpose_source();
  const auto at = transpose.find("# ---- transpose_block");
  SMTU_CHECK_MSG(at != std::string::npos, "transpose_block marker not found");
  source += transpose.substr(at);
  return source;
}

namespace {

// Everything the host stages for one run: panel images, the zeroed merged
// root region, rank tables, and per-core descriptors.
struct StagedShard {
  HismShardPlan plan;
  Addr merged_root = 0;
  u32 merged_len = 0;
  Addr image_end = 0;  // first free address past all staged regions
};

StagedShard stage_sharded(vsim::MultiCoreSystem& system, const Coo& coo) {
  const u32 cores = system.num_cores();
  const u32 section = system.config().core.section;
  vsim::Memory& mem = system.memory();

  StagedShard staged;
  staged.plan = shard_hism(coo, section, cores);
  const HismShardPlan& plan = staged.plan;

  // Panel images, back to back from the usual image base.
  Addr cursor = kImageBase;
  std::vector<HismImage> images(cores);
  for (u32 c = 0; c < cores; ++c) {
    if (plan.panels[c].nnz == 0) continue;
    images[c] = build_hism_image(plan.panels[c].hism, round_up(cursor, 16));
    mem.write_block(images[c].base, images[c].bytes);
    cursor = images[c].base + images[c].bytes.size();
  }

  // Merged root region (block-array layout of hism/image.hpp), zeroed.
  u64 total_len = 0;
  for (u32 c = 0; c < cores; ++c) total_len += plan.panels[c].nnz == 0 ? 0 : images[c].root_len;
  staged.merged_len = static_cast<u32>(total_len);
  staged.merged_root = round_up(cursor, 16);
  const bool has_lengths = plan.levels >= 2;
  const Addr merged_slots = round_up(staged.merged_root + 2 * total_len, 4);
  const Addr merged_lens = merged_slots + 4 * total_len;
  const Addr merged_end = merged_lens + (has_lengths ? 4 * total_len : 0);
  mem.write_block(staged.merged_root,
                  std::vector<u8>(merged_end - staged.merged_root, 0));
  cursor = merged_end;

  // Global ranks: after the transpose each panel root is sorted by
  // (col, row) — the drain order of the s x s memory — and panels own
  // disjoint row ranges, so the merged (col, row)-sorted root interleaves
  // the panels' sorted sequences. Keys are unique; rank = sort position.
  std::vector<std::vector<u32>> panel_keys(cores);
  std::vector<u32> all_keys;
  for (u32 c = 0; c < cores; ++c) {
    if (plan.panels[c].nnz == 0) continue;
    for (const BlockPos& pos : plan.panels[c].hism.root().pos) {
      panel_keys[c].push_back(static_cast<u32>(pos.col) << 8 | pos.row);
    }
    std::sort(panel_keys[c].begin(), panel_keys[c].end());
    all_keys.insert(all_keys.end(), panel_keys[c].begin(), panel_keys[c].end());
  }
  std::sort(all_keys.begin(), all_keys.end());
  std::map<u32, u32> rank_of;
  for (u32 r = 0; r < all_keys.size(); ++r) rank_of.emplace(all_keys[r], r);

  std::vector<Addr> rank_table(cores, 0);
  for (u32 c = 0; c < cores; ++c) {
    if (panel_keys[c].empty()) continue;
    rank_table[c] = round_up(cursor, 16);
    std::vector<u8> bytes(4 * panel_keys[c].size());
    for (usize i = 0; i < panel_keys[c].size(); ++i) {
      const u32 rank = rank_of.at(panel_keys[c][i]);
      bytes[4 * i + 0] = static_cast<u8>(rank);
      bytes[4 * i + 1] = static_cast<u8>(rank >> 8);
      bytes[4 * i + 2] = static_cast<u8>(rank >> 16);
      bytes[4 * i + 3] = static_cast<u8>(rank >> 24);
    }
    mem.write_block(rank_table[c], bytes);
    cursor = rank_table[c] + bytes.size();
  }

  // Per-core descriptors plus entry registers: descriptor base in r20, a
  // private stack slice below the image region in sp.
  const Addr desc_base = round_up(cursor, 16);
  const Addr stack_span = (kStackTop / cores) & ~static_cast<Addr>(15);
  for (u32 c = 0; c < cores; ++c) {
    const Addr desc = desc_base + 64ull * c;
    const bool empty = plan.panels[c].nnz == 0;
    const u32 n = empty ? 0 : images[c].root_len;
    const Addr root = empty ? 0 : images[c].root_addr;
    const Addr slots = empty ? 0 : round_up(root + 2ull * n, 4);
    mem.write_u32(desc + 0, static_cast<u32>(root));
    mem.write_u32(desc + 4, n);
    mem.write_u32(desc + 8, plan.levels - 1);
    mem.write_u32(desc + 12, static_cast<u32>(slots));
    mem.write_u32(desc + 16, has_lengths && !empty ? static_cast<u32>(slots + 4ull * n) : 0);
    mem.write_u32(desc + 20, static_cast<u32>(rank_table[c]));
    mem.write_u32(desc + 24, static_cast<u32>(staged.merged_root));
    mem.write_u32(desc + 28, static_cast<u32>(merged_slots));
    mem.write_u32(desc + 32, has_lengths ? static_cast<u32>(merged_lens) : 0);
    system.core(c).set_sreg(20, desc);
    system.core(c).set_sreg(vsim::kRegSp, kStackTop - stack_span * c);
  }
  staged.image_end = desc_base + 64ull * cores;
  return staged;
}

void attach_profilers(vsim::MultiCoreSystem& system,
                      std::vector<vsim::PerfCounters>* profilers) {
  if (profilers == nullptr) return;
  profilers->clear();
  profilers->resize(system.num_cores());
  for (u32 c = 0; c < system.num_cores(); ++c) {
    system.attach_profiler(c, &(*profilers)[c]);
  }
}

}  // namespace

ShardedHismTransposeResult run_sharded_hism_transpose(
    const Coo& coo, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers) {
  const auto program = vsim::ProgramCache::instance().get(sharded_hism_transpose_source());
  vsim::MultiCoreSystem system(config);
  const StagedShard staged = stage_sharded(system, coo);
  attach_profilers(system, profilers);

  ShardedHismTransposeResult result;
  result.stats = system.run(*program);
  if (staged.merged_len == 0) {
    result.transposed = Coo(coo.cols(), coo.rows());
    return result;
  }
  const std::span<const u8> raw = system.memory().raw();
  SMTU_CHECK(staged.image_end <= raw.size());
  const std::span<const u8> window =
      raw.subspan(kImageBase, staged.image_end - kImageBase);
  HismMatrix merged = decode_hism_image(window, kImageBase, staged.merged_root,
                                        staged.merged_len, staged.plan.levels,
                                        config.core.section, coo.cols(), coo.rows());
  result.transposed = merged.to_coo();
  result.transposed.canonicalize();
  return result;
}

vsim::SystemRunStats time_sharded_hism_transpose(
    const Coo& coo, const vsim::SystemConfig& config,
    std::vector<vsim::PerfCounters>* profilers) {
  const auto program = vsim::ProgramCache::instance().get(sharded_hism_transpose_source());
  vsim::MultiCoreSystem system(config);
  stage_sharded(system, coo);
  attach_profilers(system, profilers);
  return system.run(*program);
}

}  // namespace smtu::kernels
