// The §II baseline for *dense* matrices: "the problem is trivial and can be
// solved by addressing a row-wise stored matrix with a stride equal to the
// number of rows". This kernel does exactly that on the simulated machine —
// strided column loads, contiguous row stores — and serves two purposes:
//  * a correctness baseline for the vector memory model's strided path;
//  * the motivation experiment: applying the dense method to a sparse
//    matrix costs O(rows * cols) regardless of sparsity, which is why
//    sparse storage (and the STM) exist.
#pragma once

#include <string>

#include "formats/dense.hpp"
#include "vsim/machine.hpp"

namespace smtu::kernels {

const std::string& dense_transpose_source();

struct DenseTransposeResult {
  vsim::RunStats stats;
  Dense transposed;  // read back from simulated memory
};

DenseTransposeResult run_dense_transpose(const Dense& matrix,
                                         const vsim::MachineConfig& config);

vsim::RunStats time_dense_transpose(const Dense& matrix, const vsim::MachineConfig& config);

}  // namespace smtu::kernels
