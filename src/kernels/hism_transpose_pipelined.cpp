// Software-pipelined HiSM transposition for the double-buffered STM
// (extension E4): while level-0 child k drains from one s x s memory bank,
// child k+1 fills the other. Level >= 1 blocks (a few percent of the work,
// §IV-A) keep the sequential structure; the leaf-children loop of every
// level-1 parent is pipelined.
//
// Requires StmConfig::double_buffer — with a single bank, the second icm
// would clear a block that is still draining (the functional model checks
// exactly that).
#include "kernels/hism_transpose.hpp"
#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

std::string hism_transpose_pipelined_source() {
  // Register use: as the sequential kernel for the block passes, plus in
  // the pipelined children loop —
  //   r9 k (child being filled)   r13/r14/r15 fill pos/val/remaining
  //   r16/r17/r18 drain pos/val/remaining   r19..r21 temporaries
  // Fill moves through vr1/vr2, drain through vr3/vr4 (no hazards between
  // the overlapped phases).
  static const std::string source = R"asm(
main:
    jal   transpose_block
    halt

# ---- transpose_block(r1 = BSA, r2 = BSL, r3 = LVL) --------------------
;; profile: block_setup
transpose_block:
    beq   r2, r0, tb_done

    add   r4, r2, r2
    addi  r4, r4, 3
    andi  r4, r4, -4
    add   r4, r1, r4             # value/pointer array
    slli  r5, r2, 2
    add   r5, r4, r5             # lengths array (levels >= 1)

    beq   r3, r0, tb_elems

    # ---- lengths pass (sequential, as in the base kernel) --------------
;; profile: len_fill
    icm
    mv    r6, r1
    mv    r7, r5
    mv    r8, r2
tb_len_fill:
    ssvl  r8
    v_ldb vr1, vr2, r6, r7
    v_stcr vr1, vr2
    bne   r8, r0, tb_len_fill
;; profile: len_drain
    mv    r7, r5
    mv    r8, r2
tb_len_drain:
    ssvl  r8
    v_ldcc vr3, vr4
    v_stbv vr3, r7
    bne   r8, r0, tb_len_drain

tb_elems:
    # ---- element pass (sequential) --------------------------------------
;; profile: elem_fill
    icm
    mv    r6, r1
    mv    r7, r4
    mv    r8, r2
tb_elem_fill:
    ssvl  r8
    v_ldb vr1, vr2, r6, r7
    v_stcr vr1, vr2
    bne   r8, r0, tb_elem_fill
;; profile: elem_drain
    mv    r6, r1
    mv    r7, r4
    mv    r8, r2
tb_elem_drain:
    ssvl  r8
    v_ldcc vr3, vr4
    v_stb vr3, vr4, r6, r7
    bne   r8, r0, tb_elem_drain

    beq   r3, r0, tb_done

    addi  r10, r3, -1
    beq   r10, r0, tb_pipe       # children are leaves: pipeline them

    # ---- recursion for LVL > 1 (sequential, as in the base kernel) ------
;; profile: recurse
    li    r9, 0
tb_child_loop:
    bge   r9, r2, tb_done
    addi  sp, sp, -24
    sw    ra, 0(sp)
    sw    r2, 4(sp)
    sw    r3, 8(sp)
    sw    r4, 12(sp)
    sw    r5, 16(sp)
    sw    r9, 20(sp)
    slli  r10, r9, 2
    add   r11, r4, r10
    lw    r1, (r11)
    add   r11, r5, r10
    lw    r2, (r11)
    addi  r3, r3, -1
    jal   transpose_block
    lw    ra, 0(sp)
    lw    r2, 4(sp)
    lw    r3, 8(sp)
    lw    r4, 12(sp)
    lw    r5, 16(sp)
    lw    r9, 20(sp)
    addi  sp, sp, 24
    addi  r9, r9, 1
    beq   r0, r0, tb_child_loop

    # ---- software-pipelined leaf children (LVL == 1) --------------------
;; profile: pipelined_leaves
tb_pipe:
    # prime: set child 0 as the fill target; nothing drains yet
    li    r9, 0
    lw    r19, (r4)              # child-0 pointer
    lw    r20, (r5)              # child-0 length
    icm                          # switch to a fresh bank for child 0
    mv    r13, r19               # fill position cursor
    add   r21, r20, r20
    addi  r21, r21, 3
    andi  r21, r21, -4
    add   r14, r19, r21          # fill value cursor
    mv    r15, r20               # fill remaining
    li    r18, 0                 # drain remaining (none yet)
tb_pipe_loop:
    # one step: a drain section of the previous child (other bank), then a
    # fill section of the current child (fill bank)
    beq   r18, r0, tb_pipe_fill
    ssvl  r18
    v_ldcc vr3, vr4
    v_stb vr3, vr4, r16, r17
tb_pipe_fill:
    beq   r15, r0, tb_pipe_check
    ssvl  r15
    v_ldb vr1, vr2, r13, r14
    v_stcr vr1, vr2
tb_pipe_check:
    or    r21, r15, r18
    bne   r21, r0, tb_pipe_loop

    # fill of child k and drain of child k-1 both finished: child k becomes
    # the drain target, child k+1 (if any) the new fill target
    slli  r21, r9, 2
    add   r19, r4, r21
    lw    r19, (r19)             # pointer of child k
    add   r20, r5, r21
    lw    r20, (r20)             # length of child k
    mv    r16, r19               # drain position cursor
    add   r21, r20, r20
    addi  r21, r21, 3
    andi  r21, r21, -4
    add   r17, r19, r21          # drain value cursor
    mv    r18, r20               # drain remaining
    addi  r9, r9, 1
    bge   r9, r2, tb_pipe_tail
    slli  r21, r9, 2
    add   r19, r4, r21
    lw    r19, (r19)             # pointer of child k+1
    add   r20, r5, r21
    lw    r20, (r20)             # length of child k+1
    icm                          # ping-pong to the drained bank
    mv    r13, r19
    add   r21, r20, r20
    addi  r21, r21, 3
    andi  r21, r21, -4
    add   r14, r19, r21
    mv    r15, r20
    beq   r0, r0, tb_pipe_loop

tb_pipe_tail:
    # last child drains with no fill to overlap
    beq   r18, r0, tb_done
tb_pipe_tail_loop:
    ssvl  r18
    v_ldcc vr3, vr4
    v_stb vr3, vr4, r16, r17
    bne   r18, r0, tb_pipe_tail_loop

tb_done:
    ret
)asm";
  return source;
}

namespace {

vsim::Machine make_pipelined_machine(const HismMatrix& hism,
                                     const vsim::MachineConfig& config, HismImage& image) {
  SMTU_CHECK_MSG(hism.section() == config.section,
                 "HiSM section size must match the machine section size");
  SMTU_CHECK_MSG(config.stm.double_buffer,
                 "the software-pipelined kernel needs the double-buffered STM");
  vsim::Machine machine(config);
  image = stage_hism(machine, hism);
  machine.set_sreg(1, image.root_addr);
  machine.set_sreg(2, image.root_len);
  machine.set_sreg(3, image.levels - 1);
  machine.set_sreg(vsim::kRegSp, kStackTop);
  return machine;
}

}  // namespace

HismTransposeResult run_hism_transpose_pipelined(const HismMatrix& hism,
                                                 const vsim::MachineConfig& config) {
  const auto program = vsim::ProgramCache::instance().get(hism_transpose_pipelined_source());
  HismImage image;
  vsim::Machine machine = make_pipelined_machine(hism, config, image);
  HismTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = read_back_hism(machine, image, /*swap_dims=*/true);
  return result;
}

vsim::RunStats time_hism_transpose_pipelined(const HismMatrix& hism,
                                             const vsim::MachineConfig& config) {
  const auto program = vsim::ProgramCache::instance().get(hism_transpose_pipelined_source());
  HismImage image;
  vsim::Machine machine = make_pipelined_machine(hism, config, image);
  return machine.run(*program);
}

}  // namespace smtu::kernels
