#include "kernels/hism_transpose.hpp"

#include "kernels/layout.hpp"
#include "support/assert.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::kernels {

std::string hism_transpose_source(bool split_drain_registers) {
  // Register use inside transpose_block:
  //   r1 BSA (block start address)   r2 BSL (block length)   r3 LVL (level)
  //   r4 value/pointer array address r5 lengths array address
  //   r6 position cursor             r7 value cursor          r8 remaining
  //   r9 child loop index            r10/r11 temporaries
  const std::string source = R"asm(
main:
    jal   transpose_block
    halt

# ---- transpose_block(r1 = BSA, r2 = BSL, r3 = LVL) --------------------
;; profile: block_setup
transpose_block:
    beq   r2, r0, tb_done        # empty block array: nothing to transpose

    # Array geometry within the block image:
    #   positions at BSA, values at BSA + align4(2n), lengths 4n further.
    add   r4, r2, r2             # 2n
    addi  r4, r4, 3
    andi  r4, r4, -4             # align4(2n)
    add   r4, r1, r4             # value/pointer array
    slli  r5, r2, 2              # 4n
    add   r5, r4, r5             # lengths array (levels >= 1)

    beq   r3, r0, tb_elems       # level 0 has no lengths vector

    # ---- lengths pass (Fig. 6 lines 11-18): permute the lengths vector
    # through the s x s memory using the *original* positions; store only
    # the values (v_stbv) so the element pass still sees those positions.
;; profile: len_fill
    icm
    mv    r6, r1                 # position cursor
    mv    r7, r5                 # lengths cursor
    mv    r8, r2                 # elements remaining
tb_len_fill:
    ssvl  r8
    v_ldb vr1, vr2, r6, r7       # lengths as values + positions
    v_stcr vr1, vr2              # scatter row-wise into the s x s memory
    bne   r8, r0, tb_len_fill
;; profile: len_drain
    mv    r7, r5
    mv    r8, r2
tb_len_drain:
    ssvl  r8
    v_ldcc vrD1, vrD2            # drain column-wise (transposed order)
    v_stbv vrD1, r7              # write back lengths only
    bne   r8, r0, tb_len_drain

tb_elems:
    # ---- element pass (Fig. 6 lines 2-9 / the code of Fig. 7) ----------
;; profile: elem_fill
    icm
    mv    r6, r1
    mv    r7, r4
    mv    r8, r2
tb_elem_fill:
    ssvl  r8
    v_ldb vr1, vr2, r6, r7       # values/pointers + positions
    v_stcr vr1, vr2
    bne   r8, r0, tb_elem_fill
;; profile: elem_drain
    mv    r6, r1
    mv    r7, r4
    mv    r8, r2
tb_elem_drain:
    ssvl  r8
    v_ldcc vrD1, vrD2
    v_stb vrD1, vrD2, r6, r7     # write back transposed block in place
    bne   r8, r0, tb_elem_drain

    beq   r3, r0, tb_done        # level 0: no children to recurse into

    # ---- recursion (Fig. 6 lines 19-23) --------------------------------
;; profile: recurse
    li    r9, 0
tb_child_loop:
    bge   r9, r2, tb_done
    addi  sp, sp, -24            # save caller frame
    sw    ra, 0(sp)
    sw    r2, 4(sp)
    sw    r3, 8(sp)
    sw    r4, 12(sp)
    sw    r5, 16(sp)
    sw    r9, 20(sp)
    slli  r10, r9, 2
    add   r11, r4, r10
    lw    r1, (r11)              # child pointer (Fig. 6 line 20)
    add   r11, r5, r10
    lw    r2, (r11)              # child length  (Fig. 6 line 21)
    addi  r3, r3, -1
    jal   transpose_block        # (Fig. 6 line 22)
    lw    ra, 0(sp)              # restore caller frame
    lw    r2, 4(sp)
    lw    r3, 8(sp)
    lw    r4, 12(sp)
    lw    r5, 16(sp)
    lw    r9, 20(sp)
    addi  sp, sp, 24
    addi  r9, r9, 1
    beq   r0, r0, tb_child_loop

tb_done:
    ret
)asm";
  std::string resolved = source;
  const char* d1 = split_drain_registers ? "vr3" : "vr1";
  const char* d2 = split_drain_registers ? "vr4" : "vr2";
  for (std::string::size_type at = 0; (at = resolved.find("vrD1", at)) != std::string::npos;) {
    resolved.replace(at, 4, d1);
  }
  for (std::string::size_type at = 0; (at = resolved.find("vrD2", at)) != std::string::npos;) {
    resolved.replace(at, 4, d2);
  }
  return resolved;
}

namespace {

void set_entry_sregs(vsim::Machine& machine, const HismImage& image) {
  machine.set_sreg(1, image.root_addr);
  machine.set_sreg(2, image.root_len);
  machine.set_sreg(3, image.levels - 1);
  machine.set_sreg(vsim::kRegSp, kStackTop);
}

vsim::Machine make_machine_with_image(const HismMatrix& hism,
                                      const vsim::MachineConfig& config, HismImage& image) {
  SMTU_CHECK_MSG(hism.section() == config.section,
                 "HiSM section size must match the machine section size");
  vsim::Machine machine(config);
  image = stage_hism(machine, hism);
  set_entry_sregs(machine, image);
  return machine;
}

vsim::Machine make_machine_with_stage(const HismStage& stage,
                                      const vsim::MachineConfig& config) {
  SMTU_CHECK_MSG(stage.hism.section() == config.section,
                 "HiSM section size must match the machine section size");
  vsim::Machine machine(config);
  machine.memory().attach_base(stage.snapshot);
  set_entry_sregs(machine, stage.image);
  return machine;
}

std::shared_ptr<const vsim::Program> transpose_program(bool split_drain_registers) {
  return vsim::ProgramCache::instance().get(hism_transpose_source(split_drain_registers));
}

}  // namespace

HismTransposeResult run_hism_transpose(const HismMatrix& hism,
                                       const vsim::MachineConfig& config,
                                       bool split_drain_registers,
                                       vsim::ExecutionTrace* trace,
                                       vsim::PerfCounters* profiler) {
  const auto program = transpose_program(split_drain_registers);
  HismImage image;
  vsim::Machine machine = make_machine_with_image(hism, config, image);
  machine.attach_trace(trace);
  machine.attach_profiler(profiler);
  HismTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = read_back_hism(machine, image, /*swap_dims=*/true);
  return result;
}

vsim::RunStats time_hism_transpose(const HismMatrix& hism, const vsim::MachineConfig& config,
                                   bool split_drain_registers,
                                   vsim::ExecutionTrace* trace,
                                   vsim::PerfCounters* profiler) {
  const auto program = transpose_program(split_drain_registers);
  HismImage image;
  vsim::Machine machine = make_machine_with_image(hism, config, image);
  machine.attach_trace(trace);
  machine.attach_profiler(profiler);
  return machine.run(*program);
}

HismTransposeResult run_hism_transpose(const HismStage& stage,
                                       const vsim::MachineConfig& config,
                                       bool split_drain_registers,
                                       vsim::ExecutionTrace* trace,
                                       vsim::PerfCounters* profiler) {
  const auto program = transpose_program(split_drain_registers);
  vsim::Machine machine = make_machine_with_stage(stage, config);
  machine.attach_trace(trace);
  machine.attach_profiler(profiler);
  HismTransposeResult result;
  result.stats = machine.run(*program);
  result.transposed = read_back_hism(machine, stage.image, /*swap_dims=*/true);
  return result;
}

vsim::RunStats time_hism_transpose(const HismStage& stage, const vsim::MachineConfig& config,
                                   bool split_drain_registers,
                                   vsim::ExecutionTrace* trace,
                                   vsim::PerfCounters* profiler) {
  const auto program = transpose_program(split_drain_registers);
  vsim::Machine machine = make_machine_with_stage(stage, config);
  machine.attach_trace(trace);
  machine.attach_profiler(profiler);
  return machine.run(*program);
}

}  // namespace smtu::kernels
