// Byte-addressable little-endian main memory of the simulated machine.
//
// Storage grows on demand up to a configurable limit; reads of never-written
// memory return zero (the region is allocated zero-filled). Functional only —
// access *timing* lives in the Machine's vector/scalar memory models.
#pragma once

#include <span>
#include <vector>

#include "support/types.hpp"

namespace smtu::vsim {

class Memory {
 public:
  explicit Memory(u64 limit_bytes = u64{1} << 30) : limit_(limit_bytes) {}

  u64 size() const { return bytes_.size(); }
  u64 limit() const { return limit_; }

  // Grows the backing store to cover [0, addr + len); aborts past the limit.
  void ensure(Addr addr, u64 len);

  u8 read_u8(Addr addr) const;
  u16 read_u16(Addr addr) const;
  u32 read_u32(Addr addr) const;
  float read_f32(Addr addr) const;

  void write_u8(Addr addr, u8 value);
  void write_u16(Addr addr, u16 value);
  void write_u32(Addr addr, u32 value);
  void write_f32(Addr addr, float value);

  // Bulk host-side access for laying out workload images.
  void write_block(Addr addr, std::span<const u8> data);
  std::span<const u8> raw() const { return bytes_; }

 private:
  void check_readable(Addr addr, u64 len) const;

  u64 limit_;
  std::vector<u8> bytes_;
};

}  // namespace smtu::vsim
