// Byte-addressable little-endian main memory of the simulated machine.
//
// Storage grows on demand up to a configurable limit; reads of never-written
// memory return zero (the region is allocated zero-filled). Functional only —
// access *timing* lives in the Machine's vector/scalar memory models.
//
// A memory may also attach an immutable shared snapshot (a staged workload
// image) that it reads through copy-on-write: many machines share one base
// image, and the first write privatizes a full copy. This is what lets
// ablation ladders stop re-staging identical matrix images per config.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace smtu::vsim {

class Memory {
 public:
  explicit Memory(u64 limit_bytes = u64{1} << 30) : limit_(limit_bytes) {}

  u64 size() const { return view_size_; }
  u64 limit() const { return limit_; }

  // Attaches `base` as a shared immutable snapshot covering [0, base->size()).
  // Reads are served from it until the first write copies it into private
  // storage. Replaces any previously attached snapshot or private content.
  void attach_base(std::shared_ptr<const std::vector<u8>> base);

  // Grows the backing store to cover [0, addr + len); aborts past the limit.
  void ensure(Addr addr, u64 len);

  u8 read_u8(Addr addr) const;
  u16 read_u16(Addr addr) const;
  u32 read_u32(Addr addr) const;
  float read_f32(Addr addr) const;

  void write_u8(Addr addr, u8 value);
  void write_u16(Addr addr, u16 value);
  void write_u32(Addr addr, u32 value);
  void write_f32(Addr addr, float value);

  // Bulk host-side access for laying out workload images. raw() never
  // privatizes an attached snapshot.
  void write_block(Addr addr, std::span<const u8> data);
  std::span<const u8> raw() const { return {view_, view_size_}; }

 private:
  void check_readable(Addr addr, u64 len) const;
  // Copies an attached snapshot into private storage (first write).
  void privatize();
  void refresh_view() {
    if (base_ != nullptr) {
      view_ = base_->data();
      view_size_ = base_->size();
    } else {
      view_ = bytes_.data();
      view_size_ = bytes_.size();
    }
  }

  u64 limit_;
  std::vector<u8> bytes_;
  std::shared_ptr<const std::vector<u8>> base_;
  // Cached read window (the snapshot until privatized, bytes_ after) so hot
  // reads skip the base_/bytes_ branch.
  const u8* view_ = nullptr;
  u64 view_size_ = 0;
};

}  // namespace smtu::vsim
