// Byte-addressable little-endian main memory of the simulated machine.
//
// Storage grows on demand up to a configurable limit; reads of never-written
// memory return zero (the region is allocated zero-filled). Functional only —
// access *timing* lives in the Machine's vector/scalar memory models.
//
// A memory may also attach an immutable shared snapshot (a staged workload
// image) that it reads through copy-on-write: many machines share one base
// image, and the first write privatizes a full copy. This is what lets
// ablation ladders stop re-staging identical matrix images per config.
//
// The accessors are structured for the interpreter's hot loop: the common
// case (in-bounds read through the cached view, in-bounds write into private
// storage) is a branch plus a memcpy, inline at every call site; the rare
// cases (grow, privatize, out-of-bounds abort) live out of line. The span
// accessors amortize that branch to one bounds check per vector instruction
// for contiguous accesses.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace smtu::vsim {

class Memory {
 public:
  explicit Memory(u64 limit_bytes = u64{1} << 30) : limit_(limit_bytes) {}

  u64 size() const { return view_size_; }
  u64 limit() const { return limit_; }

  // Attaches `base` as a shared immutable snapshot covering [0, base->size()).
  // Reads are served from it until the first write copies it into private
  // storage. Replaces any previously attached snapshot or private content.
  void attach_base(std::shared_ptr<const std::vector<u8>> base);

  // Grows the backing store to cover [0, addr + len); aborts past the limit.
  void ensure(Addr addr, u64 len) {
    if (!writable(addr, len)) [[unlikely]] ensure_slow(addr, len);
  }

  u8 read_u8(Addr addr) const {
    check_readable(addr, 1);
    return view_[addr];
  }
  u16 read_u16(Addr addr) const {
    check_readable(addr, 2);
    return static_cast<u16>(view_[addr] | view_[addr + 1] << 8);
  }
  u32 read_u32(Addr addr) const {
    check_readable(addr, 4);
    u32 value;
    std::memcpy(&value, view_ + addr, 4);  // little-endian host
    return value;
  }
  float read_f32(Addr addr) const;

  void write_u8(Addr addr, u8 value) {
    ensure(addr, 1);
    bytes_[addr] = value;
  }
  void write_u16(Addr addr, u16 value) {
    ensure(addr, 2);
    bytes_[addr] = static_cast<u8>(value);
    bytes_[addr + 1] = static_cast<u8>(value >> 8);
  }
  void write_u32(Addr addr, u32 value) {
    ensure(addr, 4);
    std::memcpy(bytes_.data() + addr, &value, 4);
  }
  void write_f32(Addr addr, float value);

  // One-bounds-check bulk access for the contiguous vector memory paths
  // (v_ld/v_st/v_ldb/v_stb/v_stbv): the whole [addr, addr+len) range is
  // checked (or grown) once, then elements move via memcpy. The abort
  // condition is identical to per-element accesses over the same range —
  // contiguous elements cover exactly the span. `len` must be nonzero.
  // The returned pointer is invalidated by any subsequent write/ensure.
  const u8* read_span(Addr addr, u64 len) const {
    check_readable(addr, len);
    return view_ + addr;
  }
  u8* write_span(Addr addr, u64 len) {
    ensure(addr, len);
    return bytes_.data() + addr;
  }

  // Bulk host-side access for laying out workload images. raw() never
  // privatizes an attached snapshot.
  void write_block(Addr addr, std::span<const u8> data);
  std::span<const u8> raw() const { return {view_, view_size_}; }

 private:
  void check_readable(Addr addr, u64 len) const {
    if (addr + len > view_size_ || addr + len < addr) [[unlikely]] read_out_of_bounds(addr);
  }
  bool writable(Addr addr, u64 len) const {
    return base_ == nullptr && addr + len <= bytes_.size() && addr + len >= addr;
  }
  [[noreturn]] void read_out_of_bounds(Addr addr) const;
  // Grow/privatize/abort tail of ensure() (first write, growth, limit).
  void ensure_slow(Addr addr, u64 len);
  // Copies an attached snapshot into private storage (first write).
  void privatize();
  void refresh_view() {
    if (base_ != nullptr) {
      view_ = base_->data();
      view_size_ = base_->size();
    } else {
      view_ = bytes_.data();
      view_size_ = bytes_.size();
    }
  }

  u64 limit_;
  std::vector<u8> bytes_;
  std::shared_ptr<const std::vector<u8>> base_;
  // Cached read window (the snapshot until privatized, bytes_ after) so hot
  // reads skip the base_/bytes_ branch.
  const u8* view_ = nullptr;
  u64 view_size_ = 0;
};

}  // namespace smtu::vsim
