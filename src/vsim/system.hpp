// Multi-core system model: N Machine cores sharing one banked MemorySystem,
// stepped in lockstep simulated time (see docs/MULTICORE.md).
//
// The system runs one program SPMD across all cores. Each core keeps its
// own scalar/vector register file, its own STM, and its own timing state;
// they share the flat byte-addressed memory and contend for its banks.
// Cores rendezvous at `barrier` instructions; the system releases a
// barrier at the maximum arrival watermark of the participating cores.
//
// Scheduling is deterministic: a single host thread steps the core with
// the smallest issue horizon (the earliest simulated cycle its next
// instruction could issue), breaking ties round-robin with a rotating
// starting core. Because bank arbitration only ever looks at request
// times that the horizon ordering has already fixed, repeated runs — and
// runs under any host-side parallelism (--jobs) — produce identical
// cycle counts.
//
// With cores == 1 the system degenerates to exactly the owning Machine:
// a lone core's bank requests never contend (its per-bank occupancy is
// bounded by its own access duration) and its barriers release at
// arrival, so cycle counts are bit-identical to Machine::run().
#pragma once

#include <memory>
#include <vector>

#include "vsim/machine.hpp"
#include "vsim/memory_system.hpp"

namespace smtu::vsim {

struct SystemConfig {
  MachineConfig core;        // applied identically to every core
  u32 cores = 1;
  MemorySystemConfig memory;
};

struct SystemRunStats {
  Cycle cycles = 0;                  // max over cores (wall-clock of the run)
  std::vector<RunStats> core_stats;  // per-core stats, indexed by core id
  u64 barriers = 0;                  // barrier rendezvous released
  MemorySystem::Stats memory;        // shared-memory bank contention
};

class MultiCoreSystem {
 public:
  explicit MultiCoreSystem(const SystemConfig& config);

  const SystemConfig& config() const { return config_; }
  u32 num_cores() const { return static_cast<u32>(cores_.size()); }
  // The shared memory, for host-side staging and read-back.
  Memory& memory() { return memsys_->memory(); }
  const Memory& memory() const { return memsys_->memory(); }
  // Core access, e.g. to set per-core entry registers before run().
  Machine& core(u32 index);

  // Attaches a per-core profiler (nullptr detaches). Each core needs its
  // own PerfCounters: samples interleave across cores, and the per-run
  // conservation invariant holds per core, not across them.
  void attach_profiler(u32 core, PerfCounters* profiler);
  // Attaches one shared trace sink to every core; events carry their
  // originating core id.
  void attach_trace(ExecutionTrace* trace);

  // Runs `program` SPMD on all cores from `entry_pc` until every core
  // halts. Bank timing and contention statistics reset per run; memory
  // contents and core registers persist (stage inputs first).
  SystemRunStats run(const Program& program, usize entry_pc = 0);

 private:
  SystemConfig config_;
  std::unique_ptr<MemorySystem> memsys_;
  std::vector<std::unique_ptr<Machine>> cores_;
  u32 rr_start_ = 0;  // rotating round-robin tie-break origin
};

}  // namespace smtu::vsim
