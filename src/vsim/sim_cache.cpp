#include "vsim/sim_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"
#include "vsim/json_export.hpp"

namespace smtu::vsim {
namespace {

constexpr u64 kFnvPrime = 1099511628211ull;
constexpr u64 kFnvOffset = 14695981039346656037ull;
// Second stream: a distinct offset basis keeps the two 64-bit hashes
// decorrelated enough for content addressing.
constexpr u64 kFnvOffsetAlt = kFnvOffset ^ 0x9e3779b97f4a7c15ull;

constexpr std::string_view kSchema = "smtu-simcache-v1";

}  // namespace

SimHash::SimHash() : lo_(kFnvOffset), hi_(kFnvOffsetAlt) {}

void SimHash::update(std::span<const u8> data) {
  u64 lo = lo_;
  u64 hi = hi_;
  for (const u8 byte : data) {
    lo = (lo ^ byte) * kFnvPrime;
    hi = (hi ^ byte) * kFnvPrime;
  }
  lo_ = lo;
  hi_ = hi;
}

void SimHash::update(std::string_view text) {
  update(std::span<const u8>(reinterpret_cast<const u8*>(text.data()), text.size()));
}

void SimHash::update_u64(u64 value) {
  u8 bytes[8];
  for (u32 i = 0; i < 8; ++i) bytes[i] = static_cast<u8>(value >> (8 * i));
  update(std::span<const u8>(bytes, 8));
}

std::string SimHash::hex() const {
  return format("%016llx%016llx", static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
}

std::string sim_cache_key(std::string_view program_source, const MachineConfig& config,
                          std::span<const u8> image,
                          std::span<const std::pair<u32, u64>> entry_sregs) {
  SimHash hash;
  hash.update_u64(program_source.size());
  hash.update(program_source);
  // The config's timing knobs, via its canonical JSON rendering (every field
  // that shapes cycle counts is in there, and the schema moves with the code).
  std::ostringstream config_json;
  {
    JsonWriter json(config_json);
    write_machine_config_json(json, config);
    SMTU_CHECK(json.complete());
  }
  hash.update_u64(config_json.view().size());
  hash.update(config_json.view());
  hash.update_u64(image.size());
  hash.update(image);
  hash.update_u64(entry_sregs.size());
  for (const auto& [reg, value] : entry_sregs) {
    hash.update_u64(reg);
    hash.update_u64(value);
  }
  return hash.hex();
}

SimCache::SimCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  SMTU_CHECK_MSG(!ec, "sim-cache: cannot create directory " + dir_);
}

std::string SimCache::path_for(const std::string& key) const {
  return (std::filesystem::path(dir_) / (key + ".json")).string();
}

std::optional<SimCache::Entry> SimCache::read_entry(const std::string& key) const {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();

  const std::optional<JsonValue> doc = parse_json(text.view());
  if (!doc.has_value()) return std::nullopt;  // partial/corrupt entry: re-simulate
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != kSchema) {
    return std::nullopt;
  }

  Entry entry;
  const JsonValue* verified = doc->find("verified");
  entry.verified = verified != nullptr && verified->is_bool() && verified->as_bool();
  const JsonValue* profile = doc->find("profile");
  if (profile != nullptr && profile->is_string()) entry.profile_json = profile->as_string();

  const JsonValue* stats = doc->find("stats");
  if (stats == nullptr) return std::nullopt;
  const std::optional<RunStats> parsed = run_stats_from_json(*stats);
  if (!parsed.has_value()) return std::nullopt;
  entry.stats = *parsed;
  return entry;
}

std::optional<SimCache::Entry> SimCache::lookup(const std::string& key, bool need_verified,
                                                bool need_profile) {
  telemetry::HostSpan span("cache.sim.lookup_us");
  const auto satisfies = [&](const Entry& entry) {
    return (!need_verified || entry.verified) && (!need_profile || !entry.profile_json.empty());
  };

  std::optional<Entry> entry;
  {
    // Memo first: the disk round-trip (open + read + JSON parse) is the
    // expensive part of a hit and its result cannot go stale — entries only
    // ever gain information (store() merges, never downgrades).
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = memo_.find(key); it != memo_.end() && satisfies(it->second)) {
      entry = it->second;
    }
  }
  if (!entry.has_value()) {
    entry = read_entry(key);
    if (entry.has_value() && !satisfies(*entry)) {
      entry.reset();  // the cached run produced less than this lookup needs
    }
    if (entry.has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      memo_[key] = *entry;
    }
  }
  if (telemetry::enabled()) {
    telemetry::counter(entry.has_value() ? "cache.sim.hits_total" : "cache.sim.misses_total")
        .add(1);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++(entry.has_value() ? stats_.hits : stats_.misses);
  return entry;
}

void SimCache::store(const std::string& key, const Entry& entry) {
  // Merge with any existing entry so a later plain run never downgrades a
  // verified or profiled one.
  Entry merged = entry;
  if (const std::optional<Entry> existing = read_entry(key); existing.has_value()) {
    merged.verified = merged.verified || existing->verified;
    if (merged.profile_json.empty()) merged.profile_json = existing->profile_json;
  }

  std::ostringstream text;
  {
    JsonWriter json(text);
    json.begin_object();
    json.key("schema");
    json.value(std::string(kSchema));
    json.key("verified");
    json.value(merged.verified);
    json.key("profiled");
    json.value(!merged.profile_json.empty());
    json.key("stats");
    write_run_stats_json(json, merged.stats);
    json.key("profile");
    if (merged.profile_json.empty()) {
      json.null();
    } else {
      json.value(merged.profile_json);
    }
    json.end_object();
    SMTU_CHECK(json.complete());
  }

  // Temp-file + rename so concurrent readers never see a partial entry.
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SMTU_CHECK_MSG(out.good(), "sim-cache: cannot write " + tmp);
    out << text.view();
    out.flush();
    SMTU_CHECK_MSG(out.good(), "sim-cache: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  SMTU_CHECK_MSG(!ec, "sim-cache: rename failed for " + path);

  if (telemetry::enabled()) {
    telemetry::counter("cache.sim.stores_total").add(1);
    telemetry::counter("cache.sim.bytes_total").add(text.view().size());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  memo_[key] = merged;
}

SimCache::Stats SimCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace smtu::vsim
