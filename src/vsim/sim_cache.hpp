// Content-addressed on-disk cache of simulation results.
//
// A simulation is a pure function of (program source, MachineConfig, staged
// memory image, entry scalar registers), so its RunStats — and the rendered
// profile section when profiling — can be memoized under a hash of those
// inputs. Repeated or overlapping bench runs (`--sim-cache DIR`) then skip
// the simulation entirely while producing bit-identical reports.
//
// One JSON file per entry, named <hash>.json in the cache directory:
//
//   {"schema": "smtu-simcache-v1", "verified": ..., "profiled": ...,
//    "stats": {<RunStats counters>}, "profile": "<rendered JSON>" | null}
//
// `verified` records whether the cached run also passed the caller's
// correctness check (lookups that need verification treat unverified
// entries as misses); `profile` is the pre-rendered smtu-profile-v1 object
// the report splices back in via JsonWriter::raw. Writes go through a
// temp-file rename so concurrent processes never observe partial entries.
#pragma once

#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "vsim/machine.hpp"

namespace smtu::vsim {

// 128-bit content hash as 32 lowercase hex digits (two FNV-1a-64 streams
// with distinct offset bases). Stable across platforms and runs.
class SimHash {
 public:
  SimHash();
  void update(std::span<const u8> data);
  void update(std::string_view text);
  void update_u64(u64 value);
  std::string hex() const;

 private:
  u64 lo_;
  u64 hi_;
};

// The cache key for one simulation: feed every timing-relevant input.
std::string sim_cache_key(std::string_view program_source, const MachineConfig& config,
                          std::span<const u8> image,
                          std::span<const std::pair<u32, u64>> entry_sregs);

class SimCache {
 public:
  struct Entry {
    RunStats stats;
    bool verified = false;
    // Rendered smtu-profile-v1 JSON, empty when the run was not profiled.
    std::string profile_json;
  };

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 stores = 0;
  };

  // Creates `dir` (and parents) if needed.
  explicit SimCache(std::string dir);

  // The entry for `key`, or nullopt. An entry misses when `need_verified`
  // or `need_profile` asks for more than the cached run produced.
  std::optional<Entry> lookup(const std::string& key, bool need_verified, bool need_profile);

  // Stores (or upgrades) the entry for `key`.
  void store(const std::string& key, const Entry& entry);

  const std::string& dir() const { return dir_; }
  Stats stats() const;

 private:
  std::string path_for(const std::string& key) const;
  // Reads and parses the on-disk entry without touching the hit/miss stats.
  std::optional<Entry> read_entry(const std::string& key) const;

  std::string dir_;
  mutable std::mutex mutex_;
  Stats stats_;
  // In-memory memo of on-disk entries: under serving load the same key is
  // looked up once per duplicate request, and re-reading + re-parsing the
  // JSON file each time dominated the lookup profile. Negative results are
  // not memoized (a concurrent process may store the entry at any moment).
  std::unordered_map<std::string, Entry> memo_;
};

}  // namespace smtu::vsim
