#include "vsim/memory_system.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu::vsim {

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config), memory_(config.memory_limit) {
  SMTU_CHECK_MSG(config_.banks >= 1 && is_pow2(config_.banks),
                 "memory system banks must be a power of two");
  SMTU_CHECK(config_.bank_bytes_per_cycle >= 1);
  SMTU_CHECK(config_.interleave_bytes >= 1);
  bank_free_.assign(config_.banks, 0);
}

Cycle MemorySystem::request(Addr addr, u64 bytes, Cycle earliest) {
  ++stats_.requests;
  if (bytes == 0) return earliest;

  // The access is a run of interleave-sized chunks starting at the bank
  // the address maps to; chunk k lands on bank (first + k) mod banks.
  // A bank serving c chunks is busy for the cycles those chunks' beats
  // take at the bank's own rate.
  const u32 banks = config_.banks;
  const u64 chunks = ceil_div(bytes, config_.interleave_bytes);
  const u32 first = static_cast<u32>((addr / config_.interleave_bytes) & (banks - 1));
  const u32 touched = static_cast<u32>(std::min<u64>(chunks, banks));

  Cycle grant = earliest;
  for (u32 i = 0; i < touched; ++i) {
    grant = std::max(grant, bank_free_[(first + i) & (banks - 1)]);
  }
  for (u32 i = 0; i < touched; ++i) {
    // Chunks i, i+banks, i+2*banks, ... land on this bank.
    const u64 bank_chunks = (chunks - i + banks - 1) / banks;
    const Cycle busy = static_cast<Cycle>(
        ceil_div(bank_chunks * config_.interleave_bytes, config_.bank_bytes_per_cycle));
    bank_free_[(first + i) & (banks - 1)] = grant + busy;
  }
  if (grant > earliest) {
    ++stats_.contended_requests;
    stats_.contention_cycles += grant - earliest;
  }
  return grant;
}

void MemorySystem::reset_timing() {
  std::fill(bank_free_.begin(), bank_free_.end(), 0);
  stats_ = {};
}

}  // namespace smtu::vsim
