// An assembled program: decoded instructions, the label map, and the
// profiler's debug info (source-line text plus `;; profile:` regions).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vsim/isa.hpp"

namespace smtu::vsim {

// A named instruction range opened by a `;; profile: <name>` assembler
// directive (closed by the next directive or the end of the program).
// Ranges are ordered and non-overlapping; `end` is one past the last pc.
struct ProfileRegion {
  std::string name;
  usize begin = 0;
  usize end = 0;
};

struct Program {
  std::vector<Instruction> instructions;
  std::map<std::string, usize> labels;
  std::vector<ProfileRegion> regions;
  // Source text by 1-based line number (index 0 unused) — what
  // Instruction::source_line points into; feeds the profiler's per-line
  // hot-spot tables.
  std::vector<std::string> source_lines;

  usize size() const { return instructions.size(); }
  bool has_label(const std::string& name) const { return labels.count(name) > 0; }
  usize label(const std::string& name) const;

  // The region containing `pc`, or nullptr when the pc is outside every
  // `;; profile:` range.
  const ProfileRegion* region_of(usize pc) const;

  // The source text of 1-based `line` ("" when unavailable, e.g. programs
  // built directly from Instruction records).
  const std::string& source_line_text(u32 line) const;

  // Disassembly listing with labels, for debugging kernels.
  std::string listing() const;
};

}  // namespace smtu::vsim
