// An assembled program: decoded instructions, the label map, and the
// profiler's debug info (source-line text plus `;; profile:` regions).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vsim/isa.hpp"

namespace smtu::vsim {

// A named instruction range opened by a `;; profile: <name>` assembler
// directive (closed by the next directive or the end of the program).
// Ranges are ordered and non-overlapping; `end` is one past the last pc.
struct ProfileRegion {
  std::string name;
  usize begin = 0;
  usize end = 0;
};

// Functional unit a vector instruction occupies. Values match the
// Machine's internal unit indices.
enum class ExecUnit : u8 { kVMem = 0, kVAlu = 1, kStm = 2 };

// Which MachineConfig field supplies an instruction's startup latency.
// Resolved to a cycle count once per run (the config is per-Machine, the
// kind is per-static-instruction).
enum class StartupKind : u8 { kMem = 0, kValu = 1, kStmFill = 2, kStmDrain = 3, kNone = 4 };
inline constexpr usize kStartupKindCount = static_cast<usize>(StartupKind::kNone) + 1;

// Per-opcode static properties, constexpr so the predecoder and the
// per-opcode handler templates (machine.cpp) resolve them from one source.

// Vector memory accesses that move one element per cycle (an address per
// element) rather than streaming at the port's byte rate.
constexpr bool op_indexed_vmem(Op op) {
  return op == Op::kVLdx || op == Op::kVStx || op == Op::kVLds || op == Op::kVSts ||
         op == Op::kVScaX;
}

// Scalar loads/stores contend for the scalar memory ports.
constexpr bool op_scalar_mem(Op op) {
  switch (op) {
    case Op::kLw:
    case Op::kLhu:
    case Op::kLbu:
    case Op::kSw:
    case Op::kSh:
    case Op::kSb:
    case Op::kAmoAdd:
      return true;
    default:
      return false;
  }
}

// Functional unit a vector instruction occupies (meaningful only when
// op_is_vector(op)).
constexpr ExecUnit op_unit(Op op) {
  switch (op) {
    case Op::kVLd:
    case Op::kVSt:
    case Op::kVLdx:
    case Op::kVStx:
    case Op::kVLds:
    case Op::kVSts:
    case Op::kVLdb:
    case Op::kVStb:
    case Op::kVStbv:
    case Op::kVGthC:
    case Op::kVScaR:
    case Op::kVGthR:
    case Op::kVScaC:
    case Op::kVScaX:
      return ExecUnit::kVMem;
    case Op::kIcm:
    case Op::kVStcr:
    case Op::kVLdcc:
      return ExecUnit::kStm;
    default:
      return ExecUnit::kVAlu;
  }
}

constexpr StartupKind op_startup(Op op) {
  switch (op) {
    case Op::kIcm:
      return StartupKind::kNone;
    case Op::kVStcr:
      return StartupKind::kStmFill;
    case Op::kVLdcc:
      return StartupKind::kStmDrain;
    default:
      return op_unit(op) == ExecUnit::kVMem ? StartupKind::kMem : StartupKind::kValu;
  }
}

// The interpreter's hot state bundle (vsim/machine.hpp).
struct ExecState;

// Dispatch-friendly predecode of one static instruction: everything the
// interpreter's issue logic derives from the opcode alone (unit, startup
// kind, operand register lists) is computed once at assembly time instead
// of per dynamic execution. Register numbers are resolved from the
// Instruction fields, in the same order the Machine's hazard checks
// evaluated them. `handler` is the threaded-code dispatch target: a
// per-opcode function that executes the instruction end to end (timing
// model + functional semantics) and advances es.pc.
struct DecodedInst {
  bool is_vector = false;
  bool indexed_vmem = false;  // 1-element/cycle vmem access (v_ldx/v_stx/v_lds/v_sts)
  bool scalar_mem = false;    // scalar load/store (uses the scalar memory port)
  ExecUnit unit = ExecUnit::kVAlu;
  StartupKind startup = StartupKind::kNone;
  u8 num_sregs = 0;  // scalar source registers read at issue
  u8 num_srcs = 0;   // vector source registers
  u8 num_dsts = 0;   // vector destination registers
  u8 sregs[2] = {0, 0};
  u8 srcs[3] = {0, 0, 0};
  u8 dsts[2] = {0, 0};
  void (*handler)(ExecState&, const Instruction&, const DecodedInst&) = nullptr;
};

// Pre-bound per-opcode execute handler (see DecodedInst::handler).
using OpHandler = void (*)(ExecState&, const Instruction&, const DecodedInst&);

// The handler for one opcode, from the process-global per-opcode table
// (defined next to the Machine in machine.cpp). Stable for the process
// lifetime, so predecoded programs cached by ProgramCache stay valid.
OpHandler opcode_handler(Op op);

// Predecode of a single instruction / an instruction sequence. Machine::run
// uses Program::decoded when present and falls back to decoding on the fly
// for hand-built Programs.
DecodedInst decode_instruction(const Instruction& inst);
std::vector<DecodedInst> decode_instructions(const std::vector<Instruction>& instructions);

struct Program {
  std::vector<Instruction> instructions;
  std::map<std::string, usize> labels;
  std::vector<ProfileRegion> regions;
  // Source text by 1-based line number (index 0 unused) — what
  // Instruction::source_line points into; feeds the profiler's per-line
  // hot-spot tables.
  std::vector<std::string> source_lines;
  // One entry per instruction when predecoded (assemble() always fills
  // this); empty on hand-built programs until predecode() is called.
  std::vector<DecodedInst> decoded;

  usize size() const { return instructions.size(); }

  // (Re)builds `decoded` from `instructions`.
  void predecode() { decoded = decode_instructions(instructions); }
  bool has_label(const std::string& name) const { return labels.count(name) > 0; }
  usize label(const std::string& name) const;

  // The region containing `pc`, or nullptr when the pc is outside every
  // `;; profile:` range.
  const ProfileRegion* region_of(usize pc) const;

  // The source text of 1-based `line` ("" when unavailable, e.g. programs
  // built directly from Instruction records).
  const std::string& source_line_text(u32 line) const;

  // Disassembly listing with labels, for debugging kernels.
  std::string listing() const;
};

}  // namespace smtu::vsim
