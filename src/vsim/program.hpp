// An assembled program: decoded instructions plus the label map.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vsim/isa.hpp"

namespace smtu::vsim {

struct Program {
  std::vector<Instruction> instructions;
  std::map<std::string, usize> labels;

  usize size() const { return instructions.size(); }
  bool has_label(const std::string& name) const { return labels.count(name) > 0; }
  usize label(const std::string& name) const;

  // Disassembly listing with labels, for debugging kernels.
  std::string listing() const;
};

}  // namespace smtu::vsim
