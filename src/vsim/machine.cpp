#include "vsim/machine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/strings.hpp"
#include "vsim/profiler.hpp"

// Marks the element-wise inner loops that are safe to vectorize: every
// iteration touches only lane i of its operands, so there are no loop-carried
// dependences even when destination and source registers alias. Never put
// this on float reductions (reassociation changes the result bits) or on
// read-modify-write scatters (later lanes may hit earlier lanes' addresses).
#if defined(SMTU_SIMD_OMP)
#define SMTU_VEC_LOOP _Pragma("omp simd")
#elif defined(__clang__)
#define SMTU_VEC_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define SMTU_VEC_LOOP _Pragma("GCC ivdep")
#else
#define SMTU_VEC_LOOP
#endif

namespace smtu::vsim {
namespace {

StmConfig stm_config_for(const MachineConfig& config) {
  StmConfig stm = config.stm;
  stm.section = config.section;  // the s x s memory matches the section size
  stm.lines = std::min(stm.lines, stm.section);  // L cannot exceed s
  return stm;
}

void check_config(const MachineConfig& config) {
  SMTU_CHECK_MSG(config.section >= 2 && config.section <= 256,
                 "section size must be in [2, 256]");
  SMTU_CHECK(config.lanes >= 1);
  SMTU_CHECK(config.scalar_issue_width >= 1);
  SMTU_CHECK(config.mem_bytes_per_cycle >= 1);
}

// -1 = no programmatic override; otherwise a DispatchMode value.
std::atomic<int> g_dispatch_override{-1};

DispatchMode env_dispatch_mode() {
  static const DispatchMode mode = [] {
    const char* env = std::getenv("SMTU_DISPATCH");
    if (env == nullptr || *env == '\0') return DispatchMode::kThreaded;
    const std::string_view value(env);
    if (value == "threaded") return DispatchMode::kThreaded;
    if (value == "switch") return DispatchMode::kSwitch;
    SMTU_CHECK_MSG(false, "SMTU_DISPATCH must be 'threaded' or 'switch'");
    return DispatchMode::kThreaded;
  }();
  return mode;
}

}  // namespace

DispatchMode default_dispatch_mode() {
  const int override_value = g_dispatch_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return static_cast<DispatchMode>(override_value);
  return env_dispatch_mode();
}

void set_default_dispatch_mode(DispatchMode mode) {
  g_dispatch_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* dispatch_mode_name(DispatchMode mode) {
  return mode == DispatchMode::kThreaded ? "threaded" : "switch";
}

namespace {

template <Op>
inline constexpr bool always_false_op = false;

constexpr u32 ceil_rate(u64 amount, u64 per_cycle) {
  return static_cast<u32>(ceil_div(amount, per_cycle));
}

// Shared front of every handler: budget check, instruction count, optional
// stderr trace. Returns the watermark before this instruction (the
// profiler's conservation bracket).
inline Cycle step_prologue(ExecState& es, const Instruction& inst) {
  SMTU_CHECK_MSG(es.stats.instructions < es.max_instructions,
                 "instruction budget exceeded (runaway program?)");
  ++es.stats.instructions;
  if (es.trace_remaining > 0) [[unlikely]] {
    --es.trace_remaining;
    std::fprintf(stderr, "[trace] pc=%zu %s\n", es.pc, to_string(inst).c_str());
  }
  return es.watermark;
}

// Main-memory footprint of a vector memory instruction (primary base
// address + total bytes moved), for bank arbitration. Must be evaluated
// before the functional body: v_ldb/v_stb auto-increment their base regs.
template <Op OP>
inline void vmem_footprint_for(const ExecState& es, const Instruction& inst, Addr* addr,
                               u64* bytes) {
  const u64 vl = es.vl;
  if constexpr (OP == Op::kVLdb || OP == Op::kVStb) {
    *addr = es.sreg(inst.c);
    *bytes = 6ull * vl;
  } else if constexpr (OP == Op::kVStbv) {
    *addr = es.sreg(inst.b);
    *bytes = 4ull * vl;
  } else if constexpr (OP == Op::kVScaR || OP == Op::kVScaC || OP == Op::kVScaX) {
    // Read-modify-write: both directions count.
    *addr = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    *bytes = 8ull * vl;
  } else {
    *addr = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    *bytes = 4ull * vl;
  }
}

// Functional execution of one vector instruction; returns its duration in
// cycles at full streaming rate (excluding startup). Bit-identical to the
// reference per-element bodies in Machine::execute_vector — contiguous
// accesses move through one bounds check + memcpy per stream instead of a
// checked call per element (the abort condition is unchanged: the span is
// exactly the union of the element accesses).
template <Op OP>
inline u32 exec_vector_body(ExecState& es, const Instruction& inst) {
  [[maybe_unused]] const u32 vl = es.vl;

  if constexpr (OP == Op::kVLd) {
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    if (vl != 0) std::memcpy(es.vreg_row(inst.a), mem.read_span(base, 4ull * vl), 4ull * vl);
    es.stats.mem_contiguous_bytes += 4ull * vl;
    return ceil_rate(4ull * vl, es.mem_bytes_per_cycle);
  } else if constexpr (OP == Op::kVSt) {
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    if (vl != 0) std::memcpy(mem.write_span(base, 4ull * vl), es.vreg_row(inst.a), 4ull * vl);
    es.stats.mem_contiguous_bytes += 4ull * vl;
    return ceil_rate(4ull * vl, es.mem_bytes_per_cycle);
  } else if constexpr (OP == Op::kVLdx) {
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u32* idx = es.vreg_row(inst.c);
    u32* dst = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) dst[i] = mem.read_u32(base + 4ull * idx[i]);
    es.stats.mem_indexed_elements += vl;
    return ceil_rate(vl, es.mem_indexed_elems_per_cycle);
  } else if constexpr (OP == Op::kVStx) {
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u32* idx = es.vreg_row(inst.c);
    const u32* src = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) mem.write_u32(base + 4ull * idx[i], src[i]);
    es.stats.mem_indexed_elements += vl;
    return ceil_rate(vl, es.mem_indexed_elems_per_cycle);
  } else if constexpr (OP == Op::kVLds) {
    // Strided accesses hit one bank per element, like indexed ones.
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u64 stride = es.sreg(inst.c);
    u32* dst = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) dst[i] = mem.read_u32(base + i * stride);
    es.stats.mem_indexed_elements += vl;
    return ceil_rate(vl, es.mem_indexed_elems_per_cycle);
  } else if constexpr (OP == Op::kVSts) {
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u64 stride = es.sreg(inst.c);
    const u32* src = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) mem.write_u32(base + i * stride, src[i]);
    es.stats.mem_indexed_elements += vl;
    return ceil_rate(vl, es.mem_indexed_elems_per_cycle);
  } else if constexpr (OP == Op::kVAdd || OP == Op::kVSub || OP == Op::kVMul ||
                       OP == Op::kVAnd || OP == Op::kVOr || OP == Op::kVXor ||
                       OP == Op::kVMin || OP == Op::kVMax || OP == Op::kVSeq) {
    u32* a = es.vreg_row(inst.a);
    const u32* b = es.vreg_row(inst.b);
    const u32* c = es.vreg_row(inst.c);
    SMTU_VEC_LOOP
    for (u32 i = 0; i < vl; ++i) {
      if constexpr (OP == Op::kVAdd) a[i] = b[i] + c[i];
      else if constexpr (OP == Op::kVSub) a[i] = b[i] - c[i];
      else if constexpr (OP == Op::kVMul) a[i] = b[i] * c[i];
      else if constexpr (OP == Op::kVAnd) a[i] = b[i] & c[i];
      else if constexpr (OP == Op::kVOr) a[i] = b[i] | c[i];
      else if constexpr (OP == Op::kVXor) a[i] = b[i] ^ c[i];
      else if constexpr (OP == Op::kVMin) a[i] = std::min(b[i], c[i]);
      else if constexpr (OP == Op::kVMax) a[i] = std::max(b[i], c[i]);
      else a[i] = b[i] == c[i] ? 1 : 0;
    }
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVFAdd || OP == Op::kVFMul) {
    // Lane-wise float: no reassociation, so vectorizing is bit-exact.
    u32* a = es.vreg_row(inst.a);
    const u32* b = es.vreg_row(inst.b);
    const u32* c = es.vreg_row(inst.c);
    SMTU_VEC_LOOP
    for (u32 i = 0; i < vl; ++i) {
      if constexpr (OP == Op::kVFAdd) {
        a[i] = std::bit_cast<u32>(std::bit_cast<float>(b[i]) + std::bit_cast<float>(c[i]));
      } else {
        a[i] = std::bit_cast<u32>(std::bit_cast<float>(b[i]) * std::bit_cast<float>(c[i]));
      }
    }
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVAddi) {
    u32* a = es.vreg_row(inst.a);
    const u32* b = es.vreg_row(inst.b);
    const u32 imm = static_cast<u32>(inst.imm);
    SMTU_VEC_LOOP
    for (u32 i = 0; i < vl; ++i) a[i] = b[i] + imm;
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVAdds || OP == Op::kVSeqS) {
    u32* a = es.vreg_row(inst.a);
    const u32* b = es.vreg_row(inst.b);
    const u32 scalar = static_cast<u32>(es.sreg(inst.c));
    SMTU_VEC_LOOP
    for (u32 i = 0; i < vl; ++i) {
      if constexpr (OP == Op::kVAdds) a[i] = b[i] + scalar;
      else a[i] = b[i] == scalar ? 1 : 0;
    }
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVBcast || OP == Op::kVBcasti) {
    u32* a = es.vreg_row(inst.a);
    const u32 value = OP == Op::kVBcast ? static_cast<u32>(es.sreg(inst.b))
                                        : static_cast<u32>(inst.imm);
    SMTU_VEC_LOOP
    for (u32 i = 0; i < vl; ++i) a[i] = value;
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVIota) {
    u32* a = es.vreg_row(inst.a);
    SMTU_VEC_LOOP
    for (u32 i = 0; i < vl; ++i) a[i] = i;
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVSlideUp || OP == Op::kVSlideDown) {
    const u32 shift = static_cast<u32>(inst.imm);
    es.slide_scratch.assign(vl, 0);
    const u32* src = es.vreg_row(inst.b);
    for (u32 i = 0; i < vl; ++i) {
      if constexpr (OP == Op::kVSlideUp) {
        if (i >= shift) es.slide_scratch[i] = src[i - shift];
      } else {
        if (i + shift < vl) es.slide_scratch[i] = src[i + shift];
      }
    }
    std::copy(es.slide_scratch.begin(), es.slide_scratch.end(), es.vreg_row(inst.a));
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVRedSum) {
    const u32* b = es.vreg_row(inst.b);
    u64 total = 0;
    for (u32 i = 0; i < vl; ++i) total += b[i];
    es.set_sreg(inst.a, total);
    // Lane-parallel partial sums plus a log-depth combine.
    return ceil_rate(vl, es.lanes) + log2_ceil(es.lanes + 1);
  } else if constexpr (OP == Op::kVFRedSum) {
    // Sequential accumulation order is architectural: do not vectorize.
    const u32* b = es.vreg_row(inst.b);
    float total = 0.0f;
    for (u32 i = 0; i < vl; ++i) total += std::bit_cast<float>(b[i]);
    es.set_sreg(inst.a, std::bit_cast<u32>(total));
    return ceil_rate(vl, es.lanes) + log2_ceil(es.lanes + 1);
  } else if constexpr (OP == Op::kVExtract) {
    const u64 lane = es.sreg(inst.c);
    SMTU_CHECK_MSG(lane < es.section, "v_extract lane out of range");
    es.set_sreg(inst.a, es.vreg_row(inst.b)[lane]);
    return 1;
  } else if constexpr (OP == Op::kVGthC || OP == Op::kVGthR) {
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u32* pos = es.vreg_row(inst.c);
    u32* dst = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) {
      const u32 lane = OP == Op::kVGthC ? (pos[i] >> 8) & 0xff : pos[i] & 0xff;
      dst[i] = mem.read_u32(base + 4ull * lane);
    }
    // Positional access touches an s-element window only, which the HiSM
    // hardware banks like the s x s memory: full lane-parallel rate.
    es.stats.mem_indexed_elements += vl;
    return ceil_rate(vl, es.lanes);
  } else if constexpr (OP == Op::kVScaR || OP == Op::kVScaC) {
    // Read-modify-write scatter: lanes may collide on an address, so the
    // sequential order is architectural — do not vectorize.
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u32* pos = es.vreg_row(inst.c);
    const u32* val = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) {
      const u32 lane = OP == Op::kVScaR ? pos[i] & 0xff : (pos[i] >> 8) & 0xff;
      const Addr addr = base + 4ull * lane;
      mem.write_u32(addr, std::bit_cast<u32>(std::bit_cast<float>(mem.read_u32(addr)) +
                                             std::bit_cast<float>(val[i])));
    }
    es.stats.mem_indexed_elements += vl;
    return ceil_rate(vl, es.lanes);  // banked s-element window
  } else if constexpr (OP == Op::kVScaX) {
    // General-index sibling of v_scac: full 32-bit indices, so it streams
    // at the indexed rate (one address per element) like v_ldx/v_stx.
    Memory& mem = *es.memory;
    const Addr base = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u32* idx = es.vreg_row(inst.c);
    const u32* val = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) {
      const Addr addr = base + 4ull * idx[i];
      mem.write_u32(addr, std::bit_cast<u32>(std::bit_cast<float>(mem.read_u32(addr)) +
                                             std::bit_cast<float>(val[i])));
    }
    es.stats.mem_indexed_elements += vl;
    return ceil_rate(vl, es.mem_indexed_elems_per_cycle);
  } else if constexpr (OP == Op::kIcm) {
    es.stm->clear();
    return 1;
  } else if constexpr (OP == Op::kVLdb) {
    Memory& mem = *es.memory;
    const Addr pos_addr = es.sreg(inst.c);
    const Addr val_addr = es.sreg(inst.d);
    u32* val = es.vreg_row(inst.a);
    u32* pos = es.vreg_row(inst.b);
    if (vl != 0) {
      const u8* pos_src = mem.read_span(pos_addr, 2ull * vl);
      SMTU_VEC_LOOP
      for (u32 i = 0; i < vl; ++i) {
        pos[i] = static_cast<u32>(pos_src[2 * i]) | static_cast<u32>(pos_src[2 * i + 1]) << 8;
      }
      std::memcpy(val, mem.read_span(val_addr, 4ull * vl), 4ull * vl);
    }
    es.set_sreg(inst.c, pos_addr + 2ull * vl);
    es.set_sreg(inst.d, val_addr + 4ull * vl);
    es.stats.mem_contiguous_bytes += 6ull * vl;
    return ceil_rate(6ull * vl, es.mem_bytes_per_cycle);
  } else if constexpr (OP == Op::kVStb) {
    // The position and value streams must not overlap (kernel contract).
    // Finish the position bytes before taking the value span: write_span
    // may reallocate the backing store and invalidate earlier pointers.
    Memory& mem = *es.memory;
    const Addr pos_addr = es.sreg(inst.c);
    const Addr val_addr = es.sreg(inst.d);
    const u32* val = es.vreg_row(inst.a);
    const u32* pos = es.vreg_row(inst.b);
    if (vl != 0) {
      u8* pos_dst = mem.write_span(pos_addr, 2ull * vl);
      SMTU_VEC_LOOP
      for (u32 i = 0; i < vl; ++i) {
        pos_dst[2 * i] = static_cast<u8>(pos[i]);
        pos_dst[2 * i + 1] = static_cast<u8>(pos[i] >> 8);
      }
      std::memcpy(mem.write_span(val_addr, 4ull * vl), val, 4ull * vl);
    }
    es.set_sreg(inst.c, pos_addr + 2ull * vl);
    es.set_sreg(inst.d, val_addr + 4ull * vl);
    es.stats.mem_contiguous_bytes += 6ull * vl;
    return ceil_rate(6ull * vl, es.mem_bytes_per_cycle);
  } else if constexpr (OP == Op::kVStbv) {
    Memory& mem = *es.memory;
    const Addr val_addr = es.sreg(inst.b);
    if (vl != 0) std::memcpy(mem.write_span(val_addr, 4ull * vl), es.vreg_row(inst.a), 4ull * vl);
    es.set_sreg(inst.b, val_addr + 4ull * vl);
    es.stats.mem_contiguous_bytes += 4ull * vl;
    return ceil_rate(4ull * vl, es.mem_bytes_per_cycle);
  } else if constexpr (OP == Op::kVStcr) {
    es.stm_batch_scratch.resize(vl);
    const u32* pos = es.vreg_row(inst.b);
    const u32* val = es.vreg_row(inst.a);
    for (u32 i = 0; i < vl; ++i) {
      const u32 p = pos[i];
      es.stm_batch_scratch[i] = {static_cast<u8>(p & 0xff), static_cast<u8>((p >> 8) & 0xff),
                                 val[i]};
    }
    es.stats.stm_elements += vl;
    return es.stm->write_batch(es.stm_batch_scratch);
  } else if constexpr (OP == Op::kVLdcc) {
    const StmUnit::ReadBatch batch = es.stm->read_batch(vl);
    u32* val = es.vreg_row(inst.a);
    u32* pos = es.vreg_row(inst.b);
    for (u32 i = 0; i < vl; ++i) {
      val[i] = batch.entries[i].value_bits;
      pos[i] = static_cast<u32>(batch.entries[i].row) |
               static_cast<u32>(batch.entries[i].col) << 8;
    }
    es.stats.stm_elements += vl;
    return batch.cycles;
  } else {
    static_assert(always_false_op<OP>, "not a vector op");
  }
}

// Full execution of one vector instruction under the resource-time model:
// hazards, issue slots, unit occupancy, chaining, STM bank ordering, bank
// contention, then the functional body. The per-opcode instantiation lets
// the unit/startup/trace classification and the STM special cases resolve
// at compile time; the cycle arithmetic is the same as step_switch().
template <Op OP>
void exec_vector(ExecState& es, const Instruction& inst, const DecodedInst& dec) {
  const Cycle profile_w_before = step_prologue(es, inst);
  ++es.stats.vector_instructions;
  es.stats.vector_elements += es.vl;

  // Scalar sources the instruction needs at issue (predecoded). Alongside
  // the ready time, track which constraint set it (the profiler's stall
  // reason); strictly-later constraints win, so ties keep the first-listed
  // reason.
  Cycle ready = es.pc_redirect;
  StallReason stall_why = StallReason::kScalarFetch;
  if (es.vl_ready > ready) {
    ready = es.vl_ready;
    stall_why = StallReason::kRawHazard;
  }
  for (u32 i = 0; i < dec.num_sregs; ++i) {
    const Cycle r = es.sreg_ready[dec.sregs[i]];
    if (r > ready) {
      ready = r;
      stall_why = StallReason::kRawHazard;
    }
  }
  // Start absent hazard/resource constraints: the fetch point plus
  // sequential issue — the profiler's baseline for constraint delay.
  const Cycle profile_unblocked = std::max(es.pc_redirect, es.last_issue + 1);
  const Cycle t_issue = es.take_issue_slot(std::max(ready, es.last_issue));
  es.last_issue = t_issue;
  if (t_issue > ready) stall_why = StallReason::kIssueLimit;

  constexpr ExecUnit kUnit = op_unit(OP);
  constexpr usize kUnitIdx = static_cast<usize>(kUnit);
  const u32 startup = es.startup_by_kind[static_cast<usize>(op_startup(OP))];

  // Which bank an STM instruction touches (known before execution: the
  // fill side for icm/v_stcr, the peeked drain bank for v_ldcc).
  [[maybe_unused]] u32 stm_op_bank = 0;
  Cycle resource_ready = es.unit_free[kUnitIdx];
  if constexpr (OP == Op::kVLdcc) {
    stm_op_bank = es.stm->peek_drain_bank();
    // A bank drains only after its fill completed; a separate drain
    // datapath exists only with the second buffer.
    resource_ready = es.stm_double
                         ? std::max(es.stm_drain_free, es.stm_fill_done[stm_op_bank])
                         : std::max(es.unit_free[kUnitIdx], es.stm_fill_done[stm_op_bank]);
  } else if constexpr (OP == Op::kIcm) {
    if (es.stm_double) {
      // Switching banks: the incoming bank's drain must have finished.
      stm_op_bank = es.stm->fill_bank() ^ 1;
      resource_ready = std::max(es.unit_free[kUnitIdx], es.stm_drain_done[stm_op_bank]);
    }
  } else if constexpr (kUnit == ExecUnit::kStm) {
    stm_op_bank = es.stm_double ? es.stm->fill_bank() : 0u;
  }

  // Start time: issue, unit availability, producers' first element (or
  // completion without chaining), and hazards on the destinations.
  Cycle t_start = t_issue;
  const auto bind = [&](Cycle term, StallReason reason) {
    if (term > t_start) {
      t_start = term;
      stall_why = reason;
    }
  };
  bind(resource_ready,
       kUnit == ExecUnit::kVMem
           ? (es.vmem_last_indexed ? StallReason::kMemIndexedSerial : StallReason::kMemPort)
           : (kUnit == ExecUnit::kStm ? StallReason::kStmBusy : StallReason::kValuBusy));
  Cycle src_last = 0;
  for (u32 i = 0; i < dec.num_srcs; ++i) {
    const u8 r = dec.srcs[i];
    bind(es.chaining ? es.vreg_first[r] : es.vreg_last[r],
         es.chaining ? StallReason::kChainingWait : StallReason::kRawHazard);
    src_last = std::max(src_last, es.vreg_last[r]);
  }
  for (u32 i = 0; i < dec.num_dsts; ++i) {
    const u8 r = dec.dsts[i];
    bind(std::max(es.vreg_readers_done[r], es.vreg_last[r]), StallReason::kVregBusy);
  }

  // Shared banked memory: the access may be pushed back behind another
  // core's occupancy of the banks it touches. A lone core never pushes
  // itself back (its per-bank occupancy is bounded by its own access
  // duration), which keeps the N=1 system bit-identical.
  if constexpr (kUnit == ExecUnit::kVMem) {
    if (es.memory_system != nullptr) {
      Addr mem_addr = 0;
      u64 mem_bytes = 0;
      vmem_footprint_for<OP>(es, inst, &mem_addr, &mem_bytes);
      const Cycle granted = es.memory_system->request(mem_addr, mem_bytes, t_start);
      if (granted > t_start) {
        t_start = granted;
        stall_why = StallReason::kMemBankContention;
      }
    }
  }

  const u32 duration = exec_vector_body<OP>(es, inst);

  const Cycle first_out = t_start + startup + 1;
  const Cycle last_out =
      std::max(t_start + startup + duration, src_last == 0 ? 0 : src_last + startup);
  // Pipelined units are occupied for their transfer slots only; the
  // startup is latency that later, independent instructions overlap.
  // The STM is the exception: the s x s memory is a single buffer, so
  // the unit stays busy until its results drain.
  const bool pipelined =
      (kUnit == ExecUnit::kVMem && es.mem_pipelined_startup) || kUnit == ExecUnit::kVAlu;
  const Cycle busy_until = pipelined ? std::max(t_start + duration, src_last) : last_out;
  if constexpr (OP == Op::kVLdcc) {
    if (es.stm_double) {
      es.stm_drain_free = std::max(es.stm_drain_free, busy_until);
    } else {
      es.unit_free[kUnitIdx] = std::max(es.unit_free[kUnitIdx], busy_until);
    }
    es.stm_drain_done[stm_op_bank] = std::max(es.stm_drain_done[stm_op_bank], last_out);
  } else if constexpr (kUnit == ExecUnit::kStm) {
    es.unit_free[kUnitIdx] = std::max(es.unit_free[kUnitIdx], busy_until);
    es.stm_fill_done[stm_op_bank] = std::max(es.stm_fill_done[stm_op_bank], last_out);
  } else {
    es.unit_free[kUnitIdx] = std::max(es.unit_free[kUnitIdx], busy_until);
    if constexpr (kUnit == ExecUnit::kVMem) es.vmem_last_indexed = op_indexed_vmem(OP);
  }
  const u64 busy = busy_until - t_start;
  if constexpr (kUnit == ExecUnit::kVMem) {
    es.stats.vmem_busy_cycles += busy;
  } else if constexpr (kUnit == ExecUnit::kVAlu) {
    es.stats.valu_busy_cycles += busy;
  } else {
    es.stats.stm_busy_cycles += busy;
  }

  if (es.trace_sink != nullptr) [[unlikely]] {
    constexpr TraceUnit kTraceUnit = kUnit == ExecUnit::kVMem   ? TraceUnit::kVMem
                                     : kUnit == ExecUnit::kVAlu ? TraceUnit::kVAlu
                                                                : TraceUnit::kStm;
    es.trace_sink->record(
        {es.pc, OP, es.vl, kTraceUnit, t_issue, t_start, first_out, last_out, es.core_id});
  }
  for (u32 i = 0; i < dec.num_dsts; ++i) {
    const u8 r = dec.dsts[i];
    es.vreg_first[r] = first_out;
    es.vreg_last[r] = last_out;
    es.vreg_readers_done[r] = last_out;
  }
  for (u32 i = 0; i < dec.num_srcs; ++i) {
    const u8 r = dec.srcs[i];
    es.vreg_readers_done[r] = std::max(es.vreg_readers_done[r], last_out);
  }

  // Scalar side effects of vector instructions.
  if constexpr (OP == Op::kVLdb || OP == Op::kVStb) {
    es.retire_scalar(inst.c, t_issue + es.scalar_op_latency);
    es.retire_scalar(inst.d, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kVStbv) {
    es.retire_scalar(inst.b, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kVRedSum || OP == Op::kVFRedSum || OP == Op::kVExtract) {
    es.retire_scalar(inst.a, last_out + 1);
  }
  es.bump_watermark(last_out);
  if (es.profiler != nullptr) {
    constexpr BusyKind kBusy =
        kUnit == ExecUnit::kVMem
            ? (op_indexed_vmem(OP) ? BusyKind::kVMemIndexed : BusyKind::kVMemStream)
            : (kUnit == ExecUnit::kStm ? BusyKind::kStm : BusyKind::kVAlu);
    es.profiler->record({es.pc, OP, es.vl, kBusy, stall_why, t_start, profile_unblocked,
                         profile_w_before, es.watermark, busy});
  }
  ++es.pc;
}

// Full execution of one scalar instruction: hazards, issue slot, memory
// port, functional body, retirement, trace/profile. Mirrors the scalar
// half of step_switch() exactly.
template <Op OP>
void exec_scalar(ExecState& es, const Instruction& inst, const DecodedInst& dec) {
  const Cycle profile_w_before = step_prologue(es, inst);
  ++es.stats.scalar_instructions;
  Cycle ready = es.pc_redirect;
  StallReason stall_why = StallReason::kScalarFetch;
  for (u32 i = 0; i < dec.num_sregs; ++i) {
    const Cycle r = es.sreg_ready[dec.sregs[i]];
    if (r > ready) {
      ready = r;
      stall_why = StallReason::kRawHazard;
    }
  }

  const Cycle profile_unblocked = std::max(es.pc_redirect, es.last_issue + 1);
  Cycle t_issue = es.take_issue_slot(std::max(ready, es.last_issue));
  if (t_issue > ready) stall_why = StallReason::kIssueLimit;
  if constexpr (op_scalar_mem(OP)) {
    const Cycle slot = es.take_scalar_mem_slot(t_issue);
    if (slot > t_issue) {
      t_issue = slot;
      stall_why = StallReason::kMemPort;
    }
  }
  es.last_issue = t_issue;
  es.bump_watermark(t_issue);

  usize next_pc = es.pc + 1;
  if constexpr (OP == Op::kLi) {
    es.set_sreg(inst.a, static_cast<u64>(inst.imm));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kMv) {
    es.set_sreg(inst.a, es.sreg(inst.b));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kAdd) {
    es.set_sreg(inst.a, es.sreg(inst.b) + es.sreg(inst.c));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kSub) {
    es.set_sreg(inst.a, es.sreg(inst.b) - es.sreg(inst.c));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kMul) {
    es.set_sreg(inst.a, es.sreg(inst.b) * es.sreg(inst.c));
    es.retire_scalar(inst.a, t_issue + es.mul_latency);
  } else if constexpr (OP == Op::kAnd) {
    es.set_sreg(inst.a, es.sreg(inst.b) & es.sreg(inst.c));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kOr) {
    es.set_sreg(inst.a, es.sreg(inst.b) | es.sreg(inst.c));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kXor) {
    es.set_sreg(inst.a, es.sreg(inst.b) ^ es.sreg(inst.c));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kSll) {
    es.set_sreg(inst.a, es.sreg(inst.b) << (es.sreg(inst.c) & 63));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kSrl) {
    es.set_sreg(inst.a, es.sreg(inst.b) >> (es.sreg(inst.c) & 63));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kMin) {
    es.set_sreg(inst.a, std::min(es.sreg(inst.b), es.sreg(inst.c)));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kMax) {
    es.set_sreg(inst.a, std::max(es.sreg(inst.b), es.sreg(inst.c)));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kFAdd) {
    es.set_sreg(inst.a,
                std::bit_cast<u32>(std::bit_cast<float>(static_cast<u32>(es.sreg(inst.b))) +
                                   std::bit_cast<float>(static_cast<u32>(es.sreg(inst.c)))));
    es.retire_scalar(inst.a, t_issue + es.mul_latency);
  } else if constexpr (OP == Op::kFMul) {
    es.set_sreg(inst.a,
                std::bit_cast<u32>(std::bit_cast<float>(static_cast<u32>(es.sreg(inst.b))) *
                                   std::bit_cast<float>(static_cast<u32>(es.sreg(inst.c)))));
    es.retire_scalar(inst.a, t_issue + es.mul_latency);
  } else if constexpr (OP == Op::kAddi) {
    es.set_sreg(inst.a, es.sreg(inst.b) + static_cast<u64>(inst.imm));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kMuli) {
    es.set_sreg(inst.a, es.sreg(inst.b) * static_cast<u64>(inst.imm));
    es.retire_scalar(inst.a, t_issue + es.mul_latency);
  } else if constexpr (OP == Op::kAndi) {
    es.set_sreg(inst.a, es.sreg(inst.b) & static_cast<u64>(inst.imm));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kSlli) {
    es.set_sreg(inst.a, es.sreg(inst.b) << (inst.imm & 63));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kSrli) {
    es.set_sreg(inst.a, es.sreg(inst.b) >> (inst.imm & 63));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kLw) {
    es.set_sreg(inst.a, es.memory->read_u32(es.sreg(inst.b) + static_cast<u64>(inst.imm)));
    es.retire_scalar(inst.a, t_issue + es.scalar_load_latency);
  } else if constexpr (OP == Op::kLhu) {
    es.set_sreg(inst.a, es.memory->read_u16(es.sreg(inst.b) + static_cast<u64>(inst.imm)));
    es.retire_scalar(inst.a, t_issue + es.scalar_load_latency);
  } else if constexpr (OP == Op::kLbu) {
    es.set_sreg(inst.a, es.memory->read_u8(es.sreg(inst.b) + static_cast<u64>(inst.imm)));
    es.retire_scalar(inst.a, t_issue + es.scalar_load_latency);
  } else if constexpr (OP == Op::kSw) {
    es.memory->write_u32(es.sreg(inst.b) + static_cast<u64>(inst.imm),
                         static_cast<u32>(es.sreg(inst.a)));
  } else if constexpr (OP == Op::kSh) {
    es.memory->write_u16(es.sreg(inst.b) + static_cast<u64>(inst.imm),
                         static_cast<u16>(es.sreg(inst.a)));
  } else if constexpr (OP == Op::kSb) {
    es.memory->write_u8(es.sreg(inst.b) + static_cast<u64>(inst.imm),
                        static_cast<u8>(es.sreg(inst.a)));
  } else if constexpr (OP == Op::kAmoAdd) {
    // Atomic fetch-and-add: atomicity comes for free because the system
    // interleaves whole instructions; the memory round trip costs a
    // scalar load latency.
    const Addr addr = es.sreg(inst.b) + static_cast<u64>(inst.imm);
    const u32 old = es.memory->read_u32(addr);
    es.memory->write_u32(addr, old + static_cast<u32>(es.sreg(inst.c)));
    es.set_sreg(inst.a, old);
    es.retire_scalar(inst.a, t_issue + es.scalar_load_latency);
  } else if constexpr (OP == Op::kBeq || OP == Op::kBne || OP == Op::kBlt || OP == Op::kBge) {
    const i64 lhs = static_cast<i64>(es.sreg(inst.a));
    const i64 rhs = static_cast<i64>(es.sreg(inst.b));
    bool taken = false;
    if constexpr (OP == Op::kBeq) taken = lhs == rhs;
    else if constexpr (OP == Op::kBne) taken = lhs != rhs;
    else if constexpr (OP == Op::kBlt) taken = lhs < rhs;
    else taken = lhs >= rhs;
    if (taken) {
      next_pc = static_cast<usize>(inst.imm);
      es.pc_redirect = t_issue + 1 + es.branch_penalty;
    }
  } else if constexpr (OP == Op::kJal) {
    es.set_sreg(inst.a, static_cast<u64>(es.pc + 1));
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
    next_pc = static_cast<usize>(inst.imm);
    es.pc_redirect = t_issue + 1 + es.branch_penalty;
  } else if constexpr (OP == Op::kJr) {
    next_pc = static_cast<usize>(es.sreg(inst.a));
    es.pc_redirect = t_issue + 1 + es.branch_penalty;
  } else if constexpr (OP == Op::kSsvl) {
    const u64 remaining = es.sreg(inst.a);
    es.vl = static_cast<u32>(std::min<u64>(es.section, remaining));
    es.set_sreg(inst.a, remaining - es.vl);
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
    es.vl_ready = std::max(es.vl_ready, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kSetvl) {
    es.vl = static_cast<u32>(std::min<u64>(es.section, es.sreg(inst.b)));
    es.set_sreg(inst.a, es.vl);
    es.retire_scalar(inst.a, t_issue + es.scalar_op_latency);
    es.vl_ready = std::max(es.vl_ready, t_issue + es.scalar_op_latency);
  } else if constexpr (OP == Op::kBarrier) {
    // Rendezvous: this core is done when everything it issued completes
    // (the watermark). The trace/profiler sample is deferred to
    // release_barrier(), where the wait's true extent is known.
    es.status = StepStatus::kAtBarrier;
    es.barrier_arrival = es.watermark;
    es.barrier_issue = t_issue;
    es.barrier_unblocked = profile_unblocked;
    es.barrier_w_before = profile_w_before;
    es.barrier_pc = es.pc;
    es.barrier_why = stall_why;
    es.pc = next_pc;
    return;
  } else if constexpr (OP == Op::kHalt) {
    es.status = StepStatus::kHalted;
  } else if constexpr (OP == Op::kNop) {
    // nothing
  } else {
    static_assert(always_false_op<OP>, "unhandled scalar op in execute");
  }
  if (es.trace_sink != nullptr) [[unlikely]] {
    const Cycle done = inst.a != kRegZero ? es.sreg_ready[inst.a] : t_issue;
    es.trace_sink->record({es.pc, OP, 0, TraceUnit::kScalar, t_issue, t_issue,
                           std::max(t_issue, done), std::max(t_issue, done), es.core_id});
  }
  if (es.profiler != nullptr) {
    es.profiler->record({es.pc, OP, 0, BusyKind::kScalar, stall_why, t_issue,
                         profile_unblocked, profile_w_before, es.watermark, 1});
  }
  es.pc = next_pc;
}

template <Op OP>
void op_entry(ExecState& es, const Instruction& inst, const DecodedInst& dec) {
  if constexpr (op_is_vector(OP)) {
    exec_vector<OP>(es, inst, dec);
  } else {
    exec_scalar<OP>(es, inst, dec);
  }
}

template <usize... Is>
constexpr std::array<OpHandler, kOpCount> make_handler_table(std::index_sequence<Is...>) {
  return {&op_entry<static_cast<Op>(Is)>...};
}

constexpr std::array<OpHandler, kOpCount> kHandlerTable =
    make_handler_table(std::make_index_sequence<kOpCount>{});

}  // namespace

OpHandler opcode_handler(Op op) {
  const usize index = static_cast<usize>(op);
  SMTU_CHECK_MSG(index < kOpCount, "opcode out of range");
  return kHandlerTable[index];
}

Machine::Machine(const MachineConfig& config) : config_(config) {
  check_config(config_);
  owned_memory_ = std::make_unique<Memory>(config_.memory_limit);
  owned_stm_ = std::make_unique<StmUnit>(stm_config_for(config_));
  es_.memory = owned_memory_.get();
  es_.stm = owned_stm_.get();
  dispatch_ = default_dispatch_mode();
  init_exec_state();
}

Machine::Machine(const MachineConfig& config, const CoreContext& context) : config_(config) {
  check_config(config_);
  SMTU_CHECK_MSG(context.memory != nullptr, "CoreContext requires a memory");
  es_.memory = context.memory;
  es_.memory_system = context.memory_system;
  owned_stm_ = std::make_unique<StmUnit>(stm_config_for(config_));
  es_.stm = owned_stm_.get();
  es_.profiler = context.profiler;
  es_.trace_sink = context.trace;
  es_.core_id = context.core_id;
  dispatch_ = default_dispatch_mode();
  init_exec_state();
}

void Machine::init_exec_state() {
  es_.section = config_.section;
  es_.vreg_data.assign(static_cast<usize>(kNumVectorRegs) * config_.section, 0);
  es_.lanes = config_.lanes;
  es_.scalar_issue_width = config_.scalar_issue_width;
  es_.scalar_mem_ports = config_.scalar_mem_ports;
  es_.mem_bytes_per_cycle = config_.mem_bytes_per_cycle;
  es_.mem_indexed_elems_per_cycle = config_.mem_indexed_elems_per_cycle;
  es_.scalar_op_latency = config_.scalar_op_latency;
  es_.scalar_load_latency = config_.scalar_load_latency;
  es_.mul_latency = config_.mul_latency;
  es_.branch_penalty = config_.branch_penalty;
  es_.chaining = config_.chaining;
  es_.mem_pipelined_startup = config_.mem_pipelined_startup;
  es_.stm_double = config_.stm.double_buffer;
  es_.max_instructions = config_.max_instructions;
}

std::span<const u32> Machine::vreg(u32 index) const {
  SMTU_CHECK(index < kNumVectorRegs);
  return {es_.vreg_row(index), es_.section};
}

// Reference functional execution of one vector instruction, per element
// through the checked memory accessors — the original interpreter bodies,
// kept verbatim as the differential baseline for the spanned/SIMD handler
// bodies above.
u32 Machine::execute_vector(const Instruction& inst) {
  const u32 vl = es_.vl;
  const auto V = [this](u8 r) { return es_.vreg_row(r); };
  const auto ceil_rate = [](u64 amount, u64 per_cycle) {
    return static_cast<u32>(ceil_div(amount, per_cycle));
  };
  Memory& mem = *es_.memory;

  switch (inst.op) {
    case Op::kVLd: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = mem.read_u32(base + 4 * i);
      es_.stats.mem_contiguous_bytes += 4ull * vl;
      return ceil_rate(4ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVSt: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) mem.write_u32(base + 4 * i, V(inst.a)[i]);
      es_.stats.mem_contiguous_bytes += 4ull * vl;
      return ceil_rate(4ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVLdx: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        V(inst.a)[i] = mem.read_u32(base + 4ull * V(inst.c)[i]);
      }
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVStx: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        mem.write_u32(base + 4ull * V(inst.c)[i], V(inst.a)[i]);
      }
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVLds: {
      // Strided accesses hit one bank per element, like indexed ones.
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      const u64 stride = sreg(inst.c);
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = mem.read_u32(base + i * stride);
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVSts: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      const u64 stride = sreg(inst.c);
      for (u32 i = 0; i < vl; ++i) mem.write_u32(base + i * stride, V(inst.a)[i]);
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVAdd:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] + V(inst.c)[i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVSub:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] - V(inst.c)[i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVMul:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] * V(inst.c)[i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVAnd:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] & V(inst.c)[i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVOr:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] | V(inst.c)[i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVXor:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] ^ V(inst.c)[i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVMin:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = std::min(V(inst.b)[i], V(inst.c)[i]);
      return ceil_rate(vl, config_.lanes);
    case Op::kVMax:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = std::max(V(inst.b)[i], V(inst.c)[i]);
      return ceil_rate(vl, config_.lanes);
    case Op::kVAddi:
      for (u32 i = 0; i < vl; ++i) {
        V(inst.a)[i] = V(inst.b)[i] + static_cast<u32>(inst.imm);
      }
      return ceil_rate(vl, config_.lanes);
    case Op::kVAdds: {
      const u32 scalar = static_cast<u32>(sreg(inst.c));
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] + scalar;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVBcast: {
      const u32 scalar = static_cast<u32>(sreg(inst.b));
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = scalar;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVBcasti:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = static_cast<u32>(inst.imm);
      return ceil_rate(vl, config_.lanes);
    case Op::kVIota:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = i;
      return ceil_rate(vl, config_.lanes);
    case Op::kVSlideUp: {
      const u32 shift = static_cast<u32>(inst.imm);
      es_.slide_scratch.assign(vl, 0);
      for (u32 i = 0; i < vl; ++i) {
        if (i >= shift) es_.slide_scratch[i] = V(inst.b)[i - shift];
      }
      std::copy(es_.slide_scratch.begin(), es_.slide_scratch.end(), V(inst.a));
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVSlideDown: {
      const u32 shift = static_cast<u32>(inst.imm);
      es_.slide_scratch.assign(vl, 0);
      for (u32 i = 0; i < vl; ++i) {
        if (i + shift < vl) es_.slide_scratch[i] = V(inst.b)[i + shift];
      }
      std::copy(es_.slide_scratch.begin(), es_.slide_scratch.end(), V(inst.a));
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVRedSum: {
      u64 total = 0;
      for (u32 i = 0; i < vl; ++i) total += V(inst.b)[i];
      set_sreg(inst.a, total);
      // Lane-parallel partial sums plus a log-depth combine.
      return ceil_rate(vl, config_.lanes) + log2_ceil(config_.lanes + 1);
    }
    case Op::kVExtract: {
      const u64 lane = sreg(inst.c);
      SMTU_CHECK_MSG(lane < config_.section, "v_extract lane out of range");
      set_sreg(inst.a, V(inst.b)[lane]);
      return 1;
    }
    case Op::kVSeq:
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] == V(inst.c)[i] ? 1 : 0;
      return ceil_rate(vl, config_.lanes);
    case Op::kVSeqS: {
      const u32 scalar = static_cast<u32>(sreg(inst.c));
      for (u32 i = 0; i < vl; ++i) V(inst.a)[i] = V(inst.b)[i] == scalar ? 1 : 0;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVFRedSum: {
      float total = 0.0f;
      for (u32 i = 0; i < vl; ++i) total += std::bit_cast<float>(V(inst.b)[i]);
      set_sreg(inst.a, std::bit_cast<u32>(total));
      return ceil_rate(vl, config_.lanes) + log2_ceil(config_.lanes + 1);
    }
    case Op::kVGthC: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 col = (V(inst.c)[i] >> 8) & 0xff;
        V(inst.a)[i] = mem.read_u32(base + 4ull * col);
      }
      // Positional access touches an s-element window only, which the HiSM
      // hardware banks like the s x s memory: full lane-parallel rate.
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVScaR: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 row = V(inst.c)[i] & 0xff;
        const Addr addr = base + 4ull * row;
        mem.write_f32(addr, mem.read_f32(addr) + std::bit_cast<float>(V(inst.a)[i]));
      }
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);  // banked s-element window
    }
    case Op::kVGthR: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 row = V(inst.c)[i] & 0xff;
        V(inst.a)[i] = mem.read_u32(base + 4ull * row);
      }
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVScaC: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 col = (V(inst.c)[i] >> 8) & 0xff;
        const Addr addr = base + 4ull * col;
        mem.write_f32(addr, mem.read_f32(addr) + std::bit_cast<float>(V(inst.a)[i]));
      }
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVScaX: {
      // General-index sibling of v_scac: full 32-bit indices, so it streams
      // at the indexed rate (one address per element) like v_ldx/v_stx.
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const Addr addr = base + 4ull * V(inst.c)[i];
        mem.write_f32(addr, mem.read_f32(addr) + std::bit_cast<float>(V(inst.a)[i]));
      }
      es_.stats.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVFAdd:
      for (u32 i = 0; i < vl; ++i) {
        V(inst.a)[i] = std::bit_cast<u32>(std::bit_cast<float>(V(inst.b)[i]) +
                                          std::bit_cast<float>(V(inst.c)[i]));
      }
      return ceil_rate(vl, config_.lanes);
    case Op::kVFMul:
      for (u32 i = 0; i < vl; ++i) {
        V(inst.a)[i] = std::bit_cast<u32>(std::bit_cast<float>(V(inst.b)[i]) *
                                          std::bit_cast<float>(V(inst.c)[i]));
      }
      return ceil_rate(vl, config_.lanes);
    case Op::kIcm:
      es_.stm->clear();
      return 1;
    case Op::kVLdb: {
      Addr pos_addr = sreg(inst.c);
      Addr val_addr = sreg(inst.d);
      for (u32 i = 0; i < vl; ++i) {
        const u8 row = mem.read_u8(pos_addr + 2ull * i);
        const u8 col = mem.read_u8(pos_addr + 2ull * i + 1);
        V(inst.b)[i] = static_cast<u32>(row) | static_cast<u32>(col) << 8;
        V(inst.a)[i] = mem.read_u32(val_addr + 4ull * i);
      }
      set_sreg(inst.c, pos_addr + 2ull * vl);
      set_sreg(inst.d, val_addr + 4ull * vl);
      es_.stats.mem_contiguous_bytes += 6ull * vl;
      return ceil_rate(6ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVStcr: {
      es_.stm_batch_scratch.resize(vl);
      for (u32 i = 0; i < vl; ++i) {
        const u32 pos = V(inst.b)[i];
        es_.stm_batch_scratch[i] = {static_cast<u8>(pos & 0xff),
                                    static_cast<u8>((pos >> 8) & 0xff), V(inst.a)[i]};
      }
      es_.stats.stm_elements += vl;
      return es_.stm->write_batch(es_.stm_batch_scratch);
    }
    case Op::kVLdcc: {
      const StmUnit::ReadBatch batch = es_.stm->read_batch(vl);
      for (u32 i = 0; i < vl; ++i) {
        V(inst.a)[i] = batch.entries[i].value_bits;
        V(inst.b)[i] = static_cast<u32>(batch.entries[i].row) |
                       static_cast<u32>(batch.entries[i].col) << 8;
      }
      es_.stats.stm_elements += vl;
      return batch.cycles;
    }
    case Op::kVStb: {
      Addr pos_addr = sreg(inst.c);
      Addr val_addr = sreg(inst.d);
      for (u32 i = 0; i < vl; ++i) {
        const u32 pos = V(inst.b)[i];
        mem.write_u8(pos_addr + 2ull * i, static_cast<u8>(pos & 0xff));
        mem.write_u8(pos_addr + 2ull * i + 1, static_cast<u8>((pos >> 8) & 0xff));
        mem.write_u32(val_addr + 4ull * i, V(inst.a)[i]);
      }
      set_sreg(inst.c, pos_addr + 2ull * vl);
      set_sreg(inst.d, val_addr + 4ull * vl);
      es_.stats.mem_contiguous_bytes += 6ull * vl;
      return ceil_rate(6ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVStbv: {
      Addr val_addr = sreg(inst.b);
      for (u32 i = 0; i < vl; ++i) mem.write_u32(val_addr + 4ull * i, V(inst.a)[i]);
      set_sreg(inst.b, val_addr + 4ull * vl);
      es_.stats.mem_contiguous_bytes += 4ull * vl;
      return ceil_rate(4ull * vl, config_.mem_bytes_per_cycle);
    }
    default:
      SMTU_CHECK_MSG(false, "not a vector op");
  }
  return 0;
}

void Machine::vmem_footprint(const Instruction& inst, Addr* addr, u64* bytes) const {
  // The bank model arbitrates one request per vector memory instruction:
  // the instruction's total traffic laid out from its primary base. Multi-
  // stream instructions (v_ldb/v_stb move a position and a value stream)
  // fold into one request so an instruction can never contend with itself.
  const u64 vl = es_.vl;
  switch (inst.op) {
    case Op::kVLdb:
    case Op::kVStb:
      *addr = sreg(inst.c);
      *bytes = 6ull * vl;
      return;
    case Op::kVStbv:
      *addr = sreg(inst.b);
      *bytes = 4ull * vl;
      return;
    case Op::kVScaR:
    case Op::kVScaC:
    case Op::kVScaX:
      // Read-modify-write: both directions count.
      *addr = sreg(inst.b) + static_cast<u64>(inst.imm);
      *bytes = 8ull * vl;
      return;
    default:
      *addr = sreg(inst.b) + static_cast<u64>(inst.imm);
      *bytes = 4ull * vl;
      return;
  }
}

void Machine::begin_run(const Program& program, usize entry_pc) {
  SMTU_CHECK_MSG(entry_pc < program.size(), "entry pc out of range");

  // Programs from assemble() arrive predecoded; hand-built ones (tests,
  // generators) get a local decode so the hot loop has a single path.
  program_ = &program;
  es_.insts = program.instructions.data();
  es_.decoded = program.decoded.data();
  es_.program_size = program.size();
  if (program.decoded.size() != program.instructions.size()) {
    local_decode_ = decode_instructions(program.instructions);
    es_.decoded = local_decode_.data();
  }
  // Startup latencies by StartupKind, resolved from the config once per run
  // (indexed by the predecoded kind instead of re-deriving per dynamic
  // instruction).
  es_.startup_by_kind = {config_.mem_startup, config_.valu_startup,
                         config_.stm.fill_pipeline_cycles,
                         config_.stm.drain_pipeline_cycles, 0};

  // Reset timing and statistics; architectural state persists.
  es_.sreg_ready.fill(0);
  es_.vreg_first.fill(0);
  es_.vreg_last.fill(0);
  es_.vreg_readers_done.fill(0);
  es_.unit_free.fill(0);
  es_.vl_ready = 0;
  es_.last_issue = 0;
  es_.pc_redirect = 0;
  es_.watermark = 0;
  es_.issue_cycle = 0;
  es_.issue_used = 0;
  es_.scalar_mem_cycle = 0;
  es_.scalar_mem_used = 0;
  es_.stm_fill_done[0] = 0;
  es_.stm_fill_done[1] = 0;
  es_.stm_drain_done[0] = 0;
  es_.stm_drain_done[1] = 0;
  es_.stm_drain_free = 0;
  es_.vmem_last_indexed = false;
  es_.stats = {};
  stm_before_ = es_.stm->stats();
  es_.pc = entry_pc;
  es_.status = StepStatus::kRunning;
  if (es_.profiler != nullptr) es_.profiler->begin_run(program);
}

StepStatus Machine::step() {
  SMTU_CHECK_MSG(es_.status == StepStatus::kRunning,
                 "step() on a core that is halted or waiting at a barrier");
  SMTU_CHECK_MSG(es_.pc < es_.program_size,
                 "pc ran off the end of the program (missing halt?)");
  if (dispatch_ == DispatchMode::kSwitch) return step_switch();
  const DecodedInst& dec = es_.decoded[es_.pc];
  dec.handler(es_, es_.insts[es_.pc], dec);
  return es_.status;
}

// The legacy switch-dispatch interpreter, retained as the differential
// reference for the threaded handlers (tests/test_dispatch.cpp asserts
// bit-identical stats, profiles, and memory images between both paths).
StepStatus Machine::step_switch() {
  ExecState& es = es_;
  const Instruction& inst = es.insts[es.pc];
  const DecodedInst& dec = es.decoded[es.pc];
  SMTU_CHECK_MSG(es.stats.instructions < config_.max_instructions,
                 "instruction budget exceeded (runaway program?)");
  ++es.stats.instructions;
  // Watermark increments bracket each instruction; they telescope to the
  // final cycle count, which is what makes the profiler's attribution
  // conservation-exact (see profiler.hpp).
  const Cycle profile_w_before = es.watermark;

  if (es.trace_remaining > 0) {
    --es.trace_remaining;
    std::fprintf(stderr, "[trace] pc=%zu %s\n", es.pc, to_string(inst).c_str());
  }

  if (dec.is_vector) {
    ++es.stats.vector_instructions;
    es.stats.vector_elements += es.vl;

    Cycle ready = es.pc_redirect;
    StallReason stall_why = StallReason::kScalarFetch;
    if (es.vl_ready > ready) {
      ready = es.vl_ready;
      stall_why = StallReason::kRawHazard;
    }
    for (u32 i = 0; i < dec.num_sregs; ++i) {
      if (es.sreg_ready[dec.sregs[i]] > ready) {
        ready = es.sreg_ready[dec.sregs[i]];
        stall_why = StallReason::kRawHazard;
      }
    }
    const Cycle profile_unblocked = std::max(es.pc_redirect, es.last_issue + 1);
    const Cycle t_issue = es.take_issue_slot(std::max(ready, es.last_issue));
    es.last_issue = t_issue;
    if (t_issue > ready) stall_why = StallReason::kIssueLimit;

    const usize unit = static_cast<usize>(dec.unit);
    const u32 startup = es.startup_by_kind[static_cast<usize>(dec.startup)];

    const bool stm_double = es.stm_double;
    u32 stm_op_bank = 0;
    Cycle resource_ready = es.unit_free[unit];
    if (dec.unit == ExecUnit::kStm) {
      if (inst.op == Op::kVLdcc) {
        stm_op_bank = es.stm->peek_drain_bank();
        resource_ready =
            stm_double ? std::max(es.stm_drain_free, es.stm_fill_done[stm_op_bank])
                       : std::max(es.unit_free[unit], es.stm_fill_done[stm_op_bank]);
      } else if (inst.op == Op::kIcm && stm_double) {
        stm_op_bank = es.stm->fill_bank() ^ 1;
        resource_ready = std::max(es.unit_free[unit], es.stm_drain_done[stm_op_bank]);
      } else {
        stm_op_bank = stm_double ? es.stm->fill_bank() : 0u;
      }
    }
    Cycle t_start = t_issue;
    auto bind = [&](Cycle term, StallReason reason) {
      if (term > t_start) {
        t_start = term;
        stall_why = reason;
      }
    };
    bind(resource_ready,
         dec.unit == ExecUnit::kVMem
             ? (es.vmem_last_indexed ? StallReason::kMemIndexedSerial : StallReason::kMemPort)
             : (dec.unit == ExecUnit::kStm ? StallReason::kStmBusy : StallReason::kValuBusy));
    Cycle src_last = 0;
    for (u32 i = 0; i < dec.num_srcs; ++i) {
      const u8 r = dec.srcs[i];
      bind(es.chaining ? es.vreg_first[r] : es.vreg_last[r],
           es.chaining ? StallReason::kChainingWait : StallReason::kRawHazard);
      src_last = std::max(src_last, es.vreg_last[r]);
    }
    for (u32 i = 0; i < dec.num_dsts; ++i) {
      const u8 r = dec.dsts[i];
      bind(std::max(es.vreg_readers_done[r], es.vreg_last[r]), StallReason::kVregBusy);
    }

    if (es.memory_system != nullptr && dec.unit == ExecUnit::kVMem) {
      Addr mem_addr = 0;
      u64 mem_bytes = 0;
      vmem_footprint(inst, &mem_addr, &mem_bytes);
      const Cycle granted = es.memory_system->request(mem_addr, mem_bytes, t_start);
      if (granted > t_start) {
        t_start = granted;
        stall_why = StallReason::kMemBankContention;
      }
    }

    const u32 duration = execute_vector(inst);

    const Cycle first_out = t_start + startup + 1;
    const Cycle last_out =
        std::max(t_start + startup + duration, src_last == 0 ? 0 : src_last + startup);
    const bool pipelined =
        (dec.unit == ExecUnit::kVMem && es.mem_pipelined_startup) ||
        dec.unit == ExecUnit::kVAlu;
    const Cycle busy_until = pipelined ? std::max(t_start + duration, src_last) : last_out;
    if (dec.unit == ExecUnit::kStm) {
      if (stm_double && inst.op == Op::kVLdcc) {
        es.stm_drain_free = std::max(es.stm_drain_free, busy_until);
        es.stm_drain_done[stm_op_bank] = std::max(es.stm_drain_done[stm_op_bank], last_out);
      } else {
        es.unit_free[unit] = std::max(es.unit_free[unit], busy_until);
        if (inst.op == Op::kVLdcc) {
          es.stm_drain_done[stm_op_bank] = std::max(es.stm_drain_done[stm_op_bank], last_out);
        } else {
          es.stm_fill_done[stm_op_bank] = std::max(es.stm_fill_done[stm_op_bank], last_out);
        }
      }
    } else {
      es.unit_free[unit] = std::max(es.unit_free[unit], busy_until);
      if (dec.unit == ExecUnit::kVMem) es.vmem_last_indexed = dec.indexed_vmem;
    }
    const u64 busy = busy_until - t_start;
    if (dec.unit == ExecUnit::kVMem) es.stats.vmem_busy_cycles += busy;
    else if (dec.unit == ExecUnit::kVAlu) es.stats.valu_busy_cycles += busy;
    else es.stats.stm_busy_cycles += busy;

    if (es.trace_sink != nullptr) {
      const TraceUnit trace_unit = dec.unit == ExecUnit::kVMem   ? TraceUnit::kVMem
                                   : dec.unit == ExecUnit::kVAlu ? TraceUnit::kVAlu
                                                                 : TraceUnit::kStm;
      es.trace_sink->record(
          {es.pc, inst.op, es.vl, trace_unit, t_issue, t_start, first_out, last_out,
           es.core_id});
    }
    for (u32 i = 0; i < dec.num_dsts; ++i) {
      const u8 r = dec.dsts[i];
      es.vreg_first[r] = first_out;
      es.vreg_last[r] = last_out;
      es.vreg_readers_done[r] = last_out;
    }
    for (u32 i = 0; i < dec.num_srcs; ++i) {
      const u8 r = dec.srcs[i];
      es.vreg_readers_done[r] = std::max(es.vreg_readers_done[r], last_out);
    }

    // Scalar side effects of vector instructions.
    switch (inst.op) {
      case Op::kVLdb:
      case Op::kVStb:
        es.retire_scalar(inst.c, t_issue + config_.scalar_op_latency);
        es.retire_scalar(inst.d, t_issue + config_.scalar_op_latency);
        break;
      case Op::kVStbv:
        es.retire_scalar(inst.b, t_issue + config_.scalar_op_latency);
        break;
      case Op::kVRedSum:
      case Op::kVFRedSum:
      case Op::kVExtract:
        es.retire_scalar(inst.a, last_out + 1);
        break;
      default:
        break;
    }
    es.bump_watermark(last_out);
    if (es.profiler != nullptr) {
      const BusyKind kind =
          dec.unit == ExecUnit::kVMem
              ? (dec.indexed_vmem ? BusyKind::kVMemIndexed : BusyKind::kVMemStream)
              : (dec.unit == ExecUnit::kStm ? BusyKind::kStm : BusyKind::kVAlu);
      es.profiler->record({es.pc, inst.op, es.vl, kind, stall_why, t_start,
                           profile_unblocked, profile_w_before, es.watermark, busy});
    }
    ++es.pc;
    return es.status;
  }

  // ---- Scalar instruction path. ----
  ++es.stats.scalar_instructions;
  Cycle ready = es.pc_redirect;
  StallReason stall_why = StallReason::kScalarFetch;
  for (u32 i = 0; i < dec.num_sregs; ++i) {
    if (es.sreg_ready[dec.sregs[i]] > ready) {
      ready = es.sreg_ready[dec.sregs[i]];
      stall_why = StallReason::kRawHazard;
    }
  }

  const Cycle profile_unblocked = std::max(es.pc_redirect, es.last_issue + 1);
  Cycle t_issue = es.take_issue_slot(std::max(ready, es.last_issue));
  if (t_issue > ready) stall_why = StallReason::kIssueLimit;
  if (dec.scalar_mem) {
    const Cycle slot = es.take_scalar_mem_slot(t_issue);
    if (slot > t_issue) {
      t_issue = slot;
      stall_why = StallReason::kMemPort;
    }
  }
  es.last_issue = t_issue;
  es.bump_watermark(t_issue);

  Memory& mem = *es.memory;
  usize next_pc = es.pc + 1;
  switch (inst.op) {
    case Op::kLi:
      set_sreg(inst.a, static_cast<u64>(inst.imm));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMv:
      set_sreg(inst.a, sreg(inst.b));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kAdd:
      set_sreg(inst.a, sreg(inst.b) + sreg(inst.c));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSub:
      set_sreg(inst.a, sreg(inst.b) - sreg(inst.c));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMul:
      set_sreg(inst.a, sreg(inst.b) * sreg(inst.c));
      es.retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kAnd:
      set_sreg(inst.a, sreg(inst.b) & sreg(inst.c));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kOr:
      set_sreg(inst.a, sreg(inst.b) | sreg(inst.c));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kXor:
      set_sreg(inst.a, sreg(inst.b) ^ sreg(inst.c));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSll:
      set_sreg(inst.a, sreg(inst.b) << (sreg(inst.c) & 63));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSrl:
      set_sreg(inst.a, sreg(inst.b) >> (sreg(inst.c) & 63));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMin:
      set_sreg(inst.a, std::min(sreg(inst.b), sreg(inst.c)));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMax:
      set_sreg(inst.a, std::max(sreg(inst.b), sreg(inst.c)));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kFAdd:
      set_sreg(inst.a, std::bit_cast<u32>(
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.b))) +
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.c)))));
      es.retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kFMul:
      set_sreg(inst.a, std::bit_cast<u32>(
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.b))) *
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.c)))));
      es.retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kAddi:
      set_sreg(inst.a, sreg(inst.b) + static_cast<u64>(inst.imm));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMuli:
      set_sreg(inst.a, sreg(inst.b) * static_cast<u64>(inst.imm));
      es.retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kAndi:
      set_sreg(inst.a, sreg(inst.b) & static_cast<u64>(inst.imm));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSlli:
      set_sreg(inst.a, sreg(inst.b) << (inst.imm & 63));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSrli:
      set_sreg(inst.a, sreg(inst.b) >> (inst.imm & 63));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kLw:
      set_sreg(inst.a, mem.read_u32(sreg(inst.b) + static_cast<u64>(inst.imm)));
      es.retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    case Op::kLhu:
      set_sreg(inst.a, mem.read_u16(sreg(inst.b) + static_cast<u64>(inst.imm)));
      es.retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    case Op::kLbu:
      set_sreg(inst.a, mem.read_u8(sreg(inst.b) + static_cast<u64>(inst.imm)));
      es.retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    case Op::kSw:
      mem.write_u32(sreg(inst.b) + static_cast<u64>(inst.imm),
                    static_cast<u32>(sreg(inst.a)));
      break;
    case Op::kSh:
      mem.write_u16(sreg(inst.b) + static_cast<u64>(inst.imm),
                    static_cast<u16>(sreg(inst.a)));
      break;
    case Op::kSb:
      mem.write_u8(sreg(inst.b) + static_cast<u64>(inst.imm),
                   static_cast<u8>(sreg(inst.a)));
      break;
    case Op::kAmoAdd: {
      const Addr addr = sreg(inst.b) + static_cast<u64>(inst.imm);
      const u32 old = mem.read_u32(addr);
      mem.write_u32(addr, old + static_cast<u32>(sreg(inst.c)));
      set_sreg(inst.a, old);
      es.retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    }
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge: {
      const i64 lhs = static_cast<i64>(sreg(inst.a));
      const i64 rhs = static_cast<i64>(sreg(inst.b));
      bool taken = false;
      switch (inst.op) {
        case Op::kBeq: taken = lhs == rhs; break;
        case Op::kBne: taken = lhs != rhs; break;
        case Op::kBlt: taken = lhs < rhs; break;
        case Op::kBge: taken = lhs >= rhs; break;
        default: break;
      }
      if (taken) {
        next_pc = static_cast<usize>(inst.imm);
        es.pc_redirect = t_issue + 1 + config_.branch_penalty;
      }
      break;
    }
    case Op::kJal:
      set_sreg(inst.a, static_cast<u64>(es.pc + 1));
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      next_pc = static_cast<usize>(inst.imm);
      es.pc_redirect = t_issue + 1 + config_.branch_penalty;
      break;
    case Op::kJr:
      next_pc = static_cast<usize>(sreg(inst.a));
      es.pc_redirect = t_issue + 1 + config_.branch_penalty;
      break;
    case Op::kSsvl: {
      const u64 remaining = sreg(inst.a);
      es.vl = static_cast<u32>(std::min<u64>(config_.section, remaining));
      set_sreg(inst.a, remaining - es.vl);
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      es.vl_ready = std::max(es.vl_ready, t_issue + config_.scalar_op_latency);
      break;
    }
    case Op::kSetvl: {
      es.vl = static_cast<u32>(std::min<u64>(config_.section, sreg(inst.b)));
      set_sreg(inst.a, es.vl);
      es.retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      es.vl_ready = std::max(es.vl_ready, t_issue + config_.scalar_op_latency);
      break;
    }
    case Op::kBarrier:
      es.status = StepStatus::kAtBarrier;
      es.barrier_arrival = es.watermark;
      es.barrier_issue = t_issue;
      es.barrier_unblocked = profile_unblocked;
      es.barrier_w_before = profile_w_before;
      es.barrier_pc = es.pc;
      es.barrier_why = stall_why;
      break;
    case Op::kHalt:
      es.status = StepStatus::kHalted;
      break;
    case Op::kNop:
      break;
    default:
      SMTU_CHECK_MSG(false, "unhandled scalar op in execute");
  }
  if (es.status == StepStatus::kAtBarrier) {
    es.pc = next_pc;
    return es.status;
  }
  if (es.trace_sink != nullptr) {
    const Cycle done = inst.a != kRegZero ? es.sreg_ready[inst.a] : t_issue;
    es.trace_sink->record({es.pc, inst.op, 0, TraceUnit::kScalar, t_issue, t_issue,
                           std::max(t_issue, done), std::max(t_issue, done), es.core_id});
  }
  if (es.profiler != nullptr) {
    es.profiler->record({es.pc, inst.op, 0, BusyKind::kScalar, stall_why, t_issue,
                         profile_unblocked, profile_w_before, es.watermark, 1});
  }
  es.pc = next_pc;
  return es.status;
}

void Machine::release_barrier(Cycle release) {
  SMTU_CHECK_MSG(es_.status == StepStatus::kAtBarrier,
                 "release_barrier() on a core not waiting at a barrier");
  SMTU_CHECK(release >= es_.barrier_arrival);
  // The front end resumes at the release; everything after the barrier is
  // ordered behind it.
  es_.pc_redirect = std::max(es_.pc_redirect, release);
  es_.bump_watermark(release);
  if (es_.trace_sink != nullptr) {
    es_.trace_sink->record({es_.barrier_pc, Op::kBarrier, 0, TraceUnit::kScalar,
                            es_.barrier_issue, es_.barrier_issue, release, release,
                            es_.core_id});
  }
  if (es_.profiler != nullptr) {
    // Cycles spent past the core's own arrival are the barrier's fault;
    // anything before that keeps the reason the issue path found.
    const StallReason why =
        release > es_.barrier_arrival ? StallReason::kBarrierWait : es_.barrier_why;
    es_.profiler->record({es_.barrier_pc, Op::kBarrier, 0, BusyKind::kScalar, why, release,
                          es_.barrier_unblocked, es_.barrier_w_before, es_.watermark, 1});
  }
  es_.status = StepStatus::kRunning;
}

RunStats Machine::finish_run() {
  SMTU_CHECK_MSG(es_.status == StepStatus::kHalted, "finish_run() before halt");
  es_.stats.cycles = es_.watermark;
  const StmUnit::Stats& stm_stats = es_.stm->stats();
  es_.stats.stm_blocks = stm_stats.blocks - stm_before_.blocks;
  es_.stats.stm_write_cycles = stm_stats.write_cycles - stm_before_.write_cycles;
  es_.stats.stm_read_cycles = stm_stats.read_cycles - stm_before_.read_cycles;
  if (es_.profiler != nullptr) es_.profiler->end_run(es_.stats.cycles);
  return es_.stats;
}

RunStats Machine::run(const Program& program, usize entry_pc) {
  begin_run(program, entry_pc);
  if (dispatch_ == DispatchMode::kThreaded) {
    // The hot loop: indirect call through the pre-bound handler, no
    // per-instruction mode or status branching beyond the exit check.
    ExecState& es = es_;
    while (true) {
      SMTU_CHECK_MSG(es.pc < es.program_size,
                     "pc ran off the end of the program (missing halt?)");
      const DecodedInst& dec = es.decoded[es.pc];
      dec.handler(es, es.insts[es.pc], dec);
      if (es.status != StepStatus::kRunning) [[unlikely]] {
        if (es.status == StepStatus::kHalted) break;
        // A lone core's barrier releases the moment it arrives.
        release_barrier(es.barrier_arrival);
      }
    }
  } else {
    while (true) {
      const StepStatus status = step();
      if (status == StepStatus::kAtBarrier) {
        release_barrier(es_.barrier_arrival);
      } else if (status == StepStatus::kHalted) {
        break;
      }
    }
  }
  return finish_run();
}

std::string run_stats_summary(const RunStats& stats) {
  const double cycles = static_cast<double>(std::max<Cycle>(1, stats.cycles));
  std::string out;
  out += format("cycles:        %llu\n", static_cast<unsigned long long>(stats.cycles));
  out += format("instructions:  %llu (%llu scalar, %llu vector; %.2f instr/cycle)\n",
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.scalar_instructions),
                static_cast<unsigned long long>(stats.vector_instructions),
                static_cast<double>(stats.instructions) / cycles);
  out += format("vector elems:  %llu (avg vl %.1f)\n",
                static_cast<unsigned long long>(stats.vector_elements),
                stats.vector_instructions == 0
                    ? 0.0
                    : static_cast<double>(stats.vector_elements) /
                          static_cast<double>(stats.vector_instructions));
  out += format("memory:        %llu streamed bytes, %llu indexed elements\n",
                static_cast<unsigned long long>(stats.mem_contiguous_bytes),
                static_cast<unsigned long long>(stats.mem_indexed_elements));
  out += format("unit busy:     vmem %.1f%%, valu %.1f%%, stm %.1f%%\n",
                100.0 * static_cast<double>(stats.vmem_busy_cycles) / cycles,
                100.0 * static_cast<double>(stats.valu_busy_cycles) / cycles,
                100.0 * static_cast<double>(stats.stm_busy_cycles) / cycles);
  if (stats.stm_blocks > 0) {
    out += format("stm:           %llu block passes, %llu fill + %llu drain cycles, "
                  "%llu elements\n",
                  static_cast<unsigned long long>(stats.stm_blocks),
                  static_cast<unsigned long long>(stats.stm_write_cycles),
                  static_cast<unsigned long long>(stats.stm_read_cycles),
                  static_cast<unsigned long long>(stats.stm_elements));
  }
  return out;
}

}  // namespace smtu::vsim
