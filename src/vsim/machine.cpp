#include "vsim/machine.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/strings.hpp"
#include "vsim/profiler.hpp"

namespace smtu::vsim {
namespace {

StmConfig stm_config_for(const MachineConfig& config) {
  StmConfig stm = config.stm;
  stm.section = config.section;  // the s x s memory matches the section size
  stm.lines = std::min(stm.lines, stm.section);  // L cannot exceed s
  return stm;
}

void check_config(const MachineConfig& config) {
  SMTU_CHECK_MSG(config.section >= 2 && config.section <= 256,
                 "section size must be in [2, 256]");
  SMTU_CHECK(config.lanes >= 1);
  SMTU_CHECK(config.scalar_issue_width >= 1);
  SMTU_CHECK(config.mem_bytes_per_cycle >= 1);
}

}  // namespace

Machine::Machine(const MachineConfig& config) : config_(config) {
  check_config(config_);
  owned_memory_ = std::make_unique<Memory>(config_.memory_limit);
  owned_stm_ = std::make_unique<StmUnit>(stm_config_for(config_));
  memory_ = owned_memory_.get();
  stm_ = owned_stm_.get();
  vregs_.assign(kNumVectorRegs, std::vector<u32>(config_.section, 0));
  vreg_time_.assign(kNumVectorRegs, {});
}

Machine::Machine(const MachineConfig& config, const CoreContext& context)
    : config_(config) {
  check_config(config_);
  SMTU_CHECK_MSG(context.memory != nullptr, "CoreContext requires a memory");
  memory_ = context.memory;
  memory_system_ = context.memory_system;
  owned_stm_ = std::make_unique<StmUnit>(stm_config_for(config_));
  stm_ = owned_stm_.get();
  profiler_ = context.profiler;
  trace_sink_ = context.trace;
  core_id_ = context.core_id;
  vregs_.assign(kNumVectorRegs, std::vector<u32>(config_.section, 0));
  vreg_time_.assign(kNumVectorRegs, {});
}

u64 Machine::sreg(u32 index) const {
  SMTU_CHECK(index < kNumScalarRegs);
  return index == kRegZero ? 0 : sregs_[index];
}

void Machine::set_sreg(u32 index, u64 value) {
  SMTU_CHECK(index < kNumScalarRegs);
  if (index != kRegZero) sregs_[index] = value;
}

const std::vector<u32>& Machine::vreg(u32 index) const {
  SMTU_CHECK(index < kNumVectorRegs);
  return vregs_[index];
}

void Machine::enable_trace(u64 max_lines) { trace_remaining_ = max_lines; }

Cycle Machine::take_issue_slot(Cycle earliest) {
  if (earliest > issue_cycle_) {
    issue_cycle_ = earliest;
    issue_used_ = 0;
  }
  if (issue_used_ >= config_.scalar_issue_width) {
    ++issue_cycle_;
    issue_used_ = 0;
  }
  ++issue_used_;
  return issue_cycle_;
}

Cycle Machine::take_scalar_mem_slot(Cycle earliest) {
  if (earliest > scalar_mem_cycle_) {
    scalar_mem_cycle_ = earliest;
    scalar_mem_used_ = 0;
  }
  if (scalar_mem_used_ >= config_.scalar_mem_ports) {
    ++scalar_mem_cycle_;
    scalar_mem_used_ = 0;
  }
  ++scalar_mem_used_;
  return scalar_mem_cycle_;
}

void Machine::retire_scalar(u32 dest, Cycle ready) {
  if (dest != kRegZero) sreg_ready_[dest] = std::max(sreg_ready_[dest], ready);
  bump_watermark(ready);
}

u32 Machine::execute_vector(const Instruction& inst) {
  const u32 vl = vl_;
  auto& V = vregs_;
  const auto ceil_rate = [](u64 amount, u64 per_cycle) {
    return static_cast<u32>(ceil_div(amount, per_cycle));
  };

  switch (inst.op) {
    case Op::kVLd: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = memory_->read_u32(base + 4 * i);
      stats_.mem_contiguous_bytes += 4ull * vl;
      return ceil_rate(4ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVSt: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) memory_->write_u32(base + 4 * i, V[inst.a][i]);
      stats_.mem_contiguous_bytes += 4ull * vl;
      return ceil_rate(4ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVLdx: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        V[inst.a][i] = memory_->read_u32(base + 4ull * V[inst.c][i]);
      }
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVStx: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        memory_->write_u32(base + 4ull * V[inst.c][i], V[inst.a][i]);
      }
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVLds: {
      // Strided accesses hit one bank per element, like indexed ones.
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      const u64 stride = sreg(inst.c);
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = memory_->read_u32(base + i * stride);
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVSts: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      const u64 stride = sreg(inst.c);
      for (u32 i = 0; i < vl; ++i) memory_->write_u32(base + i * stride, V[inst.a][i]);
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVAdd:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] + V[inst.c][i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVSub:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] - V[inst.c][i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVMul:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] * V[inst.c][i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVAnd:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] & V[inst.c][i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVOr:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] | V[inst.c][i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVXor:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] ^ V[inst.c][i];
      return ceil_rate(vl, config_.lanes);
    case Op::kVMin:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = std::min(V[inst.b][i], V[inst.c][i]);
      return ceil_rate(vl, config_.lanes);
    case Op::kVMax:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = std::max(V[inst.b][i], V[inst.c][i]);
      return ceil_rate(vl, config_.lanes);
    case Op::kVAddi:
      for (u32 i = 0; i < vl; ++i) {
        V[inst.a][i] = V[inst.b][i] + static_cast<u32>(inst.imm);
      }
      return ceil_rate(vl, config_.lanes);
    case Op::kVAdds: {
      const u32 scalar = static_cast<u32>(sreg(inst.c));
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] + scalar;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVBcast: {
      const u32 scalar = static_cast<u32>(sreg(inst.b));
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = scalar;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVBcasti:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = static_cast<u32>(inst.imm);
      return ceil_rate(vl, config_.lanes);
    case Op::kVIota:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = i;
      return ceil_rate(vl, config_.lanes);
    case Op::kVSlideUp: {
      const u32 shift = static_cast<u32>(inst.imm);
      slide_scratch_.assign(vl, 0);
      for (u32 i = 0; i < vl; ++i) {
        if (i >= shift) slide_scratch_[i] = V[inst.b][i - shift];
      }
      std::copy(slide_scratch_.begin(), slide_scratch_.end(), V[inst.a].begin());
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVSlideDown: {
      const u32 shift = static_cast<u32>(inst.imm);
      slide_scratch_.assign(vl, 0);
      for (u32 i = 0; i < vl; ++i) {
        if (i + shift < vl) slide_scratch_[i] = V[inst.b][i + shift];
      }
      std::copy(slide_scratch_.begin(), slide_scratch_.end(), V[inst.a].begin());
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVRedSum: {
      u64 total = 0;
      for (u32 i = 0; i < vl; ++i) total += V[inst.b][i];
      set_sreg(inst.a, total);
      // Lane-parallel partial sums plus a log-depth combine.
      return ceil_rate(vl, config_.lanes) + log2_ceil(config_.lanes + 1);
    }
    case Op::kVExtract: {
      const u64 lane = sreg(inst.c);
      SMTU_CHECK_MSG(lane < config_.section, "v_extract lane out of range");
      set_sreg(inst.a, V[inst.b][lane]);
      return 1;
    }
    case Op::kVSeq:
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] == V[inst.c][i] ? 1 : 0;
      return ceil_rate(vl, config_.lanes);
    case Op::kVSeqS: {
      const u32 scalar = static_cast<u32>(sreg(inst.c));
      for (u32 i = 0; i < vl; ++i) V[inst.a][i] = V[inst.b][i] == scalar ? 1 : 0;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVFRedSum: {
      float total = 0.0f;
      for (u32 i = 0; i < vl; ++i) total += std::bit_cast<float>(V[inst.b][i]);
      set_sreg(inst.a, std::bit_cast<u32>(total));
      return ceil_rate(vl, config_.lanes) + log2_ceil(config_.lanes + 1);
    }
    case Op::kVGthC: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 col = (V[inst.c][i] >> 8) & 0xff;
        V[inst.a][i] = memory_->read_u32(base + 4ull * col);
      }
      // Positional access touches an s-element window only, which the HiSM
      // hardware banks like the s x s memory: full lane-parallel rate.
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVScaR: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 row = V[inst.c][i] & 0xff;
        const Addr addr = base + 4ull * row;
        memory_->write_f32(addr, memory_->read_f32(addr) +
                                     std::bit_cast<float>(V[inst.a][i]));
      }
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);  // banked s-element window
    }
    case Op::kVGthR: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 row = V[inst.c][i] & 0xff;
        V[inst.a][i] = memory_->read_u32(base + 4ull * row);
      }
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVScaC: {
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const u32 col = (V[inst.c][i] >> 8) & 0xff;
        const Addr addr = base + 4ull * col;
        memory_->write_f32(addr, memory_->read_f32(addr) +
                                     std::bit_cast<float>(V[inst.a][i]));
      }
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.lanes);
    }
    case Op::kVScaX: {
      // General-index sibling of v_scac: full 32-bit indices, so it streams
      // at the indexed rate (one address per element) like v_ldx/v_stx.
      const Addr base = sreg(inst.b) + static_cast<u64>(inst.imm);
      for (u32 i = 0; i < vl; ++i) {
        const Addr addr = base + 4ull * V[inst.c][i];
        memory_->write_f32(addr, memory_->read_f32(addr) +
                                     std::bit_cast<float>(V[inst.a][i]));
      }
      stats_.mem_indexed_elements += vl;
      return ceil_rate(vl, config_.mem_indexed_elems_per_cycle);
    }
    case Op::kVFAdd:
      for (u32 i = 0; i < vl; ++i) {
        V[inst.a][i] = std::bit_cast<u32>(std::bit_cast<float>(V[inst.b][i]) +
                                          std::bit_cast<float>(V[inst.c][i]));
      }
      return ceil_rate(vl, config_.lanes);
    case Op::kVFMul:
      for (u32 i = 0; i < vl; ++i) {
        V[inst.a][i] = std::bit_cast<u32>(std::bit_cast<float>(V[inst.b][i]) *
                                          std::bit_cast<float>(V[inst.c][i]));
      }
      return ceil_rate(vl, config_.lanes);
    case Op::kIcm:
      stm_->clear();
      return 1;
    case Op::kVLdb: {
      Addr pos_addr = sreg(inst.c);
      Addr val_addr = sreg(inst.d);
      for (u32 i = 0; i < vl; ++i) {
        const u8 row = memory_->read_u8(pos_addr + 2ull * i);
        const u8 col = memory_->read_u8(pos_addr + 2ull * i + 1);
        V[inst.b][i] = static_cast<u32>(row) | static_cast<u32>(col) << 8;
        V[inst.a][i] = memory_->read_u32(val_addr + 4ull * i);
      }
      set_sreg(inst.c, pos_addr + 2ull * vl);
      set_sreg(inst.d, val_addr + 4ull * vl);
      stats_.mem_contiguous_bytes += 6ull * vl;
      return ceil_rate(6ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVStcr: {
      stm_batch_scratch_.resize(vl);
      for (u32 i = 0; i < vl; ++i) {
        const u32 pos = V[inst.b][i];
        stm_batch_scratch_[i] = {static_cast<u8>(pos & 0xff),
                                 static_cast<u8>((pos >> 8) & 0xff), V[inst.a][i]};
      }
      stats_.stm_elements += vl;
      return stm_->write_batch(stm_batch_scratch_);
    }
    case Op::kVLdcc: {
      const StmUnit::ReadBatch batch = stm_->read_batch(vl);
      for (u32 i = 0; i < vl; ++i) {
        V[inst.a][i] = batch.entries[i].value_bits;
        V[inst.b][i] = static_cast<u32>(batch.entries[i].row) |
                       static_cast<u32>(batch.entries[i].col) << 8;
      }
      stats_.stm_elements += vl;
      return batch.cycles;
    }
    case Op::kVStb: {
      Addr pos_addr = sreg(inst.c);
      Addr val_addr = sreg(inst.d);
      for (u32 i = 0; i < vl; ++i) {
        const u32 pos = V[inst.b][i];
        memory_->write_u8(pos_addr + 2ull * i, static_cast<u8>(pos & 0xff));
        memory_->write_u8(pos_addr + 2ull * i + 1, static_cast<u8>((pos >> 8) & 0xff));
        memory_->write_u32(val_addr + 4ull * i, V[inst.a][i]);
      }
      set_sreg(inst.c, pos_addr + 2ull * vl);
      set_sreg(inst.d, val_addr + 4ull * vl);
      stats_.mem_contiguous_bytes += 6ull * vl;
      return ceil_rate(6ull * vl, config_.mem_bytes_per_cycle);
    }
    case Op::kVStbv: {
      Addr val_addr = sreg(inst.b);
      for (u32 i = 0; i < vl; ++i) memory_->write_u32(val_addr + 4ull * i, V[inst.a][i]);
      set_sreg(inst.b, val_addr + 4ull * vl);
      stats_.mem_contiguous_bytes += 4ull * vl;
      return ceil_rate(4ull * vl, config_.mem_bytes_per_cycle);
    }
    default:
      SMTU_CHECK_MSG(false, "not a vector op");
  }
  return 0;
}

void Machine::vmem_footprint(const Instruction& inst, Addr* addr, u64* bytes) const {
  // The bank model arbitrates one request per vector memory instruction:
  // the instruction's total traffic laid out from its primary base. Multi-
  // stream instructions (v_ldb/v_stb move a position and a value stream)
  // fold into one request so an instruction can never contend with itself.
  const u64 vl = vl_;
  switch (inst.op) {
    case Op::kVLdb:
    case Op::kVStb:
      *addr = sreg(inst.c);
      *bytes = 6ull * vl;
      return;
    case Op::kVStbv:
      *addr = sreg(inst.b);
      *bytes = 4ull * vl;
      return;
    case Op::kVScaR:
    case Op::kVScaC:
    case Op::kVScaX:
      // Read-modify-write: both directions count.
      *addr = sreg(inst.b) + static_cast<u64>(inst.imm);
      *bytes = 8ull * vl;
      return;
    default:
      *addr = sreg(inst.b) + static_cast<u64>(inst.imm);
      *bytes = 4ull * vl;
      return;
  }
}

void Machine::begin_run(const Program& program, usize entry_pc) {
  SMTU_CHECK_MSG(entry_pc < program.size(), "entry pc out of range");

  // Programs from assemble() arrive predecoded; hand-built ones (tests,
  // generators) get a local decode so the hot loop has a single path.
  program_ = &program;
  decoded_ = program.decoded.data();
  if (program.decoded.size() != program.instructions.size()) {
    local_decode_ = decode_instructions(program.instructions);
    decoded_ = local_decode_.data();
  }
  // Startup latencies by StartupKind, resolved from the config once per run
  // (indexed by the predecoded kind instead of re-deriving per dynamic
  // instruction).
  startup_by_kind_ = {config_.mem_startup, config_.valu_startup,
                      config_.stm.fill_pipeline_cycles,
                      config_.stm.drain_pipeline_cycles, 0};

  // Reset timing and statistics; architectural state persists.
  sreg_ready_.fill(0);
  vreg_time_.assign(kNumVectorRegs, {});
  unit_free_.fill(0);
  vl_ready_ = 0;
  last_issue_ = 0;
  pc_redirect_ = 0;
  watermark_ = 0;
  issue_cycle_ = 0;
  issue_used_ = 0;
  scalar_mem_cycle_ = 0;
  scalar_mem_used_ = 0;
  stm_fill_done_[0] = 0;
  stm_fill_done_[1] = 0;
  stm_drain_done_[0] = 0;
  stm_drain_done_[1] = 0;
  stm_drain_free_ = 0;
  vmem_last_indexed_ = false;
  stats_ = {};
  stm_before_ = stm_->stats();
  pc_ = entry_pc;
  status_ = StepStatus::kRunning;
  if (profiler_ != nullptr) profiler_->begin_run(program);
}

StepStatus Machine::step() {
  SMTU_CHECK_MSG(status_ == StepStatus::kRunning,
                 "step() on a core that is halted or waiting at a barrier");
  const Program& program = *program_;
  SMTU_CHECK_MSG(pc_ < program.size(), "pc ran off the end of the program (missing halt?)");
  SMTU_CHECK_MSG(stats_.instructions < config_.max_instructions,
                 "instruction budget exceeded (runaway program?)");
  const Instruction& inst = program.instructions[pc_];
  const DecodedInst& dec = decoded_[pc_];
  ++stats_.instructions;
  // Watermark increments bracket each instruction; they telescope to the
  // final cycle count, which is what makes the profiler's attribution
  // conservation-exact (see profiler.hpp).
  const Cycle profile_w_before = watermark_;

  if (trace_remaining_ > 0) {
    --trace_remaining_;
    std::fprintf(stderr, "[trace] pc=%zu %s\n", pc_, to_string(inst).c_str());
  }

  if (dec.is_vector) {
    ++stats_.vector_instructions;
    stats_.vector_elements += vl_;

    // Scalar sources a vector instruction needs at issue (predecoded).
    // Alongside the ready time, track which constraint set it (the
    // profiler's stall reason); strictly-later constraints win, so ties
    // keep the first-listed reason.
    Cycle ready = pc_redirect_;
    StallReason stall_why = StallReason::kScalarFetch;
    if (vl_ready_ > ready) {
      ready = vl_ready_;
      stall_why = StallReason::kRawHazard;
    }
    for (u32 i = 0; i < dec.num_sregs; ++i) {
      if (sreg_ready_[dec.sregs[i]] > ready) {
        ready = sreg_ready_[dec.sregs[i]];
        stall_why = StallReason::kRawHazard;
      }
    }
    // Start absent hazard/resource constraints: the fetch point plus
    // sequential issue — the profiler's baseline for constraint delay.
    const Cycle profile_unblocked = std::max(pc_redirect_, last_issue_ + 1);
    const Cycle t_issue = take_issue_slot(std::max(ready, last_issue_));
    last_issue_ = t_issue;
    if (t_issue > ready) stall_why = StallReason::kIssueLimit;

    // Vector sources and destinations (predecoded by opcode).
    const u8* srcs = dec.srcs;
    const u32 num_srcs = dec.num_srcs;
    const u8* dsts = dec.dsts;
    const u32 num_dsts = dec.num_dsts;

    const Unit unit = static_cast<Unit>(dec.unit);
    const u32 startup = startup_by_kind_[static_cast<usize>(dec.startup)];

    // Start time: issue, unit availability, producers' first element (or
    // completion without chaining), and hazards on the destinations.
    const bool stm_double = config_.stm.double_buffer;
    // Which bank an STM instruction touches (known before execution: the
    // fill side for icm/v_stcr, the peeked drain bank for v_ldcc).
    u32 stm_op_bank = 0;
    Cycle resource_ready = unit_free_[unit];
    if (unit == kUnitStm) {
      if (inst.op == Op::kVLdcc) {
        stm_op_bank = stm_->peek_drain_bank();
        // A bank drains only after its fill completed; a separate drain
        // datapath exists only with the second buffer.
        resource_ready = stm_double ? std::max(stm_drain_free_, stm_fill_done_[stm_op_bank])
                                    : std::max(unit_free_[kUnitStm],
                                               stm_fill_done_[stm_op_bank]);
      } else if (inst.op == Op::kIcm && stm_double) {
        // Switching banks: the incoming bank's drain must have finished.
        stm_op_bank = stm_->fill_bank() ^ 1;
        resource_ready = std::max(unit_free_[kUnitStm], stm_drain_done_[stm_op_bank]);
      } else {
        stm_op_bank = stm_double ? stm_->fill_bank() : 0u;
      }
    }
    Cycle t_start = t_issue;
    auto bind = [&](Cycle term, StallReason reason) {
      if (term > t_start) {
        t_start = term;
        stall_why = reason;
      }
    };
    bind(resource_ready,
         unit == kUnitVMem
             ? (vmem_last_indexed_ ? StallReason::kMemIndexedSerial : StallReason::kMemPort)
             : (unit == kUnitStm ? StallReason::kStmBusy : StallReason::kValuBusy));
    Cycle src_last = 0;
    for (u32 i = 0; i < num_srcs; ++i) {
      const VregTiming& src = vreg_time_[srcs[i]];
      bind(config_.chaining ? src.first : src.last,
           config_.chaining ? StallReason::kChainingWait : StallReason::kRawHazard);
      src_last = std::max(src_last, src.last);
    }
    for (u32 i = 0; i < num_dsts; ++i) {
      const VregTiming& dst = vreg_time_[dsts[i]];
      bind(std::max(dst.readers_done, dst.last), StallReason::kVregBusy);
    }

    // Shared banked memory: the access may be pushed back behind another
    // core's occupancy of the banks it touches. A lone core never pushes
    // itself back (its per-bank occupancy is bounded by its own access
    // duration), which keeps the N=1 system bit-identical.
    if (memory_system_ != nullptr && unit == kUnitVMem) {
      Addr mem_addr = 0;
      u64 mem_bytes = 0;
      vmem_footprint(inst, &mem_addr, &mem_bytes);
      const Cycle granted = memory_system_->request(mem_addr, mem_bytes, t_start);
      if (granted > t_start) {
        t_start = granted;
        stall_why = StallReason::kMemBankContention;
      }
    }

    const u32 duration = execute_vector(inst);

    const Cycle first_out = t_start + startup + 1;
    const Cycle last_out =
        std::max(t_start + startup + duration, src_last == 0 ? 0 : src_last + startup);
    // Pipelined units are occupied for their transfer slots only; the
    // startup is latency that later, independent instructions overlap.
    // The STM is the exception: the s x s memory is a single buffer, so
    // the unit stays busy until its results drain.
    const bool pipelined =
        (unit == kUnitVMem && config_.mem_pipelined_startup) || unit == kUnitVAlu;
    const Cycle busy_until =
        pipelined ? std::max(t_start + duration, src_last) : last_out;
    if (unit == kUnitStm) {
      if (stm_double && inst.op == Op::kVLdcc) {
        stm_drain_free_ = std::max(stm_drain_free_, busy_until);
        stm_drain_done_[stm_op_bank] = std::max(stm_drain_done_[stm_op_bank], last_out);
      } else {
        unit_free_[kUnitStm] = std::max(unit_free_[kUnitStm], busy_until);
        if (inst.op == Op::kVLdcc) {
          stm_drain_done_[stm_op_bank] = std::max(stm_drain_done_[stm_op_bank], last_out);
        } else {
          stm_fill_done_[stm_op_bank] = std::max(stm_fill_done_[stm_op_bank], last_out);
        }
      }
    } else {
      unit_free_[unit] = std::max(unit_free_[unit], busy_until);
      if (unit == kUnitVMem) vmem_last_indexed_ = dec.indexed_vmem;
    }
    const u64 busy = busy_until - t_start;
    if (unit == kUnitVMem) stats_.vmem_busy_cycles += busy;
    else if (unit == kUnitVAlu) stats_.valu_busy_cycles += busy;
    else stats_.stm_busy_cycles += busy;

    if (trace_sink_ != nullptr) {
      const TraceUnit trace_unit = unit == kUnitVMem   ? TraceUnit::kVMem
                                   : unit == kUnitVAlu ? TraceUnit::kVAlu
                                                       : TraceUnit::kStm;
      trace_sink_->record(
          {pc_, inst.op, vl_, trace_unit, t_issue, t_start, first_out, last_out, core_id_});
    }
    for (u32 i = 0; i < num_dsts; ++i) {
      vreg_time_[dsts[i]] = {first_out, last_out, last_out};
    }
    for (u32 i = 0; i < num_srcs; ++i) {
      vreg_time_[srcs[i]].readers_done =
          std::max(vreg_time_[srcs[i]].readers_done, last_out);
    }

    // Scalar side effects of vector instructions.
    switch (inst.op) {
      case Op::kVLdb:
      case Op::kVStb:
        retire_scalar(inst.c, t_issue + config_.scalar_op_latency);
        retire_scalar(inst.d, t_issue + config_.scalar_op_latency);
        break;
      case Op::kVStbv:
        retire_scalar(inst.b, t_issue + config_.scalar_op_latency);
        break;
      case Op::kVRedSum:
      case Op::kVFRedSum:
      case Op::kVExtract:
        retire_scalar(inst.a, last_out + 1);
        break;
      default:
        break;
    }
    bump_watermark(last_out);
    if (profiler_ != nullptr) {
      const BusyKind kind =
          unit == kUnitVMem
              ? (dec.indexed_vmem ? BusyKind::kVMemIndexed : BusyKind::kVMemStream)
              : (unit == kUnitStm ? BusyKind::kStm : BusyKind::kVAlu);
      profiler_->record({pc_, inst.op, vl_, kind, stall_why, t_start, profile_unblocked,
                         profile_w_before, watermark_, busy});
    }
    ++pc_;
    return status_;
  }

  // ---- Scalar instruction path. ----
  ++stats_.scalar_instructions;
  Cycle ready = pc_redirect_;
  StallReason stall_why = StallReason::kScalarFetch;
  for (u32 i = 0; i < dec.num_sregs; ++i) {
    if (sreg_ready_[dec.sregs[i]] > ready) {
      ready = sreg_ready_[dec.sregs[i]];
      stall_why = StallReason::kRawHazard;
    }
  }

  const Cycle profile_unblocked = std::max(pc_redirect_, last_issue_ + 1);
  Cycle t_issue = take_issue_slot(std::max(ready, last_issue_));
  if (t_issue > ready) stall_why = StallReason::kIssueLimit;
  if (dec.scalar_mem) {
    const Cycle slot = take_scalar_mem_slot(t_issue);
    if (slot > t_issue) {
      t_issue = slot;
      stall_why = StallReason::kMemPort;
    }
  }
  last_issue_ = t_issue;
  bump_watermark(t_issue);

  usize next_pc = pc_ + 1;
  switch (inst.op) {
    case Op::kLi:
      set_sreg(inst.a, static_cast<u64>(inst.imm));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMv:
      set_sreg(inst.a, sreg(inst.b));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kAdd:
      set_sreg(inst.a, sreg(inst.b) + sreg(inst.c));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSub:
      set_sreg(inst.a, sreg(inst.b) - sreg(inst.c));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMul:
      set_sreg(inst.a, sreg(inst.b) * sreg(inst.c));
      retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kAnd:
      set_sreg(inst.a, sreg(inst.b) & sreg(inst.c));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kOr:
      set_sreg(inst.a, sreg(inst.b) | sreg(inst.c));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kXor:
      set_sreg(inst.a, sreg(inst.b) ^ sreg(inst.c));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSll:
      set_sreg(inst.a, sreg(inst.b) << (sreg(inst.c) & 63));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSrl:
      set_sreg(inst.a, sreg(inst.b) >> (sreg(inst.c) & 63));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMin:
      set_sreg(inst.a, std::min(sreg(inst.b), sreg(inst.c)));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMax:
      set_sreg(inst.a, std::max(sreg(inst.b), sreg(inst.c)));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kFAdd:
      set_sreg(inst.a, std::bit_cast<u32>(
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.b))) +
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.c)))));
      retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kFMul:
      set_sreg(inst.a, std::bit_cast<u32>(
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.b))) *
                           std::bit_cast<float>(static_cast<u32>(sreg(inst.c)))));
      retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kAddi:
      set_sreg(inst.a, sreg(inst.b) + static_cast<u64>(inst.imm));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kMuli:
      set_sreg(inst.a, sreg(inst.b) * static_cast<u64>(inst.imm));
      retire_scalar(inst.a, t_issue + config_.mul_latency);
      break;
    case Op::kAndi:
      set_sreg(inst.a, sreg(inst.b) & static_cast<u64>(inst.imm));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSlli:
      set_sreg(inst.a, sreg(inst.b) << (inst.imm & 63));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kSrli:
      set_sreg(inst.a, sreg(inst.b) >> (inst.imm & 63));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      break;
    case Op::kLw:
      set_sreg(inst.a, memory_->read_u32(sreg(inst.b) + static_cast<u64>(inst.imm)));
      retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    case Op::kLhu:
      set_sreg(inst.a, memory_->read_u16(sreg(inst.b) + static_cast<u64>(inst.imm)));
      retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    case Op::kLbu:
      set_sreg(inst.a, memory_->read_u8(sreg(inst.b) + static_cast<u64>(inst.imm)));
      retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    case Op::kSw:
      memory_->write_u32(sreg(inst.b) + static_cast<u64>(inst.imm),
                         static_cast<u32>(sreg(inst.a)));
      break;
    case Op::kSh:
      memory_->write_u16(sreg(inst.b) + static_cast<u64>(inst.imm),
                         static_cast<u16>(sreg(inst.a)));
      break;
    case Op::kSb:
      memory_->write_u8(sreg(inst.b) + static_cast<u64>(inst.imm),
                        static_cast<u8>(sreg(inst.a)));
      break;
    case Op::kAmoAdd: {
      // Atomic fetch-and-add: atomicity comes for free because the system
      // interleaves whole instructions; the memory round trip costs a
      // scalar load latency.
      const Addr addr = sreg(inst.b) + static_cast<u64>(inst.imm);
      const u32 old = memory_->read_u32(addr);
      memory_->write_u32(addr, old + static_cast<u32>(sreg(inst.c)));
      set_sreg(inst.a, old);
      retire_scalar(inst.a, t_issue + config_.scalar_load_latency);
      break;
    }
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge: {
      const i64 lhs = static_cast<i64>(sreg(inst.a));
      const i64 rhs = static_cast<i64>(sreg(inst.b));
      bool taken = false;
      switch (inst.op) {
        case Op::kBeq: taken = lhs == rhs; break;
        case Op::kBne: taken = lhs != rhs; break;
        case Op::kBlt: taken = lhs < rhs; break;
        case Op::kBge: taken = lhs >= rhs; break;
        default: break;
      }
      if (taken) {
        next_pc = static_cast<usize>(inst.imm);
        pc_redirect_ = t_issue + 1 + config_.branch_penalty;
      }
      break;
    }
    case Op::kJal:
      set_sreg(inst.a, static_cast<u64>(pc_ + 1));
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      next_pc = static_cast<usize>(inst.imm);
      pc_redirect_ = t_issue + 1 + config_.branch_penalty;
      break;
    case Op::kJr:
      next_pc = static_cast<usize>(sreg(inst.a));
      pc_redirect_ = t_issue + 1 + config_.branch_penalty;
      break;
    case Op::kSsvl: {
      const u64 remaining = sreg(inst.a);
      vl_ = static_cast<u32>(std::min<u64>(config_.section, remaining));
      set_sreg(inst.a, remaining - vl_);
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      vl_ready_ = std::max(vl_ready_, t_issue + config_.scalar_op_latency);
      break;
    }
    case Op::kSetvl: {
      vl_ = static_cast<u32>(std::min<u64>(config_.section, sreg(inst.b)));
      set_sreg(inst.a, vl_);
      retire_scalar(inst.a, t_issue + config_.scalar_op_latency);
      vl_ready_ = std::max(vl_ready_, t_issue + config_.scalar_op_latency);
      break;
    }
    case Op::kBarrier:
      // Rendezvous: this core is done when everything it issued completes
      // (the watermark). The trace/profiler sample is deferred to
      // release_barrier(), where the wait's true extent is known.
      status_ = StepStatus::kAtBarrier;
      barrier_arrival_ = watermark_;
      barrier_issue_ = t_issue;
      barrier_unblocked_ = profile_unblocked;
      barrier_w_before_ = profile_w_before;
      barrier_pc_ = pc_;
      barrier_why_ = stall_why;
      break;
    case Op::kHalt:
      status_ = StepStatus::kHalted;
      break;
    case Op::kNop:
      break;
    default:
      SMTU_CHECK_MSG(false, "unhandled scalar op in execute");
  }
  if (status_ == StepStatus::kAtBarrier) {
    pc_ = next_pc;
    return status_;
  }
  if (trace_sink_ != nullptr) {
    const Cycle done = inst.a != kRegZero ? sreg_ready_[inst.a] : t_issue;
    trace_sink_->record({pc_, inst.op, 0, TraceUnit::kScalar, t_issue, t_issue,
                         std::max(t_issue, done), std::max(t_issue, done), core_id_});
  }
  if (profiler_ != nullptr) {
    profiler_->record({pc_, inst.op, 0, BusyKind::kScalar, stall_why, t_issue,
                       profile_unblocked, profile_w_before, watermark_, 1});
  }
  pc_ = next_pc;
  return status_;
}

void Machine::release_barrier(Cycle release) {
  SMTU_CHECK_MSG(status_ == StepStatus::kAtBarrier,
                 "release_barrier() on a core not waiting at a barrier");
  SMTU_CHECK(release >= barrier_arrival_);
  // The front end resumes at the release; everything after the barrier is
  // ordered behind it.
  pc_redirect_ = std::max(pc_redirect_, release);
  bump_watermark(release);
  if (trace_sink_ != nullptr) {
    trace_sink_->record({barrier_pc_, Op::kBarrier, 0, TraceUnit::kScalar, barrier_issue_,
                         barrier_issue_, release, release, core_id_});
  }
  if (profiler_ != nullptr) {
    // Cycles spent past the core's own arrival are the barrier's fault;
    // anything before that keeps the reason the issue path found.
    const StallReason why =
        release > barrier_arrival_ ? StallReason::kBarrierWait : barrier_why_;
    profiler_->record({barrier_pc_, Op::kBarrier, 0, BusyKind::kScalar, why, release,
                       barrier_unblocked_, barrier_w_before_, watermark_, 1});
  }
  status_ = StepStatus::kRunning;
}

RunStats Machine::finish_run() {
  SMTU_CHECK_MSG(status_ == StepStatus::kHalted, "finish_run() before halt");
  stats_.cycles = watermark_;
  const StmUnit::Stats& stm_stats = stm_->stats();
  stats_.stm_blocks = stm_stats.blocks - stm_before_.blocks;
  stats_.stm_write_cycles = stm_stats.write_cycles - stm_before_.write_cycles;
  stats_.stm_read_cycles = stm_stats.read_cycles - stm_before_.read_cycles;
  if (profiler_ != nullptr) profiler_->end_run(stats_.cycles);
  return stats_;
}

RunStats Machine::run(const Program& program, usize entry_pc) {
  begin_run(program, entry_pc);
  while (true) {
    const StepStatus status = step();
    if (status == StepStatus::kAtBarrier) {
      // A lone core's barrier releases the moment it arrives.
      release_barrier(barrier_arrival_);
    } else if (status == StepStatus::kHalted) {
      break;
    }
  }
  return finish_run();
}

std::string run_stats_summary(const RunStats& stats) {
  const double cycles = static_cast<double>(std::max<Cycle>(1, stats.cycles));
  std::string out;
  out += format("cycles:        %llu\n", static_cast<unsigned long long>(stats.cycles));
  out += format("instructions:  %llu (%llu scalar, %llu vector; %.2f instr/cycle)\n",
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.scalar_instructions),
                static_cast<unsigned long long>(stats.vector_instructions),
                static_cast<double>(stats.instructions) / cycles);
  out += format("vector elems:  %llu (avg vl %.1f)\n",
                static_cast<unsigned long long>(stats.vector_elements),
                stats.vector_instructions == 0
                    ? 0.0
                    : static_cast<double>(stats.vector_elements) /
                          static_cast<double>(stats.vector_instructions));
  out += format("memory:        %llu streamed bytes, %llu indexed elements\n",
                static_cast<unsigned long long>(stats.mem_contiguous_bytes),
                static_cast<unsigned long long>(stats.mem_indexed_elements));
  out += format("unit busy:     vmem %.1f%%, valu %.1f%%, stm %.1f%%\n",
                100.0 * static_cast<double>(stats.vmem_busy_cycles) / cycles,
                100.0 * static_cast<double>(stats.valu_busy_cycles) / cycles,
                100.0 * static_cast<double>(stats.stm_busy_cycles) / cycles);
  if (stats.stm_blocks > 0) {
    out += format("stm:           %llu block passes, %llu fill + %llu drain cycles, "
                  "%llu elements\n",
                  static_cast<unsigned long long>(stats.stm_blocks),
                  static_cast<unsigned long long>(stats.stm_write_cycles),
                  static_cast<unsigned long long>(stats.stm_read_cycles),
                  static_cast<unsigned long long>(stats.stm_elements));
  }
  return out;
}

}  // namespace smtu::vsim
