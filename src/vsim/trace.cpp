#include "vsim/trace.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace smtu::vsim {

const char* trace_unit_name(TraceUnit unit) {
  switch (unit) {
    case TraceUnit::kScalar: return "scalar";
    case TraceUnit::kVMem: return "vmem";
    case TraceUnit::kVAlu: return "valu";
    case TraceUnit::kStm: return "stm";
  }
  return "?";
}

void ExecutionTrace::record(const TraceEvent& event) {
  max_core_ = std::max(max_core_, event.core);
  if (events_.size() >= capacity_) {
    ++dropped_;
    if (event.core >= dropped_per_core_.size()) {
      dropped_per_core_.resize(event.core + 1, 0);
    }
    ++dropped_per_core_[event.core];
    return;
  }
  events_.push_back(event);
}

void ExecutionTrace::clear() {
  events_.clear();
  dropped_ = 0;
  dropped_per_core_.clear();
  max_core_ = 0;
}

void ExecutionTrace::print_table(std::ostream& out) const {
  out << format("%-5s %-11s %-6s %4s %8s %8s %8s %8s\n", "pc", "op", "unit", "vl", "issue",
                "start", "first", "last");
  for (const TraceEvent& e : events_) {
    out << format("%-5zu %-11s %-6s %4u %8llu %8llu %8llu %8llu\n", e.pc, op_name(e.op),
                  trace_unit_name(e.unit), e.vl,
                  static_cast<unsigned long long>(e.issue),
                  static_cast<unsigned long long>(e.start),
                  static_cast<unsigned long long>(e.first),
                  static_cast<unsigned long long>(e.last));
  }
  if (dropped_ > 0) {
    out << format("(+%llu events beyond capacity)\n",
                  static_cast<unsigned long long>(dropped_));
  }
}

void ExecutionTrace::print_timeline(std::ostream& out, usize width) const {
  if (events_.empty()) {
    out << "(empty trace)\n";
    if (dropped_ > 0) {
      out << format("(+%llu events beyond capacity)\n",
                    static_cast<unsigned long long>(dropped_));
    }
    return;
  }
  Cycle horizon = 1;
  for (const TraceEvent& e : events_) horizon = std::max(horizon, e.last);
  const double scale = static_cast<double>(width) / static_cast<double>(horizon + 1);
  const char unit_glyph[] = {'S', 'M', 'A', 'T'};

  out << format("cycles 0 .. %llu, one column ~ %.1f cycles\n",
                static_cast<unsigned long long>(horizon), 1.0 / scale);
  for (const TraceEvent& e : events_) {
    const usize begin = static_cast<usize>(static_cast<double>(e.start) * scale);
    const usize end = std::max(
        begin + 1, static_cast<usize>(static_cast<double>(e.last) * scale));
    std::string lane(width, ' ');
    for (usize i = begin; i < std::min(end, width); ++i) {
      lane[i] = unit_glyph[static_cast<u8>(e.unit)];
    }
    out << format("%-11s |%s|\n", op_name(e.op), lane.c_str());
  }
  if (dropped_ > 0) {
    out << format("(+%llu events beyond capacity)\n",
                  static_cast<unsigned long long>(dropped_));
  }
}

}  // namespace smtu::vsim
