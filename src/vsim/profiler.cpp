#include "vsim/profiler.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu::vsim {

const char* stall_reason_name(StallReason reason) {
  switch (reason) {
    case StallReason::kRawHazard: return "raw_hazard";
    case StallReason::kVregBusy: return "vreg_busy";
    case StallReason::kChainingWait: return "chaining_wait";
    case StallReason::kMemPort: return "mem_port";
    case StallReason::kMemIndexedSerial: return "mem_indexed_serial";
    case StallReason::kStmBusy: return "stm_busy";
    case StallReason::kValuBusy: return "valu_busy";
    case StallReason::kScalarFetch: return "scalar_fetch";
    case StallReason::kIssueLimit: return "issue_limit";
    case StallReason::kMemBankContention: return "mem_bank_contention";
    case StallReason::kBarrierWait: return "barrier_wait";
    case StallReason::kCount: break;
  }
  SMTU_CHECK_MSG(false, "invalid StallReason");
  return "";
}

const char* busy_kind_name(BusyKind kind) {
  switch (kind) {
    case BusyKind::kScalar: return "scalar";
    case BusyKind::kVMemStream: return "vmem_stream";
    case BusyKind::kVMemIndexed: return "vmem_indexed";
    case BusyKind::kVAlu: return "valu";
    case BusyKind::kStm: return "stm";
    case BusyKind::kCount: break;
  }
  SMTU_CHECK_MSG(false, "invalid BusyKind");
  return "";
}

void PerfCounters::reset() { *this = PerfCounters(); }

void PerfCounters::begin_run(const Program& program) {
  if (per_pc_.empty()) {
    per_pc_.assign(program.size(), {});
    pc_line_.resize(program.size());
    pc_region_.assign(program.size(), -1);
    for (usize pc = 0; pc < program.size(); ++pc) {
      pc_line_[pc] = program.instructions[pc].source_line;
    }
    for (const ProfileRegion& region : program.regions) {
      const i32 index = static_cast<i32>(region_names_.size());
      region_names_.push_back(region.name);
      for (usize pc = region.begin; pc < region.end && pc < program.size(); ++pc) {
        pc_region_[pc] = index;
      }
    }
    line_text_ = program.source_lines;
    return;
  }
  // Accumulating a second run: it must be the same program, or the per-pc
  // tables would silently mix unrelated code.
  SMTU_CHECK_MSG(per_pc_.size() == program.size(),
                 "PerfCounters reused across different programs (call reset())");
}

void PerfCounters::record(const ProfileSample& sample) {
  SMTU_CHECK(sample.watermark_after >= sample.watermark_before);
  const Cycle increment = sample.watermark_after - sample.watermark_before;
  // Two ways an instruction's increment can be waiting rather than working:
  //   * dead time — its start lies beyond everything that has completed
  //     (the gap from the old watermark to the start), e.g. the fetch
  //     bubble after a taken branch;
  //   * constraint delay — its start was pushed past the unconstrained
  //     issue point by the binding hazard/resource, even if other work
  //     overlapped the wait. The watermark increment *caused* by the
  //     delayed instruction is what the constraint cost end to end.
  // The wait part is the larger of the two, clamped to the increment so
  // the buckets still telescope to the exact cycle count.
  const Cycle bound = std::min(sample.t_start, sample.watermark_after);
  const Cycle dead = bound > sample.watermark_before ? bound - sample.watermark_before : 0;
  const Cycle delay =
      sample.t_start > sample.t_unblocked ? sample.t_start - sample.t_unblocked : 0;
  const Cycle wait = std::min(increment, std::max(dead, delay));
  const Cycle busy = increment - wait;

  attributed_cycles_ += increment;
  stall_cycles_[static_cast<usize>(sample.wait)] += wait;
  busy_cycles_[static_cast<usize>(sample.busy)] += busy;

  OpCounters& op = ops_[static_cast<usize>(sample.op)];
  ++op.issued;
  ++op.retired;
  op.elements += sample.vl;
  op.busy_cycles += busy;
  op.stall_cycles += wait;

  FuCounters& fu = fus_[static_cast<usize>(sample.busy)];
  ++fu.instructions;
  fu.occupancy_cycles += sample.occupancy;

  if (sample.pc < per_pc_.size()) {
    PcCounters& pc = per_pc_[sample.pc];
    ++pc.issued;
    pc.busy_cycles += busy;
    pc.stall_cycles += wait;
    pc.stalls[static_cast<usize>(sample.wait)] += wait;
  }
}

void PerfCounters::end_run(Cycle run_cycles) {
  ++runs_;
  total_cycles_ += run_cycles;
  SMTU_CHECK_MSG(attributed_cycles_ == total_cycles_,
                 "profiler cycle-conservation invariant violated: attributed " +
                     std::to_string(attributed_cycles_) + " != total " +
                     std::to_string(total_cycles_));
}

std::vector<PerfCounters::LineCounters> PerfCounters::line_rollup() const {
  std::vector<LineCounters> lines;
  // pc -> line is monotone only per region of straight-line code; aggregate
  // through a map keyed by line number for a deterministic ascending order.
  std::map<u32, LineCounters> by_line;
  for (usize pc = 0; pc < per_pc_.size(); ++pc) {
    const PcCounters& counters = per_pc_[pc];
    if (counters.issued == 0) continue;
    LineCounters& line = by_line[pc_line_[pc]];
    line.line = pc_line_[pc];
    if (line.text.empty() && pc_line_[pc] < line_text_.size()) {
      line.text = line_text_[pc_line_[pc]];
    }
    if (line.region.empty() && pc_region_[pc] >= 0) {
      line.region = region_names_[static_cast<usize>(pc_region_[pc])];
    }
    line.issued += counters.issued;
    line.busy_cycles += counters.busy_cycles;
    line.stall_cycles += counters.stall_cycles;
    for (usize reason = 0; reason < kStallReasonCount; ++reason) {
      line.stalls[reason] += counters.stalls[reason];
    }
  }
  lines.reserve(by_line.size());
  for (auto& [line_number, counters] : by_line) lines.push_back(std::move(counters));
  return lines;
}

std::vector<PerfCounters::RegionCounters> PerfCounters::region_rollup() const {
  // One rollup per distinct region *name*, in order of first static
  // appearance (a name opened twice — e.g. around an excluded sub-range —
  // aggregates into one entry).
  std::vector<RegionCounters> regions;
  std::map<std::string, usize> index_of;
  for (const std::string& name : region_names_) {
    if (index_of.count(name) > 0) continue;
    index_of.emplace(name, regions.size());
    regions.push_back({name, 0, 0, 0});
  }
  for (usize pc = 0; pc < per_pc_.size(); ++pc) {
    if (pc_region_[pc] < 0) continue;
    const PcCounters& counters = per_pc_[pc];
    RegionCounters& region =
        regions[index_of.at(region_names_[static_cast<usize>(pc_region_[pc])])];
    region.issued += counters.issued;
    region.busy_cycles += counters.busy_cycles;
    region.stall_cycles += counters.stall_cycles;
  }
  return regions;
}

std::string profile_summary(const PerfCounters& profile, usize top_lines) {
  const double total = static_cast<double>(std::max<Cycle>(1, profile.total_cycles()));
  std::string out;
  out += format("profile: %llu cycles over %llu run(s), every cycle attributed\n",
                static_cast<unsigned long long>(profile.total_cycles()),
                static_cast<unsigned long long>(profile.runs()));

  out += "\nbusy cycles by unit:\n";
  for (usize kind = 0; kind < kBusyKindCount; ++kind) {
    const u64 busy = profile.busy_cycles()[kind];
    const PerfCounters::FuCounters& fu = profile.fus()[kind];
    if (busy == 0 && fu.instructions == 0) continue;
    out += format("  %-14s %10llu (%5.1f%%)  occupancy %5.1f%%  %llu instr\n",
                  busy_kind_name(static_cast<BusyKind>(kind)),
                  static_cast<unsigned long long>(busy),
                  100.0 * static_cast<double>(busy) / total,
                  100.0 * static_cast<double>(fu.occupancy_cycles) / total,
                  static_cast<unsigned long long>(fu.instructions));
  }

  out += "\nstall cycles by reason:\n";
  for (usize reason = 0; reason < kStallReasonCount; ++reason) {
    const u64 stall = profile.stall_cycles()[reason];
    if (stall == 0) continue;
    out += format("  %-20s %10llu (%5.1f%%)\n",
                  stall_reason_name(static_cast<StallReason>(reason)),
                  static_cast<unsigned long long>(stall),
                  100.0 * static_cast<double>(stall) / total);
  }

  const auto regions = profile.region_rollup();
  if (!regions.empty()) {
    out += "\nregions (`;; profile:` markers):\n";
    for (const auto& region : regions) {
      const u64 cycles = region.busy_cycles + region.stall_cycles;
      out += format("  %-20s %10llu (%5.1f%%)  busy %llu  stall %llu\n",
                    region.name.c_str(), static_cast<unsigned long long>(cycles),
                    100.0 * static_cast<double>(cycles) / total,
                    static_cast<unsigned long long>(region.busy_cycles),
                    static_cast<unsigned long long>(region.stall_cycles));
    }
  }

  auto lines = profile.line_rollup();
  std::stable_sort(lines.begin(), lines.end(),
                   [](const PerfCounters::LineCounters& a,
                      const PerfCounters::LineCounters& b) {
                     return a.busy_cycles + a.stall_cycles > b.busy_cycles + b.stall_cycles;
                   });
  if (lines.size() > top_lines) lines.resize(top_lines);
  if (!lines.empty()) {
    out += format("\ntop %zu source lines by attributed cycles:\n", lines.size());
    for (const auto& line : lines) {
      const u64 cycles = line.busy_cycles + line.stall_cycles;
      out += format("  L%-5u %10llu (%5.1f%%)  %s\n", line.line,
                    static_cast<unsigned long long>(cycles),
                    100.0 * static_cast<double>(cycles) / total, line.text.c_str());
    }
  }
  return out;
}

}  // namespace smtu::vsim
