// Process-wide memoization of assemble(): kernels regenerate the same
// assembly source for every (matrix, config) pair, so the cache returns a
// shared immutable predecoded Program per distinct source instead of
// re-parsing it. Thread-safe; bench workers on different ThreadPool threads
// share one instance.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "vsim/program.hpp"

namespace smtu::vsim {

class ProgramCache {
 public:
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
  };

  // The process-wide cache.
  static ProgramCache& instance();

  // The predecoded Program for `source`, assembling it on first sight.
  // Assembly errors propagate (AssemblyError) and leave no cache entry.
  std::shared_ptr<const Program> get(std::string_view source);

  Stats stats() const;
  void clear();

 private:
  // Transparent hashing so get() can probe with the string_view it was
  // handed: under serving load the same multi-KB sources are looked up per
  // request, and materializing a std::string key inside the lock both
  // allocates and lengthens the critical section.
  struct SourceHash {
    using is_transparent = void;
    usize operator()(std::string_view source) const {
      return std::hash<std::string_view>{}(source);
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Program>, SourceHash, std::equal_to<>>
      entries_;
  Stats stats_;
};

}  // namespace smtu::vsim
