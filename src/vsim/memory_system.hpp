// Shared banked memory system for multi-core simulation.
//
// The functional Memory stays byte-exact and timing-free; MemorySystem
// layers the *shared* timing model on top: N address-interleaved banks,
// each able to deliver one word-sized beat per cycle. A vector memory
// access occupies the banks its address range touches; when two cores'
// accesses overlap on a bank, the later request is pushed back until the
// bank frees up and the pushback is charged to the requesting core as a
// `mem_bank_contention` stall (see docs/PROFILING.md, docs/MULTICORE.md).
//
// A single core can never contend with itself: its vector memory pipe
// serializes accesses, and an access's per-bank occupancy is bounded by
// the access's own duration whenever the aggregate bank bandwidth
// (banks * bank_bytes_per_cycle) is at least the core's streaming rate
// (mem_bytes_per_cycle). That is what keeps the N=1 system bit-identical
// with the standalone Machine timing.
//
// Scalar loads/stores model a short cache-hit path (see config.hpp) and
// bypass the banks, exactly as in the single-core machine.
#pragma once

#include <vector>

#include "vsim/memory.hpp"

namespace smtu::vsim {

struct MemorySystemConfig {
  // Number of address-interleaved banks; must be a power of two. The
  // default (32 banks x 4 B/cycle = 128 B/cycle aggregate) sustains eight
  // default cores (16 B/cycle each) with only discretization conflicts.
  u32 banks = 32;
  // Bytes one bank delivers per cycle (one 32-bit word by default).
  u32 bank_bytes_per_cycle = 4;
  // Consecutive bytes mapped to one bank before moving to the next.
  u32 interleave_bytes = 4;
  u64 memory_limit = u64{1} << 30;
};

class MemorySystem {
 public:
  struct Stats {
    u64 requests = 0;            // timed (vector) accesses arbitrated
    u64 contended_requests = 0;  // requests pushed back by a busy bank
    u64 contention_cycles = 0;   // total pushback, summed over requests
  };

  explicit MemorySystem(const MemorySystemConfig& config);

  const MemorySystemConfig& config() const { return config_; }
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

  // Arbitrates an access of `bytes` starting at `addr` that wants to begin
  // at `earliest`. Returns the granted start cycle (>= earliest); the
  // difference is bank contention. Banks touched by the access are marked
  // busy for their share of the transfer starting at the grant.
  Cycle request(Addr addr, u64 bytes, Cycle earliest);

  // Clears the bank scoreboards and statistics for a new timed run.
  // Memory contents persist (workloads are staged before the run).
  void reset_timing();

  const Stats& stats() const { return stats_; }

 private:
  MemorySystemConfig config_;
  Memory memory_;
  std::vector<Cycle> bank_free_;  // next cycle each bank accepts a beat
  Stats stats_;
};

}  // namespace smtu::vsim
