// Structured execution tracing: per-instruction timing records and a text
// timeline renderer. Attach an ExecutionTrace to a Machine to see *why* a
// kernel spends its cycles — which unit each instruction occupied, how
// chaining overlapped producers and consumers, where the pipeline drained.
#pragma once

#include <ostream>
#include <vector>

#include "vsim/isa.hpp"

namespace smtu::vsim {

enum class TraceUnit : u8 { kScalar = 0, kVMem = 1, kVAlu = 2, kStm = 3 };

const char* trace_unit_name(TraceUnit unit);

struct TraceEvent {
  usize pc = 0;
  Op op = Op::kNop;
  u32 vl = 0;          // vector length at execution (0 for scalar ops)
  TraceUnit unit = TraceUnit::kScalar;
  Cycle issue = 0;     // scalar issue slot
  Cycle start = 0;     // unit start (== issue for scalar ops)
  Cycle first = 0;     // first result available
  Cycle last = 0;      // last result available / completion
  u32 core = 0;        // originating core (0 for single-core machines)
};

class ExecutionTrace {
 public:
  // Records at most `capacity` events; later ones are counted but dropped.
  explicit ExecutionTrace(usize capacity = 4096) : capacity_(capacity) {}

  void record(const TraceEvent& event);
  void clear();

  const std::vector<TraceEvent>& events() const { return events_; }
  usize capacity() const { return capacity_; }
  u64 dropped() const { return dropped_; }
  // Drops attributed per originating core, so concurrent cores sharing one
  // trace keep their accounting separate. Indexed by core id; cores past
  // the end dropped nothing. Empty until the first drop.
  const std::vector<u64>& dropped_per_core() const { return dropped_per_core_; }
  // Highest core id seen across recorded *and* dropped events (0 when only
  // a single core ever recorded).
  u32 max_core() const { return max_core_; }

  // One line per event: pc, mnemonic, unit, issue/start/first/last columns.
  void print_table(std::ostream& out) const;

  // ASCII timeline: each event's busy interval drawn over a scaled cycle
  // axis, labelled with the unit letter (S/M/A/T). `width` columns of axis.
  void print_timeline(std::ostream& out, usize width = 72) const;

 private:
  usize capacity_;
  std::vector<TraceEvent> events_;
  u64 dropped_ = 0;
  std::vector<u64> dropped_per_core_;
  u32 max_core_ = 0;
};

}  // namespace smtu::vsim
