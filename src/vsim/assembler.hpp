// Two-pass assembler for the vsim ISA.
//
// Syntax (one instruction per line):
//
//   label:                         # labels stand alone or prefix a line
//   li    r1, 0x1000               # immediates: decimal, hex, negative
//   lw    r2, 8(r1)                # scalar memory: offset(base)
//   v_ld  vr1, (r3)                # vector memory, offset optional
//   v_ldx vr1, (r3), vr0           # gather: base + 4 * index
//   bne   r2, r0, Loop1            # branches take a label
//   v_ldb vr1, vr2, r3, r4         # HiSM extension (Fig. 7 of the paper)
//
// Comments start with '#' or '%'. Register aliases: zero (r0), ra (r31),
// sp (r30). The paper's mnemonics v_ld_idx, v_st_idx, v_setimm and
// v_add_imm are accepted as aliases of v_ldx, v_stx, v_bcasti and v_addi.
//
// Lines starting with ';;' are assembler directives. The only one today is
//
//   ;; profile: <name>             # open a profiler region (docs/PROFILING.md)
//
// which names the instruction range up to the next directive (or end of
// program); `;; profile: end` closes the open region without starting a new
// one. Regions and the per-line source text are recorded in the Program for
// the cycle-attribution profiler.
//
// Errors raise AssemblyError with the offending line number.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "vsim/program.hpp"

namespace smtu::vsim {

class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(usize line, const std::string& message);

  usize line() const { return line_; }

 private:
  usize line_;
};

// Assembles `source` (no copy is taken) into a predecoded Program.
Program assemble(std::string_view source);

}  // namespace smtu::vsim
