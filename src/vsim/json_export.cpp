#include "vsim/json_export.hpp"

#include <algorithm>
#include <map>

#include "support/strings.hpp"
#include "support/telemetry.hpp"

namespace smtu::vsim {

namespace {

// One row per counter keeps the writer, the reader, and the docs in lock
// step: add a RunStats member here and both directions pick it up.
struct StatsField {
  const char* key;
  u64 RunStats::* member;
};

constexpr StatsField kU64Fields[] = {
    {"instructions", &RunStats::instructions},
    {"scalar_instructions", &RunStats::scalar_instructions},
    {"vector_instructions", &RunStats::vector_instructions},
    {"vector_elements", &RunStats::vector_elements},
    {"mem_contiguous_bytes", &RunStats::mem_contiguous_bytes},
    {"mem_indexed_elements", &RunStats::mem_indexed_elements},
    {"stm_blocks", &RunStats::stm_blocks},
    {"stm_write_cycles", &RunStats::stm_write_cycles},
    {"stm_read_cycles", &RunStats::stm_read_cycles},
    {"stm_elements", &RunStats::stm_elements},
    {"vmem_busy_cycles", &RunStats::vmem_busy_cycles},
    {"valu_busy_cycles", &RunStats::valu_busy_cycles},
    {"stm_busy_cycles", &RunStats::stm_busy_cycles},
};

}  // namespace

void write_run_stats_json(JsonWriter& json, const RunStats& stats) {
  json.begin_object();
  json.key("cycles");
  json.value(static_cast<u64>(stats.cycles));
  for (const StatsField& field : kU64Fields) {
    json.key(field.key);
    json.value(stats.*field.member);
  }
  json.end_object();
}

std::optional<RunStats> run_stats_from_json(const JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  const JsonValue* cycles = value.find("cycles");
  if (cycles == nullptr || !cycles->is_number()) return std::nullopt;
  RunStats stats;
  stats.cycles = static_cast<Cycle>(cycles->as_u64());
  for (const StatsField& field : kU64Fields) {
    const JsonValue* counter = value.find(field.key);
    if (counter == nullptr || !counter->is_number()) return std::nullopt;
    stats.*field.member = counter->as_u64();
  }
  return stats;
}

void write_machine_config_json(JsonWriter& json, const MachineConfig& config) {
  json.begin_object();
  json.key("section");
  json.value(static_cast<u64>(config.section));
  json.key("lanes");
  json.value(static_cast<u64>(config.lanes));
  json.key("chaining");
  json.value(config.chaining);
  json.key("valu_startup");
  json.value(static_cast<u64>(config.valu_startup));
  json.key("mem_startup");
  json.value(static_cast<u64>(config.mem_startup));
  json.key("mem_bytes_per_cycle");
  json.value(static_cast<u64>(config.mem_bytes_per_cycle));
  json.key("mem_indexed_elems_per_cycle");
  json.value(static_cast<u64>(config.mem_indexed_elems_per_cycle));
  json.key("mem_pipelined_startup");
  json.value(config.mem_pipelined_startup);
  json.key("scalar_issue_width");
  json.value(static_cast<u64>(config.scalar_issue_width));
  json.key("scalar_mem_ports");
  json.value(static_cast<u64>(config.scalar_mem_ports));
  json.key("scalar_load_latency");
  json.value(static_cast<u64>(config.scalar_load_latency));
  json.key("scalar_op_latency");
  json.value(static_cast<u64>(config.scalar_op_latency));
  json.key("mul_latency");
  json.value(static_cast<u64>(config.mul_latency));
  json.key("branch_penalty");
  json.value(static_cast<u64>(config.branch_penalty));
  json.key("stm");
  json.begin_object();
  json.key("bandwidth");
  json.value(static_cast<u64>(config.stm.bandwidth));
  json.key("lines");
  json.value(static_cast<u64>(config.stm.lines));
  json.key("strict_consecutive_lines");
  json.value(config.stm.strict_consecutive_lines);
  json.key("fill_pipeline_cycles");
  json.value(static_cast<u64>(config.stm.fill_pipeline_cycles));
  json.key("drain_pipeline_cycles");
  json.value(static_cast<u64>(config.stm.drain_pipeline_cycles));
  json.key("skip_empty_lines");
  json.value(config.stm.skip_empty_lines);
  json.key("double_buffer");
  json.value(config.stm.double_buffer);
  json.end_object();
  json.end_object();
}

void write_chrome_trace(std::ostream& out, const ExecutionTrace& trace,
                        const std::string& process_name) {
  JsonWriter json(out);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();

  // Track metadata: one process, one named thread per functional unit,
  // ordered scalar / vmem / valu / stm top to bottom.
  json.begin_object();
  json.key("name");
  json.value("process_name");
  json.key("ph");
  json.value("M");
  json.key("pid");
  json.value(u64{1});
  json.key("args");
  json.begin_object();
  json.key("name");
  json.value(process_name);
  json.end_object();
  json.end_object();
  // Multi-core traces map each core to its own process (pid = core + 1) so
  // viewers group per-core tracks; a single-core trace stays byte-identical
  // to the pre-multi-core format (every event carries core 0 -> pid 1).
  for (u32 core = 1; core <= trace.max_core(); ++core) {
    json.begin_object();
    json.key("name");
    json.value("process_name");
    json.key("ph");
    json.value("M");
    json.key("pid");
    json.value(static_cast<u64>(core) + 1);
    json.key("args");
    json.begin_object();
    json.key("name");
    json.value(format("core %u", core));
    json.end_object();
    json.end_object();
  }
  constexpr TraceUnit kUnits[] = {TraceUnit::kScalar, TraceUnit::kVMem, TraceUnit::kVAlu,
                                  TraceUnit::kStm};
  for (u32 core = 0; core <= trace.max_core(); ++core) {
    for (const TraceUnit unit : kUnits) {
      const u64 pid = static_cast<u64>(core) + 1;
      const u64 tid = static_cast<u8>(unit);
      json.begin_object();
      json.key("name");
      json.value("thread_name");
      json.key("ph");
      json.value("M");
      json.key("pid");
      json.value(pid);
      json.key("tid");
      json.value(tid);
      json.key("args");
      json.begin_object();
      json.key("name");
      json.value(trace_unit_name(unit));
      json.end_object();
      json.end_object();
      json.begin_object();
      json.key("name");
      json.value("thread_sort_index");
      json.key("ph");
      json.value("M");
      json.key("pid");
      json.value(pid);
      json.key("tid");
      json.value(tid);
      json.key("args");
      json.begin_object();
      json.key("sort_index");
      json.value(tid);
      json.end_object();
      json.end_object();
    }
  }

  // One complete ("X") slice per instruction on its unit's track. ts/dur are
  // in the format's microsecond unit; we map one simulated cycle to 1 us so
  // viewers show raw cycle numbers.
  for (const TraceEvent& event : trace.events()) {
    const u64 start = static_cast<u64>(event.start);
    const u64 last = static_cast<u64>(std::max(event.last, event.start));
    json.begin_object();
    json.key("name");
    json.value(op_name(event.op));
    json.key("cat");
    json.value(trace_unit_name(event.unit));
    json.key("ph");
    json.value("X");
    json.key("ts");
    json.value(start);
    json.key("dur");
    json.value(std::max<u64>(1, last - start));
    json.key("pid");
    json.value(static_cast<u64>(event.core) + 1);
    json.key("tid");
    json.value(static_cast<u64>(static_cast<u8>(event.unit)));
    json.key("args");
    json.begin_object();
    json.key("pc");
    json.value(static_cast<u64>(event.pc));
    json.key("vl");
    json.value(static_cast<u64>(event.vl));
    json.key("issue");
    json.value(static_cast<u64>(event.issue));
    json.key("start");
    json.value(start);
    json.key("first");
    json.value(static_cast<u64>(event.first));
    json.key("last");
    json.value(last);
    json.end_object();
    json.end_object();
  }

  // Host telemetry spans, interleaved under their own process id
  // (telemetry::kHostTracePid) so the simulated-unit tracks above are
  // untouched. The buffer is empty unless both telemetry and host tracing
  // are on, keeping default dumps byte-identical.
  const std::vector<telemetry::HostTraceEvent> host_events = telemetry::host_trace_events();
  if (!host_events.empty()) {
    json.begin_object();
    json.key("name");
    json.value("process_name");
    json.key("ph");
    json.value("M");
    json.key("pid");
    json.value(telemetry::kHostTracePid);
    json.key("args");
    json.begin_object();
    json.key("name");
    json.value("host");
    json.end_object();
    json.end_object();
    for (const telemetry::HostTraceEvent& event : host_events) {
      json.begin_object();
      json.key("name");
      json.value(event.name);
      json.key("cat");
      json.value("host");
      json.key("ph");
      json.value("X");
      json.key("ts");
      json.value(event.start_us);
      json.key("dur");
      json.value(std::max<u64>(1, event.dur_us));
      json.key("pid");
      json.value(telemetry::kHostTracePid);
      json.key("tid");
      json.value(static_cast<u64>(event.thread));
      json.end_object();
    }
  }
  json.end_array();
  json.key("displayTimeUnit");
  json.value("ns");
  // Machine-readable truncation marker: consumers should treat dropped > 0
  // as an incomplete timeline (raise the ExecutionTrace capacity).
  json.key("trace");
  json.begin_object();
  json.key("events");
  json.value(static_cast<u64>(trace.events().size()));
  json.key("capacity");
  json.value(static_cast<u64>(trace.capacity()));
  json.key("dropped");
  json.value(trace.dropped());
  // Per-core drop counts appear only once a core other than 0 has recorded
  // an event, so single-core dumps stay byte-identical.
  if (trace.max_core() > 0) {
    json.key("dropped_per_core");
    json.begin_array();
    const auto& per_core = trace.dropped_per_core();
    for (u32 core = 0; core <= trace.max_core(); ++core) {
      json.value(core < per_core.size() ? per_core[core] : u64{0});
    }
    json.end_array();
  }
  json.end_object();
  json.key("dropped");  // legacy location, kept for old consumers
  json.value(trace.dropped());
  json.end_object();
  out << '\n';
}

void write_profile_json(JsonWriter& json, const PerfCounters& profile) {
  const double total = static_cast<double>(std::max<Cycle>(1, profile.total_cycles()));
  json.begin_object();
  json.key("schema");
  json.value("smtu-profile-v1");
  json.key("cycles");
  json.value(static_cast<u64>(profile.total_cycles()));
  json.key("runs");
  json.value(profile.runs());

  // Every bucket, zeros included, in enum order — Σ values == "cycles".
  json.key("buckets");
  json.begin_object();
  for (usize kind = 0; kind < kBusyKindCount; ++kind) {
    json.key(std::string("busy_") + busy_kind_name(static_cast<BusyKind>(kind)));
    json.value(profile.busy_cycles()[kind]);
  }
  for (usize reason = 0; reason < kStallReasonCount; ++reason) {
    json.key(std::string("stall_") + stall_reason_name(static_cast<StallReason>(reason)));
    json.value(profile.stall_cycles()[reason]);
  }
  json.end_object();

  json.key("fu");
  json.begin_object();
  for (usize kind = 0; kind < kBusyKindCount; ++kind) {
    const PerfCounters::FuCounters& fu = profile.fus()[kind];
    json.key(busy_kind_name(static_cast<BusyKind>(kind)));
    json.begin_object();
    json.key("instructions");
    json.value(fu.instructions);
    json.key("occupancy_cycles");
    json.value(fu.occupancy_cycles);
    json.key("idle_cycles");
    json.value(profile.total_cycles() > fu.occupancy_cycles
                   ? profile.total_cycles() - fu.occupancy_cycles
                   : 0);
    json.key("occupancy");
    json.value(static_cast<double>(fu.occupancy_cycles) / total);
    json.end_object();
  }
  json.end_object();

  json.key("opcodes");
  json.begin_object();
  for (usize op = 0; op < kOpCount; ++op) {
    const PerfCounters::OpCounters& counters = profile.ops()[op];
    if (counters.issued == 0) continue;
    json.key(op_name(static_cast<Op>(op)));
    json.begin_object();
    json.key("issued");
    json.value(counters.issued);
    json.key("retired");
    json.value(counters.retired);
    json.key("elements");
    json.value(counters.elements);
    json.key("busy_cycles");
    json.value(counters.busy_cycles);
    json.key("stall_cycles");
    json.value(counters.stall_cycles);
    json.end_object();
  }
  json.end_object();

  json.key("regions");
  json.begin_array();
  for (const PerfCounters::RegionCounters& region : profile.region_rollup()) {
    json.begin_object();
    json.key("name");
    json.value(region.name);
    json.key("issued");
    json.value(region.issued);
    json.key("busy_cycles");
    json.value(region.busy_cycles);
    json.key("stall_cycles");
    json.value(region.stall_cycles);
    json.end_object();
  }
  json.end_array();

  json.key("lines");
  json.begin_array();
  for (const PerfCounters::LineCounters& line : profile.line_rollup()) {
    json.begin_object();
    json.key("line");
    json.value(static_cast<u64>(line.line));
    json.key("text");
    json.value(line.text);
    json.key("region");
    json.value(line.region);
    json.key("issued");
    json.value(line.issued);
    json.key("busy_cycles");
    json.value(line.busy_cycles);
    json.key("stall_cycles");
    json.value(line.stall_cycles);
    json.key("stalls");
    json.begin_object();
    for (usize reason = 0; reason < kStallReasonCount; ++reason) {
      if (line.stalls[reason] == 0) continue;
      json.key(stall_reason_name(static_cast<StallReason>(reason)));
      json.value(line.stalls[reason]);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_speedscope_profile(std::ostream& out, const PerfCounters& profile,
                              const std::string& name) {
  // "sampled" speedscope profile: one synthetic sample per (line, bucket)
  // pair with the attributed cycle count as its weight, stacked as
  // region > line > bucket so the flamegraph drills down naturally.
  struct Sample {
    std::vector<usize> stack;  // frame indices, outermost first
    u64 weight;
  };
  std::vector<std::string> frames;
  std::map<std::string, usize> frame_index;
  auto intern = [&](const std::string& frame) {
    const auto [it, inserted] = frame_index.emplace(frame, frames.size());
    if (inserted) frames.push_back(frame);
    return it->second;
  };

  std::vector<Sample> samples;
  for (const PerfCounters::LineCounters& line : profile.line_rollup()) {
    std::vector<usize> prefix;
    prefix.push_back(intern(line.region.empty() ? "(no region)" : line.region));
    prefix.push_back(intern(format("L%u: %s", line.line, line.text.c_str())));
    if (line.busy_cycles > 0) {
      Sample sample{prefix, line.busy_cycles};
      sample.stack.push_back(intern("busy"));
      samples.push_back(std::move(sample));
    }
    for (usize reason = 0; reason < kStallReasonCount; ++reason) {
      if (line.stalls[reason] == 0) continue;
      Sample sample{prefix, line.stalls[reason]};
      sample.stack.push_back(intern(std::string("stall: ") +
                                    stall_reason_name(static_cast<StallReason>(reason))));
      samples.push_back(std::move(sample));
    }
  }

  JsonWriter json(out);
  json.begin_object();
  json.key("$schema");
  json.value("https://www.speedscope.app/file-format-schema.json");
  json.key("shared");
  json.begin_object();
  json.key("frames");
  json.begin_array();
  for (const std::string& frame : frames) {
    json.begin_object();
    json.key("name");
    json.value(frame);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("profiles");
  json.begin_array();
  json.begin_object();
  json.key("type");
  json.value("sampled");
  json.key("name");
  json.value(name);
  json.key("unit");
  json.value("none");
  json.key("startValue");
  json.value(u64{0});
  json.key("endValue");
  json.value(static_cast<u64>(profile.total_cycles()));
  json.key("samples");
  json.begin_array();
  for (const Sample& sample : samples) {
    json.begin_array();
    for (const usize frame : sample.stack) json.value(static_cast<u64>(frame));
    json.end_array();
  }
  json.end_array();
  json.key("weights");
  json.begin_array();
  for (const Sample& sample : samples) json.value(sample.weight);
  json.end_array();
  json.end_object();
  json.end_array();
  json.key("name");
  json.value(name);
  json.end_object();
  out << '\n';
}

}  // namespace smtu::vsim
