#include "vsim/json_export.hpp"

#include <algorithm>

namespace smtu::vsim {

namespace {

// One row per counter keeps the writer, the reader, and the docs in lock
// step: add a RunStats member here and both directions pick it up.
struct StatsField {
  const char* key;
  u64 RunStats::* member;
};

constexpr StatsField kU64Fields[] = {
    {"instructions", &RunStats::instructions},
    {"scalar_instructions", &RunStats::scalar_instructions},
    {"vector_instructions", &RunStats::vector_instructions},
    {"vector_elements", &RunStats::vector_elements},
    {"mem_contiguous_bytes", &RunStats::mem_contiguous_bytes},
    {"mem_indexed_elements", &RunStats::mem_indexed_elements},
    {"stm_blocks", &RunStats::stm_blocks},
    {"stm_write_cycles", &RunStats::stm_write_cycles},
    {"stm_read_cycles", &RunStats::stm_read_cycles},
    {"stm_elements", &RunStats::stm_elements},
    {"vmem_busy_cycles", &RunStats::vmem_busy_cycles},
    {"valu_busy_cycles", &RunStats::valu_busy_cycles},
    {"stm_busy_cycles", &RunStats::stm_busy_cycles},
};

}  // namespace

void write_run_stats_json(JsonWriter& json, const RunStats& stats) {
  json.begin_object();
  json.key("cycles");
  json.value(static_cast<u64>(stats.cycles));
  for (const StatsField& field : kU64Fields) {
    json.key(field.key);
    json.value(stats.*field.member);
  }
  json.end_object();
}

std::optional<RunStats> run_stats_from_json(const JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  const JsonValue* cycles = value.find("cycles");
  if (cycles == nullptr || !cycles->is_number()) return std::nullopt;
  RunStats stats;
  stats.cycles = static_cast<Cycle>(cycles->as_u64());
  for (const StatsField& field : kU64Fields) {
    const JsonValue* counter = value.find(field.key);
    if (counter == nullptr || !counter->is_number()) return std::nullopt;
    stats.*field.member = counter->as_u64();
  }
  return stats;
}

void write_machine_config_json(JsonWriter& json, const MachineConfig& config) {
  json.begin_object();
  json.key("section");
  json.value(static_cast<u64>(config.section));
  json.key("lanes");
  json.value(static_cast<u64>(config.lanes));
  json.key("chaining");
  json.value(config.chaining);
  json.key("valu_startup");
  json.value(static_cast<u64>(config.valu_startup));
  json.key("mem_startup");
  json.value(static_cast<u64>(config.mem_startup));
  json.key("mem_bytes_per_cycle");
  json.value(static_cast<u64>(config.mem_bytes_per_cycle));
  json.key("mem_indexed_elems_per_cycle");
  json.value(static_cast<u64>(config.mem_indexed_elems_per_cycle));
  json.key("mem_pipelined_startup");
  json.value(config.mem_pipelined_startup);
  json.key("scalar_issue_width");
  json.value(static_cast<u64>(config.scalar_issue_width));
  json.key("scalar_mem_ports");
  json.value(static_cast<u64>(config.scalar_mem_ports));
  json.key("scalar_load_latency");
  json.value(static_cast<u64>(config.scalar_load_latency));
  json.key("scalar_op_latency");
  json.value(static_cast<u64>(config.scalar_op_latency));
  json.key("mul_latency");
  json.value(static_cast<u64>(config.mul_latency));
  json.key("branch_penalty");
  json.value(static_cast<u64>(config.branch_penalty));
  json.key("stm");
  json.begin_object();
  json.key("bandwidth");
  json.value(static_cast<u64>(config.stm.bandwidth));
  json.key("lines");
  json.value(static_cast<u64>(config.stm.lines));
  json.key("strict_consecutive_lines");
  json.value(config.stm.strict_consecutive_lines);
  json.key("fill_pipeline_cycles");
  json.value(static_cast<u64>(config.stm.fill_pipeline_cycles));
  json.key("drain_pipeline_cycles");
  json.value(static_cast<u64>(config.stm.drain_pipeline_cycles));
  json.key("skip_empty_lines");
  json.value(config.stm.skip_empty_lines);
  json.key("double_buffer");
  json.value(config.stm.double_buffer);
  json.end_object();
  json.end_object();
}

void write_chrome_trace(std::ostream& out, const ExecutionTrace& trace,
                        const std::string& process_name) {
  JsonWriter json(out);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();

  // Track metadata: one process, one named thread per functional unit,
  // ordered scalar / vmem / valu / stm top to bottom.
  json.begin_object();
  json.key("name");
  json.value("process_name");
  json.key("ph");
  json.value("M");
  json.key("pid");
  json.value(u64{1});
  json.key("args");
  json.begin_object();
  json.key("name");
  json.value(process_name);
  json.end_object();
  json.end_object();
  constexpr TraceUnit kUnits[] = {TraceUnit::kScalar, TraceUnit::kVMem, TraceUnit::kVAlu,
                                  TraceUnit::kStm};
  for (const TraceUnit unit : kUnits) {
    const u64 tid = static_cast<u8>(unit);
    json.begin_object();
    json.key("name");
    json.value("thread_name");
    json.key("ph");
    json.value("M");
    json.key("pid");
    json.value(u64{1});
    json.key("tid");
    json.value(tid);
    json.key("args");
    json.begin_object();
    json.key("name");
    json.value(trace_unit_name(unit));
    json.end_object();
    json.end_object();
    json.begin_object();
    json.key("name");
    json.value("thread_sort_index");
    json.key("ph");
    json.value("M");
    json.key("pid");
    json.value(u64{1});
    json.key("tid");
    json.value(tid);
    json.key("args");
    json.begin_object();
    json.key("sort_index");
    json.value(tid);
    json.end_object();
    json.end_object();
  }

  // One complete ("X") slice per instruction on its unit's track. ts/dur are
  // in the format's microsecond unit; we map one simulated cycle to 1 us so
  // viewers show raw cycle numbers.
  for (const TraceEvent& event : trace.events()) {
    const u64 start = static_cast<u64>(event.start);
    const u64 last = static_cast<u64>(std::max(event.last, event.start));
    json.begin_object();
    json.key("name");
    json.value(op_name(event.op));
    json.key("cat");
    json.value(trace_unit_name(event.unit));
    json.key("ph");
    json.value("X");
    json.key("ts");
    json.value(start);
    json.key("dur");
    json.value(std::max<u64>(1, last - start));
    json.key("pid");
    json.value(u64{1});
    json.key("tid");
    json.value(static_cast<u64>(static_cast<u8>(event.unit)));
    json.key("args");
    json.begin_object();
    json.key("pc");
    json.value(static_cast<u64>(event.pc));
    json.key("vl");
    json.value(static_cast<u64>(event.vl));
    json.key("issue");
    json.value(static_cast<u64>(event.issue));
    json.key("start");
    json.value(start);
    json.key("first");
    json.value(static_cast<u64>(event.first));
    json.key("last");
    json.value(last);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.key("displayTimeUnit");
  json.value("ns");
  json.key("dropped");
  json.value(trace.dropped());
  json.end_object();
  out << '\n';
}

}  // namespace smtu::vsim
