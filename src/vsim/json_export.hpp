// Machine-readable exports of the simulator's measurement types.
//
// Two consumers drive the shapes here:
//  * per-PR perf tracking — RunStats as a flat JSON object with stable keys
//    (`tools/bench_diff.py` compares these across benchmark runs);
//  * interactive timing inspection — ExecutionTrace as Chrome trace-event
//    JSON (the `chrome://tracing` / Perfetto format), one track per
//    functional unit so chaining overlap is directly visible.
//
// Field semantics are documented in docs/TRACE.md; the JSON keys mirror the
// RunStats member names one-to-one so the schema never drifts from the code.
#pragma once

#include <ostream>
#include <string>

#include "support/json.hpp"
#include "vsim/machine.hpp"
#include "vsim/profiler.hpp"
#include "vsim/trace.hpp"

namespace smtu::vsim {

// Writes `stats` as one JSON object: every RunStats counter under its member
// name. Usable mid-document (the caller owns surrounding structure).
void write_run_stats_json(JsonWriter& json, const RunStats& stats);

// Rebuilds RunStats from a parsed object produced by write_run_stats_json.
// Returns nullopt if any counter key is missing or non-numeric.
std::optional<RunStats> run_stats_from_json(const JsonValue& value);

// Writes the machine configuration knobs that shape timing, so exported
// measurements are self-describing.
void write_machine_config_json(JsonWriter& json, const MachineConfig& config);

// Chrome trace-event export. Produces a complete JSON object document:
//   {"traceEvents": [...], "displayTimeUnit": "ns",
//    "trace": {"events": N, "capacity": C, "dropped": D}, "dropped": D}
// with one metadata-named thread (track) per TraceUnit and one complete "X"
// event per trace record (ts = start cycle, dur = last - start, clamped to
// at least 1 so zero-length scalar ops stay visible). `process_name` labels
// the single process track group. The "trace" object makes truncation
// machine-detectable (dropped > 0); the top-level "dropped" key is kept for
// backwards compatibility.
void write_chrome_trace(std::ostream& out, const ExecutionTrace& trace,
                        const std::string& process_name = "vsim");

// Writes a profiler's counters as one "smtu-profile-v1" JSON object (schema
// reference: docs/PROFILING.md). Usable mid-document, like
// write_run_stats_json — the bench harness embeds it as a "profile" section
// of smtu-bench-v1 records.
void write_profile_json(JsonWriter& json, const PerfCounters& profile);

// Writes a complete speedscope (https://www.speedscope.app) document for
// interactive flamegraph inspection: one "sampled" profile whose stacks are
// region > source line > attribution bucket, weighted by attributed cycles.
void write_speedscope_profile(std::ostream& out, const PerfCounters& profile,
                              const std::string& name = "vsim");

}  // namespace smtu::vsim
