// Instruction set of the simulated vector processor.
//
// The machine models the architecture of §II/§IV-A of the paper: a scalar
// core, a register-vector unit with section size s, a high-bandwidth vector
// memory unit, and the STM functional unit driven by the HiSM instruction
// extension (icm / v_ldb / v_stcr / v_ldcc / v_stb, cf. Fig. 7).
//
// Programs are sequences of decoded Instruction records; the PC is an index
// into that sequence (there is no binary encoding — this is a performance
// simulator, not an RTL model).
#pragma once

#include <string>

#include "support/types.hpp"

namespace smtu::vsim {

inline constexpr u32 kNumScalarRegs = 32;
inline constexpr u32 kNumVectorRegs = 16;
inline constexpr u32 kRegZero = 0;   // hardwired zero
inline constexpr u32 kRegRa = 31;    // link register (call/ret)
inline constexpr u32 kRegSp = 30;    // stack pointer by convention

enum class Op : u8 {
  // Scalar ALU.
  kLi,    // li rd, imm
  kMv,    // mv rd, rs
  kAdd,   // add rd, rs1, rs2
  kSub,
  kMul,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kMin,
  kMax,
  kAddi,  // addi rd, rs, imm
  kMuli,
  kAndi,
  kSlli,
  kSrli,
  // Scalar float (IEEE-754 single in the low 32 bits).
  kFAdd,  // fadd rd, rs1, rs2
  kFMul,
  // Scalar memory.
  kLw,    // lw rd, off(rs)   (32-bit zero-extended)
  kSw,    // sw rs2, off(rs)
  kLhu,   // lhu rd, off(rs)
  kSh,
  kLbu,
  kSb,
  // Control.
  kBeq,   // beq rs1, rs2, label
  kBne,
  kBlt,   // signed
  kBge,
  kJal,   // jal label  (link in ra)
  kJr,    // jr rs
  kHalt,
  kNop,
  // Vector length control. ssvl is the paper's strip-mining primitive:
  // vl = min(s, R[rs]); R[rs] -= vl.
  kSsvl,
  kSetvl,  // setvl rd, rs : vl = min(s, R[rs]); R[rd] = vl
  // Vector memory (32-bit elements).
  kVLd,   // v_ld vd, off(rs)          contiguous
  kVSt,   // v_st vs, off(rs)
  kVLdx,  // v_ldx vd, off(rs), vidx   gather from base + 4*idx
  kVStx,  // v_stx vs, off(rs), vidx   scatter
  kVLds,  // v_lds vd, off(rs), rstride  strided: element i at base + i*R[rstride]
  kVSts,  // v_sts vs, off(rs), rstride
  // Vector integer ALU.
  kVAdd,   // v_add vd, vs1, vs2
  kVSub,
  kVMul,
  kVAnd,
  kVOr,
  kVXor,
  kVMin,   // unsigned
  kVMax,
  kVAddi,  // v_addi vd, vs, imm       (paper: v_add_imm)
  kVAdds,  // v_adds vd, vs, rs
  kVBcast,   // v_bcast vd, rs
  kVBcasti,  // v_bcasti vd, imm       (paper: v_setimm)
  kVIota,    // v_iota vd
  kVSlideUp,    // v_slideup vd, vs, imm : vd[i] = i >= imm ? vs[i-imm] : 0
  kVSlideDown,  // v_slidedown vd, vs, imm : vd[i] = vs[i+imm] or 0
  kVRedSum,     // v_redsum rd, vs
  kVExtract,    // v_extract rd, vs, rs : rd = vs[R[rs]]
  // Vector compares producing 0/1 lanes (the mask vectors of §IV-A).
  kVSeq,        // v_seq vd, vs1, vs2 : vd[i] = vs1[i] == vs2[i]
  kVSeqS,       // v_seqs vd, vs, rs  : vd[i] = vs[i] == R[rs]
  // Vector float (IEEE-754 single on the 32-bit lanes).
  kVFAdd,
  kVFMul,
  kVFRedSum,    // v_fredsum rd, vs : float sum reduction, result bits in rd
  // HiSM / STM extension (Fig. 7 of the paper).
  kIcm,    // icm : reset the s x s memory indicators
  kVLdb,   // v_ldb vval, vpos, rpos, rval : load vl block-array entries;
           //   auto-increments R[rpos] += 2*vl and R[rval] += 4*vl
  kVStcr,  // v_stcr vval, vpos : store row-wise into the s x s memory
  kVLdcc,  // v_ldcc vval, vpos : load column-wise (transposed) from it
  kVStb,   // v_stb vval, vpos, rpos, rval : store entries to memory
  kVStbv,  // v_stbv vval, rval : store values only (lengths-vector pass)
  // HiSM SpMV extension (after the companion paper's block multiply-
  // accumulate): positional gather/scatter keyed by the packed block
  // positions that v_ldb produces. Unlike general gather/scatter, these
  // address an s-element window that the hardware banks like the s x s
  // memory, so they stream at the lane rate p instead of 1 element/cycle.
  kVGthC,  // v_gthc vd, off(rs), vpos : vd[i] = mem32[rs + off + 4*col(pos_i)]
  kVScaR,  // v_scar vs, off(rs), vpos : memf32[rs + off + 4*row(pos_i)] += vs[i]
  // Their mirror images, keyed by the other position byte. Together the
  // four give transpose-free products with A^T: the same block stream
  // drives y[col] += value * x[row].
  kVGthR,  // v_gthr vd, off(rs), vpos : vd[i] = mem32[rs + off + 4*row(pos_i)]
  kVScaC,  // v_scac vs, off(rs), vpos : memf32[rs + off + 4*col(pos_i)] += vs[i]
  // General indexed scatter-accumulate: the read-modify-write sibling of
  // v_stx, used by the SpGEMM kernel to merge a scaled B row into a dense
  // accumulator row (C[i, jb] += a * B[k, jb]). Unlike the positional
  // v_scar/v_scac it takes full 32-bit indices, so it pays the indexed
  // vector-memory rate (one element per cycle) like v_ldx/v_stx.
  kVScaX,  // v_scax vs, off(rs), vidx : memf32[rs + off + 4*vidx[i]] += vs[i]
  // Multi-core synchronization (docs/MULTICORE.md). On a MultiCoreSystem a
  // core reaching `barrier` waits until every other live core reaches one;
  // on a standalone Machine it completes immediately.
  kBarrier,  // barrier
  // Atomic fetch-and-add on a 32-bit word, the histogram primitive of the
  // parallel CRS transpose baseline. Atomicity is free in simulation: the
  // system interleaves whole instructions deterministically.
  kAmoAdd,   // amo_add rd, rs2, off(rs1) : rd = mem32[rs1+off]; mem32 += rs2
};

// Number of opcodes; keep in sync with the last enumerator above. Used by
// tooling that iterates the ISA (docs coverage test, trace exporters).
inline constexpr usize kOpCount = static_cast<usize>(Op::kAmoAdd) + 1;

// Whether an opcode executes on the vector side (vector memory, vector ALU,
// or the STM) as opposed to the scalar core. Constexpr so the predecoder
// and the per-opcode handler templates share one classification.
constexpr bool op_is_vector(Op op) {
  switch (op) {
    case Op::kVLd:
    case Op::kVSt:
    case Op::kVLdx:
    case Op::kVStx:
    case Op::kVLds:
    case Op::kVSts:
    case Op::kVAdd:
    case Op::kVSub:
    case Op::kVMul:
    case Op::kVAnd:
    case Op::kVOr:
    case Op::kVXor:
    case Op::kVMin:
    case Op::kVMax:
    case Op::kVAddi:
    case Op::kVAdds:
    case Op::kVBcast:
    case Op::kVBcasti:
    case Op::kVIota:
    case Op::kVSlideUp:
    case Op::kVSlideDown:
    case Op::kVRedSum:
    case Op::kVExtract:
    case Op::kVSeq:
    case Op::kVSeqS:
    case Op::kVFAdd:
    case Op::kVFMul:
    case Op::kVFRedSum:
    case Op::kIcm:
    case Op::kVLdb:
    case Op::kVStcr:
    case Op::kVLdcc:
    case Op::kVStb:
    case Op::kVStbv:
    case Op::kVGthC:
    case Op::kVScaR:
    case Op::kVGthR:
    case Op::kVScaC:
    case Op::kVScaX:
      return true;
    default:
      return false;
  }
}

const char* op_name(Op op);

// Decoded instruction. Register fields a..d are scalar or vector register
// indices depending on the opcode (see the per-op comments above); imm holds
// immediates, scalar-memory offsets, and resolved branch/jump targets
// (instruction indices).
struct Instruction {
  Op op = Op::kNop;
  u8 a = 0;
  u8 b = 0;
  u8 c = 0;
  u8 d = 0;
  i64 imm = 0;
  u32 source_line = 0;
};

// Human-readable rendering for traces and assembler diagnostics.
std::string to_string(const Instruction& inst);

}  // namespace smtu::vsim
