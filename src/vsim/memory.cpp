#include "vsim/memory.hpp"

#include <bit>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu::vsim {

void Memory::attach_base(std::shared_ptr<const std::vector<u8>> base) {
  SMTU_CHECK_MSG(base != nullptr, "attach_base: null snapshot");
  SMTU_CHECK_MSG(base->size() <= limit_, "attach_base: snapshot exceeds the memory limit");
  bytes_.clear();
  base_ = std::move(base);
  refresh_view();
}

void Memory::privatize() {
  if (base_ == nullptr) return;
  bytes_.assign(base_->begin(), base_->end());
  base_.reset();
  refresh_view();
}

void Memory::ensure_slow(Addr addr, u64 len) {
  const u64 end = addr + len;
  SMTU_CHECK_MSG(end >= addr, "address overflow");
  SMTU_CHECK_MSG(end <= limit_, format("memory access at 0x%llx exceeds the %llu-byte limit",
                                       static_cast<unsigned long long>(addr),
                                       static_cast<unsigned long long>(limit_)));
  privatize();
  if (end > bytes_.size()) {
    // Grow geometrically to keep amortized cost low.
    u64 new_size = bytes_.size() == 0 ? 4096 : bytes_.size();
    while (new_size < end) new_size *= 2;
    bytes_.resize(std::min(new_size, limit_), 0);
  }
  refresh_view();
}

void Memory::read_out_of_bounds(Addr addr) const {
  SMTU_CHECK_MSG(false, format("read at 0x%llx beyond allocated memory",
                               static_cast<unsigned long long>(addr)));
  __builtin_unreachable();
}

float Memory::read_f32(Addr addr) const { return std::bit_cast<float>(read_u32(addr)); }

void Memory::write_f32(Addr addr, float value) { write_u32(addr, std::bit_cast<u32>(value)); }

void Memory::write_block(Addr addr, std::span<const u8> data) {
  ensure(addr, data.size());
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

}  // namespace smtu::vsim
