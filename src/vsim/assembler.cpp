#include "vsim/assembler.hpp"

#include <charconv>
#include <map>

#include "support/strings.hpp"

namespace smtu::vsim {
namespace {

// How a mnemonic's operand list is parsed.
enum class Form {
  kNone,        // halt
  kR,           // jr rs
  kRR,          // mv rd, rs
  kRRR,         // add rd, rs1, rs2
  kRRI,         // addi rd, rs, imm
  kRI,          // li rd, imm
  kRRMem,       // amo_add rd, rs2, off(rs1)
  kRMem,        // lw rd, off(rs)
  kBranch,      // beq rs1, rs2, label
  kLabel,       // jal label
  kVMem,        // v_ld vd, off(rs)
  kVMemIdx,     // v_ldx vd, off(rs), vidx
  kVMemStride,  // v_lds vd, off(rs), rstride
  kVVV,         // v_add vd, vs1, vs2
  kVVI,         // v_addi vd, vs, imm
  kVVR,         // v_adds vd, vs, rs
  kVR,          // v_bcast vd, rs
  kVI,          // v_bcasti vd, imm
  kV,           // v_iota vd
  kRV,          // v_redsum rd, vs
  kRVR,         // v_extract rd, vs, rs
  kVV,          // v_stcr vval, vpos
  kVVRR,        // v_ldb vval, vpos, rpos, rval
  kVRr,         // v_stbv vval, rval
};

struct Mnemonic {
  Op op;
  Form form;
};

const std::map<std::string, Mnemonic>& mnemonics() {
  static const std::map<std::string, Mnemonic> table = {
      {"li", {Op::kLi, Form::kRI}},
      {"mv", {Op::kMv, Form::kRR}},
      {"add", {Op::kAdd, Form::kRRR}},
      {"sub", {Op::kSub, Form::kRRR}},
      {"mul", {Op::kMul, Form::kRRR}},
      {"and", {Op::kAnd, Form::kRRR}},
      {"or", {Op::kOr, Form::kRRR}},
      {"xor", {Op::kXor, Form::kRRR}},
      {"sll", {Op::kSll, Form::kRRR}},
      {"srl", {Op::kSrl, Form::kRRR}},
      {"min", {Op::kMin, Form::kRRR}},
      {"max", {Op::kMax, Form::kRRR}},
      {"addi", {Op::kAddi, Form::kRRI}},
      {"muli", {Op::kMuli, Form::kRRI}},
      {"andi", {Op::kAndi, Form::kRRI}},
      {"slli", {Op::kSlli, Form::kRRI}},
      {"srli", {Op::kSrli, Form::kRRI}},
      {"fadd", {Op::kFAdd, Form::kRRR}},
      {"fmul", {Op::kFMul, Form::kRRR}},
      {"lw", {Op::kLw, Form::kRMem}},
      {"sw", {Op::kSw, Form::kRMem}},
      {"lhu", {Op::kLhu, Form::kRMem}},
      {"sh", {Op::kSh, Form::kRMem}},
      {"lbu", {Op::kLbu, Form::kRMem}},
      {"sb", {Op::kSb, Form::kRMem}},
      {"beq", {Op::kBeq, Form::kBranch}},
      {"bne", {Op::kBne, Form::kBranch}},
      {"blt", {Op::kBlt, Form::kBranch}},
      {"bge", {Op::kBge, Form::kBranch}},
      {"jal", {Op::kJal, Form::kLabel}},
      {"call", {Op::kJal, Form::kLabel}},
      {"jr", {Op::kJr, Form::kR}},
      {"halt", {Op::kHalt, Form::kNone}},
      {"nop", {Op::kNop, Form::kNone}},
      {"barrier", {Op::kBarrier, Form::kNone}},
      {"amo_add", {Op::kAmoAdd, Form::kRRMem}},
      {"ssvl", {Op::kSsvl, Form::kR}},
      {"setvl", {Op::kSetvl, Form::kRR}},
      {"v_ld", {Op::kVLd, Form::kVMem}},
      {"v_st", {Op::kVSt, Form::kVMem}},
      {"v_ldx", {Op::kVLdx, Form::kVMemIdx}},
      {"v_ld_idx", {Op::kVLdx, Form::kVMemIdx}},
      {"v_stx", {Op::kVStx, Form::kVMemIdx}},
      {"v_st_idx", {Op::kVStx, Form::kVMemIdx}},
      {"v_lds", {Op::kVLds, Form::kVMemStride}},
      {"v_sts", {Op::kVSts, Form::kVMemStride}},
      {"v_add", {Op::kVAdd, Form::kVVV}},
      {"v_sub", {Op::kVSub, Form::kVVV}},
      {"v_mul", {Op::kVMul, Form::kVVV}},
      {"v_and", {Op::kVAnd, Form::kVVV}},
      {"v_or", {Op::kVOr, Form::kVVV}},
      {"v_xor", {Op::kVXor, Form::kVVV}},
      {"v_min", {Op::kVMin, Form::kVVV}},
      {"v_max", {Op::kVMax, Form::kVVV}},
      {"v_addi", {Op::kVAddi, Form::kVVI}},
      {"v_add_imm", {Op::kVAddi, Form::kVVI}},
      {"v_adds", {Op::kVAdds, Form::kVVR}},
      {"v_bcast", {Op::kVBcast, Form::kVR}},
      {"v_bcasti", {Op::kVBcasti, Form::kVI}},
      {"v_setimm", {Op::kVBcasti, Form::kVI}},
      {"v_iota", {Op::kVIota, Form::kV}},
      {"v_slideup", {Op::kVSlideUp, Form::kVVI}},
      {"v_slidedown", {Op::kVSlideDown, Form::kVVI}},
      {"v_redsum", {Op::kVRedSum, Form::kRV}},
      {"v_extract", {Op::kVExtract, Form::kRVR}},
      {"v_seq", {Op::kVSeq, Form::kVVV}},
      {"v_seqs", {Op::kVSeqS, Form::kVVR}},
      {"v_fadd", {Op::kVFAdd, Form::kVVV}},
      {"v_fmul", {Op::kVFMul, Form::kVVV}},
      {"v_fredsum", {Op::kVFRedSum, Form::kRV}},
      {"icm", {Op::kIcm, Form::kNone}},
      {"v_ldb", {Op::kVLdb, Form::kVVRR}},
      {"v_stcr", {Op::kVStcr, Form::kVV}},
      {"v_ldcc", {Op::kVLdcc, Form::kVV}},
      {"v_stb", {Op::kVStb, Form::kVVRR}},
      {"v_stbv", {Op::kVStbv, Form::kVRr}},
      {"v_gthc", {Op::kVGthC, Form::kVMemIdx}},
      {"v_scar", {Op::kVScaR, Form::kVMemIdx}},
      {"v_gthr", {Op::kVGthR, Form::kVMemIdx}},
      {"v_scac", {Op::kVScaC, Form::kVMemIdx}},
      {"v_scax", {Op::kVScaX, Form::kVMemIdx}},
  };
  return table;
}

struct PendingLabelRef {
  usize instruction_index;
  std::string label;
  usize line;
};

class Parser {
 public:
  explicit Parser(usize line) : line_(line) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw AssemblyError(line_, message);
  }

  u8 scalar_reg(std::string_view token) const {
    const std::string name = to_lower(trim(token));
    if (name == "zero") return 0;
    if (name == "ra") return kRegRa;
    if (name == "sp") return kRegSp;
    if (name.size() >= 2 && name[0] == 'r') {
      if (const auto index = parse_uint(name.substr(1)); index && *index < kNumScalarRegs) {
        return static_cast<u8>(*index);
      }
    }
    fail("expected scalar register, got '" + std::string(token) + "'");
  }

  u8 vector_reg(std::string_view token) const {
    const std::string name = to_lower(trim(token));
    if (name.size() >= 3 && name[0] == 'v' && name[1] == 'r') {
      if (const auto index = parse_uint(name.substr(2)); index && *index < kNumVectorRegs) {
        return static_cast<u8>(*index);
      }
    }
    fail("expected vector register, got '" + std::string(token) + "'");
  }

  i64 immediate(std::string_view token) const {
    const std::string_view text = trim(token);
    // Hex (with optional sign).
    bool negative = false;
    std::string_view body = text;
    if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
      negative = body[0] == '-';
      body = body.substr(1);
    }
    if (starts_with(body, "0x") || starts_with(body, "0X")) {
      u64 value = 0;
      const auto* begin = body.data() + 2;
      const auto* end = body.data() + body.size();
      const auto [ptr, ec] = std::from_chars(begin, end, value, 16);
      if (ec != std::errc{} || ptr != end) fail("bad hex immediate '" + std::string(text) + "'");
      return negative ? -static_cast<i64>(value) : static_cast<i64>(value);
    }
    if (const auto value = parse_int(text)) return *value;
    fail("expected immediate, got '" + std::string(token) + "'");
  }

  // off(rN) with optional offset.
  std::pair<i64, u8> mem_operand(std::string_view token) const {
    const std::string_view text = trim(token);
    const auto open = text.find('(');
    const auto close = text.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
      fail("expected memory operand 'off(rN)', got '" + std::string(token) + "'");
    }
    const std::string_view offset_text = trim(text.substr(0, open));
    const std::string_view reg_text = text.substr(open + 1, close - open - 1);
    const i64 offset = offset_text.empty() ? 0 : immediate(offset_text);
    return {offset, scalar_reg(reg_text)};
  }

 private:
  usize line_;
};

std::vector<std::string_view> split_operands(std::string_view text) {
  std::vector<std::string_view> operands;
  usize depth = 0;
  usize start = 0;
  for (usize i = 0; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    else if (text[i] == ')' && depth > 0) --depth;
    else if (text[i] == ',' && depth == 0) {
      operands.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size() || !operands.empty()) operands.push_back(text.substr(start));
  std::vector<std::string_view> cleaned;
  for (const auto op : operands) {
    const auto trimmed = trim(op);
    if (!trimmed.empty()) cleaned.push_back(trimmed);
  }
  return cleaned;
}

}  // namespace

AssemblyError::AssemblyError(usize line, const std::string& message)
    : std::runtime_error(format("line %zu: %s", line, message.c_str())), line_(line) {}

Program assemble(std::string_view source) {
  Program program;
  std::vector<PendingLabelRef> pending;
  program.source_lines.emplace_back();  // [0] unused; source lines are 1-based

  // The `;; profile: <name>` region currently open, if any.
  bool region_open = false;
  std::string region_name;
  usize region_begin = 0;
  auto close_region = [&]() {
    if (!region_open) return;
    region_open = false;
    const usize end = program.instructions.size();
    if (end > region_begin) program.regions.push_back({region_name, region_begin, end});
  };

  usize line_number = 0;
  for (std::string_view rest = source; !rest.empty() || line_number == 0;) {
    // Carve out one line.
    const auto newline = rest.find('\n');
    std::string_view line =
        newline == std::string_view::npos ? rest : rest.substr(0, newline);
    rest = newline == std::string_view::npos ? std::string_view{} : rest.substr(newline + 1);
    ++line_number;
    program.source_lines.emplace_back(trim(line));

    Parser parser(line_number);

    // Assembler directives start with ';;' and are recognised before comment
    // stripping (the rest of the line may still carry a '#'/'%' comment).
    if (std::string_view trimmed = trim(line); starts_with(trimmed, ";;")) {
      std::string_view body = trimmed.substr(2);
      if (const auto comment = body.find_first_of("#%"); comment != std::string_view::npos) {
        body = body.substr(0, comment);
      }
      body = trim(body);
      if (starts_with(body, "profile:")) {
        const std::string name(trim(body.substr(8)));
        if (name.empty()) parser.fail(";; profile: directive needs a region name");
        close_region();
        if (name != "end") {  // "end" closes the open region without opening one
          region_open = true;
          region_name = name;
          region_begin = program.instructions.size();
        }
        continue;
      }
      parser.fail("unknown ';;' directive '" + std::string(body) + "'");
    }

    // Strip comments ('#' or '%').
    const auto comment = line.find_first_of("#%");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    // Leading labels (possibly several on one line).
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) break;
      // A ':' may only belong to a label prefix (no spaces before it).
      const std::string_view head = trim(line.substr(0, colon));
      if (head.empty() || head.find_first_of(" \t,()") != std::string_view::npos) {
        parser.fail("malformed label");
      }
      if (program.labels.count(std::string(head)) > 0) {
        parser.fail("duplicate label '" + std::string(head) + "'");
      }
      program.labels.emplace(std::string(head), program.instructions.size());
      line = trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    // Mnemonic and operands.
    usize mnemonic_end = 0;
    while (mnemonic_end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[mnemonic_end]))) {
      ++mnemonic_end;
    }
    const std::string mnemonic = to_lower(line.substr(0, mnemonic_end));
    const auto operands = split_operands(trim(line.substr(mnemonic_end)));

    Instruction inst;
    inst.source_line = static_cast<u32>(line_number);

    // ret is jr ra.
    if (mnemonic == "ret") {
      if (!operands.empty()) parser.fail("ret takes no operands");
      inst.op = Op::kJr;
      inst.a = kRegRa;
      program.instructions.push_back(inst);
      continue;
    }

    const auto it = mnemonics().find(mnemonic);
    if (it == mnemonics().end()) parser.fail("unknown mnemonic '" + mnemonic + "'");
    inst.op = it->second.op;

    auto need = [&](usize count) {
      if (operands.size() != count) {
        parser.fail(format("%s expects %zu operands, got %zu", mnemonic.c_str(), count,
                           operands.size()));
      }
    };

    switch (it->second.form) {
      case Form::kNone:
        need(0);
        break;
      case Form::kR:
        need(1);
        inst.a = parser.scalar_reg(operands[0]);
        break;
      case Form::kRR:
        need(2);
        inst.a = parser.scalar_reg(operands[0]);
        inst.b = parser.scalar_reg(operands[1]);
        break;
      case Form::kRRR:
        need(3);
        inst.a = parser.scalar_reg(operands[0]);
        inst.b = parser.scalar_reg(operands[1]);
        inst.c = parser.scalar_reg(operands[2]);
        break;
      case Form::kRRI:
        need(3);
        inst.a = parser.scalar_reg(operands[0]);
        inst.b = parser.scalar_reg(operands[1]);
        inst.imm = parser.immediate(operands[2]);
        break;
      case Form::kRI:
        need(2);
        inst.a = parser.scalar_reg(operands[0]);
        inst.imm = parser.immediate(operands[1]);
        break;
      case Form::kRMem: {
        need(2);
        inst.a = parser.scalar_reg(operands[0]);
        const auto [offset, base] = parser.mem_operand(operands[1]);
        inst.b = base;
        inst.imm = offset;
        break;
      }
      case Form::kRRMem: {
        need(3);
        inst.a = parser.scalar_reg(operands[0]);
        inst.c = parser.scalar_reg(operands[1]);
        const auto [offset, base] = parser.mem_operand(operands[2]);
        inst.b = base;
        inst.imm = offset;
        break;
      }
      case Form::kBranch:
        need(3);
        inst.a = parser.scalar_reg(operands[0]);
        inst.b = parser.scalar_reg(operands[1]);
        pending.push_back({program.instructions.size(), std::string(trim(operands[2])),
                           line_number});
        break;
      case Form::kLabel:
        need(1);
        inst.a = kRegRa;
        pending.push_back({program.instructions.size(), std::string(trim(operands[0])),
                           line_number});
        break;
      case Form::kVMem: {
        need(2);
        inst.a = parser.vector_reg(operands[0]);
        const auto [offset, base] = parser.mem_operand(operands[1]);
        inst.b = base;
        inst.imm = offset;
        break;
      }
      case Form::kVMemIdx: {
        need(3);
        inst.a = parser.vector_reg(operands[0]);
        const auto [offset, base] = parser.mem_operand(operands[1]);
        inst.b = base;
        inst.imm = offset;
        inst.c = parser.vector_reg(operands[2]);
        break;
      }
      case Form::kVMemStride: {
        need(3);
        inst.a = parser.vector_reg(operands[0]);
        const auto [offset, base] = parser.mem_operand(operands[1]);
        inst.b = base;
        inst.imm = offset;
        inst.c = parser.scalar_reg(operands[2]);
        break;
      }
      case Form::kVVV:
        need(3);
        inst.a = parser.vector_reg(operands[0]);
        inst.b = parser.vector_reg(operands[1]);
        inst.c = parser.vector_reg(operands[2]);
        break;
      case Form::kVVI:
        need(3);
        inst.a = parser.vector_reg(operands[0]);
        inst.b = parser.vector_reg(operands[1]);
        inst.imm = parser.immediate(operands[2]);
        break;
      case Form::kVVR:
        need(3);
        inst.a = parser.vector_reg(operands[0]);
        inst.b = parser.vector_reg(operands[1]);
        inst.c = parser.scalar_reg(operands[2]);
        break;
      case Form::kVR:
        need(2);
        inst.a = parser.vector_reg(operands[0]);
        inst.b = parser.scalar_reg(operands[1]);
        break;
      case Form::kVI:
        need(2);
        inst.a = parser.vector_reg(operands[0]);
        inst.imm = parser.immediate(operands[1]);
        break;
      case Form::kV:
        need(1);
        inst.a = parser.vector_reg(operands[0]);
        break;
      case Form::kRV:
        need(2);
        inst.a = parser.scalar_reg(operands[0]);
        inst.b = parser.vector_reg(operands[1]);
        break;
      case Form::kRVR:
        need(3);
        inst.a = parser.scalar_reg(operands[0]);
        inst.b = parser.vector_reg(operands[1]);
        inst.c = parser.scalar_reg(operands[2]);
        break;
      case Form::kVV:
        need(2);
        inst.a = parser.vector_reg(operands[0]);
        inst.b = parser.vector_reg(operands[1]);
        break;
      case Form::kVVRR:
        need(4);
        inst.a = parser.vector_reg(operands[0]);
        inst.b = parser.vector_reg(operands[1]);
        inst.c = parser.scalar_reg(operands[2]);
        inst.d = parser.scalar_reg(operands[3]);
        break;
      case Form::kVRr:
        need(2);
        inst.a = parser.vector_reg(operands[0]);
        inst.b = parser.scalar_reg(operands[1]);
        break;
    }
    program.instructions.push_back(inst);
  }

  close_region();

  // Pass 2: resolve label references.
  for (const PendingLabelRef& ref : pending) {
    const auto it = program.labels.find(ref.label);
    if (it == program.labels.end()) {
      throw AssemblyError(ref.line, "undefined label '" + ref.label + "'");
    }
    program.instructions[ref.instruction_index].imm = static_cast<i64>(it->second);
  }
  program.predecode();
  return program;
}

}  // namespace smtu::vsim
