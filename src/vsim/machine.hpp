// The simulated vector processor.
//
// Execution is functional (architecturally exact, instruction by
// instruction); cycle counts come from a resource-time model layered on top,
// the standard way to model Cray-style register-vector machines:
//
//  * The scalar core issues in order, up to `scalar_issue_width` per cycle,
//    waiting until source operands are ready (scoreboarded in-order pipe)
//    and paying `branch_penalty` on taken control flow.
//  * Each vector instruction occupies one functional unit (vector memory
//    pipe, vector ALU, or the STM) from its start until its last result.
//    A unit delivers its first element `startup` cycles after start and then
//    streams at the unit's rate.
//  * With chaining enabled, a dependent vector instruction may start as soon
//    as its producers deliver their first element; its completion is bounded
//    below by the producers' completion (it cannot outrun its inputs).
//    Without chaining it waits for producers to complete.
//  * Hazards on vector registers are respected: write-after-read waits for
//    the last reader, write-after-write for the previous writer.
//
// The STM instructions' durations are not closed-form: the machine feeds the
// actual element stream through the cycle-accurate stm::StmUnit, so buffer
// bandwidth B, accessible lines L, and the block's sparsity pattern all
// shape the timing exactly as in §IV-C of the paper.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "stm/unit.hpp"
#include "vsim/config.hpp"
#include "vsim/memory.hpp"
#include "vsim/program.hpp"
#include "vsim/trace.hpp"

namespace smtu::vsim {

class PerfCounters;

struct RunStats {
  Cycle cycles = 0;
  u64 instructions = 0;
  u64 scalar_instructions = 0;
  u64 vector_instructions = 0;
  u64 vector_elements = 0;       // elements processed by vector instructions
  u64 mem_contiguous_bytes = 0;  // vector memory traffic, streaming
  u64 mem_indexed_elements = 0;  // vector memory traffic, gather/scatter
  u64 stm_blocks = 0;
  u64 stm_write_cycles = 0;
  u64 stm_read_cycles = 0;
  u64 stm_elements = 0;
  // Per-unit occupancy (cycles each functional unit was reserved), for
  // bottleneck analysis: vector memory pipe, vector ALU, STM.
  u64 vmem_busy_cycles = 0;
  u64 valu_busy_cycles = 0;
  u64 stm_busy_cycles = 0;
};

// Human-readable multi-line digest (cycles, instruction mix, unit
// utilization percentages).
std::string run_stats_summary(const RunStats& stats);

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  StmUnit& stm_unit() { return stm_; }

  u64 sreg(u32 index) const;
  void set_sreg(u32 index, u64 value);
  const std::vector<u32>& vreg(u32 index) const;
  u32 vl() const { return vl_; }

  // Prints executed instructions (at most `max_lines`) to stderr.
  void enable_trace(u64 max_lines);

  // Records structured timing events into `trace` during run() (nullptr
  // detaches). The trace is not cleared automatically.
  void attach_trace(ExecutionTrace* trace) { trace_sink_ = trace; }

  // Attaches a cycle-attribution profiler (nullptr detaches). run() calls
  // begin_run()/record()/end_run() on it; counters accumulate across runs
  // of the same program until PerfCounters::reset().
  void attach_profiler(PerfCounters* profiler) { profiler_ = profiler; }

  // Executes from `entry_pc` until halt; aborts on runaway programs.
  // Timing state and statistics are reset per run; memory and registers
  // persist so the host can stage inputs and read back outputs.
  RunStats run(const Program& program, usize entry_pc = 0);

 private:
  enum Unit : u32 { kUnitVMem = 0, kUnitVAlu = 1, kUnitStm = 2, kUnitCount = 3 };

  struct VregTiming {
    Cycle first = 0;         // first element available
    Cycle last = 0;          // last element available
    Cycle readers_done = 0;  // latest cycle any consumer still reads it
  };

  // Issue bookkeeping.
  Cycle take_issue_slot(Cycle earliest);
  Cycle take_scalar_mem_slot(Cycle earliest);
  void retire_scalar(u32 dest, Cycle ready);
  void bump_watermark(Cycle cycle) { watermark_ = std::max(watermark_, cycle); }

  // Executes one vector instruction functionally and returns its duration in
  // cycles at full streaming rate (excluding startup).
  u32 execute_vector(const Instruction& inst);

  MachineConfig config_;
  Memory memory_;
  StmUnit stm_;

  // Architectural state.
  std::array<u64, kNumScalarRegs> sregs_{};
  std::vector<std::vector<u32>> vregs_;
  u32 vl_ = 0;

  // Timing state (reset per run).
  std::array<Cycle, kNumScalarRegs> sreg_ready_{};
  std::vector<VregTiming> vreg_time_;
  std::array<Cycle, kUnitCount> unit_free_{};
  Cycle vl_ready_ = 0;
  Cycle last_issue_ = 0;
  Cycle pc_redirect_ = 0;
  Cycle watermark_ = 0;
  Cycle issue_cycle_ = 0;
  u32 issue_used_ = 0;
  Cycle scalar_mem_cycle_ = 0;
  u32 scalar_mem_used_ = 0;
  // STM phase ordering, tracked per bank: a bank's drain cannot start
  // before its fill completed, and icm cannot clear a bank whose drain is
  // still in flight. Single-buffer mode only uses index 0.
  Cycle stm_fill_done_[2] = {0, 0};
  Cycle stm_drain_done_[2] = {0, 0};
  Cycle stm_drain_free_ = 0;
  // Whether the vector memory pipe's current occupant is an indexed
  // (1 element/cycle) access — distinguishes "waiting behind a slow
  // gather/scatter" from plain port contention in the stall taxonomy.
  bool vmem_last_indexed_ = false;

  RunStats stats_;
  u64 trace_remaining_ = 0;
  ExecutionTrace* trace_sink_ = nullptr;
  PerfCounters* profiler_ = nullptr;

  // Reused per-instruction buffers for vector slides and STM batches, so
  // the interpreter's hot loop performs no heap allocation after warm-up.
  // (A Machine is single-threaded state; run one per thread.)
  std::vector<u32> slide_scratch_;
  std::vector<StmEntry> stm_batch_scratch_;
};

}  // namespace smtu::vsim
