// The simulated vector processor.
//
// Execution is functional (architecturally exact, instruction by
// instruction); cycle counts come from a resource-time model layered on top,
// the standard way to model Cray-style register-vector machines:
//
//  * The scalar core issues in order, up to `scalar_issue_width` per cycle,
//    waiting until source operands are ready (scoreboarded in-order pipe)
//    and paying `branch_penalty` on taken control flow.
//  * Each vector instruction occupies one functional unit (vector memory
//    pipe, vector ALU, or the STM) from its start until its last result.
//    A unit delivers its first element `startup` cycles after start and then
//    streams at the unit's rate.
//  * With chaining enabled, a dependent vector instruction may start as soon
//    as its producers deliver their first element; its completion is bounded
//    below by the producers' completion (it cannot outrun its inputs).
//    Without chaining it waits for producers to complete.
//  * Hazards on vector registers are respected: write-after-read waits for
//    the last reader, write-after-write for the previous writer.
//
// The STM instructions' durations are not closed-form: the machine feeds the
// actual element stream through the cycle-accurate stm::StmUnit, so buffer
// bandwidth B, accessible lines L, and the block's sparsity pattern all
// shape the timing exactly as in §IV-C of the paper.
//
// A Machine is either *owning* (the classic single-core setup: it owns its
// Memory and StmUnit) or a *core* inside a MultiCoreSystem, borrowing the
// shared MemorySystem plus a per-core StmUnit through a CoreContext (see
// system.hpp and docs/MULTICORE.md). Both run the identical timing model;
// the only multi-core additions are bank-contention pushback on vector
// memory accesses and the `barrier` rendezvous.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "stm/unit.hpp"
#include "vsim/config.hpp"
#include "vsim/memory.hpp"
#include "vsim/memory_system.hpp"
#include "vsim/profiler.hpp"
#include "vsim/program.hpp"
#include "vsim/trace.hpp"

namespace smtu::vsim {

struct RunStats {
  Cycle cycles = 0;
  u64 instructions = 0;
  u64 scalar_instructions = 0;
  u64 vector_instructions = 0;
  u64 vector_elements = 0;       // elements processed by vector instructions
  u64 mem_contiguous_bytes = 0;  // vector memory traffic, streaming
  u64 mem_indexed_elements = 0;  // vector memory traffic, gather/scatter
  u64 stm_blocks = 0;
  u64 stm_write_cycles = 0;
  u64 stm_read_cycles = 0;
  u64 stm_elements = 0;
  // Per-unit occupancy (cycles each functional unit was reserved), for
  // bottleneck analysis: vector memory pipe, vector ALU, STM.
  u64 vmem_busy_cycles = 0;
  u64 valu_busy_cycles = 0;
  u64 stm_busy_cycles = 0;
};

// Human-readable multi-line digest (cycles, instruction mix, unit
// utilization percentages).
std::string run_stats_summary(const RunStats& stats);

// How a core may borrow its environment instead of owning it. All pointers
// must outlive the Machine; `memory` is required, the rest optional. Each
// core always builds its own private STM (one s x s memory per core).
struct CoreContext {
  Memory* memory = nullptr;
  MemorySystem* memory_system = nullptr;  // bank timing; null = untimed
  PerfCounters* profiler = nullptr;
  ExecutionTrace* trace = nullptr;
  u32 core_id = 0;
};

// Result of executing one instruction in step mode.
enum class StepStatus : u8 {
  kRunning,    // instruction executed, more to come
  kAtBarrier,  // stopped at a `barrier`; call release_barrier() to resume
  kHalted,     // executed `halt`
};

class Machine {
 public:
  // Owning single-core machine (the classic setup).
  explicit Machine(const MachineConfig& config);
  // Core borrowing shared state; see CoreContext.
  Machine(const MachineConfig& config, const CoreContext& context);

  const MachineConfig& config() const { return config_; }
  Memory& memory() { return *memory_; }
  const Memory& memory() const { return *memory_; }
  StmUnit& stm_unit() { return *stm_; }
  u32 core_id() const { return core_id_; }

  u64 sreg(u32 index) const;
  void set_sreg(u32 index, u64 value);
  const std::vector<u32>& vreg(u32 index) const;
  u32 vl() const { return vl_; }

  // Prints executed instructions (at most `max_lines`) to stderr.
  void enable_trace(u64 max_lines);

  // Records structured timing events into `trace` during run() (nullptr
  // detaches). The trace is not cleared automatically.
  void attach_trace(ExecutionTrace* trace) { trace_sink_ = trace; }

  // Attaches a cycle-attribution profiler (nullptr detaches). run() calls
  // begin_run()/record()/end_run() on it; counters accumulate across runs
  // of the same program until PerfCounters::reset().
  void attach_profiler(PerfCounters* profiler) { profiler_ = profiler; }

  // Executes from `entry_pc` until halt; aborts on runaway programs.
  // Timing state and statistics are reset per run; memory and registers
  // persist so the host can stage inputs and read back outputs.
  // Equivalent to begin_run() + step() to completion + finish_run(), with
  // any `barrier` released immediately (a lone core never waits).
  RunStats run(const Program& program, usize entry_pc = 0);

  // ---- Step-mode interface (MultiCoreSystem scheduling) -------------------
  // Resets timing state and statistics for a new run of `program`.
  void begin_run(const Program& program, usize entry_pc = 0);
  // Executes exactly one instruction of the current run.
  StepStatus step();
  StepStatus status() const { return status_; }
  // Closes out the run (stats, STM deltas, profiler end_run). Only valid
  // once step() returned kHalted.
  RunStats finish_run();

  // While kAtBarrier: the cycle this core arrived (all its issued work
  // complete). release_barrier(t) resumes it at cycle t >= arrival.
  Cycle barrier_arrival() const { return barrier_arrival_; }
  void release_barrier(Cycle release);

  // Earliest cycle the next instruction could issue — the system scheduler
  // steps the core with the smallest horizon to keep simulated time
  // coherent across cores sharing the banked memory.
  Cycle issue_horizon() const { return std::max(pc_redirect_, last_issue_); }

 private:
  enum Unit : u32 { kUnitVMem = 0, kUnitVAlu = 1, kUnitStm = 2, kUnitCount = 3 };

  struct VregTiming {
    Cycle first = 0;         // first element available
    Cycle last = 0;          // last element available
    Cycle readers_done = 0;  // latest cycle any consumer still reads it
  };

  // Issue bookkeeping.
  Cycle take_issue_slot(Cycle earliest);
  Cycle take_scalar_mem_slot(Cycle earliest);
  void retire_scalar(u32 dest, Cycle ready);
  void bump_watermark(Cycle cycle) { watermark_ = std::max(watermark_, cycle); }

  // Executes one vector instruction functionally and returns its duration in
  // cycles at full streaming rate (excluding startup).
  u32 execute_vector(const Instruction& inst);

  // Main-memory footprint of a vector memory instruction (primary base
  // address + total bytes moved), for bank arbitration.
  void vmem_footprint(const Instruction& inst, Addr* addr, u64* bytes) const;

  MachineConfig config_;
  // Owning mode keeps its memory/STM here; core mode leaves these null.
  std::unique_ptr<Memory> owned_memory_;
  std::unique_ptr<StmUnit> owned_stm_;
  Memory* memory_ = nullptr;
  StmUnit* stm_ = nullptr;
  MemorySystem* memory_system_ = nullptr;
  u32 core_id_ = 0;

  // Architectural state.
  std::array<u64, kNumScalarRegs> sregs_{};
  std::vector<std::vector<u32>> vregs_;
  u32 vl_ = 0;

  // Timing state (reset per run).
  std::array<Cycle, kNumScalarRegs> sreg_ready_{};
  std::vector<VregTiming> vreg_time_;
  std::array<Cycle, kUnitCount> unit_free_{};
  Cycle vl_ready_ = 0;
  Cycle last_issue_ = 0;
  Cycle pc_redirect_ = 0;
  Cycle watermark_ = 0;
  Cycle issue_cycle_ = 0;
  u32 issue_used_ = 0;
  Cycle scalar_mem_cycle_ = 0;
  u32 scalar_mem_used_ = 0;
  // STM phase ordering, tracked per bank: a bank's drain cannot start
  // before its fill completed, and icm cannot clear a bank whose drain is
  // still in flight. Single-buffer mode only uses index 0.
  Cycle stm_fill_done_[2] = {0, 0};
  Cycle stm_drain_done_[2] = {0, 0};
  Cycle stm_drain_free_ = 0;
  // Whether the vector memory pipe's current occupant is an indexed
  // (1 element/cycle) access — distinguishes "waiting behind a slow
  // gather/scatter" from plain port contention in the stall taxonomy.
  bool vmem_last_indexed_ = false;

  // Step-mode run state (valid between begin_run and finish_run).
  const Program* program_ = nullptr;
  std::vector<DecodedInst> local_decode_;
  const DecodedInst* decoded_ = nullptr;
  std::array<u32, kStartupKindCount> startup_by_kind_{};
  usize pc_ = 0;
  StepStatus status_ = StepStatus::kHalted;
  StmUnit::Stats stm_before_;
  // Pending-barrier bookkeeping (valid while status_ == kAtBarrier): the
  // profiler/trace sample is deferred to release_barrier(), where the
  // barrier's true cost is known.
  Cycle barrier_arrival_ = 0;
  Cycle barrier_issue_ = 0;
  Cycle barrier_unblocked_ = 0;
  Cycle barrier_w_before_ = 0;
  usize barrier_pc_ = 0;
  StallReason barrier_why_ = StallReason::kScalarFetch;

  RunStats stats_;
  u64 trace_remaining_ = 0;
  ExecutionTrace* trace_sink_ = nullptr;
  PerfCounters* profiler_ = nullptr;

  // Reused per-instruction buffers for vector slides and STM batches, so
  // the interpreter's hot loop performs no heap allocation after warm-up.
  // (A Machine is single-threaded state; run one per thread.)
  std::vector<u32> slide_scratch_;
  std::vector<StmEntry> stm_batch_scratch_;
};

}  // namespace smtu::vsim
