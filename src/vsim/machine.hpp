// The simulated vector processor.
//
// Execution is functional (architecturally exact, instruction by
// instruction); cycle counts come from a resource-time model layered on top,
// the standard way to model Cray-style register-vector machines:
//
//  * The scalar core issues in order, up to `scalar_issue_width` per cycle,
//    waiting until source operands are ready (scoreboarded in-order pipe)
//    and paying `branch_penalty` on taken control flow.
//  * Each vector instruction occupies one functional unit (vector memory
//    pipe, vector ALU, or the STM) from its start until its last result.
//    A unit delivers its first element `startup` cycles after start and then
//    streams at the unit's rate.
//  * With chaining enabled, a dependent vector instruction may start as soon
//    as its producers deliver their first element; its completion is bounded
//    below by the producers' completion (it cannot outrun its inputs).
//    Without chaining it waits for producers to complete.
//  * Hazards on vector registers are respected: write-after-read waits for
//    the last reader, write-after-write for the previous writer.
//
// The STM instructions' durations are not closed-form: the machine feeds the
// actual element stream through the cycle-accurate stm::StmUnit, so buffer
// bandwidth B, accessible lines L, and the block's sparsity pattern all
// shape the timing exactly as in §IV-C of the paper.
//
// A Machine is either *owning* (the classic single-core setup: it owns its
// Memory and StmUnit) or a *core* inside a MultiCoreSystem, borrowing the
// shared MemorySystem plus a per-core StmUnit through a CoreContext (see
// system.hpp and docs/MULTICORE.md). Both run the identical timing model;
// the only multi-core additions are bank-contention pushback on vector
// memory accesses and the `barrier` rendezvous.
//
// Dispatch is threaded-code style (HACKING.md "Interpreter internals"):
// every predecoded instruction carries a per-opcode handler pointer bound
// at assembly time, and all hot interpreter state lives in one SoA
// ExecState the handlers receive directly. The legacy switch interpreter
// is retained behind DispatchMode::kSwitch (env SMTU_DISPATCH=switch) as
// the bit-identical reference for differential testing
// (tests/test_dispatch.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stm/unit.hpp"
#include "support/assert.hpp"
#include "vsim/config.hpp"
#include "vsim/memory.hpp"
#include "vsim/memory_system.hpp"
#include "vsim/profiler.hpp"
#include "vsim/program.hpp"
#include "vsim/trace.hpp"

namespace smtu::vsim {

// How the interpreter dispatches opcodes: pre-bound per-opcode handler
// pointers (the fast default), or the legacy `switch (inst.op)` reference
// path kept for differential testing. Both produce bit-identical cycle
// counts, stats, profiles, and memory images.
enum class DispatchMode : u8 { kThreaded = 0, kSwitch = 1 };

// Process-wide default captured by each Machine at construction. The
// initial value comes from the SMTU_DISPATCH environment variable
// ("threaded" or "switch", read once); set_default_dispatch_mode overrides
// it programmatically (tests flipping modes between runs).
DispatchMode default_dispatch_mode();
void set_default_dispatch_mode(DispatchMode mode);
const char* dispatch_mode_name(DispatchMode mode);

struct RunStats {
  Cycle cycles = 0;
  u64 instructions = 0;
  u64 scalar_instructions = 0;
  u64 vector_instructions = 0;
  u64 vector_elements = 0;       // elements processed by vector instructions
  u64 mem_contiguous_bytes = 0;  // vector memory traffic, streaming
  u64 mem_indexed_elements = 0;  // vector memory traffic, gather/scatter
  u64 stm_blocks = 0;
  u64 stm_write_cycles = 0;
  u64 stm_read_cycles = 0;
  u64 stm_elements = 0;
  // Per-unit occupancy (cycles each functional unit was reserved), for
  // bottleneck analysis: vector memory pipe, vector ALU, STM.
  u64 vmem_busy_cycles = 0;
  u64 valu_busy_cycles = 0;
  u64 stm_busy_cycles = 0;
};

// Human-readable multi-line digest (cycles, instruction mix, unit
// utilization percentages).
std::string run_stats_summary(const RunStats& stats);

// How a core may borrow its environment instead of owning it. All pointers
// must outlive the Machine; `memory` is required, the rest optional. Each
// core always builds its own private STM (one s x s memory per core).
struct CoreContext {
  Memory* memory = nullptr;
  MemorySystem* memory_system = nullptr;  // bank timing; null = untimed
  PerfCounters* profiler = nullptr;
  ExecutionTrace* trace = nullptr;
  u32 core_id = 0;
};

// Result of executing one instruction in step mode.
enum class StepStatus : u8 {
  kRunning,    // instruction executed, more to come
  kAtBarrier,  // stopped at a `barrier`; call release_barrier() to resume
  kHalted,     // executed `halt`
};

// Everything the interpreter's hot loop touches, gathered into one
// cache-friendly structure-of-arrays block that every opcode handler
// receives as its single context argument. Parallel arrays replace the
// old array-of-structs register timing; the vector register file is one
// contiguous kNumVectorRegs x section block. The Machine owns exactly one
// ExecState and exposes the architectural pieces through its accessors —
// treat this as the interpreter's internals, not public API.
struct ExecState {
  // ---- Architectural state (persists across runs) -------------------------
  std::array<u64, kNumScalarRegs> sregs{};
  u32 vl = 0;
  u32 section = 0;          // row stride of vreg_data
  std::vector<u32> vreg_data;  // kNumVectorRegs rows of `section` lanes

  // ---- Timing state (reset per run), SoA ----------------------------------
  std::array<Cycle, kNumScalarRegs> sreg_ready{};
  std::array<Cycle, kNumVectorRegs> vreg_first{};         // first element available
  std::array<Cycle, kNumVectorRegs> vreg_last{};          // last element available
  std::array<Cycle, kNumVectorRegs> vreg_readers_done{};  // latest consumer read
  std::array<Cycle, 3> unit_free{};                       // indexed by ExecUnit
  Cycle vl_ready = 0;
  Cycle last_issue = 0;
  Cycle pc_redirect = 0;
  Cycle watermark = 0;
  Cycle issue_cycle = 0;
  u32 issue_used = 0;
  Cycle scalar_mem_cycle = 0;
  u32 scalar_mem_used = 0;
  // STM phase ordering, tracked per bank: a bank's drain cannot start
  // before its fill completed, and icm cannot clear a bank whose drain is
  // still in flight. Single-buffer mode only uses index 0.
  Cycle stm_fill_done[2] = {0, 0};
  Cycle stm_drain_done[2] = {0, 0};
  Cycle stm_drain_free = 0;
  // Whether the vector memory pipe's current occupant is an indexed
  // (1 element/cycle) access — distinguishes "waiting behind a slow
  // gather/scatter" from plain port contention in the stall taxonomy.
  bool vmem_last_indexed = false;

  // ---- Current run (valid between begin_run and finish_run) ---------------
  const Instruction* insts = nullptr;
  const DecodedInst* decoded = nullptr;
  usize program_size = 0;
  usize pc = 0;
  StepStatus status = StepStatus::kHalted;
  RunStats stats;
  // Startup latencies by StartupKind, resolved from the config once per run.
  std::array<u32, kStartupKindCount> startup_by_kind{};

  // Pending-barrier bookkeeping (valid while status == kAtBarrier): the
  // profiler/trace sample is deferred to release_barrier(), where the
  // barrier's true cost is known.
  Cycle barrier_arrival = 0;
  Cycle barrier_issue = 0;
  Cycle barrier_unblocked = 0;
  Cycle barrier_w_before = 0;
  usize barrier_pc = 0;
  StallReason barrier_why = StallReason::kScalarFetch;

  // ---- Environment (borrowed; the Machine manages ownership) --------------
  Memory* memory = nullptr;
  StmUnit* stm = nullptr;
  MemorySystem* memory_system = nullptr;
  PerfCounters* profiler = nullptr;
  ExecutionTrace* trace_sink = nullptr;
  u64 trace_remaining = 0;
  u32 core_id = 0;

  // ---- Config scalars (copied from MachineConfig at construction) ---------
  u32 lanes = 1;
  u32 scalar_issue_width = 1;
  u32 scalar_mem_ports = 1;
  u32 mem_bytes_per_cycle = 1;
  u32 mem_indexed_elems_per_cycle = 1;
  u32 scalar_op_latency = 1;
  u32 scalar_load_latency = 1;
  u32 mul_latency = 1;
  u32 branch_penalty = 0;
  bool chaining = true;
  bool mem_pipelined_startup = true;
  bool stm_double = false;
  u64 max_instructions = 0;

  // Reused per-instruction buffers for vector slides and STM batches, so
  // the interpreter's hot loop performs no heap allocation after warm-up.
  // (An ExecState is single-threaded state; run one Machine per thread.)
  std::vector<u32> slide_scratch;
  std::vector<StmEntry> stm_batch_scratch;

  u32* vreg_row(u32 index) {
    return vreg_data.data() + static_cast<usize>(index) * section;
  }
  const u32* vreg_row(u32 index) const {
    return vreg_data.data() + static_cast<usize>(index) * section;
  }
  u64 sreg(u32 index) const {
    SMTU_CHECK(index < kNumScalarRegs);
    return index == kRegZero ? 0 : sregs[index];
  }
  void set_sreg(u32 index, u64 value) {
    SMTU_CHECK(index < kNumScalarRegs);
    if (index != kRegZero) sregs[index] = value;
  }
  void bump_watermark(Cycle cycle) { watermark = std::max(watermark, cycle); }

  // Issue bookkeeping shared by both dispatch paths.
  Cycle take_issue_slot(Cycle earliest) {
    if (earliest > issue_cycle) {
      issue_cycle = earliest;
      issue_used = 0;
    }
    if (issue_used >= scalar_issue_width) {
      ++issue_cycle;
      issue_used = 0;
    }
    ++issue_used;
    return issue_cycle;
  }
  Cycle take_scalar_mem_slot(Cycle earliest) {
    if (earliest > scalar_mem_cycle) {
      scalar_mem_cycle = earliest;
      scalar_mem_used = 0;
    }
    if (scalar_mem_used >= scalar_mem_ports) {
      ++scalar_mem_cycle;
      scalar_mem_used = 0;
    }
    ++scalar_mem_used;
    return scalar_mem_cycle;
  }
  void retire_scalar(u32 dest, Cycle ready) {
    if (dest != kRegZero) sreg_ready[dest] = std::max(sreg_ready[dest], ready);
    bump_watermark(ready);
  }
};

class Machine {
 public:
  // Owning single-core machine (the classic setup).
  explicit Machine(const MachineConfig& config);
  // Core borrowing shared state; see CoreContext.
  Machine(const MachineConfig& config, const CoreContext& context);

  const MachineConfig& config() const { return config_; }
  Memory& memory() { return *es_.memory; }
  const Memory& memory() const { return *es_.memory; }
  StmUnit& stm_unit() { return *es_.stm; }
  u32 core_id() const { return es_.core_id; }

  // Dispatch mode, captured from default_dispatch_mode() at construction.
  DispatchMode dispatch() const { return dispatch_; }
  void set_dispatch(DispatchMode mode) { dispatch_ = mode; }

  u64 sreg(u32 index) const { return es_.sreg(index); }
  void set_sreg(u32 index, u64 value) { es_.set_sreg(index, value); }
  std::span<const u32> vreg(u32 index) const;
  u32 vl() const { return es_.vl; }

  // Prints executed instructions (at most `max_lines`) to stderr.
  void enable_trace(u64 max_lines) { es_.trace_remaining = max_lines; }

  // Records structured timing events into `trace` during run() (nullptr
  // detaches). The trace is not cleared automatically.
  void attach_trace(ExecutionTrace* trace) { es_.trace_sink = trace; }

  // Attaches a cycle-attribution profiler (nullptr detaches). run() calls
  // begin_run()/record()/end_run() on it; counters accumulate across runs
  // of the same program until PerfCounters::reset().
  void attach_profiler(PerfCounters* profiler) { es_.profiler = profiler; }

  // Executes from `entry_pc` until halt; aborts on runaway programs.
  // Timing state and statistics are reset per run; memory and registers
  // persist so the host can stage inputs and read back outputs.
  // Equivalent to begin_run() + step() to completion + finish_run(), with
  // any `barrier` released immediately (a lone core never waits).
  RunStats run(const Program& program, usize entry_pc = 0);

  // ---- Step-mode interface (MultiCoreSystem scheduling) -------------------
  // Resets timing state and statistics for a new run of `program`.
  void begin_run(const Program& program, usize entry_pc = 0);
  // Executes exactly one instruction of the current run.
  StepStatus step();
  StepStatus status() const { return es_.status; }
  // Closes out the run (stats, STM deltas, profiler end_run). Only valid
  // once step() returned kHalted.
  RunStats finish_run();

  // While kAtBarrier: the cycle this core arrived (all its issued work
  // complete). release_barrier(t) resumes it at cycle t >= arrival.
  Cycle barrier_arrival() const { return es_.barrier_arrival; }
  void release_barrier(Cycle release);

  // Earliest cycle the next instruction could issue — the system scheduler
  // steps the core with the smallest horizon to keep simulated time
  // coherent across cores sharing the banked memory.
  Cycle issue_horizon() const { return std::max(es_.pc_redirect, es_.last_issue); }

 private:
  // The legacy switch-dispatch interpreter (differential reference).
  StepStatus step_switch();
  // Executes one vector instruction functionally (reference per-element
  // implementation) and returns its duration in cycles at full streaming
  // rate (excluding startup). Used only by step_switch().
  u32 execute_vector(const Instruction& inst);
  // Main-memory footprint of a vector memory instruction (primary base
  // address + total bytes moved), for bank arbitration.
  void vmem_footprint(const Instruction& inst, Addr* addr, u64* bytes) const;

  void init_exec_state();

  MachineConfig config_;
  // Owning mode keeps its memory/STM here; core mode leaves these null.
  std::unique_ptr<Memory> owned_memory_;
  std::unique_ptr<StmUnit> owned_stm_;
  DispatchMode dispatch_ = DispatchMode::kThreaded;

  // Step-mode run state (valid between begin_run and finish_run).
  const Program* program_ = nullptr;
  std::vector<DecodedInst> local_decode_;
  StmUnit::Stats stm_before_;

  ExecState es_;
};

}  // namespace smtu::vsim
