// Machine parameters. Defaults reproduce §IV-A of the paper:
//   * section size s = 64,
//   * functional-unit parallelism p = 4 elements/cycle,
//   * memory: 20-cycle startup, 4 x 32-bit words per cycle for contiguous
//     accesses, 1 word per cycle for indexed accesses
//     (64-word contiguous load = 20 + 64/4 = 36 cycles; indexed = 84),
//   * vector chaining enabled,
//   * a 4-way issue scalar core (the baseline that runs the non-vectorized
//     phase of the CRS transposition).
#pragma once

#include "stm/unit.hpp"
#include "support/types.hpp"

namespace smtu::vsim {

struct MachineConfig {
  // Vector architecture.
  u32 section = 64;               // s: vector register length
  u32 lanes = 4;                  // p: elements/cycle of the vector ALU
  bool chaining = true;           // forward results between dependent FUs
  u32 valu_startup = 2;           // vector ALU pipeline depth

  // Vector memory unit.
  u32 mem_startup = 20;           // cycles to first element
  u32 mem_bytes_per_cycle = 16;   // contiguous bandwidth (4 x 32-bit words)
  u32 mem_indexed_elems_per_cycle = 1;
  // The startup is pipeline *latency*: a following memory instruction may
  // start streaming as soon as the previous one's transfer slots drain
  // (dependent consumers still wait the full latency for data). Turning
  // this off makes every access pay the startup exclusively, as on a
  // non-pipelined memory port.
  bool mem_pipelined_startup = true;

  // Scalar core. The scalar side issues in order, up to `scalar_issue_width`
  // instructions per cycle, stalling until source operands are ready (a
  // scoreboarded in-order pipe). Scalar loads model a short cache-hit path
  // rather than the vector unit's 20-cycle stream startup.
  u32 scalar_issue_width = 4;
  u32 scalar_mem_ports = 2;
  u32 scalar_load_latency = 8;
  u32 scalar_op_latency = 1;
  u32 mul_latency = 3;
  u32 branch_penalty = 2;         // redirect bubble after a taken branch

  // STM functional unit (section is forced to match `section`).
  StmConfig stm;

  u64 memory_limit = u64{1} << 30;

  // Safety valve for runaway programs.
  u64 max_instructions = u64{4} << 30;
};

}  // namespace smtu::vsim
