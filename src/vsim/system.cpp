#include "vsim/system.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace smtu::vsim {

MultiCoreSystem::MultiCoreSystem(const SystemConfig& config) : config_(config) {
  SMTU_CHECK_MSG(config_.cores >= 1, "a system needs at least one core");
  config_.memory.memory_limit = config_.core.memory_limit;
  memsys_ = std::make_unique<MemorySystem>(config_.memory);
  cores_.reserve(config_.cores);
  for (u32 i = 0; i < config_.cores; ++i) {
    CoreContext context;
    context.memory = &memsys_->memory();
    context.memory_system = memsys_.get();
    context.core_id = i;
    cores_.push_back(std::make_unique<Machine>(config_.core, context));
  }
}

Machine& MultiCoreSystem::core(u32 index) {
  SMTU_CHECK(index < cores_.size());
  return *cores_[index];
}

void MultiCoreSystem::attach_profiler(u32 core, PerfCounters* profiler) {
  SMTU_CHECK(core < cores_.size());
  cores_[core]->attach_profiler(profiler);
}

void MultiCoreSystem::attach_trace(ExecutionTrace* trace) {
  for (auto& core : cores_) core->attach_trace(trace);
}

SystemRunStats MultiCoreSystem::run(const Program& program, usize entry_pc) {
  memsys_->reset_timing();
  for (auto& core : cores_) core->begin_run(program, entry_pc);

  SystemRunStats stats;
  const u32 n = num_cores();
  u32 running = n;

  // Releases the pending barrier once every non-halted core reached it.
  // Returns true if a release happened (cores resumed running).
  const auto try_release_barrier = [&]() -> bool {
    u32 waiting = 0;
    Cycle release = 0;
    for (auto& core : cores_) {
      if (core->status() == StepStatus::kAtBarrier) {
        ++waiting;
        release = std::max(release, core->barrier_arrival());
      } else if (core->status() != StepStatus::kHalted) {
        return false;  // someone is still running toward the barrier
      }
    }
    if (waiting == 0) return false;
    for (auto& core : cores_) {
      if (core->status() == StepStatus::kAtBarrier) core->release_barrier(release);
    }
    ++stats.barriers;
    return true;
  };

  while (running > 0) {
    // Pick the runnable core with the smallest issue horizon; ties go
    // round-robin starting from a rotating origin so equal-time cores
    // interleave fairly and deterministically.
    u32 pick = n;
    Cycle best = 0;
    for (u32 off = 0; off < n; ++off) {
      const u32 i = (rr_start_ + off) % n;
      if (cores_[i]->status() != StepStatus::kRunning) continue;
      const Cycle horizon = cores_[i]->issue_horizon();
      if (pick == n || horizon < best) {
        pick = i;
        best = horizon;
      }
    }
    SMTU_CHECK_MSG(pick < n, "no runnable core (scheduler invariant broken)");
    rr_start_ = (pick + 1) % n;

    const StepStatus status = cores_[pick]->step();
    if (status == StepStatus::kRunning) continue;
    if (status == StepStatus::kHalted) --running;
    // A core stopped (barrier or halt): the pending barrier, if any, may
    // now have its full quorum.
    if (try_release_barrier()) {
      running = 0;
      for (auto& core : cores_) {
        if (core->status() == StepStatus::kRunning) ++running;
      }
    }
  }

  // Every core halted; any barrier still pending would be a deadlock
  // (caught above: try_release_barrier fires as soon as no core runs).
  stats.core_stats.reserve(n);
  for (auto& core : cores_) {
    SMTU_CHECK_MSG(core->status() == StepStatus::kHalted,
                   "core stuck at a barrier no other core will reach");
    stats.core_stats.push_back(core->finish_run());
    stats.cycles = std::max(stats.cycles, stats.core_stats.back().cycles);
  }
  stats.memory = memsys_->stats();
  return stats;
}

}  // namespace smtu::vsim
