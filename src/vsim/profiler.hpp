// Cycle-attribution profiler: hardware-counter-style performance counters
// for the simulated machine (the full reference is docs/PROFILING.md).
//
// The machine is an analytic resource-time model: run() advances a single
// completion watermark as each instruction's finish time is resolved. A
// PerfCounters attached to the Machine receives one ProfileSample per
// executed instruction, bracketing the watermark before and after it. The
// watermark increment is split into a *wait* part — the larger of the dead
// gap past the old watermark (fetch bubbles) and the delay the binding
// hazard/resource constraint imposed past the unconstrained issue point,
// clamped to the increment; attributed to the stall taxonomy below — and a
// *busy* part (the remainder, attributed to the functional unit doing the
// work). Increments telescope to the final cycle count, so
//
//     Σ stall buckets + Σ busy buckets == total cycles
//
// holds exactly; end_run() enforces it (SMTU_CHECK). Counters also roll up
// per opcode, per functional unit, per assembly source line, and per
// `;; profile: <name>` region (assembler directive, see docs/PROFILING.md).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "vsim/program.hpp"

namespace smtu::vsim {

// Why an instruction's start was delayed past the completion watermark —
// i.e. which constraint the critical path ran through for those cycles.
// Exactly one reason is charged per instruction (the argmax constraint).
enum class StallReason : u8 {
  kRawHazard = 0,     // a scalar/vector source operand was not yet ready
  kVregBusy,          // destination vector register still being read/written
  kChainingWait,      // waiting on a producer's first element (chained)
  kMemPort,           // memory port busy (contiguous/stream occupant, or
                      // scalar load/store port contention)
  kMemIndexedSerial,  // memory port serialized behind a 1-elem/cycle
                      // indexed (gather/scatter/strided) access
  kStmBusy,           // s x s memory unit busy (fill/drain/bank ordering)
  kValuBusy,          // vector ALU busy with an earlier instruction
  kScalarFetch,       // scalar front end refilling after a taken branch
  kIssueLimit,        // in-order issue / scalar issue-width limit
  kMemBankContention, // a shared memory bank was held by another core
                      // (multi-core systems only; see docs/MULTICORE.md)
  kBarrierWait,       // waiting at a `barrier` for the slowest core
  kCount
};
inline constexpr usize kStallReasonCount = static_cast<usize>(StallReason::kCount);

// Stable snake_case name used in JSON keys and reports, e.g. "raw_hazard".
const char* stall_reason_name(StallReason reason);

// Which resource the busy part of an instruction's watermark increment ran
// on. The vector memory pipe is split by access kind because the paper's
// entire argument rests on the stream-vs-indexed rate gap (§IV-A).
enum class BusyKind : u8 {
  kScalar = 0,    // scalar core (issue slots + op/load latency)
  kVMemStream,    // vector memory pipe, contiguous/streaming rate
  kVMemIndexed,   // vector memory pipe, 1 element/cycle indexed accesses
  kVAlu,          // vector ALU
  kStm,           // the STM (s x s memory) unit
  kCount
};
inline constexpr usize kBusyKindCount = static_cast<usize>(BusyKind::kCount);

// Stable snake_case name used in JSON keys and reports, e.g. "vmem_indexed".
const char* busy_kind_name(BusyKind kind);

// One executed instruction, as reported by Machine::run().
struct ProfileSample {
  usize pc = 0;
  Op op = Op::kNop;
  u32 vl = 0;                                  // 0 for scalar instructions
  BusyKind busy = BusyKind::kScalar;
  StallReason wait = StallReason::kIssueLimit; // binding start constraint
  Cycle t_start = 0;        // unit start (issue slot for scalar ops)
  Cycle t_unblocked = 0;    // start absent hazard/resource constraints
  Cycle watermark_before = 0;
  Cycle watermark_after = 0;
  Cycle occupancy = 0;      // cycles the unit was reserved (1 for scalar)
};

class PerfCounters {
 public:
  struct OpCounters {
    u64 issued = 0;
    u64 retired = 0;
    u64 elements = 0;     // vector elements processed
    u64 busy_cycles = 0;  // attributed busy cycles
    u64 stall_cycles = 0; // attributed wait cycles
  };

  struct FuCounters {
    u64 instructions = 0;
    u64 occupancy_cycles = 0;  // reservation time, overlap included
  };

  struct LineCounters {
    u32 line = 0;         // 1-based assembler source line
    std::string text;     // the source line, as written
    std::string region;   // enclosing `;; profile:` region ("" if none)
    u64 issued = 0;
    u64 busy_cycles = 0;
    u64 stall_cycles = 0;
    std::array<u64, kStallReasonCount> stalls{};  // wait cycles per reason
  };

  struct RegionCounters {
    std::string name;
    u64 issued = 0;
    u64 busy_cycles = 0;
    u64 stall_cycles = 0;
  };

  // Drops all counters and the captured program tables.
  void reset();

  // ---- Machine hooks ------------------------------------------------------
  // begin_run() captures the program's line/region tables (first call) or
  // checks the same program is being re-run (accumulation across runs).
  void begin_run(const Program& program);
  void record(const ProfileSample& sample);
  // Folds the run's cycle count into the totals and enforces the
  // conservation invariant: attributed_cycles() == total_cycles().
  void end_run(Cycle run_cycles);

  // ---- Results ------------------------------------------------------------
  u64 runs() const { return runs_; }
  Cycle total_cycles() const { return total_cycles_; }
  u64 attributed_cycles() const { return attributed_cycles_; }
  const std::array<u64, kStallReasonCount>& stall_cycles() const { return stall_cycles_; }
  const std::array<u64, kBusyKindCount>& busy_cycles() const { return busy_cycles_; }
  const std::array<OpCounters, kOpCount>& ops() const { return ops_; }
  const std::array<FuCounters, kBusyKindCount>& fus() const { return fus_; }

  // Per-line / per-region rollups of the per-pc counters, ordered by source
  // line / first static appearance. Lines that never issued are omitted.
  std::vector<LineCounters> line_rollup() const;
  std::vector<RegionCounters> region_rollup() const;

 private:
  struct PcCounters {
    u64 issued = 0;
    u64 busy_cycles = 0;
    u64 stall_cycles = 0;
    std::array<u64, kStallReasonCount> stalls{};
  };

  u64 runs_ = 0;
  Cycle total_cycles_ = 0;
  u64 attributed_cycles_ = 0;
  std::array<u64, kStallReasonCount> stall_cycles_{};
  std::array<u64, kBusyKindCount> busy_cycles_{};
  std::array<OpCounters, kOpCount> ops_{};
  std::array<FuCounters, kBusyKindCount> fus_{};

  // Program tables captured at begin_run (the profiler outlives the
  // Program in the bench harness, so it owns copies).
  std::vector<PcCounters> per_pc_;
  std::vector<u32> pc_line_;
  std::vector<i32> pc_region_;  // index into region_names_, -1 = none
  std::vector<std::string> region_names_;
  std::vector<std::string> line_text_;  // 1-based, [0] unused
};

// Human-readable report: stall-bucket breakdown, FU occupancy, hottest
// opcodes, and the top `top_lines` source lines by attributed cycles.
std::string profile_summary(const PerfCounters& profile, usize top_lines = 10);

}  // namespace smtu::vsim
