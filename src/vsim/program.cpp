#include "vsim/program.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace smtu::vsim {
namespace {

void decode_vector(const Instruction& inst, DecodedInst& d) {
  d.is_vector = true;
  d.indexed_vmem = op_indexed_vmem(inst.op);

  // Scalar sources the instruction needs at issue.
  switch (inst.op) {
    case Op::kVLd:
    case Op::kVSt:
    case Op::kVLdx:
    case Op::kVStx:
    case Op::kVBcast:
    case Op::kVStbv:
    case Op::kVGthC:
    case Op::kVScaR:
    case Op::kVGthR:
    case Op::kVScaC:
    case Op::kVScaX:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      break;
    case Op::kVLds:
    case Op::kVSts:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVAdds:
    case Op::kVExtract:
    case Op::kVSeqS:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVLdb:
    case Op::kVStb:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.c);
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.d);
      break;
    default:
      break;
  }

  // Vector sources and destinations by opcode.
  switch (inst.op) {
    case Op::kVLd:
    case Op::kVLds:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      break;
    case Op::kVSt:
    case Op::kVSts:
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.a);
      break;
    case Op::kVLdx:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVStx:
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVAdd:
    case Op::kVSub:
    case Op::kVMul:
    case Op::kVAnd:
    case Op::kVOr:
    case Op::kVXor:
    case Op::kVMin:
    case Op::kVMax:
    case Op::kVFAdd:
    case Op::kVFMul:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.b);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVAddi:
    case Op::kVAdds:
    case Op::kVSeqS:
    case Op::kVSlideUp:
    case Op::kVSlideDown:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.b);
      break;
    case Op::kVSeq:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.b);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVGthC:
    case Op::kVGthR:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVScaR:
    case Op::kVScaC:
    case Op::kVScaX:
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.c);
      break;
    case Op::kVBcast:
    case Op::kVBcasti:
    case Op::kVIota:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      break;
    case Op::kVRedSum:
    case Op::kVFRedSum:
    case Op::kVExtract:
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.b);
      break;
    case Op::kIcm:
      break;
    case Op::kVLdb:
    case Op::kVLdcc:
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.a);
      d.dsts[d.num_dsts++] = static_cast<u8>(inst.b);
      break;
    case Op::kVStcr:
    case Op::kVStb:
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.a);
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.b);
      break;
    case Op::kVStbv:
      d.srcs[d.num_srcs++] = static_cast<u8>(inst.a);
      break;
    default:
      break;
  }

  // Functional unit and which config field supplies the startup latency
  // (shared constexpr tables, program.hpp).
  d.unit = op_unit(inst.op);
  d.startup = op_startup(inst.op);
}

void decode_scalar(const Instruction& inst, DecodedInst& d) {
  d.is_vector = false;
  d.scalar_mem = op_scalar_mem(inst.op);
  switch (inst.op) {
    case Op::kLi:
      break;
    case Op::kMv:
    case Op::kAddi:
    case Op::kMuli:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kJr:
    case Op::kSsvl:
    case Op::kSetvl:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      if (inst.op == Op::kJr || inst.op == Op::kSsvl) {
        d.sregs[d.num_sregs++] = static_cast<u8>(inst.a);
      }
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kSll:
    case Op::kSrl:
    case Op::kMin:
    case Op::kMax:
    case Op::kFAdd:
    case Op::kFMul:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.c);
      break;
    case Op::kLw:
    case Op::kLhu:
    case Op::kLbu:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      break;
    case Op::kSw:
    case Op::kSh:
    case Op::kSb:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.a);
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      break;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.a);
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      break;
    case Op::kJal:
    case Op::kHalt:
    case Op::kNop:
    case Op::kBarrier:
      break;
    case Op::kAmoAdd:
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.b);
      d.sregs[d.num_sregs++] = static_cast<u8>(inst.c);
      break;
    default:
      SMTU_CHECK_MSG(false, "unhandled scalar op in decode");
  }
}

}  // namespace

DecodedInst decode_instruction(const Instruction& inst) {
  DecodedInst d;
  if (op_is_vector(inst.op)) {
    decode_vector(inst, d);
  } else {
    decode_scalar(inst, d);
  }
  // Bind the threaded-dispatch target once per static instruction; the
  // handlers index register-timing arrays with these numbers, so validate
  // them here rather than per dynamic execution.
  d.handler = opcode_handler(inst.op);
  for (u32 i = 0; i < d.num_sregs; ++i) {
    SMTU_CHECK_MSG(d.sregs[i] < kNumScalarRegs, "scalar register out of range");
  }
  for (u32 i = 0; i < d.num_srcs; ++i) {
    SMTU_CHECK_MSG(d.srcs[i] < kNumVectorRegs, "vector register out of range");
  }
  for (u32 i = 0; i < d.num_dsts; ++i) {
    SMTU_CHECK_MSG(d.dsts[i] < kNumVectorRegs, "vector register out of range");
  }
  return d;
}

std::vector<DecodedInst> decode_instructions(const std::vector<Instruction>& instructions) {
  std::vector<DecodedInst> decoded;
  decoded.reserve(instructions.size());
  for (const Instruction& inst : instructions) decoded.push_back(decode_instruction(inst));
  return decoded;
}

usize Program::label(const std::string& name) const {
  const auto it = labels.find(name);
  SMTU_CHECK_MSG(it != labels.end(), "unknown label: " + name);
  return it->second;
}

const ProfileRegion* Program::region_of(usize pc) const {
  // Regions are ordered and non-overlapping: binary search on begin.
  auto it = std::upper_bound(regions.begin(), regions.end(), pc,
                             [](usize value, const ProfileRegion& region) {
                               return value < region.begin;
                             });
  if (it == regions.begin()) return nullptr;
  --it;
  return pc < it->end ? &*it : nullptr;
}

const std::string& Program::source_line_text(u32 line) const {
  static const std::string kEmpty;
  if (line == 0 || line >= source_lines.size()) return kEmpty;
  return source_lines[line];
}

std::string Program::listing() const {
  std::map<usize, std::vector<std::string>> labels_at;
  for (const auto& [name, pc] : labels) labels_at[pc].push_back(name);

  std::ostringstream out;
  for (usize pc = 0; pc < instructions.size(); ++pc) {
    if (const auto it = labels_at.find(pc); it != labels_at.end()) {
      for (const std::string& name : it->second) out << name << ":\n";
    }
    out << "  " << pc << ": " << to_string(instructions[pc]) << '\n';
  }
  return out.str();
}

}  // namespace smtu::vsim
