#include "vsim/program.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace smtu::vsim {

usize Program::label(const std::string& name) const {
  const auto it = labels.find(name);
  SMTU_CHECK_MSG(it != labels.end(), "unknown label: " + name);
  return it->second;
}

const ProfileRegion* Program::region_of(usize pc) const {
  // Regions are ordered and non-overlapping: binary search on begin.
  auto it = std::upper_bound(regions.begin(), regions.end(), pc,
                             [](usize value, const ProfileRegion& region) {
                               return value < region.begin;
                             });
  if (it == regions.begin()) return nullptr;
  --it;
  return pc < it->end ? &*it : nullptr;
}

const std::string& Program::source_line_text(u32 line) const {
  static const std::string kEmpty;
  if (line == 0 || line >= source_lines.size()) return kEmpty;
  return source_lines[line];
}

std::string Program::listing() const {
  std::map<usize, std::vector<std::string>> labels_at;
  for (const auto& [name, pc] : labels) labels_at[pc].push_back(name);

  std::ostringstream out;
  for (usize pc = 0; pc < instructions.size(); ++pc) {
    if (const auto it = labels_at.find(pc); it != labels_at.end()) {
      for (const std::string& name : it->second) out << name << ":\n";
    }
    out << "  " << pc << ": " << to_string(instructions[pc]) << '\n';
  }
  return out.str();
}

}  // namespace smtu::vsim
