#include "vsim/program.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace smtu::vsim {

usize Program::label(const std::string& name) const {
  const auto it = labels.find(name);
  SMTU_CHECK_MSG(it != labels.end(), "unknown label: " + name);
  return it->second;
}

std::string Program::listing() const {
  std::map<usize, std::vector<std::string>> labels_at;
  for (const auto& [name, pc] : labels) labels_at[pc].push_back(name);

  std::ostringstream out;
  for (usize pc = 0; pc < instructions.size(); ++pc) {
    if (const auto it = labels_at.find(pc); it != labels_at.end()) {
      for (const std::string& name : it->second) out << name << ":\n";
    }
    out << "  " << pc << ": " << to_string(instructions[pc]) << '\n';
  }
  return out.str();
}

}  // namespace smtu::vsim
