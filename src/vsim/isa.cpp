#include "vsim/isa.hpp"

#include "support/strings.hpp"

namespace smtu::vsim {

const char* op_name(Op op) {
  switch (op) {
    case Op::kLi: return "li";
    case Op::kMv: return "mv";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kAddi: return "addi";
    case Op::kMuli: return "muli";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kFAdd: return "fadd";
    case Op::kFMul: return "fmul";
    case Op::kLw: return "lw";
    case Op::kSw: return "sw";
    case Op::kLhu: return "lhu";
    case Op::kSh: return "sh";
    case Op::kLbu: return "lbu";
    case Op::kSb: return "sb";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kJal: return "jal";
    case Op::kJr: return "jr";
    case Op::kHalt: return "halt";
    case Op::kNop: return "nop";
    case Op::kSsvl: return "ssvl";
    case Op::kSetvl: return "setvl";
    case Op::kVLd: return "v_ld";
    case Op::kVSt: return "v_st";
    case Op::kVLdx: return "v_ldx";
    case Op::kVStx: return "v_stx";
    case Op::kVLds: return "v_lds";
    case Op::kVSts: return "v_sts";
    case Op::kVAdd: return "v_add";
    case Op::kVSub: return "v_sub";
    case Op::kVMul: return "v_mul";
    case Op::kVAnd: return "v_and";
    case Op::kVOr: return "v_or";
    case Op::kVXor: return "v_xor";
    case Op::kVMin: return "v_min";
    case Op::kVMax: return "v_max";
    case Op::kVAddi: return "v_addi";
    case Op::kVAdds: return "v_adds";
    case Op::kVBcast: return "v_bcast";
    case Op::kVBcasti: return "v_bcasti";
    case Op::kVIota: return "v_iota";
    case Op::kVSlideUp: return "v_slideup";
    case Op::kVSlideDown: return "v_slidedown";
    case Op::kVRedSum: return "v_redsum";
    case Op::kVExtract: return "v_extract";
    case Op::kVSeq: return "v_seq";
    case Op::kVSeqS: return "v_seqs";
    case Op::kVFAdd: return "v_fadd";
    case Op::kVFMul: return "v_fmul";
    case Op::kVFRedSum: return "v_fredsum";
    case Op::kIcm: return "icm";
    case Op::kVLdb: return "v_ldb";
    case Op::kVStcr: return "v_stcr";
    case Op::kVLdcc: return "v_ldcc";
    case Op::kVStb: return "v_stb";
    case Op::kVStbv: return "v_stbv";
    case Op::kVGthC: return "v_gthc";
    case Op::kVScaR: return "v_scar";
    case Op::kVGthR: return "v_gthr";
    case Op::kVScaC: return "v_scac";
    case Op::kVScaX: return "v_scax";
    case Op::kBarrier: return "barrier";
    case Op::kAmoAdd: return "amo_add";
  }
  return "?";
}

std::string to_string(const Instruction& inst) {
  return format("%-10s a=%u b=%u c=%u d=%u imm=%lld", op_name(inst.op), inst.a, inst.b,
                inst.c, inst.d, static_cast<long long>(inst.imm));
}

}  // namespace smtu::vsim
