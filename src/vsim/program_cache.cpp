#include "vsim/program_cache.hpp"

#include "support/telemetry.hpp"
#include "vsim/assembler.hpp"

namespace smtu::vsim {

ProgramCache& ProgramCache::instance() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const Program> ProgramCache::get(std::string_view source) {
  // Latency as the caller sees it: a miss includes the assemble().
  telemetry::HostSpan span("cache.program.lookup_us");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Heterogeneous lookup: hits probe with the caller's view directly, so
    // the multi-KB source is only copied when inserting a new entry.
    const auto it = entries_.find(source);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (telemetry::enabled()) telemetry::counter("cache.program.hits_total").add(1);
      return it->second;
    }
  }
  // Assemble outside the lock so a slow parse does not serialize unrelated
  // workers; a racing duplicate assembles twice and the first insert wins.
  auto program = std::make_shared<const Program>(assemble(source));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  if (telemetry::enabled()) {
    telemetry::counter("cache.program.misses_total").add(1);
    telemetry::counter("cache.program.bytes_total").add(source.size());
  }
  const auto [it, inserted] = entries_.emplace(std::string(source), std::move(program));
  return it->second;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (telemetry::enabled() && !entries_.empty()) {
    telemetry::counter("cache.program.evictions_total").add(entries_.size());
  }
  entries_.clear();
  stats_ = {};
}

}  // namespace smtu::vsim
