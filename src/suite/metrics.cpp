#include "suite/metrics.hpp"

#include <unordered_map>

namespace smtu::suite {

MatrixMetrics compute_metrics(const Coo& matrix) {
  constexpr Index kBlockDim = 32;

  MatrixMetrics metrics;
  metrics.rows = matrix.rows();
  metrics.cols = matrix.cols();
  metrics.nnz = matrix.nnz();
  metrics.avg_nnz_per_row = matrix.avg_nnz_per_row();

  if (matrix.nnz() == 0) return metrics;

  const Index block_cols = (matrix.cols() + kBlockDim - 1) / kBlockDim;
  std::unordered_map<u64, u32> block_counts;
  block_counts.reserve(matrix.nnz() / 4 + 1);
  for (const CooEntry& e : matrix.entries()) {
    block_counts[(e.row / kBlockDim) * block_cols + e.col / kBlockDim]++;
  }
  u64 total = 0;
  for (const auto& [block, count] : block_counts) total += count;
  metrics.locality = static_cast<double>(total) /
                     (static_cast<double>(block_counts.size()) * kBlockDim);
  return metrics;
}

}  // namespace smtu::suite
