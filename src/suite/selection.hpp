// The D-SAB selection procedure itself (§IV-B and the D-SAB paper):
//
//   "Of these matrices we have selected 132 matrices ... sorted using three
//    different criteria ... From each of these sets ten matrices have been
//    chosen with the equal steps (in logarithmic scale) between their
//    corresponding parameters."
//
// `build_dsab_pool` synthesizes a 132-matrix population spanning the
// pattern families of the Matrix Market collection; `select_log_spaced`
// implements the sort-and-pick-log-spaced step for any criterion. The
// benchmark binaries use the direct 30-matrix suite in dsab.hpp (whose
// slots are tuned to the paper's reported parameter ranges); this module
// reproduces the *procedure* those slots came from and is exercised by the
// tests and the dsab_export tool.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "suite/dsab.hpp"

namespace smtu::suite {

// 132 deterministic synthetic matrices across pattern families (diagonal,
// banded, stencil, scattered, clustered, power-law, dense). `scale` shrinks
// every matrix; the default pool tops out around 10^5 non-zeros so the full
// population stays cheap to build.
std::vector<SuiteMatrix> build_dsab_pool(const SuiteOptions& options = {});

// Sorts `pool` by `criterion` (ascending) and picks `count` matrices whose
// criterion values step as evenly as possible in log scale between the
// population's minimum and maximum. Matrices with criterion <= 0 are
// skipped. Returns the picks in ascending criterion order.
std::vector<SuiteMatrix> select_log_spaced(
    std::vector<SuiteMatrix> pool, usize count,
    const std::function<double(const MatrixMetrics&)>& criterion);

}  // namespace smtu::suite
