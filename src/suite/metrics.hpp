// The three matrix properties the paper sorts its benchmark suite by
// (§IV-B): size (non-zeros), locality, and average non-zeros per row.
#pragma once

#include "formats/coo.hpp"

namespace smtu::suite {

struct MatrixMetrics {
  Index rows = 0;
  Index cols = 0;
  usize nnz = 0;
  // Paper definition: partition into 32x32 blocks; for each non-empty block
  // divide its non-zero count by 32; average over non-empty blocks.
  double locality = 0.0;
  // Average non-zeros per row (ANZ).
  double avg_nnz_per_row = 0.0;
};

MatrixMetrics compute_metrics(const Coo& matrix);

}  // namespace smtu::suite
