// Synthetic sparse-matrix generators.
//
// The original evaluation uses 30 matrices selected from the Matrix Market
// collection via the D-SAB suite; those files are not available offline, so
// the suite is rebuilt from generators that control exactly the properties
// the paper's experiments sweep: total non-zeros, the 32x32-block locality
// metric, and the average non-zeros per row. Every generator is
// deterministic given the Rng.
#pragma once

#include "formats/coo.hpp"
#include "support/rng.hpp"

namespace smtu::suite {

// Identity-pattern diagonal (bcsstm20/bcsstm01-like mass matrices).
Coo gen_diagonal(Index n, Rng& rng);

// Tridiagonal band.
Coo gen_tridiagonal(Index n, Rng& rng);

// Uniform random scatter: `nnz` distinct positions over rows x cols
// (power-grid-like patterns; minimal locality).
Coo gen_random_uniform(Index rows, Index cols, usize nnz, Rng& rng);

// Every row draws `per_row` distinct columns from a window of width
// 2*`spread`+1 centred on the diagonal (FEM-like banded structure; locality
// grows with per_row). spread >= per_row is required.
Coo gen_banded_rows(Index n, u32 per_row, u32 spread, Rng& rng);

// Exactly `per_block` non-zeros in each of `blocks` distinct, randomly
// placed, 32-aligned 32x32 blocks — directly dials the paper's locality
// metric to per_block/32 (qc324-like dense clusters at the high end).
Coo gen_block_clusters(Index n, usize blocks, u32 per_block, Rng& rng);

// 5-point / 9-point Laplacian stencils on a grid x grid mesh (n = grid^2).
Coo gen_stencil5(Index grid, Rng& rng);
Coo gen_stencil9(Index grid, Rng& rng);

// Fully dense rows block (psmigr_1-like: every row nearly full).
Coo gen_dense(Index rows, Index cols, Rng& rng);

// Row lengths follow a truncated power law (web/graph-like skew).
Coo gen_powerlaw_rows(Index n, usize target_nnz, double alpha, Rng& rng);

}  // namespace smtu::suite
