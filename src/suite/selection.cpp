#include "suite/selection.hpp"

#include <algorithm>
#include <cmath>

#include "suite/generators.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu::suite {
namespace {

Index scaled(double value, double scale) {
  return std::max<Index>(4, static_cast<Index>(std::llround(value * scale)));
}

// One pool slot: a pattern family instantiated at a family-specific size
// step. 6 families x 22 steps = 132 matrices.
Coo generate_family_member(u32 family, u32 step, double scale, Rng& rng) {
  const double t = static_cast<double>(step) / 21.0;  // 0 .. 1 across steps
  switch (family) {
    case 0: {  // diagonals / tridiagonals (mass and simple FD matrices)
      const Index n = scaled(48.0 * std::pow(400.0, t), scale);
      return step % 2 == 0 ? gen_diagonal(n, rng) : gen_tridiagonal(n, rng);
    }
    case 1: {  // FEM stencils
      const Index grid = scaled(6.0 * std::pow(16.0, t), scale);
      return step % 2 == 0 ? gen_stencil5(grid, rng) : gen_stencil9(grid, rng);
    }
    case 2: {  // banded engineering matrices, widening bands
      const Index n = scaled(200.0 * std::pow(25.0, t), scale);
      const u32 per_row = static_cast<u32>(std::lround(2.0 * std::pow(60.0, t)));
      return gen_banded_rows(n, per_row, std::max<u32>(8, 2 * per_row), rng);
    }
    case 3: {  // uniform scatter (power networks, circuit matrices)
      const Index n = scaled(150.0 * std::pow(30.0, t), scale);
      const usize nnz = std::min<usize>(n * n / 4, static_cast<usize>(
                            std::llround(300.0 * std::pow(300.0, t))));
      return gen_random_uniform(n, n, std::max<usize>(4, nnz), rng);
    }
    case 4: {  // dense block clusters (QC / chemistry style)
      const u32 per_block = static_cast<u32>(std::lround(8.0 * std::pow(100.0, t)));
      const usize blocks = 20 + step * 6;
      Index dim = 256;
      while (static_cast<usize>(dim / 32) * (dim / 32) < blocks) dim *= 2;
      return gen_block_clusters(dim, blocks, std::min<u32>(1024, per_block), rng);
    }
    default: {  // power-law row lengths (graphs, economics)
      const Index n = scaled(120.0 * std::pow(25.0, t), scale);
      const usize nnz = static_cast<usize>(std::llround(500.0 * std::pow(120.0, t)));
      return gen_powerlaw_rows(n, std::max<usize>(8, nnz), 0.8, rng);
    }
  }
}

}  // namespace

std::vector<SuiteMatrix> build_dsab_pool(const SuiteOptions& options) {
  static const char* kFamilyNames[] = {"diag", "fem", "band", "scatter", "cluster", "plaw"};
  std::vector<SuiteMatrix> pool;
  pool.reserve(132);
  for (u32 family = 0; family < 6; ++family) {
    for (u32 step = 0; step < 22; ++step) {
      Rng rng(options.seed ^ (family * 1000003ULL + step * 7919ULL));
      SuiteMatrix entry;
      entry.name = format("%s-%02u", kFamilyNames[family], step);
      entry.set = "pool";
      entry.index = family * 22 + step;
      entry.matrix = generate_family_member(family, step, options.scale, rng);
      entry.metrics = compute_metrics(entry.matrix);
      pool.push_back(std::move(entry));
    }
  }
  return pool;
}

std::vector<SuiteMatrix> select_log_spaced(
    std::vector<SuiteMatrix> pool, usize count,
    const std::function<double(const MatrixMetrics&)>& criterion) {
  std::erase_if(pool, [&](const SuiteMatrix& m) { return criterion(m.metrics) <= 0.0; });
  SMTU_CHECK_MSG(pool.size() >= count, "population smaller than the selection");
  std::sort(pool.begin(), pool.end(), [&](const SuiteMatrix& a, const SuiteMatrix& b) {
    return criterion(a.metrics) < criterion(b.metrics);
  });

  const double lo = std::log(criterion(pool.front().metrics));
  const double hi = std::log(criterion(pool.back().metrics));
  std::vector<SuiteMatrix> picks;
  picks.reserve(count);
  usize cursor = 0;
  for (usize k = 0; k < count; ++k) {
    const double target =
        lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(count - 1);
    // Closest not-yet-taken matrix at or after the cursor (keeps picks
    // distinct and ascending).
    usize best = cursor;
    double best_distance = 1e300;
    for (usize i = cursor; i < pool.size() - (count - 1 - k); ++i) {
      const double distance = std::fabs(std::log(criterion(pool[i].metrics)) - target);
      if (distance < best_distance) {
        best_distance = distance;
        best = i;
      }
    }
    picks.push_back(pool[best]);
    cursor = best + 1;
  }
  for (usize k = 0; k < picks.size(); ++k) picks[k].index = static_cast<u32>(k);
  return picks;
}

}  // namespace smtu::suite
