#include "suite/generators.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace smtu::suite {
namespace {

float nonzero_value(Rng& rng) { return static_cast<float>(rng.uniform(0.1, 1.0)); }

}  // namespace

Coo gen_diagonal(Index n, Rng& rng) {
  Coo coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add(i, i, nonzero_value(rng));
  coo.canonicalize();
  return coo;
}

Coo gen_tridiagonal(Index n, Rng& rng) {
  Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    if (i > 0) coo.add(i, i - 1, nonzero_value(rng));
    coo.add(i, i, nonzero_value(rng));
    if (i + 1 < n) coo.add(i, i + 1, nonzero_value(rng));
  }
  coo.canonicalize();
  return coo;
}

Coo gen_random_uniform(Index rows, Index cols, usize nnz, Rng& rng) {
  SMTU_CHECK_MSG(nnz <= rows * cols, "more non-zeros than cells");
  Coo coo(rows, cols);
  const std::vector<u64> cells = rng.sample_without_replacement(rows * cols, nnz);
  for (const u64 cell : cells) coo.add(cell / cols, cell % cols, nonzero_value(rng));
  coo.canonicalize();
  return coo;
}

Coo gen_banded_rows(Index n, u32 per_row, u32 spread, Rng& rng) {
  SMTU_CHECK_MSG(per_row >= 1, "per_row must be positive");
  SMTU_CHECK_MSG(2ull * spread + 1 >= per_row, "window too narrow for per_row columns");
  Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    const Index lo = i > spread ? i - spread : 0;
    const Index hi = std::min<Index>(n - 1, i + spread);
    const Index width = hi - lo + 1;
    const u32 take = static_cast<u32>(std::min<u64>(per_row, width));
    for (const u64 offset : rng.sample_without_replacement(width, take)) {
      coo.add(i, lo + offset, nonzero_value(rng));
    }
  }
  coo.canonicalize();
  return coo;
}

Coo gen_block_clusters(Index n, usize blocks, u32 per_block, Rng& rng) {
  constexpr Index kBlockDim = 32;  // the paper's locality metric block size
  SMTU_CHECK_MSG(n % kBlockDim == 0, "dimension must be a multiple of 32");
  SMTU_CHECK_MSG(per_block >= 1 && per_block <= kBlockDim * kBlockDim,
                 "per_block must fit a 32x32 block");
  const Index grid = n / kBlockDim;
  SMTU_CHECK_MSG(blocks <= grid * grid, "more clusters than grid blocks");

  Coo coo(n, n);
  const std::vector<u64> chosen_blocks = rng.sample_without_replacement(grid * grid, blocks);
  for (const u64 block : chosen_blocks) {
    const Index block_row = (block / grid) * kBlockDim;
    const Index block_col = (block % grid) * kBlockDim;
    for (const u64 cell :
         rng.sample_without_replacement(kBlockDim * kBlockDim, per_block)) {
      coo.add(block_row + cell / kBlockDim, block_col + cell % kBlockDim,
              nonzero_value(rng));
    }
  }
  coo.canonicalize();
  return coo;
}

Coo gen_stencil5(Index grid, Rng& rng) {
  const Index n = grid * grid;
  Coo coo(n, n);
  for (Index y = 0; y < grid; ++y) {
    for (Index x = 0; x < grid; ++x) {
      const Index node = y * grid + x;
      coo.add(node, node, nonzero_value(rng));
      if (x > 0) coo.add(node, node - 1, nonzero_value(rng));
      if (x + 1 < grid) coo.add(node, node + 1, nonzero_value(rng));
      if (y > 0) coo.add(node, node - grid, nonzero_value(rng));
      if (y + 1 < grid) coo.add(node, node + grid, nonzero_value(rng));
    }
  }
  coo.canonicalize();
  return coo;
}

Coo gen_stencil9(Index grid, Rng& rng) {
  const Index n = grid * grid;
  Coo coo(n, n);
  for (Index y = 0; y < grid; ++y) {
    for (Index x = 0; x < grid; ++x) {
      const Index node = y * grid + x;
      for (i64 dy = -1; dy <= 1; ++dy) {
        for (i64 dx = -1; dx <= 1; ++dx) {
          const i64 nx = static_cast<i64>(x) + dx;
          const i64 ny = static_cast<i64>(y) + dy;
          if (nx < 0 || ny < 0 || nx >= static_cast<i64>(grid) || ny >= static_cast<i64>(grid))
            continue;
          coo.add(node, static_cast<Index>(ny) * grid + static_cast<Index>(nx),
                  nonzero_value(rng));
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

Coo gen_dense(Index rows, Index cols, Rng& rng) {
  Coo coo(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) coo.add(r, c, nonzero_value(rng));
  }
  coo.canonicalize();
  return coo;
}

Coo gen_powerlaw_rows(Index n, usize target_nnz, double alpha, Rng& rng) {
  SMTU_CHECK_MSG(alpha > 0, "alpha must be positive");
  // Draw raw row weights w_i = (i+1)^-alpha, scale to the target total.
  std::vector<double> weight(n);
  double total = 0;
  for (Index i = 0; i < n; ++i) {
    weight[i] = std::pow(static_cast<double>(i + 1), -alpha);
    total += weight[i];
  }
  Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    const u64 len = std::min<u64>(
        n, std::max<u64>(1, static_cast<u64>(std::llround(
                                weight[i] / total * static_cast<double>(target_nnz)))));
    for (const u64 col : rng.sample_without_replacement(n, len)) {
      coo.add(i, col, nonzero_value(rng));
    }
  }
  coo.canonicalize();
  return coo;
}

}  // namespace smtu::suite
