#include "suite/dsab.hpp"

#include <cmath>
#include <functional>

#include "suite/generators.hpp"
#include "support/assert.hpp"

namespace smtu::suite {
namespace {

struct Spec {
  const char* name;
  std::function<Coo(double scale, Rng& rng)> generate;
};

Index scaled_dim(Index dim, double scale, Index min_dim = 8) {
  return std::max<Index>(min_dim, static_cast<Index>(std::llround(static_cast<double>(dim) * scale)));
}

usize scaled_count(usize count, double scale, usize min_count = 4) {
  return std::max<usize>(min_count,
                         static_cast<usize>(std::llround(static_cast<double>(count) * scale)));
}

// ---- Locality set: 32x32 clusters with exactly per_block non-zeros, so the
// paper's locality metric equals per_block/32 by construction. Targets are
// log-spaced over the paper's 0.07 .. 12.85 range.
std::vector<Spec> locality_specs() {
  struct P {
    const char* name;
    u32 per_block;
  };
  // per_block = round(32 * locality_target)
  static constexpr P kParams[] = {
      {"bcspwr10-syn", 2},    {"memplus-syn", 4},    {"gemat11-syn", 7},
      {"sherman5-syn", 13},   {"mcfe-syn", 23},      {"fs_541_1-syn", 40},
      {"bcsstk08-syn", 72},   {"s2rmq4m1-syn", 129}, {"psmigr_2-syn", 230},
      {"qc324-syn", 411},
  };
  std::vector<Spec> specs;
  for (const P& p : kParams) {
    specs.push_back({p.name, [per_block = p.per_block](double scale, Rng& rng) {
                       // ~60k non-zeros at full scale, on an 8192^2 matrix.
                       const usize blocks =
                           scaled_count(60000 / per_block + 1, scale, 2);
                       Index dim = 8192;
                       while (static_cast<usize>(dim / 32) * (dim / 32) < blocks) dim *= 2;
                       dim = std::max<Index>(
                           64, (scaled_dim(dim, std::sqrt(scale), 64) + 31) / 32 * 32);
                       while (static_cast<usize>(dim / 32) * (dim / 32) < blocks) dim += 32;
                       return gen_block_clusters(dim, blocks, per_block, rng);
                     }});
  }
  return specs;
}

// ---- ANZ set: per-row non-zero counts log-spaced over 1 .. 172, drawn from
// a banded window so locality rises with ANZ (the correlation §IV-D notes
// for the original set). Dimensions follow the D-SAB anchors — the real
// bcsstm20 is 485x485 and psmigr_1 is 3140x3140 — so small low-ANZ matrices
// carry realistic per-matrix overheads.
std::vector<Spec> anz_specs() {
  struct P {
    const char* name;
    u32 per_row;
    Index dim;
  };
  static constexpr P kParams[] = {
      {"bcsstm20-syn", 1, 485},    {"nos4-syn", 2, 597},
      {"bcspwr09-syn", 3, 734},    {"bcsstk22-syn", 6, 903},
      {"plat1919-syn", 10, 1111},  {"gr_30_30-syn", 17, 1367},
      {"s1rmq4m1-syn", 31, 1682},  {"bcsstk24-syn", 55, 2069},
      {"e20r0000-syn", 97, 2546},  {"psmigr_1-syn", 172, 3140},
  };
  std::vector<Spec> specs;
  for (const P& p : kParams) {
    specs.push_back({p.name, [per_row = p.per_row, dim = p.dim](double scale, Rng& rng) {
                       const Index n = scaled_dim(dim, scale, 128);
                       if (per_row == 1) return gen_diagonal(n, rng);
                       const u32 spread = std::max<u32>(per_row, 8);
                       return gen_banded_rows(n, per_row, spread, rng);
                     }});
  }
  return specs;
}

// ---- Size set: total non-zeros log-spaced over 48 .. 3.75M with a mix of
// pattern families (diagonal, band, FEM stencils, uniform scatter, dense
// clusters), mirroring the variety of the original selection.
std::vector<Spec> size_specs() {
  std::vector<Spec> specs;
  specs.push_back({"bcsstm01-syn", [](double scale, Rng& rng) {
                     return gen_diagonal(scaled_dim(48, scale), rng);
                   }});
  specs.push_back({"bcsstm02-syn", [](double scale, Rng& rng) {
                     return gen_tridiagonal(scaled_dim(57, scale), rng);
                   }});
  specs.push_back({"can_161-syn", [](double scale, Rng& rng) {
                     return gen_stencil5(scaled_dim(11, std::sqrt(scale), 4), rng);
                   }});
  specs.push_back({"dwt_992-syn", [](double scale, Rng& rng) {
                     return gen_stencil5(scaled_dim(21, std::sqrt(scale), 4), rng);
                   }});
  specs.push_back({"west0989-syn", [](double scale, Rng& rng) {
                     // Wide scatter (<2 non-zeros per 32x32 block): the
                     // size set's low-locality representative.
                     const Index n = scaled_dim(2048, std::sqrt(scale), 64);
                     return gen_random_uniform(n, n, scaled_count(7203, scale), rng);
                   }});
  specs.push_back({"sherman3-syn", [](double scale, Rng& rng) {
                     return gen_banded_rows(scaled_dim(3151, scale, 64), 8, 16, rng);
                   }});
  specs.push_back({"cage10-syn", [](double scale, Rng& rng) {
                     return gen_stencil9(scaled_dim(100, std::sqrt(scale), 8), rng);
                   }});
  specs.push_back({"memplus2-syn", [](double scale, Rng& rng) {
                     const usize blocks = scaled_count(4800, scale, 4);
                     Index dim = 16384;
                     while (static_cast<usize>(dim / 32) * (dim / 32) < blocks) dim *= 2;
                     dim = std::max<Index>(
                         64, (scaled_dim(dim, std::sqrt(scale), 64) + 31) / 32 * 32);
                     while (static_cast<usize>(dim / 32) * (dim / 32) < blocks) dim += 32;
                     return gen_block_clusters(dim, blocks, 64, rng);
                   }});
  specs.push_back({"bcsstk30-syn", [](double scale, Rng& rng) {
                     return gen_banded_rows(scaled_dim(43235, scale, 128), 25, 50, rng);
                   }});
  specs.push_back({"s3dkt3m2-syn", [](double scale, Rng& rng) {
                     return gen_banded_rows(scaled_dim(89374, scale, 256), 42, 84, rng);
                   }});
  return specs;
}

std::vector<SuiteMatrix> materialize(const std::string& set, const std::vector<Spec>& specs,
                                     const SuiteOptions& options) {
  std::vector<SuiteMatrix> result;
  result.reserve(specs.size());
  u32 index = 0;
  for (const Spec& spec : specs) {
    // Independent stream per slot so scaling one matrix never shifts others.
    Rng rng(options.seed ^ (static_cast<u64>(std::hash<std::string>{}(spec.name)) * 0x9e37ULL));
    SuiteMatrix entry;
    entry.name = spec.name;
    entry.set = set;
    entry.index = index++;
    entry.matrix = spec.generate(options.scale, rng);
    entry.metrics = compute_metrics(entry.matrix);
    result.push_back(std::move(entry));
  }
  return result;
}

}  // namespace

std::vector<SuiteMatrix> build_dsab_set(const std::string& set, const SuiteOptions& options) {
  SMTU_CHECK_MSG(options.scale > 0.0 && options.scale <= 1.0, "scale must be in (0, 1]");
  if (set == kSetLocality) return materialize(set, locality_specs(), options);
  if (set == kSetAnz) return materialize(set, anz_specs(), options);
  if (set == kSetSize) return materialize(set, size_specs(), options);
  SMTU_CHECK_MSG(false, "unknown suite set: " + set);
  return {};
}

std::vector<SuiteMatrix> build_dsab_suite(const SuiteOptions& options) {
  std::vector<SuiteMatrix> suite = build_dsab_set(kSetLocality, options);
  for (auto& entry : build_dsab_set(kSetAnz, options)) suite.push_back(std::move(entry));
  for (auto& entry : build_dsab_set(kSetSize, options)) suite.push_back(std::move(entry));
  return suite;
}

}  // namespace smtu::suite
