// Synthetic stand-in for the Delft Sparse Architecture Benchmark (D-SAB)
// matrix suite (§IV-B of the paper).
//
// D-SAB selects 132 Matrix Market matrices, sorts them by size, locality and
// average non-zeros per row (ANZ), and picks ten per criterion with
// log-spaced parameter steps — 30 benchmark matrices total. The original
// .mtx files are not available offline, so each slot is regenerated
// synthetically with the *target parameter value* of its position on the
// log scale:
//
//   * locality set: 0.07 .. 12.85  (paper range, anchored by bcspwr10/qc324)
//   * ANZ set:      1    .. 172    (anchored by bcsstm20/psmigr_1)
//   * size set:     48   .. 3.75M non-zeros (anchored by bcsstm01/s3dkt3m2)
//
// Names carry the D-SAB anchor with a "-syn" suffix to make the
// substitution explicit. Generation is deterministic in the seed.
#pragma once

#include <string>
#include <vector>

#include "formats/coo.hpp"
#include "suite/metrics.hpp"

namespace smtu::suite {

inline constexpr const char* kSetLocality = "locality";
inline constexpr const char* kSetAnz = "anz";
inline constexpr const char* kSetSize = "size";

struct SuiteMatrix {
  std::string name;
  std::string set;   // kSetLocality / kSetAnz / kSetSize
  u32 index = 0;     // position within its set (sorted by the set criterion)
  Coo matrix;
  MatrixMetrics metrics;
};

struct SuiteOptions {
  u64 seed = 0xD5ABD5ABull;
  // Scales matrix sizes (and non-zero budgets) down for fast test runs;
  // 1.0 reproduces the paper-scale suite.
  double scale = 1.0;
};

// All 30 matrices, locality set first, then ANZ, then size.
std::vector<SuiteMatrix> build_dsab_suite(const SuiteOptions& options = {});

// A single criterion set of 10.
std::vector<SuiteMatrix> build_dsab_set(const std::string& set,
                                        const SuiteOptions& options = {});

}  // namespace smtu::suite
