#include "formats/matrix_market.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu {
namespace {

[[noreturn]] void fail(usize line_number, const std::string& what) {
  throw std::runtime_error(format("matrix market: line %zu: %s", line_number, what.c_str()));
}

struct Header {
  enum class Layout { Coordinate, Array };
  enum class Field { Real, Integer, Pattern };
  enum class Symmetry { General, Symmetric, SkewSymmetric };

  Layout layout = Layout::Coordinate;
  Field field = Field::Real;
  Symmetry symmetry = Symmetry::General;
};

Header parse_header(const std::string& line) {
  const auto tokens = split_whitespace(line);
  if (tokens.size() != 5 || to_lower(tokens[0]) != "%%matrixmarket" ||
      to_lower(tokens[1]) != "matrix") {
    fail(1, "expected '%%MatrixMarket matrix <layout> <field> <symmetry>'");
  }
  Header header;
  const std::string layout = to_lower(tokens[2]);
  if (layout == "coordinate") header.layout = Header::Layout::Coordinate;
  else if (layout == "array") header.layout = Header::Layout::Array;
  else fail(1, "unsupported layout '" + layout + "'");

  const std::string field = to_lower(tokens[3]);
  if (field == "real") header.field = Header::Field::Real;
  else if (field == "integer") header.field = Header::Field::Integer;
  else if (field == "pattern") header.field = Header::Field::Pattern;
  else fail(1, "unsupported field '" + field + "' (complex not supported)");

  const std::string symmetry = to_lower(tokens[4]);
  if (symmetry == "general") header.symmetry = Header::Symmetry::General;
  else if (symmetry == "symmetric") header.symmetry = Header::Symmetry::Symmetric;
  else if (symmetry == "skew-symmetric") header.symmetry = Header::Symmetry::SkewSymmetric;
  else fail(1, "unsupported symmetry '" + symmetry + "'");
  return header;
}

}  // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  usize line_number = 0;

  if (!std::getline(in, line)) fail(1, "empty stream");
  ++line_number;
  const Header header = parse_header(line);

  // Skip comments and blank lines until the size line.
  std::vector<std::string_view> size_tokens;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '%') continue;
    size_tokens = split_whitespace(stripped);
    break;
  }
  if (size_tokens.empty()) fail(line_number, "missing size line");

  if (header.layout == Header::Layout::Array) {
    if (size_tokens.size() != 2) fail(line_number, "array size line needs 'rows cols'");
    const auto rows = parse_uint(size_tokens[0]);
    const auto cols = parse_uint(size_tokens[1]);
    if (!rows || !cols) fail(line_number, "bad array dimensions");
    Coo coo(*rows, *cols);
    // Array data is column-major, one value per line.
    for (Index c = 0; c < *cols; ++c) {
      const Index row_limit = header.symmetry == Header::Symmetry::General ? 0 : c;
      for (Index r = row_limit; r < *rows; ++r) {
        if (!std::getline(in, line)) fail(line_number, "truncated array data");
        ++line_number;
        const auto value = parse_double(trim(line));
        if (!value) fail(line_number, "bad array value");
        if (*value != 0.0) {
          coo.add(r, c, static_cast<float>(*value));
          if (header.symmetry != Header::Symmetry::General && r != c) {
            const float mirrored = header.symmetry == Header::Symmetry::SkewSymmetric
                                       ? -static_cast<float>(*value)
                                       : static_cast<float>(*value);
            coo.add(c, r, mirrored);
          }
        }
      }
    }
    coo.canonicalize();
    return coo;
  }

  if (size_tokens.size() != 3) fail(line_number, "coordinate size line needs 'rows cols nnz'");
  const auto rows = parse_uint(size_tokens[0]);
  const auto cols = parse_uint(size_tokens[1]);
  const auto declared_nnz = parse_uint(size_tokens[2]);
  if (!rows || !cols || !declared_nnz) fail(line_number, "bad size line");

  Coo coo(*rows, *cols);
  coo.entries().reserve(*declared_nnz);
  usize seen = 0;
  while (seen < *declared_nnz) {
    if (!std::getline(in, line)) fail(line_number, "truncated entry data");
    ++line_number;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '%') continue;
    const auto tokens = split_whitespace(stripped);
    const usize expected = header.field == Header::Field::Pattern ? 2 : 3;
    if (tokens.size() != expected) fail(line_number, "bad entry arity");
    const auto row1 = parse_uint(tokens[0]);
    const auto col1 = parse_uint(tokens[1]);
    if (!row1 || !col1 || *row1 == 0 || *col1 == 0 || *row1 > *rows || *col1 > *cols) {
      fail(line_number, "entry indices out of range");
    }
    double value = 1.0;
    if (header.field != Header::Field::Pattern) {
      const auto parsed = parse_double(tokens[2]);
      if (!parsed) fail(line_number, "bad entry value");
      value = *parsed;
    }
    const Index r = *row1 - 1;
    const Index c = *col1 - 1;
    coo.add(r, c, static_cast<float>(value));
    if (header.symmetry != Header::Symmetry::General && r != c) {
      const float mirrored = header.symmetry == Header::Symmetry::SkewSymmetric
                                 ? -static_cast<float>(value)
                                 : static_cast<float>(value);
      coo.add(c, r, mirrored);
    }
    ++seen;
  }
  coo.canonicalize();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& matrix, const std::string& comment) {
  Coo canonical = matrix;
  canonical.canonicalize();
  out << "%%MatrixMarket matrix coordinate real general\n";
  if (!comment.empty()) out << "% " << comment << '\n';
  out << canonical.rows() << ' ' << canonical.cols() << ' ' << canonical.nnz() << '\n';
  for (const CooEntry& e : canonical.entries()) {
    // max_digits10 for float: round-trips the exact stored value.
    out << e.row + 1 << ' ' << e.col + 1 << ' ' << format("%.9g", e.value) << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const Coo& matrix,
                              const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_matrix_market(out, matrix, comment);
}

}  // namespace smtu
