#include "formats/dense.hpp"

#include "support/assert.hpp"

namespace smtu {

Dense Dense::from_coo(const Coo& coo) {
  Coo canonical = coo;
  canonical.canonicalize();
  Dense dense(canonical.rows(), canonical.cols());
  for (const CooEntry& e : canonical.entries()) dense.at(e.row, e.col) = e.value;
  return dense;
}

Coo Dense::to_coo() const {
  Coo coo(rows_, cols_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) {
      const float v = at(r, c);
      if (v != 0.0f) coo.entries().push_back({r, c, v});
    }
  }
  return coo;
}

float& Dense::at(Index row, Index col) {
  SMTU_DCHECK(row < rows_ && col < cols_);
  return data_[row * cols_ + col];
}

float Dense::at(Index row, Index col) const {
  SMTU_DCHECK(row < rows_ && col < cols_);
  return data_[row * cols_ + col];
}

Dense Dense::transposed() const {
  Dense out(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

}  // namespace smtu
