// Coordinate (COO) sparse matrix: the interchange format of this project.
//
// Every other representation (CSR, CSC, JD, HiSM, simulator memory images)
// converts to and from COO, and correctness of a transposition is always
// established by comparing canonical COO forms.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace smtu {

struct CooEntry {
  Index row = 0;
  Index col = 0;
  float value = 0.0f;

  friend bool operator==(const CooEntry&, const CooEntry&) = default;
};

class Coo {
 public:
  Coo() = default;
  Coo(Index rows, Index cols) : rows_(rows), cols_(cols) {}
  Coo(Index rows, Index cols, std::vector<CooEntry> entries);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<CooEntry>& entries() const { return entries_; }
  std::vector<CooEntry>& entries() { return entries_; }

  // Appends an entry; bounds-checked.
  void add(Index row, Index col, float value);

  // Sorts row-major, merges duplicate coordinates by summation, and drops
  // explicit zeros produced by merging. Idempotent.
  void canonicalize();
  bool is_canonical() const;

  // Returns the transpose (rows/cols swapped, each entry mirrored), canonical.
  Coo transposed() const;

  // Average number of non-zeros per row (the paper's ANZ metric).
  double avg_nnz_per_row() const;

  // Exact structural + value equality after canonicalization of both sides.
  // Transposition never changes values, so exact float compare is correct.
  friend bool structurally_equal(Coo lhs, Coo rhs);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<CooEntry> entries_;
};

}  // namespace smtu
