// ELLPACK (ELL) storage — the other classic vector/SIMD sparse format: every
// row is padded to the length of the longest row, giving two dense
// rows x width arrays (column indices and values) that vectorize trivially.
// Catastrophic when one row is much longer than the rest — the skew JD
// fixes with its permutation, and HiSM sidesteps entirely.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class Ell {
 public:
  Ell() = default;

  static Ell from_coo(const Coo& coo);

  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return nnz_; }
  u32 width() const { return width_; }  // max row length

  // Row-major rows x width; padding slots carry column == kPad, value 0.
  static constexpr u32 kPad = 0xffffffffu;
  const std::vector<u32>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  // Stored slots / non-zeros — the padding waste.
  double fill_ratio() const;

  u64 storage_bytes() const;

  bool validate() const;

  std::vector<float> spmv(const std::vector<float>& x) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  usize nnz_ = 0;
  u32 width_ = 0;
  std::vector<u32> col_idx_;
  std::vector<float> values_;
};

}  // namespace smtu
