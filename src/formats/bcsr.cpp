#include "formats/bcsr.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu {

Bcsr Bcsr::from_coo(const Coo& coo, u32 block_rows, u32 block_cols) {
  SMTU_CHECK_MSG(block_rows >= 1 && block_cols >= 1, "tile dimensions must be positive");
  Coo canonical = coo;
  canonical.canonicalize();

  Bcsr bcsr;
  bcsr.rows_ = canonical.rows();
  bcsr.cols_ = canonical.cols();
  bcsr.nnz_ = canonical.nnz();
  bcsr.block_rows_ = block_rows;
  bcsr.block_cols_ = block_cols;

  const Index grid_rows = ceil_div(canonical.rows(), block_rows);

  // Tiles keyed by (block row, block col); map is ordered, giving block-CSR
  // order directly.
  std::map<std::pair<Index, Index>, std::vector<float>> tiles;
  for (const CooEntry& e : canonical.entries()) {
    const auto key = std::make_pair(e.row / block_rows, e.col / block_cols);
    auto [it, inserted] = tiles.try_emplace(key);
    if (inserted) it->second.assign(static_cast<usize>(block_rows) * block_cols, 0.0f);
    it->second[(e.row % block_rows) * block_cols + (e.col % block_cols)] = e.value;
  }

  bcsr.block_row_ptr_.assign(grid_rows + 1, 0);
  bcsr.block_col_.reserve(tiles.size());
  bcsr.values_.reserve(tiles.size() * block_rows * block_cols);
  for (const auto& [key, tile] : tiles) {
    bcsr.block_row_ptr_[key.first + 1]++;
    bcsr.block_col_.push_back(static_cast<u32>(key.second));
    bcsr.values_.insert(bcsr.values_.end(), tile.begin(), tile.end());
  }
  for (Index g = 0; g < grid_rows; ++g) bcsr.block_row_ptr_[g + 1] += bcsr.block_row_ptr_[g];
  return bcsr;
}

Coo Bcsr::to_coo() const {
  Coo coo(rows_, cols_);
  const usize tile_size = static_cast<usize>(block_rows_) * block_cols_;
  const Index grid_rows = block_row_ptr_.empty() ? 0 : block_row_ptr_.size() - 1;
  for (Index g = 0; g < grid_rows; ++g) {
    for (u32 t = block_row_ptr_[g]; t < block_row_ptr_[g + 1]; ++t) {
      const Index row0 = g * block_rows_;
      const Index col0 = static_cast<Index>(block_col_[t]) * block_cols_;
      for (u32 br = 0; br < block_rows_; ++br) {
        for (u32 bc = 0; bc < block_cols_; ++bc) {
          const float v = values_[t * tile_size + br * block_cols_ + bc];
          if (v != 0.0f) coo.entries().push_back({row0 + br, col0 + bc, v});
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

double Bcsr::fill_ratio() const {
  if (nnz_ == 0) return 0.0;
  return static_cast<double>(values_.size()) / static_cast<double>(nnz_);
}

u64 Bcsr::storage_bytes() const {
  return values_.size() * sizeof(float) + block_col_.size() * sizeof(u32) +
         block_row_ptr_.size() * sizeof(u32);
}

bool Bcsr::validate() const {
  const Index grid_rows = ceil_div(rows_, block_rows_);
  const Index grid_cols = ceil_div(cols_, block_cols_);
  if (block_row_ptr_.size() != grid_rows + 1) return false;
  if (block_row_ptr_.front() != 0 || block_row_ptr_.back() != block_col_.size()) return false;
  if (values_.size() != block_col_.size() * static_cast<usize>(block_rows_) * block_cols_) {
    return false;
  }
  for (Index g = 0; g < grid_rows; ++g) {
    if (block_row_ptr_[g] > block_row_ptr_[g + 1]) return false;
    for (u32 t = block_row_ptr_[g]; t < block_row_ptr_[g + 1]; ++t) {
      if (block_col_[t] >= grid_cols) return false;
      if (t > block_row_ptr_[g] && block_col_[t - 1] >= block_col_[t]) return false;
    }
  }
  return true;
}

Bcsr Bcsr::transposed() const {
  // Straightforward and clear: transpose via COO, then rebuild with swapped
  // tile dimensions. (A production in-place tile-transpose would avoid the
  // round trip; the COO path keeps this reference implementation obviously
  // correct, which is its role here.)
  Bcsr out = from_coo(to_coo().transposed(), block_cols_, block_rows_);
  return out;
}

std::vector<float> Bcsr::spmv(const std::vector<float>& x) const {
  SMTU_CHECK_MSG(x.size() == cols_, "spmv dimension mismatch");
  std::vector<float> y(rows_, 0.0f);
  const usize tile_size = static_cast<usize>(block_rows_) * block_cols_;
  const Index grid_rows = block_row_ptr_.empty() ? 0 : block_row_ptr_.size() - 1;
  for (Index g = 0; g < grid_rows; ++g) {
    for (u32 t = block_row_ptr_[g]; t < block_row_ptr_[g + 1]; ++t) {
      const Index row0 = g * block_rows_;
      const Index col0 = static_cast<Index>(block_col_[t]) * block_cols_;
      for (u32 br = 0; br < block_rows_ && row0 + br < rows_; ++br) {
        float acc = 0.0f;
        for (u32 bc = 0; bc < block_cols_ && col0 + bc < cols_; ++bc) {
          acc += values_[t * tile_size + br * block_cols_ + bc] * x[col0 + bc];
        }
        y[row0 + br] += acc;
      }
    }
  }
  return y;
}

}  // namespace smtu
