#include "formats/cds.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace smtu {

Cds Cds::from_coo(const Coo& coo) {
  Coo canonical = coo;
  canonical.canonicalize();

  Cds cds;
  cds.rows_ = canonical.rows();
  cds.cols_ = canonical.cols();
  cds.nnz_ = canonical.nnz();

  std::map<i64, usize> diagonal_index;
  for (const CooEntry& e : canonical.entries()) {
    diagonal_index.emplace(static_cast<i64>(e.col) - static_cast<i64>(e.row), 0);
  }
  cds.offsets_.reserve(diagonal_index.size());
  for (auto& [offset, index] : diagonal_index) {
    index = cds.offsets_.size();
    cds.offsets_.push_back(offset);
  }

  cds.values_.assign(cds.offsets_.size() * cds.rows_, 0.0f);
  for (const CooEntry& e : canonical.entries()) {
    const i64 offset = static_cast<i64>(e.col) - static_cast<i64>(e.row);
    cds.values_[diagonal_index[offset] * cds.rows_ + e.row] = e.value;
  }
  return cds;
}

Coo Cds::to_coo() const {
  Coo coo(rows_, cols_);
  for (usize d = 0; d < offsets_.size(); ++d) {
    for (Index r = 0; r < rows_; ++r) {
      const float v = values_[d * rows_ + r];
      if (v == 0.0f) continue;
      const i64 c = static_cast<i64>(r) + offsets_[d];
      SMTU_CHECK(c >= 0 && c < static_cast<i64>(cols_));
      coo.entries().push_back({r, static_cast<Index>(c), v});
    }
  }
  coo.canonicalize();
  return coo;
}

double Cds::fill_ratio() const {
  if (nnz_ == 0) return 0.0;
  return static_cast<double>(values_.size()) / static_cast<double>(nnz_);
}

bool Cds::validate() const {
  if (values_.size() != offsets_.size() * rows_) return false;
  for (usize d = 1; d < offsets_.size(); ++d) {
    if (offsets_[d - 1] >= offsets_[d]) return false;
  }
  // Every stored non-zero must map inside the matrix.
  for (usize d = 0; d < offsets_.size(); ++d) {
    for (Index r = 0; r < rows_; ++r) {
      if (values_[d * rows_ + r] == 0.0f) continue;
      const i64 c = static_cast<i64>(r) + offsets_[d];
      if (c < 0 || c >= static_cast<i64>(cols_)) return false;
    }
  }
  return true;
}

std::vector<float> Cds::spmv(const std::vector<float>& x) const {
  SMTU_CHECK_MSG(x.size() == cols_, "spmv dimension mismatch");
  std::vector<float> y(rows_, 0.0f);
  for (usize d = 0; d < offsets_.size(); ++d) {
    const i64 offset = offsets_[d];
    const Index begin = offset < 0 ? static_cast<Index>(-offset) : 0;
    const Index end =
        std::min<Index>(rows_, offset >= 0 ? (cols_ >= static_cast<u64>(offset)
                                                  ? cols_ - static_cast<u64>(offset)
                                                  : 0)
                                           : rows_);
    for (Index r = begin; r < end; ++r) {
      y[r] += values_[d * rows_ + r] * x[static_cast<Index>(static_cast<i64>(r) + offset)];
    }
  }
  return y;
}

}  // namespace smtu
