// Jagged Diagonal (JD) storage — the other vector-processor format the paper
// cites as a comparison point for HiSM (via [5]). Rows are sorted by length,
// then the k-th non-zero of every row forms one dense "jagged diagonal" that
// vectorizes across rows.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class Jagged {
 public:
  Jagged() = default;

  static Jagged from_coo(const Coo& coo);

  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return values_.size(); }
  usize diagonals() const { return diag_ptr_.empty() ? 0 : diag_ptr_.size() - 1; }

  // Permutation: perm_[i] is the original row stored at sorted position i.
  const std::vector<u32>& perm() const { return perm_; }
  const std::vector<u32>& diag_ptr() const { return diag_ptr_; }
  const std::vector<u32>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  bool validate() const;

  // y = A*x computed diagonal-by-diagonal (the vectorizable JD kernel).
  std::vector<float> spmv(const std::vector<float>& x) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<u32> perm_;
  std::vector<u32> diag_ptr_;   // start of each jagged diagonal
  std::vector<u32> col_idx_;
  std::vector<float> values_;
};

}  // namespace smtu
