#include "formats/csc.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace smtu {

Csc Csc::from_coo(const Coo& coo) {
  Coo canonical = coo;
  canonical.canonicalize();

  Csc csc;
  csc.rows_ = canonical.rows();
  csc.cols_ = canonical.cols();
  SMTU_CHECK_MSG(canonical.nnz() <= 0xffffffffULL, "CSC uses 32-bit offsets");
  csc.col_ptr_.assign(csc.cols_ + 1, 0);
  csc.row_idx_.assign(canonical.nnz(), 0);
  csc.values_.assign(canonical.nnz(), 0.0f);

  for (const CooEntry& e : canonical.entries()) csc.col_ptr_[e.col + 1]++;
  for (Index c = 0; c < csc.cols_; ++c) csc.col_ptr_[c + 1] += csc.col_ptr_[c];

  std::vector<u32> cursor(csc.col_ptr_.begin(), csc.col_ptr_.end() - 1);
  for (const CooEntry& e : canonical.entries()) {
    const u32 slot = cursor[e.col]++;
    csc.row_idx_[slot] = static_cast<u32>(e.row);
    csc.values_[slot] = e.value;
  }
  return csc;
}

Coo Csc::to_coo() const {
  Coo coo(rows_, cols_);
  coo.entries().reserve(nnz());
  for (Index c = 0; c < cols_; ++c) {
    for (u32 k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      coo.entries().push_back({row_idx_[k], c, values_[k]});
    }
  }
  return coo;
}

bool Csc::validate() const {
  if (col_ptr_.size() != cols_ + 1) return false;
  if (col_ptr_.front() != 0 || col_ptr_.back() != values_.size()) return false;
  if (row_idx_.size() != values_.size()) return false;
  for (Index c = 0; c < cols_; ++c) {
    if (col_ptr_[c] > col_ptr_[c + 1]) return false;
    for (u32 k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      if (row_idx_[k] >= rows_) return false;
      if (k > col_ptr_[c] && row_idx_[k - 1] >= row_idx_[k]) return false;
    }
  }
  return true;
}

Coo Csc::transposed_coo() const {
  Coo coo(cols_, rows_);
  coo.entries().reserve(nnz());
  for (Index c = 0; c < cols_; ++c) {
    for (u32 k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      coo.entries().push_back({c, row_idx_[k], values_[k]});
    }
  }
  return coo;
}

}  // namespace smtu
