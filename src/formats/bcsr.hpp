// Block Compressed Sparse Row (BCSR): CSR over dense r x c tiles. The
// software analogue of HiSM's level-0 blocking — tiles store *dense* data
// (zero-padded) instead of HiSM's position-tagged non-zeros, which makes
// BCSR fast on clustered matrices and wasteful on scattered ones. Its
// transpose (swap tile grid indices + transpose each dense tile) gives an
// independent blocked-transposition baseline.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class Bcsr {
 public:
  Bcsr() = default;

  static Bcsr from_coo(const Coo& coo, u32 block_rows, u32 block_cols);

  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return nnz_; }
  u32 block_rows() const { return block_rows_; }
  u32 block_cols() const { return block_cols_; }
  usize num_blocks() const { return block_col_.size(); }

  const std::vector<u32>& block_row_ptr() const { return block_row_ptr_; }
  const std::vector<u32>& block_col() const { return block_col_; }
  // Tile data, row-major within each tile, tiles in block-CSR order.
  const std::vector<float>& values() const { return values_; }

  // Stored floats / non-zeros (zero-padding waste).
  double fill_ratio() const;

  u64 storage_bytes() const;

  bool validate() const;

  // Blocked transpose: transpose the tile grid and each dense tile.
  Bcsr transposed() const;

  std::vector<float> spmv(const std::vector<float>& x) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  usize nnz_ = 0;
  u32 block_rows_ = 1;
  u32 block_cols_ = 1;
  std::vector<u32> block_row_ptr_;  // per block-row, into block_col_/tiles
  std::vector<u32> block_col_;      // block-column index of each tile
  std::vector<float> values_;
};

}  // namespace smtu
