#include "formats/ell.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace smtu {

Ell Ell::from_coo(const Coo& coo) {
  Coo canonical = coo;
  canonical.canonicalize();

  Ell ell;
  ell.rows_ = canonical.rows();
  ell.cols_ = canonical.cols();
  ell.nnz_ = canonical.nnz();

  std::vector<u32> row_fill(canonical.rows(), 0);
  for (const CooEntry& e : canonical.entries()) row_fill[e.row]++;
  ell.width_ = row_fill.empty() ? 0 : *std::max_element(row_fill.begin(), row_fill.end());

  ell.col_idx_.assign(static_cast<usize>(ell.rows_) * ell.width_, kPad);
  ell.values_.assign(static_cast<usize>(ell.rows_) * ell.width_, 0.0f);
  std::fill(row_fill.begin(), row_fill.end(), 0);
  for (const CooEntry& e : canonical.entries()) {
    const usize slot = e.row * ell.width_ + row_fill[e.row]++;
    ell.col_idx_[slot] = static_cast<u32>(e.col);
    ell.values_[slot] = e.value;
  }
  return ell;
}

Coo Ell::to_coo() const {
  Coo coo(rows_, cols_);
  coo.entries().reserve(nnz_);
  for (Index r = 0; r < rows_; ++r) {
    for (u32 k = 0; k < width_; ++k) {
      const usize slot = r * width_ + k;
      if (col_idx_[slot] == kPad) break;  // row slots fill left to right
      coo.entries().push_back({r, col_idx_[slot], values_[slot]});
    }
  }
  coo.canonicalize();
  return coo;
}

double Ell::fill_ratio() const {
  if (nnz_ == 0) return 0.0;
  return static_cast<double>(col_idx_.size()) / static_cast<double>(nnz_);
}

u64 Ell::storage_bytes() const {
  return col_idx_.size() * sizeof(u32) + values_.size() * sizeof(float);
}

bool Ell::validate() const {
  if (col_idx_.size() != static_cast<usize>(rows_) * width_) return false;
  if (values_.size() != col_idx_.size()) return false;
  usize counted = 0;
  for (Index r = 0; r < rows_; ++r) {
    bool in_padding = false;
    for (u32 k = 0; k < width_; ++k) {
      const usize slot = r * width_ + k;
      if (col_idx_[slot] == kPad) {
        in_padding = true;
        if (values_[slot] != 0.0f) return false;
      } else {
        if (in_padding) return false;  // data after padding
        if (col_idx_[slot] >= cols_) return false;
        ++counted;
      }
    }
  }
  return counted == nnz_;
}

std::vector<float> Ell::spmv(const std::vector<float>& x) const {
  SMTU_CHECK_MSG(x.size() == cols_, "spmv dimension mismatch");
  std::vector<float> y(rows_, 0.0f);
  // Column-of-slots order: the vectorizable ELL traversal.
  for (u32 k = 0; k < width_; ++k) {
    for (Index r = 0; r < rows_; ++r) {
      const usize slot = r * width_ + k;
      if (col_idx_[slot] == kPad) continue;
      y[r] += values_[slot] * x[col_idx_[slot]];
    }
  }
  return y;
}

}  // namespace smtu
