// Compressed Diagonal Storage (CDS) — the classic vector-machine format for
// banded matrices (SPARSKIT's DIA): every non-empty diagonal is stored as a
// dense column of length n, so SpMV runs as pure stride-1 vector work.
// Degenerates badly when many diagonals are sparsely populated, which is
// exactly the trade-off HiSM targets; kept here as a comparison point.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class Cds {
 public:
  Cds() = default;

  static Cds from_coo(const Coo& coo);

  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return nnz_; }
  usize num_diagonals() const { return offsets_.size(); }

  // Diagonal offsets (col - row), ascending.
  const std::vector<i64>& offsets() const { return offsets_; }
  // values()[d * rows + r] is element (r, r + offset[d]), 0 when absent.
  const std::vector<float>& values() const { return values_; }

  // Stored elements (including explicit zeros) / non-zeros: the format's
  // waste factor on this matrix.
  double fill_ratio() const;

  bool validate() const;

  std::vector<float> spmv(const std::vector<float>& x) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  usize nnz_ = 0;
  std::vector<i64> offsets_;
  std::vector<float> values_;
};

}  // namespace smtu
