#include "formats/sell.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace smtu {

SellCSigma SellCSigma::from_coo(const Coo& coo, u32 chunk, u32 sigma) {
  SMTU_CHECK_MSG(chunk >= 1, "SELL-C-sigma chunk height must be positive");
  Coo canonical = coo;
  canonical.canonicalize();

  SellCSigma sell;
  sell.rows_ = canonical.rows();
  sell.cols_ = canonical.cols();
  sell.nnz_ = canonical.nnz();
  sell.chunk_ = chunk;
  sell.sigma_ = sigma;

  const usize rows = canonical.rows();
  std::vector<u32> length(rows, 0);
  for (const CooEntry& e : canonical.entries()) length[e.row]++;

  // σ-window sort: permutation of row ids, longest first inside each window.
  // Stable, so ties keep the original order (deterministic layout).
  std::vector<u32> order(rows);
  std::iota(order.begin(), order.end(), 0);
  const usize window = sigma == 0 ? std::max<usize>(1, rows) : sigma;
  for (usize begin = 0; begin < rows; begin += window) {
    const usize end = std::min(rows, begin + window);
    std::stable_sort(order.begin() + begin, order.begin() + end,
                     [&](u32 a, u32 b) { return length[a] > length[b]; });
  }

  const usize num_chunks = (rows + chunk - 1) / chunk;
  const usize padded_rows = num_chunks * chunk;
  sell.perm_.assign(padded_rows, kPadRow);
  sell.row_len_.assign(padded_rows, 0);
  for (usize p = 0; p < rows; ++p) {
    sell.perm_[p] = order[p];
    sell.row_len_[p] = length[order[p]];
  }

  sell.chunk_width_.assign(num_chunks, 0);
  sell.chunk_ptr_.assign(num_chunks + 1, 0);
  for (usize c = 0; c < num_chunks; ++c) {
    u32 width = 0;
    for (usize r = 0; r < chunk; ++r) width = std::max(width, sell.row_len_[c * chunk + r]);
    sell.chunk_width_[c] = width;
    sell.chunk_ptr_[c + 1] = sell.chunk_ptr_[c] + width * chunk;
  }

  const usize slots = sell.chunk_ptr_[num_chunks];
  sell.col_idx_.assign(slots, 0);
  sell.values_.assign(slots, 0.0f);

  // Canonical COO is row-major with sorted columns, so filling left to right
  // keeps each row's slots in ascending-column order (the Csr::spmv order).
  std::vector<u32> sorted_pos(rows);  // original row -> sorted position
  for (usize p = 0; p < rows; ++p) sorted_pos[order[p]] = static_cast<u32>(p);
  std::vector<u32> fill(rows, 0);
  for (const CooEntry& e : canonical.entries()) {
    const u32 p = sorted_pos[e.row];
    const u32 c = p / chunk;
    const u32 lane = p % chunk;
    const usize slot = sell.chunk_ptr_[c] + static_cast<usize>(fill[e.row]++) * chunk + lane;
    sell.col_idx_[slot] = static_cast<u32>(e.col);
    sell.values_[slot] = e.value;
  }
  return sell;
}

Coo SellCSigma::to_coo() const {
  Coo coo(rows_, cols_);
  coo.entries().reserve(nnz_);
  for (usize p = 0; p < perm_.size(); ++p) {
    if (perm_[p] == kPadRow) continue;
    const u32 c = static_cast<u32>(p) / chunk_;
    const u32 lane = static_cast<u32>(p) % chunk_;
    for (u32 k = 0; k < row_len_[p]; ++k) {
      const usize slot = chunk_ptr_[c] + static_cast<usize>(k) * chunk_ + lane;
      coo.entries().push_back({perm_[p], col_idx_[slot], values_[slot]});
    }
  }
  coo.canonicalize();
  return coo;
}

double SellCSigma::fill_ratio() const {
  if (nnz_ == 0) return 0.0;
  return static_cast<double>(col_idx_.size()) / static_cast<double>(nnz_);
}

u64 SellCSigma::padded_slots() const { return col_idx_.size() - nnz_; }

u64 SellCSigma::storage_bytes() const {
  return col_idx_.size() * sizeof(u32) + values_.size() * sizeof(float) +
         chunk_width_.size() * sizeof(u32) + perm_.size() * sizeof(u32);
}

bool SellCSigma::validate() const {
  const usize num_chunks = chunk_width_.size();
  if (perm_.size() != num_chunks * chunk_ || row_len_.size() != perm_.size()) return false;
  if (chunk_ptr_.size() != num_chunks + 1 || chunk_ptr_[0] != 0) return false;
  if (col_idx_.size() != chunk_ptr_[num_chunks] || values_.size() != col_idx_.size())
    return false;
  if (perm_.size() < rows_) return false;

  std::vector<bool> seen(rows_, false);
  usize counted = 0;
  for (usize p = 0; p < perm_.size(); ++p) {
    if (p >= rows_) {
      // Positions past the last real row are padding.
      if (perm_[p] != kPadRow || row_len_[p] != 0) return false;
      continue;
    }
    if (perm_[p] >= rows_ || seen[perm_[p]]) return false;  // not a permutation
    seen[perm_[p]] = true;
    const u32 c = static_cast<u32>(p) / chunk_;
    if (row_len_[p] > chunk_width_[c]) return false;
    for (u32 k = 0; k < chunk_width_[c]; ++k) {
      const usize slot = chunk_ptr_[c] + static_cast<usize>(k) * chunk_ + (p % chunk_);
      if (k < row_len_[p]) {
        if (col_idx_[slot] >= cols_) return false;
        ++counted;
      } else if (col_idx_[slot] != 0 || values_[slot] != 0.0f) {
        return false;  // padding slots must be (col 0, value 0)
      }
    }
  }
  for (usize c = 0; c < num_chunks; ++c) {
    if (chunk_ptr_[c + 1] - chunk_ptr_[c] != static_cast<usize>(chunk_width_[c]) * chunk_)
      return false;
  }
  return counted == nnz_;
}

std::vector<float> SellCSigma::spmv(const std::vector<float>& x) const {
  SMTU_CHECK_MSG(x.size() == cols_, "spmv dimension mismatch");
  std::vector<float> y(rows_, 0.0f);
  // Streams padding slots exactly like the vector kernel: +-0.0 adds that
  // never perturb the accumulator bits.
  for (usize p = 0; p < perm_.size(); ++p) {
    if (perm_[p] == kPadRow) continue;
    const u32 c = static_cast<u32>(p) / chunk_;
    float acc = 0.0f;
    for (u32 k = 0; k < chunk_width_[c]; ++k) {
      const usize slot = chunk_ptr_[c] + static_cast<usize>(k) * chunk_ + (p % chunk_);
      acc += values_[slot] * x[col_idx_[slot]];
    }
    y[perm_[p]] = acc;
  }
  return y;
}

}  // namespace smtu
