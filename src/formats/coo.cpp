#include "formats/coo.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu {
namespace {

bool row_major_less(const CooEntry& a, const CooEntry& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

}  // namespace

Coo::Coo(Index rows, Index cols, std::vector<CooEntry> entries)
    : rows_(rows), cols_(cols), entries_(std::move(entries)) {
  for (const CooEntry& e : entries_) {
    SMTU_CHECK_MSG(e.row < rows_ && e.col < cols_,
                   format("entry (%llu,%llu) outside %llux%llu",
                          static_cast<unsigned long long>(e.row),
                          static_cast<unsigned long long>(e.col),
                          static_cast<unsigned long long>(rows_),
                          static_cast<unsigned long long>(cols_)));
  }
}

void Coo::add(Index row, Index col, float value) {
  SMTU_CHECK_MSG(row < rows_ && col < cols_, "COO entry out of bounds");
  entries_.push_back({row, col, value});
}

void Coo::canonicalize() {
  std::sort(entries_.begin(), entries_.end(), row_major_less);
  usize write = 0;
  for (usize read = 0; read < entries_.size();) {
    CooEntry merged = entries_[read++];
    while (read < entries_.size() && entries_[read].row == merged.row &&
           entries_[read].col == merged.col) {
      merged.value += entries_[read++].value;
    }
    if (merged.value != 0.0f) entries_[write++] = merged;
  }
  entries_.resize(write);
}

bool Coo::is_canonical() const {
  for (usize i = 0; i < entries_.size(); ++i) {
    if (entries_[i].value == 0.0f) return false;
    if (i > 0 && !row_major_less(entries_[i - 1], entries_[i])) return false;
  }
  return true;
}

Coo Coo::transposed() const {
  Coo result(cols_, rows_);
  result.entries_.reserve(entries_.size());
  for (const CooEntry& e : entries_) result.entries_.push_back({e.col, e.row, e.value});
  result.canonicalize();
  return result;
}

double Coo::avg_nnz_per_row() const {
  if (rows_ == 0) return 0.0;
  return static_cast<double>(entries_.size()) / static_cast<double>(rows_);
}

bool structurally_equal(Coo lhs, Coo rhs) {
  if (lhs.rows() != rhs.rows() || lhs.cols() != rhs.cols()) return false;
  lhs.canonicalize();
  rhs.canonicalize();
  return lhs.entries() == rhs.entries();
}

}  // namespace smtu
