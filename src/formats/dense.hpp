// Row-major dense matrix. Used for oracle transposes on small matrices and
// for the paper's §II observation that dense transposition is a strided copy.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class Dense {
 public:
  Dense() = default;
  Dense(Index rows, Index cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  static Dense from_coo(const Coo& coo);
  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  float& at(Index row, Index col);
  float at(Index row, Index col) const;

  // Strided-copy transpose (the trivial dense algorithm of §II).
  Dense transposed() const;

  friend bool operator==(const Dense&, const Dense&) = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<float> data_;
};

}  // namespace smtu
