// Matrix Market (.mtx) reader/writer.
//
// The paper's benchmark matrices come from the Matrix Market collection; the
// suite in this reproduction is synthetic (no network access), but we support
// the format so users can run every experiment on the original matrices by
// dropping the .mtx files in and pointing the bench binaries at them.
//
// Supported: `matrix coordinate {real,integer,pattern} {general,symmetric,
// skew-symmetric}` and `matrix array real general`. Complex is rejected.
#pragma once

#include <iosfwd>
#include <string>

#include "formats/coo.hpp"

namespace smtu {

// Throws std::runtime_error with a line-numbered message on malformed input.
Coo read_matrix_market(std::istream& in);
Coo read_matrix_market_file(const std::string& path);

// Writes `matrix coordinate real general` with 1-based indices.
void write_matrix_market(std::ostream& out, const Coo& matrix,
                         const std::string& comment = {});
void write_matrix_market_file(const std::string& path, const Coo& matrix,
                              const std::string& comment = {});

}  // namespace smtu
