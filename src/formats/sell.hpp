// SELL-C-σ (Kreutzer et al., arXiv:1307.6209): the unified SIMD-friendly
// sparse format. Rows are sorted by descending length inside windows of σ
// consecutive rows, then grouped into chunks of C rows; each chunk is padded
// only to the length of its own longest row and stored lane-major, so a
// C-lane vector unit streams it with no per-row control flow. σ trades
// sorting scope (σ=1 keeps the original order, σ>=rows is a global sort)
// against how far apart a row may land from its neighbours.
//
// Degenerate corners: C=1/σ=1 is CSR with per-row widths; C=rows/σ=1 is ELL.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class SellCSigma {
 public:
  SellCSigma() = default;

  // Chunk height C must be positive; sigma == 0 means "sort globally"
  // (equivalent to sigma >= rows). Sorting is stable, so equal-length rows
  // keep their original relative order and the format is deterministic.
  static SellCSigma from_coo(const Coo& coo, u32 chunk, u32 sigma);

  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return nnz_; }
  u32 chunk() const { return chunk_; }        // C
  u32 sigma() const { return sigma_; }        // σ (0 = global sort)
  u32 num_chunks() const { return static_cast<u32>(chunk_width_.size()); }

  // Sorted-position p (0 <= p < num_chunks*C) holds original row perm()[p];
  // positions past the last real row carry kPadRow. row_len()[p] is that
  // row's non-zero count (0 for padding positions).
  static constexpr u32 kPadRow = 0xffffffffu;
  const std::vector<u32>& perm() const { return perm_; }
  const std::vector<u32>& row_len() const { return row_len_; }

  // Per-chunk width (longest row in the chunk) and slot offsets: chunk c
  // occupies slots [chunk_ptr()[c], chunk_ptr()[c+1]), always C lanes wide.
  const std::vector<u32>& chunk_width() const { return chunk_width_; }
  const std::vector<u32>& chunk_ptr() const { return chunk_ptr_; }

  // Lane-major chunk storage: the k-th non-zero of the row at sorted
  // position p = c*C + r sits at slot chunk_ptr()[c] + k*C + r. Padding
  // slots carry column 0 and value +0.0f, so a vector kernel may stream
  // them: acc + (value * x[0]) adds a signed zero, which never changes the
  // accumulator bits (the accumulator is never -0.0 when it starts at +0.0).
  const std::vector<u32>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  // Stored slots / non-zeros — the chunk-padding waste (ELL's fill_ratio
  // with per-chunk instead of global width; always <= Ell::fill_ratio()).
  double fill_ratio() const;
  u64 padded_slots() const;  // stored slots minus real non-zeros

  // values + col_idx slots, plus the per-chunk widths and the permutation —
  // the arrays a SpMV kernel actually has to read.
  u64 storage_bytes() const;

  bool validate() const;

  // Host reference walk in the exact kernel order: per sorted row, ascending
  // slot k, acc += value * x[col] in f32 — bit-identical to Csr::spmv.
  std::vector<float> spmv(const std::vector<float>& x) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  usize nnz_ = 0;
  u32 chunk_ = 1;
  u32 sigma_ = 1;
  std::vector<u32> perm_;
  std::vector<u32> row_len_;
  std::vector<u32> chunk_width_;
  std::vector<u32> chunk_ptr_;
  std::vector<u32> col_idx_;
  std::vector<float> values_;
};

}  // namespace smtu
