// Compressed Row Storage (CRS/CSR): the baseline format of the paper.
//
// Terminology follows the paper (Fig. 8): AN is the array of non-zeros stored
// row-wise, JA the per-element column index, IA the per-row start pointers
// (length rows+1 here; the paper's Fig. 8 uses the same convention with a
// final sentinel).
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class Csr {
 public:
  Csr() = default;

  // Builds from a (not necessarily canonical) COO matrix.
  static Csr from_coo(const Coo& coo);

  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return values_.size(); }

  const std::vector<u32>& row_ptr() const { return row_ptr_; }  // IA
  const std::vector<u32>& col_idx() const { return col_idx_; }  // JA
  const std::vector<float>& values() const { return values_; }  // AN

  // Number of stored bytes (AN + JA + IA) for the storage-footprint ablation.
  u64 storage_bytes() const;

  // Checks the structural invariants (monotone IA, in-range JA, sorted rows).
  // `require_sorted_rows` may be false for freshly transposed output whose
  // rows are populated in source-row order (they are in fact sorted for the
  // Pissanetsky algorithm, but callers converting from simulator memory may
  // not guarantee it).
  bool validate(bool require_sorted_rows = true) const;

  // The paper's baseline: Pissanetsky's CSR transposition (Fig. 9). Builds
  // IAT/JAT/ANT with a column histogram, a scan-add, and a permutation pass.
  Csr transposed_pissanetsky() const;

  // y = A*x convenience routine (used by examples and JD cross-checks).
  std::vector<float> spmv(const std::vector<float>& x) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<u32> row_ptr_;
  std::vector<u32> col_idx_;
  std::vector<float> values_;
};

}  // namespace smtu
