// Compressed Column Storage: the column-major dual of CSR. Converting a CSR
// matrix to CSC *is* a transposition of the index structure, which gives an
// independent second reference for the transpose tests.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

class Csc {
 public:
  Csc() = default;

  static Csc from_coo(const Coo& coo);

  Coo to_coo() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  usize nnz() const { return values_.size(); }

  const std::vector<u32>& col_ptr() const { return col_ptr_; }
  const std::vector<u32>& row_idx() const { return row_idx_; }
  const std::vector<float>& values() const { return values_; }

  bool validate() const;

  // Reinterprets the CSC structure of A as the CSR structure of A^T — an O(1)
  // relabeling that yields the transpose in COO form.
  Coo transposed_coo() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<u32> col_ptr_;
  std::vector<u32> row_idx_;
  std::vector<float> values_;
};

}  // namespace smtu
