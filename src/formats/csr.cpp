#include "formats/csr.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace smtu {

Csr Csr::from_coo(const Coo& coo) {
  Coo canonical = coo;
  canonical.canonicalize();

  Csr csr;
  csr.rows_ = canonical.rows();
  csr.cols_ = canonical.cols();
  SMTU_CHECK_MSG(canonical.nnz() <= 0xffffffffULL, "CSR uses 32-bit offsets");
  csr.row_ptr_.assign(csr.rows_ + 1, 0);
  csr.col_idx_.reserve(canonical.nnz());
  csr.values_.reserve(canonical.nnz());

  for (const CooEntry& e : canonical.entries()) {
    csr.row_ptr_[e.row + 1]++;
    csr.col_idx_.push_back(static_cast<u32>(e.col));
    csr.values_.push_back(e.value);
  }
  for (usize r = 0; r < csr.rows_; ++r) csr.row_ptr_[r + 1] += csr.row_ptr_[r];
  return csr;
}

Coo Csr::to_coo() const {
  Coo coo(rows_, cols_);
  coo.entries().reserve(nnz());
  for (Index r = 0; r < rows_; ++r) {
    for (u32 k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      coo.entries().push_back({r, col_idx_[k], values_[k]});
    }
  }
  return coo;
}

u64 Csr::storage_bytes() const {
  return static_cast<u64>(values_.size()) * sizeof(float) +
         static_cast<u64>(col_idx_.size()) * sizeof(u32) +
         static_cast<u64>(row_ptr_.size()) * sizeof(u32);
}

bool Csr::validate(bool require_sorted_rows) const {
  if (row_ptr_.size() != rows_ + 1) return false;
  if (row_ptr_.front() != 0) return false;
  if (row_ptr_.back() != values_.size()) return false;
  if (col_idx_.size() != values_.size()) return false;
  for (Index r = 0; r < rows_; ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1]) return false;
    for (u32 k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] >= cols_) return false;
      if (require_sorted_rows && k > row_ptr_[r] && col_idx_[k - 1] >= col_idx_[k]) return false;
    }
  }
  return true;
}

Csr Csr::transposed_pissanetsky() const {
  Csr out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(cols_ + 1, 0);
  out.col_idx_.assign(nnz(), 0);
  out.values_.assign(nnz(), 0.0f);

  // Phase 1 (Fig. 9 lines 1-2): per-column non-zero counts, shifted by one so
  // the scan leaves start pointers in place.
  for (const u32 col : col_idx_) out.row_ptr_[col + 1]++;

  // Phase 2 (line 3): exclusive scan-add.
  for (Index c = 0; c < cols_; ++c) out.row_ptr_[c + 1] += out.row_ptr_[c];

  // Phase 3 (lines 4-13): permutation pass. IAT entries are advanced as rows
  // of the transpose fill; we keep a scratch cursor so IA stays intact.
  std::vector<u32> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (Index r = 0; r < rows_; ++r) {
    for (u32 k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const u32 col = col_idx_[k];
      const u32 slot = cursor[col]++;
      out.col_idx_[slot] = static_cast<u32>(r);
      out.values_[slot] = values_[k];
    }
  }
  return out;
}

std::vector<float> Csr::spmv(const std::vector<float>& x) const {
  SMTU_CHECK_MSG(x.size() == cols_, "spmv dimension mismatch");
  std::vector<float> y(rows_, 0.0f);
  for (Index r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (u32 k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

}  // namespace smtu
