#include "formats/jagged.hpp"

#include <algorithm>
#include <numeric>

#include "formats/csr.hpp"
#include "support/assert.hpp"

namespace smtu {

Jagged Jagged::from_coo(const Coo& coo) {
  const Csr csr = Csr::from_coo(coo);

  Jagged jd;
  jd.rows_ = csr.rows();
  jd.cols_ = csr.cols();

  jd.perm_.resize(csr.rows());
  std::iota(jd.perm_.begin(), jd.perm_.end(), 0u);
  auto row_len = [&](u32 r) { return csr.row_ptr()[r + 1] - csr.row_ptr()[r]; };
  std::stable_sort(jd.perm_.begin(), jd.perm_.end(),
                   [&](u32 a, u32 b) { return row_len(a) > row_len(b); });

  const u32 max_len = jd.perm_.empty() ? 0 : row_len(jd.perm_.front());
  jd.diag_ptr_.assign(max_len + 1, 0);
  jd.col_idx_.reserve(csr.nnz());
  jd.values_.reserve(csr.nnz());

  for (u32 d = 0; d < max_len; ++d) {
    jd.diag_ptr_[d] = static_cast<u32>(jd.values_.size());
    for (const u32 row : jd.perm_) {
      if (row_len(row) <= d) break;  // rows are sorted by decreasing length
      const u32 k = csr.row_ptr()[row] + d;
      jd.col_idx_.push_back(csr.col_idx()[k]);
      jd.values_.push_back(csr.values()[k]);
    }
  }
  if (!jd.diag_ptr_.empty()) jd.diag_ptr_[max_len] = static_cast<u32>(jd.values_.size());
  return jd;
}

Coo Jagged::to_coo() const {
  Coo coo(rows_, cols_);
  coo.entries().reserve(nnz());
  for (usize d = 0; d + 1 < diag_ptr_.size(); ++d) {
    const u32 begin = diag_ptr_[d];
    const u32 end = diag_ptr_[d + 1];
    for (u32 k = begin; k < end; ++k) {
      coo.entries().push_back({perm_[k - begin], col_idx_[k], values_[k]});
    }
  }
  return coo;
}

bool Jagged::validate() const {
  if (perm_.size() != rows_) return false;
  std::vector<bool> seen(rows_, false);
  for (const u32 row : perm_) {
    if (row >= rows_ || seen[row]) return false;
    seen[row] = true;
  }
  u32 prev_len = 0xffffffffu;
  for (usize d = 0; d + 1 < diag_ptr_.size(); ++d) {
    if (diag_ptr_[d] > diag_ptr_[d + 1]) return false;
    const u32 len = diag_ptr_[d + 1] - diag_ptr_[d];
    if (len > prev_len) return false;  // diagonals shrink monotonically
    prev_len = len;
  }
  for (const u32 col : col_idx_) {
    if (col >= cols_) return false;
  }
  return diag_ptr_.empty() || diag_ptr_.back() == values_.size();
}

std::vector<float> Jagged::spmv(const std::vector<float>& x) const {
  SMTU_CHECK_MSG(x.size() == cols_, "spmv dimension mismatch");
  std::vector<float> y(rows_, 0.0f);
  for (usize d = 0; d + 1 < diag_ptr_.size(); ++d) {
    const u32 begin = diag_ptr_[d];
    const u32 end = diag_ptr_[d + 1];
    for (u32 k = begin; k < end; ++k) {
      y[perm_[k - begin]] += values_[k] * x[col_idx_[k]];
    }
  }
  return y;
}

}  // namespace smtu
