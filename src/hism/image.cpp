#include "hism/image.hpp"

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu {
namespace {

void put_u32(std::vector<u8>& bytes, usize offset, u32 value) {
  bytes[offset + 0] = static_cast<u8>(value);
  bytes[offset + 1] = static_cast<u8>(value >> 8);
  bytes[offset + 2] = static_cast<u8>(value >> 16);
  bytes[offset + 3] = static_cast<u8>(value >> 24);
}

u32 get_u32(std::span<const u8> bytes, u64 offset) {
  SMTU_CHECK_MSG(offset + 4 <= bytes.size(), "HiSM image read out of bounds");
  return static_cast<u32>(bytes[offset]) | static_cast<u32>(bytes[offset + 1]) << 8 |
         static_cast<u32>(bytes[offset + 2]) << 16 | static_cast<u32>(bytes[offset + 3]) << 24;
}

}  // namespace

u64 block_array_image_bytes(usize entries, bool has_lengths) {
  const u64 n = entries;
  return round_up(2 * n, 4) + 4 * n + (has_lengths ? 4 * n : 0);
}

HismImage build_hism_image(const HismMatrix& hism, Addr base) {
  SMTU_CHECK_MSG(base % 4 == 0, "HiSM image base must be 4-byte aligned");
  SMTU_CHECK_MSG(hism.validate(), "cannot serialize an invalid HiSM matrix");

  HismImage image;
  image.base = base;
  image.levels = hism.num_levels();
  image.section = hism.section();
  image.rows = hism.rows();
  image.cols = hism.cols();

  // Pass 1: assign addresses, level 0 first (children precede parents so the
  // slot of a parent entry can be filled in one pass).
  std::vector<std::vector<Addr>> addr_of(image.levels);
  Addr cursor = base;
  for (u32 k = 0; k < image.levels; ++k) {
    addr_of[k].reserve(hism.level(k).size());
    for (const BlockArray& block : hism.level(k)) {
      addr_of[k].push_back(cursor);
      cursor += block_array_image_bytes(block.size(), /*has_lengths=*/k > 0);
    }
  }
  image.bytes.assign(cursor - base, 0);
  image.root_addr = addr_of[image.levels - 1][hism.root_id()];
  image.root_len = static_cast<u32>(hism.root().size());

  // Pass 2: fill content.
  for (u32 k = 0; k < image.levels; ++k) {
    const auto& pool = hism.level(k);
    for (usize b = 0; b < pool.size(); ++b) {
      const BlockArray& block = pool[b];
      const usize at = addr_of[k][b] - base;
      const usize n = block.size();
      const usize slots_at = at + round_up(2 * n, 4);
      for (usize i = 0; i < n; ++i) {
        image.bytes[at + 2 * i] = block.pos[i].row;
        image.bytes[at + 2 * i + 1] = block.pos[i].col;
        const u32 slot_value =
            k == 0 ? block.slot[i] : static_cast<u32>(addr_of[k - 1][block.slot[i]]);
        put_u32(image.bytes, slots_at + 4 * i, slot_value);
        if (k > 0) put_u32(image.bytes, slots_at + 4 * n + 4 * i, block.child_len[i]);
      }
    }
  }
  SMTU_CHECK_MSG(cursor <= 0xffffffffULL, "HiSM image exceeds 32-bit pointer range");
  return image;
}

HismMatrix decode_hism_image(std::span<const u8> memory, Addr memory_base, Addr root_addr,
                             u32 root_len, u32 levels, u32 section, Index rows, Index cols) {
  SMTU_CHECK(levels >= 1);
  SMTU_CHECK(section >= 2 && section <= HismMatrix::kMaxSection);

  std::vector<std::vector<BlockArray>> pools(levels);

  struct Decoder {
    std::vector<std::vector<BlockArray>>& pools;
    std::span<const u8> memory;
    Addr memory_base;

    u32 decode(Addr addr, u32 len, u32 level) {
      SMTU_CHECK_MSG(addr >= memory_base, "block address before image base");
      const u64 at = addr - memory_base;
      const u64 n = len;
      SMTU_CHECK_MSG(at + 2 * n <= memory.size(), "block positions out of bounds");
      const u64 slots_at = at + round_up(2 * n, 4);

      BlockArray block;
      block.pos.reserve(n);
      block.slot.reserve(n);
      if (level > 0) block.child_len.reserve(n);
      for (u64 i = 0; i < n; ++i) {
        block.pos.push_back({memory[at + 2 * i], memory[at + 2 * i + 1]});
        const u32 slot = get_u32(memory, slots_at + 4 * i);
        if (level == 0) {
          block.slot.push_back(slot);
        } else {
          const u32 child_len = get_u32(memory, slots_at + 4 * n + 4 * i);
          const u32 child_id = decode(slot, child_len, level - 1);
          block.slot.push_back(child_id);
          block.child_len.push_back(child_len);
        }
      }
      auto& pool = pools[level];
      pool.push_back(std::move(block));
      return static_cast<u32>(pool.size() - 1);
    }
  };

  Decoder decoder{pools, memory, memory_base};
  const u32 root_id = decoder.decode(root_addr, root_len, levels - 1);
  return HismMatrix::assemble(section, rows, cols, std::move(pools), root_id);
}

}  // namespace smtu
