// Storage statistics for HiSM, backing the paper's §II claims (8-bit
// positions vs. 32-bit CRS indices; 2-5% higher-level overhead at s = 64).
#pragma once

#include "hism/hism.hpp"

namespace smtu {

struct HismStats {
  usize nnz = 0;
  u32 levels = 0;
  // Per-level block-array count and total stored entries.
  std::vector<usize> blocks_per_level;
  std::vector<usize> entries_per_level;
  // Paper layout bytes: 2 per position pair + 4 per slot, + 4 per length
  // entry at levels >= 1 (padding excluded).
  u64 storage_bytes = 0;
  u64 level0_bytes = 0;
  // Fraction of storage spent on the hierarchy above level 0. The paper
  // reports ~2-5% for s = 64.
  double overhead_fraction = 0.0;
  // Mean entries per non-empty level-0 block (vector-filling efficiency).
  double avg_block_fill = 0.0;
};

HismStats compute_stats(const HismMatrix& hism);

}  // namespace smtu
