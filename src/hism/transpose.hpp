// Software reference for HiSM transposition.
//
// §III of the paper proves that transposing every s^2-block at every level —
// swapping each stored (row, col) pair — transposes the whole matrix. These
// routines implement that directly in C++ and serve as the oracle the
// simulated STM kernel is verified against.
#pragma once

#include "hism/hism.hpp"

namespace smtu {

// Transposes one block-array: swaps row/col of every position and restores
// row-major order (the order in which the STM drains the s x s memory:
// column-wise in old coordinates is row-wise in new ones).
BlockArray block_transposed(const BlockArray& block);

// Whole-matrix transpose: every block at every level, dimensions swapped.
// Pool ids are untouched, mirroring the paper's in-place property (the
// transposed matrix occupies exactly the original storage).
HismMatrix transposed(const HismMatrix& hism);

}  // namespace smtu
