#include "hism/transpose.hpp"

namespace smtu {

BlockArray block_transposed(const BlockArray& block) {
  BlockArray out = block;
  for (BlockPos& pos : out.pos) std::swap(pos.row, pos.col);
  sort_block_row_major(out);
  return out;
}

HismMatrix transposed(const HismMatrix& hism) {
  HismMatrix out = hism;
  for (u32 k = 0; k < out.num_levels(); ++k) {
    for (BlockArray& block : out.level(k)) block = block_transposed(block);
  }
  out.swap_dims();
  return out;
}

}  // namespace smtu
