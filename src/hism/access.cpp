#include "hism/access.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu {
namespace {

constexpr u32 digit(Index coord, u32 level, u32 section) {
  return static_cast<u32>((coord / ipow(section, level)) % section);
}

// Range of entries in a row-major-sorted block whose row position equals r.
std::pair<usize, usize> row_range(const BlockArray& block, u8 r) {
  const auto begin = std::lower_bound(
      block.pos.begin(), block.pos.end(), r,
      [](const BlockPos& pos, u8 row) { return pos.row < row; });
  const auto end = std::upper_bound(
      block.pos.begin(), block.pos.end(), r,
      [](u8 row, const BlockPos& pos) { return row < pos.row; });
  return {static_cast<usize>(begin - block.pos.begin()),
          static_cast<usize>(end - block.pos.begin())};
}

// Index of the entry at exactly (r, c), or npos. Binary search requires
// row-major order, which only level 0 guarantees (higher levels may be
// column-major); `linear` forces a scan there.
usize find_entry(const BlockArray& block, u8 r, u8 c, bool linear) {
  const BlockPos target{r, c};
  if (linear) {
    for (usize i = 0; i < block.size(); ++i) {
      if (block.pos[i] == target) return i;
    }
    return static_cast<usize>(-1);
  }
  const auto it = std::lower_bound(block.pos.begin(), block.pos.end(), target,
                                   [](const BlockPos& a, const BlockPos& b) {
                                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                                   });
  if (it == block.pos.end() || !(*it == target)) return static_cast<usize>(-1);
  return static_cast<usize>(it - block.pos.begin());
}

}  // namespace

std::optional<float> hism_get(const HismMatrix& hism, Index row, Index col) {
  SMTU_CHECK_MSG(row < hism.rows() && col < hism.cols(), "hism_get out of bounds");
  const u32 section = hism.section();
  u32 level = hism.num_levels() - 1;
  const BlockArray* block = &hism.root();
  while (true) {
    const usize at = find_entry(*block, static_cast<u8>(digit(row, level, section)),
                                static_cast<u8>(digit(col, level, section)),
                                /*linear=*/level > 0);
    if (at == static_cast<usize>(-1)) return std::nullopt;
    if (level == 0) return std::bit_cast<float>(block->slot[at]);
    block = &hism.level(level - 1)[block->slot[at]];
    --level;
  }
}

std::vector<std::pair<Index, float>> hism_extract_row(const HismMatrix& hism, Index row) {
  SMTU_CHECK_MSG(row < hism.rows(), "hism_extract_row out of bounds");
  std::vector<std::pair<Index, float>> out;
  const u32 section = hism.section();

  struct Walker {
    const HismMatrix& hism;
    Index row;
    u32 section;
    std::vector<std::pair<Index, float>>& out;

    void walk(const BlockArray& block, u32 level, Index col_offset) {
      const u8 r = static_cast<u8>(digit(row, level, section));
      const u64 span = ipow(section, level);
      if (level == 0) {
        // Level 0 is always row-major: one contiguous, ordered range.
        const auto [begin, end] = row_range(block, r);
        for (usize i = begin; i < end; ++i) {
          out.emplace_back(col_offset + block.pos[i].col * span,
                           std::bit_cast<float>(block.slot[i]));
        }
        return;
      }
      // Higher levels may be column-major; collect matches in column order
      // so the output stays sorted either way.
      std::vector<usize> matches;
      for (usize i = 0; i < block.size(); ++i) {
        if (block.pos[i].row == r) matches.push_back(i);
      }
      std::sort(matches.begin(), matches.end(), [&](usize a, usize b) {
        return block.pos[a].col < block.pos[b].col;
      });
      for (const usize i : matches) {
        walk(hism.level(level - 1)[block.slot[i]], level - 1,
             col_offset + block.pos[i].col * span);
      }
    }
  };
  Walker{hism, row, section, out}.walk(hism.root(), hism.num_levels() - 1, 0);
  return out;
}

std::vector<std::pair<Index, float>> hism_extract_col(const HismMatrix& hism, Index col) {
  SMTU_CHECK_MSG(col < hism.cols(), "hism_extract_col out of bounds");
  std::vector<std::pair<Index, float>> out;
  const u32 section = hism.section();

  struct Walker {
    const HismMatrix& hism;
    Index col;
    u32 section;
    std::vector<std::pair<Index, float>>& out;

    void walk(const BlockArray& block, u32 level, Index row_offset) {
      const u8 c = static_cast<u8>(digit(col, level, section));
      const u64 span = ipow(section, level);
      // Collect matches in row order so the output stays sorted whatever
      // the block's internal ordering.
      std::vector<usize> matches;
      for (usize i = 0; i < block.size(); ++i) {
        if (block.pos[i].col == c) matches.push_back(i);
      }
      std::sort(matches.begin(), matches.end(), [&](usize a, usize b) {
        return block.pos[a].row < block.pos[b].row;
      });
      for (const usize i : matches) {
        const Index row = row_offset + block.pos[i].row * span;
        if (level == 0) {
          out.emplace_back(row, std::bit_cast<float>(block.slot[i]));
        } else {
          walk(hism.level(level - 1)[block.slot[i]], level - 1, row);
        }
      }
    }
  };
  Walker{hism, col, section, out}.walk(hism.root(), hism.num_levels() - 1, 0);
  return out;
}

}  // namespace smtu
