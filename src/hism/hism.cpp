#include "hism/hism.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu {
namespace {

// Base-s digit k of a coordinate: the position of the element at hierarchy
// level k (§III of the paper: i = i_0 + i_1 s + ... + i_q s^q).
constexpr u32 digit(Index coord, u32 level, u32 section) {
  return static_cast<u32>((coord / ipow(section, level)) % section);
}

// Hierarchical sort key: most-significant digits first, so sorting groups
// entries into top-level blocks, then sub-blocks. The digit order at levels
// >= 1 realizes the requested high-level storage order directly in the key —
// no post-build re-sort pass. Level 0 is always row-major (the paper's
// element layout).
u64 hierarchical_key(Index row, Index col, u32 levels, u32 section,
                     HighLevelOrder high_order) {
  const bool col_first = high_order == HighLevelOrder::kColMajor;
  u64 key = 0;
  for (u32 k = levels; k-- > 1;) {
    const u32 r = digit(row, k, section);
    const u32 c = digit(col, k, section);
    key = (key * section + (col_first ? c : r)) * section + (col_first ? r : c);
  }
  return (key * section + digit(row, 0, section)) * section + digit(col, 0, section);
}

}  // namespace

void sort_block_row_major(BlockArray& block) {
  const usize n = block.size();
  std::vector<u32> order(n);
  for (usize i = 0; i < n; ++i) order[i] = static_cast<u32>(i);
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    const BlockPos& pa = block.pos[a];
    const BlockPos& pb = block.pos[b];
    return pa.row != pb.row ? pa.row < pb.row : pa.col < pb.col;
  });

  BlockArray sorted;
  sorted.pos.reserve(n);
  sorted.slot.reserve(n);
  if (!block.child_len.empty()) sorted.child_len.reserve(n);
  for (const u32 i : order) {
    sorted.pos.push_back(block.pos[i]);
    sorted.slot.push_back(block.slot[i]);
    if (!block.child_len.empty()) sorted.child_len.push_back(block.child_len[i]);
  }
  block = std::move(sorted);
}

HismMatrix HismMatrix::from_coo(const Coo& coo, u32 section, HighLevelOrder high_order) {
  SMTU_CHECK_MSG(section >= 2 && section <= kMaxSection, "section size must be in [2, 256]");

  Coo canonical = coo;
  canonical.canonicalize();

  HismMatrix hism;
  hism.section_ = section;
  hism.rows_ = canonical.rows();
  hism.cols_ = canonical.cols();

  const Index max_dim = std::max<Index>({canonical.rows(), canonical.cols(), 1});
  const u32 levels = std::max<u32>(1, log_ceil(max_dim, section));
  hism.levels_.resize(levels);

  // Sort entries by hierarchical key so each block at every level is a
  // contiguous range, already in the requested storage order. Keys are
  // precomputed — evaluating the digit decomposition inside the comparator
  // would dominate construction time for paper-scale matrices.
  std::vector<std::pair<u64, CooEntry>> keyed;
  keyed.reserve(canonical.nnz());
  for (const CooEntry& e : canonical.entries()) {
    keyed.emplace_back(hierarchical_key(e.row, e.col, levels, section, high_order), e);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CooEntry> entries;
  entries.reserve(keyed.size());
  for (const auto& [key, entry] : keyed) entries.push_back(entry);

  // Recursive bottom-up construction over the sorted range.
  struct Builder {
    HismMatrix& hism;
    const std::vector<CooEntry>& entries;
    u32 section;

    // Builds the block covering entries [begin, end) at `level`; returns its
    // id within the level's pool.
    u32 build(usize begin, usize end, u32 level) {
      BlockArray block;
      if (level == 0) {
        block.pos.reserve(end - begin);
        block.slot.reserve(end - begin);
        for (usize i = begin; i < end; ++i) {
          block.pos.push_back({static_cast<u8>(digit(entries[i].row, 0, section)),
                               static_cast<u8>(digit(entries[i].col, 0, section))});
          block.slot.push_back(std::bit_cast<u32>(entries[i].value));
        }
      } else {
        usize i = begin;
        while (i < end) {
          const u32 r = digit(entries[i].row, level, section);
          const u32 c = digit(entries[i].col, level, section);
          usize j = i;
          while (j < end && digit(entries[j].row, level, section) == r &&
                 digit(entries[j].col, level, section) == c) {
            ++j;
          }
          const u32 child = build(i, j, level - 1);
          block.pos.push_back({static_cast<u8>(r), static_cast<u8>(c)});
          block.slot.push_back(child);
          // Length of the child block-array itself (its entry count), not of
          // the element range it covers — they differ above level 1.
          block.child_len.push_back(static_cast<u32>(hism.levels_[level - 1][child].size()));
          i = j;
        }
      }
      auto& pool = hism.levels_[level];
      pool.push_back(std::move(block));
      return static_cast<u32>(pool.size() - 1);
    }
  };

  Builder builder{hism, entries, section};
  hism.root_id_ = builder.build(0, entries.size(), levels - 1);
  return hism;
}

HismMatrix HismMatrix::assemble(u32 section, Index rows, Index cols,
                                std::vector<std::vector<BlockArray>> levels, u32 root_id) {
  HismMatrix hism;
  hism.section_ = section;
  hism.rows_ = rows;
  hism.cols_ = cols;
  hism.levels_ = std::move(levels);
  hism.root_id_ = root_id;
  SMTU_CHECK_MSG(hism.validate(), "assembled HiSM matrix is structurally invalid");
  return hism;
}

Coo HismMatrix::to_coo() const {
  Coo coo(rows_, cols_);
  coo.entries().reserve(nnz());

  struct Walker {
    const HismMatrix& hism;
    Coo& coo;

    void walk(const BlockArray& block, u32 level, Index row_off, Index col_off) {
      const u64 span = ipow(hism.section_, level);
      for (usize i = 0; i < block.size(); ++i) {
        const Index row = row_off + block.pos[i].row * span;
        const Index col = col_off + block.pos[i].col * span;
        if (level == 0) {
          coo.entries().push_back({row, col, std::bit_cast<float>(block.slot[i])});
        } else {
          walk(hism.levels_[level - 1][block.slot[i]], level - 1, row, col);
        }
      }
    }
  };

  if (!levels_.empty()) {
    Walker{*this, coo}.walk(root(), num_levels() - 1, 0, 0);
  }
  coo.canonicalize();
  return coo;
}

usize HismMatrix::nnz() const {
  usize total = 0;
  if (!levels_.empty()) {
    for (const BlockArray& block : levels_[0]) total += block.size();
  }
  return total;
}

const std::vector<BlockArray>& HismMatrix::level(u32 k) const {
  SMTU_CHECK(k < levels_.size());
  return levels_[k];
}

std::vector<BlockArray>& HismMatrix::level(u32 k) {
  SMTU_CHECK(k < levels_.size());
  return levels_[k];
}

bool HismMatrix::validate() const {
  if (levels_.empty()) return false;
  if (section_ < 2 || section_ > kMaxSection) return false;
  if (root_id_ >= levels_.back().size()) return false;

  // The padded dimension s^q must cover the matrix.
  if (ipow(section_, num_levels()) < std::max<Index>({rows_, cols_, 1})) return false;

  std::vector<std::vector<u32>> reference_count(levels_.size());
  for (u32 k = 0; k + 1 < num_levels(); ++k) {
    reference_count[k].assign(levels_[k].size(), 0);
  }

  for (u32 k = 0; k < num_levels(); ++k) {
    for (const BlockArray& block : levels_[k]) {
      if (block.slot.size() != block.pos.size()) return false;
      const bool has_children = k > 0;
      if (has_children && block.child_len.size() != block.pos.size()) return false;
      if (!has_children && !block.child_len.empty()) return false;
      if (block.size() > static_cast<usize>(section_) * section_) return false;
      // Entries must be strictly sorted: row-major always qualifies; levels
      // above 0 may instead be column-major (the paper's free choice).
      bool row_major_ok = true;
      bool col_major_ok = k > 0;
      for (usize i = 1; i < block.size(); ++i) {
        const BlockPos& prev = block.pos[i - 1];
        const BlockPos& cur = block.pos[i];
        if (!(prev.row != cur.row ? prev.row < cur.row : prev.col < cur.col)) {
          row_major_ok = false;
        }
        if (!(prev.col != cur.col ? prev.col < cur.col : prev.row < cur.row)) {
          col_major_ok = false;
        }
      }
      if (!row_major_ok && !col_major_ok) return false;
      for (usize i = 0; i < block.size(); ++i) {
        if (block.pos[i].row >= section_ || block.pos[i].col >= section_) return false;
        if (has_children) {
          const u32 child = block.slot[i];
          if (child >= levels_[k - 1].size()) return false;
          if (block.child_len[i] != levels_[k - 1][child].size()) return false;
          reference_count[k - 1][child]++;
        }
      }
    }
  }

  // Every non-root block must be referenced exactly once (tree shape).
  for (u32 k = 0; k + 1 < num_levels(); ++k) {
    for (const u32 count : reference_count[k]) {
      if (count != 1) return false;
    }
  }
  return true;
}

}  // namespace smtu
