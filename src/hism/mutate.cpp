#include "hism/mutate.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace smtu {
namespace {

constexpr u32 digit(Index coord, u32 level, u32 section) {
  return static_cast<u32>((coord / ipow(section, level)) % section);
}

bool pos_less(const BlockPos& a, const BlockPos& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

// Index where (r, c) is or should be inserted (row-major order).
usize lower_bound_pos(const BlockArray& block, BlockPos target) {
  const auto it = std::lower_bound(block.pos.begin(), block.pos.end(), target, pos_less);
  return static_cast<usize>(it - block.pos.begin());
}

void insert_entry(BlockArray& block, usize at, BlockPos pos, u32 slot, bool has_lengths,
                  u32 child_len) {
  block.pos.insert(block.pos.begin() + static_cast<std::ptrdiff_t>(at), pos);
  block.slot.insert(block.slot.begin() + static_cast<std::ptrdiff_t>(at), slot);
  if (has_lengths) {
    block.child_len.insert(block.child_len.begin() + static_cast<std::ptrdiff_t>(at),
                           child_len);
  }
}

void erase_entry(BlockArray& block, usize at, bool has_lengths) {
  block.pos.erase(block.pos.begin() + static_cast<std::ptrdiff_t>(at));
  block.slot.erase(block.slot.begin() + static_cast<std::ptrdiff_t>(at));
  if (has_lengths) {
    block.child_len.erase(block.child_len.begin() + static_cast<std::ptrdiff_t>(at));
  }
}

}  // namespace

void hism_set(HismMatrix& hism, Index row, Index col, float value) {
  SMTU_CHECK_MSG(row < hism.rows() && col < hism.cols(), "hism_set out of bounds");
  SMTU_CHECK_MSG(value != 0.0f, "hism_set with zero; use hism_remove");
  const u32 section = hism.section();

  // Descent path: (level, pool index, entry index within the block).
  struct PathStep {
    u32 level;
    u32 block_id;
    usize entry;
  };
  std::vector<PathStep> path;

  u32 level = hism.num_levels() - 1;
  u32 block_id = hism.root_id();
  while (true) {
    BlockArray& block = hism.level(level)[block_id];
    const BlockPos pos{static_cast<u8>(digit(row, level, section)),
                       static_cast<u8>(digit(col, level, section))};
    const usize at = lower_bound_pos(block, pos);
    const bool present = at < block.size() && block.pos[at] == pos;

    if (level == 0) {
      const u32 bits = std::bit_cast<u32>(value);
      if (present) {
        block.slot[at] = bits;  // overwrite, structure unchanged
        return;
      }
      insert_entry(block, at, pos, bits, /*has_lengths=*/false, 0);
      break;
    }

    if (present) {
      path.push_back({level, block_id, at});
      block_id = block.slot[at];
      --level;
      continue;
    }

    // Materialize the missing chain: a fresh single-entry block-array at
    // every level below, then the level-0 element.
    u32 child_id = 0;
    for (u32 k = 0; k < level; ++k) {
      BlockArray fresh;
      fresh.pos.push_back({static_cast<u8>(digit(row, k, section)),
                           static_cast<u8>(digit(col, k, section))});
      if (k == 0) {
        fresh.slot.push_back(std::bit_cast<u32>(value));
      } else {
        fresh.slot.push_back(child_id);
        fresh.child_len.push_back(1);
      }
      hism.level(k).push_back(std::move(fresh));
      child_id = static_cast<u32>(hism.level(k).size() - 1);
    }
    // The push_back above may reallocate pools; re-take the reference.
    BlockArray& parent = hism.level(level)[block_id];
    insert_entry(parent, lower_bound_pos(parent, pos), pos, child_id,
                 /*has_lengths=*/true, 1);
    break;
  }

  // Fix the lengths vector along the descent path (child sizes grew).
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    BlockArray& block = hism.level(it->level)[it->block_id];
    block.child_len[it->entry] =
        static_cast<u32>(hism.level(it->level - 1)[block.slot[it->entry]].size());
  }
  SMTU_DCHECK(hism.validate());
}

bool hism_remove(HismMatrix& hism, Index row, Index col) {
  SMTU_CHECK_MSG(row < hism.rows() && col < hism.cols(), "hism_remove out of bounds");
  const u32 section = hism.section();

  struct PathStep {
    u32 level;
    u32 block_id;
    usize entry;
  };
  std::vector<PathStep> path;

  u32 level = hism.num_levels() - 1;
  u32 block_id = hism.root_id();
  while (true) {
    BlockArray& block = hism.level(level)[block_id];
    const BlockPos pos{static_cast<u8>(digit(row, level, section)),
                       static_cast<u8>(digit(col, level, section))};
    const usize at = lower_bound_pos(block, pos);
    if (at >= block.size() || !(block.pos[at] == pos)) return false;
    path.push_back({level, block_id, at});
    if (level == 0) break;
    block_id = block.slot[at];
    --level;
  }

  // Remove bottom-up, pruning blocks that become empty (the root may stay
  // empty; it is the matrix handle).
  bool remove_child = true;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    BlockArray& block = hism.level(it->level)[it->block_id];
    if (remove_child) {
      erase_entry(block, it->entry, /*has_lengths=*/it->level > 0);
      remove_child = block.size() == 0 && it->level + 1 < hism.num_levels();
    } else {
      block.child_len[it->entry] =
          static_cast<u32>(hism.level(it->level - 1)[block.slot[it->entry]].size());
    }
  }
  hism_compact(hism);
  return true;
}

void hism_compact(HismMatrix& hism) {
  std::vector<std::vector<BlockArray>> pools(hism.num_levels());

  struct Copier {
    const HismMatrix& hism;
    std::vector<std::vector<BlockArray>>& pools;

    u32 copy(const BlockArray& block, u32 level) {
      BlockArray clone;
      clone.pos = block.pos;
      if (level == 0) {
        clone.slot = block.slot;
      } else {
        clone.slot.reserve(block.size());
        clone.child_len.reserve(block.size());
        for (usize i = 0; i < block.size(); ++i) {
          const u32 child = copy(hism.level(level - 1)[block.slot[i]], level - 1);
          clone.slot.push_back(child);
          clone.child_len.push_back(static_cast<u32>(pools[level - 1][child].size()));
        }
      }
      pools[level].push_back(std::move(clone));
      return static_cast<u32>(pools[level].size() - 1);
    }
  };

  Copier copier{hism, pools};
  const u32 root = copier.copy(hism.root(), hism.num_levels() - 1);
  hism = HismMatrix::assemble(hism.section(), hism.rows(), hism.cols(), std::move(pools),
                              root);
}

}  // namespace smtu
