// Block-structured HiSM operations beyond transposition: addition and
// scaling. Addition merges the hierarchies block-by-block (union of block
// sparsity patterns, element-wise sums at level 0), staying within the
// format the whole way — no round trip through a flat representation.
#pragma once

#include "hism/hism.hpp"

namespace smtu {

// C = A + B. Both operands must share dimensions and section size.
// Elements cancelling to exactly 0.0f are dropped, like Coo::canonicalize.
HismMatrix hism_add(const HismMatrix& a, const HismMatrix& b);

// C = alpha * A (alpha != 0 keeps the structure; alpha == 0 yields empty).
HismMatrix hism_scale(const HismMatrix& a, float alpha);

}  // namespace smtu
