// Hierarchical Sparse Matrix (HiSM) storage format, after Stathis et al.
//
// An M x N matrix is padded to s^q x s^q and recursively partitioned into
// s x s blocks ("s^2-blocks"). A non-empty block is stored as a block-array:
// for each stored element, an (row, col) position within the block (8 bits
// each, since s <= 256) plus a 32-bit payload. At level 0 the payload is the
// element value; at level k >= 1 it is a pointer to a level k-1 block-array,
// accompanied by that array's length (the "lengths vector" of the paper).
//
// q = max(ceil(log_s M), ceil(log_s N)) levels cover the whole matrix; the
// matrix is referenced by its top block-array and that array's length.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace smtu {

// Position of a stored element inside its s x s block. s <= 256 keeps these
// in one byte each — the format's storage advantage over CRS's 32-bit column
// indices (§II of the paper).
struct BlockPos {
  u8 row = 0;
  u8 col = 0;

  friend bool operator==(const BlockPos&, const BlockPos&) = default;
};

// One s^2-blockarray. Parallel arrays: pos[i] locates entry i in the block;
// slot[i] holds the value bits (level 0) or the child block-array id
// (level >= 1); child_len[i] (level >= 1 only) mirrors the format's lengths
// vector and must equal the size of the referenced child array.
struct BlockArray {
  std::vector<BlockPos> pos;
  std::vector<u32> slot;
  std::vector<u32> child_len;

  usize size() const { return pos.size(); }
};

// Storage order of entries within higher-level block-arrays. §II: level-0
// arrays are row-wise; for higher levels the paper's Fig. 2 stores level 1
// column-wise and notes the choice "can be chosen freely and is not
// restricted by the format". Both orders are supported; everything
// downstream (kernels, images, access) is order-agnostic.
enum class HighLevelOrder : u8 { kRowMajor, kColMajor };

class HismMatrix {
 public:
  // Maximum section size representable with 8-bit block positions.
  static constexpr u32 kMaxSection = 256;

  HismMatrix() = default;

  // Builds the hierarchy from a COO matrix for vector section size `section`.
  // Level-0 block-arrays are ordered row-wise (the paper's layout);
  // `high_order` selects the ordering of levels >= 1.
  static HismMatrix from_coo(const Coo& coo, u32 section,
                             HighLevelOrder high_order = HighLevelOrder::kRowMajor);

  // Assembles a matrix from pre-built block-array pools (used by the memory
  // image decoder); aborts if the result does not validate().
  static HismMatrix assemble(u32 section, Index rows, Index cols,
                             std::vector<std::vector<BlockArray>> levels, u32 root_id);

  Coo to_coo() const;

  u32 section() const { return section_; }
  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  u32 num_levels() const { return static_cast<u32>(levels_.size()); }
  usize nnz() const;

  // Block-array pools. level 0 holds element arrays; the top level holds
  // exactly one array (the root).
  const std::vector<BlockArray>& level(u32 k) const;
  std::vector<BlockArray>& level(u32 k);

  u32 root_id() const { return root_id_; }
  const BlockArray& root() const { return levels_.back()[root_id_]; }

  // Structural invariants: position bounds, pointer validity, length-vector
  // consistency, sorted entries (row- or column-major per level), and that
  // every non-root array is referenced exactly once.
  bool validate() const;

  // Swaps the logical dimensions; used by the transpose routines.
  void swap_dims() { std::swap(rows_, cols_); }

 private:
  u32 section_ = 0;
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<std::vector<BlockArray>> levels_;
  u32 root_id_ = 0;
};

// Sorts a block-array's entries row-major by position (the canonical storage
// order); parallel arrays follow their entry.
void sort_block_row_major(BlockArray& block);

}  // namespace smtu
