#include "hism/stats.hpp"

namespace smtu {

HismStats compute_stats(const HismMatrix& hism) {
  HismStats stats;
  stats.nnz = hism.nnz();
  stats.levels = hism.num_levels();
  stats.blocks_per_level.resize(stats.levels);
  stats.entries_per_level.resize(stats.levels);

  for (u32 k = 0; k < stats.levels; ++k) {
    usize entries = 0;
    for (const BlockArray& block : hism.level(k)) entries += block.size();
    stats.blocks_per_level[k] = hism.level(k).size();
    stats.entries_per_level[k] = entries;

    const u64 per_entry = k == 0 ? 6 : 10;  // pos(2) + slot(4) [+ length(4)]
    const u64 bytes = per_entry * entries;
    stats.storage_bytes += bytes;
    if (k == 0) stats.level0_bytes = bytes;
  }

  if (stats.storage_bytes > 0) {
    stats.overhead_fraction =
        static_cast<double>(stats.storage_bytes - stats.level0_bytes) /
        static_cast<double>(stats.storage_bytes);
  }
  if (!stats.blocks_per_level.empty() && stats.blocks_per_level[0] > 0) {
    stats.avg_block_fill = static_cast<double>(stats.entries_per_level[0]) /
                           static_cast<double>(stats.blocks_per_level[0]);
  }
  return stats;
}

}  // namespace smtu
