#include "hism/ops.hpp"

#include <bit>

#include "support/assert.hpp"

namespace smtu {
namespace {

// Recursive block merge. Returns the id of the merged block-array in
// `pools` at `level`, or -1 when everything cancelled.
struct Merger {
  const HismMatrix& a;
  const HismMatrix& b;
  std::vector<std::vector<BlockArray>>& pools;

  // Copies a subtree of one operand verbatim into the result pools.
  u32 copy_subtree(const HismMatrix& source, const BlockArray& block, u32 level) {
    BlockArray clone;
    clone.pos = block.pos;
    if (level == 0) {
      clone.slot = block.slot;
    } else {
      clone.slot.reserve(block.size());
      clone.child_len.reserve(block.size());
      for (usize i = 0; i < block.size(); ++i) {
        const u32 child =
            copy_subtree(source, source.level(level - 1)[block.slot[i]], level - 1);
        clone.slot.push_back(child);
        clone.child_len.push_back(static_cast<u32>(pools[level - 1][child].size()));
      }
    }
    pools[level].push_back(std::move(clone));
    return static_cast<u32>(pools[level].size() - 1);
  }

  // Merges two position-sorted block-arrays at `level`; -1 on full cancel.
  i64 merge(const BlockArray& lhs, const BlockArray& rhs, u32 level) {
    BlockArray merged;
    usize i = 0;
    usize j = 0;
    auto less = [](const BlockPos& x, const BlockPos& y) {
      return x.row != y.row ? x.row < y.row : x.col < y.col;
    };
    while (i < lhs.size() || j < rhs.size()) {
      const bool take_lhs =
          j >= rhs.size() || (i < lhs.size() && less(lhs.pos[i], rhs.pos[j]));
      const bool take_rhs =
          i >= lhs.size() || (j < rhs.size() && less(rhs.pos[j], lhs.pos[i]));
      if (take_lhs) {
        merged.pos.push_back(lhs.pos[i]);
        if (level == 0) {
          merged.slot.push_back(lhs.slot[i]);
        } else {
          const u32 child = copy_subtree(a, a.level(level - 1)[lhs.slot[i]], level - 1);
          merged.slot.push_back(child);
          merged.child_len.push_back(static_cast<u32>(pools[level - 1][child].size()));
        }
        ++i;
      } else if (take_rhs) {
        merged.pos.push_back(rhs.pos[j]);
        if (level == 0) {
          merged.slot.push_back(rhs.slot[j]);
        } else {
          const u32 child = copy_subtree(b, b.level(level - 1)[rhs.slot[j]], level - 1);
          merged.slot.push_back(child);
          merged.child_len.push_back(static_cast<u32>(pools[level - 1][child].size()));
        }
        ++j;
      } else {
        // Same position in both operands.
        if (level == 0) {
          const float sum = std::bit_cast<float>(lhs.slot[i]) +
                            std::bit_cast<float>(rhs.slot[j]);
          if (sum != 0.0f) {
            merged.pos.push_back(lhs.pos[i]);
            merged.slot.push_back(std::bit_cast<u32>(sum));
          }
        } else {
          const i64 child = merge(a.level(level - 1)[lhs.slot[i]],
                                  b.level(level - 1)[rhs.slot[j]], level - 1);
          if (child >= 0) {
            merged.pos.push_back(lhs.pos[i]);
            merged.slot.push_back(static_cast<u32>(child));
            merged.child_len.push_back(
                static_cast<u32>(pools[level - 1][static_cast<usize>(child)].size()));
          }
        }
        ++i;
        ++j;
      }
    }
    if (merged.size() == 0 && level != pools.size() - 1) return -1;
    pools[level].push_back(std::move(merged));
    return static_cast<i64>(pools[level].size() - 1);
  }
};

}  // namespace

HismMatrix hism_add(const HismMatrix& a, const HismMatrix& b) {
  SMTU_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                 "hism_add operand dimensions differ");
  SMTU_CHECK_MSG(a.section() == b.section(), "hism_add operand sections differ");
  SMTU_CHECK_MSG(a.num_levels() == b.num_levels(), "hism_add operand level counts differ");

  std::vector<std::vector<BlockArray>> pools(a.num_levels());
  Merger merger{a, b, pools};
  const i64 root = merger.merge(a.root(), b.root(), a.num_levels() - 1);
  SMTU_CHECK(root >= 0);  // the top level always materializes, possibly empty
  return HismMatrix::assemble(a.section(), a.rows(), a.cols(), std::move(pools),
                              static_cast<u32>(root));
}

HismMatrix hism_scale(const HismMatrix& a, float alpha) {
  if (alpha == 0.0f) {
    return HismMatrix::from_coo(Coo(a.rows(), a.cols()), a.section());
  }
  HismMatrix scaled = a;
  for (BlockArray& block : scaled.level(0)) {
    for (u32& bits : block.slot) {
      bits = std::bit_cast<u32>(std::bit_cast<float>(bits) * alpha);
    }
  }
  return scaled;
}

}  // namespace smtu
