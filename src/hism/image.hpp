// Serialization of a HiSM matrix into the byte-addressable memory of the
// simulated machine, and decoding back.
//
// Block-array layout at a 4-byte-aligned address A for n entries at level k:
//
//   A            .. A + 2n          : position pairs, entry i at A + 2i as
//                                     (row byte, col byte)
//   P = align4(A + 2n)
//   P            .. P + 4n          : 32-bit little-endian slots — value bits
//                                     at level 0, absolute child block-array
//                                     address at level >= 1
//   P + 4n       .. P + 8n          : (level >= 1 only) 32-bit child lengths,
//                                     the paper's "lengths vector"
//
// The matrix is referenced by (root address, root length), exactly as §II
// describes. The transpose kernel rewrites positions, slots, and lengths in
// place; no allocation is needed for the transposed matrix.
#pragma once

#include <span>
#include <vector>

#include "hism/hism.hpp"
#include "support/types.hpp"

namespace smtu {

struct HismImage {
  std::vector<u8> bytes;  // image content; bytes[0] lives at address `base`
  Addr base = 0;
  Addr root_addr = 0;
  u32 root_len = 0;
  u32 levels = 0;
  u32 section = 0;
  Index rows = 0;
  Index cols = 0;
};

// Bytes occupied by one block-array (including alignment padding).
u64 block_array_image_bytes(usize entries, bool has_lengths);

// Serializes `hism` with the image starting at `base` (must be 4-aligned).
HismImage build_hism_image(const HismMatrix& hism, Addr base);

// Decodes an image from a memory snapshot. `memory` is the machine memory
// starting at address `memory_base`; the root and shape parameters come from
// the original HismImage (transposition changes none of them, only rows/cols
// swap — pass them swapped when decoding a transposed image).
HismMatrix decode_hism_image(std::span<const u8> memory, Addr memory_base, Addr root_addr,
                             u32 root_len, u32 levels, u32 section, Index rows, Index cols);

}  // namespace smtu
