// Incremental mutation of a HiSM matrix: set (insert or overwrite) and
// remove single elements while maintaining every format invariant — sorted
// block-arrays, consistent lengths vectors, and a hierarchy with no
// orphaned block-arrays.
//
// Insertion descends the hierarchy, growing block-arrays and materializing
// missing blocks along the path; ancestors' lengths-vector entries are
// fixed up on the way back. Removal deletes the element and prunes emptied
// blocks upward, then compacts the pools (dropping unreferenced arrays) so
// validate() holds after every operation.
//
// These routines require the default row-major ordering at every level
// (HighLevelOrder::kRowMajor — binary search relies on it); matrices built
// column-major are for kernel-facing layouts and are read-only here.
#pragma once

#include "hism/hism.hpp"

namespace smtu {

// Sets (row, col) to `value` (non-zero); overwrites an existing element.
void hism_set(HismMatrix& hism, Index row, Index col, float value);

// Removes the element at (row, col); returns false when absent.
bool hism_remove(HismMatrix& hism, Index row, Index col);

// Rebuilds the block-array pools keeping only arrays reachable from the
// root (removal can orphan arrays). Idempotent; called by hism_remove.
void hism_compact(HismMatrix& hism);

}  // namespace smtu
