// Random access into a HiSM matrix: element lookup and row/column
// extraction by hierarchical descent. These are the access primitives a
// format needs to be adoptable beyond whole-matrix kernels; their cost
// profile (log_s descent per element, block-local scans for slices) is
// itself part of the format's story.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "hism/hism.hpp"

namespace smtu {

// Value at (row, col), or nullopt when the position holds no stored
// element. O(q * log s^2): one binary search per hierarchy level.
std::optional<float> hism_get(const HismMatrix& hism, Index row, Index col);

// All stored elements of one row as (column, value), ascending columns.
// Visits only the block-arrays whose row range intersects `row`.
std::vector<std::pair<Index, float>> hism_extract_row(const HismMatrix& hism, Index row);

// All stored elements of one column as (row, value), ascending rows.
std::vector<std::pair<Index, float>> hism_extract_col(const HismMatrix& hism, Index col);

}  // namespace smtu
