#include "support/json.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu {

std::string JsonWriter::escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          escaped += format("\\u%04x", c);
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

void JsonWriter::before_value() {
  SMTU_CHECK_MSG(!emitted_root_ || !stack_.empty(), "JSON document already complete");
  if (!stack_.empty()) {
    if (stack_.back() == Scope::kObject) {
      SMTU_CHECK_MSG(pending_key_, "object member needs a key first");
      pending_key_ = false;
    } else if (!first_in_scope_.back()) {
      out_ << ',';
    }
    first_in_scope_.back() = false;
  } else {
    emitted_root_ = true;
  }
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  SMTU_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_,
                 "mismatched end_object");
  out_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) emitted_root_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  SMTU_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray, "mismatched end_array");
  out_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) emitted_root_ = true;
}

void JsonWriter::key(const std::string& name) {
  SMTU_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                 "key outside of an object");
  SMTU_CHECK_MSG(!pending_key_, "two keys in a row");
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  // before_value must not add another comma for this member.
  first_in_scope_.back() = true;
}

void JsonWriter::value(const std::string& text) {
  before_value();
  out_ << '"' << escape(text) << '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  before_value();
  if (std::isfinite(number)) {
    out_ << format("%.12g", number);
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
}

void JsonWriter::value(i64 number) {
  before_value();
  out_ << format("%lld", static_cast<long long>(number));
}

void JsonWriter::value(u64 number) {
  before_value();
  out_ << format("%llu", static_cast<unsigned long long>(number));
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void write_table_as_json(std::ostream& out, const TextTable& table) {
  JsonWriter json(out);
  json.begin_array();
  for (usize r = 0; r < table.rows(); ++r) {
    json.begin_object();
    for (usize c = 0; c < table.columns(); ++c) {
      json.key(table.header()[c]);
      const std::string& cell = table.row(r)[c];
      if (const auto integer = parse_int(cell)) {
        json.value(*integer);
      } else if (const auto number = parse_double(cell)) {
        json.value(*number);
      } else {
        json.value(cell);
      }
    }
    json.end_object();
  }
  json.end_array();
  out << '\n';
}

}  // namespace smtu
