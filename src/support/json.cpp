#include "support/json.hpp"

#include <cmath>
#include <cstdlib>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace smtu {

std::string JsonWriter::escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          escaped += format("\\u%04x", c);
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

void JsonWriter::before_value() {
  SMTU_CHECK_MSG(!emitted_root_ || !stack_.empty(), "JSON document already complete");
  if (!stack_.empty()) {
    if (stack_.back() == Scope::kObject) {
      SMTU_CHECK_MSG(pending_key_, "object member needs a key first");
      pending_key_ = false;
    } else if (!first_in_scope_.back()) {
      out_ << ',';
    }
    first_in_scope_.back() = false;
  } else {
    emitted_root_ = true;
  }
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  SMTU_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_,
                 "mismatched end_object");
  out_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) emitted_root_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  SMTU_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray, "mismatched end_array");
  out_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) emitted_root_ = true;
}

void JsonWriter::key(const std::string& name) {
  SMTU_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                 "key outside of an object");
  SMTU_CHECK_MSG(!pending_key_, "two keys in a row");
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  // before_value must not add another comma for this member.
  first_in_scope_.back() = true;
}

void JsonWriter::value(const std::string& text) {
  before_value();
  out_ << '"' << escape(text) << '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  before_value();
  if (std::isfinite(number)) {
    out_ << format("%.12g", number);
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
}

void JsonWriter::value(i64 number) {
  before_value();
  out_ << format("%lld", static_cast<long long>(number));
}

void JsonWriter::value(u64 number) {
  before_value();
  out_ << format("%llu", static_cast<unsigned long long>(number));
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void JsonWriter::raw(std::string_view text) {
  before_value();
  out_ << text;
}

void write_table_as_json(std::ostream& out, const TextTable& table) {
  JsonWriter json(out);
  json.begin_array();
  for (usize r = 0; r < table.rows(); ++r) {
    json.begin_object();
    for (usize c = 0; c < table.columns(); ++c) {
      json.key(table.header()[c]);
      const std::string& cell = table.row(r)[c];
      if (const auto integer = parse_int(cell)) {
        json.value(*integer);
      } else if (const auto number = parse_double(cell)) {
        json.value(*number);
      } else {
        json.value(cell);
      }
    }
    json.end_object();
  }
  json.end_array();
  out << '\n';
}

// ---- JsonValue -------------------------------------------------------------

bool JsonValue::as_bool() const {
  SMTU_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  SMTU_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

i64 JsonValue::as_i64() const { return static_cast<i64>(as_double()); }

u64 JsonValue::as_u64() const {
  const double number = as_double();
  SMTU_CHECK_MSG(number >= 0.0, "JSON number is negative");
  return static_cast<u64>(number);
}

const std::string& JsonValue::as_string() const {
  SMTU_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SMTU_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  SMTU_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

usize JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  SMTU_CHECK_MSG(false, "JSON value has no size");
  return 0;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  SMTU_CHECK_MSG(value != nullptr, "missing JSON key " + std::string(key));
  return *value;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool flag) {
  JsonValue value;
  value.kind_ = Kind::kBool;
  value.bool_ = flag;
  return value;
}

JsonValue JsonValue::make_number(double number) {
  JsonValue value;
  value.kind_ = Kind::kNumber;
  value.number_ = number;
  return value;
}

JsonValue JsonValue::make_string(std::string text) {
  JsonValue value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(text);
  return value;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue value;
  value.kind_ = Kind::kArray;
  value.items_ = std::move(items);
  return value;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue value;
  value.kind_ = Kind::kObject;
  value.members_ = std::move(members);
  return value;
}

// ---- parser ----------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value(0);
    if (value) {
      skip_whitespace();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON document");
        value.reset();
      }
    }
    if (!value && error) *error = error_;
    return value;
  }

 private:
  static constexpr usize kMaxDepth = 256;

  std::optional<JsonValue> parse_value(usize depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string();
      case 't': return parse_literal("true", JsonValue::make_bool(true));
      case 'f': return parse_literal("false", JsonValue::make_bool(false));
      case 'n': return parse_literal("null", JsonValue::make_null());
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_object(usize depth) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    skip_whitespace();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::optional<JsonValue> key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      std::optional<JsonValue> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      members.emplace_back(key->as_string(), std::move(*value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::make_object(std::move(members));
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> parse_array(usize depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_whitespace();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      std::optional<JsonValue> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      items.push_back(std::move(*value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::make_array(std::move(items));
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<JsonValue> parse_string() {
    ++pos_;  // opening quote
    std::string decoded;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return JsonValue::make_string(std::move(decoded));
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        decoded += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': decoded += '"'; break;
        case '\\': decoded += '\\'; break;
        case '/': decoded += '/'; break;
        case 'b': decoded += '\b'; break;
        case 'f': decoded += '\f'; break;
        case 'n': decoded += '\n'; break;
        case 'r': decoded += '\r'; break;
        case 't': decoded += '\t'; break;
        case 'u': {
          std::optional<u32> code = parse_hex4();
          if (!code) return std::nullopt;
          u32 codepoint = *code;
          if (codepoint >= 0xD800 && codepoint <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            std::optional<u32> low = parse_hex4();
            if (!low) return std::nullopt;
            if (*low < 0xDC00 || *low > 0xDFFF) return fail("invalid low surrogate");
            codepoint = 0x10000 + ((codepoint - 0xD800) << 10) + (*low - 0xDC00);
          } else if (codepoint >= 0xDC00 && codepoint <= 0xDFFF) {
            return fail("unpaired UTF-16 surrogate");
          }
          append_utf8(decoded, codepoint);
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  std::optional<u32> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    u32 value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<u32>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<u32>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<u32>(c - 'A' + 10);
      else {
        fail("invalid \\u escape digit");
        return std::nullopt;
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, u32 codepoint) {
    if (codepoint < 0x80) {
      out += static_cast<char>(codepoint);
    } else if (codepoint < 0x800) {
      out += static_cast<char>(0xC0 | (codepoint >> 6));
      out += static_cast<char>(0x80 | (codepoint & 0x3F));
    } else if (codepoint < 0x10000) {
      out += static_cast<char>(0xE0 | (codepoint >> 12));
      out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (codepoint & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (codepoint >> 18));
      out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (codepoint & 0x3F));
    }
  }

  std::optional<JsonValue> parse_number() {
    const usize begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_])) return fail("malformed number");
    if (text_[pos_] == '0') {
      ++pos_;  // leading zeros are not allowed
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) return fail("malformed fraction");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) return fail("malformed exponent");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(number)) {
      return fail("number out of range");
    }
    return JsonValue::make_number(number);
  }

  std::optional<JsonValue> parse_literal(std::string_view literal, JsonValue value) {
    if (text_.substr(pos_, literal.size()) != literal) return fail("malformed literal");
    pos_ += literal.size();
    return value;
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> fail(const std::string& message) {
    if (error_.empty()) error_ = format("%s (at byte %zu)", message.c_str(), pos_);
    return std::nullopt;
  }

  std::string_view text_;
  usize pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace smtu
