#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace smtu {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (starts_with(arg, "--")) {
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        options_.emplace(std::string(arg.substr(2)), "true");
      } else {
        options_.emplace(std::string(arg.substr(2, eq - 2)), std::string(arg.substr(eq + 1)));
      }
    } else if (arg == "-j" || starts_with(arg, "-j")) {
      // Short alias for --jobs: accepts -j4, -j=4, and "-j 4".
      std::string_view value = arg.substr(2);
      if (starts_with(value, "=")) value.remove_prefix(1);
      if (value.empty() && i + 1 < argc) value = argv[++i];
      if (value.empty()) {
        std::fprintf(stderr, "%s: option -j expects a worker count\n", program_.c_str());
        std::exit(2);
      }
      options_.emplace("jobs", std::string(value));
    } else {
      positional_.emplace_back(arg);
    }
  }
}

std::optional<std::string> CommandLine::take(const std::string& key) {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  std::string value = it->second;
  options_.erase(it);
  return value;
}

std::string CommandLine::get_string(const std::string& key, const std::string& default_value) {
  return take(key).value_or(default_value);
}

i64 CommandLine::get_int(const std::string& key, i64 default_value) {
  const auto raw = take(key);
  if (!raw) return default_value;
  const auto parsed = parse_int(*raw);
  if (!parsed) {
    std::fprintf(stderr, "%s: option --%s expects an integer, got '%s'\n", program_.c_str(),
                 key.c_str(), raw->c_str());
    std::exit(2);
  }
  return *parsed;
}

double CommandLine::get_double(const std::string& key, double default_value) {
  const auto raw = take(key);
  if (!raw) return default_value;
  const auto parsed = parse_double(*raw);
  if (!parsed) {
    std::fprintf(stderr, "%s: option --%s expects a number, got '%s'\n", program_.c_str(),
                 key.c_str(), raw->c_str());
    std::exit(2);
  }
  return *parsed;
}

bool CommandLine::get_flag(const std::string& key) {
  const auto raw = take(key);
  if (!raw) return false;
  return *raw != "false" && *raw != "0";
}

void CommandLine::finish() const {
  if (options_.empty()) return;
  for (const auto& [key, value] : options_) {
    std::fprintf(stderr, "%s: unknown option --%s=%s\n", program_.c_str(), key.c_str(),
                 value.c_str());
  }
  std::exit(2);
}

}  // namespace smtu
