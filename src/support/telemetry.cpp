#include "support/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "support/json.hpp"
#include "support/strings.hpp"

namespace smtu::telemetry {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_host_trace{false};

// Small dense per-thread slot, assigned on first use; histograms index
// their shard arrays by it so recording needs no locks.
u32 thread_slot() {
  static std::atomic<u32> next{0};
  thread_local const u32 slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::mutex& trace_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<HostTraceEvent>& trace_buffer() {
  static std::vector<HostTraceEvent>* events = new std::vector<HostTraceEvent>();
  return *events;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool host_trace_enabled() { return g_host_trace.load(std::memory_order_relaxed); }
void set_host_trace_enabled(bool on) { g_host_trace.store(on, std::memory_order_relaxed); }

std::vector<HostTraceEvent> host_trace_events() {
  std::lock_guard<std::mutex> lock(trace_mutex());
  return trace_buffer();
}

u64 now_us() {
  // One origin per process so every span and trace event shares a timebase.
  static const auto origin = std::chrono::steady_clock::now();
  const auto delta = std::chrono::steady_clock::now() - origin;
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(delta).count());
}

// ---- Counter / Gauge -------------------------------------------------------

void Counter::add(u64 delta) {
  u64 current = value_.load(std::memory_order_relaxed);
  u64 next;
  do {
    next = current + delta;
    if (next < current) next = ~u64{0};  // saturate instead of wrapping
  } while (!value_.compare_exchange_weak(current, next, std::memory_order_relaxed));
}

void Gauge::update_max(u64 candidate) {
  u64 current = value_.load(std::memory_order_relaxed);
  while (candidate > current &&
         !value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
  }
}

// ---- LatencyHistogram ------------------------------------------------------

usize LatencyHistogram::bucket_index(u64 value) {
  if (value < 4) return static_cast<usize>(value);  // 0..3 exact
  const u32 msb = static_cast<u32>(std::bit_width(value)) - 1;  // >= 2
  const u64 sub = (value >> (msb - 2)) & 3;
  return 4 * (static_cast<usize>(msb) - 1) + static_cast<usize>(sub);
}

u64 LatencyHistogram::bucket_upper_bound(usize index) {
  if (index < 4) return static_cast<u64>(index);
  const u32 msb = static_cast<u32>(index / 4) + 1;
  const u64 sub = index % 4;
  // 2^msb + (sub+1) * 2^(msb-2) - 1; for the last bucket the sum wraps to
  // zero and the -1 yields exactly u64 max (unsigned wraparound).
  return (u64{1} << msb) + ((sub + 1) << (msb - 2)) - 1;
}

LatencyHistogram::Shard& LatencyHistogram::local_shard() {
  const u32 slot = thread_slot() % kMaxShards;
  Shard* shard = shards_[slot].load(std::memory_order_acquire);
  if (shard == nullptr) {
    auto fresh = std::make_unique<Shard>();
    Shard* expected = nullptr;
    if (shards_[slot].compare_exchange_strong(expected, fresh.get(),
                                              std::memory_order_acq_rel)) {
      shard = fresh.release();
    } else {
      shard = expected;  // another thread on the same slot won the race
    }
  }
  return *shard;
}

void LatencyHistogram::record(u64 value) {
  Shard& shard = local_shard();
  shard.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  u64 seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !shard.min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot merged;
  merged.buckets.assign(kBucketCount, 0);
  merged.min = ~u64{0};
  for (usize slot = 0; slot < kMaxShards; ++slot) {
    const Shard* shard = shards_[slot].load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (usize i = 0; i < kBucketCount; ++i) {
      merged.buckets[i] += shard->buckets[i].load(std::memory_order_relaxed);
    }
    merged.count += shard->count.load(std::memory_order_relaxed);
    merged.sum += shard->sum.load(std::memory_order_relaxed);
    merged.min = std::min(merged.min, shard->min.load(std::memory_order_relaxed));
    merged.max = std::max(merged.max, shard->max.load(std::memory_order_relaxed));
  }
  if (merged.count == 0) merged.min = 0;
  return merged;
}

void LatencyHistogram::reset() {
  for (usize slot = 0; slot < kMaxShards; ++slot) {
    Shard* shard = shards_[slot].load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (usize i = 0; i < kBucketCount; ++i) {
      shard->buckets[i].store(0, std::memory_order_relaxed);
    }
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
    shard->min.store(~u64{0}, std::memory_order_relaxed);
    shard->max.store(0, std::memory_order_relaxed);
  }
}

LatencyHistogram::~LatencyHistogram() {
  for (usize slot = 0; slot < kMaxShards; ++slot) {
    delete shards_[slot].load(std::memory_order_acquire);
  }
}

u64 LatencyHistogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0;
  const double clamped = std::min(100.0, std::max(q, 0.0));
  // 1-based rank of the sample the percentile names, ascending order.
  u64 rank = static_cast<u64>(std::ceil(clamped / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  u64 cumulative = 0;
  for (usize i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return std::min(bucket_upper_bound(i), max);
  }
  return max;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

// Sorted-vector lookup shared by the three metric families: metrics are
// created on first sight and never destroyed or moved.
template <typename Metric>
Metric& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<Metric>>>& family,
                       std::string_view name) {
  const auto at = std::lower_bound(
      family.begin(), family.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (at != family.end() && at->first == name) return *at->second;
  auto fresh = std::make_unique<Metric>();
  Metric& metric = *fresh;
  family.emplace(at, std::string(name), std::move(fresh));
  return metric;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name);
}

void MetricsRegistry::reset_for_tests() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  std::lock_guard<std::mutex> trace_lock(trace_mutex());
  trace_buffer().clear();
}

void MetricsRegistry::write_json(JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json.begin_object();
  json.key("schema");
  json.value("smtu-telemetry-v1");
  json.key("counters");
  json.begin_object();
  for (const auto& [name, counter] : counters_) {
    json.key(name);
    json.value(counter->value());
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, gauge] : gauges_) {
    json.key(name);
    json.value(gauge->value());
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram::Snapshot stats = histogram->snapshot();
    json.key(name);
    json.begin_object();
    json.key("count");
    json.value(stats.count);
    json.key("sum");
    json.value(stats.sum);
    json.key("min");
    json.value(stats.min);
    json.key("max");
    json.value(stats.max);
    json.key("p50");
    json.value(stats.percentile(50.0));
    json.key("p90");
    json.value(stats.percentile(90.0));
    json.key("p95");
    json.value(stats.percentile(95.0));
    json.key("p99");
    json.value(stats.percentile(99.0));
    // Only occupied buckets, as [upper-bound, count] pairs.
    json.key("buckets");
    json.begin_array();
    for (usize i = 0; i < stats.buckets.size(); ++i) {
      if (stats.buckets[i] == 0) continue;
      json.begin_object();
      json.key("le");
      json.value(LatencyHistogram::bucket_upper_bound(i));
      json.key("n");
      json.value(stats.buckets[i]);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

std::string MetricsRegistry::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << format("%-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out << format("%-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram::Snapshot stats = histogram->snapshot();
    out << format("%-36s count=%llu p50=%llu p90=%llu p95=%llu p99=%llu max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(stats.count),
                  static_cast<unsigned long long>(stats.percentile(50.0)),
                  static_cast<unsigned long long>(stats.percentile(90.0)),
                  static_cast<unsigned long long>(stats.percentile(95.0)),
                  static_cast<unsigned long long>(stats.percentile(99.0)),
                  static_cast<unsigned long long>(stats.max));
  }
  return out.str();
}

Counter& counter(std::string_view name) { return MetricsRegistry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return MetricsRegistry::instance().gauge(name); }
LatencyHistogram& histogram(std::string_view name) {
  return MetricsRegistry::instance().histogram(name);
}

void write_telemetry_json(JsonWriter& json) { MetricsRegistry::instance().write_json(json); }

// ---- HostSpan --------------------------------------------------------------

HostSpan::HostSpan(const char* histogram_name) : name_(histogram_name), armed_(enabled()) {
  if (armed_) start_us_ = now_us();
}

HostSpan::HostSpan(const char* histogram_name, LatencyHistogram& histogram)
    : name_(histogram_name), resolved_(&histogram), armed_(enabled()) {
  if (armed_) start_us_ = now_us();
}

HostSpan::~HostSpan() {
  if (!armed_) return;
  const u64 end_us = now_us();
  const u64 dur_us = end_us - start_us_;
  (resolved_ != nullptr ? *resolved_ : histogram(name_)).record(dur_us);
  if (host_trace_enabled()) {
    HostTraceEvent event{name_, thread_slot(), start_us_, dur_us};
    std::lock_guard<std::mutex> lock(trace_mutex());
    trace_buffer().push_back(std::move(event));
  }
}

}  // namespace smtu::telemetry
