// Always-on assertion macros for invariants and preconditions.
//
// SMTU_CHECK is enabled in every build type: simulator correctness depends on
// structural invariants (block bounds, format consistency) that silent release
// builds must not skip. SMTU_DCHECK compiles out in NDEBUG builds and is meant
// for hot inner loops only.
#pragma once

#include <string>

namespace smtu {

// Prints the failure (expression, location, optional detail) and aborts.
[[noreturn]] void assertion_failure(const char* expr, const char* file, int line,
                                    const std::string& detail);

}  // namespace smtu

#define SMTU_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) [[unlikely]] {                                     \
      ::smtu::assertion_failure(#expr, __FILE__, __LINE__, {});     \
    }                                                               \
  } while (false)

#define SMTU_CHECK_MSG(expr, detail)                                      \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::smtu::assertion_failure(#expr, __FILE__, __LINE__, (detail));     \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define SMTU_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define SMTU_DCHECK(expr) SMTU_CHECK(expr)
#endif
