#include "support/log.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace smtu {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void init_log_level_from_env() {
  const char* raw = std::getenv("SMTU_LOG");
  if (raw == nullptr) return;
  const std::string value = to_lower(raw);
  if (value == "debug") g_level = LogLevel::Debug;
  else if (value == "info") g_level = LogLevel::Info;
  else if (value == "warn") g_level = LogLevel::Warn;
  else if (value == "error") g_level = LogLevel::Error;
  else if (value == "off") g_level = LogLevel::Off;
}

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace smtu
