#include "support/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace smtu {

void assertion_failure(const char* expr, const char* file, int line,
                       const std::string& detail) {
  std::fprintf(stderr, "SMTU_CHECK failed: %s\n  at %s:%d\n", expr, file, line);
  if (!detail.empty()) {
    std::fprintf(stderr, "  detail: %s\n", detail.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace smtu
