// Minimal JSON support: a streaming writer so benchmark tables and run
// statistics can be exported for plotting/regression tracking, and a small
// recursive-descent parser so tests and tools can validate those exports.
// The writer produces compact, valid JSON with correct string escaping and
// locale-independent number formatting.
#pragma once

#include <initializer_list>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/table.hpp"
#include "support/types.hpp"

namespace smtu {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Containers. Every begin_* must be closed by the matching end_*; the
  // writer tracks commas and aborts on mismatched nesting.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Keys (inside objects) and values (inside arrays or after a key).
  void key(const std::string& name);
  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(i64 number);
  void value(u64 number);
  void value(bool flag);
  void null();

  // Splices `text` — which must itself be valid JSON — as one value.
  // Used to embed pre-rendered sections (e.g. cached profile JSON) without
  // re-serializing them.
  void raw(std::string_view text);

  // True when every container has been closed.
  bool complete() const { return stack_.empty() && emitted_root_; }

  static std::string escape(const std::string& text);

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool emitted_root_ = false;
};

// Serializes a TextTable as an array of objects keyed by the header cells.
// Numeric-looking cells are emitted as numbers.
void write_table_as_json(std::ostream& out, const TextTable& table);

// Parsed JSON document. Numbers are stored as double (the exporters in this
// repo never exceed 2^53, the exact-integer range); object member order is
// preserved so golden tests can assert stable key ordering.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors abort (SMTU_CHECK) on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  i64 as_i64() const;
  u64 as_u64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;    // array elements
  const std::vector<Member>& members() const;     // object members, in order

  usize size() const;  // array/object element count

  // Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  // Like find, but aborts when the key is missing.
  const JsonValue& at(std::string_view key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool flag);
  static JsonValue make_number(double number);
  static JsonValue make_string(std::string text);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

// Parses a complete JSON document (trailing whitespace allowed, nothing
// else). Returns nullopt on malformed input and, when `error` is non-null,
// stores a one-line description with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text, std::string* error = nullptr);

}  // namespace smtu
