// Minimal JSON writer (no parsing) so benchmark tables can be exported for
// plotting. Produces compact, valid JSON with correct string escaping and
// locale-independent number formatting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "support/types.hpp"

namespace smtu {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Containers. Every begin_* must be closed by the matching end_*; the
  // writer tracks commas and aborts on mismatched nesting.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Keys (inside objects) and values (inside arrays or after a key).
  void key(const std::string& name);
  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(i64 number);
  void value(u64 number);
  void value(bool flag);
  void null();

  // True when every container has been closed.
  bool complete() const { return stack_.empty() && emitted_root_; }

  static std::string escape(const std::string& text);

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool emitted_root_ = false;
};

// Serializes a TextTable as an array of objects keyed by the header cells.
// Numeric-looking cells are emitted as numbers.
void write_table_as_json(std::ostream& out, const TextTable& table);

}  // namespace smtu
