// Leveled logging. Default level is Warn so tests and benches stay quiet;
// binaries can raise verbosity via --verbose or SMTU_LOG=debug.
#pragma once

#include <string>

#include "support/strings.hpp"

namespace smtu {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// Reads SMTU_LOG environment variable ("debug"/"info"/"warn"/"error"/"off").
void init_log_level_from_env();

void log_message(LogLevel level, const std::string& message);

}  // namespace smtu

#define SMTU_LOG(level, ...)                                             \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::smtu::log_level())) \
      ::smtu::log_message(level, ::smtu::format(__VA_ARGS__));           \
  } while (false)

#define SMTU_DEBUG(...) SMTU_LOG(::smtu::LogLevel::Debug, __VA_ARGS__)
#define SMTU_INFO(...) SMTU_LOG(::smtu::LogLevel::Info, __VA_ARGS__)
#define SMTU_WARN(...) SMTU_LOG(::smtu::LogLevel::Warn, __VA_ARGS__)
#define SMTU_ERROR(...) SMTU_LOG(::smtu::LogLevel::Error, __VA_ARGS__)
