#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace smtu {

std::string_view trim(std::string_view text) {
  usize begin = 0;
  usize end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char separator) {
  std::vector<std::string_view> fields;
  usize start = 0;
  while (true) {
    const usize pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  usize i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const usize start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

std::string to_lower(std::string_view text) {
  std::string lowered(text);
  for (char& c : lowered) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lowered;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<i64> parse_int(std::string_view text) {
  text = trim(text);
  i64 value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<u64> parse_uint(std::string_view text) {
  text = trim(text);
  u64 value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+; use strtod with
  // a bounded copy for portability of exotic exponent forms in .mtx files.
  std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<usize>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string human_count(double value) {
  const char* suffix = "";
  double scaled = value;
  if (std::abs(value) >= 1e9) {
    scaled = value / 1e9;
    suffix = "G";
  } else if (std::abs(value) >= 1e6) {
    scaled = value / 1e6;
    suffix = "M";
  } else if (std::abs(value) >= 1e3) {
    scaled = value / 1e3;
    suffix = "k";
  }
  return format("%.2f%s", scaled, suffix);
}

}  // namespace smtu
