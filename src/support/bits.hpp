// Small integer/bit helpers shared across the simulator and formats.
#pragma once

#include <bit>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace smtu {

// Ceiling division for non-negative integers.
constexpr u64 ceil_div(u64 numerator, u64 denominator) {
  return denominator == 0 ? 0 : (numerator + denominator - 1) / denominator;
}

// Rounds `value` up to the next multiple of `multiple` (multiple > 0).
constexpr u64 round_up(u64 value, u64 multiple) {
  return ceil_div(value, multiple) * multiple;
}

constexpr bool is_pow2(u64 value) { return value != 0 && (value & (value - 1)) == 0; }

// floor(log2(value)) for value >= 1.
constexpr u32 log2_floor(u64 value) {
  return static_cast<u32>(63 - std::countl_zero(value | 1));
}

// ceil(log2(value)) for value >= 1.
constexpr u32 log2_ceil(u64 value) {
  return value <= 1 ? 0 : log2_floor(value - 1) + 1;
}

// ceil(log_base(value)) for value >= 1, base >= 2. This is the paper's level
// count: a matrix of dimension up to base^q needs q hierarchy levels.
constexpr u32 log_ceil(u64 value, u64 base) {
  SMTU_DCHECK(base >= 2);
  u32 levels = 0;
  u64 reach = 1;
  while (reach < value) {
    reach *= base;
    ++levels;
  }
  return levels;
}

// base^exp with overflow check (used for block spans, small exponents).
constexpr u64 ipow(u64 base, u32 exp) {
  u64 result = 1;
  for (u32 i = 0; i < exp; ++i) {
    SMTU_DCHECK(result <= ~u64{0} / (base == 0 ? 1 : base));
    result *= base;
  }
  return result;
}

}  // namespace smtu
