// Deterministic pseudo-random number generation for workload synthesis.
//
// The suite generators must produce the same matrices on every platform and
// run, so we implement xoshiro256** (public-domain algorithm by Blackman &
// Vigna) rather than relying on implementation-defined std distributions.
#pragma once

#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace smtu {

// splitmix64: used to expand a single seed into xoshiro state.
constexpr u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  // Raw 64 uniform bits.
  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  u64 below(u64 bound) {
    SMTU_DCHECK(bound > 0);
    // Rejection loop terminates quickly; bias-free.
    const u64 threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
    while (true) {
      const u64 raw = next_u64();
      if (raw >= threshold) return raw % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    SMTU_DCHECK(lo <= hi);
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool chance(double probability) { return uniform() < probability; }

  // Samples `count` distinct values from [0, population) in increasing order.
  // Uses Floyd's algorithm for small count, a shuffle otherwise.
  std::vector<u64> sample_without_replacement(u64 population, u64 count);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (usize i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[below(i)]);
    }
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 state_[4] = {};
};

}  // namespace smtu
