// Console table and CSV emitters used by the benchmark harness so every
// figure-reproduction binary prints the paper's series in a uniform layout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace smtu {

// Monospace table with a header row; columns are right-aligned except the
// first (typically a matrix name).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Starts a new row; returns its index.
  usize add_row();
  void set(usize row, usize column, std::string value);
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& out) const;
  // GitHub-flavored Markdown rendering (used by the report generator).
  void print_markdown(std::ostream& out) const;
  std::string to_string() const;

  usize rows() const { return cells_.size(); }
  usize columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(usize index) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

// Minimal CSV writer (RFC-4180 quoting) so bench output can be re-plotted.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);

  std::ostream& out_;
};

}  // namespace smtu
