// String helpers used by the assembler, Matrix Market reader, and CLI.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hpp"

namespace smtu {

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

// Splits on `separator`, keeping empty fields.
std::vector<std::string_view> split(std::string_view text, char separator);

// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string_view> split_whitespace(std::string_view text);

std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

// Strict integer / floating-point parsing (whole string must be consumed).
std::optional<i64> parse_int(std::string_view text);
std::optional<u64> parse_uint(std::string_view text);
std::optional<double> parse_double(std::string_view text);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-friendly quantities for reports: 1234567 -> "1.23M".
std::string human_count(double value);

}  // namespace smtu
