// Host-side telemetry: a process-wide registry of named counters, gauges,
// and log-bucketed latency histograms, plus RAII scoped timers (HostSpan)
// that feed them. This measures the *host* runtime — ThreadPool scheduling,
// cache hit rates, staging and per-request wall latency — never the
// simulated machine, whose counters live in vsim::RunStats/PerfCounters.
//
// Design constraints (see docs/TELEMETRY.md):
//  * Off by default, and off means *off*: no clock reads, no allocation, no
//    bucket updates, and every existing artifact (BENCH_repro.json, Chrome
//    sim traces) stays byte-identical. `--telemetry` / `--telemetry-json`
//    flip the single process-wide switch.
//  * Histograms are mergeable across threads via per-thread shards: each
//    recording thread owns a shard (relaxed-atomic bucket array, so
//    concurrent snapshots are TSan-clean) and snapshot() sums the shards.
//  * Percentiles are extracted from log-spaced buckets (4 sub-buckets per
//    power of two, <= 25% relative bucket width). p50/p90/p95/p99 return the
//    upper bound of the bucket holding the rank-th sample, clamped to the
//    exact maximum; min/max/sum/count are exact.
//  * Metric names follow `<component>.<metric>_<unit>` with unit one of
//    `_total` (counter), `_us` / `_pct` (histogram), `_peak` (gauge) —
//    tools/bench_diff.py skips exactly these suffixes, so telemetry values
//    can never gate CI.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hpp"

namespace smtu {
class JsonWriter;
}

namespace smtu::telemetry {

// ---- the process-wide switch ----------------------------------------------

// True when telemetry collection is on (default: off). Reads are a single
// relaxed atomic load; every instrumentation site guards on it so disabled
// runs skip clock reads entirely.
bool enabled();
void set_enabled(bool on);

// ---- metric primitives ----------------------------------------------------

// Monotonic event count. Saturates at u64 max instead of wrapping, so a
// runaway counter reads as "huge", never as "small again".
class Counter {
 public:
  void add(u64 delta = 1);
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

// High-watermark gauge: update_max keeps the largest value seen (queue
// depth peaks, concurrent-request peaks).
class Gauge {
 public:
  void update_max(u64 candidate);
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

// Log-bucketed histogram of non-negative integer samples (host latencies in
// microseconds, utilization percentages). Bucket 0 holds the value 0;
// values 1..3 get exact buckets; above that every power of two splits into
// 4 sub-buckets, so any bucket's bounds differ by at most 25%.
class LatencyHistogram {
 public:
  // 0, 1, 2, 3, then 4 sub-buckets for each octave [2^k, 2^(k+1)), k = 2..63.
  static constexpr usize kBucketCount = 4 + 4 * 62;

  // The bucket holding `value`; monotonic in `value`.
  static usize bucket_index(u64 value);
  // Largest value the bucket holds (inclusive). The last bucket's bound is
  // u64 max.
  static u64 bucket_upper_bound(usize index);

  LatencyHistogram() = default;
  ~LatencyHistogram();
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one sample into the calling thread's shard (creating it on
  // first use). Safe to call concurrently with snapshot().
  void record(u64 value);

  // Merged view across every thread's shard. count/min/max/sum are exact;
  // percentile(q) is the bucket-bounded estimate described above.
  struct Snapshot {
    u64 count = 0;
    u64 sum = 0;
    u64 min = 0;  // 0 when empty
    u64 max = 0;
    std::vector<u64> buckets;  // kBucketCount entries

    // q in (0, 100]. Upper bound of the bucket containing the ceil(q% *
    // count)-th sample (1-based, ascending), clamped to the exact max.
    // 0 when the histogram is empty.
    u64 percentile(double q) const;
  };
  Snapshot snapshot() const;

  // Zeroes every shard in place (shards stay allocated, so concurrent
  // recorders are never left holding a freed pointer).
  void reset();

 private:
  // Shards are indexed by a process-wide per-thread slot. More threads than
  // slots just share (every operation is atomic, so sharing only costs
  // contention, not correctness).
  static constexpr usize kMaxShards = 256;

  struct Shard {
    std::atomic<u64> buckets[kBucketCount] = {};
    std::atomic<u64> count{0};
    std::atomic<u64> sum{0};
    std::atomic<u64> min{~u64{0}};
    std::atomic<u64> max{0};
  };

  Shard& local_shard();

  std::atomic<Shard*> shards_[kMaxShards] = {};
};

// ---- the registry ---------------------------------------------------------

// Process-wide name -> metric map. Metrics are created on first use and
// never destroyed, so returned references stay valid for the process
// lifetime (reset_for_tests zeroes values, it does not invalidate them).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  // Zeroes every metric and drops buffered host trace events. For tests.
  void reset_for_tests();

  // Writes the full "smtu-telemetry-v1" document: counters, gauges, and
  // histogram summaries (count, min/max/sum, p50/p90/p95/p99, non-empty
  // buckets), each family sorted by metric name.
  void write_json(JsonWriter& json) const;

  // Human-readable rollup of the same data (one line per metric).
  std::string summary() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // Sorted vectors keep iteration order deterministic for JSON/summary.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<LatencyHistogram>>> histograms_;
};

// Shorthand: MetricsRegistry::instance().counter(name) etc.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
LatencyHistogram& histogram(std::string_view name);

// Writes the smtu-telemetry-v1 document for the process-wide registry.
void write_telemetry_json(JsonWriter& json);

// ---- scoped timers and host trace events ----------------------------------

// Wall-clock duration since an arbitrary process-wide origin, in
// microseconds (the host trace timebase).
u64 now_us();

// One completed host span, for Chrome trace interleaving. Host spans render
// under their own process id so simulated-unit tracks are untouched.
struct HostTraceEvent {
  std::string name;
  u32 thread = 0;  // small per-thread index, not the OS thread id
  u64 start_us = 0;
  u64 dur_us = 0;
};

// Chrome-trace pid reserved for host telemetry tracks. Simulated cores use
// pid = core + 1; this sits far above any plausible core count.
inline constexpr u64 kHostTracePid = 1000;

// When on (and telemetry is on), every HostSpan also buffers a
// HostTraceEvent; vsim::write_chrome_trace appends them under
// kHostTracePid. Off by default, so sim trace dumps stay byte-identical.
bool host_trace_enabled();
void set_host_trace_enabled(bool on);
std::vector<HostTraceEvent> host_trace_events();

// RAII scoped timer: records the enclosed duration (microseconds) into
// `histogram_name` on destruction and, when host tracing is on, buffers the
// matching trace event. A disabled-telemetry HostSpan does nothing — not
// even a clock read.
class HostSpan {
 public:
  explicit HostSpan(const char* histogram_name);
  // Pre-resolved variant for hot call sites (per-request serving paths):
  // skips the registry lookup (mutex + name search) on every destruction.
  // Metrics are never destroyed, so callers may resolve once into a
  // function-local static and reuse the reference forever. `histogram_name`
  // still labels the host-trace event.
  HostSpan(const char* histogram_name, LatencyHistogram& histogram);
  ~HostSpan();

  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;

 private:
  const char* name_;
  LatencyHistogram* resolved_ = nullptr;
  bool armed_;
  u64 start_us_ = 0;
};

}  // namespace smtu::telemetry
