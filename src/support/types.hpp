// Project-wide fixed-width aliases and small vocabulary types.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smtu {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

// Matrix index type. Dimensions in this project are bounded by the largest
// D-SAB matrix (~10^6 rows), so 32 bits suffice, but we use 64-bit indices at
// API boundaries to make address arithmetic in the simulator overflow-safe.
using Index = std::uint64_t;

// Simulated-machine quantities.
using Cycle = std::uint64_t;
using Addr = std::uint64_t;

}  // namespace smtu
