// Reusable thread pool + order-preserving parallel map for the benchmark
// harness.
//
// Design constraints (see HACKING.md, "Parallel benchmarking"):
//  * Determinism: parallel_map returns results in item order, so reductions
//    over them are independent of scheduling. Tasks must not share mutable
//    state — each suite matrix gets its own Machine/StmUnit/Rng.
//  * jobs == 1 degenerates to fully serial execution on the calling thread
//    (the `-j1` baseline the determinism tests compare against); submit()
//    then runs tasks inline and never spawns a thread.
//  * Nested parallelism is safe: a thread that waits on futures of this
//    pool helps drain the queue instead of deadlocking.
//  * Exceptions propagate: a throwing task poisons its future; parallel_map
//    rethrows the first failure (in item order) after every task finished.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/types.hpp"

namespace smtu {

// Resolves a --jobs/-j request: 0 means "all hardware threads" (at least 1).
u32 resolve_jobs(u32 requested);

class ThreadPool {
 public:
  // `jobs` is the total parallelism including the submitting thread, i.e.
  // the pool starts jobs - 1 workers; 0 resolves to the hardware thread
  // count. The submitting thread contributes whenever it waits.
  explicit ThreadPool(u32 jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 jobs() const { return jobs_; }

  // Schedules `fn` and returns its future. With jobs == 1 the task runs
  // inline (exceptions still land in the future, not the caller).
  template <typename F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    std::packaged_task<R()> task(std::move(fn));
    std::future<R> future = task.get_future();
    const bool sampled = telemetry_on();
    if (workers_.empty()) {
      if (sampled) {
        const u64 begin_us = telemetry_now_us();
        task();
        record_inline_task(telemetry_now_us() - begin_us);
      } else {
        task();
      }
      return future;
    }
    auto shared = std::make_shared<std::packaged_task<R()>>(std::move(task));
    if (sampled) {
      const u64 enqueued_us = telemetry_now_us();
      enqueue([shared, enqueued_us] {
        const u64 begin_us = telemetry_now_us();
        (*shared)();
        record_task(begin_us - enqueued_us, telemetry_now_us() - begin_us);
      });
    } else {
      enqueue([shared] { (*shared)(); });
    }
    return future;
  }

  // Runs one queued task on the calling thread, if any; false when idle.
  bool run_one();

  // Blocks until `future` is ready, executing queued tasks meanwhile so
  // tasks that submit (and wait on) subtasks of the same pool cannot
  // deadlock.
  template <typename R>
  void wait_helping(std::future<R>& future) {
    using namespace std::chrono_literals;
    while (future.wait_for(0s) != std::future_status::ready) {
      // The bounded wait covers the race where a task is enqueued after
      // run_one saw an empty queue: we re-poll instead of sleeping forever.
      if (!run_one()) future.wait_for(1ms);
    }
  }

 private:
  using Job = std::function<void()>;

  // Telemetry shims, out-of-line so this header stays telemetry-free.
  // record_task feeds pool.tasks_total / pool.task_wait_us / pool.task_run_us;
  // record_inline_task additionally accumulates the serial pool's busy time
  // so the destructor can report pool.worker_util_pct even at jobs == 1
  // (worker threads report their own utilization from worker_loop).
  static bool telemetry_on();
  static u64 telemetry_now_us();
  static void record_task(u64 wait_us, u64 run_us);
  void record_inline_task(u64 run_us);

  void enqueue(Job job);
  void worker_loop();

  u32 jobs_ = 1;
  u64 born_us_ = 0;  // 0 unless telemetry was on at construction
  std::atomic<u64> inline_busy_us_{0};
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Applies `fn` to every element of `items` across the pool and returns the
// results in item order, making downstream reductions deterministic
// regardless of how tasks interleave. `fn` is invoked concurrently and must
// be safe to call from several threads at once. If any invocation throws,
// the first exception (in item order) is rethrown after all tasks finished.
template <typename T, typename F>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, F fn)
    -> std::vector<std::invoke_result_t<F&, const T&>> {
  using R = std::invoke_result_t<F&, const T&>;
  static_assert(!std::is_void_v<R>, "parallel_map requires a value-returning fn");
  std::vector<std::future<R>> futures;
  futures.reserve(items.size());
  for (const T& item : items) {
    futures.push_back(pool.submit([&fn, &item] { return fn(item); }));
  }
  for (auto& future : futures) pool.wait_helping(future);
  std::vector<R> results;
  results.reserve(items.size());
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace smtu
