// Tiny command-line option parser for bench/example binaries.
//
// Accepts --key=value and --flag forms; positional arguments are collected in
// order. Unknown options are an error so typos in sweep parameters fail fast.
// `-j N` / `-jN` is the one short option, an alias for --jobs=N.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace smtu {

class CommandLine {
 public:
  // Parses argv; aborts with a message on malformed input.
  CommandLine(int argc, const char* const* argv);

  // Declared-option accessors; consume the option (for unknown detection).
  std::string get_string(const std::string& key, const std::string& default_value);
  i64 get_int(const std::string& key, i64 default_value);
  double get_double(const std::string& key, double default_value);
  bool get_flag(const std::string& key);

  const std::vector<std::string>& positional() const { return positional_; }

  // Call after all options are declared; aborts if unconsumed options remain.
  void finish() const;

 private:
  std::optional<std::string> take(const std::string& key);

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace smtu
