#include "support/rng.hpp"

#include <algorithm>
#include <unordered_set>

namespace smtu {

std::vector<u64> Rng::sample_without_replacement(u64 population, u64 count) {
  SMTU_CHECK_MSG(count <= population, "cannot sample more than the population");
  std::vector<u64> chosen;
  chosen.reserve(count);
  if (count == 0) return chosen;

  // Dense case: permute the full population prefix.
  if (count * 4 >= population) {
    std::vector<u64> all(population);
    for (u64 i = 0; i < population; ++i) all[i] = i;
    shuffle(all);
    chosen.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count));
  } else {
    // Floyd's algorithm: O(count) expected draws.
    std::unordered_set<u64> seen;
    seen.reserve(count * 2);
    for (u64 j = population - count; j < population; ++j) {
      const u64 candidate = below(j + 1);
      if (!seen.insert(candidate).second) seen.insert(j);
    }
    chosen.assign(seen.begin(), seen.end());
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace smtu
