#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace smtu {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  SMTU_CHECK(!header_.empty());
}

usize TextTable::add_row() {
  cells_.emplace_back(header_.size());
  return cells_.size() - 1;
}

void TextTable::set(usize row, usize column, std::string value) {
  SMTU_CHECK(row < cells_.size());
  SMTU_CHECK(column < header_.size());
  cells_[row][column] = std::move(value);
}

const std::vector<std::string>& TextTable::row(usize index) const {
  SMTU_CHECK(index < cells_.size());
  return cells_[index];
}

void TextTable::add_row(std::vector<std::string> cells) {
  SMTU_CHECK_MSG(cells.size() == header_.size(), "row width must match header");
  cells_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<usize> width(header_.size());
  for (usize c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : cells_) {
    for (usize c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };

  emit_row(header_);
  usize total = header_.size() > 1 ? 2 * (header_.size() - 1) : 0;
  for (const usize w : width) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit_row(row);
}

void TextTable::print_markdown(std::ostream& out) const {
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (const std::string& cell : cells) out << ' ' << cell << " |";
    out << '\n';
  };
  emit_row(header_);
  out << '|';
  for (usize c = 0; c < header_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : cells_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (usize c = 0; c < cells.size(); ++c) {
    if (c > 0) out_ << ',';
    out_ << escape(cells[c]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace smtu
