#include "support/parallel.hpp"

#include <cstdio>

#include "support/telemetry.hpp"

namespace smtu {

namespace {

// Metric lookups resolved once; registry metrics are never destroyed.
telemetry::Counter& pool_tasks_total() {
  static telemetry::Counter& counter = telemetry::counter("pool.tasks_total");
  return counter;
}

telemetry::LatencyHistogram& pool_task_wait_us() {
  static telemetry::LatencyHistogram& hist = telemetry::histogram("pool.task_wait_us");
  return hist;
}

telemetry::LatencyHistogram& pool_task_run_us() {
  static telemetry::LatencyHistogram& hist = telemetry::histogram("pool.task_run_us");
  return hist;
}

}  // namespace

bool ThreadPool::telemetry_on() { return telemetry::enabled(); }

u64 ThreadPool::telemetry_now_us() { return telemetry::now_us(); }

void ThreadPool::record_task(u64 wait_us, u64 run_us) {
  pool_tasks_total().add(1);
  pool_task_wait_us().record(wait_us);
  pool_task_run_us().record(run_us);
}

u32 resolve_jobs(u32 requested) {
  const unsigned hardware = std::thread::hardware_concurrency();
  const u32 cap = hardware == 0 ? 1u : static_cast<u32>(hardware);
  if (requested == 0) return cap;
  if (requested > cap) {
    // Oversubscribing a CPU-bound simulator only adds context switches;
    // results are identical at any job count, so clamp and say so once.
    static std::once_flag warned;
    std::call_once(warned, [&] {
      std::fprintf(stderr, "note: --jobs %u exceeds the %u hardware thread(s); using %u\n",
                   requested, cap, cap);
    });
    return cap;
  }
  return requested;
}

ThreadPool::ThreadPool(u32 jobs) : jobs_(resolve_jobs(jobs)) {
  if (telemetry::enabled()) born_us_ = telemetry::now_us();
  workers_.reserve(jobs_ - 1);
  for (u32 i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // A serial pool (jobs == 1) has no worker_loop to report utilization, so
  // the destructor reports the submitting thread's share of the pool's
  // lifetime spent inside inline tasks.
  if (workers_.empty() && born_us_ != 0 && telemetry::enabled()) {
    const u64 life_us = telemetry::now_us() - born_us_;
    const u64 busy_us = inline_busy_us_.load(std::memory_order_relaxed);
    telemetry::histogram("pool.worker_util_pct")
        .record(life_us == 0 ? 0 : busy_us * 100 / life_us);
  }
}

void ThreadPool::record_inline_task(u64 run_us) {
  record_task(0, run_us);
  inline_busy_us_.fetch_add(run_us, std::memory_order_relaxed);
}

void ThreadPool::enqueue(Job job) {
  usize depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    depth = queue_.size();
  }
  ready_.notify_one();
  if (telemetry::enabled()) {
    telemetry::gauge("pool.queue_depth_peak").update_max(depth);
  }
}

bool ThreadPool::run_one() {
  Job job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  job();
  return true;
}

void ThreadPool::worker_loop() {
  // Utilization = job time / worker lifetime, recorded once per worker at
  // exit into pool.worker_util_pct (0 when telemetry stayed off throughout).
  const bool sampled = telemetry::enabled();
  const u64 born_us = sampled ? telemetry::now_us() : 0;
  u64 busy_us = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop requested and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (sampled) {
      const u64 begin_us = telemetry::now_us();
      job();
      busy_us += telemetry::now_us() - begin_us;
    } else {
      job();
    }
  }
  if (sampled) {
    const u64 life_us = telemetry::now_us() - born_us;
    const u64 util_pct = life_us == 0 ? 0 : busy_us * 100 / life_us;
    telemetry::histogram("pool.worker_util_pct").record(util_pct);
  }
}

}  // namespace smtu
