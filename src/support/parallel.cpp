#include "support/parallel.hpp"

#include <cstdio>

namespace smtu {

u32 resolve_jobs(u32 requested) {
  const unsigned hardware = std::thread::hardware_concurrency();
  const u32 cap = hardware == 0 ? 1u : static_cast<u32>(hardware);
  if (requested == 0) return cap;
  if (requested > cap) {
    // Oversubscribing a CPU-bound simulator only adds context switches;
    // results are identical at any job count, so clamp and say so once.
    static std::once_flag warned;
    std::call_once(warned, [&] {
      std::fprintf(stderr, "note: --jobs %u exceeds the %u hardware thread(s); using %u\n",
                   requested, cap, cap);
    });
    return cap;
  }
  return requested;
}

ThreadPool::ThreadPool(u32 jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(jobs_ - 1);
  for (u32 i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  ready_.notify_one();
}

bool ThreadPool::run_one() {
  Job job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  job();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace smtu
