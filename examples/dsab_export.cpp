// Exports the synthetic D-SAB stand-in suite as MatrixMarket files, so the
// 30 benchmark matrices can be inspected, plotted, or fed to other tools —
// and so users with the original D-SAB files can diff selection criteria.
//
//   ./dsab_export [--dir=dsab] [--scale=1.0] [--set=locality|anz|size] [--pool]
//
// --pool exports the 132-matrix selection population (see suite/selection)
// instead of the 30 benchmark matrices.
#include <cstdio>
#include <filesystem>

#include "formats/matrix_market.hpp"
#include "suite/dsab.hpp"
#include "suite/selection.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const std::string dir = cli.get_string("dir", "dsab");
  const std::string only_set = cli.get_string("set", "");
  const bool pool = cli.get_flag("pool");
  suite::SuiteOptions options;
  options.scale = cli.get_double("scale", 1.0);
  options.seed = static_cast<u64>(cli.get_int("seed", 0xD5ABD5ABll));
  cli.finish();

  std::filesystem::create_directories(dir);
  const auto suite_matrices = pool ? suite::build_dsab_pool(options)
                              : only_set.empty()
                                  ? suite::build_dsab_suite(options)
                                  : suite::build_dsab_set(only_set, options);
  for (const auto& entry : suite_matrices) {
    const std::string path = dir + "/" + entry.set + "_" +
                             format("%02u", entry.index) + "_" + entry.name + ".mtx";
    write_matrix_market_file(
        path, entry.matrix,
        format("synthetic D-SAB stand-in: set=%s locality=%.3f anz=%.2f",
               entry.set.c_str(), entry.metrics.locality, entry.metrics.avg_nnz_per_row));
    std::printf("%-44s %10zu nnz  locality %6.2f  anz %7.2f\n", path.c_str(),
                entry.matrix.nnz(), entry.metrics.locality, entry.metrics.avg_nnz_per_row);
  }
  return 0;
}
