// vsim_run: assemble and execute a vector-assembly program from a file —
// the simulator as a standalone tool for writing custom kernels.
//
//   ./vsim_run program.s [--r1=value ... --r9=value] [--section=64]
//               [--no-chaining] [--trace=N] [--dump-regs] [--listing]
//               [--timeline] [--events] [--trace-json=out.json]
//               [--profile] [--profile-json=out.json]
//               [--profile-speedscope=out.json]
//               [--telemetry] [--telemetry-json=out.json]
//
// Scalar registers r1..r29 can be preset via --rN=value (decimal or hex).
// After the run, cycle statistics are printed; --dump-regs adds the final
// scalar register file. --trace-json writes the execution trace in Chrome
// trace-event format (load it in chrome://tracing or Perfetto; one track
// per functional unit — see docs/TRACE.md). --profile prints the
// cycle-attribution summary (stall taxonomy, FU occupancy, hottest source
// lines); --profile-json / --profile-speedscope write the same counters as
// smtu-profile-v1 JSON and a speedscope.app flamegraph (docs/PROFILING.md).
// --telemetry times the host-side assemble/run phases (docs/TELEMETRY.md);
// --telemetry-json writes the smtu-telemetry-v1 document, and combined with
// --trace-json the host spans join the dump under their own pid.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"
#include "vsim/assembler.hpp"
#include "vsim/json_export.hpp"
#include "vsim/machine.hpp"
#include "vsim/profiler.hpp"
#include "vsim/trace.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const i64 section = cli.get_int("section", 64);
  const bool no_chaining = cli.get_flag("no-chaining");
  const i64 trace = cli.get_int("trace", 0);
  const bool dump_regs = cli.get_flag("dump-regs");
  const bool listing = cli.get_flag("listing");
  const bool timeline = cli.get_flag("timeline");
  const bool events = cli.get_flag("events");
  const std::string trace_json = cli.get_string("trace-json", "");
  const bool profile = cli.get_flag("profile");
  const std::string profile_json = cli.get_string("profile-json", "");
  const std::string profile_speedscope = cli.get_string("profile-speedscope", "");
  const std::string telemetry_json = cli.get_string("telemetry-json", "");
  const bool telemetry_on = cli.get_flag("telemetry") || !telemetry_json.empty();
  if (telemetry_on) {
    telemetry::set_enabled(true);
    if (!trace_json.empty()) telemetry::set_host_trace_enabled(true);
  }

  vsim::MachineConfig config;
  config.section = static_cast<u32>(section);
  config.chaining = !no_chaining;
  vsim::Machine machine(config);

  for (u32 r = 1; r < vsim::kNumScalarRegs - 2; ++r) {
    const std::string key = "r" + std::to_string(r);
    const i64 preset = cli.get_int(key, -1);
    if (preset >= 0) machine.set_sreg(r, static_cast<u64>(preset));
  }
  cli.finish();

  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "usage: vsim_run <program.s> [--rN=value ...]\n");
    return 2;
  }
  std::ifstream in(cli.positional()[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", cli.positional()[0].c_str());
    return 2;
  }
  std::ostringstream source;
  source << in.rdbuf();

  vsim::Program program;
  try {
    telemetry::HostSpan span("vsim.assemble_us");
    program = vsim::assemble(source.str());
  } catch (const vsim::AssemblyError& e) {
    std::fprintf(stderr, "%s: %s\n", cli.positional()[0].c_str(), e.what());
    return 1;
  }
  if (listing) std::fputs(program.listing().c_str(), stdout);

  machine.set_sreg(vsim::kRegSp, 0x10000);  // stack below the usual image base
  machine.memory().ensure(0, 1 << 20);      // a scratch megabyte
  if (trace > 0) machine.enable_trace(static_cast<u64>(trace));
  vsim::ExecutionTrace execution_trace(trace_json.empty() ? 512 : (usize{1} << 20));
  if (timeline || events || !trace_json.empty()) machine.attach_trace(&execution_trace);
  vsim::PerfCounters profiler;
  if (profile || !profile_json.empty() || !profile_speedscope.empty()) {
    machine.attach_profiler(&profiler);
  }

  vsim::RunStats stats;
  {
    telemetry::HostSpan span("vsim.run_us");
    stats = machine.run(program, program.has_label("main") ? program.label("main") : 0);
  }
  std::fputs(vsim::run_stats_summary(stats).c_str(), stdout);
  if (events) {
    std::ostringstream table;
    execution_trace.print_table(table);
    std::fputs(table.str().c_str(), stdout);
  }
  if (timeline) {
    std::ostringstream gantt;
    execution_trace.print_timeline(gantt);
    std::fputs(gantt.str().c_str(), stdout);
  }
  if (!trace_json.empty()) {
    std::ofstream trace_out(trace_json);
    if (!trace_out) {
      std::fprintf(stderr, "cannot open %s\n", trace_json.c_str());
      return 2;
    }
    vsim::write_chrome_trace(trace_out, execution_trace, cli.positional()[0]);
    std::fprintf(stderr, "wrote Chrome trace (%zu events) to %s\n",
                 execution_trace.events().size(), trace_json.c_str());
  }
  if (profile) std::fputs(vsim::profile_summary(profiler).c_str(), stdout);
  if (!profile_json.empty()) {
    std::ofstream profile_out(profile_json);
    if (!profile_out) {
      std::fprintf(stderr, "cannot open %s\n", profile_json.c_str());
      return 2;
    }
    JsonWriter json(profile_out);
    vsim::write_profile_json(json, profiler);
    profile_out << '\n';
    std::fprintf(stderr, "wrote profile JSON to %s\n", profile_json.c_str());
  }
  if (!profile_speedscope.empty()) {
    std::ofstream speedscope_out(profile_speedscope);
    if (!speedscope_out) {
      std::fprintf(stderr, "cannot open %s\n", profile_speedscope.c_str());
      return 2;
    }
    vsim::write_speedscope_profile(speedscope_out, profiler, cli.positional()[0]);
    std::fprintf(stderr, "wrote speedscope profile to %s\n", profile_speedscope.c_str());
  }

  if (!telemetry_json.empty()) {
    std::ofstream telemetry_out(telemetry_json);
    if (!telemetry_out) {
      std::fprintf(stderr, "cannot open %s\n", telemetry_json.c_str());
      return 2;
    }
    JsonWriter json(telemetry_out);
    telemetry::write_telemetry_json(json);
    telemetry_out << '\n';
    std::fprintf(stderr, "wrote telemetry JSON to %s\n", telemetry_json.c_str());
  }
  if (telemetry_on) {
    std::fprintf(stderr, "-- telemetry --\n%s",
                 telemetry::MetricsRegistry::instance().summary().c_str());
  }

  if (dump_regs) {
    for (u32 r = 1; r < vsim::kNumScalarRegs; ++r) {
      const u64 value = machine.sreg(r);
      if (value != 0) {
        std::printf("r%-2u = %llu (0x%llx)\n", r, static_cast<unsigned long long>(value),
                    static_cast<unsigned long long>(value));
      }
    }
  }
  return 0;
}
