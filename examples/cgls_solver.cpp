// Domain scenario: least-squares via CGLS (conjugate gradient on the normal
// equations), the kind of scientific kernel the paper's introduction
// motivates. Every CGLS iteration needs both A*p and A^T*r products; with a
// one-sided storage format the transpose product is the expensive, irregular
// one, so solvers either keep an explicit transpose (doubling storage and
// paying a transposition) or suffer scattered accumulation.
//
// This example solves a random overdetermined system with host-side CSR
// arithmetic and reports what the simulated vector machine would pay for
// the explicit-transpose strategy: one HiSM+STM transposition vs one CRS
// (Pissanetsky) transposition of the same matrix.
//
//   ./cgls_solver [--rows=1200] [--cols=800] [--nnz=12000] [--iters=40]
#include <cmath>
#include <cstdio>

#include "formats/csr.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/spmv.hpp"
#include "suite/generators.hpp"
#include "support/cli.hpp"

namespace {

using namespace smtu;

float dot(const std::vector<float>& a, const std::vector<float>& b) {
  float sum = 0.0f;
  for (usize i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const Index rows = static_cast<Index>(cli.get_int("rows", 1200));
  const Index cols = static_cast<Index>(cli.get_int("cols", 800));
  const usize nnz = static_cast<usize>(cli.get_int("nnz", 12000));
  const int iters = static_cast<int>(cli.get_int("iters", 40));
  cli.finish();

  // A well-conditioned random sparse A and a known solution x*.
  Rng rng(17);
  Coo coo = suite::gen_random_uniform(rows, cols, nnz, rng);
  for (Index i = 0; i < cols; ++i) coo.add(i, i, 4.0f);  // strengthen the diagonal block
  coo.canonicalize();
  const Csr a = Csr::from_coo(coo);
  const Csr at = a.transposed_pissanetsky();

  std::vector<float> x_true(cols);
  for (auto& v : x_true) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const std::vector<float> b = a.spmv(x_true);

  // CGLS: minimize ||Ax - b||2.
  std::vector<float> x(cols, 0.0f);
  std::vector<float> r = b;                  // r = b - A x (x = 0)
  std::vector<float> s = at.spmv(r);         // s = A^T r
  std::vector<float> p = s;
  float gamma = dot(s, s);
  const float gamma0 = gamma;

  int used_iters = 0;
  for (int k = 0; k < iters && gamma > 1e-10f * gamma0; ++k) {
    const std::vector<float> q = a.spmv(p);
    const float alpha = gamma / dot(q, q);
    for (usize i = 0; i < x.size(); ++i) x[i] += alpha * p[i];
    for (usize i = 0; i < r.size(); ++i) r[i] -= alpha * q[i];
    s = at.spmv(r);
    const float gamma_next = dot(s, s);
    const float beta = gamma_next / gamma;
    for (usize i = 0; i < p.size(); ++i) p[i] = s[i] + beta * p[i];
    gamma = gamma_next;
    ++used_iters;
  }

  float err = 0.0f;
  float norm = 0.0f;
  for (usize i = 0; i < x.size(); ++i) {
    err += (x[i] - x_true[i]) * (x[i] - x_true[i]);
    norm += x_true[i] * x_true[i];
  }
  std::printf("CGLS on %llux%llu, %zu nnz: %d iterations, relative error %.2e\n",
              static_cast<unsigned long long>(rows), static_cast<unsigned long long>(cols),
              a.nnz(), used_iters, std::sqrt(err / norm));

  // What the explicit A^T build costs on the simulated vector machine.
  const vsim::MachineConfig config;
  const u64 hism_cycles =
      kernels::time_hism_transpose(HismMatrix::from_coo(coo, config.section), config).cycles;
  const u64 crs_cycles = kernels::time_crs_transpose(a, config).cycles;
  std::printf("\nbuilding the explicit A^T once on the simulated vector processor:\n");
  std::printf("  HiSM + STM:          %9llu cycles\n",
              static_cast<unsigned long long>(hism_cycles));
  std::printf("  CRS (Pissanetsky):   %9llu cycles  (%.1fx slower)\n",
              static_cast<unsigned long long>(crs_cycles),
              static_cast<double>(crs_cycles) / static_cast<double>(hism_cycles));
  // HiSM's third option: multiply by A^T directly — the symmetric 8+8-bit
  // positions let the same blocks drive y[col] += v * x[row], so no
  // transposition is needed at all.
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const auto forward = kernels::run_hism_spmv(hism, std::vector<float>(cols, 1.0f), config);
  const auto backward =
      kernels::run_hism_spmv_transposed(hism, std::vector<float>(rows, 1.0f), config);
  std::printf("\nper-iteration products on the simulated machine (HiSM, no explicit A^T):\n");
  std::printf("  y = A x:             %9llu cycles\n",
              static_cast<unsigned long long>(forward.stats.cycles));
  std::printf("  y = A^T x direct:    %9llu cycles  (transpose-free)\n",
              static_cast<unsigned long long>(backward.stats.cycles));
  std::printf("\n(each CGLS iteration does one A*p and one A^T*r product; HiSM either\n"
              "builds the explicit A^T ~%0.fx cheaper than CRS, or skips it entirely\n"
              "via the mirror positional multiply-accumulate)\n",
              static_cast<double>(crs_cycles) / static_cast<double>(hism_cycles));
  return 0;
}
