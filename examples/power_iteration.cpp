// Power iteration on the simulated vector machine: repeatedly multiply by a
// sparse matrix (HiSM positional multiply-accumulate on the simulated
// processor), normalizing on the host between steps — an end-to-end
// iterative workload where the SpMV kernel's simulated cycle cost
// accumulates across a whole solve.
//
//   ./power_iteration [--dim=1024] [--nnz=20000] [--iters=30]
#include <cmath>
#include <cstdio>

#include "formats/csr.hpp"
#include "kernels/spmv.hpp"
#include "suite/generators.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const Index dim = static_cast<Index>(cli.get_int("dim", 1024));
  const usize nnz = static_cast<usize>(cli.get_int("nnz", 20000));
  const int iters = static_cast<int>(cli.get_int("iters", 30));
  cli.finish();

  // A random non-negative matrix plus a strong diagonal: a well-behaved
  // dominant eigenpair for power iteration.
  Rng rng(29);
  Coo coo = suite::gen_random_uniform(dim, dim, nnz, rng);
  for (Index i = 0; i < dim; ++i) coo.add(i, i, 2.0f);
  coo.canonicalize();

  const vsim::MachineConfig config;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const Csr csr = Csr::from_coo(coo);

  std::vector<float> x(dim, 1.0f / std::sqrt(static_cast<float>(dim)));
  double lambda = 0.0;
  u64 total_cycles = 0;
  int used = 0;
  for (int k = 0; k < iters; ++k) {
    const auto product = kernels::run_hism_spmv(hism, x, config);
    total_cycles += product.stats.cycles;
    ++used;

    double dot_xy = 0.0;
    double norm_sq = 0.0;
    for (usize i = 0; i < x.size(); ++i) {
      dot_xy += static_cast<double>(x[i]) * product.y[i];
      norm_sq += static_cast<double>(product.y[i]) * product.y[i];
    }
    const double next_lambda = dot_xy;  // Rayleigh quotient (x normalized)
    const double norm = std::sqrt(norm_sq);
    for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(product.y[i] / norm);
    if (k > 2 && std::fabs(next_lambda - lambda) < 1e-7 * std::fabs(next_lambda)) {
      lambda = next_lambda;
      break;
    }
    lambda = next_lambda;
  }

  // Cross-check against a host-side power iteration.
  std::vector<float> xref(dim, 1.0f / std::sqrt(static_cast<float>(dim)));
  double lambda_ref = 0.0;
  for (int k = 0; k < used; ++k) {
    const auto y = csr.spmv(xref);
    double dot_xy = 0.0;
    double norm_sq = 0.0;
    for (usize i = 0; i < xref.size(); ++i) {
      dot_xy += static_cast<double>(xref[i]) * y[i];
      norm_sq += static_cast<double>(y[i]) * y[i];
    }
    lambda_ref = dot_xy;
    const double norm = std::sqrt(norm_sq);
    for (usize i = 0; i < xref.size(); ++i) xref[i] = static_cast<float>(y[i] / norm);
  }

  std::printf("power iteration on %llux%llu, %zu nnz:\n",
              static_cast<unsigned long long>(dim), static_cast<unsigned long long>(dim),
              coo.nnz());
  std::printf("  dominant eigenvalue: %.6f (host reference: %.6f)\n", lambda, lambda_ref);
  std::printf("  %d simulated SpMV steps, %llu total cycles (%.2f cycles/nnz/step)\n", used,
              static_cast<unsigned long long>(total_cycles),
              static_cast<double>(total_cycles) / static_cast<double>(used) /
                  static_cast<double>(coo.nnz()));
  const bool agree = std::fabs(lambda - lambda_ref) < 1e-3 * std::fabs(lambda_ref) + 1e-6;
  std::printf("  simulated and host iterations %s\n", agree ? "agree" : "DISAGREE");
  return agree ? 0 : 1;
}
