// Transpose showdown: run both transposition kernels — HiSM on the
// STM-equipped vector processor vs vectorized CRS (Pissanetsky) — on one
// matrix and report cycle counts, per-element costs, and the speedup.
//
//   ./transpose_showdown [--matrix=<path.mtx>] [--pattern=banded] [--dim=4096]
//                        [--nnz=40000] [--B=4] [--L=4] [--no-verify] [--stats]
#include <cstdio>

#include "formats/csr.hpp"
#include "formats/matrix_market.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "suite/generators.hpp"
#include "suite/metrics.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const std::string path = cli.get_string("matrix", "");
  const std::string pattern = cli.get_string("pattern", "banded");
  const Index dim = static_cast<Index>(cli.get_int("dim", 4096));
  const usize nnz = static_cast<usize>(cli.get_int("nnz", 40000));
  const u32 bandwidth = static_cast<u32>(cli.get_int("B", 4));
  const u32 lines = static_cast<u32>(cli.get_int("L", 4));
  const bool no_verify = cli.get_flag("no-verify");
  const bool stats = cli.get_flag("stats");
  cli.finish();

  Rng rng(11);
  Coo matrix;
  if (!path.empty()) {
    matrix = read_matrix_market_file(path);
  } else if (pattern == "banded") {
    matrix = suite::gen_banded_rows(dim, 12, 24, rng);
  } else if (pattern == "random") {
    matrix = suite::gen_random_uniform(dim, dim, nnz, rng);
  } else if (pattern == "clusters") {
    matrix = suite::gen_block_clusters((dim + 31) / 32 * 32, nnz / 200 + 1, 200, rng);
  } else if (pattern == "diagonal") {
    matrix = suite::gen_diagonal(dim, rng);
  } else {
    std::fprintf(stderr, "unknown --pattern=%s\n", pattern.c_str());
    return 2;
  }

  const suite::MatrixMetrics metrics = suite::compute_metrics(matrix);
  std::printf("matrix: %llu x %llu, %zu nnz, locality %.2f, %.1f nnz/row\n",
              static_cast<unsigned long long>(metrics.rows),
              static_cast<unsigned long long>(metrics.cols), metrics.nnz, metrics.locality,
              metrics.avg_nnz_per_row);

  vsim::MachineConfig config;  // the paper's machine: s=64, p=4, chaining
  config.stm.bandwidth = bandwidth;
  config.stm.lines = lines;

  const HismMatrix hism = HismMatrix::from_coo(matrix, config.section);
  const Csr csr = Csr::from_coo(matrix);
  const Coo expected = matrix.transposed();

  std::printf("\nHiSM + STM (B=%u, L=%u):\n", bandwidth, lines);
  const auto hism_result = kernels::run_hism_transpose(hism, config);
  const bool hism_ok =
      no_verify || structurally_equal(hism_result.transposed.to_coo(), expected);
  std::printf("  %llu cycles, %.2f cycles/nnz, %llu STM block passes  [%s]\n",
              static_cast<unsigned long long>(hism_result.stats.cycles),
              static_cast<double>(hism_result.stats.cycles) /
                  static_cast<double>(std::max<usize>(1, metrics.nnz)),
              static_cast<unsigned long long>(hism_result.stats.stm_blocks),
              no_verify ? "not verified" : (hism_ok ? "verified" : "WRONG"));

  std::printf("CRS (Pissanetsky, vectorized):\n");
  const auto crs_result = kernels::run_crs_transpose(csr, config);
  const bool crs_ok = no_verify || structurally_equal(crs_result.transposed, expected);
  std::printf("  %llu cycles, %.2f cycles/nnz, %llu indexed element accesses  [%s]\n",
              static_cast<unsigned long long>(crs_result.stats.cycles),
              static_cast<double>(crs_result.stats.cycles) /
                  static_cast<double>(std::max<usize>(1, metrics.nnz)),
              static_cast<unsigned long long>(crs_result.stats.mem_indexed_elements),
              no_verify ? "not verified" : (crs_ok ? "verified" : "WRONG"));

  std::printf("\nspeedup (CRS cycles / HiSM cycles): %.1fx\n",
              static_cast<double>(crs_result.stats.cycles) /
                  static_cast<double>(std::max<u64>(1, hism_result.stats.cycles)));
  if (stats) {
    std::printf("\n-- HiSM kernel --\n%s", vsim::run_stats_summary(hism_result.stats).c_str());
    std::printf("\n-- CRS kernel --\n%s", vsim::run_stats_summary(crs_result.stats).c_str());
  }
  return hism_ok && crs_ok ? 0 : 1;
}
