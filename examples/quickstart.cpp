// Quickstart: build a sparse matrix, store it in the HiSM format, transpose
// it with the simulated STM-equipped vector processor, and verify the result
// against the pure-software reference.
//
//   ./quickstart
#include <cstdio>

#include "formats/coo.hpp"
#include "hism/hism.hpp"
#include "hism/transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "support/rng.hpp"
#include "vsim/config.hpp"

int main() {
  using namespace smtu;

  // 1. A 500 x 300 sparse matrix with ~4000 random non-zeros.
  Rng rng(2026);
  Coo matrix(500, 300);
  for (const u64 cell : rng.sample_without_replacement(500 * 300, 4000)) {
    matrix.add(cell / 300, cell % 300, static_cast<float>(rng.uniform(0.1, 1.0)));
  }
  matrix.canonicalize();
  std::printf("matrix: %llu x %llu, %zu non-zeros\n",
              static_cast<unsigned long long>(matrix.rows()),
              static_cast<unsigned long long>(matrix.cols()), matrix.nnz());

  // 2. Convert to the Hierarchical Sparse Matrix format for the paper's
  //    s = 64 vector machine.
  const vsim::MachineConfig config;  // section 64, B = 4, L = 4, chaining on
  const HismMatrix hism = HismMatrix::from_coo(matrix, config.section);
  std::printf("HiSM: %u levels, %zu level-0 block-arrays\n", hism.num_levels(),
              hism.level(0).size());

  // 3. Run the recursive transpose kernel (Fig. 6/7 of the paper) on the
  //    simulated vector processor with the STM functional unit.
  const kernels::HismTransposeResult result = kernels::run_hism_transpose(hism, config);
  std::printf("simulated transpose: %llu cycles (%.2f cycles per non-zero), "
              "%llu instructions, %llu s^2-block passes through the STM\n",
              static_cast<unsigned long long>(result.stats.cycles),
              static_cast<double>(result.stats.cycles) / static_cast<double>(matrix.nnz()),
              static_cast<unsigned long long>(result.stats.instructions),
              static_cast<unsigned long long>(result.stats.stm_blocks));

  // 4. Verify: decoded simulator output == software reference transpose.
  const Coo expected = matrix.transposed();
  const bool simulator_correct = structurally_equal(result.transposed.to_coo(), expected);
  const bool reference_correct = structurally_equal(transposed(hism).to_coo(), expected);
  std::printf("verification: simulator %s, software reference %s\n",
              simulator_correct ? "OK" : "MISMATCH", reference_correct ? "OK" : "MISMATCH");
  return simulator_correct && reference_correct ? 0 : 1;
}
