// SpMV demo: multiply a sparse matrix by a vector three ways on the
// simulated machine — HiSM (positional multiply-accumulate), CRS
// (gather-reduce), and Jagged Diagonals — and check them against the host
// reference.
//
//   ./spmv_demo [--pattern=clusters|banded|random] [--dim=2048] [--nnz=40000]
#include <cmath>
#include <cstdio>

#include "formats/csr.hpp"
#include "formats/jagged.hpp"
#include "kernels/spmv.hpp"
#include "suite/generators.hpp"
#include "suite/metrics.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const std::string pattern = cli.get_string("pattern", "clusters");
  const Index dim = static_cast<Index>(cli.get_int("dim", 2048));
  const usize nnz = static_cast<usize>(cli.get_int("nnz", 40000));
  cli.finish();

  Rng rng(23);
  Coo matrix;
  if (pattern == "clusters") {
    matrix = suite::gen_block_clusters((dim + 31) / 32 * 32, nnz / 300 + 1, 300, rng);
  } else if (pattern == "banded") {
    matrix = suite::gen_banded_rows(dim, 16, 32, rng);
  } else if (pattern == "random") {
    matrix = suite::gen_random_uniform(dim, dim, nnz, rng);
  } else {
    std::fprintf(stderr, "unknown --pattern=%s\n", pattern.c_str());
    return 2;
  }
  const suite::MatrixMetrics metrics = suite::compute_metrics(matrix);
  std::printf("matrix: %llu x %llu, %zu nnz, locality %.2f\n",
              static_cast<unsigned long long>(metrics.rows),
              static_cast<unsigned long long>(metrics.cols), metrics.nnz, metrics.locality);

  std::vector<float> x(matrix.cols());
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const Csr csr = Csr::from_coo(matrix);
  const std::vector<float> reference = csr.spmv(x);

  const vsim::MachineConfig config;
  auto check = [&](const std::vector<float>& y) {
    for (usize i = 0; i < y.size(); ++i) {
      if (std::fabs(y[i] - reference[i]) > 1e-3f * std::max(1.0f, std::fabs(reference[i]))) {
        return "WRONG";
      }
    }
    return "verified";
  };

  const auto hism =
      kernels::run_hism_spmv(HismMatrix::from_coo(matrix, config.section), x, config);
  const auto crs = kernels::run_crs_spmv(csr, x, config);
  const auto jd = kernels::run_jd_spmv(Jagged::from_coo(matrix), x, config);

  const double n = static_cast<double>(std::max<usize>(1, metrics.nnz));
  std::printf("\n  HiSM: %9llu cycles  (%.2f cycles/nnz)  [%s]\n",
              static_cast<unsigned long long>(hism.stats.cycles),
              static_cast<double>(hism.stats.cycles) / n, check(hism.y));
  std::printf("  CRS:  %9llu cycles  (%.2f cycles/nnz)  [%s]\n",
              static_cast<unsigned long long>(crs.stats.cycles),
              static_cast<double>(crs.stats.cycles) / n, check(crs.y));
  std::printf("  JD:   %9llu cycles  (%.2f cycles/nnz)  [%s]\n",
              static_cast<unsigned long long>(jd.stats.cycles),
              static_cast<double>(jd.stats.cycles) / n, check(jd.y));
  std::printf("\nHiSM speedup: %.1fx vs CRS, %.1fx vs JD\n",
              static_cast<double>(crs.stats.cycles) / static_cast<double>(hism.stats.cycles),
              static_cast<double>(jd.stats.cycles) / static_cast<double>(hism.stats.cycles));
  return 0;
}
