// HiSM explorer: inspect how a matrix decomposes into the hierarchical
// block format and what it costs to store, next to CRS and Jagged Diagonal.
//
//   ./hism_explorer [--matrix=<path.mtx>] [--section=64] [--pattern=stencil5]
//                   [--dim=1000] [--nnz=20000] [--trace-json=<out.json>]
//
// Without --matrix, a synthetic matrix is generated (--pattern one of:
// random, stencil5, stencil9, banded, diagonal, clusters).
//
// --trace-json additionally runs the HiSM transposition kernel on the
// simulated STM-equipped machine, prints its cycle statistics, and dumps the
// execution trace in Chrome trace-event format (open in chrome://tracing or
// Perfetto; one track per functional unit — see docs/TRACE.md).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "formats/csr.hpp"
#include "formats/jagged.hpp"
#include "formats/matrix_market.hpp"
#include "hism/stats.hpp"
#include "kernels/hism_transpose.hpp"
#include "suite/generators.hpp"
#include "suite/metrics.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "vsim/json_export.hpp"

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const std::string path = cli.get_string("matrix", "");
  const u32 section = static_cast<u32>(cli.get_int("section", 64));
  const std::string pattern = cli.get_string("pattern", "stencil5");
  const Index dim = static_cast<Index>(cli.get_int("dim", 1000));
  const usize nnz = static_cast<usize>(cli.get_int("nnz", 20000));
  const std::string trace_json = cli.get_string("trace-json", "");
  cli.finish();

  Rng rng(7);
  Coo matrix;
  if (!path.empty()) {
    matrix = read_matrix_market_file(path);
    std::printf("loaded %s\n", path.c_str());
  } else if (pattern == "random") {
    matrix = suite::gen_random_uniform(dim, dim, nnz, rng);
  } else if (pattern == "stencil5") {
    matrix = suite::gen_stencil5(static_cast<Index>(std::max<i64>(2, i64(dim) / 32)), rng);
  } else if (pattern == "stencil9") {
    matrix = suite::gen_stencil9(static_cast<Index>(std::max<i64>(2, i64(dim) / 32)), rng);
  } else if (pattern == "banded") {
    matrix = suite::gen_banded_rows(dim, 12, 24, rng);
  } else if (pattern == "diagonal") {
    matrix = suite::gen_diagonal(dim, rng);
  } else if (pattern == "clusters") {
    matrix = suite::gen_block_clusters((dim + 31) / 32 * 32, nnz / 128 + 1, 128, rng);
  } else {
    std::fprintf(stderr, "unknown --pattern=%s\n", pattern.c_str());
    return 2;
  }

  const suite::MatrixMetrics metrics = suite::compute_metrics(matrix);
  std::printf("\nmatrix: %llu x %llu, %zu non-zeros\n",
              static_cast<unsigned long long>(metrics.rows),
              static_cast<unsigned long long>(metrics.cols), metrics.nnz);
  std::printf("locality (32x32 metric of the paper): %.2f\n", metrics.locality);
  std::printf("average non-zeros per row (ANZ):      %.2f\n", metrics.avg_nnz_per_row);

  const HismMatrix hism = HismMatrix::from_coo(matrix, section);
  const HismStats stats = compute_stats(hism);
  std::printf("\nHiSM decomposition at s = %u: %u levels\n", section, stats.levels);
  TextTable levels({"level", "block-arrays", "entries", "avg fill"});
  for (u32 k = 0; k < stats.levels; ++k) {
    const double fill = stats.blocks_per_level[k] == 0
                            ? 0.0
                            : static_cast<double>(stats.entries_per_level[k]) /
                                  static_cast<double>(stats.blocks_per_level[k]);
    levels.add_row({format("%u%s", k, k == 0 ? " (values)" : " (pointers)"),
                    format("%zu", stats.blocks_per_level[k]),
                    format("%zu", stats.entries_per_level[k]), format("%.1f", fill)});
  }
  levels.print(std::cout);
  std::printf("hierarchy overhead: %.2f%% of HiSM storage (paper: ~2-5%% at s=64)\n",
              100.0 * stats.overhead_fraction);

  const Csr csr = Csr::from_coo(matrix);
  const Jagged jd = Jagged::from_coo(matrix);
  const u64 jd_bytes = static_cast<u64>(jd.values().size()) * 8 + jd.perm().size() * 4 +
                       jd.diag_ptr().size() * 4;
  std::printf("\nstorage: HiSM %llu bytes | CRS %llu bytes | JD %llu bytes\n",
              static_cast<unsigned long long>(stats.storage_bytes),
              static_cast<unsigned long long>(csr.storage_bytes()),
              static_cast<unsigned long long>(jd_bytes));
  std::printf("HiSM/CRS ratio: %.2f\n", static_cast<double>(stats.storage_bytes) /
                                            static_cast<double>(csr.storage_bytes()));

  if (!trace_json.empty()) {
    vsim::MachineConfig machine_config;
    machine_config.section = section;
    vsim::ExecutionTrace trace(usize{1} << 20);
    std::printf("\nsimulated HiSM transposition (s=%u, STM B=%u, L=%u):\n", section,
                machine_config.stm.bandwidth, machine_config.stm.lines);
    const auto result = kernels::run_hism_transpose(
        hism, machine_config, /*split_drain_registers=*/false, &trace);
    if (!structurally_equal(result.transposed.to_coo(), matrix.transposed())) {
      std::fprintf(stderr, "simulated transpose does not match the reference\n");
      return 1;
    }
    std::fputs(vsim::run_stats_summary(result.stats).c_str(), stdout);
    std::ofstream trace_out(trace_json);
    if (!trace_out) {
      std::fprintf(stderr, "cannot open %s\n", trace_json.c_str());
      return 2;
    }
    vsim::write_chrome_trace(trace_out, trace, "hism_transpose");
    std::printf("wrote Chrome trace (%zu events, %llu dropped) to %s\n",
                trace.events().size(), static_cast<unsigned long long>(trace.dropped()),
                trace_json.c_str());
  }
  return 0;
}
