# Vectorized inclusive scan-add (prefix sum) over a u32 array — the Wang et
# al. log-step scheme used by phase 2 of the CRS transposition kernel:
# within each 64-element strip, log2(64) = 6 slide-and-add rounds; a scalar
# carry links strips.
#
# Inputs:  r1 = &array, r2 = element count
# Effect:  array[i] = sum of array[0..i]
#
# Run with: ./vsim_run programs/scan.s --r1=4096 --r2=200 --timeline
main:
    li    r3, 0              # carry
loop:
    beq   r2, r0, done
    setvl r4, r2
    sub   r2, r2, r4
    v_ld  vr1, (r1)
    v_slideup vr2, vr1, 1
    v_add vr1, vr1, vr2
    v_slideup vr2, vr1, 2
    v_add vr1, vr1, vr2
    v_slideup vr2, vr1, 4
    v_add vr1, vr1, vr2
    v_slideup vr2, vr1, 8
    v_add vr1, vr1, vr2
    v_slideup vr2, vr1, 16
    v_add vr1, vr1, vr2
    v_slideup vr2, vr1, 32
    v_add vr1, vr1, vr2
    v_adds vr1, vr1, r3      # fold in the carry from the previous strip
    v_st  vr1, (r1)
    addi  r5, r4, -1
    v_extract r3, vr1, r5    # carry = last element of this strip
    slli  r5, r4, 2
    add   r1, r1, r5
    beq   r0, r0, loop
done:
    halt
