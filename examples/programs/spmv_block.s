# One s^2-block of the HiSM sparse matrix-vector product: stream the
# block-array, gather x by each element's 8-bit column position, multiply,
# and scatter-accumulate into y by the row position — the positional
# multiply-accumulate of the HiSM ISA extension.
#
# Inputs:  r1 = position base, r2 = element count, r3 = value base,
#          r4 = &x window, r5 = &y window
#
# Run with: ./vsim_run programs/spmv_block.s --r1=4096 --r2=0 --r3=4096 --r4=8192 --r5=12288
main:
    beq   r2, r0, done
loop:
    ssvl  r2
    v_ldb vr1, vr2, r1, r3   # values + packed positions
    v_gthc vr3, (r4), vr2    # x[col(pos)]
    v_fmul vr4, vr1, vr3
    v_scar vr4, (r5), vr2    # y[row(pos)] += product
    bne   r2, r0, loop
done:
    halt
