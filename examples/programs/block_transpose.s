# Transpose one s^2-block through the STM — the inner code of the paper's
# Fig. 7, verbatim structure: fill the s x s memory row-wise (v_ldb +
# v_stcr), then drain it column-wise (v_ldcc + v_stb), in place.
#
# Inputs:  r1 = block-array position base, r2 = block length n,
#          r3 = block-array value base (= r1 + align4(2n))
#
# Run with: ./vsim_run programs/block_transpose.s --r1=4096 --r2=0 --r3=4096
main:
    beq   r2, r0, done
    icm                      # clear the non-zero indicators
    mv    r4, r1             # position cursor
    mv    r5, r3             # value cursor
    mv    r6, r2             # remaining
fill:
    ssvl  r6                 # set vector length, decrement remaining
    v_ldb vr1, vr2, r4, r5   # load block elements      (Fig. 7: v_ldb)
    v_stcr vr1, vr2          # store row-wise in s x s  (Fig. 7: v_stcr)
    bne   r6, r0, fill
    mv    r4, r1
    mv    r5, r3
    mv    r6, r2
drain:
    ssvl  r6
    v_ldcc vr1, vr2          # load column-wise         (Fig. 7: v_ldcc)
    v_stb vr1, vr2, r4, r5   # store block elements     (Fig. 7: v_stb)
    bne   r6, r0, drain
done:
    halt
