# Transpose one s^2-block through the STM — the inner code of the paper's
# Fig. 7, verbatim structure: fill the s x s memory row-wise (v_ldb +
# v_stcr), then drain it column-wise (v_ldcc + v_stb), in place.
#
# Inputs:  r1 = block-array position base, r2 = block length n,
#          r3 = block-array value base (= r1 + align4(2n))
#          r7 = if non-zero, first synthesize a demo block of n entries on
#               the anti-diagonal (entry i at row i, column n-1-i, value i),
#               so the program is runnable without externally staged memory
#
# Run with: ./vsim_run programs/block_transpose.s --r1=4096 --r2=0 --r3=4096
# Demo:     ./vsim_run programs/block_transpose.s --r1=4096 --r2=16 --r3=8192 \
#               --r7=1 --timeline --trace-json=block_transpose_trace.json
# Profile:  add --profile for the cycle-attribution tables (docs/PROFILING.md)
main:
    beq   r2, r0, done
    beq   r7, r0, transpose
    li    r8, 0              # ---- stage the demo block: i = 0..n-1 --------
;; profile: stage_demo
init:
    bge   r8, r2, transpose
    slli  r9, r8, 1
    add   r9, r9, r1         # &positions[i]
    sb    r8, 0(r9)          # row = i
    sub   r10, r2, r8
    addi  r10, r10, -1
    sb    r10, 1(r9)         # col = n-1-i
    slli  r10, r8, 2
    add   r10, r10, r3       # &values[i]
    sw    r8, (r10)          # value = i
    addi  r8, r8, 1
    beq   r0, r0, init
;; profile: end
transpose:
    icm                      # clear the non-zero indicators
    mv    r4, r1             # position cursor
    mv    r5, r3             # value cursor
    mv    r6, r2             # remaining
;; profile: fill
fill:
    ssvl  r6                 # set vector length, decrement remaining
    v_ldb vr1, vr2, r4, r5   # load block elements      (Fig. 7: v_ldb)
    v_stcr vr1, vr2          # store row-wise in s x s  (Fig. 7: v_stcr)
    bne   r6, r0, fill
;; profile: end
    mv    r4, r1
    mv    r5, r3
    mv    r6, r2
;; profile: drain
drain:
    ssvl  r6
    v_ldcc vr1, vr2          # load column-wise         (Fig. 7: v_ldcc)
    v_stb vr1, vr2, r4, r5   # store block elements     (Fig. 7: v_stb)
    bne   r6, r0, drain
;; profile: end
done:
    halt
