# Scalar histogram: counts[v]++ for every v in the input — exactly the code
# shape of the CRS transposition's phase 1 (the part §IV-A of the paper
# deliberately left scalar). Watch the load-latency-bound dependent chain
# with --timeline.
#
# Inputs:  r1 = &values (u32), r2 = count, r3 = &bins (u32, zeroed)
#
# Run with: ./vsim_run programs/histogram.s --r1=4096 --r2=256 --r3=16384 --timeline
main:
    beq   r2, r0, done
loop:
    lw    r4, (r1)           # v
    slli  r4, r4, 2
    add   r4, r4, r3         # &bins[v]
    lw    r5, (r4)
    addi  r5, r5, 1
    sw    r5, (r4)
    addi  r1, r1, 4
    addi  r2, r2, -1
    bne   r2, r0, loop
done:
    halt
