# Vector dot product of two 256-element arrays.
#
# Inputs:  r1 = &a, r2 = &b, r3 = element count
# Output:  r4 = float bits of sum(a[i] * b[i])
#
# Run with: ./vsim_run programs/dot_product.s --r1=4096 --r2=8192 --r3=256 --dump-regs
main:
    li    r4, 0              # accumulator (0.0f)
loop:
    beq   r3, r0, done
    setvl r5, r3
    sub   r3, r3, r5
    v_ld  vr1, (r1)
    v_ld  vr2, (r2)
    v_fmul vr3, vr1, vr2
    v_fredsum r6, vr3
    fadd  r4, r4, r6
    slli  r7, r5, 2
    add   r1, r1, r7
    add   r2, r2, r7
    beq   r0, r0, loop
done:
    halt
