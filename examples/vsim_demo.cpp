// vsim demo: assemble and run a small vector program, showing the paper's
// machine model at work — strip mining with ssvl, the 20-cycle memory
// startup, the contiguous-vs-indexed bandwidth gap, and vector chaining.
//
//   ./vsim_demo [--trace]
#include <cstdio>

#include "support/cli.hpp"
#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace {

// A vectorized SAXPY over 1000 elements: y[i] += 2 * x[i], strip-mined by
// the section size.
constexpr const char* kSaxpy = R"asm(
    li   r1, 1000          # elements remaining
    li   r2, 0x10000       # &x
    li   r3, 0x20000       # &y
loop:
    setvl r4, r1           # vl = min(s, remaining)
    sub  r1, r1, r4
    v_ld vr1, (r2)         # x slice
    v_ld vr2, (r3)         # y slice
    v_add vr3, vr1, vr1    # 2*x (integer lanes in this demo)
    v_add vr4, vr2, vr3
    v_st vr4, (r3)
    slli r5, r4, 2
    add  r2, r2, r5
    add  r3, r3, r5
    bne  r1, r0, loop
    halt
)asm";

}  // namespace

int main(int argc, char** argv) {
  using namespace smtu;
  CommandLine cli(argc, argv);
  const bool trace = cli.get_flag("trace");
  cli.finish();

  const vsim::Program program = vsim::assemble(kSaxpy);
  std::printf("assembled %zu instructions\n", program.size());

  auto run_with = [&](bool chaining) {
    vsim::MachineConfig config;
    config.chaining = chaining;
    vsim::Machine machine(config);
    for (u32 i = 0; i < 1000; ++i) {
      machine.memory().write_u32(0x10000 + 4 * i, i);
      machine.memory().write_u32(0x20000 + 4 * i, 1000 - i);
    }
    if (trace && chaining) machine.enable_trace(40);
    const vsim::RunStats stats = machine.run(program);
    // Spot-check the result: y[i] = (1000 - i) + 2i = 1000 + i.
    for (u32 i = 0; i < 1000; ++i) {
      if (machine.memory().read_u32(0x20000 + 4 * i) != 1000 + i) {
        std::fprintf(stderr, "wrong result at %u\n", i);
        std::exit(1);
      }
    }
    return stats;
  };

  const vsim::RunStats chained = run_with(true);
  const vsim::RunStats unchained = run_with(false);

  std::printf("\nsaxpy over 1000 elements (16 strips of s = 64):\n");
  std::printf("  with chaining:    %6llu cycles  (%llu instructions, %llu vector)\n",
              static_cast<unsigned long long>(chained.cycles),
              static_cast<unsigned long long>(chained.instructions),
              static_cast<unsigned long long>(chained.vector_instructions));
  std::printf("  without chaining: %6llu cycles  (+%.0f%%)\n",
              static_cast<unsigned long long>(unchained.cycles),
              100.0 * (static_cast<double>(unchained.cycles) /
                           static_cast<double>(chained.cycles) -
                       1.0));
  std::printf("\nmemory model sanity (paper examples):\n");

  vsim::Machine machine{vsim::MachineConfig{}};
  machine.memory().ensure(0, 1 << 20);
  const auto contiguous = machine.run(vsim::assemble(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\nhalt\n"));
  const auto indexed = machine.run(vsim::assemble(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_bcasti vr0, 0\nv_ldx vr1, (r2), vr0\nhalt\n"));
  std::printf("  contiguous 64-word load: %llu cycles (paper: 20 + 64/4 = 36)\n",
              static_cast<unsigned long long>(contiguous.cycles));
  std::printf("  indexed 64-element load: %llu cycles (paper: 20 + 64 = 84)\n",
              static_cast<unsigned long long>(indexed.cycles));
  return 0;
}
