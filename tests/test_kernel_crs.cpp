// Integration tests: the vectorized CRS (Pissanetsky) transpose kernel of
// Fig. 9 running on the simulated vector processor, verified against the
// pure-C++ reference.
#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "kernels/crs_transpose.hpp"
#include "testing.hpp"
#include "vsim/config.hpp"

namespace smtu {
namespace {

using kernels::CrsTransposeResult;
using kernels::run_crs_transpose;
using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

TEST(CrsKernel, TinyMatrix) {
  const Coo coo = make_coo(4, 4, {{0, 1, 1.0f}, {1, 3, 2.0f}, {2, 0, 3.0f}, {3, 2, 4.0f}});
  const vsim::MachineConfig config;
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), config);
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
  EXPECT_GT(result.stats.cycles, 0u);
  EXPECT_EQ(result.stats.stm_blocks, 0u);  // the baseline never touches the STM
}

TEST(CrsKernel, RandomSquare) {
  Rng rng(3);
  const Coo coo = random_coo(200, 200, 1500, rng);
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(CrsKernel, RandomRectangularWide) {
  Rng rng(4);
  const Coo coo = random_coo(60, 300, 900, rng);
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  const Coo expected = coo.transposed();
  EXPECT_EQ(result.transposed.rows(), 300u);
  EXPECT_EQ(result.transposed.cols(), 60u);
  EXPECT_TRUE(coo_equal(result.transposed, expected));
}

TEST(CrsKernel, RandomRectangularTall) {
  Rng rng(5);
  const Coo coo = random_coo(300, 60, 900, rng);
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(CrsKernel, RowsLongerThanSection) {
  // Rows of 150 non-zeros strip-mine into multiple segments (s = 64).
  Coo coo(8, 256);
  float v = 0.0f;
  for (Index r = 0; r < 8; ++r) {
    for (Index c = 0; c < 150; ++c) coo.add(r, (c * 3 + r) % 256, v += 1.0f);
  }
  coo.canonicalize();
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(CrsKernel, EmptyRowsAndColumns) {
  const Coo coo = make_coo(100, 100, {{0, 99, 1.0f}, {50, 50, 2.0f}, {99, 0, 3.0f}});
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(CrsKernel, EmptyMatrix) {
  const Coo coo(32, 32);
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_EQ(result.transposed.nnz(), 0u);
}

TEST(CrsKernel, DiagonalMatrix) {
  Coo coo(128, 128);
  for (Index i = 0; i < 128; ++i) coo.add(i, i, static_cast<float>(i + 1));
  coo.canonicalize();
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_TRUE(coo_equal(result.transposed, coo));  // diagonal is self-transpose
}

TEST(CrsKernel, SmallSectionMachine) {
  Rng rng(6);
  const Coo coo = random_coo(90, 90, 400, rng);
  vsim::MachineConfig config;
  config.section = 16;
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), config);
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(ScalarCrsKernel, MatchesReference) {
  Rng rng(20);
  const Coo coo = random_coo(150, 150, 1100, rng);
  const auto result = kernels::run_scalar_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
  EXPECT_EQ(result.stats.vector_instructions, 0u);  // pure scalar code
}

TEST(ScalarCrsKernel, MatchesVectorKernelOutput) {
  Rng rng(21);
  const Coo coo = random_coo(80, 120, 700, rng);
  const Csr csr = Csr::from_coo(coo);
  const auto scalar = kernels::run_scalar_crs_transpose(csr, {});
  const auto vectorized = kernels::run_crs_transpose(csr, {});
  EXPECT_TRUE(coo_equal(scalar.transposed, vectorized.transposed));
}

TEST(ScalarCrsKernel, EmptyAndEdgeShapes) {
  EXPECT_EQ(kernels::run_scalar_crs_transpose(Csr::from_coo(Coo(16, 16)), {})
                .transposed.nnz(),
            0u);
  const Coo single = make_coo(1, 200, {{0, 173, 5.0f}});
  EXPECT_TRUE(coo_equal(
      kernels::run_scalar_crs_transpose(Csr::from_coo(single), {}).transposed,
      single.transposed()));
}

TEST(ScalarCrsKernel, VectorKernelIsFasterOnLongRows) {
  // The point of the vector machine: on matrices with decent row lengths
  // the vectorized kernel clearly beats the scalar one.
  Coo coo(64, 4096);
  Rng rng(22);
  for (Index r = 0; r < 64; ++r) {
    for (const u64 c : rng.sample_without_replacement(4096, 200)) {
      coo.add(r, c, static_cast<float>(rng.uniform(0.1, 1.0)));
    }
  }
  coo.canonicalize();
  const Csr csr = Csr::from_coo(coo);
  const u64 scalar_cycles = kernels::time_scalar_crs_transpose(csr, {}).cycles;
  const u64 vector_cycles = kernels::time_crs_transpose(csr, {}).cycles;
  EXPECT_LT(vector_cycles, scalar_cycles);
}

TEST(CrsKernel, MaskedPhase1ProducesSameResult) {
  // The rejected §IV-A variant must still be *correct*.
  Rng rng(23);
  const Coo coo = random_coo(60, 60, 300, rng);
  kernels::CrsKernelOptions options;
  options.masked_phase1 = true;
  const auto result = kernels::run_crs_transpose(Csr::from_coo(coo), {}, options);
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(CrsKernel, ZeroThresholdAllVectorVariantCorrect) {
  Rng rng(24);
  const Coo coo = random_coo(100, 100, 300, rng);
  kernels::CrsKernelOptions options;
  options.short_row_threshold = 0;
  const auto result = kernels::run_crs_transpose(Csr::from_coo(coo), {}, options);
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(CrsKernel, DenseMatrix) {
  Rng rng(8);
  Coo coo(40, 40);
  for (Index r = 0; r < 40; ++r) {
    for (Index c = 0; c < 40; ++c) coo.add(r, c, static_cast<float>(rng.uniform(0.5, 1.5)));
  }
  coo.canonicalize();
  const CrsTransposeResult result = run_crs_transpose(Csr::from_coo(coo), {});
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

}  // namespace
}  // namespace smtu
