// Bit-identity of the threaded-code interpreter (handlers bound at decode
// time, SoA ExecState) against the legacy switch interpreter retained behind
// DispatchMode::kSwitch. Every representative kernel class runs under both
// modes; RunStats, profiler attribution, result matrices, and raw memory
// images must match bit for bit — the dispatch rework is a host-side
// optimization and must not move a single simulated cycle.
//
// Also covers the hoisted span bounds check of the contiguous vector memory
// paths: out-of-range accesses abort with the same diagnostics in both
// modes.
#include <gtest/gtest.h>

#include <bit>

#include "formats/csr.hpp"
#include "formats/sell.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/layout.hpp"
#include "kernels/shard.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/sell_spmv.hpp"
#include "testing.hpp"
#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"
#include "vsim/profiler.hpp"
#include "vsim/system.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

// Restores the process-wide dispatch default on scope exit, so death tests
// and mode sweeps cannot leak state into other tests.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(vsim::DispatchMode mode) : saved_(vsim::default_dispatch_mode()) {
    vsim::set_default_dispatch_mode(mode);
  }
  ~ScopedDispatch() { vsim::set_default_dispatch_mode(saved_); }

 private:
  vsim::DispatchMode saved_;
};

void expect_stats_equal(const vsim::RunStats& a, const vsim::RunStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.scalar_instructions, b.scalar_instructions);
  EXPECT_EQ(a.vector_instructions, b.vector_instructions);
  EXPECT_EQ(a.vector_elements, b.vector_elements);
  EXPECT_EQ(a.mem_contiguous_bytes, b.mem_contiguous_bytes);
  EXPECT_EQ(a.mem_indexed_elements, b.mem_indexed_elements);
  EXPECT_EQ(a.stm_blocks, b.stm_blocks);
  EXPECT_EQ(a.stm_write_cycles, b.stm_write_cycles);
  EXPECT_EQ(a.stm_read_cycles, b.stm_read_cycles);
  EXPECT_EQ(a.stm_elements, b.stm_elements);
  EXPECT_EQ(a.vmem_busy_cycles, b.vmem_busy_cycles);
  EXPECT_EQ(a.valu_busy_cycles, b.valu_busy_cycles);
  EXPECT_EQ(a.stm_busy_cycles, b.stm_busy_cycles);
}

void expect_profilers_equal(const vsim::PerfCounters& a, const vsim::PerfCounters& b) {
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
  EXPECT_EQ(a.attributed_cycles(), b.attributed_cycles());
  EXPECT_EQ(a.stall_cycles(), b.stall_cycles());
  EXPECT_EQ(a.busy_cycles(), b.busy_cycles());
}

Coo test_matrix(u64 seed = 11, Index rows = 300, Index cols = 280, usize nnz = 2500) {
  Rng rng(seed);
  return random_coo(rows, cols, nnz, rng);
}

// ---- HiSM transpose: stats, profile, and the raw memory image ------------

TEST(DispatchModes, HismTransposeBitIdentical) {
  const Coo coo = test_matrix();
  const vsim::MachineConfig config;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const auto program = vsim::assemble(kernels::hism_transpose_source());

  auto run_mode = [&](vsim::DispatchMode mode, vsim::PerfCounters& profiler,
                      std::vector<u8>& image_out) {
    ScopedDispatch scoped(mode);
    vsim::Machine machine(config);
    EXPECT_EQ(machine.dispatch(), mode);
    const HismImage image = kernels::stage_hism(machine, hism);
    machine.set_sreg(1, image.root_addr);
    machine.set_sreg(2, image.root_len);
    machine.set_sreg(3, image.levels - 1);
    machine.set_sreg(vsim::kRegSp, kernels::kStackTop);
    machine.attach_profiler(&profiler);
    const vsim::RunStats stats = machine.run(program);
    const std::span<const u8> raw = machine.memory().raw();
    image_out.assign(raw.begin(), raw.end());
    return stats;
  };

  vsim::PerfCounters threaded_prof, switch_prof;
  std::vector<u8> threaded_image, switch_image;
  const vsim::RunStats threaded = run_mode(vsim::DispatchMode::kThreaded, threaded_prof,
                                           threaded_image);
  const vsim::RunStats legacy = run_mode(vsim::DispatchMode::kSwitch, switch_prof,
                                         switch_image);

  expect_stats_equal(threaded, legacy);
  expect_profilers_equal(threaded_prof, switch_prof);
  EXPECT_EQ(threaded_image, switch_image);
}

// ---- CRS transpose baseline ----------------------------------------------

TEST(DispatchModes, CrsTransposeBitIdentical) {
  const Csr csr = Csr::from_coo(test_matrix(23));
  const vsim::MachineConfig config;

  vsim::PerfCounters threaded_prof, switch_prof;
  kernels::CrsTransposeResult threaded, legacy;
  {
    ScopedDispatch scoped(vsim::DispatchMode::kThreaded);
    threaded = kernels::run_crs_transpose(csr, config, {}, &threaded_prof);
  }
  {
    ScopedDispatch scoped(vsim::DispatchMode::kSwitch);
    legacy = kernels::run_crs_transpose(csr, config, {}, &switch_prof);
  }
  expect_stats_equal(threaded.stats, legacy.stats);
  expect_profilers_equal(threaded_prof, switch_prof);
  EXPECT_TRUE(coo_equal(threaded.transposed, legacy.transposed));
}

// ---- SELL-C-sigma SpMV ----------------------------------------------------

TEST(DispatchModes, SellSpmvBitIdentical) {
  const Coo coo = test_matrix(31, 400, 256, 3000);
  const SellCSigma sell = SellCSigma::from_coo(coo, 16, 0);
  std::vector<float> x(static_cast<usize>(coo.cols()));
  Rng rng(5);
  for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  vsim::SystemConfig config;

  kernels::SellSpmvResult threaded, legacy;
  {
    ScopedDispatch scoped(vsim::DispatchMode::kThreaded);
    threaded = kernels::run_sell_spmv(sell, x, config);
  }
  {
    ScopedDispatch scoped(vsim::DispatchMode::kSwitch);
    legacy = kernels::run_sell_spmv(sell, x, config);
  }
  EXPECT_EQ(threaded.stats.cycles, legacy.stats.cycles);
  ASSERT_EQ(threaded.stats.core_stats.size(), legacy.stats.core_stats.size());
  for (usize c = 0; c < threaded.stats.core_stats.size(); ++c) {
    expect_stats_equal(threaded.stats.core_stats[c], legacy.stats.core_stats[c]);
  }
  // Float results must match bitwise, not just approximately.
  ASSERT_EQ(threaded.y.size(), legacy.y.size());
  for (usize i = 0; i < threaded.y.size(); ++i) {
    EXPECT_EQ(std::bit_cast<u32>(threaded.y[i]), std::bit_cast<u32>(legacy.y[i])) << i;
  }
}

// ---- SpGEMM on the STM ----------------------------------------------------

TEST(DispatchModes, SpgemmBitIdentical) {
  const Coo a = test_matrix(47, 200, 180, 1500);
  const Csr b = Csr::from_coo(test_matrix(48, 200, 120, 1200));
  vsim::SystemConfig config;

  kernels::SpgemmResult threaded, legacy;
  {
    ScopedDispatch scoped(vsim::DispatchMode::kThreaded);
    threaded = kernels::run_hism_spgemm(a, b, config);
  }
  {
    ScopedDispatch scoped(vsim::DispatchMode::kSwitch);
    legacy = kernels::run_hism_spgemm(a, b, config);
  }
  EXPECT_EQ(threaded.stats.cycles, legacy.stats.cycles);
  ASSERT_EQ(threaded.stats.core_stats.size(), legacy.stats.core_stats.size());
  for (usize c = 0; c < threaded.stats.core_stats.size(); ++c) {
    expect_stats_equal(threaded.stats.core_stats[c], legacy.stats.core_stats[c]);
  }
  EXPECT_EQ(threaded.dense.size(), legacy.dense.size());
  for (usize i = 0; i < threaded.dense.size(); ++i) {
    ASSERT_EQ(std::bit_cast<u32>(threaded.dense[i]), std::bit_cast<u32>(legacy.dense[i])) << i;
  }
}

// ---- Multi-core sharded transpose (N = 4) ---------------------------------

TEST(DispatchModes, ShardedTransposeFourCoresBitIdentical) {
  const Coo coo = test_matrix(53, 500, 480, 4000);
  vsim::SystemConfig config;
  config.cores = 4;

  kernels::ShardedHismTransposeResult threaded, legacy;
  std::vector<vsim::PerfCounters> threaded_profs, switch_profs;
  {
    ScopedDispatch scoped(vsim::DispatchMode::kThreaded);
    threaded = kernels::run_sharded_hism_transpose(coo, config, &threaded_profs);
  }
  {
    ScopedDispatch scoped(vsim::DispatchMode::kSwitch);
    legacy = kernels::run_sharded_hism_transpose(coo, config, &switch_profs);
  }
  EXPECT_EQ(threaded.stats.cycles, legacy.stats.cycles);
  EXPECT_EQ(threaded.stats.barriers, legacy.stats.barriers);
  ASSERT_EQ(threaded.stats.core_stats.size(), 4u);
  ASSERT_EQ(legacy.stats.core_stats.size(), 4u);
  for (usize c = 0; c < 4; ++c) {
    expect_stats_equal(threaded.stats.core_stats[c], legacy.stats.core_stats[c]);
  }
  ASSERT_EQ(threaded_profs.size(), switch_profs.size());
  for (usize c = 0; c < threaded_profs.size(); ++c) {
    expect_profilers_equal(threaded_profs[c], switch_profs[c]);
  }
  EXPECT_TRUE(coo_equal(threaded.transposed, legacy.transposed));
}

// ---- Programmatic dispatch selection --------------------------------------

TEST(DispatchModes, PerMachineOverride) {
  ScopedDispatch scoped(vsim::DispatchMode::kThreaded);
  vsim::Machine machine{vsim::MachineConfig{}};
  EXPECT_EQ(machine.dispatch(), vsim::DispatchMode::kThreaded);
  machine.set_dispatch(vsim::DispatchMode::kSwitch);
  EXPECT_EQ(machine.dispatch(), vsim::DispatchMode::kSwitch);
  EXPECT_STREQ(vsim::dispatch_mode_name(vsim::DispatchMode::kThreaded), "threaded");
  EXPECT_STREQ(vsim::dispatch_mode_name(vsim::DispatchMode::kSwitch), "switch");
}

// ---- Hoisted span bounds check --------------------------------------------
//
// The contiguous v_ld/v_st paths check the whole element span once per
// instruction instead of once per element. The abort condition is the exact
// union of the per-element accesses, so an out-of-range vector access must
// still die — with the same diagnostic — under both dispatch modes.

using DispatchDeathTest = ::testing::TestWithParam<vsim::DispatchMode>;

TEST_P(DispatchDeathTest, ContiguousLoadBeyondMemoryAborts) {
  const vsim::DispatchMode mode = GetParam();
  EXPECT_DEATH(
      {
        ScopedDispatch scoped(mode);
        vsim::Machine machine{vsim::MachineConfig{}};
        machine.memory().write_u32(0, 1);  // allocate a small region
        machine.run(vsim::assemble(
            "li r1, 64\n"
            "ssvl r1\n"
            "li r2, 0x100000\n"
            "v_ld vr1, (r2)\n"
            "halt\n"));
      },
      "beyond allocated memory");
}

TEST_P(DispatchDeathTest, ContiguousStoreBeyondLimitAborts) {
  const vsim::DispatchMode mode = GetParam();
  vsim::MachineConfig config;
  config.memory_limit = 0x1000;
  EXPECT_DEATH(
      {
        ScopedDispatch scoped(mode);
        vsim::Machine machine(config);
        machine.run(vsim::assemble(
            "li r1, 64\n"
            "ssvl r1\n"
            "li r2, 0xF80\n"  // span [0xF80, 0x1080) crosses the limit
            "v_st vr1, (r2)\n"
            "halt\n"));
      },
      "exceeds the");
}

INSTANTIATE_TEST_SUITE_P(BothModes, DispatchDeathTest,
                         ::testing::Values(vsim::DispatchMode::kThreaded,
                                           vsim::DispatchMode::kSwitch),
                         [](const ::testing::TestParamInfo<vsim::DispatchMode>& info) {
                           return vsim::dispatch_mode_name(info.param);
                         });

}  // namespace
}  // namespace smtu
