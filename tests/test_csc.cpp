#include <gtest/gtest.h>

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

TEST(Csc, RoundTripThroughCoo) {
  Rng rng(1);
  const Coo coo = random_coo(25, 45, 300, rng);
  const Csc csc = Csc::from_coo(coo);
  EXPECT_TRUE(csc.validate());
  EXPECT_TRUE(coo_equal(csc.to_coo(), coo));
}

TEST(Csc, TransposedCooMatchesReference) {
  Rng rng(2);
  const Coo coo = random_coo(33, 21, 250, rng);
  EXPECT_TRUE(coo_equal(Csc::from_coo(coo).transposed_coo(), coo.transposed()));
}

TEST(Csc, AgreesWithPissanetsky) {
  // Two independent transpose implementations must coincide.
  Rng rng(3);
  const Coo coo = random_coo(60, 60, 500, rng);
  const Coo via_csc = Csc::from_coo(coo).transposed_coo();
  const Coo via_csr = Csr::from_coo(coo).transposed_pissanetsky().to_coo();
  EXPECT_TRUE(coo_equal(via_csc, via_csr));
}

TEST(Csc, EmptyMatrix) {
  const Csc csc = Csc::from_coo(Coo(4, 7));
  EXPECT_TRUE(csc.validate());
  EXPECT_EQ(csc.nnz(), 0u);
  EXPECT_EQ(csc.col_ptr().size(), 8u);
}

TEST(Csc, ColumnPointersDelimitColumns) {
  const Coo coo = make_coo(3, 3, {{0, 1, 1.0f}, {1, 1, 2.0f}, {2, 0, 3.0f}});
  const Csc csc = Csc::from_coo(coo);
  EXPECT_EQ(csc.col_ptr()[0], 0u);
  EXPECT_EQ(csc.col_ptr()[1], 1u);  // column 0 holds one entry
  EXPECT_EQ(csc.col_ptr()[2], 3u);  // column 1 holds two
  EXPECT_EQ(csc.col_ptr()[3], 3u);  // column 2 empty
}

}  // namespace
}  // namespace smtu
