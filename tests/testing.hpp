// Shared helpers for the smtu test suite.
#pragma once

#include <gtest/gtest.h>

#include "formats/coo.hpp"
#include "support/rng.hpp"

namespace smtu::testing {

// Builds a COO matrix from an initializer list of (row, col, value).
inline Coo make_coo(Index rows, Index cols,
                    std::initializer_list<std::tuple<Index, Index, float>> entries) {
  Coo coo(rows, cols);
  for (const auto& [r, c, v] : entries) coo.add(r, c, v);
  coo.canonicalize();
  return coo;
}

// Random matrix with `nnz` distinct positions (deterministic in the rng).
inline Coo random_coo(Index rows, Index cols, usize nnz, Rng& rng) {
  Coo coo(rows, cols);
  for (const u64 cell : rng.sample_without_replacement(rows * cols, nnz)) {
    coo.add(cell / cols, cell % cols, static_cast<float>(rng.uniform(0.5, 2.0)));
  }
  coo.canonicalize();
  return coo;
}

// gtest matcher-style assertion: two matrices are structurally identical.
inline ::testing::AssertionResult coo_equal(const Coo& lhs, const Coo& rhs) {
  if (structurally_equal(lhs, rhs)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "matrices differ: lhs " << lhs.rows() << "x" << lhs.cols() << "/" << lhs.nnz()
         << " vs rhs " << rhs.rows() << "x" << rhs.cols() << "/" << rhs.nnz();
}

}  // namespace smtu::testing
