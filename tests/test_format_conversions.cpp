// All-pairs format conversion property sweep: every storage format in the
// library must round-trip any matrix through COO unchanged, and every
// format's SpMV must agree with the CSR reference.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/bcsr.hpp"
#include "formats/cds.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/jagged.hpp"
#include "hism/hism.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

struct ShapeCase {
  Index rows;
  Index cols;
  usize nnz;
  u64 seed;
};

void PrintTo(const ShapeCase& c, std::ostream* os) {
  *os << c.rows << "x" << c.cols << "/" << c.nnz;
}

class FormatRoundTrip : public ::testing::TestWithParam<ShapeCase> {
 protected:
  Coo matrix() const {
    Rng rng(GetParam().seed);
    return random_coo(GetParam().rows, GetParam().cols, GetParam().nnz, rng);
  }
};

TEST_P(FormatRoundTrip, AllFormatsPreserveTheMatrix) {
  const Coo coo = matrix();
  EXPECT_TRUE(coo_equal(Csr::from_coo(coo).to_coo(), coo));
  EXPECT_TRUE(coo_equal(Csc::from_coo(coo).to_coo(), coo));
  EXPECT_TRUE(coo_equal(Jagged::from_coo(coo).to_coo(), coo));
  EXPECT_TRUE(coo_equal(Cds::from_coo(coo).to_coo(), coo));
  EXPECT_TRUE(coo_equal(Bcsr::from_coo(coo, 4, 4).to_coo(), coo));
  EXPECT_TRUE(coo_equal(Bcsr::from_coo(coo, 3, 7).to_coo(), coo));
  EXPECT_TRUE(coo_equal(HismMatrix::from_coo(coo, 8).to_coo(), coo));
  EXPECT_TRUE(coo_equal(HismMatrix::from_coo(coo, 64).to_coo(), coo));
  if (coo.rows() * coo.cols() <= 65536) {
    EXPECT_TRUE(coo_equal(Dense::from_coo(coo).to_coo(), coo));
  }
}

TEST_P(FormatRoundTrip, AllSpmvsAgree) {
  const Coo coo = matrix();
  Rng rng(GetParam().seed ^ 0xabcdef);
  std::vector<float> x(coo.cols());
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const std::vector<float> reference = Csr::from_coo(coo).spmv(x);
  const auto check = [&](const std::vector<float>& y, const char* which) {
    ASSERT_EQ(y.size(), reference.size()) << which;
    for (usize i = 0; i < y.size(); ++i) {
      ASSERT_NEAR(y[i], reference[i], 1e-4f * std::max(1.0f, std::fabs(reference[i])))
          << which << " row " << i;
    }
  };
  check(Jagged::from_coo(coo).spmv(x), "jd");
  check(Cds::from_coo(coo).spmv(x), "cds");
  check(Bcsr::from_coo(coo, 4, 4).spmv(x), "bcsr");
}

TEST_P(FormatRoundTrip, TransposePathsAgree) {
  const Coo coo = matrix();
  const Coo expected = coo.transposed();
  EXPECT_TRUE(coo_equal(Csr::from_coo(coo).transposed_pissanetsky().to_coo(), expected));
  EXPECT_TRUE(coo_equal(Csc::from_coo(coo).transposed_coo(), expected));
  EXPECT_TRUE(coo_equal(Bcsr::from_coo(coo, 4, 4).transposed().to_coo(), expected));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FormatRoundTrip,
    ::testing::Values(ShapeCase{1, 1, 1, 1}, ShapeCase{1, 100, 40, 2},
                      ShapeCase{100, 1, 40, 3}, ShapeCase{17, 17, 60, 4},
                      ShapeCase{64, 64, 500, 5}, ShapeCase{65, 63, 500, 6},
                      ShapeCase{128, 32, 700, 7}, ShapeCase{32, 128, 700, 8},
                      ShapeCase{200, 200, 4000, 9}, ShapeCase{255, 257, 2000, 10},
                      ShapeCase{50, 50, 2500, 11}  /* fully dense */));

}  // namespace
}  // namespace smtu
