#include <gtest/gtest.h>

#include "vsim/memory.hpp"

namespace smtu::vsim {
namespace {

TEST(Memory, ReadBackWrites) {
  Memory mem;
  mem.write_u32(0x100, 0xdeadbeef);
  EXPECT_EQ(mem.read_u32(0x100), 0xdeadbeefu);
  mem.write_u16(0x200, 0x1234);
  EXPECT_EQ(mem.read_u16(0x200), 0x1234u);
  mem.write_u8(0x300, 0xab);
  EXPECT_EQ(mem.read_u8(0x300), 0xabu);
}

TEST(Memory, LittleEndianLayout) {
  Memory mem;
  mem.write_u32(0, 0x04030201);
  EXPECT_EQ(mem.read_u8(0), 0x01u);
  EXPECT_EQ(mem.read_u8(1), 0x02u);
  EXPECT_EQ(mem.read_u8(2), 0x03u);
  EXPECT_EQ(mem.read_u8(3), 0x04u);
  EXPECT_EQ(mem.read_u16(0), 0x0201u);
}

TEST(Memory, FloatRoundTrip) {
  Memory mem;
  mem.write_f32(16, 3.25f);
  EXPECT_FLOAT_EQ(mem.read_f32(16), 3.25f);
}

TEST(Memory, GrowsOnDemandZeroFilled) {
  Memory mem;
  mem.write_u8(10000, 1);
  EXPECT_GE(mem.size(), 10001u);
  EXPECT_EQ(mem.read_u32(9990), 0u);
}

TEST(Memory, WriteBlockAndRaw) {
  Memory mem;
  const std::vector<u8> data = {1, 2, 3, 4, 5};
  mem.write_block(64, data);
  EXPECT_EQ(mem.read_u8(64), 1u);
  EXPECT_EQ(mem.read_u8(68), 5u);
  EXPECT_EQ(mem.raw()[66], 3u);
}

TEST(MemoryDeathTest, ReadBeyondAllocationAborts) {
  Memory mem;
  mem.write_u8(8, 1);
  EXPECT_DEATH(mem.read_u32(1 << 20), "beyond allocated");
}

TEST(MemoryDeathTest, ExceedingLimitAborts) {
  Memory mem(1024);
  EXPECT_DEATH(mem.write_u8(2048, 1), "limit");
}

}  // namespace
}  // namespace smtu::vsim
