#include <gtest/gtest.h>

#include "suite/dsab.hpp"
#include "suite/generators.hpp"
#include "suite/metrics.hpp"
#include "testing.hpp"

namespace smtu::suite {
namespace {

TEST(Metrics, DiagonalMatrix) {
  Rng rng(1);
  const MatrixMetrics m = compute_metrics(gen_diagonal(64, rng));
  EXPECT_EQ(m.nnz, 64u);
  EXPECT_DOUBLE_EQ(m.avg_nnz_per_row, 1.0);
  // Diagonal blocks hold 32 entries each: locality = 32/32 = 1.
  EXPECT_DOUBLE_EQ(m.locality, 1.0);
}

TEST(Metrics, DenseMatrixLocalityIsMax) {
  Rng rng(2);
  const MatrixMetrics m = compute_metrics(gen_dense(64, 64, rng));
  EXPECT_DOUBLE_EQ(m.locality, 32.0);  // 1024 per block / 32
  EXPECT_DOUBLE_EQ(m.avg_nnz_per_row, 64.0);
}

TEST(Metrics, EmptyMatrix) {
  const MatrixMetrics m = compute_metrics(Coo(10, 10));
  EXPECT_EQ(m.nnz, 0u);
  EXPECT_DOUBLE_EQ(m.locality, 0.0);
}

TEST(Generators, BlockClustersDialLocalityExactly) {
  Rng rng(3);
  for (const u32 per_block : {2u, 13u, 129u, 411u}) {
    const Coo coo = gen_block_clusters(2048, 40, per_block, rng);
    const MatrixMetrics m = compute_metrics(coo);
    EXPECT_DOUBLE_EQ(m.locality, per_block / 32.0) << "per_block=" << per_block;
    EXPECT_EQ(m.nnz, 40u * per_block);
  }
}

TEST(Generators, BandedRowsHitAnz) {
  Rng rng(4);
  const Coo coo = gen_banded_rows(1000, 17, 34, rng);
  const MatrixMetrics m = compute_metrics(coo);
  EXPECT_NEAR(m.avg_nnz_per_row, 17.0, 0.5);
}

TEST(Generators, Stencil5HasFivePointRows) {
  Rng rng(5);
  const Coo coo = gen_stencil5(10, rng);
  EXPECT_EQ(coo.rows(), 100u);
  // 5n - 4*grid interior/boundary count.
  EXPECT_EQ(coo.nnz(), 5u * 100 - 4 * 10);
}

TEST(Generators, Stencil9CornerHasFourNeighbors) {
  Rng rng(6);
  const Coo coo = gen_stencil9(8, rng);
  usize corner_row_nnz = 0;
  for (const CooEntry& e : coo.entries()) {
    if (e.row == 0) ++corner_row_nnz;
  }
  EXPECT_EQ(corner_row_nnz, 4u);  // self + right + down + diag
}

TEST(Generators, RandomUniformExactNnz) {
  Rng rng(7);
  const Coo coo = gen_random_uniform(100, 200, 1234, rng);
  EXPECT_EQ(coo.nnz(), 1234u);
  EXPECT_EQ(coo.rows(), 100u);
  EXPECT_EQ(coo.cols(), 200u);
}

TEST(Generators, PowerlawRowsSkewed) {
  Rng rng(8);
  const Coo coo = gen_powerlaw_rows(500, 5000, 1.0, rng);
  // The first row must be much denser than a deep-tail row.
  usize first_row = 0;
  usize row_300 = 0;
  for (const CooEntry& e : coo.entries()) {
    if (e.row == 0) ++first_row;
    if (e.row == 300) ++row_300;
  }
  EXPECT_GT(first_row, 5 * std::max<usize>(row_300, 1));
}

TEST(Generators, Deterministic) {
  Rng a(42);
  Rng b(42);
  EXPECT_TRUE(structurally_equal(gen_random_uniform(50, 50, 200, a),
                                 gen_random_uniform(50, 50, 200, b)));
}

TEST(Dsab, ThirtyMatricesInThreeSets) {
  const auto suite = build_dsab_suite({.scale = 0.02});
  EXPECT_EQ(suite.size(), 30u);
  usize locality_count = 0;
  usize anz_count = 0;
  usize size_count = 0;
  for (const auto& entry : suite) {
    if (entry.set == kSetLocality) ++locality_count;
    if (entry.set == kSetAnz) ++anz_count;
    if (entry.set == kSetSize) ++size_count;
    EXPECT_GT(entry.matrix.nnz(), 0u);
    EXPECT_NE(entry.name.find("-syn"), std::string::npos);
  }
  EXPECT_EQ(locality_count, 10u);
  EXPECT_EQ(anz_count, 10u);
  EXPECT_EQ(size_count, 10u);
}

TEST(Dsab, LocalitySetIsMonotoneInLocality) {
  const auto set = build_dsab_set(kSetLocality, {.scale = 0.05});
  for (usize i = 1; i < set.size(); ++i) {
    EXPECT_GT(set[i].metrics.locality, set[i - 1].metrics.locality)
        << set[i - 1].name << " -> " << set[i].name;
  }
  // Paper range: 0.07 .. 12.85.
  EXPECT_NEAR(set.front().metrics.locality, 0.07, 0.03);
  EXPECT_NEAR(set.back().metrics.locality, 12.85, 0.5);
}

TEST(Dsab, AnzSetIsMonotoneInAnz) {
  const auto set = build_dsab_set(kSetAnz, {.scale = 0.1});
  for (usize i = 1; i < set.size(); ++i) {
    EXPECT_GT(set[i].metrics.avg_nnz_per_row, set[i - 1].metrics.avg_nnz_per_row);
  }
  EXPECT_NEAR(set.front().metrics.avg_nnz_per_row, 1.0, 0.1);
  EXPECT_NEAR(set.back().metrics.avg_nnz_per_row, 172.0, 10.0);
}

TEST(Dsab, SizeSetIsMonotoneInNnz) {
  const auto set = build_dsab_set(kSetSize, {.scale = 0.05});
  for (usize i = 1; i < set.size(); ++i) {
    EXPECT_GT(set[i].metrics.nnz, set[i - 1].metrics.nnz);
  }
}

TEST(Dsab, FullScaleSizeEndpointsMatchPaper) {
  // Only the two endpoint matrices at full scale (cheap to generate).
  const auto set = build_dsab_set(kSetSize, {});
  EXPECT_EQ(set.front().metrics.nnz, 48u);           // bcsstm01: 48 non-zeros
  EXPECT_NEAR(static_cast<double>(set.back().metrics.nnz), 3753461.0,
              3753461.0 * 0.05);                     // s3dkt3m2: ~3.75M
}

TEST(Dsab, DeterministicAcrossCalls) {
  const auto a = build_dsab_set(kSetAnz, {.scale = 0.05});
  const auto b = build_dsab_set(kSetAnz, {.scale = 0.05});
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(structurally_equal(a[i].matrix, b[i].matrix));
  }
}

}  // namespace
}  // namespace smtu::suite
