// Compound cross-module scenarios: chains of operations a real user would
// string together — mutate, then transpose on the machine, then random
// access; export/import through MatrixMarket around a simulated transpose;
// HiSM arithmetic feeding the SpMV kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "formats/matrix_market.hpp"
#include "hism/access.hpp"
#include "hism/mutate.hpp"
#include "hism/ops.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/spmv.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

TEST(CompoundIntegration, MutateThenSimulatedTransposeThenAccess) {
  Rng rng(1);
  vsim::MachineConfig config;
  config.section = 8;

  Coo coo = random_coo(80, 80, 400, rng);
  HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  // Mutate: overwrite one element, insert a fresh one, remove another.
  const CooEntry victim = coo.entries()[5];
  hism_set(hism, victim.row, victim.col, 99.0f);
  hism_set(hism, 79, 79, 7.0f);
  const CooEntry removed = coo.entries()[10];
  ASSERT_TRUE(hism_remove(hism, removed.row, removed.col));

  // The host-side model of the same edits.
  Coo model = coo;
  for (CooEntry& e : model.entries()) {
    if (e.row == victim.row && e.col == victim.col) e.value = 99.0f;
  }
  model.add(79, 79, 7.0f);
  std::erase_if(model.entries(), [&](const CooEntry& e) {
    return e.row == removed.row && e.col == removed.col;
  });
  model.canonicalize();

  // Simulated transpose of the mutated matrix.
  const auto result = kernels::run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), model.transposed()));

  // Random access into the kernel's output.
  EXPECT_FLOAT_EQ(hism_get(result.transposed, victim.col, victim.row).value(), 99.0f);
  EXPECT_FLOAT_EQ(hism_get(result.transposed, 79, 79).value(), 7.0f);
  EXPECT_FALSE(hism_get(result.transposed, removed.col, removed.row).has_value());
}

TEST(CompoundIntegration, MatrixMarketRoundTripAroundSimulatedTranspose) {
  Rng rng(2);
  const vsim::MachineConfig config;
  const Coo coo = random_coo(120, 60, 700, rng);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "smtu_compound";
  std::filesystem::create_directories(dir);
  const std::string in_path = (dir / "input.mtx").string();
  const std::string out_path = (dir / "transposed.mtx").string();

  write_matrix_market_file(in_path, coo);
  const Coo loaded = read_matrix_market_file(in_path);
  const auto result =
      kernels::run_hism_transpose(HismMatrix::from_coo(loaded, config.section), config);
  write_matrix_market_file(out_path, result.transposed.to_coo());
  const Coo reloaded = read_matrix_market_file(out_path);

  EXPECT_TRUE(coo_equal(reloaded, coo.transposed()));
  std::filesystem::remove_all(dir);
}

TEST(CompoundIntegration, HismArithmeticFeedsSpmvKernel) {
  Rng rng(3);
  vsim::MachineConfig config;
  config.section = 8;
  const Coo a = random_coo(60, 60, 300, rng);
  const Coo b = random_coo(60, 60, 300, rng);

  // C = 2A + B assembled entirely in the HiSM domain.
  const HismMatrix c = hism_add(hism_scale(HismMatrix::from_coo(a, 8), 2.0f),
                                HismMatrix::from_coo(b, 8));

  std::vector<float> x(60);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto simulated = kernels::run_hism_spmv(c, x, config);

  // Host reference: y = 2*A*x + B*x.
  const auto ya = Csr::from_coo(a).spmv(x);
  const auto yb = Csr::from_coo(b).spmv(x);
  for (usize i = 0; i < 60; ++i) {
    EXPECT_NEAR(simulated.y[i], 2.0f * ya[i] + yb[i],
                1e-3f * std::max(1.0f, std::fabs(yb[i]) + std::fabs(ya[i])))
        << i;
  }
}

TEST(CompoundIntegration, TransposeThenTransposedSpmvEqualsForwardSpmv) {
  // (A^T)^T x via: kernel-transpose A, then the transpose-free A^T-product
  // of the *transposed* matrix — which is A x again.
  Rng rng(4);
  const vsim::MachineConfig config;
  const Coo coo = random_coo(100, 100, 800, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  std::vector<float> x(100);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const auto forward = kernels::run_hism_spmv(hism, x, config);
  const auto transposed_matrix = kernels::run_hism_transpose(hism, config).transposed;
  const auto round_about = kernels::run_hism_spmv_transposed(transposed_matrix, x, config);

  for (usize i = 0; i < 100; ++i) {
    EXPECT_NEAR(forward.y[i], round_about.y[i],
                1e-4f * std::max(1.0f, std::fabs(forward.y[i])))
        << i;
  }
}

}  // namespace
}  // namespace smtu
