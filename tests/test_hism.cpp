#include <gtest/gtest.h>

#include "hism/hism.hpp"
#include "hism/stats.hpp"
#include "hism/transpose.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

TEST(Hism, SingleLevelWhenMatrixFitsOneBlock) {
  const Coo coo = make_coo(8, 8, {{1, 2, 3.0f}});
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  EXPECT_EQ(hism.num_levels(), 1u);
  EXPECT_TRUE(hism.validate());
  EXPECT_TRUE(coo_equal(hism.to_coo(), coo));
}

TEST(Hism, LevelCountMatchesPaperFormula) {
  // q = max(ceil(log_s M), ceil(log_s N)).
  Rng rng(1);
  EXPECT_EQ(HismMatrix::from_coo(random_coo(64, 64, 10, rng), 8).num_levels(), 2u);
  EXPECT_EQ(HismMatrix::from_coo(random_coo(65, 8, 10, rng), 8).num_levels(), 3u);
  EXPECT_EQ(HismMatrix::from_coo(random_coo(8, 513, 10, rng), 8).num_levels(), 4u);
  EXPECT_EQ(HismMatrix::from_coo(random_coo(4096, 4096, 10, rng), 64).num_levels(), 2u);
}

TEST(Hism, RoundTripRandom) {
  Rng rng(2);
  const Coo coo = random_coo(100, 140, 700, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 16);
  EXPECT_TRUE(hism.validate());
  EXPECT_EQ(hism.nnz(), coo.nnz());
  EXPECT_TRUE(coo_equal(hism.to_coo(), coo));
}

TEST(Hism, BlockEntriesAreRowMajor) {
  Rng rng(3);
  const HismMatrix hism = HismMatrix::from_coo(random_coo(50, 50, 400, rng), 8);
  for (u32 k = 0; k < hism.num_levels(); ++k) {
    for (const BlockArray& block : hism.level(k)) {
      for (usize i = 1; i < block.size(); ++i) {
        const BlockPos& prev = block.pos[i - 1];
        const BlockPos& cur = block.pos[i];
        EXPECT_TRUE(prev.row < cur.row || (prev.row == cur.row && prev.col < cur.col));
      }
    }
  }
}

TEST(Hism, PositionsFitEightBits) {
  // s <= 256 keeps block positions in one byte each — the format's storage
  // claim in §II.
  Rng rng(4);
  const HismMatrix hism = HismMatrix::from_coo(random_coo(700, 700, 900, rng), 256);
  EXPECT_TRUE(hism.validate());
  EXPECT_TRUE(coo_equal(hism.to_coo(), hism.to_coo()));
}

TEST(Hism, RejectsOversizedSection) {
  EXPECT_DEATH(HismMatrix::from_coo(Coo(4, 4), 257), "section");
}

TEST(Hism, BlockTransposedSwapsAndSorts) {
  BlockArray block;
  block.pos = {{0, 3}, {1, 0}, {1, 2}};
  block.slot = {10, 20, 30};
  const BlockArray t = block_transposed(block);
  ASSERT_EQ(t.size(), 3u);
  // New positions (3,0), (0,1), (2,1) sorted row-major: (0,1), (2,1), (3,0).
  EXPECT_EQ(t.pos[0], (BlockPos{0, 1}));
  EXPECT_EQ(t.slot[0], 20u);
  EXPECT_EQ(t.pos[1], (BlockPos{2, 1}));
  EXPECT_EQ(t.slot[1], 30u);
  EXPECT_EQ(t.pos[2], (BlockPos{3, 0}));
  EXPECT_EQ(t.slot[2], 10u);
}

TEST(Hism, TransposeMatchesCooTranspose) {
  Rng rng(5);
  const Coo coo = random_coo(200, 90, 1000, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 16);
  const HismMatrix t = transposed(hism);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.rows(), coo.cols());
  EXPECT_EQ(t.cols(), coo.rows());
  EXPECT_TRUE(coo_equal(t.to_coo(), coo.transposed()));
}

TEST(Hism, DoubleTransposeIsIdentity) {
  Rng rng(6);
  const Coo coo = random_coo(120, 120, 800, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  EXPECT_TRUE(coo_equal(transposed(transposed(hism)).to_coo(), coo));
}

TEST(Hism, EmptyMatrix) {
  const HismMatrix hism = HismMatrix::from_coo(Coo(100, 100), 8);
  EXPECT_TRUE(hism.validate());
  EXPECT_EQ(hism.nnz(), 0u);
  EXPECT_EQ(hism.root().size(), 0u);
  EXPECT_TRUE(coo_equal(hism.to_coo(), Coo(100, 100)));
}

TEST(HismStats, CountsAndOverhead) {
  Rng rng(7);
  const Coo coo = random_coo(512, 512, 3000, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 64);
  const HismStats stats = compute_stats(hism);
  EXPECT_EQ(stats.nnz, 3000u);
  EXPECT_EQ(stats.levels, 2u);
  EXPECT_EQ(stats.entries_per_level[0], 3000u);
  // Level-1 entries = number of non-empty level-0 blocks.
  EXPECT_EQ(stats.entries_per_level[1], stats.blocks_per_level[0]);
  EXPECT_GT(stats.storage_bytes, stats.level0_bytes);
  EXPECT_GT(stats.avg_block_fill, 0.0);
  EXPECT_LT(stats.overhead_fraction, 0.5);
}

TEST(HismStats, DenseMatrixOverheadIsSmall) {
  // §IV-A: higher-level storage is ~2-5% for s = 64 on typical matrices.
  Coo coo(256, 256);
  for (Index r = 0; r < 256; ++r) {
    for (Index c = 0; c < 256; ++c) coo.add(r, c, 1.0f);
  }
  coo.canonicalize();
  const HismStats stats = compute_stats(HismMatrix::from_coo(coo, 64));
  EXPECT_LT(stats.overhead_fraction, 0.01);
}

}  // namespace
}  // namespace smtu
