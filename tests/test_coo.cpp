#include <gtest/gtest.h>

#include "formats/coo.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::make_coo;
using testing::random_coo;

TEST(Coo, CanonicalizeSortsRowMajor) {
  Coo coo(4, 4);
  coo.add(2, 1, 1.0f);
  coo.add(0, 3, 2.0f);
  coo.add(0, 1, 3.0f);
  coo.canonicalize();
  ASSERT_EQ(coo.nnz(), 3u);
  EXPECT_EQ(coo.entries()[0], (CooEntry{0, 1, 3.0f}));
  EXPECT_EQ(coo.entries()[1], (CooEntry{0, 3, 2.0f}));
  EXPECT_EQ(coo.entries()[2], (CooEntry{2, 1, 1.0f}));
  EXPECT_TRUE(coo.is_canonical());
}

TEST(Coo, CanonicalizeMergesDuplicates) {
  Coo coo(2, 2);
  coo.add(1, 1, 2.0f);
  coo.add(1, 1, 3.0f);
  coo.canonicalize();
  ASSERT_EQ(coo.nnz(), 1u);
  EXPECT_FLOAT_EQ(coo.entries()[0].value, 5.0f);
}

TEST(Coo, CanonicalizeDropsCancellingDuplicates) {
  Coo coo(2, 2);
  coo.add(0, 0, 2.0f);
  coo.add(0, 0, -2.0f);
  coo.add(1, 0, 1.0f);
  coo.canonicalize();
  ASSERT_EQ(coo.nnz(), 1u);
  EXPECT_EQ(coo.entries()[0].row, 1u);
}

TEST(Coo, CanonicalizeIsIdempotent) {
  Rng rng(1);
  Coo coo = random_coo(20, 20, 50, rng);
  const auto once = coo.entries();
  coo.canonicalize();
  EXPECT_EQ(coo.entries(), once);
}

TEST(Coo, TransposeSwapsDimsAndCoords) {
  const Coo coo = make_coo(2, 5, {{0, 4, 1.0f}, {1, 2, 2.0f}});
  const Coo t = coo.transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 2u);
  ASSERT_EQ(t.nnz(), 2u);
  EXPECT_EQ(t.entries()[0], (CooEntry{2, 1, 2.0f}));
  EXPECT_EQ(t.entries()[1], (CooEntry{4, 0, 1.0f}));
}

TEST(Coo, DoubleTransposeIsIdentity) {
  Rng rng(2);
  const Coo coo = random_coo(17, 23, 80, rng);
  EXPECT_TRUE(structurally_equal(coo.transposed().transposed(), coo));
}

TEST(Coo, StructuralEqualityIgnoresEntryOrder) {
  Coo a(3, 3);
  a.add(0, 0, 1.0f);
  a.add(2, 2, 2.0f);
  Coo b(3, 3);
  b.add(2, 2, 2.0f);
  b.add(0, 0, 1.0f);
  EXPECT_TRUE(structurally_equal(a, b));
}

TEST(Coo, StructuralInequalityOnValue) {
  const Coo a = make_coo(2, 2, {{0, 0, 1.0f}});
  const Coo b = make_coo(2, 2, {{0, 0, 2.0f}});
  EXPECT_FALSE(structurally_equal(a, b));
}

TEST(Coo, StructuralInequalityOnShape) {
  const Coo a = make_coo(2, 3, {{0, 0, 1.0f}});
  const Coo b = make_coo(3, 2, {{0, 0, 1.0f}});
  EXPECT_FALSE(structurally_equal(a, b));
}

TEST(Coo, AvgNnzPerRow) {
  const Coo coo = make_coo(4, 4, {{0, 0, 1.0f}, {0, 1, 1.0f}, {1, 0, 1.0f}, {3, 3, 1.0f}});
  EXPECT_DOUBLE_EQ(coo.avg_nnz_per_row(), 1.0);
}

TEST(CooDeathTest, OutOfBoundsEntryAborts) {
  Coo coo(2, 2);
  EXPECT_DEATH(coo.add(2, 0, 1.0f), "out of bounds");
}

}  // namespace
}  // namespace smtu
