#include <gtest/gtest.h>

#include "vsim/assembler.hpp"

namespace smtu::vsim {
namespace {

TEST(Assembler, ParsesScalarOps) {
  const Program p = assemble(
      "li r1, 42\n"
      "addi r2, r1, -3\n"
      "add r3, r1, r2\n"
      "halt\n");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.instructions[0].op, Op::kLi);
  EXPECT_EQ(p.instructions[0].a, 1u);
  EXPECT_EQ(p.instructions[0].imm, 42);
  EXPECT_EQ(p.instructions[1].imm, -3);
  EXPECT_EQ(p.instructions[2].op, Op::kAdd);
}

TEST(Assembler, ParsesMemoryOperands) {
  const Program p = assemble(
      "lw r1, 8(r2)\n"
      "sw r1, (r3)\n"
      "halt\n");
  EXPECT_EQ(p.instructions[0].op, Op::kLw);
  EXPECT_EQ(p.instructions[0].b, 2u);
  EXPECT_EQ(p.instructions[0].imm, 8);
  EXPECT_EQ(p.instructions[1].imm, 0);
}

TEST(Assembler, ResolvesLabelsForwardAndBackward) {
  const Program p = assemble(
      "start:\n"
      "  beq r0, r0, end\n"
      "  bne r1, r0, start\n"
      "end:\n"
      "  halt\n");
  EXPECT_EQ(p.label("start"), 0u);
  EXPECT_EQ(p.label("end"), 2u);
  EXPECT_EQ(p.instructions[0].imm, 2);
  EXPECT_EQ(p.instructions[1].imm, 0);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const Program p = assemble("li r1, 0x10\nli r2, -0x10\nandi r3, r1, -4\nhalt\n");
  EXPECT_EQ(p.instructions[0].imm, 16);
  EXPECT_EQ(p.instructions[1].imm, -16);
  EXPECT_EQ(p.instructions[2].imm, -4);
}

TEST(Assembler, RegisterAliases) {
  const Program p = assemble("mv sp, ra\nadd r1, zero, sp\nhalt\n");
  EXPECT_EQ(p.instructions[0].a, kRegSp);
  EXPECT_EQ(p.instructions[0].b, kRegRa);
  EXPECT_EQ(p.instructions[1].b, kRegZero);
}

TEST(Assembler, PaperMnemonicAliases) {
  // The paper's names map onto the core ops.
  const Program p = assemble(
      "v_ld_idx vr1, (r2), vr0\n"
      "v_st_idx vr1, (r3), vr0\n"
      "v_setimm vr2, 9\n"
      "v_add_imm vr1, vr1, 1\n"
      "halt\n");
  EXPECT_EQ(p.instructions[0].op, Op::kVLdx);
  EXPECT_EQ(p.instructions[1].op, Op::kVStx);
  EXPECT_EQ(p.instructions[2].op, Op::kVBcasti);
  EXPECT_EQ(p.instructions[3].op, Op::kVAddi);
}

TEST(Assembler, HismExtensionOps) {
  const Program p = assemble(
      "icm\n"
      "v_ldb vr1, vr2, r3, r4\n"
      "v_stcr vr1, vr2\n"
      "v_ldcc vr1, vr2\n"
      "v_stb vr1, vr2, r3, r4\n"
      "v_stbv vr1, r4\n"
      "halt\n");
  EXPECT_EQ(p.instructions[0].op, Op::kIcm);
  EXPECT_EQ(p.instructions[1].op, Op::kVLdb);
  EXPECT_EQ(p.instructions[1].c, 3u);
  EXPECT_EQ(p.instructions[1].d, 4u);
  EXPECT_EQ(p.instructions[5].op, Op::kVStbv);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(
      "# full-line comment\n"
      "\n"
      "li r1, 1  # trailing comment\n"
      "li r2, 2  % paper-style comment\n"
      "halt\n");
  ASSERT_EQ(p.size(), 3u);
}

TEST(Assembler, CallAndRet) {
  const Program p = assemble(
      "main: call fn\n"
      "halt\n"
      "fn: ret\n");
  EXPECT_EQ(p.instructions[0].op, Op::kJal);
  EXPECT_EQ(p.instructions[0].a, kRegRa);
  EXPECT_EQ(p.instructions[0].imm, 2);
  EXPECT_EQ(p.instructions[2].op, Op::kJr);
  EXPECT_EQ(p.instructions[2].a, kRegRa);
}

TEST(Assembler, ErrorOnUnknownMnemonic) {
  EXPECT_THROW(assemble("frobnicate r1\n"), AssemblyError);
}

TEST(Assembler, ErrorOnUndefinedLabel) {
  EXPECT_THROW(assemble("beq r0, r0, nowhere\nhalt\n"), AssemblyError);
}

TEST(Assembler, ErrorOnDuplicateLabel) {
  EXPECT_THROW(assemble("a:\na:\nhalt\n"), AssemblyError);
}

TEST(Assembler, ErrorOnBadOperandCount) {
  EXPECT_THROW(assemble("add r1, r2\n"), AssemblyError);
}

TEST(Assembler, ErrorOnBadRegister) {
  EXPECT_THROW(assemble("mv r1, r99\n"), AssemblyError);
  EXPECT_THROW(assemble("v_iota vr99\n"), AssemblyError);
}

TEST(Assembler, ErrorCarriesLineNumber) {
  try {
    assemble("li r1, 1\nbogus\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, ListingShowsLabels) {
  const Program p = assemble("loop: addi r1, r1, 1\nbne r1, r2, loop\nhalt\n");
  const std::string listing = p.listing();
  EXPECT_NE(listing.find("loop:"), std::string::npos);
  EXPECT_NE(listing.find("addi"), std::string::npos);
}

}  // namespace
}  // namespace smtu::vsim
