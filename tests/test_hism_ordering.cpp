// The paper's free ordering choice for higher hierarchy levels (Fig. 2
// stores level 1 column-wise): both orders must be valid, equivalent in
// content, and transparent to every consumer — serialization, random
// access, the reference transpose, and the simulated kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "hism/access.hpp"
#include "hism/image.hpp"
#include "hism/transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/spmv.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

TEST(HismOrdering, ColMajorBuildsValidEquivalentMatrix) {
  Rng rng(1);
  const Coo coo = random_coo(200, 150, 1200, rng);
  const HismMatrix row_major = HismMatrix::from_coo(coo, 8);
  const HismMatrix col_major = HismMatrix::from_coo(coo, 8, HighLevelOrder::kColMajor);
  EXPECT_TRUE(col_major.validate());
  EXPECT_TRUE(coo_equal(col_major.to_coo(), coo));
  EXPECT_EQ(col_major.nnz(), row_major.nnz());
  // Same pool shapes, different entry orderings at levels >= 1.
  for (u32 k = 0; k < col_major.num_levels(); ++k) {
    EXPECT_EQ(col_major.level(k).size(), row_major.level(k).size());
  }
}

TEST(HismOrdering, HigherLevelsAreActuallyColumnMajor) {
  Rng rng(2);
  const Coo coo = random_coo(64, 64, 800, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8, HighLevelOrder::kColMajor);
  ASSERT_EQ(hism.num_levels(), 2u);
  const BlockArray& root = hism.root();
  for (usize i = 1; i < root.size(); ++i) {
    const BlockPos& prev = root.pos[i - 1];
    const BlockPos& cur = root.pos[i];
    EXPECT_TRUE(prev.col != cur.col ? prev.col < cur.col : prev.row < cur.row) << i;
  }
}

TEST(HismOrdering, ImageRoundTripPreservesOrder) {
  Rng rng(3);
  const Coo coo = random_coo(100, 100, 600, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8, HighLevelOrder::kColMajor);
  const HismImage image = build_hism_image(hism, 0x1000);
  const HismMatrix decoded =
      decode_hism_image(image.bytes, image.base, image.root_addr, image.root_len,
                        image.levels, image.section, image.rows, image.cols);
  EXPECT_TRUE(coo_equal(decoded.to_coo(), coo));
}

TEST(HismOrdering, RandomAccessOrderAgnostic) {
  Rng rng(4);
  const Coo coo = random_coo(150, 150, 900, rng);
  const HismMatrix row_major = HismMatrix::from_coo(coo, 8);
  const HismMatrix col_major = HismMatrix::from_coo(coo, 8, HighLevelOrder::kColMajor);
  for (const CooEntry& e : coo.entries()) {
    EXPECT_EQ(hism_get(col_major, e.row, e.col), hism_get(row_major, e.row, e.col));
  }
  for (Index i = 0; i < 150; i += 13) {
    EXPECT_EQ(hism_extract_row(col_major, i), hism_extract_row(row_major, i));
    EXPECT_EQ(hism_extract_col(col_major, i), hism_extract_col(row_major, i));
  }
}

TEST(HismOrdering, TransposeKernelOrderAgnostic) {
  Rng rng(5);
  const Coo coo = random_coo(120, 90, 800, rng);
  vsim::MachineConfig config;
  config.section = 8;
  const HismMatrix col_major =
      HismMatrix::from_coo(coo, config.section, HighLevelOrder::kColMajor);
  const auto result = kernels::run_hism_transpose(col_major, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
  // Timing may differ (the fill stream order differs); content must not.
}

TEST(HismOrdering, SpmvKernelOrderAgnostic) {
  Rng rng(6);
  const Coo coo = random_coo(100, 100, 700, rng);
  vsim::MachineConfig config;
  config.section = 8;
  std::vector<float> x(100);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto row_major =
      kernels::run_hism_spmv(HismMatrix::from_coo(coo, 8), x, config);
  const auto col_major = kernels::run_hism_spmv(
      HismMatrix::from_coo(coo, 8, HighLevelOrder::kColMajor), x, config);
  ASSERT_EQ(row_major.y.size(), col_major.y.size());
  for (usize i = 0; i < row_major.y.size(); ++i) {
    // Blocks visit in a different order, so float accumulation into shared
    // y cells may round differently; tolerance, not bit equality.
    EXPECT_NEAR(row_major.y[i], col_major.y[i],
                1e-4f * std::max(1.0f, std::fabs(row_major.y[i])))
        << i;
  }
}

TEST(HismOrdering, ReferenceTransposeNormalizesToRowMajor) {
  Rng rng(7);
  const Coo coo = random_coo(80, 80, 500, rng);
  const HismMatrix col_major = HismMatrix::from_coo(coo, 8, HighLevelOrder::kColMajor);
  const HismMatrix t = transposed(col_major);
  EXPECT_TRUE(t.validate());
  EXPECT_TRUE(coo_equal(t.to_coo(), coo.transposed()));
}

TEST(HismOrdering, ValidateRejectsUnsortedLevelZero) {
  // Level 0 must stay row-major: a column-major level-0 block with entries
  // that are not also row-major-sorted is invalid.
  Rng rng(8);
  const Coo coo = random_coo(8, 8, 20, rng);
  HismMatrix hism = HismMatrix::from_coo(coo, 8);
  BlockArray& block = hism.level(0)[0];
  ASSERT_GE(block.size(), 2u);
  std::swap(block.pos[0], block.pos[1]);
  std::swap(block.slot[0], block.slot[1]);
  EXPECT_FALSE(hism.validate());
}

}  // namespace
}  // namespace smtu
