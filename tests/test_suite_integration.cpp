// End-to-end integration over the (scaled) benchmark suite: every matrix of
// all three D-SAB sets goes through both transposition kernels on the
// simulated machine with full verification, plus the qualitative claims of
// the paper's figures at small scale.
#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/utilization.hpp"
#include "suite/dsab.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;

constexpr double kScale = 0.06;

class SuiteIntegration : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteIntegration, BothKernelsCorrectOnEveryMatrix) {
  const vsim::MachineConfig config;
  for (const auto& entry : suite::build_dsab_set(GetParam(), {.scale = kScale})) {
    const Coo expected = entry.matrix.transposed();
    const HismMatrix hism = HismMatrix::from_coo(entry.matrix, config.section);
    const auto hism_result = kernels::run_hism_transpose(hism, config);
    ASSERT_TRUE(coo_equal(hism_result.transposed.to_coo(), expected)) << entry.name;
    ASSERT_TRUE(hism_result.transposed.validate()) << entry.name;
    const auto crs_result = kernels::run_crs_transpose(Csr::from_coo(entry.matrix), config);
    ASSERT_TRUE(coo_equal(crs_result.transposed, expected)) << entry.name;
    // The headline claim holds on every suite matrix, even scaled down.
    EXPECT_LT(hism_result.stats.cycles, crs_result.stats.cycles) << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sets, SuiteIntegration,
                         ::testing::Values(suite::kSetLocality, suite::kSetAnz,
                                           suite::kSetSize));

TEST(SuiteIntegrationFigures, SpeedupGrowsWithLocalityAtSmallScale) {
  // Fig. 11's qualitative trend, checked end-to-end: the top half of the
  // locality set must beat the bottom half on average speedup.
  const vsim::MachineConfig config;
  const auto set = suite::build_dsab_set(suite::kSetLocality, {.scale = 0.2});
  double low = 0.0;
  double high = 0.0;
  for (const auto& entry : set) {
    const HismMatrix hism = HismMatrix::from_coo(entry.matrix, config.section);
    const double speedup =
        static_cast<double>(
            kernels::time_crs_transpose(Csr::from_coo(entry.matrix), config).cycles) /
        static_cast<double>(kernels::time_hism_transpose(hism, config).cycles);
    (entry.index < 5 ? low : high) += speedup;
  }
  EXPECT_GT(high, 1.5 * low);
}

TEST(SuiteIntegrationFigures, UtilizationHighestAtBandwidthOne) {
  // Fig. 10's headline ordering on the scaled suite.
  const auto set = suite::build_dsab_set(suite::kSetAnz, {.scale = 0.2});
  double sum_b1 = 0.0;
  double sum_b8 = 0.0;
  for (const auto& entry : set) {
    const HismMatrix hism = HismMatrix::from_coo(entry.matrix, 64);
    StmConfig config;
    config.bandwidth = 1;
    sum_b1 += kernels::stm_utilization(hism, config).utilization;
    config.bandwidth = 8;
    sum_b8 += kernels::stm_utilization(hism, config).utilization;
  }
  EXPECT_GT(sum_b1, sum_b8);
  EXPECT_GT(sum_b1 / 10.0, 0.85);  // near-full at B = 1
}

}  // namespace
}  // namespace smtu
