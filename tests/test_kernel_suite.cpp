// The SpMV/SpGEMM kernel suite on the multi-core machine: SELL-C-σ SpMV
// must be bit-identical to the host CSR reference at every core count, the
// Gustavson-on-HiSM SpGEMM bit-identical to the host product reference, and
// SELL must actually pay off against the CRS kernel on irregular rows.
#include <gtest/gtest.h>

#include <bit>

#include "formats/csr.hpp"
#include "formats/sell.hpp"
#include "kernels/sell_spmv.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmv.hpp"
#include "suite/generators.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

std::vector<float> random_x(Index n, Rng& rng) {
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

void expect_bit_equal(const std::vector<float>& got, const std::vector<float>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (usize i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<u32>(got[i]), std::bit_cast<u32>(want[i]))
        << what << " diverges at element " << i << ": " << got[i] << " vs " << want[i];
  }
}

TEST(SellSpmvKernel, BitIdenticalToHostCsrAcrossCoreCounts) {
  Rng rng(21);
  const Coo coo = suite::gen_powerlaw_rows(300, 2400, 1.3, rng);
  const Csr csr = Csr::from_coo(coo);
  const std::vector<float> x = random_x(coo.cols(), rng);
  const std::vector<float> want = csr.spmv(x);

  for (const u32 sigma : {0u, 32u}) {
    const SellCSigma sell = SellCSigma::from_coo(coo, 64, sigma);
    for (const u32 cores : {1u, 2u, 4u, 8u}) {
      vsim::SystemConfig config;
      config.cores = cores;
      const kernels::SellSpmvResult result = kernels::run_sell_spmv(sell, x, config);
      expect_bit_equal(result.y, want, "SELL SpMV");
    }
  }
}

TEST(SellSpmvKernel, HandlesEmptyRowsAndChunkPadding) {
  Rng rng(22);
  // 13 rows (not a multiple of the chunk), several of them empty.
  Coo coo(13, 13);
  coo.add(0, 3, 1.5f);
  coo.add(4, 0, -2.0f);
  coo.add(4, 12, 0.5f);
  coo.add(12, 6, 3.0f);
  coo.canonicalize();
  const std::vector<float> x = random_x(13, rng);
  const std::vector<float> want = Csr::from_coo(coo).spmv(x);
  for (const u32 cores : {1u, 4u}) {
    vsim::SystemConfig config;
    config.cores = cores;
    const SellCSigma sell = SellCSigma::from_coo(coo, 64, 0);
    const kernels::SellSpmvResult result = kernels::run_sell_spmv(sell, x, config);
    expect_bit_equal(result.y, want, "SELL SpMV with empty rows");
  }
}

TEST(SellSpmvKernel, BeatsCrsKernelOnIrregularRows) {
  Rng rng(23);
  const Coo coo = suite::gen_powerlaw_rows(512, 4096, 1.4, rng);
  const std::vector<float> x = random_x(coo.cols(), rng);

  const vsim::MachineConfig machine_config;
  const auto crs = kernels::run_crs_spmv(Csr::from_coo(coo), x, machine_config);

  // C = 16 balances chunk-padding waste (worst at large C on skewed rows)
  // against per-chunk startup overhead (worst at small C); the global sort
  // keeps similar-length rows in the same chunk.
  vsim::SystemConfig config;
  config.cores = 1;
  const SellCSigma sell = SellCSigma::from_coo(coo, 16, 0);
  const auto sellr = kernels::time_sell_spmv(sell, x, config);
  EXPECT_LT(sellr.cycles, crs.stats.cycles)
      << "SELL-C-σ should beat per-row CRS strip-mining on power-law rows";
}

TEST(SpgemmKernel, BitIdenticalToHostReferenceAcrossCoreCounts) {
  Rng rng(24);
  const Coo a = suite::gen_powerlaw_rows(180, 1200, 1.2, rng);
  const Coo bcoo = random_coo(180, 150, 1400, rng);
  const Csr b = Csr::from_coo(bcoo);
  const std::vector<float> want = kernels::spgemm_at_b_reference_dense(a, b);

  for (const u32 cores : {1u, 2u, 4u, 8u}) {
    vsim::SystemConfig config;
    config.cores = cores;
    const kernels::SpgemmResult result = kernels::run_hism_spgemm(a, b, config);
    EXPECT_EQ(result.rows, a.cols());
    EXPECT_EQ(result.cols, b.cols());
    expect_bit_equal(result.dense, want, "SpGEMM");
  }
}

TEST(SpgemmKernel, ProductMatchesCooReferenceAndHandlesEdgeCases) {
  Rng rng(25);
  // Multi-level hierarchy: 180 > 64 forces at least two HiSM levels.
  const Coo a = random_coo(180, 90, 800, rng);
  const Coo bcoo = random_coo(180, 70, 600, rng);
  const Csr b = Csr::from_coo(bcoo);
  vsim::SystemConfig config;
  config.cores = 2;
  const kernels::SpgemmResult result = kernels::run_hism_spgemm(a, b, config);
  EXPECT_TRUE(coo_equal(result.product, kernels::spgemm_at_b_reference(a, b)));

  // Empty A: the product is all zeros.
  const Coo empty_a(180, 90);
  const kernels::SpgemmResult zero = kernels::run_hism_spgemm(empty_a, b, config);
  EXPECT_EQ(zero.product.nnz(), 0u);
}

TEST(SpgemmKernel, TransposeSemanticsOnASmallKnownProduct) {
  // A = [[1, 2], [0, 3]], B = [[4, 0], [5, 6]];  C = A^T B.
  const Coo a = make_coo(2, 2, {{0, 0, 1.0f}, {0, 1, 2.0f}, {1, 1, 3.0f}});
  const Coo bcoo = make_coo(2, 2, {{0, 0, 4.0f}, {1, 0, 5.0f}, {1, 1, 6.0f}});
  const Csr b = Csr::from_coo(bcoo);
  vsim::SystemConfig config;
  config.cores = 1;
  const kernels::SpgemmResult result = kernels::run_hism_spgemm(a, b, config);
  // A^T = [[1, 0], [2, 3]];  A^T B = [[4, 0], [23, 18]].
  const Coo want =
      make_coo(2, 2, {{0, 0, 4.0f}, {1, 0, 23.0f}, {1, 1, 18.0f}});
  EXPECT_TRUE(coo_equal(result.product, want));
}

}  // namespace
}  // namespace smtu
