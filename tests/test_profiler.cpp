// Cycle-attribution profiler tests (vsim/profiler.hpp, docs/PROFILING.md).
//
// The load-bearing property is conservation: the stall + busy buckets sum
// to the run's cycle count *exactly*, for every program. Each stall-reason
// test below builds a tiny handwritten program whose critical path runs
// through one specific constraint and checks both the conservation
// invariant and that the targeted bucket is charged.
#include <gtest/gtest.h>

#include <sstream>

#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "kernels/crs_transpose.hpp"
#include "support/json.hpp"
#include "vsim/assembler.hpp"
#include "vsim/json_export.hpp"
#include "vsim/machine.hpp"
#include "vsim/profiler.hpp"

namespace smtu::vsim {
namespace {

struct ProfiledRun {
  PerfCounters profile;
  RunStats stats;
};

ProfiledRun run_profiled(const std::string& source, const MachineConfig& config = {}) {
  Machine machine(config);
  machine.memory().ensure(0, 1 << 20);
  ProfiledRun result;
  machine.attach_profiler(&result.profile);
  result.stats = machine.run(assemble(source));
  return result;
}

u64 bucket_sum(const PerfCounters& profile) {
  u64 sum = 0;
  for (const u64 cycles : profile.stall_cycles()) sum += cycles;
  for (const u64 cycles : profile.busy_cycles()) sum += cycles;
  return sum;
}

u64 stall(const ProfiledRun& run, StallReason reason) {
  return run.profile.stall_cycles()[static_cast<usize>(reason)];
}

u64 busy(const ProfiledRun& run, BusyKind kind) {
  return run.profile.busy_cycles()[static_cast<usize>(kind)];
}

void expect_conserved(const ProfiledRun& run) {
  EXPECT_EQ(run.profile.total_cycles(), run.stats.cycles);
  EXPECT_EQ(run.profile.attributed_cycles(), run.stats.cycles);
  EXPECT_EQ(bucket_sum(run.profile), run.stats.cycles);
}

// ---- conservation per stall scenario ---------------------------------------

TEST(Profiler, ScalarFetchAfterTakenBranches) {
  const auto run = run_profiled(
      "li r1, 16\n"
      "loop:\n"
      "addi r1, r1, -1\n"
      "bne r1, r0, loop\n"
      "halt\n");
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kScalarFetch), 0u);
}

TEST(Profiler, RawHazardOnScalarLoadUse) {
  const auto run = run_profiled(
      "li r1, 0x1000\n"
      "sw r1, (r1)\n"
      "lw r2, (r1)\n"
      "addi r3, r2, 1\n"  // uses the load result straight away
      "halt\n");
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kRawHazard), 0u);
}

TEST(Profiler, MemPortContentionBetweenStreams) {
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 0x2000\n"
      "v_ld vr1, (r2)\n"
      "v_ld vr2, (r3)\n"  // independent, but the memory pipe is occupied
      "halt\n");
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kMemPort), 0u);
  EXPECT_GT(busy(run, BusyKind::kVMemStream), 0u);
  EXPECT_EQ(busy(run, BusyKind::kVMemIndexed), 0u);
}

TEST(Profiler, IndexedSerializationChargedSeparately) {
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 0x2000\n"
      "v_bcasti vr0, 0\n"
      "v_ldx vr1, (r2), vr0\n"  // 1 elem/cycle occupant
      "v_ld vr2, (r3)\n"        // queues behind the indexed access
      "halt\n");
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kMemIndexedSerial), 0u);
  EXPECT_GT(busy(run, BusyKind::kVMemIndexed), 0u);
}

TEST(Profiler, ChainingWaitOnProducerFirstElement) {
  // With few lanes the chained consumer outlasts the producer, so the
  // chain-in delay is on the critical path and must be charged.
  MachineConfig config;
  config.lanes = 2;
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "v_ld vr1, (r2)\n"
      "v_add vr2, vr1, vr1\n"  // chains in after the load's first element
      "halt\n",
      config);
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kChainingWait), 0u);
}

TEST(Profiler, RawHazardWithoutChaining) {
  MachineConfig config;
  config.chaining = false;
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "v_ld vr1, (r2)\n"
      "v_add vr2, vr1, vr1\n"  // must wait for the full load now
      "halt\n",
      config);
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kRawHazard), 0u);
  EXPECT_EQ(stall(run, StallReason::kChainingWait), 0u);
}

TEST(Profiler, VregBusyOnWriteAfterRead) {
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 0x2000\n"
      "v_ld vr1, (r2)\n"
      "v_add vr2, vr1, vr1\n"  // long-lived reader of vr1
      "v_ld vr1, (r3)\n"       // must wait for the reader to finish
      "halt\n");
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kVregBusy), 0u);
}

TEST(Profiler, StmBusySerializesFillAndDrain) {
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      "icm\n"
      "v_iota vr2\n"
      "v_bcasti vr1, 7\n"
      "v_stcr vr1, vr2\n"  // fill the s x s memory
      "v_ldcc vr3, vr4\n"  // drain queues behind the fill
      "halt\n");
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kStmBusy), 0u);
  EXPECT_GT(busy(run, BusyKind::kStm), 0u);
}

TEST(Profiler, ValuBusyBetweenIndependentOps) {
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      "v_iota vr1\n"
      "v_add vr2, vr1, vr1\n"
      "v_add vr3, vr1, vr1\n"  // independent, but the vector ALU is taken
      "halt\n");
  expect_conserved(run);
  EXPECT_GT(stall(run, StallReason::kValuBusy), 0u);
  EXPECT_GT(busy(run, BusyKind::kVAlu), 0u);
}

// ---- accumulation and rollups ----------------------------------------------

TEST(Profiler, AccumulatesAcrossRunsOfTheSameProgram) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 20);
  PerfCounters profile;
  machine.attach_profiler(&profile);
  const Program program = assemble("li r1, 8\nssvl r1\nv_iota vr1\nhalt\n");
  const Cycle first = machine.run(program).cycles;
  const Cycle second = machine.run(program).cycles;
  EXPECT_EQ(profile.runs(), 2u);
  EXPECT_EQ(profile.total_cycles(), first + second);
  EXPECT_EQ(profile.attributed_cycles(), first + second);
}

TEST(Profiler, LineAndRegionRollups) {
  const auto run = run_profiled(
      "li r1, 64\n"
      "ssvl r1\n"
      ";; profile: load\n"
      "li r2, 0x1000\n"
      "v_ld vr1, (r2)\n"
      ";; profile: compute\n"
      "v_add vr2, vr1, vr1\n"
      ";; profile: end\n"
      "halt\n");
  expect_conserved(run);

  const auto regions = run.profile.region_rollup();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].name, "load");
  EXPECT_EQ(regions[1].name, "compute");
  EXPECT_EQ(regions[0].issued, 2u);
  EXPECT_EQ(regions[1].issued, 1u);

  const auto lines = run.profile.line_rollup();
  ASSERT_FALSE(lines.empty());
  u64 issued = 0;
  bool saw_vadd = false;
  for (const auto& line : lines) {
    issued += line.issued;
    if (line.text.find("v_add") != std::string::npos) {
      saw_vadd = true;
      EXPECT_EQ(line.region, "compute");
    }
  }
  EXPECT_TRUE(saw_vadd);
  EXPECT_EQ(issued, 6u);  // every executed instruction shows up exactly once
}

TEST(Profiler, UnknownDirectiveRejected) {
  EXPECT_THROW(assemble(";; frobnicate\nhalt\n"), AssemblyError);
  EXPECT_THROW(assemble(";; profile:\nhalt\n"), AssemblyError);
}

TEST(Profiler, EmptyRegionsDropped) {
  const auto run = run_profiled(
      ";; profile: empty\n"
      ";; profile: real\n"
      "halt\n");
  const auto regions = run.profile.region_rollup();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].name, "real");
}

// ---- JSON determinism -------------------------------------------------------

std::string profile_json_of(const std::string& source) {
  const auto run = run_profiled(source);
  std::ostringstream out;
  JsonWriter json(out);
  write_profile_json(json, run.profile);
  return out.str();
}

TEST(Profiler, JsonBitIdenticalAcrossIndependentRuns) {
  const std::string source =
      "li r1, 64\nssvl r1\nli r2, 0x1000\n"
      "v_ld vr1, (r2)\nv_add vr2, vr1, vr1\nhalt\n";
  EXPECT_EQ(profile_json_of(source), profile_json_of(source));
}

TEST(Profiler, SpeedscopeExportIsValidJson) {
  const auto run = run_profiled(
      ";; profile: hot\n"
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\nhalt\n");
  std::ostringstream out;
  write_speedscope_profile(out, run.profile, "unit");
  std::string error;
  const std::optional<JsonValue> doc = parse_json(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->at("name").as_string(), "unit");
  EXPECT_FALSE(doc->at("shared").at("frames").items().empty());
  const JsonValue& prof = doc->at("profiles").items().at(0);
  EXPECT_EQ(prof.at("endValue").as_u64(), run.stats.cycles);
  u64 weight_sum = 0;
  for (const JsonValue& weight : prof.at("weights").items()) {
    weight_sum += weight.as_u64();
  }
  EXPECT_EQ(weight_sum, run.stats.cycles);
}

// ---- the paper's hot spot ---------------------------------------------------

// On a narrow banded matrix the CRS baseline's cycles concentrate in the
// vectorized indexed-memory permute loop — exactly the bottleneck the
// paper's STM removes (§I, §IV-B): short rows mean the per-row vector
// startup never amortizes and the 1-elem/cycle gather/scatter chain
// serializes phase 3. (At wide bands the O(nnz) scalar histogram of
// phase 1 takes over instead — also visible in the same tables.) The
// region/line rollups must point at the permute loop.
TEST(Profiler, CrsHotSpotIsTheIndexedPermuteLoop) {
  constexpr u32 kDim = 192;
  constexpr u32 kBand = 2;  // 5 nnz/row — above short_row_threshold, so
                            // every row takes the vector permute path
  Coo coo(kDim, kDim);
  for (u32 r = 0; r < kDim; ++r) {
    const u32 lo = r > kBand ? r - kBand : 0;
    const u32 hi = r + kBand < kDim - 1 ? r + kBand : kDim - 1;
    for (u32 c = lo; c <= hi; ++c) coo.add(r, c, 1.0 + r);
  }
  const Csr csr = Csr::from_coo(coo);

  PerfCounters profile;
  const vsim::MachineConfig config;
  kernels::time_crs_transpose(csr, config, {}, &profile);
  EXPECT_EQ(profile.attributed_cycles(), profile.total_cycles());

  // The permute loop is the dominant region of the whole kernel.
  const auto regions = profile.region_rollup();
  ASSERT_FALSE(regions.empty());
  const PerfCounters::RegionCounters* top_region = &regions.front();
  for (const auto& region : regions) {
    if (region.busy_cycles + region.stall_cycles >
        top_region->busy_cycles + top_region->stall_cycles) {
      top_region = &region;
    }
  }
  EXPECT_EQ(top_region->name, "phase3_permute");

  // The indexed pipe is the most-occupied vector memory resource: it holds
  // the port several times longer than the contiguous streams do.
  const auto& fus = profile.fus();
  EXPECT_GT(fus[static_cast<usize>(BusyKind::kVMemIndexed)].occupancy_cycles,
            fus[static_cast<usize>(BusyKind::kVMemStream)].occupancy_cycles);

  // Within the permute loop the hottest line is an indexed access — it
  // out-costs the contiguous slice loads sharing the loop.
  const auto lines = profile.line_rollup();
  ASSERT_FALSE(lines.empty());
  const PerfCounters::LineCounters* hottest_permute = nullptr;
  for (const auto& line : lines) {
    if (line.region != "phase3_permute") continue;
    if (hottest_permute == nullptr ||
        line.busy_cycles + line.stall_cycles >
            hottest_permute->busy_cycles + hottest_permute->stall_cycles) {
      hottest_permute = &line;
    }
  }
  ASSERT_NE(hottest_permute, nullptr);
  EXPECT_NE(hottest_permute->text.find("_idx"), std::string::npos)
      << "hottest permute line is not an indexed access: " << hottest_permute->text;

  // The serialized chain behind the 1-elem/cycle pipe is the top stall
  // reason for the run.
  const auto& stalls = profile.stall_cycles();
  const u64 chaining = stalls[static_cast<usize>(StallReason::kChainingWait)];
  for (usize reason = 0; reason < kStallReasonCount; ++reason) {
    if (reason == static_cast<usize>(StallReason::kChainingWait)) continue;
    EXPECT_GE(chaining, stalls[reason])
        << "stall bucket " << stall_reason_name(static_cast<StallReason>(reason));
  }
}

}  // namespace
}  // namespace smtu::vsim
