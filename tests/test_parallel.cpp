// Thread-pool and parallel_map contract tests: deterministic result
// ordering, exception propagation, nested submission, and the serial
// (jobs == 1) degenerate mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/parallel.hpp"

namespace smtu {
namespace {

TEST(ThreadPool, ResolveJobsDefaultsToHardware) {
  const u32 hardware = resolve_jobs(0);
  EXPECT_GE(hardware, 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  // Explicit requests are honoured up to the hardware thread count and
  // clamped (with a one-time stderr note) beyond it.
  EXPECT_EQ(resolve_jobs(7), std::min(7u, hardware));
  EXPECT_EQ(resolve_jobs(hardware), hardware);
  EXPECT_EQ(resolve_jobs(hardware + 1), hardware);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  auto future = pool.submit([] { return 42; });
  // Inline execution: the future is already satisfied when submit returns.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitReturnsResultsFromWorkers) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<usize>(i)].get(), i * i);
  }
}

TEST(ParallelMap, PreservesItemOrder) {
  for (const u32 jobs : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(jobs);
    std::vector<int> items(257);
    std::iota(items.begin(), items.end(), 0);
    const auto results = parallel_map(pool, items, [](const int& x) { return 3 * x + 1; });
    ASSERT_EQ(results.size(), items.size()) << "jobs=" << jobs;
    for (usize i = 0; i < items.size(); ++i) {
      EXPECT_EQ(results[i], 3 * items[i] + 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelMap, PropagatesFirstExceptionAfterAllTasksFinish) {
  ThreadPool pool(4);
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  std::atomic<int> completed{0};
  try {
    parallel_map(pool, items, [&](const int& x) {
      if (x == 17 || x == 40) throw std::runtime_error("boom at " + std::to_string(x));
      completed.fetch_add(1);
      return x;
    });
    FAIL() << "parallel_map swallowed the task exception";
  } catch (const std::runtime_error& error) {
    // First failure in item order, regardless of which thread hit it first.
    EXPECT_STREQ(error.what(), "boom at 17");
  }
  // Every non-throwing task still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 62);
}

TEST(ParallelMap, SerialModePropagatesExceptionsToo) {
  ThreadPool pool(1);
  const std::vector<int> items = {1, 2, 3};
  EXPECT_THROW(parallel_map(pool, items,
                            [](const int& x) -> int {
                              if (x == 2) throw std::logic_error("serial boom");
                              return x;
                            }),
               std::logic_error);
}

TEST(ParallelMap, NestedSubmitDoesNotDeadlock) {
  // Tasks that fan out sub-tasks on the same pool must make progress even
  // when every worker is occupied by an outer task: waiting threads help
  // drain the queue.
  ThreadPool pool(4);
  std::vector<int> outer(8);
  std::iota(outer.begin(), outer.end(), 0);
  const auto sums = parallel_map(pool, outer, [&](const int& o) {
    std::vector<int> inner(8);
    std::iota(inner.begin(), inner.end(), 0);
    const auto parts = parallel_map(pool, inner, [&](const int& i) { return o * 8 + i; });
    return std::accumulate(parts.begin(), parts.end(), 0);
  });
  for (usize o = 0; o < sums.size(); ++o) {
    int expected = 0;
    for (int i = 0; i < 8; ++i) expected += static_cast<int>(o) * 8 + i;
    EXPECT_EQ(sums[o], expected) << o;
  }
}

TEST(ParallelMap, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::vector<u32> items(1000);
  std::iota(items.begin(), items.end(), 0u);
  std::atomic<u32> ran{0};
  const auto results = parallel_map(pool, items, [&](const u32& x) {
    ran.fetch_add(1);
    return x + 1;
  });
  EXPECT_EQ(ran.load(), 1000u);
  EXPECT_EQ(results.front(), 1u);
  EXPECT_EQ(results.back(), 1000u);
}

}  // namespace
}  // namespace smtu
