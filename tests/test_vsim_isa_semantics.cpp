// Fine-grained ISA semantics: edge cases per instruction class, swept over
// section sizes where the behavior could plausibly differ.
#include <gtest/gtest.h>

#include <bit>

#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu::vsim {
namespace {

u64 run_reg(const std::string& source, u32 reg,
            const std::vector<std::pair<u32, u64>>& inputs = {}) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 16);
  for (const auto& [r, v] : inputs) machine.set_sreg(r, v);
  machine.run(assemble(source));
  return machine.sreg(reg);
}

TEST(IsaSemantics, ShiftAmountsAreMaskedTo64) {
  EXPECT_EQ(run_reg("li r1, 1\nli r2, 64\nsll r3, r1, r2\nhalt\n", 3), 1u);  // 64 & 63 = 0
  EXPECT_EQ(run_reg("li r1, 1\nli r2, 65\nsll r3, r1, r2\nhalt\n", 3), 2u);
  EXPECT_EQ(run_reg("li r1, 8\nslli r2, r1, 61\nhalt\n", 2), u64{8} << 61);
}

TEST(IsaSemantics, ArithmeticWrapsUnsigned) {
  EXPECT_EQ(run_reg("li r1, -1\nli r2, 2\nadd r3, r1, r2\nhalt\n", 3), 1u);
  EXPECT_EQ(run_reg("li r1, 0\nli r2, 1\nsub r3, r1, r2\nhalt\n", 3), ~u64{0});
}

TEST(IsaSemantics, MinMaxAreUnsignedOnRegisters) {
  // -1 as u64 is the maximum; min/max operate on raw register values.
  EXPECT_EQ(run_reg("li r1, -1\nli r2, 5\nmin r3, r1, r2\nhalt\n", 3), 5u);
  EXPECT_EQ(run_reg("li r1, -1\nli r2, 5\nmax r3, r1, r2\nhalt\n", 3), ~u64{0});
}

TEST(IsaSemantics, BranchesCompareSigned) {
  // blt: -1 < 5 must be taken even though -1 is a huge unsigned value.
  EXPECT_EQ(run_reg("li r1, -1\nli r2, 5\nli r3, 0\nblt r1, r2, t\n"
                    "beq r0, r0, e\nt: li r3, 1\ne: halt\n",
                    3),
            1u);
  // bge: 5 >= -1.
  EXPECT_EQ(run_reg("li r1, 5\nli r2, -1\nli r3, 0\nbge r1, r2, t\n"
                    "beq r0, r0, e\nt: li r3, 1\ne: halt\n",
                    3),
            1u);
}

TEST(IsaSemantics, SubWordStoresDoNotClobberNeighbors) {
  Machine machine{MachineConfig{}};
  machine.run(assemble(
      "li r1, 0x100\n"
      "li r2, -1\n"
      "sw r2, (r1)\n"      // ffffffff
      "li r3, 0\n"
      "sb r3, 1(r1)\n"     // clear byte 1
      "lw r4, (r1)\n"
      "sh r3, 2(r1)\n"     // clear upper half
      "lw r5, (r1)\n"
      "halt\n"));
  EXPECT_EQ(machine.sreg(4), 0xffff00ffu);
  EXPECT_EQ(machine.sreg(5), 0x000000ffu);
}

TEST(IsaSemantics, LoadsZeroExtend) {
  Machine machine{MachineConfig{}};
  machine.memory().write_u32(0x100, 0xfedcba98u);
  machine.run(assemble(
      "li r1, 0x100\nlbu r2, 3(r1)\nlhu r3, 2(r1)\nlw r4, (r1)\nhalt\n"));
  EXPECT_EQ(machine.sreg(2), 0xfeu);
  EXPECT_EQ(machine.sreg(3), 0xfedcu);
  EXPECT_EQ(machine.sreg(4), 0xfedcba98u);
}

TEST(IsaSemantics, FloatSpecialValues) {
  Machine machine{MachineConfig{}};
  machine.set_sreg(1, std::bit_cast<u32>(1.0f));
  machine.set_sreg(2, 0);  // +0.0f
  machine.run(assemble("fmul r3, r1, r2\nfadd r4, r1, r2\nhalt\n"));
  EXPECT_EQ(std::bit_cast<float>(static_cast<u32>(machine.sreg(3))), 0.0f);
  EXPECT_EQ(std::bit_cast<float>(static_cast<u32>(machine.sreg(4))), 1.0f);
}

class SectionSweep : public ::testing::TestWithParam<u32> {};

TEST_P(SectionSweep, SsvlStripMinesExactly) {
  const u32 section = GetParam();
  MachineConfig config;
  config.section = section;
  Machine machine(config);
  const u64 total = 3 * section + section / 2 + 1;
  machine.set_sreg(1, total);
  const Program program = assemble("ssvl r1\nhalt\n");
  u64 consumed = 0;
  while (machine.sreg(1) > 0 || consumed == 0) {
    machine.run(program);
    EXPECT_LE(machine.vl(), section);
    consumed += machine.vl();
    if (machine.vl() == 0) break;
  }
  EXPECT_EQ(consumed, total);
}

TEST_P(SectionSweep, VectorOpsHonorPartialVl) {
  const u32 section = GetParam();
  MachineConfig config;
  config.section = section;
  Machine machine(config);
  const u32 vl = section / 2 + 1;
  machine.set_sreg(1, vl);
  machine.run(assemble(
      "ssvl r1\nv_iota vr1\nv_addi vr2, vr1, 5\nv_redsum r2, vr2\nhalt\n"));
  // sum over i of (i + 5), i in [0, vl)
  const u64 expected = static_cast<u64>(vl) * (vl - 1) / 2 + 5ull * vl;
  EXPECT_EQ(machine.sreg(2), expected);
  // Lanes beyond vl untouched (still zero from reset).
  if (vl < section) EXPECT_EQ(machine.vreg(2)[vl], 0u);
}

TEST_P(SectionSweep, SlideComposition) {
  const u32 section = GetParam();
  MachineConfig config;
  config.section = section;
  Machine machine(config);
  machine.set_sreg(1, section);
  machine.run(assemble(
      "ssvl r1\nv_iota vr1\nv_slideup vr2, vr1, 1\nv_slidedown vr3, vr2, 1\nhalt\n"));
  // slideup then slidedown restores all but the tail lane.
  for (u32 i = 0; i + 1 < section; ++i) {
    EXPECT_EQ(machine.vreg(3)[i], machine.vreg(1)[i]) << i;
  }
  EXPECT_EQ(machine.vreg(3)[section - 1], 0u);
}

INSTANTIATE_TEST_SUITE_P(Sections, SectionSweep, ::testing::Values(2, 8, 16, 64, 128, 256));

TEST(IsaSemantics, VectorLogicalOps) {
  Machine machine{MachineConfig{}};
  machine.run(assemble(
      "li r1, 8\nssvl r1\n"
      "v_iota vr1\n"
      "v_bcasti vr2, 6\n"
      "v_and vr3, vr1, vr2\n"
      "v_or vr4, vr1, vr2\n"
      "v_xor vr5, vr1, vr2\n"
      "v_min vr6, vr1, vr2\n"
      "v_max vr7, vr1, vr2\n"
      "halt\n"));
  EXPECT_EQ(machine.vreg(3)[5], 4u);  // 5 & 6
  EXPECT_EQ(machine.vreg(4)[1], 7u);  // 1 | 6
  EXPECT_EQ(machine.vreg(5)[3], 5u);  // 3 ^ 6
  EXPECT_EQ(machine.vreg(6)[7], 6u);  // min(7, 6)
  EXPECT_EQ(machine.vreg(7)[2], 6u);  // max(2, 6)
}

TEST(IsaSemantics, ZeroRegisterIgnoresAllWrites) {
  EXPECT_EQ(run_reg("li r0, 7\naddi r0, r0, 3\nmv r1, r0\nhalt\n", 1), 0u);
  Machine machine{MachineConfig{}};
  machine.memory().write_u32(0x100, 99);
  machine.run(assemble("li r1, 0x100\nlw r0, (r1)\nmv r2, r0\nhalt\n"));
  EXPECT_EQ(machine.sreg(2), 0u);
}

}  // namespace
}  // namespace smtu::vsim
